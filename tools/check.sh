#!/usr/bin/env bash
# check.sh — the one-shot PR gate.
#
#   tools/check.sh [jobs]
#
# Runs, in order, everything a PR must pass:
#   (a) normal build (-Wall -Wextra promoted to -Werror) + full ctest
#       — which already includes `ctest -L lint` via the rrp_lint test;
#   (b) the lint label on its own, so a lint failure is called out;
#   (c) the fault-injection / integrity campaign suite (ctest -L faults),
#       so a robustness regression is called out by name;
#   (d) the ThreadSanitizer smoke suite (pool mechanics, parallel GEMM,
#       parallel provisioning);
#   (e) a UBSan build of the unit tests, -fno-sanitize-recover=all.
# Build trees are kept per-configuration (build-check, build-check-tsan,
# build-check-ubsan) so re-runs are incremental.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc 2>/dev/null || echo 4)}"

step() { printf '\n== %s ==\n' "$*"; }

step "(a) build -Werror + full ctest"
cmake -B build-check -S . -DRRP_WERROR=ON
cmake --build build-check -j "$JOBS"
ctest --test-dir build-check --output-on-failure -j "$JOBS"

step "(b) static analysis (ctest -L lint)"
ctest --test-dir build-check --output-on-failure -L lint

step "(c) fault-injection campaign suite (ctest -L faults)"
ctest --test-dir build-check --output-on-failure -L faults

step "(d) ThreadSanitizer smoke suite"
cmake -B build-check-tsan -S . -DRRP_SANITIZE=thread
cmake --build build-check-tsan -j "$JOBS" --target rrp_tsan_smoke
ctest --test-dir build-check-tsan --output-on-failure -L tsan

step "(e) UndefinedBehaviorSanitizer unit tests"
cmake -B build-check-ubsan -S . -DRRP_SANITIZE=undefined
cmake --build build-check-ubsan -j "$JOBS" --target rrp_tests
./build-check-ubsan/tests/rrp_tests

echo
echo "check.sh: all gates passed"
