#!/usr/bin/env bash
# check.sh — the one-shot PR gate.
#
#   tools/check.sh [jobs]
#
# Runs, in order, everything a PR must pass:
#   (a) normal build (-Wall -Wextra promoted to -Werror) + full ctest
#       — which already includes `ctest -L lint` via the rrp_lint test;
#   (b) the lint label on its own, so a lint failure is called out, plus
#       rrp_lint --self-test and a --json report parsed back through
#       python3's json module (the machine-readable round-trip);
#   (c) the fault-injection / integrity campaign suite (ctest -L faults),
#       the scenario-DSL / Monte-Carlo campaign suite (-L campaign), the
#       multi-stream serving suite (-L serve) and the fleet observability
#       suite (-L obs), so a robustness, serving or observability
#       regression is called out by name;
#   (d) the ThreadSanitizer smoke suite (pool mechanics, parallel GEMM,
#       parallel provisioning);
#   (e) a UBSan build of the unit tests, -fno-sanitize-recover=all;
#   (f) a line-coverage summary of the unit tests (-DRRP_COVERAGE=ON +
#       gcovr or llvm-cov), skipped gracefully when no coverage tool is
#       installed — informational, not a gate;
#   (g) the bench-regression gate (tools/bench_gate.py): re-runs the
#       deterministic --gate benches and compares every metric against
#       bench/baselines/ within RRP_BENCH_TOLERANCE (default 0.05),
#       skipped with a warning when python3 is unavailable;
#   (h) an -DRRP_SIMD=OFF build of the unit + perf tests + rrp_lint — the
#       micro-kernel variants are bit-identical by contract (DESIGN.md
#       invariant 13), so the scalar-dispatch build must pass the exact
#       same suite (golden traces included) and the frame-path pass must
#       hold with the AVX2 TU out of the build.
# Build trees are kept per-configuration (build-check, build-check-tsan,
# build-check-ubsan, build-check-cov, build-check-nosimd) so re-runs are
# incremental.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc 2>/dev/null || echo 4)}"

step() { printf '\n== %s ==\n' "$*"; }

step "(a) build -Werror + full ctest"
cmake -B build-check -S . -DRRP_WERROR=ON
cmake --build build-check -j "$JOBS"
ctest --test-dir build-check --output-on-failure -j "$JOBS"

step "(b) static analysis (ctest -L lint + rrp_lint --json)"
ctest --test-dir build-check --output-on-failure -L lint
./build-check/tools/rrp_lint --self-test
./build-check/tools/rrp_lint --root . --json > build-check/rrp_lint.json
if command -v python3 >/dev/null 2>&1; then
  # json.load IS the round-trip check: a malformed emitter dies here.
  python3 - <<'EOF'
import json
with open('build-check/rrp_lint.json') as f:
    r = json.load(f)
assert r['schema_version'] == 1
fp = r['frame_path']
print('rrp_lint.json: %d files, %d lex passes, frame path %d roots -> %d '
      'reachable (%d stops), %d active / %d suppressed finding(s), %.1f ms'
      % (r['files_scanned'], r['lex_passes'], fp['roots'], fp['reachable'],
         fp['stops'], r['active_count'], r['suppressed_count'], r['wall_ms']))
EOF
else
  echo "warning: python3 not found: skipping rrp_lint.json summary"
fi

step "(c) fault-injection campaign suite (ctest -L faults)"
ctest --test-dir build-check --output-on-failure -L faults

step "(c') scenario-DSL / Monte-Carlo campaign suite (ctest -L campaign)"
ctest --test-dir build-check --output-on-failure -L campaign

step "(c'') multi-stream serving suite (ctest -L serve)"
ctest --test-dir build-check --output-on-failure -L serve

step "(c''') fleet observability suite (ctest -L obs)"
ctest --test-dir build-check --output-on-failure -L obs

step "(d) ThreadSanitizer smoke suite"
cmake -B build-check-tsan -S . -DRRP_SANITIZE=thread
cmake --build build-check-tsan -j "$JOBS" --target rrp_tsan_smoke
ctest --test-dir build-check-tsan --output-on-failure -L tsan

step "(e) UndefinedBehaviorSanitizer unit tests"
cmake -B build-check-ubsan -S . -DRRP_SANITIZE=undefined
cmake --build build-check-ubsan -j "$JOBS" --target rrp_tests
./build-check-ubsan/tests/rrp_tests

step "(f) line coverage (informational)"
if command -v gcovr >/dev/null 2>&1; then
  COV_TOOL="gcovr"
elif command -v gcov >/dev/null 2>&1; then
  COV_TOOL="gcov"
elif command -v llvm-cov >/dev/null 2>&1; then
  COV_TOOL="llvm-cov gcov"
else
  COV_TOOL=""
fi
if [ -n "$COV_TOOL" ]; then
  cmake -B build-check-cov -S . -DRRP_COVERAGE=ON
  cmake --build build-check-cov -j "$JOBS" --target rrp_tests
  (cd build-check-cov && ./tests/rrp_tests >/dev/null)
  if [ "$COV_TOOL" = "gcovr" ]; then
    gcovr --root . --filter 'src/' build-check-cov \
      --print-summary 2>/dev/null | tail -3
  else
    # gcov / llvm-cov-gcov print "Lines executed:NN.NN% of M" per file;
    # aggregate the library-wide line percentage ourselves.  Only src/
    # objects count (tests and gtest are not the measured surface).
    (cd build-check-cov &&
     find src -name '*.gcda' -exec $COV_TOOL -n {} + 2>/dev/null |
     awk '/^Lines executed:/ {
            split($2, a, ":"); pct = a[2]; gsub(/%/, "", pct);
            covered += $4 * pct / 100; total += $4
          }
          END {
            if (total > 0)
              printf "src/ line coverage: %.1f%% (%.0f of %d lines)\n",
                     100 * covered / total, covered, total
            else print "no coverage data produced"
          }')
  fi
else
  echo "gcovr / gcov / llvm-cov not found: skipping coverage summary"
fi

step "(g) bench-regression gate (tools/bench_gate.py)"
if command -v python3 >/dev/null 2>&1; then
  cmake --build build-check -j "$JOBS" --target bench_micro bench_t2_endtoend \
    bench_campaign bench_serve
  python3 tools/bench_gate.py --build-dir build-check \
    --tolerance "${RRP_BENCH_TOLERANCE:-0.05}"
else
  echo "warning: python3 not found: skipping bench-regression gate"
fi

step "(h) RRP_SIMD=OFF build (scalar kernel dispatch, same suite)"
cmake -B build-check-nosimd -S . -DRRP_SIMD=OFF -DRRP_WERROR=ON
cmake --build build-check-nosimd -j "$JOBS" --target rrp_tests rrp_perf_smoke \
  rrp_lint
./build-check-nosimd/tests/rrp_tests
./build-check-nosimd/tests/rrp_perf_smoke
# The frame-path pass must hold in both dispatch configurations: the AVX2
# TU's roots are annotated and the scalar tree must be just as clean.
./build-check-nosimd/tools/rrp_lint --root .

echo
echo "check.sh: all gates passed"
