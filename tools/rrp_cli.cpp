// rrp_cli — command-line front end for the rrp library.
//
//   rrp_cli models                         list the model zoo
//   rrp_cli provision <model>|all          train + co-train + calibrate
//                                          (all = every model, in parallel)
//   rrp_cli evaluate  <model>              per-level accuracy/latency table
//   rrp_cli sensitivity <model>            per-layer sensitivity sweep
//   rrp_cli run <model> <suite> [opts]     closed-loop scenario run
//        --policy greedy|hybrid|oracle|fixed<K>   (default greedy)
//        --frames N      (default 900)
//        --seed S        (default 20240325)
//        --hysteresis K  (default 6)
//        --csv FILE        export per-frame telemetry
//        --trace FILE      replay a recorded trace instead of a suite
//        --export-trace F  save the generated scenario as a trace CSV
//        --assurance FILE  export the safety-case evidence as JSON
//   rrp_cli trace <model> <suite> [opts]   closed-loop run with the span
//                                          tracer + metrics registry armed
//        --policy greedy|fixed<K>   (default greedy)
//        --frames N      (default 900)
//        --seed S        (default 20240325)
//        --json FILE     Chrome trace_event JSON (default trace.json)
//        --spans FILE    per-frame span CSV (default trace_spans.csv)
//        --metrics FILE  metrics snapshot CSV (default trace_metrics.csv)
//        --wall 1        also capture wall-clock per span (forfeits
//                        byte-identity; never used by tests)
//   rrp_cli faults <model> [opts]          seeded fault-injection campaign;
//                                          prints per-arm streaming tail
//                                          stats (quantile sketches)
//        --suites a,b,c  (default cut_in,urban; also accepts dsl:<line>)
//        --arms a,b      reversible|reload-memory|reload-disk
//                        (default reversible,reload-memory)
//        --kinds a,b     restrict the fault mix to the named kinds
//                        (sensor_blackout|weight_bit_flip|store_bit_flip|
//                        stuck_criticality|stale_criticality|latency_spike|
//                        dropped_decision|artifact_read_failure)
//        --frames N      (default 600)
//        --seed S        (default 20240325)
//        --faults N      faults per run (default 10)
//        --policy P      greedy|fixed<K> (default greedy)
//        --csv FILE      export the per-fault outcome table (the only way
//                        to get per-fault rows; default output is streamed)
//   rrp_cli campaign <model> <spec-file> [opts]
//                                          Monte-Carlo robustness campaign:
//                                          scenario x policy x fault-plan
//                                          cells fanned over the thread
//                                          pool, folded into one streaming
//                                          aggregate report (byte-identical
//                                          for a given --seed at any
//                                          --threads), plus a replayable
//                                          incident bundle per worst cell
//        --seed S        override the spec seed
//        --frames N      override frames per cell
//        --out FILE      also write the report to FILE
//        --bundle BASE   worst-cell bundle basename (default
//                        campaign_worst -> campaign_worst_<i>.rrpb)
//        --bundles 0     skip dumping worst-cell bundles
//   rrp_cli serve <model> [opts]           fleet-scale multi-stream serving:
//                                          one shared compacted ladder, N
//                                          concurrent streams, SLO-driven
//                                          admission/degrade/shed (report is
//                                          byte-identical at any --threads)
//        --streams N     number of streams (default 4)
//        --suites a,b    scenario cycle, assigned round-robin
//                        (default cut_in,urban,highway,degraded;
//                        also accepts dsl:<line>)
//        --frames N      frames per stream (default 300)
//        --seed S        engine seed (default 20240807)
//        --budget MS     modeled compute budget per tick; demand above it
//                        stretches frames by demand/budget (default 0 =
//                        uncontended)
//        --capacity N    admission capacity (default 8)
//        --stagger N     arrival stagger in ticks between streams (def. 0)
//        --policy P      greedy|fixed<K> (default greedy)
//        --deadline MS   per-frame deadline (default 12.0)
//        --out FILE      also write the report to FILE
//        --report-json F machine-readable report (schema-versioned JSON)
//        --wall 1        enable the measured wall-clock channel: per-frame
//                        infer wall times plus the util/wprof sampling
//                        profiler (per-level/per-tick spans, printed after
//                        the report; never gated, never deterministic)
//        --snapshot-every K  capture a fleet snapshot every K ticks
//        --snapshot-out BASE write BASE_tick<N>.json / .prom per snapshot
//                        plus BASE_timeline.csv (implies --snapshot-every
//                        50 when not given)
//   rrp_cli report [opts]                  offline observability analyzer
//        --bench FILE    BENCH_serve.json from `bench_serve --wall`:
//                        renders the streams-vs-throughput saturation
//                        table with marginal scaling efficiency + knee
//        --snapshot F    fleet snapshot JSON (repeatable, tick order)
//        --heatmap BASE  write BASE_level.csv / BASE_p99.csv heatmaps
//                        (rows = snapshot ticks, cols = streams) from the
//                        --snapshot files
//   rrp_cli inspect <file.rrpn>            dump a serialized network
//   rrp_cli blackbox dump <model> <suite> [opts]
//                                          closed-loop fault run with the
//                                          flight recorder + SLO monitor
//                                          armed; dumps an incident bundle
//                                          (BASE.rrpb + BASE.csv) when any
//                                          SLO incident fires
//        --frames N      (default 600)
//        --seed S        (default 20240325)
//        --policy P      greedy|fixed<K> (default greedy)
//        --hysteresis K  (default 6)
//        --faults N      seeded random faults (default 10)
//        --scrub N       scrub period frames (default 20)
//        --watchdog N    watchdog overrun frames (default 8)
//        --deadline MS   (default 12.0)
//        --capacity N    recorder ring capacity (default 256)
//        --trace 1       arm span tracing (span digests in the records)
//        --out BASE      output basename (default blackbox_<model>_<suite>)
//        --force 1       dump even when no incident fired
//   rrp_cli blackbox inspect <bundle.rrpb> print a bundle's context,
//                                          incidents and window extremes
//   rrp_cli blackbox replay <bundle.rrpb>  re-run the recorded window from
//                                          the bundle's seed/config and
//                                          assert byte-identical telemetry
//
// Global flags (any command):
//   --threads N    size of the process thread pool (1 = serial legacy
//                  path); overrides the RRP_THREADS environment variable,
//                  default hardware_concurrency.  Results are identical
//                  for every thread count.
//
// Model caches are read/written in $RRP_CACHE_DIR (default "cache",
// auto-created on first save).
#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>

#include "core/assurance_export.h"
#include "core/flight_recorder.h"
#include "core/metrics.h"
#include "core/reversible_pruner.h"
#include "models/trained_cache.h"
#include "nn/serialize.h"
#include "prune/sensitivity.h"
#include "sim/campaign.h"
#include "sim/faults.h"
#include "sim/incident_replay.h"
#include "sim/runner.h"
#include "serve/serve_engine.h"
#include "sim/suites.h"
#include "sim/trace_io.h"
#include "util/checks.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/log.h"
#include "util/thread_pool.h"
#include "util/trace.h"
#include "util/wprof.h"

using namespace rrp;

namespace {

std::string cache_dir() {
  const char* dir = std::getenv("RRP_CACHE_DIR");
  return dir != nullptr && *dir != '\0' ? dir : "cache";
}

/// Opens `path`, runs `emit`, flushes, and verifies the stream at every
/// step.  Every output file the CLI writes goes through here, so an
/// unwritable directory / full disk always yields a clear diagnostic
/// (with the OS error) and a non-zero exit — never a silent truncation.
template <typename Emit>
bool write_output_file(const std::string& path, Emit&& emit,
                       bool binary = false) {
  errno = 0;
  std::ofstream f(path, binary ? std::ios::binary | std::ios::trunc
                               : std::ios::trunc);
  if (!f) {
    std::cerr << "error: cannot open '" << path << "' for writing ("
              << (errno != 0 ? std::strerror(errno) : "unknown error")
              << ")\n";
    return false;
  }
  emit(f);
  f.flush();
  if (!f) {
    std::cerr << "error: write failed for '" << path << "' ("
              << (errno != 0 ? std::strerror(errno) : "unknown error")
              << ")\n";
    return false;
  }
  return true;
}

int usage() {
  std::cerr
      << "usage:\n"
         "  rrp_cli models\n"
         "  rrp_cli provision <model>|all\n"
         "  rrp_cli evaluate <model>\n"
         "  rrp_cli sensitivity <model>\n"
         "  rrp_cli run <model> <highway|urban|cut_in|degraded|intersection> "
         "[--policy greedy|hybrid|oracle|fixed<K>] [--frames N] [--seed S] "
         "[--hysteresis K] [--csv FILE]\n"
         "  rrp_cli trace <model> <highway|urban|cut_in|degraded|"
         "intersection> [--policy greedy|fixed<K>] [--frames N] [--seed S] "
         "[--json FILE] [--spans FILE] [--metrics FILE] [--wall 1]\n"
         "  rrp_cli faults <model> [--suites a,b,c] [--arms a,b] "
         "[--kinds a,b] [--frames N] [--seed S] [--faults N] "
         "[--policy greedy|fixed<K>] [--csv FILE]\n"
         "  rrp_cli campaign <model> <spec-file> [--seed S] [--frames N] "
         "[--out FILE] [--bundle BASE] [--bundles 0]\n"
         "  rrp_cli serve <model> [--streams N] [--suites a,b] [--frames N] "
         "[--seed S] [--budget MS] [--capacity N] [--stagger N] "
         "[--policy greedy|fixed<K>] [--deadline MS] [--out FILE] "
         "[--report-json FILE] [--wall 1] [--snapshot-every K] "
         "[--snapshot-out BASE]\n"
         "  rrp_cli report [--bench BENCH_serve.json] [--snapshot FILE]... "
         "[--heatmap BASE]\n"
         "  rrp_cli inspect <file.rrpn>\n"
         "  rrp_cli blackbox dump <model> <suite> [--frames N] [--seed S] "
         "[--policy greedy|fixed<K>] [--hysteresis K] [--faults N] "
         "[--scrub N] [--watchdog N] [--deadline MS] [--capacity N] "
         "[--trace 1] [--out BASE] [--force 1]\n"
         "  rrp_cli blackbox inspect <bundle.rrpb>\n"
         "  rrp_cli blackbox replay <bundle.rrpb>\n"
         "global flags: --threads N   (pool size; 1 = serial, default "
         "$RRP_THREADS or hardware)\n";
  return 2;
}

std::optional<models::ModelKind> parse_model(const std::string& name) {
  for (models::ModelKind kind : models::all_model_kinds())
    if (name == models::model_kind_name(kind)) return kind;
  std::cerr << "unknown model '" << name << "' (try: ";
  for (models::ModelKind kind : models::all_model_kinds())
    std::cerr << models::model_kind_name(kind) << " ";
  std::cerr << ")\n";
  return std::nullopt;
}

int cmd_models() {
  TableFormatter table({"model", "params", "dense_MMACs", "layers"});
  Rng rng(1);
  for (models::ModelKind kind : models::all_model_kinds()) {
    nn::Network net = models::build_model(kind, rng);
    table.row({models::model_kind_name(kind),
               std::to_string(net.param_count()),
               fmt(static_cast<double>(net.macs(models::zoo_input_shape())) /
                       1e6,
                   3),
               std::to_string(net.leaf_layers().size())});
  }
  table.print(std::cout);
  return 0;
}

int cmd_provision(models::ModelKind kind) {
  set_log_level(LogLevel::Info);
  const models::ProvisionedModel pm =
      models::get_provisioned(kind, {}, {}, cache_dir());
  std::cout << "provisioned " << models::model_kind_name(kind)
            << "; per-level eval accuracy:";
  for (double a : pm.level_accuracy) std::cout << " " << fmt(a, 3);
  std::cout << "\n";
  return 0;
}

int cmd_provision_all() {
  set_log_level(LogLevel::Info);
  const std::vector<models::ModelKind> kinds = models::all_model_kinds();
  const auto provisioned =
      models::get_provisioned_all(kinds, {}, {}, cache_dir());
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    std::cout << "provisioned " << models::model_kind_name(kinds[i])
              << "; per-level eval accuracy:";
    for (double a : provisioned[i].level_accuracy) std::cout << " " << fmt(a, 3);
    std::cout << "\n";
  }
  return 0;
}

int cmd_evaluate(models::ModelKind kind) {
  models::ProvisionedModel pm =
      models::get_provisioned(kind, {}, {}, cache_dir());
  core::ReversiblePruner rp = pm.make_pruner();
  const sim::PlatformModel platform;
  const nn::Shape in = models::zoo_input_shape();

  TableFormatter table({"level", "ratio", "sparsity", "eff_MMACs",
                        "model_latency_ms", "model_energy_mJ", "accuracy"});
  for (int k = 0; k < rp.level_count(); ++k) {
    rp.set_level(k);
    const std::int64_t macs = rp.active_macs(in);
    table.row({std::to_string(k), fmt(pm.levels.ratio(k), 2),
               fmt(pm.levels.mask(k).sparsity(pm.net), 3),
               fmt(macs / 1e6, 3), fmt(platform.latency_ms(macs), 3),
               fmt(platform.energy_mj(macs), 3),
               fmt(pm.level_accuracy[static_cast<std::size_t>(k)], 3)});
  }
  rp.set_level(0);
  table.print(std::cout);
  return 0;
}

int cmd_sensitivity(models::ModelKind kind) {
  models::ProvisionedModel pm =
      models::get_provisioned(kind, {}, {}, cache_dir());
  prune::SensitivityOptions opt;
  const auto points = prune::layer_sensitivity(
      pm.net, pm.eval_data, models::zoo_input_shape(), opt);
  TableFormatter table({"layer", "ratio", "accuracy", "net_sparsity"});
  for (const auto& p : points)
    table.row({p.layer, fmt(p.ratio, 2), fmt(p.accuracy, 3),
               fmt(p.sparsity, 3)});
  table.print(std::cout);
  return 0;
}

struct RunOutputs {
  std::string csv_path;
  std::string trace_in;
  std::string trace_out;
  std::string assurance_path;
};

int cmd_run(models::ModelKind kind, const std::string& suite, int frames,
            std::uint64_t seed, const std::string& policy_name,
            int hysteresis, const RunOutputs& io) {
  models::ProvisionedModel pm =
      models::get_provisioned(kind, {}, {}, cache_dir());

  sim::Scenario scenario;
  if (!io.trace_in.empty()) scenario = sim::load_scenario_csv(io.trace_in);
  else if (suite == "highway") scenario = sim::make_highway(frames, seed);
  else if (suite == "urban") scenario = sim::make_urban(frames, seed);
  else if (suite == "cut_in") scenario = sim::make_cut_in(frames, seed);
  else if (suite == "degraded") scenario = sim::make_degraded(frames, seed);
  else if (suite == "intersection")
    scenario = sim::make_intersection(frames, seed);
  else {
    std::cerr << "unknown suite '" << suite << "'\n";
    return 2;
  }
  if (!io.trace_out.empty()) {
    sim::save_scenario_csv(scenario, io.trace_out);
    std::cout << "trace written to " << io.trace_out << "\n";
  }

  core::SafetyConfig certified;
  certified.max_level_for = {4, 3, 1, 0};
  sim::RunConfig cfg;
  cfg.deadline_ms = 12.0;
  cfg.noise_seed = seed ^ 0xC0FFEEull;

  core::ReversiblePruner provider = pm.make_pruner();
  std::unique_ptr<core::Policy> policy;
  if (policy_name == "greedy") {
    policy = std::make_unique<core::CriticalityGreedyPolicy>(
        certified, hysteresis, provider.level_count());
  } else if (policy_name == "hybrid") {
    const sim::PlatformModel platform(cfg.platform);
    const core::LevelProfile prof = sim::profile_levels(
        provider, platform, pm.eval_data, models::zoo_input_shape());
    policy = std::make_unique<core::HybridPolicy>(certified, prof, hysteresis);
  } else if (policy_name == "oracle") {
    policy = std::make_unique<core::OraclePolicy>(
        certified, sim::criticality_trace(scenario, cfg.criticality), 15);
  } else if (policy_name.rfind("fixed", 0) == 0) {
    policy = std::make_unique<core::FixedPolicy>(
        std::stoi(policy_name.substr(5)));
  } else {
    std::cerr << "unknown policy '" << policy_name << "'\n";
    return 2;
  }

  core::SafetyMonitor monitor(certified);
  core::RuntimeController controller(*policy, provider, &monitor);
  const sim::RunResult result = sim::run_scenario(scenario, controller, cfg);

  const core::RunSummary& s = result.summary;
  TableFormatter table({"metric", "value"});
  table.row({"scenario", result.scenario});
  table.row({"policy", result.policy});
  table.row({"frames", std::to_string(s.frames)});
  table.row({"accuracy", fmt(s.accuracy, 3)});
  table.row({"critical accuracy", fmt(s.critical_accuracy, 3)});
  table.row({"missed critical %", fmt(100.0 * s.missed_critical_rate, 1)});
  table.row({"deadline miss %", fmt(100.0 * s.deadline_miss_rate, 1)});
  table.row({"total energy mJ", fmt(s.total_energy_mj, 1)});
  table.row({"mean level", fmt(s.mean_level, 2)});
  table.row({"level switches", std::to_string(s.level_switches)});
  table.row({"mean switch us", fmt(s.mean_switch_us, 1)});
  table.row({"safety vetoes", std::to_string(s.vetoes)});
  table.row({"safety violations", std::to_string(s.safety_violations)});
  table.print(std::cout);

  if (!io.csv_path.empty()) {
    if (!write_output_file(io.csv_path, [&](std::ostream& o) {
          result.telemetry.write_csv(o);
        }))
      return 1;
    std::cout << "telemetry written to " << io.csv_path << "\n";
  }
  if (!io.assurance_path.empty()) {
    core::AssuranceReport report;
    report.scenario = result.scenario;
    report.provider = result.provider;
    report.policy = result.policy;
    report.certified = certified;
    report.summary = result.summary;
    report.log = monitor.log();
    if (!write_output_file(io.assurance_path, [&](std::ostream& o) {
          core::write_assurance_json(report, o);
        }))
      return 1;
    std::cout << "assurance report written to " << io.assurance_path << "\n";
  }
  return 0;
}

struct TraceOutputs {
  std::string json_path = "trace.json";
  std::string spans_path = "trace_spans.csv";
  std::string metrics_path = "trace_metrics.csv";
  bool wall = false;
};

int cmd_trace(models::ModelKind kind, const std::string& suite, int frames,
              std::uint64_t seed, const std::string& policy_name,
              const TraceOutputs& io) {
  models::ProvisionedModel pm =
      models::get_provisioned(kind, {}, {}, cache_dir());

  sim::Scenario scenario;
  if (suite == "highway") scenario = sim::make_highway(frames, seed);
  else if (suite == "urban") scenario = sim::make_urban(frames, seed);
  else if (suite == "cut_in") scenario = sim::make_cut_in(frames, seed);
  else if (suite == "degraded") scenario = sim::make_degraded(frames, seed);
  else if (suite == "intersection")
    scenario = sim::make_intersection(frames, seed);
  else {
    std::cerr << "unknown suite '" << suite << "'\n";
    return 2;
  }

  core::SafetyConfig certified;
  certified.max_level_for = {4, 3, 1, 0};
  sim::RunConfig cfg;
  cfg.deadline_ms = 12.0;
  cfg.noise_seed = seed ^ 0xC0FFEEull;

  core::ReversiblePruner provider = pm.make_pruner();
  std::unique_ptr<core::Policy> policy;
  if (policy_name == "greedy") {
    policy = std::make_unique<core::CriticalityGreedyPolicy>(
        certified, 6, provider.level_count());
  } else if (policy_name.rfind("fixed", 0) == 0) {
    policy = std::make_unique<core::FixedPolicy>(
        std::stoi(policy_name.substr(5)));
  } else {
    std::cerr << "unknown policy '" << policy_name
              << "' (trace supports greedy|fixed<K>)\n";
    return 2;
  }

  core::SafetyMonitor monitor(certified);
  core::RuntimeController controller(*policy, provider, &monitor);

  // Arm the observability layer only for the run itself, so provisioning
  // noise never leaks into the exported snapshot.
  core::reset_observability();
  trace::set_wall_clock(io.wall);
  trace::set_enabled(true);
  const sim::RunResult result = sim::run_scenario(scenario, controller, cfg);
  trace::set_enabled(false);

  const core::FrameReconciliation rec =
      core::reconcile_frame_spans(result.telemetry);
  const core::MetricsSnapshot snap = core::capture_metrics();

  if (!write_output_file(io.json_path,
                         [](std::ostream& o) { trace::write_chrome_trace(o); }))
    return 1;
  if (!write_output_file(io.spans_path,
                         [](std::ostream& o) { trace::write_span_csv(o); }))
    return 1;
  if (!write_output_file(io.metrics_path,
                         [&](std::ostream& o) { snap.write_csv(o); }))
    return 1;

  TableFormatter table({"metric", "value"});
  table.row({"scenario", result.scenario});
  table.row({"frames", std::to_string(result.summary.frames)});
  table.row({"spans", std::to_string(trace::spans().size())});
  table.row({"dropped spans", std::to_string(trace::dropped_spans())});
  table.row({"frames reconciled", std::to_string(rec.frames_compared)});
  table.row({"missing frame spans", std::to_string(rec.missing_frame_spans)});
  table.row({"max |telemetry - span| us",
             CsvWriter::num(rec.max_abs_delta_us, 12)});
  table.print(std::cout);
  std::cout << "chrome trace written to " << io.json_path << "\n"
            << "span csv written to " << io.spans_path << "\n"
            << "metrics csv written to " << io.metrics_path << "\n";

  if (!rec.ok()) {
    std::cerr << "reconciliation FAILED: per-frame span modeled time "
                 "diverges from Telemetry (> 1e-9 us)\n";
    return 1;
  }
  std::cout << "reconciliation OK (<= 1e-9 us)\n";
  return 0;
}

std::vector<std::string> split_csv_list(const std::string& value) {
  std::vector<std::string> out;
  std::string current;
  for (char c : value) {
    if (c == ',') {
      if (!current.empty()) out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

/// Parses the `--kinds a,b,c` flag into a FaultMix with exactly the named
/// kinds enabled (unit weight).  An unknown or empty kind name is a
/// diagnostic + false — the caller exits non-zero, never silently runs a
/// different campaign than the one asked for.
bool parse_fault_kinds(const std::string& value, sim::FaultMix& mix) {
  sim::FaultMix selected;
  selected.sensor_blackout = selected.weight_bit_flip =
      selected.store_bit_flip = selected.stuck_criticality =
          selected.stale_criticality = selected.latency_spike =
              selected.dropped_decision = selected.artifact_read_failure = 0.0;
  const std::vector<std::string> names = split_csv_list(value);
  const auto diag = [](const std::string& got) {
    std::cerr << "unknown fault kind '" << got << "' (expected one of:";
    for (int k = 0; k < sim::kFaultKinds; ++k)
      std::cerr << " "
                << sim::fault_kind_name(static_cast<sim::FaultKind>(k));
    std::cerr << ")\n";
  };
  if (names.empty()) {
    diag(value);
    return false;
  }
  for (const std::string& name : names) {
    if (name == "sensor_blackout") selected.sensor_blackout = 1.0;
    else if (name == "weight_bit_flip") selected.weight_bit_flip = 1.0;
    else if (name == "store_bit_flip") selected.store_bit_flip = 1.0;
    else if (name == "stuck_criticality") selected.stuck_criticality = 1.0;
    else if (name == "stale_criticality") selected.stale_criticality = 1.0;
    else if (name == "latency_spike") selected.latency_spike = 1.0;
    else if (name == "dropped_decision") selected.dropped_decision = 1.0;
    else if (name == "artifact_read_failure")
      selected.artifact_read_failure = 1.0;
    else {
      diag(name);
      return false;
    }
  }
  mix = selected;
  return true;
}

int cmd_faults(models::ModelKind kind, const sim::FaultCampaignConfig& config,
               const std::string& csv_path) {
  models::ProvisionedModel pm =
      models::get_provisioned(kind, {}, {}, cache_dir());

  sim::CampaignInputs inputs;
  inputs.net = &pm.net;
  inputs.levels = &pm.levels;
  inputs.bn_states = pm.bn_states;
  inputs.certified.max_level_for = {4, 3, 1, 0};

  const sim::FaultCampaignResult result =
      sim::run_fault_campaign(inputs, config);

  // Default output is the streaming aggregator: per-arm counters plus
  // mergeable quantile sketches of detection latency / recovery cost.
  // Per-fault rows only exist behind --csv.
  sim::write_fault_tail_stats(sim::fold_fault_outcomes(result), std::cout);
  std::cout << result.outcomes.size() << " fault outcomes across "
            << config.suites.size() << " suite(s) x " << config.arms.size()
            << " arm(s), seed " << config.seed << "\n";

  if (!csv_path.empty()) {
    if (!write_output_file(csv_path, [&](std::ostream& o) {
          sim::write_campaign_csv(result, o);
        }))
      return 1;
    std::cout << "campaign CSV written to " << csv_path << "\n";
  }
  return 0;
}

struct BlackboxDumpOptions {
  int frames = 600;
  std::uint64_t seed = 20240325;
  std::string policy = "greedy";
  int hysteresis = 6;
  int faults = 10;
  int scrub = 20;
  int watchdog = 8;
  double deadline_ms = 12.0;
  int capacity = 256;
  bool trace = false;
  bool force = false;
  std::string out;  ///< basename; empty -> blackbox_<model>_<suite>
};

sim::CampaignInputs blackbox_inputs(models::ProvisionedModel& pm) {
  sim::CampaignInputs inputs;
  inputs.net = &pm.net;
  inputs.levels = &pm.levels;
  inputs.bn_states = pm.bn_states;
  inputs.certified.max_level_for = {4, 3, 1, 0};
  return inputs;
}

void print_incidents(const core::IncidentBundle& bundle) {
  for (const core::Incident& inc : bundle.incidents)
    std::cout << "incident frame=" << inc.frame << " id=" << inc.slo_id
              << " observed=" << fmt(inc.observed, 4)
              << " threshold=" << fmt(inc.threshold, 4)
              << (inc.detail.empty() ? "" : " (" + inc.detail + ")") << "\n";
  if (bundle.dropped_incidents > 0)
    std::cout << "(" << bundle.dropped_incidents
              << " further incidents dropped at the cap)\n";
}

int cmd_blackbox_dump(models::ModelKind kind, const std::string& suite,
                      const BlackboxDumpOptions& opt) {
  models::ProvisionedModel pm =
      models::get_provisioned(kind, {}, {}, cache_dir());
  sim::CampaignInputs inputs = blackbox_inputs(pm);

  sim::BlackboxRunSpec spec;
  spec.model = models::model_kind_name(kind);
  spec.suite = suite;
  spec.policy = opt.policy;
  spec.frames = opt.frames;
  spec.scenario_seed = opt.seed;
  spec.noise_seed = opt.seed ^ 0x5DEECE66Dull;
  spec.deadline_ms = opt.deadline_ms;
  spec.hysteresis = opt.hysteresis;
  spec.scrub_period_frames = opt.scrub;
  spec.watchdog_overrun_frames = opt.watchdog;
  spec.trace_enabled = opt.trace;
  spec.recorder_capacity = static_cast<std::size_t>(opt.capacity);
  if (opt.faults > 0)
    spec.faults = sim::FaultPlan::random_plan(opt.seed ^ 0x9E3779B97F4A7C15ull,
                                              opt.frames, opt.faults);

  const sim::BlackboxRunResult res = sim::run_blackbox(spec, inputs);

  const core::RunSummary& s = res.run.summary;
  TableFormatter table({"metric", "value"});
  table.row({"scenario", res.run.scenario});
  table.row({"frames", std::to_string(s.frames)});
  table.row({"accuracy", fmt(s.accuracy, 3)});
  table.row({"deadline miss %", fmt(100.0 * s.deadline_miss_rate, 1)});
  table.row({"safety violations", std::to_string(s.safety_violations)});
  table.row({"incidents", std::to_string(res.bundle.incidents.size())});
  table.row({"recorded frames",
             std::to_string(res.bundle.records.size())});
  table.print(std::cout);
  print_incidents(res.bundle);

  if (!res.incident && !opt.force) {
    std::cout << "no SLO incident fired; nothing dumped (use --force 1 to "
                 "dump anyway)\n";
    return 0;
  }
  const std::string base =
      opt.out.empty()
          ? "blackbox_" + std::string(models::model_kind_name(kind)) + "_" +
                suite
          : opt.out;
  if (!write_output_file(
          base + ".rrpb",
          [&](std::ostream& o) { core::write_incident_bundle(res.bundle, o); },
          /*binary=*/true))
    return 1;
  if (!write_output_file(base + ".csv", [&](std::ostream& o) {
        core::write_incident_csv(res.bundle, o);
      }))
    return 1;
  std::cout << "incident bundle written to " << base << ".rrpb (+ " << base
            << ".csv)\n";
  return 0;
}

core::IncidentBundle load_bundle(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f)
    throw rrp::SerializationError("cannot open incident bundle '" + path +
                                  "'");
  return core::read_incident_bundle(f);
}

int cmd_blackbox_inspect(const std::string& path) {
  std::cout << core::incident_summary_string(load_bundle(path));
  return 0;
}

int cmd_blackbox_replay(const std::string& path) {
  const core::IncidentBundle bundle = load_bundle(path);
  const auto kind = parse_model(bundle.context.model);
  if (!kind) return 2;
  models::ProvisionedModel pm =
      models::get_provisioned(*kind, {}, {}, cache_dir());
  sim::CampaignInputs inputs = blackbox_inputs(pm);

  const sim::ReplayResult res = sim::replay_bundle(bundle, inputs);
  TableFormatter table({"check", "result"});
  table.row({"window records byte-identical",
             res.records_match ? "yes" : "NO"});
  table.row({"telemetry digest match", res.telemetry_match ? "yes" : "NO"});
  table.row({"incidents match", res.incidents_match ? "yes" : "NO"});
  table.row({"bundle bytes identical", res.match ? "yes" : "NO"});
  table.print(std::cout);
  if (!res.match) {
    std::cerr << "replay MISMATCH: the re-run did not reproduce the recorded "
                 "bundle (model weights changed, or a nondeterminism bug)\n";
    return 1;
  }
  std::cout << "replay OK: " << bundle.records.size()
            << " recorded frames reproduced byte-identically\n";
  return 0;
}

struct CampaignCliOptions {
  std::uint64_t seed = 0;
  bool seed_set = false;
  int frames = 0;       ///< 0 = use the spec's value
  std::string out;      ///< optional report file (stdout always gets it)
  std::string bundle;   ///< worst-cell bundle basename
  bool dump_bundles = true;
};

int cmd_campaign(models::ModelKind kind, const std::string& spec_path,
                 const CampaignCliOptions& opt) {
  sim::CampaignSpec spec = sim::load_campaign_spec(spec_path);
  if (opt.seed_set) spec.seed = opt.seed;
  if (opt.frames > 0) spec.frames = opt.frames;

  models::ProvisionedModel pm =
      models::get_provisioned(kind, {}, {}, cache_dir());
  sim::CampaignInputs inputs = blackbox_inputs(pm);

  const sim::CampaignAggregate agg = sim::run_campaign(spec, inputs);
  sim::write_campaign_report(spec, agg, std::cout);
  if (!opt.out.empty()) {
    if (!write_output_file(opt.out, [&](std::ostream& o) {
          sim::write_campaign_report(spec, agg, o);
        }))
      return 1;
    std::cout << "campaign report written to " << opt.out << "\n";
  }

  if (!opt.dump_bundles) return 0;
  // Re-run each worst cell serially under the flight recorder and pack a
  // self-contained incident bundle ("dsl:" suite string), so the exact
  // worst runs of the campaign replay byte-identically via
  // `rrp_cli blackbox replay`.
  const std::string base =
      opt.bundle.empty() ? "campaign_worst" : opt.bundle;
  for (std::size_t i = 0; i < agg.worst.size(); ++i) {
    const sim::CampaignWorstCell& w = agg.worst[i];
    const sim::BlackboxRunSpec bspec = sim::blackbox_spec_for_cell(
        spec, w.cell, models::model_kind_name(kind));
    const sim::BlackboxRunResult res = sim::run_blackbox(bspec, inputs);
    const std::string path = base + "_" + std::to_string(i) + ".rrpb";
    if (!write_output_file(
            path,
            [&](std::ostream& o) { core::write_incident_bundle(res.bundle, o); },
            /*binary=*/true))
      return 1;
    std::cout << "worst[" << i << "] cell " << w.cell.index << " ("
              << w.cell.policy << ") bundle written to " << path
              << "  [rrp_cli blackbox replay " << path << "]\n";
  }
  return 0;
}

struct ServeCliOptions {
  int streams = 4;
  std::vector<std::string> suites = {"cut_in", "urban", "highway", "degraded"};
  int frames = 300;
  std::uint64_t seed = 20240807;
  double budget_ms = 0.0;
  int capacity = 8;
  int stagger = 0;
  std::string policy = "greedy";
  double deadline_ms = 12.0;
  std::string out;
  std::string report_json;
  bool wall = false;
  int snapshot_every = 0;
  std::string snapshot_out;
};

int cmd_serve(models::ModelKind kind, const ServeCliOptions& opt) {
  models::ProvisionedModel pm =
      models::get_provisioned(kind, {}, {}, cache_dir());

  serve::ServeInputs inputs;
  inputs.net = &pm.net;
  inputs.levels = &pm.levels;
  inputs.bn_states = pm.bn_states;
  inputs.certified.max_level_for = {4, 3, 1, 0};

  serve::ServeConfig cfg;
  cfg.seed = opt.seed;
  cfg.tick_budget_ms = opt.budget_ms;
  cfg.admission.max_streams = opt.capacity;
  cfg.measure_wall = opt.wall;
  cfg.snapshot_every_ticks =
      opt.snapshot_every > 0 ? opt.snapshot_every
                             : (!opt.snapshot_out.empty() ? 50 : 0);

  std::vector<serve::StreamSpec> specs;
  specs.reserve(static_cast<std::size_t>(opt.streams));
  for (int i = 0; i < opt.streams; ++i) {
    serve::StreamSpec spec;
    spec.scenario = opt.suites[static_cast<std::size_t>(i) % opt.suites.size()];
    spec.policy = opt.policy;
    spec.frames = opt.frames;
    spec.arrival_tick = static_cast<std::int64_t>(i) * opt.stagger;
    // Earlier arrivals survive shedding longer, so overload trims the
    // newest streams first — the least surprising default.
    spec.priority = opt.streams - i;
    spec.deadline_ms = opt.deadline_ms;
    specs.push_back(std::move(spec));
  }

  serve::ServeEngine engine(inputs, cfg);
  if (opt.wall) {
    wprof::reset();
    wprof::set_enabled(true);
  }
  const serve::ServeReport report = engine.run(specs);
  if (opt.wall) wprof::set_enabled(false);
  serve::write_serve_report(report, std::cout);
  if (opt.wall) {
    // Measured wall-clock channel only: never part of the byte-identity
    // contract, never consumed by gates or tests.
    std::cout << "\nwall profile (measured; excluded from every gate):\n";
    TableFormatter table({"span", "count", "total_ms", "mean_us", "max_us"});
    for (const wprof::Stat& s : wprof::stats())
      table.row({s.key, std::to_string(s.count), fmt(s.total_us / 1000.0, 3),
                 fmt(s.mean_us(), 3), fmt(s.max_us, 3)});
    table.print(std::cout);
  }
  if (!opt.out.empty()) {
    if (!write_output_file(opt.out, [&](std::ostream& o) {
          serve::write_serve_report(report, o);
        }))
      return 1;
    std::cout << "serve report written to " << opt.out << "\n";
  }
  if (!opt.report_json.empty()) {
    if (!write_output_file(opt.report_json, [&](std::ostream& o) {
          serve::write_serve_report_json(report, o);
        }))
      return 1;
    std::cout << "serve report JSON written to " << opt.report_json << "\n";
  }
  if (!opt.snapshot_out.empty()) {
    for (const serve::FleetSnapshot& s : report.snapshots) {
      const std::string base =
          opt.snapshot_out + "_tick" + std::to_string(s.tick);
      if (!write_output_file(base + ".json",
                             [&](std::ostream& o) { o << s.json; }))
        return 1;
      if (!write_output_file(base + ".prom",
                             [&](std::ostream& o) { o << s.prom; }))
        return 1;
    }
    if (!write_output_file(opt.snapshot_out + "_timeline.csv",
                           [&](std::ostream& o) {
                             o << serve::timeline_csv(report.timeline);
                           }))
      return 1;
    std::cout << report.snapshots.size() << " snapshot(s) + timeline written "
              << "to " << opt.snapshot_out << "_*\n";
  }
  return 0;
}

// ---------------------------------------------------------------------------
// rrp_cli report — offline analyzer over the CLI's own JSON artifacts.

/// One `"name"/"id": "<string>", ... "value": <number>` pair scanned out
/// of a JSON document.  Escape-aware on the string; NOT a general JSON
/// parser — just enough to round-trip files this toolchain writes itself
/// (fleet snapshots, bench reports), whose layout is deterministic.
struct ScannedRow {
  std::string name;
  double value = 0.0;
};

std::vector<ScannedRow> scan_json_rows(const std::string& text,
                                       const std::string& key) {
  std::vector<ScannedRow> rows;
  const std::string key_tok = "\"" + key + "\"";
  std::size_t pos = 0;
  while ((pos = text.find(key_tok, pos)) != std::string::npos) {
    std::size_t p = pos + key_tok.size();
    while (p < text.size() && (text[p] == ' ' || text[p] == ':')) ++p;
    if (p >= text.size() || text[p] != '"') {
      pos = p;
      continue;
    }
    ++p;
    std::string name;
    bool closed = false;
    while (p < text.size()) {
      const char c = text[p++];
      if (c == '\\' && p < text.size()) {
        const char e = text[p++];
        name += e == 'n' ? '\n' : e;  // \" \\ \n are the writer's escapes
      } else if (c == '"') {
        closed = true;
        break;
      } else {
        name += c;
      }
    }
    if (!closed) break;
    const std::size_t vpos = text.find("\"value\"", p);
    if (vpos == std::string::npos) break;
    std::size_t v = vpos + 7;
    while (v < text.size() && (text[v] == ' ' || text[v] == ':')) ++v;
    rows.push_back({name, std::strtod(text.c_str() + v, nullptr)});
    pos = v;
  }
  return rows;
}

bool read_text_file(const std::string& path, std::string& out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    std::cerr << "error: cannot read '" << path << "'\n";
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  out = ss.str();
  return true;
}

/// Splits a labeled per-stream metric name into (stream index, suffix
/// after the label block).  Returns false for unlabeled / non-stream rows.
bool parse_stream_metric(const std::string& name, const std::string& base,
                         int& stream, std::string& suffix) {
  const std::string want = base + "{stream=\"";
  if (name.rfind(want, 0) != 0) return false;
  std::size_t p = want.size();
  std::size_t digits = 0;
  int idx = 0;
  while (p < name.size() && name[p] >= '0' && name[p] <= '9') {
    idx = idx * 10 + (name[p] - '0');
    ++p;
    ++digits;
  }
  if (digits == 0 || p + 1 >= name.size() || name[p] != '"' ||
      name[p + 1] != '}')
    return false;
  stream = idx;
  suffix = name.substr(p + 2);
  return true;
}

int report_saturation(const std::string& bench_path) {
  std::string text;
  if (!read_text_file(bench_path, text)) return 1;
  // wall ids: wall_s<N>_fps<F>.frames_per_s (bench_serve --wall).
  std::map<int, double> throughput;  // streams -> fleet frames/s
  for (const ScannedRow& r : scan_json_rows(text, "id")) {
    if (r.name.rfind("wall_s", 0) != 0) continue;
    if (r.name.size() < 13 ||
        r.name.compare(r.name.size() - 13, 13, ".frames_per_s") != 0)
      continue;
    std::size_t p = 6;
    int streams = 0, digits = 0;
    while (p < r.name.size() && r.name[p] >= '0' && r.name[p] <= '9') {
      streams = streams * 10 + (r.name[p] - '0');
      ++p;
      ++digits;
    }
    if (digits == 0) continue;
    throughput[streams] = r.value;
  }
  if (throughput.empty()) {
    std::cerr << "no wall_s<N>*.frames_per_s metrics in " << bench_path
              << " (run bench_serve --wall 1 first)\n";
    return 1;
  }
  std::cout << "streams-vs-throughput saturation (" << bench_path << "):\n";
  TableFormatter table(
      {"streams", "frames_per_s", "per_stream", "efficiency", "marginal", ""});
  const double base = throughput.begin()->second /
                      static_cast<double>(throughput.begin()->first);
  int prev_n = 0;
  double prev_t = 0.0;
  bool knee_seen = false;
  for (const auto& [n, t] : throughput) {
    // Marginal efficiency: extra throughput per extra stream, relative to
    // the single-stream rate.  The knee is the first point where adding
    // streams returns less than half a stream's worth of throughput each.
    double marginal = 1.0;
    if (prev_n > 0 && n > prev_n && base > 0.0)
      marginal = (t - prev_t) / (base * static_cast<double>(n - prev_n));
    const bool knee = !knee_seen && prev_n > 0 && marginal < 0.5;
    if (knee) knee_seen = true;
    table.row({std::to_string(n), fmt(t, 1), fmt(t / n, 1),
               base > 0.0 ? fmt(t / (base * n), 3) : "-", fmt(marginal, 3),
               knee ? "<- knee" : ""});
    prev_n = n;
    prev_t = t;
  }
  table.print(std::cout);
  return 0;
}

int report_heatmaps(const std::vector<std::string>& snapshot_paths,
                    const std::string& heatmap_base) {
  struct TickData {
    std::int64_t tick = 0;
    std::map<int, double> level;                          // stream -> gauge
    std::map<int, std::map<std::string, double>> hist;    // stream -> rows
  };
  std::vector<TickData> ticks;
  std::map<int, bool> stream_set;
  for (const std::string& path : snapshot_paths) {
    std::string text;
    if (!read_text_file(path, text)) return 1;
    TickData td;
    const std::size_t tpos = text.find("\"tick\":");
    if (tpos != std::string::npos)
      td.tick = std::strtoll(text.c_str() + tpos + 7, nullptr, 10);
    for (const ScannedRow& r : scan_json_rows(text, "name")) {
      int stream = 0;
      std::string suffix;
      if (parse_stream_metric(r.name, "serve.stream.level", stream, suffix) &&
          suffix.empty()) {
        td.level[stream] = r.value;
        stream_set[stream] = true;
      } else if (parse_stream_metric(r.name, "serve.stream.frame_ms", stream,
                                     suffix) &&
                 !suffix.empty()) {
        td.hist[stream][suffix] = r.value;  // ".le_<b>" | ".overflow" | ".total"
        stream_set[stream] = true;
      }
    }
    ticks.push_back(std::move(td));
  }
  std::sort(ticks.begin(), ticks.end(),
            [](const TickData& a, const TickData& b) { return a.tick < b.tick; });

  // p99 upper bound from the cumulative bucket counts: the first bound
  // whose cumulative count covers 99% of the total ("inf" on overflow).
  const auto hist_p99 = [](const std::map<std::string, double>& rows)
      -> std::string {
    const auto tot_it = rows.find(".total");
    if (tot_it == rows.end() || tot_it->second <= 0.0) return "";
    const double want = 0.99 * tot_it->second;
    std::vector<std::pair<double, double>> buckets;  // bound -> count
    for (const auto& [suffix, count] : rows)
      if (suffix.rfind(".le_", 0) == 0)
        buckets.emplace_back(std::strtod(suffix.c_str() + 4, nullptr), count);
    std::sort(buckets.begin(), buckets.end());
    double cum = 0.0;
    for (const auto& [bound, count] : buckets) {
      cum += count;
      if (cum >= want) return fmt(bound, 6);
    }
    return "inf";
  };

  for (int which = 0; which < 2; ++which) {
    const bool level = which == 0;
    const std::string path =
        heatmap_base + (level ? "_level.csv" : "_p99.csv");
    const bool ok = write_output_file(path, [&](std::ostream& o) {
      o << "tick";
      for (const auto& [s, _] : stream_set) o << ",stream" << s;
      o << "\n";
      for (const TickData& td : ticks) {
        o << td.tick;
        for (const auto& [s, _] : stream_set) {
          o << ",";
          if (level) {
            const auto it = td.level.find(s);
            if (it != td.level.end()) o << fmt(it->second, 6);
          } else {
            const auto it = td.hist.find(s);
            if (it != td.hist.end()) o << hist_p99(it->second);
          }
        }
        o << "\n";
      }
    });
    if (!ok) return 1;
    std::cout << (level ? "level" : "p99") << " heatmap written to " << path
              << " (" << ticks.size() << " tick(s) x " << stream_set.size()
              << " stream(s))\n";
  }
  return 0;
}

int cmd_report(const std::string& bench_path,
               const std::vector<std::string>& snapshot_paths,
               const std::string& heatmap_base) {
  if (bench_path.empty() && snapshot_paths.empty()) {
    std::cerr << "report needs --bench and/or --snapshot inputs\n";
    return 2;
  }
  if (!bench_path.empty()) {
    const int rc = report_saturation(bench_path);
    if (rc != 0) return rc;
  }
  if (!snapshot_paths.empty()) {
    if (heatmap_base.empty()) {
      std::cerr << "--snapshot inputs need --heatmap BASE for the output\n";
      return 2;
    }
    return report_heatmaps(snapshot_paths, heatmap_base);
  }
  return 0;
}

int cmd_inspect(const std::string& path) {
  nn::Network net = nn::load_network(path);
  std::cout << "network '" << net.name() << "'\n";
  TableFormatter table({"layer", "kind", "params", "out_prunable"});
  for (nn::Layer* l : net.leaf_layers()) {
    std::int64_t params = 0;
    for (auto& p : l->params()) params += p.value->numel();
    std::string prunable = "-";
    if (auto* c = dynamic_cast<nn::Conv2D*>(l))
      prunable = c->out_prunable() ? "yes" : "no";
    else if (auto* lin = dynamic_cast<nn::Linear*>(l))
      prunable = lin->out_prunable() ? "yes" : "no";
    else if (auto* dw = dynamic_cast<nn::DepthwiseConv2D*>(l))
      prunable = dw->out_prunable() ? "yes" : "no";
    table.row({l->name(), nn::layer_kind_name(l->kind()),
               std::to_string(params), prunable});
  }
  table.print(std::cout);
  std::cout << "total parameters: " << net.param_count() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Extract the global --threads flag (any position) before dispatch.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "--threads expects a value\n";
        return 2;
      }
      // Strict full-string parse (util/cli.h): "0", "-3", "abc" and
      // "4abc" are all diagnostics + exit 2, never a silent fallback.
      const std::optional<int> threads = parse_thread_count(argv[i + 1]);
      if (!threads) {
        std::cerr << "--threads expects a positive integer, got '"
                  << argv[i + 1] << "'\n";
        return 2;
      }
      ThreadPool::set_global_threads(*threads);
      ++i;  // skip the value
      continue;
    }
    args.push_back(argv[i]);
  }
  argc = static_cast<int>(args.size());
  argv = args.data();

  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "models") return cmd_models();
    if (cmd == "inspect") {
      if (argc < 3) return usage();
      return cmd_inspect(argv[2]);
    }
    if (cmd == "provision" || cmd == "evaluate" || cmd == "sensitivity") {
      if (argc < 3) return usage();
      if (cmd == "provision" && std::string(argv[2]) == "all")
        return cmd_provision_all();
      const auto kind = parse_model(argv[2]);
      if (!kind) return 2;
      if (cmd == "provision") return cmd_provision(*kind);
      if (cmd == "evaluate") return cmd_evaluate(*kind);
      return cmd_sensitivity(*kind);
    }
    if (cmd == "blackbox") {
      if (argc < 3) return usage();
      const std::string sub = argv[2];
      if (sub == "inspect" || sub == "replay") {
        if (argc < 4) return usage();
        return sub == "inspect" ? cmd_blackbox_inspect(argv[3])
                                : cmd_blackbox_replay(argv[3]);
      }
      if (sub != "dump" || argc < 5) return usage();
      const auto kind = parse_model(argv[3]);
      if (!kind) return 2;
      const std::string suite = argv[4];
      BlackboxDumpOptions opt;
      for (int i = 5; i + 1 < argc; i += 2) {
        const std::string flag = argv[i];
        const std::string value = argv[i + 1];
        if (flag == "--frames") opt.frames = std::stoi(value);
        else if (flag == "--seed") opt.seed = std::stoull(value);
        else if (flag == "--policy") opt.policy = value;
        else if (flag == "--hysteresis") opt.hysteresis = std::stoi(value);
        else if (flag == "--faults") opt.faults = std::stoi(value);
        else if (flag == "--scrub") opt.scrub = std::stoi(value);
        else if (flag == "--watchdog") opt.watchdog = std::stoi(value);
        else if (flag == "--deadline") opt.deadline_ms = std::stod(value);
        else if (flag == "--capacity") opt.capacity = std::stoi(value);
        else if (flag == "--trace") opt.trace = value != "0";
        else if (flag == "--out") opt.out = value;
        else if (flag == "--force") opt.force = value != "0";
        else {
          std::cerr << "unknown flag " << flag << "\n";
          return 2;
        }
      }
      return cmd_blackbox_dump(*kind, suite, opt);
    }
    if (cmd == "run") {
      if (argc < 4) return usage();
      const auto kind = parse_model(argv[2]);
      if (!kind) return 2;
      const std::string suite = argv[3];
      int frames = 900, hysteresis = 6;
      std::uint64_t seed = 20240325;
      std::string policy = "greedy";
      RunOutputs io;
      for (int i = 4; i + 1 < argc; i += 2) {
        const std::string flag = argv[i];
        const std::string value = argv[i + 1];
        if (flag == "--frames") frames = std::stoi(value);
        else if (flag == "--seed") seed = std::stoull(value);
        else if (flag == "--policy") policy = value;
        else if (flag == "--hysteresis") hysteresis = std::stoi(value);
        else if (flag == "--csv") io.csv_path = value;
        else if (flag == "--trace") io.trace_in = value;
        else if (flag == "--export-trace") io.trace_out = value;
        else if (flag == "--assurance") io.assurance_path = value;
        else {
          std::cerr << "unknown flag " << flag << "\n";
          return 2;
        }
      }
      return cmd_run(*kind, suite, frames, seed, policy, hysteresis, io);
    }
    if (cmd == "trace") {
      if (argc < 4) return usage();
      const auto kind = parse_model(argv[2]);
      if (!kind) return 2;
      const std::string suite = argv[3];
      int frames = 900;
      std::uint64_t seed = 20240325;
      std::string policy = "greedy";
      TraceOutputs io;
      for (int i = 4; i + 1 < argc; i += 2) {
        const std::string flag = argv[i];
        const std::string value = argv[i + 1];
        if (flag == "--frames") frames = std::stoi(value);
        else if (flag == "--seed") seed = std::stoull(value);
        else if (flag == "--policy") policy = value;
        else if (flag == "--json") io.json_path = value;
        else if (flag == "--spans") io.spans_path = value;
        else if (flag == "--metrics") io.metrics_path = value;
        else if (flag == "--wall") io.wall = value != "0";
        else {
          std::cerr << "unknown flag " << flag << "\n";
          return 2;
        }
      }
      return cmd_trace(*kind, suite, frames, seed, policy, io);
    }
    if (cmd == "faults") {
      if (argc < 3) return usage();
      const auto kind = parse_model(argv[2]);
      if (!kind) return 2;
      sim::FaultCampaignConfig config;
      config.artifact_dir = cache_dir() + "/fault_artifacts";
      std::string csv_path;
      for (int i = 3; i + 1 < argc; i += 2) {
        const std::string flag = argv[i];
        const std::string value = argv[i + 1];
        if (flag == "--frames") config.frames = std::stoi(value);
        else if (flag == "--seed") config.seed = std::stoull(value);
        else if (flag == "--faults") config.faults_per_run = std::stoi(value);
        else if (flag == "--policy") config.policy = value;
        else if (flag == "--suites") config.suites = split_csv_list(value);
        else if (flag == "--kinds") {
          if (!parse_fault_kinds(value, config.mix)) return 2;
        }
        else if (flag == "--csv") csv_path = value;
        else if (flag == "--arms") {
          config.arms.clear();
          for (const std::string& arm : split_csv_list(value)) {
            if (arm == "reversible")
              config.arms.push_back(sim::CampaignArm::Reversible);
            else if (arm == "reload-memory")
              config.arms.push_back(sim::CampaignArm::ReloadMemory);
            else if (arm == "reload-disk")
              config.arms.push_back(sim::CampaignArm::ReloadDisk);
            else {
              std::cerr << "unknown arm '" << arm
                        << "' (reversible|reload-memory|reload-disk)\n";
              return 2;
            }
          }
        } else {
          std::cerr << "unknown flag " << flag << "\n";
          return 2;
        }
      }
      return cmd_faults(*kind, config, csv_path);
    }
    if (cmd == "serve") {
      if (argc < 3) return usage();
      const auto kind = parse_model(argv[2]);
      if (!kind) return 2;
      ServeCliOptions opt;
      for (int i = 3; i + 1 < argc; i += 2) {
        const std::string flag = argv[i];
        const std::string value = argv[i + 1];
        if (flag == "--streams") opt.streams = std::stoi(value);
        else if (flag == "--suites") opt.suites = split_csv_list(value);
        else if (flag == "--frames") opt.frames = std::stoi(value);
        else if (flag == "--seed") opt.seed = std::stoull(value);
        else if (flag == "--budget") opt.budget_ms = std::stod(value);
        else if (flag == "--capacity") opt.capacity = std::stoi(value);
        else if (flag == "--stagger") opt.stagger = std::stoi(value);
        else if (flag == "--policy") opt.policy = value;
        else if (flag == "--deadline") opt.deadline_ms = std::stod(value);
        else if (flag == "--out") opt.out = value;
        else if (flag == "--report-json") opt.report_json = value;
        else if (flag == "--wall") opt.wall = value != "0";
        else if (flag == "--snapshot-every") opt.snapshot_every = std::stoi(value);
        else if (flag == "--snapshot-out") opt.snapshot_out = value;
        else {
          std::cerr << "unknown flag " << flag << "\n";
          return 2;
        }
      }
      if (opt.streams < 1 || opt.suites.empty()) {
        std::cerr << "serve needs --streams >= 1 and a non-empty --suites\n";
        return 2;
      }
      if (opt.snapshot_every < 0) {
        std::cerr << "--snapshot-every expects K >= 0\n";
        return 2;
      }
      return cmd_serve(*kind, opt);
    }
    if (cmd == "report") {
      std::string bench_path, heatmap_base;
      std::vector<std::string> snapshot_paths;
      for (int i = 2; i + 1 < argc; i += 2) {
        const std::string flag = argv[i];
        const std::string value = argv[i + 1];
        if (flag == "--bench") bench_path = value;
        else if (flag == "--snapshot") snapshot_paths.push_back(value);
        else if (flag == "--heatmap") heatmap_base = value;
        else {
          std::cerr << "unknown flag " << flag << "\n";
          return 2;
        }
      }
      return cmd_report(bench_path, snapshot_paths, heatmap_base);
    }
    if (cmd == "campaign") {
      if (argc < 4) return usage();
      const auto kind = parse_model(argv[2]);
      if (!kind) return 2;
      const std::string spec_path = argv[3];
      CampaignCliOptions opt;
      for (int i = 4; i + 1 < argc; i += 2) {
        const std::string flag = argv[i];
        const std::string value = argv[i + 1];
        if (flag == "--seed") {
          opt.seed = std::stoull(value);
          opt.seed_set = true;
        } else if (flag == "--frames") opt.frames = std::stoi(value);
        else if (flag == "--out") opt.out = value;
        else if (flag == "--bundle") opt.bundle = value;
        else if (flag == "--bundles") opt.dump_bundles = value != "0";
        else {
          std::cerr << "unknown flag " << flag << "\n";
          return 2;
        }
      }
      return cmd_campaign(*kind, spec_path, opt);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
