// text_util.h — tiny token-level helpers shared by the rrp_lint rule
// engine (lint.cpp) and the interprocedural frame-path pass
// (callgraph.cpp).  Everything operates on the comment-and-literal
// blanked "code view" produced by scan_file, so a banned identifier
// inside a string or comment never matches.
#pragma once

#include <cctype>
#include <string>

namespace rrp::lint {

inline constexpr std::size_t kNposT = std::string::npos;

inline bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `tok` occurs in `s` delimited by non-identifier characters.
/// `tok` may itself contain "::" (e.g. "std::mutex").
inline bool has_token(const std::string& s, const std::string& tok) {
  std::size_t pos = 0;
  while ((pos = s.find(tok, pos)) != kNposT) {
    const bool left_ok = pos == 0 || !ident_char(s[pos - 1]);
    const std::size_t end = pos + tok.size();
    const bool right_ok = end >= s.size() || !ident_char(s[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

inline std::size_t skip_spaces(const std::string& s, std::size_t i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  return i;
}

/// Token followed by '(' — a call or macro-style use.
inline bool has_call(const std::string& s, const std::string& tok) {
  std::size_t pos = 0;
  while ((pos = s.find(tok, pos)) != kNposT) {
    const bool left_ok = pos == 0 || !ident_char(s[pos - 1]);
    const std::size_t end = pos + tok.size();
    if (left_ok && end < s.size() && !ident_char(s[end]) &&
        skip_spaces(s, end) < s.size() && s[skip_spaces(s, end)] == '(')
      return true;
    pos += 1;
  }
  return false;
}

/// Token followed by an *empty* argument list: `now()` but not `now(tp)`.
inline bool has_argless_call(const std::string& s, const std::string& tok) {
  std::size_t pos = 0;
  while ((pos = s.find(tok, pos)) != kNposT) {
    const bool left_ok = pos == 0 || !ident_char(s[pos - 1]);
    std::size_t i = pos + tok.size();
    if (left_ok && (i >= s.size() || !ident_char(s[i]))) {
      i = skip_spaces(s, i);
      if (i < s.size() && s[i] == '(') {
        i = skip_spaces(s, i + 1);
        if (i < s.size() && s[i] == ')') return true;
      }
    }
    pos += 1;
  }
  return false;
}

inline bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

inline bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

inline std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace rrp::lint
