// json_out.cpp — schema-version-1 JSON serialization for rrp_lint
// (`rrp_lint --json`) plus the embedded round-trip self-test behind
// `rrp_lint --self-test`.
//
// The emitter is hand-rolled (no third-party JSON dependency, matching
// the rest of the tree) and the self-test parses its own output back
// with a minimal recursive-descent parser, so the schema check does not
// depend on the consumer: check.sh's python summary reads the same
// bytes the self-test validated.
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "lint.h"

namespace rrp::lint {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);  // UTF-8 passes through
        }
    }
  }
  return out;
}

void append_finding(std::string* out, const Finding& f, bool suppressed) {
  *out += "{\"file\":\"" + json_escape(f.file) + "\"";
  *out += ",\"line\":" + std::to_string(f.line);
  *out += ",\"rule\":\"" + json_escape(f.rule) + "\"";
  *out += ",\"message\":\"" + json_escape(f.message) + "\"";
  *out += ",\"suppressed\":";
  *out += suppressed ? "true" : "false";
  *out += "}";
}

// ---------------------------------------------------------------------------
// Minimal JSON parser — only what the self-test needs to read the schema
// back: objects, arrays, strings, integers/doubles, booleans.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { Object, Array, String, Number, Bool, Null } kind;
  std::map<std::string, std::shared_ptr<JsonValue>> object;
  std::vector<std::shared_ptr<JsonValue>> array;
  std::string str;
  double num = 0.0;
  bool boolean = false;
};

struct JsonParser {
  const std::string& s;
  std::size_t i = 0;
  std::string error;

  explicit JsonParser(const std::string& text) : s(text) {}

  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r'))
      ++i;
  }
  bool fail(const std::string& why) {
    if (error.empty())
      error = why + " at byte " + std::to_string(i);
    return false;
  }
  bool parse_string(std::string* out) {
    if (i >= s.size() || s[i] != '"') return fail("expected '\"'");
    ++i;
    out->clear();
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') {
        ++i;
        if (i >= s.size()) return fail("dangling escape");
        switch (s[i]) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            if (i + 4 >= s.size()) return fail("short \\u escape");
            unsigned v = 0;
            for (int k = 1; k <= 4; ++k) {
              const char c = s[i + static_cast<std::size_t>(k)];
              v <<= 4;
              if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
              else if (c >= 'a' && c <= 'f')
                v |= static_cast<unsigned>(c - 'a' + 10);
              else if (c >= 'A' && c <= 'F')
                v |= static_cast<unsigned>(c - 'A' + 10);
              else
                return fail("bad \\u escape");
            }
            i += 4;
            // The emitter only \u-escapes control bytes (< 0x20).
            *out += static_cast<char>(v & 0xff);
            break;
          }
          default: return fail("unknown escape");
        }
        ++i;
      } else {
        *out += s[i];
        ++i;
      }
    }
    if (i >= s.size()) return fail("unterminated string");
    ++i;  // closing quote
    return true;
  }
  std::shared_ptr<JsonValue> parse_value() {
    skip_ws();
    if (i >= s.size()) {
      fail("unexpected end");
      return nullptr;
    }
    auto v = std::make_shared<JsonValue>();
    const char c = s[i];
    if (c == '{') {
      v->kind = JsonValue::Kind::Object;
      ++i;
      skip_ws();
      if (i < s.size() && s[i] == '}') { ++i; return v; }
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(&key)) return nullptr;
        skip_ws();
        if (i >= s.size() || s[i] != ':') { fail("expected ':'"); return nullptr; }
        ++i;
        auto child = parse_value();
        if (!child) return nullptr;
        v->object[key] = child;
        skip_ws();
        if (i < s.size() && s[i] == ',') { ++i; continue; }
        if (i < s.size() && s[i] == '}') { ++i; return v; }
        fail("expected ',' or '}'");
        return nullptr;
      }
    }
    if (c == '[') {
      v->kind = JsonValue::Kind::Array;
      ++i;
      skip_ws();
      if (i < s.size() && s[i] == ']') { ++i; return v; }
      while (true) {
        auto child = parse_value();
        if (!child) return nullptr;
        v->array.push_back(child);
        skip_ws();
        if (i < s.size() && s[i] == ',') { ++i; continue; }
        if (i < s.size() && s[i] == ']') { ++i; return v; }
        fail("expected ',' or ']'");
        return nullptr;
      }
    }
    if (c == '"') {
      v->kind = JsonValue::Kind::String;
      if (!parse_string(&v->str)) return nullptr;
      return v;
    }
    if (c == 't' && s.compare(i, 4, "true") == 0) {
      v->kind = JsonValue::Kind::Bool;
      v->boolean = true;
      i += 4;
      return v;
    }
    if (c == 'f' && s.compare(i, 5, "false") == 0) {
      v->kind = JsonValue::Kind::Bool;
      v->boolean = false;
      i += 5;
      return v;
    }
    if (c == 'n' && s.compare(i, 4, "null") == 0) {
      v->kind = JsonValue::Kind::Null;
      i += 4;
      return v;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      v->kind = JsonValue::Kind::Number;
      std::size_t j = i;
      while (j < s.size() &&
             (s[j] == '-' || s[j] == '+' || s[j] == '.' || s[j] == 'e' ||
              s[j] == 'E' || (s[j] >= '0' && s[j] <= '9')))
        ++j;
      v->num = std::stod(s.substr(i, j - i));
      i = j;
      return v;
    }
    fail("unexpected character");
    return nullptr;
  }
};

bool expect(bool cond, const std::string& what, std::string* error) {
  if (!cond && error && error->empty()) *error = "self-test: " + what;
  return cond;
}

}  // namespace

std::string to_json(const LintReport& r) {
  std::string out = "{\"schema_version\":1";
  out += ",\"files_scanned\":" + std::to_string(r.files_scanned);
  out += ",\"lex_passes\":" + std::to_string(r.lex_passes);
  char wall[32];
  std::snprintf(wall, sizeof wall, "%.3f", r.wall_ms);
  out += ",\"wall_ms\":";
  out += wall;
  out += ",\"frame_path\":{\"roots\":" + std::to_string(r.frame_path_roots) +
         ",\"reachable\":" + std::to_string(r.frame_path_reachable) +
         ",\"stops\":" + std::to_string(r.frame_path_stops) + "}";
  out += ",\"active_count\":" + std::to_string(r.findings.size());
  out += ",\"suppressed_count\":" + std::to_string(r.suppressed.size());
  out += ",\"findings\":[";
  bool first = true;
  for (const Finding& f : r.findings) {
    if (!first) out += ",";
    first = false;
    append_finding(&out, f, false);
  }
  for (const Finding& f : r.suppressed) {
    if (!first) out += ",";
    first = false;
    append_finding(&out, f, true);
  }
  out += "]}";
  return out;
}

bool json_self_test(std::string* error) {
  if (error) error->clear();
  LintReport r;
  r.files_scanned = 42;
  r.lex_passes = 42;
  r.wall_ms = 12.5;
  r.frame_path_roots = 3;
  r.frame_path_reachable = 17;
  r.frame_path_stops = 2;
  // Hostile payloads: quotes, backslashes, control bytes, tabs, UTF-8.
  r.findings.push_back({"src/a \"b\"\\c.cpp", 7, "frame-path-alloc",
                        "line1\nline2\ttab \x01 ctrl \xc3\xa9 utf8"});
  r.suppressed.push_back(
      {"tools/x.cpp", 1, "determinism-chrono", "reason: [ok], {fine}"});

  const std::string text = to_json(r);
  JsonParser p(text);
  auto root = p.parse_value();
  p.skip_ws();
  if (!root || p.i != text.size()) {
    if (error)
      *error = "self-test: parse failed: " +
               (p.error.empty() ? "trailing bytes" : p.error);
    return false;
  }
  auto num = [&](const char* key) -> double {
    auto it = root->object.find(key);
    return it == root->object.end() ? -1.0 : it->second->num;
  };
  if (!expect(root->kind == JsonValue::Kind::Object, "root not an object",
              error))
    return false;
  if (!expect(num("schema_version") == 1.0, "schema_version != 1", error))
    return false;
  if (!expect(num("files_scanned") == 42.0, "files_scanned mismatch", error))
    return false;
  if (!expect(num("lex_passes") == 42.0, "lex_passes mismatch", error))
    return false;
  if (!expect(num("wall_ms") == 12.5, "wall_ms mismatch", error)) return false;
  if (!expect(num("active_count") == 1.0, "active_count mismatch", error))
    return false;
  if (!expect(num("suppressed_count") == 1.0, "suppressed_count mismatch",
              error))
    return false;
  auto fp = root->object.find("frame_path");
  if (!expect(fp != root->object.end() &&
                  fp->second->kind == JsonValue::Kind::Object,
              "frame_path missing", error))
    return false;
  if (!expect(fp->second->object["roots"]->num == 3.0 &&
                  fp->second->object["reachable"]->num == 17.0 &&
                  fp->second->object["stops"]->num == 2.0,
              "frame_path stats mismatch", error))
    return false;
  auto fs = root->object.find("findings");
  if (!expect(fs != root->object.end() &&
                  fs->second->kind == JsonValue::Kind::Array &&
                  fs->second->array.size() == 2,
              "findings array mismatch", error))
    return false;
  const auto& f0 = fs->second->array[0]->object;
  const auto& f1 = fs->second->array[1]->object;
  if (!expect(f0.at("file")->str == r.findings[0].file &&
                  f0.at("line")->num == 7.0 &&
                  f0.at("rule")->str == r.findings[0].rule &&
                  f0.at("message")->str == r.findings[0].message &&
                  f0.at("suppressed")->boolean == false,
              "active finding did not round-trip", error))
    return false;
  if (!expect(f1.at("file")->str == r.suppressed[0].file &&
                  f1.at("suppressed")->boolean == true &&
                  f1.at("message")->str == r.suppressed[0].message,
              "suppressed finding did not round-trip", error))
    return false;
  return true;
}

}  // namespace rrp::lint
