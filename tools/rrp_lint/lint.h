// lint.h — project-specific static analysis for the rrp tree.
//
// rrp_lint enforces at the source level the invariants that the runtime
// guarantees dynamically (DESIGN.md "Static guarantees"): determinism (no
// ambient randomness, wall-clock time, or ad-hoc threading), the kernel
// accumulation contract (double accumulators in reduction loops), the
// module layering DAG, and a handful of hygiene rules.  It is a
// lightweight lexer + per-file and cross-file rules — deliberately not a
// compiler plugin, so it builds everywhere the tree builds and adds
// milliseconds, not minutes, to the test run.
//
// The library half exists so tests/test_rrp_lint.cpp can drive every rule
// against fixture snippets; tools/rrp_lint/main.cpp wraps it as the
// `rrp_lint` binary that CTest runs (label `lint`).
//
// Suppressions: a legitimate exception is documented in place with
//   // rrp-lint-allow(<rule>): <reason>
// which silences <rule> on that line and the next one.  A missing reason
// is itself reported (`bad-suppression`), so exceptions stay explained.
#pragma once

#include <string>
#include <vector>

namespace rrp::lint {

/// One rule violation at a specific source location.
struct Finding {
  std::string file;  ///< path as walked (relative to the lint root)
  int line = 0;      ///< 1-based
  std::string rule;  ///< stable rule id, e.g. "determinism-random"
  std::string message;
};

/// Rule ids, in DESIGN.md order.  (R1) determinism-random,
/// determinism-thread; (R2) float-accumulator; (R3) layering;
/// (R4) hygiene-override, hygiene-using-namespace, hygiene-logging;
/// (R5) determinism-chrono; plus top-level-blob and bad-suppression.
std::vector<std::string> all_rule_ids();

/// A source file split into a comment-and-literal-blanked code view plus
/// the per-line comment text (for suppression parsing).  Line i of `code`
/// corresponds to line i+1 of the original file.
struct FileView {
  std::vector<std::string> code;
  std::vector<std::string> comments;
};

/// Strips comments, string literals and char literals (contents replaced
/// by spaces, delimiters kept) while preserving line structure.  Handles
/// //, /*...*/, "...", '...' and R"delim(...)delim".
FileView scan_file(const std::string& text);

/// Lints a single file given its contents.  `rel_path` is the
/// forward-slash path relative to the lint root (e.g. "src/nn/gemm.cpp");
/// it selects the module for layering and the per-rule whitelists.
std::vector<Finding> lint_file(const std::string& rel_path,
                               const std::string& text);

/// Walks `dirs` (default: src, tools, bench, examples) under `root`,
/// linting every .h/.cpp file, and checks `root`'s top level for committed
/// binary blobs.  Findings are sorted by (file, line, rule).
std::vector<Finding> lint_tree(const std::string& root,
                               std::vector<std::string> dirs = {});

/// Just the top-level binary-blob check for `root` (also part of
/// lint_tree).  Model caches and other binary artifacts belong in
/// cache/ (gitignored), never at the repo root.
std::vector<Finding> check_top_level(const std::string& root);

/// Formats a finding as "file:line: [rule] message".
std::string to_string(const Finding& f);

}  // namespace rrp::lint
