// lint.h — project-specific static analysis for the rrp tree.
//
// rrp_lint enforces at the source level the invariants that the runtime
// guarantees dynamically (DESIGN.md "Static guarantees"): determinism (no
// ambient randomness, wall-clock time, or ad-hoc threading), the kernel
// accumulation contract (double accumulators in reduction loops), the
// module layering DAG, a handful of hygiene rules, and — via the
// interprocedural pass in callgraph.h — frame-path real-time safety
// (R6: no allocation / lock / IO / throw reachable from an annotated
// frame-path root) and bounded control flow (R7: no recursion on the
// frame path).  It is a lightweight lexer + per-file and cross-file
// rules — deliberately not a compiler plugin, so it builds everywhere
// the tree builds and adds milliseconds, not minutes, to the test run.
//
// The library half exists so tests/test_rrp_lint.cpp can drive every rule
// against fixture snippets; tools/rrp_lint/main.cpp wraps it as the
// `rrp_lint` binary that CTest runs (label `lint`).
//
// Suppressions: a legitimate exception is documented in place with
//   // rrp-lint-allow(<rule>): <reason>
// which silences <rule> on that line and the next one.  A missing reason
// is itself reported (`bad-suppression`), so exceptions stay explained.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rrp::lint {

/// One rule violation at a specific source location.
struct Finding {
  std::string file;  ///< path as walked (relative to the lint root)
  int line = 0;      ///< 1-based
  std::string rule;  ///< stable rule id, e.g. "determinism-random"
  std::string message;
};

/// Rule ids, in DESIGN.md order.  (R1) determinism-random,
/// determinism-thread; (R2) float-accumulator; (R3) layering;
/// (R4) hygiene-override, hygiene-using-namespace, hygiene-logging;
/// (R5) determinism-chrono; (R6) frame-path-alloc, frame-path-lock,
/// frame-path-io, frame-path-throw, frame-path-unresolved;
/// (R7) frame-path-recursion; plus top-level-blob, bad-suppression and
/// bad-frame-path-marker.
std::vector<std::string> all_rule_ids();

/// A source file split into a comment-and-literal-blanked code view plus
/// the per-line comment text (for suppression parsing).  Line i of `code`
/// corresponds to line i+1 of the original file.
struct FileView {
  std::vector<std::string> code;
  std::vector<std::string> comments;
};

/// Strips comments, string literals and char literals (contents replaced
/// by spaces, delimiters kept) while preserving line structure.  Handles
/// //, /*...*/, "...", '...' and R"delim(...)delim".  Each call counts
/// one lex pass (see lex_count) — callers that need several rules on the
/// same file parse once via parse_source and share the view.
FileView scan_file(const std::string& text);

/// Number of scan_file calls since process start / the last reset.  The
/// lint test asserts lint_tree_report lexes each file exactly once.
std::size_t lex_count();
void reset_lex_count();

/// A source file lexed exactly once, shared by every rule that needs it
/// (the per-file rules, suppression parsing, and the interprocedural
/// frame-path pass).
struct ParsedFile {
  std::string rel_path;  ///< forward-slash path relative to the lint root
  std::string text;      ///< raw bytes (include parsing reads raw lines)
  FileView view;
};

/// Reads nothing from disk: wraps `text` with its blanked view.
ParsedFile parse_source(const std::string& rel_path, const std::string& text);

/// Lints a single file given its contents (per-file rules only; the
/// interprocedural pass needs the whole tree).  `rel_path` is the
/// forward-slash path relative to the lint root (e.g. "src/nn/gemm.cpp");
/// it selects the module for layering and the per-rule whitelists.
std::vector<Finding> lint_file(const std::string& rel_path,
                               const std::string& text);

/// Everything lint_tree knows, kept separately so --json and the check.sh
/// summary line can report suppressed findings and pass statistics, not
/// just the pass/fail bit.
struct LintReport {
  std::vector<Finding> findings;    ///< active (exit-code-driving) findings
  std::vector<Finding> suppressed;  ///< silenced by rrp-lint-allow markers
  std::size_t files_scanned = 0;
  std::size_t lex_passes = 0;  ///< scan_file calls during this run
  int frame_path_roots = 0;
  int frame_path_reachable = 0;
  int frame_path_stops = 0;
  double wall_ms = 0.0;  ///< filled by the CLI wrapper, 0 in library use
};

/// Walks `dirs` (default: src, tools, bench, examples) under `root`,
/// lexing every .h/.hpp/.cpp/.cc file exactly once, running the per-file
/// rules, the interprocedural frame-path pass (R6/R7) and the top-level
/// binary-blob check, then applying rrp-lint-allow suppressions to the
/// combined set.  Findings are sorted by (file, line, rule).
LintReport lint_tree_report(const std::string& root,
                            std::vector<std::string> dirs = {});

/// Compatibility wrapper: lint_tree_report(...).findings.
std::vector<Finding> lint_tree(const std::string& root,
                               std::vector<std::string> dirs = {});

/// Just the top-level binary-blob check for `root` (also part of
/// lint_tree).  Model caches and other binary artifacts belong in
/// cache/ (gitignored), never at the repo root.
std::vector<Finding> check_top_level(const std::string& root);

/// Formats a finding as "file:line: [rule] message".
std::string to_string(const Finding& f);

/// Serializes a report as schema-version-1 JSON (json_out.cpp):
///   {"schema_version":1, "files_scanned":N, "lex_passes":N,
///    "wall_ms":X, "frame_path":{"roots":R,"reachable":C,"stops":S},
///    "active_count":A, "suppressed_count":U,
///    "findings":[{"file","line","rule","message","suppressed"}...]}
/// Findings are emitted active-first, preserving report order, with
/// suppressed entries flagged rather than dropped.
std::string to_json(const LintReport& report);

/// Round-trips a synthetic report (quotes, backslashes, control bytes,
/// non-ASCII) through to_json and an embedded minimal JSON parser,
/// checking every schema field.  On failure returns false and writes a
/// diagnostic to *error.  Drives `rrp_lint --self-test`.
bool json_self_test(std::string* error);

}  // namespace rrp::lint
