// callgraph.h — interprocedural frame-path safety analysis for rrp_lint
// (rules R6/R7, DESIGN.md invariant 14).
//
// The per-file rules in lint.cpp prove local properties; this pass proves
// a *global* one: every function reachable from an annotated frame-path
// root performs no heap allocation, no lock acquisition, no IO, no throw
// (R6) and no direct or mutual recursion (R7).  It is built from the same
// heuristic lexer as the rest of rrp_lint — a function-definition indexer
// and call-site extractor over the blanked code view, a project-wide call
// graph, BFS reachability from the roots, and Tarjan SCCs for recursion —
// deliberately not a compiler plugin.
//
// Annotation markers (parsed from comments; a marker is recognised only
// when it is the first token of the comment, so prose mentions like this
// one never bind):
//
//   marker "rrp-frame-path"            — the next function definition is a
//       frame-path root; everything it (transitively) calls is checked.
//       An optional ": note" may follow.
//   marker "rrp-frame-path-stop: why"  — the next function definition is a
//       documented traversal boundary: calls INTO it are allowed but its
//       body is not checked.  The reason is mandatory.
//
// A marker that dangles (no function definition follows), has an unknown
// suffix, duplicates another marker on the same definition, or is a stop
// without a reason is itself a finding (`bad-frame-path-marker`).
//
// Conservative treatment of dynamic dispatch: a call site `f(...)` edges
// to EVERY indexed definition named `f` (all overloads, all overriders of
// a virtual hook), so a virtual call through a provider interface checks
// every implementation unless one is explicitly stop-marked.  Calls that
// resolve to no indexed definition and match no safe-list entry — function
// pointers, member-function pointers, externals — produce a per-edge
// `frame-path-unresolved` diagnostic instead of silently passing.
//
// Known under-approximations (documented, deliberate): the pass sees
// *calls*, not constructors — a local `std::vector<float> v(n);` or a
// copy-assignment allocates without a call token — and the arguments of
// ALL-CAPS macro invocations (assert/log/span macros) are excluded from
// call extraction because their message arguments only evaluate on the
// failure path.
#pragma once

#include <string>
#include <vector>

#include "lint.h"

namespace rrp::lint {

/// Summary of what the frame-path pass saw (reported in --json and the
/// check.sh summary line so coverage shrinkage is visible in review).
struct FramePathStats {
  int roots = 0;      ///< function definitions marked rrp-frame-path
  int reachable = 0;  ///< definitions reachable from any root (incl. roots)
  int stops = 0;      ///< definitions marked rrp-frame-path-stop
  int defs = 0;       ///< total function definitions indexed
  int edges = 0;      ///< resolved call-graph edges
};

/// Runs the R6/R7 interprocedural pass over an already-parsed tree.
/// Findings are NOT suppression-filtered (lint_tree_report applies the
/// shared rrp-lint-allow mechanism afterwards, so frame-path findings
/// suppress exactly like per-file ones).
std::vector<Finding> frame_path_pass(const std::vector<ParsedFile>& files,
                                     FramePathStats* stats = nullptr);

}  // namespace rrp::lint
