// rrp_lint — static analysis gate for the rrp tree.
//
//   rrp_lint [--root DIR] [--json] [--self-test] [--list-rules] [subdir...]
//
// Walks src/, tools/, bench/ and examples/ under --root (default: the
// current directory), applies every rule in tools/rrp_lint/lint.cpp plus
// the interprocedural frame-path pass (callgraph.cpp) and exits non-zero
// when any finding survives suppression.  --json prints the
// schema-version-1 machine-readable report (lint.h to_json) to stdout
// instead of the human format; tools/check.sh consumes it for the
// summary line.  --self-test round-trips the JSON schema through the
// embedded parser and exits 0/1.  Registered with CTest under the `lint`
// label, so `ctest -L lint` is the one-command static gate.
//
// The linter times its own run for the --json wall_ms field (the
// suppressed clock reads below): diagnostic output only, never a
// decision input, and tools/ produces no replayable artifacts.
// rrp-lint-allow(determinism-chrono): lint self-timing include, see the file header note.
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "lint.h"

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> dirs;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--self-test") {
      std::string err;
      if (!rrp::lint::json_self_test(&err)) {
        std::cerr << "rrp_lint: --self-test FAILED: " << err << "\n";
        return 1;
      }
      std::cout << "rrp_lint: --self-test ok (JSON schema v1 round-trips)\n";
      return 0;
    } else if (arg == "--list-rules") {
      for (const std::string& r : rrp::lint::all_rule_ids())
        std::cout << r << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: rrp_lint [--root DIR] [--json] [--self-test] "
                   "[--list-rules] [subdir...]\n"
                   "Lints src/ tools/ bench/ examples/ (or the given "
                   "subdirs) under DIR\nand checks DIR's top level for "
                   "committed binary blobs.  --json prints the\n"
                   "machine-readable report (schema v1) to stdout.\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "rrp_lint: unknown flag " << arg << "\n";
      return 2;
    } else {
      dirs.push_back(arg);
    }
  }

  // Self-timing for the --json wall_ms field / summary line; the raw
  // clock reads are suppressed rather than routed through util/timer,
  // which would invert the tools->src layering for a diagnostic number.
  // rrp-lint-allow(determinism-chrono): lint self-timing, see above.  rrp-lint-allow(determinism-random): the argless now() below is the same self-timing read.
  const auto t0 = std::chrono::steady_clock::now();
  rrp::lint::LintReport report = rrp::lint::lint_tree_report(root, dirs);
  // rrp-lint-allow(determinism-chrono): lint self-timing, see above.  rrp-lint-allow(determinism-random): the argless now() below is the same self-timing read.
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // rrp-lint-allow(determinism-chrono): converting the self-timing duration above.
  report.wall_ms = std::chrono::duration<double, std::milli>(elapsed).count();

  if (json) {
    std::cout << rrp::lint::to_json(report) << "\n";
    return report.findings.empty() ? 0 : 1;
  }
  for (const rrp::lint::Finding& f : report.findings)
    std::cerr << rrp::lint::to_string(f) << "\n";
  if (!report.findings.empty()) {
    std::cerr << "rrp_lint: " << report.findings.size() << " finding(s)\n";
    return 1;
  }
  std::cout << "rrp_lint: clean (" << report.files_scanned << " files, "
            << report.lex_passes << " lex passes, frame path: "
            << report.frame_path_roots << " roots -> "
            << report.frame_path_reachable << " reachable, "
            << report.frame_path_stops << " stops, "
            << report.suppressed.size() << " suppressed finding(s), "
            << static_cast<long>(report.wall_ms * 1000.0) / 1000.0
            << " ms)\n";
  return 0;
}
