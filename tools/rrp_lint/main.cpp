// rrp_lint — static analysis gate for the rrp tree.
//
//   rrp_lint [--root DIR] [--list-rules] [subdir...]
//
// Walks src/, tools/, bench/ and examples/ under --root (default: the
// current directory), applies every rule in tools/rrp_lint/lint.cpp and
// exits non-zero when any finding survives suppression.  Registered with
// CTest under the `lint` label, so `ctest -L lint` is the one-command
// static gate; tools/check.sh runs it as part of the full PR gate.
#include <iostream>
#include <string>
#include <vector>

#include "lint.h"

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--list-rules") {
      for (const std::string& r : rrp::lint::all_rule_ids())
        std::cout << r << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: rrp_lint [--root DIR] [--list-rules] "
                   "[subdir...]\n"
                   "Lints src/ tools/ bench/ examples/ (or the given "
                   "subdirs) under DIR\nand checks DIR's top level for "
                   "committed binary blobs.\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "rrp_lint: unknown flag " << arg << "\n";
      return 2;
    } else {
      dirs.push_back(arg);
    }
  }

  const std::vector<rrp::lint::Finding> findings =
      rrp::lint::lint_tree(root, dirs);
  for (const rrp::lint::Finding& f : findings)
    std::cerr << rrp::lint::to_string(f) << "\n";
  if (!findings.empty()) {
    std::cerr << "rrp_lint: " << findings.size() << " finding(s)\n";
    return 1;
  }
  std::cout << "rrp_lint: clean\n";
  return 0;
}
