// lint.cpp — rule engine for rrp_lint (see lint.h for the contract).
//
// Implementation notes.  The scanner is a character-level state machine
// that blanks comments and literal contents while preserving line
// structure; every rule then works on the blanked "code view" (so a
// banned identifier inside a string or comment never fires) except
// include parsing, which reads the raw lines because quoted include
// paths are string literals.  Scope-sensitive rules (float accumulators
// in loops, virtual-without-override in derived classes) share a single
// statement-oriented pass that tracks brace depth, loop nesting and
// class kind — a deliberate heuristic, not a parser: it is precise on
// the idioms this codebase uses and cheap enough to run on every ctest.
#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "callgraph.h"
#include "text_util.h"

namespace rrp::lint {

namespace {

constexpr std::size_t kNpos = std::string::npos;

/// scan_file call counter backing lex_count(): lint_tree_report promises
/// one lex per file, and the lint test asserts it.
std::size_t g_lex_count = 0;

// ---------------------------------------------------------------------------
// Module layering (R3).  Linear DAG, low rank = lower layer; a file may
// only include headers of rank <= its own.  Mirrors src/CMakeLists.txt.
// ---------------------------------------------------------------------------

const std::map<std::string, int>& module_ranks() {
  static const std::map<std::string, int> ranks = {
      {"util", 0}, {"nn", 1},  {"prune", 2},  {"core", 3},
      {"sim", 4},  {"serve", 5}, {"models", 6},
  };
  return ranks;
}

constexpr int kAppRank = 7;  // tools / bench / examples sit on top

/// Rank of the module a file belongs to, or -1 when outside the DAG.
int file_rank(const std::string& rel_path) {
  if (starts_with(rel_path, "tools/") || starts_with(rel_path, "bench/") ||
      starts_with(rel_path, "examples/"))
    return kAppRank;
  if (starts_with(rel_path, "src/")) {
    const std::size_t slash = rel_path.find('/', 4);
    if (slash == kNpos) return -1;
    const auto it = module_ranks().find(rel_path.substr(4, slash - 4));
    if (it != module_ranks().end()) return it->second;
  }
  return -1;
}

/// Rank of a quoted include target, or -1 when it names no module (a
/// sibling header like "bench_common.h" or "lint.h").
int include_rank(const std::string& inc_path) {
  const std::size_t slash = inc_path.find('/');
  if (slash == kNpos) return -1;
  const auto it = module_ranks().find(inc_path.substr(0, slash));
  return it != module_ranks().end() ? it->second : -1;
}

// ---------------------------------------------------------------------------
// Rule tables.
// ---------------------------------------------------------------------------

// R1a: ambient randomness / wall-clock time.  Call-form entries only fire
// when followed by '('; token-form entries fire on any delimited use.
const char* const kRandomCalls[] = {"rand",      "srand",     "time",
                                    "clock",     "gettimeofday", "localtime",
                                    "gmtime"};
const char* const kRandomTokens[] = {"random_device", "mt19937",
                                     "mt19937_64",    "default_random_engine",
                                     "minstd_rand",   "minstd_rand0",
                                     "system_clock"};
const char* const kRandomHeaders[] = {"random", "ctime", "time.h",
                                      "sys/time.h"};

// R1b: ad-hoc threading.  All std-qualified so that domain identifiers
// ("barrier", "latch") stay usable.
const char* const kThreadTokens[] = {
    "std::thread",          "std::jthread",
    "std::async",           "std::mutex",
    "std::recursive_mutex", "std::timed_mutex",
    "std::shared_mutex",    "std::condition_variable",
    "std::condition_variable_any",
    "std::counting_semaphore", "std::binary_semaphore",
    "std::barrier",         "std::latch"};
const char* const kThreadHeaders[] = {"thread",  "mutex",     "shared_mutex",
                                      "future",  "semaphore", "barrier",
                                      "latch",   "condition_variable",
                                      "stop_token"};

// R5: raw wall-clock access.  Everything time-shaped flows through the
// Timer facade (util/timer.h) or the trace layer's opt-in wall capture;
// a stray std::chrono read anywhere else silently breaks byte-identical
// replay, so the tokens are banned at the source level.  (system_clock is
// already covered by R1a; this closes the steady/high_resolution gap.)
const char* const kChronoTokens[] = {"std::chrono", "steady_clock",
                                     "high_resolution_clock"};
const char* const kChronoHeaders[] = {"chrono"};

// Whitelists, matched as rel-path prefixes.
//
// src/sim/faults.* is deliberately ABSENT from kRandomWhitelist: the
// fault-injection layer draws every event from the seeded rrp::Rng API, so
// the ambient-entropy rule (R1a) must keep applying to it.  A campaign that
// touched std::random_device / rand() / wall clocks would stop replaying
// byte-identically from its --seed.
const char* const kRandomWhitelist[] = {"src/util/rng.", "src/util/timer.h",
                                        "src/core/telemetry."};
// wprof is thread-whitelisted for exactly one reason: its aggregation
// map is guarded by a plain mutex (profiling happens on pool workers;
// routing samples through the deterministic pool would perturb the very
// schedule being measured).  That is the ONLY whitelist it sits on: it
// reads time exclusively through the rrp::Timer facade, so R1a/R5 keep
// applying to it — a direct chrono read or an ambient-entropy draw in
// the profiler still fires (enforced by test_rrp_lint.cpp's
// ObservabilityPlaneWhitelistBoundaries).
const char* const kThreadWhitelist[] = {"src/util/thread_pool.",
                                        "src/util/log.cpp",
                                        "src/util/wprof."};
// Timer facade, span tracer (optional wall capture), pool (timed waits)
// and telemetry (already random-whitelisted for timestamps) may touch
// chrono; every other module uses Timer or modeled time.  In particular
// core/flight_recorder.* and core/slo.* must stay OFF this list: incident
// bundles are byte-identical replay oracles, so a wall-clock timestamp in
// a record would break the determinism contract (DESIGN.md §8; enforced
// by test_rrp_lint.cpp's FlightRecorderStaysOffTheChronoWhitelist).
// src/util/wprof.* (the wall-clock sampling profiler) is deliberately
// ABSENT here too: its measured spans flow through the rrp::Timer facade
// like everyone else's, so the only exemption it needs is the thread one
// above.  core/metrics_export.* and serve/obs.* are on NO whitelist at
// all — exposition and snapshots are pure functions of registry state.
const char* const kChronoWhitelist[] = {"src/util/timer.h", "src/util/trace.",
                                        "src/util/thread_pool.",
                                        "src/core/telemetry."};

bool whitelisted(const std::string& rel_path, const char* const* list,
                 std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (starts_with(rel_path, list[i])) return true;
  return false;
}

bool is_header(const std::string& rel_path) {
  return ends_with(rel_path, ".h") || ends_with(rel_path, ".hpp");
}

/// R2 applies to the deterministic reduction kernels only.  Any nn file
/// named *kernel* is covered too, so the micro-kernel TUs (gemm_kernels,
/// gemm_kernels_avx2, and future SIMD variants) inherit the accumulation
/// contract without a whitelist edit per file.
bool is_kernel_file(const std::string& rel_path) {
  if (!starts_with(rel_path, "src/nn/")) return false;
  return rel_path.find("gemm") != kNpos || rel_path.find("conv") != kNpos ||
         rel_path.find("depthwise") != kNpos ||
         rel_path.find("kernel") != kNpos;
}

// ---------------------------------------------------------------------------
// Suppressions: // rrp-lint-allow(<rule>): <reason>
// ---------------------------------------------------------------------------

struct Suppressions {
  /// (line, rule) pairs silenced; a comment on line N covers N and N+1.
  std::set<std::pair<int, std::string>> allowed;
  std::vector<Finding> bad;  ///< malformed or unknown-rule suppressions
};

Suppressions parse_suppressions(const std::string& rel_path,
                                const FileView& view) {
  static const std::string kMarker = "rrp-lint-allow(";
  const std::vector<std::string> rules = all_rule_ids();
  Suppressions out;
  for (std::size_t i = 0; i < view.comments.size(); ++i) {
    const std::string& c = view.comments[i];
    const int line = static_cast<int>(i) + 1;
    std::size_t pos = 0;
    while ((pos = c.find(kMarker, pos)) != kNpos) {
      pos += kMarker.size();
      const std::size_t close = c.find(')', pos);
      if (close == kNpos) {
        out.bad.push_back({rel_path, line, "bad-suppression",
                           "unterminated rrp-lint-allow(...)"});
        break;
      }
      const std::string rule = trim(c.substr(pos, close - pos));
      if (rule.find('<') != kNpos) {
        // "rrp-lint-allow(<rule>)" is documentation describing the
        // marker, not an actual suppression.
        pos = close;
        continue;
      }
      std::size_t after = skip_spaces(c, close + 1);
      std::string reason;
      if (after < c.size() && c[after] == ':')
        reason = trim(c.substr(after + 1));
      if (std::find(rules.begin(), rules.end(), rule) == rules.end()) {
        out.bad.push_back({rel_path, line, "bad-suppression",
                           "unknown rule '" + rule + "' in rrp-lint-allow"});
      } else if (reason.empty()) {
        out.bad.push_back(
            {rel_path, line, "bad-suppression",
             "rrp-lint-allow(" + rule +
                 ") needs a reason: // rrp-lint-allow(" + rule +
                 "): <why this exception is sound>"});
      } else {
        out.allowed.insert({line, rule});
        out.allowed.insert({line + 1, rule});
      }
      pos = close;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Scope-sensitive pass: float accumulators in loops (R2) and
// virtual-without-override in derived classes (R4a).
// ---------------------------------------------------------------------------

struct ScopeFindings {
  std::vector<Finding> findings;
};

void scope_pass(const std::string& rel_path, const FileView& view,
                ScopeFindings& out) {
  const bool kernel = is_kernel_file(rel_path);

  struct Candidate {
    std::string name;
    int decl_line;
    int loop_depth;   // loops open at declaration
    int brace_depth;  // for scope-based eviction
  };
  std::vector<Candidate> floats;

  // Brace stack entries: 'L' loop body, 'D' derived-class body, 'N' other.
  std::vector<char> braces;
  int pending_loops = 0;  // for/while seen, body brace (or statement) ahead
  int paren = 0;
  std::string stmt;        // code since the last '{', '}' or ';'
  int virtual_line = 0;    // line of the last 'virtual' token in stmt

  auto loop_depth = [&]() {
    return static_cast<int>(std::count(braces.begin(), braces.end(), 'L')) +
           pending_loops;
  };
  auto in_derived = [&]() { return !braces.empty() && braces.back() == 'D'; };

  auto end_statement = [&]() {
    if (in_derived() && virtual_line > 0 && has_token(stmt, "virtual") &&
        !has_token(stmt, "override") && !has_token(stmt, "final") &&
        stmt.find('~') == kNpos) {
      out.findings.push_back(
          {rel_path, virtual_line, "hygiene-override",
           "virtual member in a derived class: mark it 'override' (or "
           "'final'), or suppress if it introduces a new virtual"});
    }
    stmt.clear();
    virtual_line = 0;
  };

  for (std::size_t li = 0; li < view.code.size(); ++li) {
    const std::string& s = view.code[li];
    const int line = static_cast<int>(li) + 1;
    std::size_t i = 0;
    while (i < s.size()) {
      const char c = s[i];
      if (ident_char(c)) {
        std::size_t j = i;
        while (j < s.size() && ident_char(s[j])) ++j;
        const std::string tok = s.substr(i, j - i);
        if (tok == "for" || tok == "while") ++pending_loops;
        if (tok == "virtual") virtual_line = line;
        if (kernel && tok == "float") {
          // `float <id> =` declares a candidate accumulator (skip
          // pointers: `float* out = ...` is a buffer, not a scalar).
          std::size_t k = skip_spaces(s, j);
          if (k < s.size() && ident_char(s[k])) {
            std::size_t k2 = k;
            while (k2 < s.size() && ident_char(s[k2])) ++k2;
            const std::string name = s.substr(k, k2 - k);
            const std::size_t k3 = skip_spaces(s, k2);
            if (k3 < s.size() && s[k3] == '=' &&
                (k3 + 1 >= s.size() || s[k3 + 1] != '='))
              floats.push_back({name, line, loop_depth(),
                                static_cast<int>(braces.size())});
          }
        }
        if (kernel && j + 1 < s.size()) {
          const std::size_t k = skip_spaces(s, j);
          if (k + 1 < s.size() && s[k] == '+' && s[k + 1] == '=') {
            for (const Candidate& cand : floats) {
              if (cand.name == tok && loop_depth() > cand.loop_depth) {
                out.findings.push_back(
                    {rel_path, line, "float-accumulator",
                     "float accumulator '" + tok + "' (declared line " +
                         std::to_string(cand.decl_line) +
                         ") is accumulated inside a loop; use a double "
                         "accumulator and cast once (GEMM accumulation "
                         "contract, DESIGN.md invariant 9)"});
                break;
              }
            }
          }
        }
        stmt.append(tok);
        stmt.push_back(' ');
        i = j;
        continue;
      }
      switch (c) {
        case '(': ++paren; break;
        case ')': if (paren > 0) --paren; break;
        case '{': {
          char kind = 'N';
          if (pending_loops > 0) {
            kind = 'L';
            --pending_loops;
          } else if ((has_token(stmt, "class") || has_token(stmt, "struct")) &&
                     stmt.find(':') != kNpos &&
                     (has_token(stmt, "public") || has_token(stmt, "private") ||
                      has_token(stmt, "protected"))) {
            kind = 'D';
          }
          braces.push_back(kind);
          stmt.clear();
          virtual_line = 0;
          break;
        }
        case '}': {
          if (!braces.empty()) braces.pop_back();
          const int depth = static_cast<int>(braces.size());
          floats.erase(std::remove_if(floats.begin(), floats.end(),
                                      [&](const Candidate& cand) {
                                        return cand.brace_depth > depth;
                                      }),
                       floats.end());
          stmt.clear();
          virtual_line = 0;
          break;
        }
        case ';':
          if (paren == 0) {
            end_statement();
            if (pending_loops > 0) --pending_loops;  // brace-less loop body
          }
          break;
        default:
          stmt.push_back(c);
          break;
      }
      ++i;
    }
    stmt.push_back(' ');  // line break separates tokens
  }
}

// ---------------------------------------------------------------------------
// Include parsing (raw lines — quoted paths are string literals and would
// be blanked in the code view).
// ---------------------------------------------------------------------------

struct Include {
  int line;
  std::string path;
  bool angled;
};

std::vector<Include> parse_includes(const std::string& text) {
  std::vector<Include> out;
  std::istringstream is(text);
  std::string raw;
  int line = 0;
  while (std::getline(is, raw)) {
    ++line;
    std::size_t i = skip_spaces(raw, 0);
    if (i >= raw.size() || raw[i] != '#') continue;
    i = skip_spaces(raw, i + 1);
    if (raw.compare(i, 7, "include") != 0) continue;
    i = skip_spaces(raw, i + 7);
    if (i >= raw.size()) continue;
    const char open = raw[i];
    if (open != '"' && open != '<') continue;
    const char close = open == '"' ? '"' : '>';
    const std::size_t end = raw.find(close, i + 1);
    if (end == kNpos) continue;
    out.push_back({line, raw.substr(i + 1, end - i - 1), open == '<'});
  }
  return out;
}

bool in_list(const std::string& s, const char* const* list, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (s == list[i]) return true;
  return false;
}

template <std::size_t N>
constexpr std::size_t len(const char* const (&)[N]) {
  return N;
}

}  // namespace

std::vector<std::string> all_rule_ids() {
  return {"determinism-random",      "determinism-thread",
          "determinism-chrono",      "float-accumulator",
          "layering",                "hygiene-override",
          "hygiene-using-namespace", "hygiene-logging",
          "frame-path-alloc",        "frame-path-lock",
          "frame-path-io",           "frame-path-throw",
          "frame-path-unresolved",   "frame-path-recursion",
          "bad-frame-path-marker",   "top-level-blob",
          "bad-suppression"};
}

std::size_t lex_count() { return g_lex_count; }
void reset_lex_count() { g_lex_count = 0; }

ParsedFile parse_source(const std::string& rel_path, const std::string& text) {
  ParsedFile pf;
  pf.rel_path = rel_path;
  pf.text = text;
  pf.view = scan_file(text);
  return pf;
}

FileView scan_file(const std::string& text) {
  ++g_lex_count;
  FileView view;
  std::string code, comment;
  enum class State { Code, LineComment, BlockComment, String, Char, Raw };
  State st = State::Code;
  std::string raw_delim;  // for R"delim( ... )delim"
  auto flush_line = [&]() {
    view.code.push_back(code);
    view.comments.push_back(comment);
    code.clear();
    comment.clear();
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') {
      if (st == State::LineComment) st = State::Code;
      flush_line();
      continue;
    }
    switch (st) {
      case State::Code:
        if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
          st = State::LineComment;
          ++i;
          code += "  ";
        } else if (c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
          st = State::BlockComment;
          ++i;
          code += "  ";
        } else if (c == '"') {
          // Raw string?  R"delim( was already consumed up to R when the
          // identifier pass saw it, so detect via the preceding char.
          if (i > 0 && text[i - 1] == 'R' &&
              (i < 2 || !ident_char(text[i - 2]))) {
            std::size_t p = i + 1;
            while (p < text.size() && text[p] != '(' && text[p] != '\n') ++p;
            if (p < text.size() && text[p] == '(') {
              raw_delim = ")" + text.substr(i + 1, p - i - 1) + "\"";
              st = State::Raw;
              code += '"';
              for (std::size_t q = i + 1; q <= p; ++q) code += ' ';
              i = p;
              break;
            }
          }
          st = State::String;
          code += '"';
        } else if (c == '\'') {
          st = State::Char;
          code += '\'';
        } else {
          code += c;
        }
        break;
      case State::LineComment:
        comment += c;
        code += ' ';
        break;
      case State::BlockComment:
        if (c == '*' && i + 1 < text.size() && text[i + 1] == '/') {
          st = State::Code;
          ++i;
          code += "  ";
        } else {
          comment += c;
          code += ' ';
        }
        break;
      case State::String:
        if (c == '\\' && i + 1 < text.size()) {
          ++i;
          code += "  ";
        } else if (c == '"') {
          st = State::Code;
          code += '"';
        } else {
          code += ' ';
        }
        break;
      case State::Char:
        if (c == '\\' && i + 1 < text.size()) {
          ++i;
          code += "  ";
        } else if (c == '\'') {
          st = State::Code;
          code += '\'';
        } else {
          code += ' ';
        }
        break;
      case State::Raw:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t q = 0; q < raw_delim.size() - 1; ++q) code += ' ';
          code += '"';
          i += raw_delim.size() - 1;
          st = State::Code;
        } else {
          code += ' ';
        }
        break;
    }
  }
  flush_line();
  return view;
}

namespace {

/// All per-file rule findings for one parsed file, unsuppressed and
/// unsorted.  Shared by lint_file (single file) and lint_tree_report
/// (whole tree, one lex per file).
std::vector<Finding> per_file_findings(const ParsedFile& pf) {
  const std::string& rel_path = pf.rel_path;
  const FileView& view = pf.view;
  const std::string& text = pf.text;
  std::vector<Finding> raw;

  const bool random_ok =
      whitelisted(rel_path, kRandomWhitelist, len(kRandomWhitelist));
  const bool thread_ok =
      whitelisted(rel_path, kThreadWhitelist, len(kThreadWhitelist));
  const bool chrono_ok =
      whitelisted(rel_path, kChronoWhitelist, len(kChronoWhitelist));
  const bool logging_scope = starts_with(rel_path, "src/") &&
                             !starts_with(rel_path, "src/util/log.");
  const bool header = is_header(rel_path);
  const int rank = file_rank(rel_path);

  // Line-wise rules on the blanked code view.
  for (std::size_t li = 0; li < view.code.size(); ++li) {
    std::string s = view.code[li];
    const int line = static_cast<int>(li) + 1;

    if (!thread_ok) {
      // hardware_concurrency is a read-only query, not a thread spawn.
      std::size_t hc;
      while ((hc = s.find("std::thread::hardware_concurrency")) != kNpos)
        s.replace(hc, 33, std::string(33, ' '));
      for (std::size_t t = 0; t < len(kThreadTokens); ++t) {
        if (has_token(s, kThreadTokens[t])) {
          raw.push_back({rel_path, line, "determinism-thread",
                         std::string(kThreadTokens[t]) +
                             " outside src/util/thread_pool: all "
                             "parallelism goes through the deterministic "
                             "pool (DESIGN.md invariant 9)"});
          break;
        }
      }
    }
    if (!random_ok) {
      bool hit = false;
      for (std::size_t t = 0; !hit && t < len(kRandomCalls); ++t)
        hit = has_call(s, kRandomCalls[t]);
      for (std::size_t t = 0; !hit && t < len(kRandomTokens); ++t)
        hit = has_token(s, kRandomTokens[t]);
      if (!hit && has_argless_call(s, "now")) hit = true;
      if (hit)
        raw.push_back({rel_path, line, "determinism-random",
                       "ambient randomness or wall-clock time: use the "
                       "seeded rrp::Rng / util/timer instead (runs must be "
                       "bit-reproducible)"});
    }
    if (!chrono_ok) {
      for (std::size_t t = 0; t < len(kChronoTokens); ++t) {
        if (has_token(s, kChronoTokens[t])) {
          raw.push_back({rel_path, line, "determinism-chrono",
                         std::string(kChronoTokens[t]) +
                             " outside util/timer: clock reads go through "
                             "the Timer facade (or the trace layer's "
                             "opt-in wall capture) so modeled time stays "
                             "the only decision input (DESIGN.md "
                             "invariant 11)"});
          break;
        }
      }
    }
    if (header && has_token(s, "using") && has_token(s, "namespace") &&
        s.find("using") < s.find("namespace")) {
      raw.push_back({rel_path, line, "hygiene-using-namespace",
                     "'using namespace' in a header leaks into every "
                     "includer; qualify names instead"});
    }
    if (logging_scope) {
      if (has_token(s, "cout") || has_token(s, "cerr") ||
          has_call(s, "printf") || has_call(s, "fprintf") ||
          has_call(s, "puts")) {
        raw.push_back({rel_path, line, "hygiene-logging",
                       "direct stream/stdio output in library code: use "
                       "RRP_LOG_* (util/log) so lines stay atomic under "
                       "the thread pool"});
      }
    }
  }

  // Includes: layering DAG + banned headers.
  for (const Include& inc : parse_includes(text)) {
    if (inc.angled) {
      if (!thread_ok && in_list(inc.path, kThreadHeaders, len(kThreadHeaders)))
        raw.push_back({rel_path, inc.line, "determinism-thread",
                       "#include <" + inc.path +
                           "> outside src/util/thread_pool: all "
                           "parallelism goes through the deterministic "
                           "pool (DESIGN.md invariant 9)"});
      if (!random_ok && in_list(inc.path, kRandomHeaders, len(kRandomHeaders)))
        raw.push_back({rel_path, inc.line, "determinism-random",
                       "#include <" + inc.path +
                           ">: use the seeded rrp::Rng / util/timer "
                           "instead (runs must be bit-reproducible)"});
      if (!chrono_ok && in_list(inc.path, kChronoHeaders, len(kChronoHeaders)))
        raw.push_back({rel_path, inc.line, "determinism-chrono",
                       "#include <" + inc.path +
                           "> outside util/timer: clock reads go through "
                           "the Timer facade (DESIGN.md invariant 11)"});
      continue;
    }
    if (rank < 0) continue;
    const int inc_rank = include_rank(inc.path);
    if (inc_rank >= 0 && inc_rank > rank) {
      raw.push_back(
          {rel_path, inc.line, "layering",
           "\"" + inc.path + "\" is an upward include (module DAG: util -> "
           "nn -> prune -> core -> sim -> models -> tools/bench/examples)"});
    }
  }

  // Scope-sensitive rules.
  ScopeFindings scoped;
  scope_pass(rel_path, view, scoped);
  raw.insert(raw.end(), scoped.findings.begin(), scoped.findings.end());
  return raw;
}

/// Partitions `raw` into active / suppressed under `sup` (a comment on
/// line N covers findings on N and N+1, same rule).
void split_suppressed(std::vector<Finding> raw, const Suppressions& sup,
                      std::vector<Finding>* active,
                      std::vector<Finding>* suppressed) {
  for (Finding& f : raw) {
    if (sup.allowed.count({f.line, f.rule}) != 0)
      suppressed->push_back(std::move(f));
    else
      active->push_back(std::move(f));
  }
}

}  // namespace

std::vector<Finding> lint_file(const std::string& rel_path,
                               const std::string& text) {
  const ParsedFile pf = parse_source(rel_path, text);
  const Suppressions sup = parse_suppressions(rel_path, pf.view);
  std::vector<Finding> out, suppressed;
  split_suppressed(per_file_findings(pf), sup, &out, &suppressed);
  out.insert(out.end(), sup.bad.begin(), sup.bad.end());
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
  });
  return out;
}

std::vector<Finding> check_top_level(const std::string& root) {
  namespace fs = std::filesystem;
  static const char* const kBinaryExt[] = {".rrpn", ".bin", ".pt",  ".pth",
                                           ".onnx", ".npz", ".npy", ".pkl",
                                           ".so",   ".o",   ".a"};
  std::vector<Finding> out;
  std::error_code ec;
  std::vector<fs::path> entries;
  for (const fs::directory_entry& e : fs::directory_iterator(root, ec))
    if (e.is_regular_file()) entries.push_back(e.path());
  std::sort(entries.begin(), entries.end());
  for (const fs::path& p : entries) {
    const std::string name = p.filename().string();
    const std::string ext = p.extension().string();
    bool binary = false;
    for (std::size_t i = 0; i < len(kBinaryExt); ++i)
      if (ext == kBinaryExt[i]) binary = true;
    if (!binary) {
      // Sniff: a NUL byte in the first 512 bytes means not-a-text-file.
      std::ifstream in(p, std::ios::binary);
      char buf[512];
      in.read(buf, sizeof buf);
      const std::streamsize got = in.gcount();
      for (std::streamsize i = 0; i < got; ++i)
        if (buf[i] == '\0') binary = true;
    }
    if (binary)
      out.push_back({name, 1, "top-level-blob",
                     "binary artifact at the repo top level; model caches "
                     "and other blobs belong in cache/ (gitignored, "
                     "auto-created by trained_cache)"});
  }
  return out;
}

LintReport lint_tree_report(const std::string& root,
                            std::vector<std::string> dirs) {
  namespace fs = std::filesystem;
  if (dirs.empty()) dirs = {"src", "tools", "bench", "examples"};

  std::vector<fs::path> files;
  for (const std::string& d : dirs) {
    const fs::path base = fs::path(root) / d;
    std::error_code ec;
    for (fs::recursive_directory_iterator it(base, ec), end; it != end;
         it.increment(ec)) {
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc")
        files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());

  // Lex each file exactly once; every rule (per-file, suppressions, and
  // the interprocedural frame-path pass) shares the parsed view.
  const std::size_t lex_before = lex_count();
  std::vector<ParsedFile> parsed;
  parsed.reserve(files.size());
  for (const fs::path& p : files) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    parsed.push_back(parse_source(
        fs::path(p).lexically_relative(root).generic_string(), ss.str()));
  }

  std::vector<Finding> raw;
  std::map<std::string, Suppressions> sup_by_file;
  for (const ParsedFile& pf : parsed) {
    const std::vector<Finding> file_raw = per_file_findings(pf);
    raw.insert(raw.end(), file_raw.begin(), file_raw.end());
    sup_by_file.emplace(pf.rel_path, parse_suppressions(pf.rel_path, pf.view));
  }

  FramePathStats fp;
  const std::vector<Finding> inter = frame_path_pass(parsed, &fp);
  raw.insert(raw.end(), inter.begin(), inter.end());

  LintReport report;
  report.files_scanned = parsed.size();
  report.lex_passes = lex_count() - lex_before;
  report.frame_path_roots = fp.roots;
  report.frame_path_reachable = fp.reachable;
  report.frame_path_stops = fp.stops;

  // One shared suppression mechanism: frame-path findings silence with
  // the same rrp-lint-allow(<rule>): <reason> markers as per-file ones.
  static const Suppressions kNone;
  for (Finding& f : raw) {
    const auto it = sup_by_file.find(f.file);
    const Suppressions& sup = it == sup_by_file.end() ? kNone : it->second;
    std::vector<Finding> one{std::move(f)};
    split_suppressed(std::move(one), sup, &report.findings,
                     &report.suppressed);
  }
  for (const auto& [rel, sup] : sup_by_file)
    report.findings.insert(report.findings.end(), sup.bad.begin(),
                           sup.bad.end());

  const std::vector<Finding> blobs = check_top_level(root);
  report.findings.insert(report.findings.end(), blobs.begin(), blobs.end());
  const auto by_loc = [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule) <
           std::tie(b.file, b.line, b.rule);
  };
  std::sort(report.findings.begin(), report.findings.end(), by_loc);
  std::sort(report.suppressed.begin(), report.suppressed.end(), by_loc);
  return report;
}

std::vector<Finding> lint_tree(const std::string& root,
                               std::vector<std::string> dirs) {
  return lint_tree_report(root, std::move(dirs)).findings;
}

std::string to_string(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.message;
}

}  // namespace rrp::lint
