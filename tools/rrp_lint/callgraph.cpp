// callgraph.cpp — interprocedural frame-path pass for rrp_lint (R6/R7).
//
// Three stages, all over the blanked code view shared with lint.cpp:
//
//  1. Index.  A brace/statement state machine (sibling of lint.cpp's
//     scope_pass) finds function definitions at namespace/class scope:
//     the statement preceding a body-opening '{' is accepted as a
//     definition header when its first top-level '(' is preceded by a
//     plain identifier and the statement tail after the last ')' is only
//     cv/ref/noexcept qualifiers or a trailing return.  Lambdas and local
//     structs inside a body are attributed to the enclosing definition.
//     While a definition's body is open the same walk extracts call
//     sites: an identifier followed by '(' that is not a keyword, not a
//     declaration (previous significant character is an identifier, '>',
//     or '*'), and not inside an ALL-CAPS macro invocation's argument
//     list.  Frame-path markers are parsed from comment lines and bound
//     to the next definition header.
//
//  2. Resolve.  Banned names (allocation, container growth, lock
//     acquisition) are findings at the call site; `std::`-qualified and
//     safe-listed names are accepted; every other name edges to ALL
//     indexed definitions with that simple name (conservative overload /
//     virtual-dispatch treatment) except stop-marked definitions and
//     definitions living in a boundary module (thread_pool, timer,
//     trace, metrics, log, checks — the sanctioned facades, documented
//     in DESIGN.md).  A name that matches nothing is an unresolved-callee
//     diagnostic, never a silent pass.
//
//  3. Check.  BFS from the root set marks the reachable subgraph; each
//     reachable body gets the R6 line scans (new/delete, lock guards,
//     stdio/fstream/ostream tokens, throw) and its banned/unresolved
//     call findings; Tarjan SCCs over the reachable subgraph yield the
//     R7 recursion findings (self-edge = direct, |SCC| > 1 = mutual).
#include "callgraph.h"

#include <algorithm>
#include <map>
#include <set>

#include "text_util.h"

namespace rrp::lint {

namespace {

// ---------------------------------------------------------------------------
// Vocabulary.
// ---------------------------------------------------------------------------

/// Keywords and keyword-like tokens that can precede '(' without being a
/// call we care about (control flow, casts, operators, builtins).
const std::set<std::string>& keyword_set() {
  static const std::set<std::string> kw = {
      "if",       "for",      "while",        "switch",   "catch",
      "return",   "sizeof",   "alignof",      "alignas",  "decltype",
      "noexcept", "throw",    "new",          "delete",   "do",
      "else",     "case",     "default",      "goto",     "operator",
      "this",     "typeid",   "static_assert","asm",      "co_await",
      "co_return","co_yield", "int",          "float",    "double",
      "char",     "bool",     "auto",         "void",     "long",
      "short",    "unsigned", "signed",       "const",    "constexpr",
      "static",   "inline",   "explicit",     "typename", "template",
      "using",    "namespace","struct",       "class",    "enum",
      "union",    "public",   "private",      "protected","virtual",
      "override", "final",    "try",          "defined"};
  return kw;
}

/// R6 allocation: names whose very call allocates (or frees) heap memory.
const std::set<std::string>& alloc_call_set() {
  static const std::set<std::string> s = {
      "malloc",      "calloc",      "realloc", "aligned_alloc",
      "free",        "strdup",      "make_unique", "make_shared",
      "operator_new"};
  return s;
}

/// R6 container growth: member calls that may reallocate the container.
const std::set<std::string>& growth_call_set() {
  static const std::set<std::string> s = {
      "push_back", "emplace_back", "push_front", "emplace_front",
      "resize",    "reserve",      "insert",     "emplace",
      "append",    "shrink_to_fit"};
  return s;
}

/// R6 lock acquisition: member calls on a mutex-like receiver.
const std::set<std::string>& lock_call_set() {
  static const std::set<std::string> s = {"lock", "try_lock", "lock_shared",
                                          "try_lock_shared"};
  return s;
}

/// Names accepted WITHOUT following any definition: libc/cmath helpers
/// and trivially-bounded accessor/lookup names that neither allocate,
/// block, nor do IO.  Checked BEFORE the definition index, so a call to
/// one of these names never creates an edge even when the project
/// defines a same-named function — the receiver-blind resolver would
/// otherwise conflate every `x.size()` / `m.find(k)` with every
/// project method of that name and invent cycles and reachability that
/// do not exist.  The cost is an under-approximation: a project
/// function that shadows one of these names (e.g. Network::find, which
/// allocates) is invisible to the traversal; DESIGN.md §7 documents
/// this, and such functions must not be given frame-path-hot names.
/// Everything else unmatched is an explicit frame-path-unresolved
/// diagnostic, so this list is the ONLY way an external call passes
/// silently — keep it boring.
const std::set<std::string>& safe_call_set() {
  static const std::set<std::string> s = {
      "memcpy",  "memset", "memmove",  "memcmp", "strcmp", "strlen",
      "abs",     "labs",   "llabs",    "fabs",   "fabsf",  "sqrt",
      "sqrtf",   "pow",    "exp",      "expf",   "log2",   "floor",
      "ceil",    "round",  "lround",   "lrint",  "isnan",  "isinf",
      "fmin",    "fmax",   "min",      "max",    "clamp",  "swap",
      "move",    "forward","size",     "empty",  "data",   "begin",
      "end",     "cbegin", "cend",     "front",  "back",   "get",
      "dim",     "raw",    "find",     "count",  "at",     "contains"};
  return s;
}

/// Boundary modules: sanctioned facades whose internals are certified by
/// their own tests and whitelists (thread_pool owns the only legitimate
/// locks; timer/trace/metrics/log/checks are the observability and
/// assert facades).  Edges INTO these files are accepted and traversal
/// stops; the list mirrors the per-file rule whitelists and is
/// documented in DESIGN.md §7.
const char* const kBoundaryPrefixes[] = {
    "src/util/thread_pool.", "src/util/timer.h", "src/util/trace.",
    "src/util/metrics.",     "src/util/log.",    "src/util/checks.h"};

bool boundary_file(const std::string& rel_path) {
  for (const char* p : kBoundaryPrefixes)
    if (starts_with(rel_path, p)) return true;
  return false;
}

/// ALL-CAPS identifier of length >= 3 — treated as a macro invocation
/// when followed by '(' (RRP_CHECK, RRP_SPAN_VAR, RRP_LOG_*, EXPECT_*).
bool macro_like(const std::string& tok) {
  if (tok.size() < 3) return false;
  bool has_alpha = false;
  for (char c : tok) {
    if (c >= 'a' && c <= 'z') return false;
    if (c >= 'A' && c <= 'Z') has_alpha = true;
  }
  return has_alpha;
}

// ---------------------------------------------------------------------------
// Index structures.
// ---------------------------------------------------------------------------

struct CallSite {
  int line = 0;
  std::string name;   ///< callee simple name
  bool member = false;     ///< preceded by '.' or '->'
  bool std_qual = false;   ///< qualifier chain starts at std::
};

struct FunctionDef {
  int file_index = -1;
  std::string name;       ///< simple name
  std::string qualifier;  ///< explicit Class:: or enclosing class, may be ""
  int header_line = 0;    ///< line where the definition statement starts
  int body_begin = 0;     ///< line of the body-opening '{'
  int body_end = 0;       ///< line of the matching '}'
  std::vector<CallSite> calls;
  int marker = 0;  ///< 0 none, 1 root, 2 stop
  std::string display;  ///< "Class::name" for messages
};

struct Marker {
  int line = 0;
  int kind = 0;  ///< 1 root, 2 stop
  bool bound = false;
};

/// Pretty name for findings.
std::string display_name(const FunctionDef& d) {
  return d.qualifier.empty() ? d.name : d.qualifier + "::" + d.name;
}

// ---------------------------------------------------------------------------
// Definition-header parsing.
// ---------------------------------------------------------------------------

/// Walks back from `pos` (exclusive) over spaces; returns the identifier
/// ending there, or "" if the preceding token is not an identifier.
std::string ident_before(const std::string& s, std::size_t pos) {
  std::size_t e = pos;
  while (e > 0 && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  std::size_t b = e;
  while (b > 0 && ident_char(s[b - 1])) --b;
  if (b == e) return "";
  return s.substr(b, e - b);
}

/// Accepts `stmt` (the statement text preceding a body-opening '{') as a
/// function definition header, extracting name and explicit qualifier.
/// Heuristic by design: precise on this codebase's idioms, and anything
/// it cannot parse is simply not indexed (an under-approximation that
/// surfaces as frame-path-unresolved at the call site, not as silence).
bool parse_def_header(const std::string& stmt, std::string* name,
                      std::string* qualifier) {
  const std::size_t paren = stmt.find('(');
  if (paren == kNposT) return false;
  // Reject headers that open with control flow or class-shaped keywords.
  const std::string head = stmt.substr(0, paren);
  for (const char* kw : {"if", "for", "while", "switch", "catch", "return"})
    if (has_token(head, kw)) return false;
  std::string n = ident_before(stmt, paren);
  if (n.empty() || keyword_set().count(n) || macro_like(n)) return false;
  // Optional explicit qualifier: Qual::name(.
  std::string q;
  std::size_t nb = paren;
  while (nb > 0 && (stmt[nb - 1] == ' ' || stmt[nb - 1] == '\t')) --nb;
  nb -= n.size();
  std::size_t qe = nb;
  while (qe > 0 && (stmt[qe - 1] == ' ' || stmt[qe - 1] == '\t')) --qe;
  if (qe >= 2 && stmt[qe - 1] == ':' && stmt[qe - 2] == ':')
    q = ident_before(stmt, qe - 2);
  // Tail after the LAST ')' must be qualifiers / ref / trailing return.
  const std::size_t close = stmt.rfind(')');
  if (close == kNposT) return false;
  std::string tail = trim(stmt.substr(close + 1));
  if (!tail.empty()) {
    if (starts_with(tail, "->")) {
      tail.clear();  // trailing return type: accept
    } else {
      // Consume allowed qualifier tokens.
      std::size_t i = 0;
      while (i < tail.size()) {
        i = skip_spaces(tail, i);
        if (i >= tail.size()) break;
        if (tail[i] == '&') { ++i; continue; }
        std::size_t j = i;
        while (j < tail.size() && ident_char(tail[j])) ++j;
        const std::string tok = tail.substr(i, j - i);
        if (tok == "const" || tok == "noexcept" || tok == "override" ||
            tok == "final" || tok == "mutable") {
          i = j;
          continue;
        }
        return false;  // '= default', 'try', initializer braces, ...
      }
    }
  }
  *name = n;
  *qualifier = q;
  return true;
}

/// Name of the class/struct opened by `stmt`, or "" (enum, anonymous).
std::string parse_class_name(const std::string& stmt) {
  for (const char* kw : {"class", "struct", "union"}) {
    std::size_t pos = 0;
    const std::string k = kw;
    while ((pos = stmt.find(k, pos)) != kNposT) {
      const bool l = pos == 0 || !ident_char(stmt[pos - 1]);
      const std::size_t e = pos + k.size();
      const bool r = e >= stmt.size() || !ident_char(stmt[e]);
      if (l && r) {
        std::size_t i = skip_spaces(stmt, e);
        std::size_t j = i;
        while (j < stmt.size() && ident_char(stmt[j])) ++j;
        if (j > i) return stmt.substr(i, j - i);
        return "";
      }
      pos = e;
    }
  }
  return "";
}

// ---------------------------------------------------------------------------
// Marker parsing.
// ---------------------------------------------------------------------------

const std::string kMarkerTok = "rrp-frame-path";

/// Extracts frame-path markers from comment lines.  Only a comment whose
/// first token IS the marker binds (prose mentions never do).  Malformed
/// markers are findings.
void parse_markers(const ParsedFile& pf, std::vector<Marker>* markers,
                   std::vector<Finding>* findings) {
  for (std::size_t li = 0; li < pf.view.comments.size(); ++li) {
    const std::string c = trim(pf.view.comments[li]);
    if (!starts_with(c, kMarkerTok)) continue;
    const int line = static_cast<int>(li) + 1;
    std::string rest = c.substr(kMarkerTok.size());
    if (starts_with(rest, "-stop")) {
      rest = rest.substr(5);
      if (!rest.empty() && (ident_char(rest[0]) || rest[0] == '-')) {
        findings->push_back({pf.rel_path, line, "bad-frame-path-marker",
                             "unknown frame-path marker suffix in '" + c +
                                 "' (expected rrp-frame-path or "
                                 "rrp-frame-path-stop: <reason>)"});
        continue;
      }
      const std::string reason =
          starts_with(trim(rest), ":") ? trim(trim(rest).substr(1)) : "";
      if (reason.empty()) {
        findings->push_back(
            {pf.rel_path, line, "bad-frame-path-marker",
             "rrp-frame-path-stop needs a reason: // rrp-frame-path-stop: "
             "<why this boundary is sound>"});
        continue;
      }
      markers->push_back({line, 2, false});
    } else if (!rest.empty() && (ident_char(rest[0]) || rest[0] == '-')) {
      findings->push_back({pf.rel_path, line, "bad-frame-path-marker",
                           "unknown frame-path marker suffix in '" + c +
                               "' (expected rrp-frame-path or "
                               "rrp-frame-path-stop: <reason>)"});
    } else {
      // Optional ": note" after the bare root marker is fine.
      markers->push_back({line, 1, false});
    }
  }
}

// ---------------------------------------------------------------------------
// Per-file indexing: definitions, call sites, indirect-call syntax.
// ---------------------------------------------------------------------------

struct FileIndex {
  std::vector<FunctionDef> defs;
  /// (def-local index, line, message) — fn-pointer / memfn-pointer sites.
  std::vector<Finding> marker_findings;
};

void index_file(const ParsedFile& pf, int file_index,
                std::vector<FunctionDef>* all_defs,
                std::vector<Finding>* findings) {
  std::vector<Marker> markers;
  parse_markers(pf, &markers, findings);

  struct Scope {
    char kind;  // 'N' namespace, 'C' class, 'F' function body, 'B' block
    std::string cls;  // class name when kind == 'C'
  };
  std::vector<Scope> scopes;

  const int first_def = static_cast<int>(all_defs->size());
  int active = -1;          // index into *all_defs of the open definition
  std::size_t fn_depth = 0; // scope depth at which the body was opened
  int paren = 0;            // paren depth inside the active function
  int macro_paren = -1;     // paren depth at ALL-CAPS macro entry, -1 idle
  char last_sig = 0;        // last significant (non-space) char seen
  char prev_sig = 0;        // the one before it (detects "->", "::")
  std::string prev_tok;     // last identifier token seen
  std::string stmt;         // statement text since last '{' '}' ';'
  int stmt_line = 0;        // line where stmt started

  auto enclosing_class = [&]() -> std::string {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it)
      if (it->kind == 'C') return it->cls;
    return "";
  };

  for (std::size_t li = 0; li < pf.view.code.size(); ++li) {
    const std::string& s = pf.view.code[li];
    const int line = static_cast<int>(li) + 1;
    std::size_t i = 0;
    while (i < s.size()) {
      const char c = s[i];
      if (c == ' ' || c == '\t') {
        ++i;
        continue;
      }
      if (ident_char(c)) {
        std::size_t j = i;
        while (j < s.size() && ident_char(s[j])) ++j;
        const std::string tok = s.substr(i, j - i);
        if (active >= 0) {
          // Call-site extraction inside the open definition.
          const std::size_t k = skip_spaces(s, j);
          const bool calls_next = k < s.size() && s[k] == '(';
          if (calls_next && macro_paren < 0 && macro_like(tok)) {
            macro_paren = paren;  // skip the macro's argument list
          } else if (calls_next && macro_paren < 0 &&
                     !keyword_set().count(tok) && !macro_like(tok)) {
            const bool member =
                last_sig == '.' || (last_sig == '>' && prev_sig == '-');
            // Two identifiers in a row (`Foo bar(`) or a template /
            // pointer suffix (`vector<T> v(`, `T* v(`) is a declaration,
            // unless the previous token reads as an expression keyword.
            const bool decl_like =
                (ident_char(last_sig) &&
                 !(prev_tok == "return" || prev_tok == "else" ||
                   prev_tok == "do" || prev_tok == "case" ||
                   prev_tok == "co_return" || prev_tok == "new" ||
                   prev_tok == "throw")) ||
                (last_sig == '>' && prev_sig != '-') || last_sig == '*';
            if (!member && decl_like) {
              // declaration — not a call
            } else {
              bool std_qual = false;
              if (last_sig == ':' && prev_sig == ':') {
                // Walk the qualifier chain left: a::b::name(
                std::string lead, cur = tok;
                std::size_t back = i;
                const std::string& line_s = s;
                while (back >= 2 && line_s[back - 1] == ':' &&
                       line_s[back - 2] == ':') {
                  const std::string q = ident_before(line_s, back - 2);
                  if (q.empty()) break;
                  lead = q;
                  back -= 2 + q.size();
                  while (back > 0 && (line_s[back - 1] == ' ' ||
                                      line_s[back - 1] == '\t'))
                    --back;
                }
                std_qual = lead == "std";
              }
              (*all_defs)[active].calls.push_back(
                  {line, tok, member, std_qual});
            }
          }
        } else {
          // Statement accumulation for definition detection.
          if (stmt.empty()) stmt_line = line;
          stmt.append(tok);
          stmt.push_back(' ');
        }
        prev_sig = last_sig;
        last_sig = s[j - 1];
        prev_tok = tok;
        i = j;
        continue;
      }
      switch (c) {
        case '(':
          if (active >= 0) ++paren;
          if (active < 0) { if (stmt.empty()) stmt_line = line; stmt.push_back(c); }
          break;
        case ')':
          if (active >= 0) {
            if (paren > 0) --paren;
            if (macro_paren >= 0 && paren <= macro_paren) macro_paren = -1;
          }
          if (active < 0) stmt.push_back(c);
          break;
        case '{': {
          if (active >= 0) {
            scopes.push_back({'B', ""});
            break;
          }
          Scope sc{'B', ""};
          std::string name, qual;
          if (has_token(stmt, "namespace")) {
            sc.kind = 'N';
          } else if (parse_def_header(stmt, &name, &qual)) {
            sc.kind = 'F';
            FunctionDef d;
            d.file_index = file_index;
            d.name = name;
            d.qualifier = qual.empty() ? enclosing_class() : qual;
            d.header_line = stmt_line;
            d.body_begin = line;
            d.display = display_name(d);
            all_defs->push_back(d);
            active = static_cast<int>(all_defs->size()) - 1;
            fn_depth = scopes.size();
            paren = 0;
            macro_paren = -1;
          } else if (has_token(stmt, "class") || has_token(stmt, "struct") ||
                     has_token(stmt, "union") || has_token(stmt, "enum")) {
            sc.kind = 'C';
            sc.cls = parse_class_name(stmt);
          }
          scopes.push_back(sc);
          stmt.clear();
          break;
        }
        case '}': {
          if (!scopes.empty()) {
            const bool closing_fn =
                active >= 0 && scopes.size() == fn_depth + 1;
            scopes.pop_back();
            if (closing_fn) {
              (*all_defs)[active].body_end = line;
              active = -1;
            }
          }
          stmt.clear();
          break;
        }
        case ';':
          if (active < 0) stmt.clear();
          break;
        default:
          if (active < 0) {
            if (stmt.empty()) stmt_line = line;
            stmt.push_back(c);
          }
          break;
      }
      prev_sig = last_sig;
      last_sig = c;
      prev_tok.clear();
      ++i;
    }
  }
  // Unterminated definition at EOF (unbalanced braces): close it so the
  // body range stays sane.
  if (active >= 0 && (*all_defs)[active].body_end == 0)
    (*all_defs)[active].body_end = static_cast<int>(pf.view.code.size());

  // Bind markers to the next definition header.  A marker on line L binds
  // to the first definition whose header starts at/after L with only
  // blank code lines in between, or whose header region spans L
  // (trailing marker on the header line itself).
  for (Marker& m : markers) {
    int best = -1;
    for (int di = first_def; di < static_cast<int>(all_defs->size()); ++di) {
      const FunctionDef& d = (*all_defs)[di];
      if (d.body_begin < m.line) continue;
      if (d.header_line <= m.line) {
        best = di;  // marker sits inside the header region
        break;
      }
      bool blank_between = true;
      for (int l = m.line + 1; l < d.header_line; ++l) {
        const std::string& code = pf.view.code[static_cast<std::size_t>(l) - 1];
        if (!trim(code).empty()) {
          blank_between = false;
          break;
        }
      }
      if (blank_between) best = di;
      break;  // defs are in order; the first candidate decides
    }
    if (best < 0) {
      findings->push_back(
          {pf.rel_path, m.line, "bad-frame-path-marker",
           "dangling frame-path marker: no function definition follows"});
      continue;
    }
    FunctionDef& d = (*all_defs)[best];
    if (d.marker != 0) {
      findings->push_back({pf.rel_path, m.line, "bad-frame-path-marker",
                           "duplicate frame-path marker on '" + d.display +
                               "' (already marked)"});
      continue;
    }
    d.marker = m.kind;
  }
}

// ---------------------------------------------------------------------------
// R6 body line scans (reachable definitions only).
// ---------------------------------------------------------------------------

const char* const kLockTokens[] = {"lock_guard", "unique_lock", "scoped_lock",
                                   "shared_lock"};
const char* const kIoTokens[] = {"cout",     "cerr",     "cin",
                                 "clog",     "ofstream", "ifstream",
                                 "fstream",  "filebuf"};
const char* const kIoCalls[] = {"printf", "fprintf", "sprintf", "snprintf",
                                "fopen",  "fwrite",  "fread",   "fputs",
                                "fgets",  "puts",    "putchar", "fflush",
                                "fclose", "getline", "scanf",   "fscanf"};

/// The body scan above owns the diagnostic for these names; the resolver
/// skips them so one printf is one frame-path-io finding, not an
/// additional frame-path-unresolved.
bool io_call_name(const std::string& name) {
  for (const char* t : kIoCalls)
    if (name == t) return true;
  return false;
}

void scan_body_lines(const ParsedFile& pf, const FunctionDef& d,
                     const std::string& via, std::vector<Finding>* out) {
  const std::string ctx = " in '" + d.display + "' (" + via + ")";
  for (int l = d.body_begin; l <= d.body_end; ++l) {
    const std::string& s = pf.view.code[static_cast<std::size_t>(l) - 1];
    if (has_token(s, "new") || has_token(s, "delete"))
      out->push_back({pf.rel_path, l, "frame-path-alloc",
                      "heap allocation (new/delete) on the frame path" + ctx +
                          ": preallocate at provision time (DESIGN.md "
                          "invariant 14)"});
    for (const char* t : kLockTokens)
      if (has_token(s, t))
        out->push_back({pf.rel_path, l, "frame-path-lock",
                        std::string(t) + " acquires a lock on the frame "
                        "path" + ctx + ": only the deterministic pool may "
                        "block (DESIGN.md invariant 14)"});
    bool io = false;
    for (const char* t : kIoTokens) io = io || has_token(s, t);
    for (const char* t : kIoCalls) io = io || has_call(s, t);
    if (io)
      out->push_back({pf.rel_path, l, "frame-path-io",
                      "IO on the frame path" + ctx +
                          ": record to the flight recorder / metrics "
                          "instead (DESIGN.md invariant 14)"});
    if (has_token(s, "throw"))
      out->push_back({pf.rel_path, l, "frame-path-throw",
                      "throw on the frame path" + ctx +
                          ": certified degrade paths return status, they "
                          "do not unwind (DESIGN.md invariant 14)"});
    // Indirect calls the resolver cannot see: member-function pointers
    // and explicit function-pointer dereference calls.
    if (s.find("->*") != kNposT)
      out->push_back({pf.rel_path, l, "frame-path-unresolved",
                      "member-function-pointer call" + ctx +
                          ": cannot be resolved statically — annotate the "
                          "target or suppress with a reason"});
    std::size_t dp = 0;
    while ((dp = s.find(".*", dp)) != kNposT) {
      const bool digit =
          dp > 0 && std::isdigit(static_cast<unsigned char>(s[dp - 1]));
      if (!digit) {
        out->push_back({pf.rel_path, l, "frame-path-unresolved",
                        "member-function-pointer call" + ctx +
                            ": cannot be resolved statically — annotate "
                            "the target or suppress with a reason"});
        break;
      }
      dp += 2;
    }
  }
}

// ---------------------------------------------------------------------------
// Tarjan SCC (iterative) over the reachable subgraph.
// ---------------------------------------------------------------------------

struct SccState {
  std::vector<int> index, lowlink;
  std::vector<bool> on_stack;
  std::vector<int> stack;
  std::vector<std::vector<int>> sccs;
  int counter = 0;
};

void tarjan(int v, const std::vector<std::vector<int>>& adj, SccState* st) {
  struct Frame {
    int v;
    std::size_t edge;
  };
  std::vector<Frame> work{{v, 0}};
  while (!work.empty()) {
    Frame& f = work.back();
    if (f.edge == 0) {
      st->index[f.v] = st->lowlink[f.v] = st->counter++;
      st->stack.push_back(f.v);
      st->on_stack[f.v] = true;
    }
    bool descended = false;
    while (f.edge < adj[f.v].size()) {
      const int w = adj[f.v][f.edge++];
      if (st->index[w] < 0) {
        work.push_back({w, 0});
        descended = true;
        break;
      }
      if (st->on_stack[w])
        st->lowlink[f.v] = std::min(st->lowlink[f.v], st->index[w]);
    }
    if (descended) continue;
    if (st->lowlink[f.v] == st->index[f.v]) {
      std::vector<int> scc;
      int w;
      do {
        w = st->stack.back();
        st->stack.pop_back();
        st->on_stack[w] = false;
        scc.push_back(w);
      } while (w != f.v);
      st->sccs.push_back(std::move(scc));
    }
    const int done = f.v;
    work.pop_back();
    if (!work.empty())
      st->lowlink[work.back().v] =
          std::min(st->lowlink[work.back().v], st->lowlink[done]);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// The pass.
// ---------------------------------------------------------------------------

std::vector<Finding> frame_path_pass(const std::vector<ParsedFile>& files,
                                     FramePathStats* stats) {
  std::vector<Finding> out;
  std::vector<FunctionDef> defs;
  for (std::size_t fi = 0; fi < files.size(); ++fi)
    index_file(files[fi], static_cast<int>(fi), &defs, &out);

  std::map<std::string, std::vector<int>> by_name;
  for (std::size_t di = 0; di < defs.size(); ++di)
    by_name[defs[di].name].push_back(static_cast<int>(di));

  // Resolve call sites into edges; classify banned / safe / unresolved.
  const int n = static_cast<int>(defs.size());
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  struct Pending {
    int def;
    Finding finding;
  };
  std::vector<Pending> pending;  // emitted only if the def is reachable
  int edge_count = 0;
  for (int di = 0; di < n; ++di) {
    const FunctionDef& d = defs[di];
    const std::string& rel = files[static_cast<std::size_t>(d.file_index)]
                                 .rel_path;
    for (const CallSite& c : d.calls) {
      if (growth_call_set().count(c.name)) {
        pending.push_back(
            {di,
             {rel, c.line, "frame-path-alloc",
              "container growth '" + c.name + "(...)'" + " in '" + d.display +
                  "' may reallocate on the frame path: preallocate at "
                  "provision time (DESIGN.md invariant 14)"}});
        continue;
      }
      if (alloc_call_set().count(c.name)) {
        pending.push_back(
            {di,
             {rel, c.line, "frame-path-alloc",
              "'" + c.name + "(...)' allocates in '" + d.display +
                  "' on the frame path (DESIGN.md invariant 14)"}});
        continue;
      }
      if (c.member && lock_call_set().count(c.name)) {
        pending.push_back(
            {di,
             {rel, c.line, "frame-path-lock",
              "'." + c.name + "()' acquires a lock in '" + d.display +
                  "' on the frame path: only the deterministic pool may "
                  "block (DESIGN.md invariant 14)"}});
        continue;
      }
      if (c.std_qual) continue;  // remaining std:: calls: accepted facade
      if (io_call_name(c.name)) continue;  // the body scan reports these
      if (safe_call_set().count(c.name)) continue;  // wins over the index
      if (starts_with(c.name, "__")) continue;   // compiler builtins
      if (starts_with(c.name, "_mm")) continue;  // SIMD intrinsics
                                                 // (_mm_/_mm256_/_mm512_)
      const auto it = by_name.find(c.name);
      if (it != by_name.end()) {
        for (int ti : it->second) {
          const FunctionDef& t = defs[static_cast<std::size_t>(ti)];
          if (t.marker == 2) continue;  // stop boundary: edge dropped
          if (ti == di && c.member)
            continue;  // `x.f()` inside f: delegation through another
                       // receiver object, not self-recursion (the
                       // receiver-blind resolver cannot tell x's class;
                       // genuine recursion is a free call and still
                       // caught)
          if (boundary_file(
                  files[static_cast<std::size_t>(t.file_index)].rel_path))
            continue;  // sanctioned facade module
          adj[static_cast<std::size_t>(di)].push_back(ti);
          ++edge_count;
        }
        continue;  // name resolved (even if every target was a boundary)
      }
      if (c.member) continue;  // unknown member on an unknown type: the
                               // receiver's class is outside the tree or
                               // an STL type; growth/lock names were
                               // already screened above
      pending.push_back(
          {di,
           {rel, c.line, "frame-path-unresolved",
            "cannot resolve callee '" + c.name + "' in '" + d.display +
                "': no definition indexed (function pointer, external, or "
                "unparsed) — annotate the target, stop-mark it, or "
                "suppress with a reason"}});
    }
  }

  // Reachability from roots.
  std::vector<int> reach_from(static_cast<std::size_t>(n), -1);
  std::vector<int> queue;
  for (int di = 0; di < n; ++di)
    if (defs[static_cast<std::size_t>(di)].marker == 1) {
      reach_from[static_cast<std::size_t>(di)] = di;
      queue.push_back(di);
    }
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const int v = queue[qi];
    for (int w : adj[static_cast<std::size_t>(v)])
      if (reach_from[static_cast<std::size_t>(w)] < 0) {
        reach_from[static_cast<std::size_t>(w)] =
            reach_from[static_cast<std::size_t>(v)];
        queue.push_back(w);
      }
  }

  // R6: body scans + pending call findings on the reachable set.
  for (int di = 0; di < n; ++di) {
    if (reach_from[static_cast<std::size_t>(di)] < 0) continue;
    const FunctionDef& d = defs[static_cast<std::size_t>(di)];
    const FunctionDef& root = defs[static_cast<std::size_t>(
        reach_from[static_cast<std::size_t>(di)])];
    const std::string via = di == reach_from[static_cast<std::size_t>(di)]
                                ? "frame-path root"
                                : "frame path via root '" + root.display + "'";
    scan_body_lines(files[static_cast<std::size_t>(d.file_index)], d, via,
                    &out);
  }
  for (const Pending& p : pending)
    if (reach_from[static_cast<std::size_t>(p.def)] >= 0)
      out.push_back(p.finding);

  // R7: recursion within the reachable subgraph.
  std::vector<std::vector<int>> radj(static_cast<std::size_t>(n));
  for (int di = 0; di < n; ++di) {
    if (reach_from[static_cast<std::size_t>(di)] < 0) continue;
    for (int w : adj[static_cast<std::size_t>(di)])
      if (reach_from[static_cast<std::size_t>(w)] >= 0)
        radj[static_cast<std::size_t>(di)].push_back(w);
  }
  SccState st;
  st.index.assign(static_cast<std::size_t>(n), -1);
  st.lowlink.assign(static_cast<std::size_t>(n), -1);
  st.on_stack.assign(static_cast<std::size_t>(n), false);
  for (int di = 0; di < n; ++di)
    if (reach_from[static_cast<std::size_t>(di)] >= 0 && st.index[di] < 0)
      tarjan(di, radj, &st);
  for (const std::vector<int>& scc : st.sccs) {
    if (scc.size() == 1) {
      const int v = scc[0];
      const auto& edges = radj[static_cast<std::size_t>(v)];
      if (std::find(edges.begin(), edges.end(), v) == edges.end()) continue;
      const FunctionDef& d = defs[static_cast<std::size_t>(v)];
      out.push_back(
          {files[static_cast<std::size_t>(d.file_index)].rel_path,
           d.header_line, "frame-path-recursion",
           "direct recursion: '" + d.display + "' calls itself on the "
           "frame path (unbounded stack/latency, DESIGN.md invariant 14)"});
      continue;
    }
    std::vector<std::string> names;
    for (int v : scc)
      names.push_back(defs[static_cast<std::size_t>(v)].display);
    std::sort(names.begin(), names.end());
    std::string cycle;
    for (const std::string& nm : names) {
      if (!cycle.empty()) cycle += ", ";
      cycle += nm;
    }
    for (int v : scc) {
      const FunctionDef& d = defs[static_cast<std::size_t>(v)];
      out.push_back(
          {files[static_cast<std::size_t>(d.file_index)].rel_path,
           d.header_line, "frame-path-recursion",
           "mutual recursion on the frame path: cycle {" + cycle +
               "} (unbounded stack/latency, DESIGN.md invariant 14)"});
    }
  }

  if (stats) {
    stats->defs = n;
    stats->edges = edge_count;
    for (int di = 0; di < n; ++di) {
      if (defs[static_cast<std::size_t>(di)].marker == 1) ++stats->roots;
      if (defs[static_cast<std::size_t>(di)].marker == 2) ++stats->stops;
      if (reach_from[static_cast<std::size_t>(di)] >= 0) ++stats->reachable;
    }
  }
  return out;
}

}  // namespace rrp::lint
