#!/usr/bin/env bash
# bump_golden.sh — script the golden-trace digest bump.
#
#   tools/bump_golden.sh [build_dir]    (default: build)
#
# When an INTENTIONAL change shifts the telemetry or span-trace export,
# the GoldenTrace test fails and prints the new digests.  This script
# automates the documented bump procedure in tests/test_golden_trace.cpp:
#   1. rebuild rrp_tests and run the GoldenTrace suite;
#   2. if green, stop — nothing to bump;
#   3. otherwise parse the printed "set kTelemetryDigest/kSpanTraceDigest"
#      values, rewrite the pinned constants in the test file;
#   4. rebuild and re-run to confirm the bump closed the gap.
#
# Do NOT run this for a diff you cannot explain — an unexplained digest
# flip is the regression this oracle exists to catch.  Review the test
# file's diff before committing.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
TEST_FILE="tests/test_golden_trace.cpp"
JOBS="$(nproc 2>/dev/null || echo 4)"

if [ ! -d "$BUILD" ]; then
  echo "error: build dir '$BUILD' not found (run: cmake -B $BUILD -S .)" >&2
  exit 1
fi

cmake --build "$BUILD" -j "$JOBS" --target rrp_tests

echo "== running GoldenTrace suite =="
set +e
out="$("./$BUILD/tests/rrp_tests" --gtest_filter='GoldenTrace.*' 2>&1)"
rc=$?
set -e
if [ "$rc" -eq 0 ]; then
  echo "golden digests already match; nothing to bump"
  exit 0
fi

# The failure messages embed the replacement constants verbatim.
tel="$(printf '%s\n' "$out" |
  sed -n 's/.*set kTelemetryDigest = \(0x[0-9a-f]\{16\}ull\).*/\1/p' | head -1)"
span="$(printf '%s\n' "$out" |
  sed -n 's/.*set kSpanTraceDigest = \(0x[0-9a-f]\{16\}ull\).*/\1/p' | head -1)"

if [ -z "$tel" ] && [ -z "$span" ]; then
  echo "error: GoldenTrace failed but printed no bumpable digests —" >&2
  echo "this is NOT a digest drift; fix the underlying failure:" >&2
  printf '%s\n' "$out" | tail -20 >&2
  exit 1
fi

if [ -n "$tel" ]; then
  sed -i "s/kTelemetryDigest = 0x[0-9a-f]\{16\}ull/kTelemetryDigest = $tel/" \
    "$TEST_FILE"
  echo "bumped kTelemetryDigest -> $tel"
fi
if [ -n "$span" ]; then
  sed -i "s/kSpanTraceDigest = 0x[0-9a-f]\{16\}ull/kSpanTraceDigest = $span/" \
    "$TEST_FILE"
  echo "bumped kSpanTraceDigest -> $span"
fi

echo "== verifying the bump =="
cmake --build "$BUILD" -j "$JOBS" --target rrp_tests
"./$BUILD/tests/rrp_tests" --gtest_filter='GoldenTrace.*'
echo
echo "bump verified: review 'git diff $TEST_FILE' and explain it in the PR"
