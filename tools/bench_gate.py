#!/usr/bin/env python3
"""bench_gate.py — bench-regression gate over BENCH_<name>.json reports.

Every bench binary emits a schema-versioned, byte-deterministic
BENCH_<name>.json (see bench/bench_report.h).  This gate re-runs the two
cheap deterministic benches in their --gate modes and compares every metric
against the committed baselines in bench/baselines/ with a relative
tolerance band:

    |current - baseline| / max(|baseline|, eps) > tolerance  ->  FAIL

The gated metrics are *modeled* (platform-model microseconds, touched
bytes, accuracies) — pure functions of the cached artifacts — so on an
unmodified tree they reproduce exactly and any drift is a real behaviour
change, not host noise.  The band exists to absorb intentional small
recalibrations without a baseline churn on every PR.

Reports may also carry a "wall_metrics" section (schema v2): MEASURED
wall-clock numbers from the same run.  Those are machine-dependent by
nature, so the gate prints them informationally and NEVER compares them —
they cannot fail the gate, and baselines are free to contain stale ones.

Usage:
    tools/bench_gate.py                 # run benches, compare, exit 0/1
    tools/bench_gate.py --update        # refresh the committed baselines
    tools/bench_gate.py --self-test     # gate logic check, no bench runs
    tools/bench_gate.py --only micro    # restrict to one bench
    tools/bench_gate.py --tolerance 0.1 # override the band (or
                                        # RRP_BENCH_TOLERANCE)

Wired into tools/check.sh as step (g) and into ctest under the `bench`
label (self-test only, so plain `ctest` stays fast).
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_DIR = os.path.join(REPO_ROOT, "bench", "baselines")
SCHEMA_VERSION = 2
EPS = 1e-12

# Bench name -> command line (relative to --build-dir).  Only benches with
# a deterministic gate mode belong here.
GATE_BENCHES = {
    "micro": ["bench/bench_micro", "--gate"],
    "t2": ["bench/bench_t2_endtoend", "--gate", "1"],
    "campaign": ["bench/bench_campaign", "--gate", "1"],
    "serve": ["bench/bench_serve", "--gate", "1"],
}


def load_report(path):
    with open(path, "r", encoding="utf-8") as f:
        report = json.load(f)
    if report.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            "%s: schema_version %r != supported %d"
            % (path, report.get("schema_version"), SCHEMA_VERSION)
        )
    for key in ("name", "config", "metrics"):
        if key not in report:
            raise ValueError("%s: missing %r field" % (path, key))
    report.setdefault("wall_metrics", [])
    return report


def metric_map(report):
    return {m["id"]: m for m in report["metrics"]}


def print_wall_info(report):
    """Informational dump of a report's measured wall-clock section.

    Wall metrics are machine-dependent and are deliberately NEVER part of
    the pass/fail comparison — this is display only.
    """
    wall = report.get("wall_metrics") or []
    if not wall:
        return
    print("%s: %d wall metric(s) (informational, never gated):"
          % (report.get("name", "?"), len(wall)))
    for m in wall:
        print("  wall  %-40s %14.3f %s" % (m["id"], float(m["value"]), m["unit"]))


def compare(baseline, current, tolerance):
    """Returns (failures, warnings): lists of human-readable strings."""
    failures, warnings = [], []
    name = baseline.get("name", "?")

    if baseline["config"] != current["config"]:
        failures.append(
            "%s: config mismatch (baseline %s vs current %s) — a changed "
            "recipe needs fresh baselines: tools/bench_gate.py --update"
            % (name, json.dumps(baseline["config"], sort_keys=True),
               json.dumps(current["config"], sort_keys=True))
        )
        return failures, warnings

    base_metrics = metric_map(baseline)
    cur_metrics = metric_map(current)
    for mid in sorted(base_metrics):
        if mid not in cur_metrics:
            failures.append("%s: metric '%s' missing from current run" % (name, mid))
            continue
        b = float(base_metrics[mid]["value"])
        c = float(cur_metrics[mid]["value"])
        rel = abs(c - b) / max(abs(b), EPS)
        if rel > tolerance:
            failures.append(
                "%s: '%s' regressed beyond tolerance: baseline %.6f vs "
                "current %.6f (rel diff %.4f > %.4f)"
                % (name, mid, b, c, rel, tolerance)
            )
    for mid in sorted(cur_metrics):
        if mid not in base_metrics:
            warnings.append(
                "%s: new metric '%s' has no baseline (run --update to pin it)"
                % (name, mid)
            )
    return failures, warnings


def run_gate_bench(name, build_dir, out_dir):
    """Runs one gate bench with RRP_BENCH_OUT=out_dir; returns report path."""
    cmd = [os.path.join(build_dir, GATE_BENCHES[name][0])]
    cmd += GATE_BENCHES[name][1:]
    if not os.path.isfile(cmd[0]):
        raise FileNotFoundError(
            "%s not built — run: cmake --build %s --target %s"
            % (cmd[0], build_dir, os.path.basename(cmd[0]))
        )
    env = dict(os.environ)
    env["RRP_BENCH_OUT"] = out_dir
    # cwd = repo root so every bench shares the provisioned cache/.
    proc = subprocess.run(
        cmd, cwd=REPO_ROOT, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
    )
    if proc.returncode != 0:
        sys.stdout.buffer.write(proc.stdout)
        raise RuntimeError("%s exited %d" % (" ".join(cmd), proc.returncode))
    return os.path.join(out_dir, "BENCH_%s.json" % name)


def self_test():
    """Gate-logic check with fabricated reports — no bench binaries run."""
    base = {
        "schema_version": 2,
        "name": "selftest",
        "config": {"mode": "gate"},
        "metrics": [
            {"id": "a", "value": 100.0, "unit": "us"},
            {"id": "b", "value": 0.5, "unit": "fraction"},
            {"id": "gone", "value": 1.0, "unit": "count"},
        ],
        "wall_metrics": [
            {"id": "wall_x", "value": 437.2, "unit": "us"},
        ],
    }
    regressed = {
        "schema_version": 2,
        "name": "selftest",
        "config": {"mode": "gate"},
        "metrics": [
            {"id": "a", "value": 120.0, "unit": "us"},   # +20% > 5%
            {"id": "b", "value": 0.5001, "unit": "fraction"},  # within band
            {"id": "extra", "value": 2.0, "unit": "count"},    # warning only
        ],
        # Wildly different wall reading AND a new wall id: informational
        # only — must contribute zero failures and zero warnings.
        "wall_metrics": [
            {"id": "wall_x", "value": 9999.0, "unit": "us"},
            {"id": "wall_new", "value": 1.0, "unit": "x"},
        ],
    }
    failures, warnings = compare(base, regressed, tolerance=0.05)
    ok = (
        len(failures) == 2  # 'a' out of band + 'gone' missing
        and any("'a'" in f for f in failures)
        and any("'gone'" in f for f in failures)
        and len(warnings) == 1
        and "'extra'" in warnings[0]
        and not any("wall" in f for f in failures)
        and not any("wall" in w for w in warnings)
    )
    clean_failures, clean_warnings = compare(base, base, tolerance=0.05)
    ok = ok and not clean_failures and not clean_warnings

    mismatched = dict(base)
    mismatched["config"] = {"mode": "full"}
    cfg_failures, _ = compare(base, mismatched, tolerance=0.05)
    ok = ok and len(cfg_failures) == 1 and "config mismatch" in cfg_failures[0]

    # Campaign-shaped report (quantile-tail metric ids from
    # bench_campaign): identical reports compare clean, and a drifted p99
    # tail is a failure like any other modeled metric.
    camp = {
        "schema_version": 2,
        "name": "campaign",
        "config": {"cells": "12", "mode": "gate"},
        "metrics": [
            {"id": "missed_critical_rate.p99", "value": 0.2,
             "unit": "fraction"},
            {"id": "recovery_ms.max", "value": 3.5, "unit": "ms"},
        ],
        "wall_metrics": [
            {"id": "wall_cells_per_s", "value": 8.0, "unit": "cells/s"},
        ],
    }
    camp_clean_f, camp_clean_w = compare(camp, camp, tolerance=0.05)
    camp_bad = json.loads(json.dumps(camp))
    camp_bad["metrics"][0]["value"] = 0.3  # +50% p99 tail drift
    camp_tail_f, _ = compare(camp, camp_bad, tolerance=0.05)
    ok = (
        ok
        and not camp_clean_f
        and not camp_clean_w
        and len(camp_tail_f) == 1
        and "missed_critical_rate.p99" in camp_tail_f[0]
    )

    # Serve-shaped report (per-sweep-point ids from bench_serve): identical
    # reports compare clean; a drifted congestion-adjusted p99 frame time
    # fails; the wall frames/s throughput is informational only.
    srv = {
        "schema_version": 2,
        "name": "serve",
        "config": {"budget_ms": "6", "frames": "120", "mode": "gate"},
        "metrics": [
            {"id": "s6_fps83.p99_frame_ms", "value": 9.5, "unit": "ms"},
            {"id": "s6_fps83.deadline_miss_rate", "value": 0.02,
             "unit": "fraction"},
            {"id": "s6_fps83.sheds", "value": 1.0, "unit": "count"},
        ],
        "wall_metrics": [
            {"id": "wall_s6_fps83.frames_per_s", "value": 5200.0,
             "unit": "frames/s"},
        ],
    }
    srv_clean_f, srv_clean_w = compare(srv, srv, tolerance=0.05)
    srv_bad = json.loads(json.dumps(srv))
    srv_bad["metrics"][0]["value"] = 12.0  # p99 frame-time drift
    srv_bad["wall_metrics"][0]["value"] = 1.0  # throughput: never gated
    srv_tail_f, srv_tail_w = compare(srv, srv_bad, tolerance=0.05)
    ok = (
        ok
        and not srv_clean_f
        and not srv_clean_w
        and len(srv_tail_f) == 1
        and "s6_fps83.p99_frame_ms" in srv_tail_f[0]
        and not srv_tail_w
    )

    # Snapshot-schema pin (bench_serve exports snapshot.schema_version so
    # the fleet-snapshot JSON layout can't change silently): the exact
    # baseline value compares clean, any bump is a hard failure — integer
    # version steps always exceed every sane relative tolerance band —
    # while the wall metrics riding along stay ungated.
    snap = {
        "schema_version": 2,
        "name": "serve",
        "config": {"mode": "gate"},
        "metrics": [
            {"id": "snapshot.schema_version", "value": 1.0, "unit": "version"},
        ],
        "wall_metrics": [
            {"id": "wall_s8_fps83.frames_per_s", "value": 7000.0,
             "unit": "frames/s"},
        ],
    }
    snap_clean_f, snap_clean_w = compare(snap, snap, tolerance=0.05)
    snap_bumped = json.loads(json.dumps(snap))
    snap_bumped["metrics"][0]["value"] = 2.0  # unannounced schema bump
    snap_bumped["wall_metrics"][0]["value"] = 123.0  # still never gated
    snap_f, snap_w = compare(snap, snap_bumped, tolerance=0.05)
    ok = (
        ok
        and not snap_clean_f
        and not snap_clean_w
        and len(snap_f) == 1
        and "snapshot.schema_version" in snap_f[0]
        and not snap_w
    )

    print("bench_gate self-test:", "PASS" if ok else "FAIL")
    if not ok:
        for f in failures:
            print("  unexpected failure set:", f)
    return 0 if ok else 1


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default=os.path.join(REPO_ROOT, "build"))
    parser.add_argument("--baseline-dir", default=BASELINE_DIR)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("RRP_BENCH_TOLERANCE", "0.05")),
        help="relative tolerance band (default 0.05, env RRP_BENCH_TOLERANCE)",
    )
    parser.add_argument("--only", action="append", choices=sorted(GATE_BENCHES))
    parser.add_argument("--update", action="store_true",
                        help="rewrite the committed baselines from this run")
    parser.add_argument("--self-test", action="store_true",
                        help="check the gate logic itself; runs no benches")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    names = args.only or sorted(GATE_BENCHES)
    all_failures, all_warnings = [], []
    with tempfile.TemporaryDirectory(prefix="rrp_bench_gate_") as tmp:
        for name in names:
            print("== bench_gate: running '%s' gate bench ==" % name)
            try:
                report_path = run_gate_bench(name, args.build_dir, tmp)
                current = load_report(report_path)
            except (OSError, RuntimeError, ValueError) as e:
                all_failures.append("%s: %s" % (name, e))
                continue

            if args.update:
                os.makedirs(args.baseline_dir, exist_ok=True)
                dest = os.path.join(args.baseline_dir, "BENCH_%s.json" % name)
                with open(report_path, "r", encoding="utf-8") as src, open(
                    dest, "w", encoding="utf-8"
                ) as dst:
                    dst.write(src.read())
                print("baseline updated: %s" % os.path.relpath(dest, REPO_ROOT))
                continue

            baseline_path = os.path.join(
                args.baseline_dir, "BENCH_%s.json" % name
            )
            if not os.path.isfile(baseline_path):
                all_failures.append(
                    "%s: no baseline at %s (create with --update)"
                    % (name, os.path.relpath(baseline_path, REPO_ROOT))
                )
                continue
            baseline = load_report(baseline_path)
            failures, warnings = compare(baseline, current, args.tolerance)
            print_wall_info(current)
            n_metrics = len(metric_map(baseline))
            print(
                "%s: %d metric(s) vs baseline, %d failure(s), %d warning(s)"
                % (name, n_metrics, len(failures), len(warnings))
            )
            all_failures += failures
            all_warnings += warnings

    for w in all_warnings:
        print("warning:", w)
    for f in all_failures:
        print("FAIL:", f)
    verdict = {
        "ok": not all_failures,
        "benches": names,
        "tolerance": args.tolerance,
        "failures": len(all_failures),
        "warnings": len(all_warnings),
        "updated": bool(args.update),
    }
    print("BENCH_GATE_RESULT " + json.dumps(verdict, sort_keys=True))
    return 0 if not all_failures else 1


if __name__ == "__main__":
    sys.exit(main())
