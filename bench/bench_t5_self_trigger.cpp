// R-T5 — The self-triggering hazard of perception-gated pruning.
//
// Three sources for the controller's criticality signal, same reversible
// runtime underneath:
//   gt-ttc          — independent ranging channel (radar-like TTC), the
//                     architecture this library assumes,
//   perception      — the (possibly pruned!) camera classifier gates its
//                     own pruning: a missed hazard never restores accuracy,
//   perception+floor— same, but the criticality never reports Low, capping
//                     how deep the loop may prune (mitigation).
//
// Violations are reported on BOTH bases: "sensed" (what each system could
// know — all three look clean) and "true" (ground truth — where the
// self-triggered loop's hazard becomes visible).  This is the argument for
// keeping the monitoring channel independent of the pruned network.
#include "bench_common.h"
#include "bench_report.h"
#include "core/reversible_pruner.h"

using namespace rrp;

namespace {

void run_suite(models::ProvisionedModel& pm, const sim::Scenario& scenario,
               const sim::RunConfig& base_cfg,
               bench::BenchReport& report) {
  const core::SafetyConfig certified = bench::standard_certified();
  TableFormatter table({"criticality source", "accuracy", "missed_crit_%",
                        "energy_mJ", "mean_level", "sensed_violations",
                        "TRUE_violations"});

  auto row = [&](const std::string& name, sim::CriticalitySource source) {
    core::ReversiblePruner provider = pm.make_pruner();
    core::CriticalityGreedyPolicy policy(certified, 6,
                                         provider.level_count());
    core::SafetyMonitor monitor(certified);
    core::RuntimeController ctl(policy, provider, &monitor);
    sim::RunConfig cfg = base_cfg;
    cfg.criticality_source = source;
    const core::RunSummary s = sim::run_scenario(scenario, ctl, cfg).summary;
    table.row({name, fmt(s.accuracy, 3),
               fmt(100.0 * s.missed_critical_rate, 1),
               fmt(s.total_energy_mj, 1), fmt(s.mean_level, 2),
               std::to_string(s.safety_violations),
               std::to_string(s.true_safety_violations)});
    const std::string base = scenario.name + "." + name + ".";
    report.set(base + "accuracy", s.accuracy, "fraction");
    report.set(base + "true_violations",
               static_cast<double>(s.true_safety_violations), "count");
    report.set(base + "energy_mj", s.total_energy_mj, "mJ");
  };

  row("gt-ttc", sim::CriticalitySource::GroundTruthTtc);
  row("perception", sim::CriticalitySource::Perception);
  row("perception+floor", sim::CriticalitySource::PerceptionFloor);

  std::cout << "\n--- suite: " << scenario.name << " ---\n";
  table.print(std::cout);
}

}  // namespace

int main() {
  bench::print_banner("R-T5",
                      "self-triggering hazard: who is allowed to gate the "
                      "pruning level?");
  models::ProvisionedModel pm = bench::provision(models::ModelKind::ResNetLite);
  const sim::RunConfig cfg = bench::standard_run_config();
  bench::BenchReport report("t5");
  report.config("mode", "full");
  report.config("model", "resnetlite");
  run_suite(pm, sim::make_cut_in(900, 71), cfg, report);
  run_suite(pm, sim::make_urban(900, 72), cfg, report);
  run_suite(pm, sim::make_intersection(900, 73), cfg, report);
  return report.write() ? 0 : 1;
}
