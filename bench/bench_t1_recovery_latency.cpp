// R-T1 — Recovery latency: how fast can full accuracy come BACK?
//
// The table the title is about.  From the deepest pruning level, recover
// the full network via:
//   reversible-masked  — copy the masked weights back from the resident
//                        golden store (this library's contribution),
//   compact-swap       — pointer swap in the precomputed compact cache,
//   reload-memory      — deserialize the full artifact from RAM,
//   reload-disk        — read + deserialize the artifact from disk,
//   retrain-1epoch     — the classic non-reversible answer: fine-tune the
//                        pruned network for one epoch (measured once).
// Medians over repetitions; bytes give the traffic each path rewrites.
#include <filesystem>

#include "bench_common.h"
#include "bench_report.h"
#include "core/reversible_pruner.h"
#include "nn/train.h"

using namespace rrp;

namespace {

struct PathResult {
  std::string path;
  double median_us = 0.0;
  std::int64_t bytes = 0;
  std::string note;
};

double median_over(int reps, const std::function<double()>& once) {
  std::vector<double> xs;
  for (int r = 0; r < reps; ++r) xs.push_back(once());
  return quantile(xs, 0.5);
}

void run(models::ModelKind kind, bench::BenchReport& report) {
  models::ProvisionedModel pm = bench::provision(kind);
  const int deepest = pm.levels.level_count() - 1;
  const nn::Shape in = models::zoo_input_shape();
  std::vector<PathResult> results;

  {  // reversible-masked
    core::ReversiblePruner rp = pm.make_pruner();
    std::int64_t bytes = 0;
    const double us = median_over(25, [&] {
      rp.set_level(deepest);
      const auto s = rp.set_level(0);
      bytes = s.bytes_written;
      return s.wall_us;
    });
    results.push_back({"reversible-masked", us, bytes, "O(diff) copy-back"});
  }
  {  // compact-swap
    core::CompactedLevelCache cache(pm.net, pm.levels, in, pm.bn_states);
    const double us = median_over(25, [&] {
      cache.set_level(deepest);
      return cache.set_level(0).wall_us;
    });
    results.push_back({"compact-swap", us, 0, "pointer swap"});
  }
  {  // reload-memory
    core::ReloadProvider rp(pm.net, pm.levels,
                            core::ReloadProvider::Source::Memory, "",
                            pm.bn_states);
    std::int64_t bytes = 0;
    const double us = median_over(25, [&] {
      rp.set_level(deepest);
      const auto s = rp.set_level(0);
      bytes = s.bytes_written;
      return s.wall_us;
    });
    results.push_back({"reload-memory", us, bytes, "full deserialize"});
  }
  {  // reload-disk
    const std::string dir =
        (std::filesystem::temp_directory_path() / "rrp_bench_t1").string();
    core::ReloadProvider rp(pm.net, pm.levels,
                            core::ReloadProvider::Source::Disk, dir,
                            pm.bn_states);
    std::int64_t bytes = 0;
    const double us = median_over(25, [&] {
      rp.set_level(deepest);
      const auto s = rp.set_level(0);
      bytes = s.bytes_written;
      return s.wall_us;
    });
    results.push_back({"reload-disk", us, bytes, "file read + deserialize"});
    std::filesystem::remove_all(dir);
  }
  {  // retrain one epoch from the pruned state (measured once — minutes-
     // scale on real stacks; even here it is orders of magnitude slower)
    nn::Network pruned = pm.net.clone();
    pm.levels.mask(deepest).apply(pruned);
    nn::SgdConfig cfg;
    cfg.epochs = 1;
    cfg.freeze_zeros = false;  // recovery means regrowing weights
    Rng rng(7);
    Timer t;
    nn::train_sgd(pruned, pm.train_data, cfg, rng);
    results.push_back({"retrain-1epoch", t.elapsed_us(),
                       pruned.param_count() * 4,
                       "1 epoch SGD (does NOT restore exact weights)"});
  }

  TableFormatter table({"recovery path", "median_us", "bytes_rewritten",
                        "vs reversible", "note"});
  const double base = results[0].median_us;
  for (const auto& r : results) {
    table.row({r.path, fmt(r.median_us, 1), std::to_string(r.bytes),
               fmt(r.median_us / base, 1) + "x", r.note});
    // Bytes rewritten are a pure function of the level ladder and gate-able;
    // median wall microseconds are context only (host dependent).
    const std::string key = std::string(models::model_kind_name(kind)) + "." +
                            r.path + ".";
    report.set(key + "bytes_rewritten", static_cast<double>(r.bytes),
               "bytes");
    report.set(key + "median_wall_us", r.median_us, "us");
  }
  std::cout << "\n[" << models::model_kind_name(kind)
            << "] recovery from level " << deepest << " to level 0\n";
  table.print(std::cout);
}

}  // namespace

int main() {
  bench::print_banner("R-T1", "recovery latency back to full accuracy");
  bench::BenchReport report("t1");
  report.config("mode", "full");
  for (models::ModelKind kind : models::all_model_kinds())
    run(kind, report);
  return report.write() ? 0 : 1;
}
