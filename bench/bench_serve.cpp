// R-S1 — fleet-scale serving: streams x frame-rate sweep.
//
// Drives the multi-stream serving engine (src/serve) over a grid of fleet
// sizes and per-frame deadlines against ONE shared compacted ladder, and
// reports per-point throughput, congestion-adjusted p99 frame latency
// (util/qsketch) and the overload actions (degrades/sheds) the SLO-driven
// admission layer took.
//
// Everything gated is *modeled*: per-frame times come from the platform
// model and the congestion factor is demand/budget, so BENCH_serve.json
// reproduces byte-exactly from the cached artifacts at any RRP_THREADS
// (DESIGN.md invariant 16).  The only measured numbers (wall seconds,
// frames/s) go through set_wall() and are never compared.
//
// --gate 1: reduced recipe (2 fleet sizes x 2 deadlines, 120 frames) for
// the bench-regression gate; the full recipe sweeps to 16 streams.
// --wall:   the saturation study (EXPERIMENTS.md R-S2): uncontended
//           streams in {1,2,4,8,16,32,64} at a fixed 12 ms deadline, wall
//           frames/s per point (machine-dependent, gate-exempt) — the
//           input to `rrp_cli report --bench` for the knee table.  The
//           measured wall channel (sim + util/wprof) is armed.
#include <cstring>
#include <vector>

#include "bench_common.h"
#include "bench_report.h"
#include "serve/obs.h"
#include "serve/serve_engine.h"
#include "util/wprof.h"

using namespace rrp;

namespace {

struct SweepPoint {
  int streams = 0;
  double deadline_ms = 0.0;
};

std::vector<serve::StreamSpec> fleet_specs(int streams, double deadline_ms,
                                           int frames) {
  // Round-robin over the four standard suites, earliest arrival = highest
  // priority, so overload sheds the newest stream first.
  static const char* kSuites[] = {"cut_in", "urban", "highway", "degraded"};
  std::vector<serve::StreamSpec> specs;
  specs.reserve(static_cast<std::size_t>(streams));
  for (int i = 0; i < streams; ++i) {
    serve::StreamSpec spec;
    spec.scenario = kSuites[i % 4];
    spec.frames = frames;
    spec.priority = streams - i;
    spec.deadline_ms = deadline_ms;
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace

int main(int argc, char** argv) {
  bool gate = false;
  bool wall = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gate") == 0 && i + 1 < argc)
      gate = argv[++i][0] == '1';
    else if (std::strcmp(argv[i], "--wall") == 0)
      wall = true;
  }

  bench::print_banner("R-S1", "multi-stream serving: streams x fps sweep");
  models::ProvisionedModel pm = bench::provision(models::ModelKind::LeNet);

  serve::ServeInputs inputs;
  inputs.net = &pm.net;
  inputs.levels = &pm.levels;
  inputs.bn_states = pm.bn_states;
  inputs.certified = bench::standard_certified();

  const int frames = gate ? 120 : 300;
  serve::ServeConfig cfg;
  cfg.seed = 20240807;
  // A fixed modeled host budget per tick: small fleets fit, large fleets
  // overflow it and the congestion factor + overload ladder engage.
  cfg.tick_budget_ms = wall ? 0.0 : 1.0;
  cfg.admission.max_streams = wall ? 64 : 16;
  cfg.measure_wall = wall;

  serve::ServeEngine engine(inputs, cfg);
  wprof::reset();
  wprof::set_enabled(wall);

  std::vector<SweepPoint> points;
  if (wall) {
    points = {{1, 12.0},  {2, 12.0},  {4, 12.0}, {8, 12.0},
              {16, 12.0}, {32, 12.0}, {64, 12.0}};
  } else if (gate) {
    // The last point's deadline sits below the congested frame time, so
    // the gate pins the overload ladder (degrades/floor), not just the
    // uncontended path.
    points = {{2, 12.0}, {2, 6.0}, {6, 12.0}, {6, 0.5}};
  } else {
    points = {{2, 12.0}, {4, 12.0}, {8, 12.0}, {16, 12.0},
              {2, 6.0},  {4, 6.0},  {8, 6.0},  {16, 6.0}};
  }

  bench::BenchReport report("serve");
  report.config("model", "lenet");
  report.config("mode", wall ? "wall" : (gate ? "gate" : "full"));
  report.config("frames", frames);
  report.config("budget_ms", wall ? "0" : "1");

  TableFormatter table({"streams", "fps", "frames", "miss%", "p99_ms",
                        "congestion", "degr", "shed", "wall_kfps"});
  double total_wall_s = 0.0;
  for (const SweepPoint& p : points) {
    Timer timer;
    const serve::ServeReport rep =
        engine.run(fleet_specs(p.streams, p.deadline_ms, frames));
    const double wall_s = timer.elapsed_s();
    total_wall_s += wall_s;
    const double fps = 1000.0 / p.deadline_ms;
    const double miss_rate =
        rep.frames > 0
            ? static_cast<double>(rep.deadline_misses) / rep.frames
            : 0.0;
    table.row({std::to_string(p.streams), fmt(fps, 0),
               std::to_string(rep.frames), fmt(100.0 * miss_rate, 1),
               fmt(rep.p99_frame_ms, 2), fmt(rep.mean_congestion, 2),
               std::to_string(rep.degrades), std::to_string(rep.sheds),
               fmt(rep.frames / wall_s / 1e3, 1)});

    const std::string id =
        "s" + std::to_string(p.streams) + "_fps" + fmt(fps, 0);
    report.set(id + ".frames", static_cast<double>(rep.frames), "count");
    report.set(id + ".deadline_miss_rate", miss_rate, "fraction");
    report.set(id + ".p99_frame_ms", rep.p99_frame_ms, "ms");
    report.set(id + ".mean_congestion", rep.mean_congestion, "x");
    report.set(id + ".degrades", static_cast<double>(rep.degrades), "count");
    report.set(id + ".sheds", static_cast<double>(rep.sheds), "count");
    report.set(id + ".final_floor", static_cast<double>(rep.final_floor),
               "level");
    report.set_wall("wall_" + id + ".frames_per_s", rep.frames / wall_s,
                    "frames/s");
  }
  table.print(std::cout);
  std::cout << "wall: " << fmt(total_wall_s, 2) << " s total\n";

  if (wall) {
    // The wprof spans are measured wall time: print for the record, never
    // exported to the gated metrics.
    std::cout << "wall profile (measured; excluded from every gate):\n";
    TableFormatter prof({"span", "count", "total_ms", "mean_us", "max_us"});
    for (const wprof::Stat& s : wprof::stats())
      prof.row({s.key, std::to_string(s.count), fmt(s.total_us / 1000.0, 3),
                fmt(s.mean_us(), 3), fmt(s.max_us, 3)});
    prof.print(std::cout);
    wprof::set_enabled(false);
  }

  // Pins the fleet-snapshot schema so an unversioned layout change fails
  // the gate instead of silently breaking downstream snapshot consumers.
  report.set("snapshot.schema_version",
             static_cast<double>(serve::kSnapshotSchemaVersion), "version");
  report.set_wall("wall_total_s", total_wall_s, "s");
  return report.write() ? 0 : 1;
}
