// R-T4 — Transition cost anatomy.
//
// Cost of every k -> k' transition for the masked reversible provider
// (elements touched == symmetric mask difference; wall-clock microseconds)
// against the reload baseline (always the full model).  Shows (a) the
// O(Δ) property — adjacent levels are cheapest, 0<->deepest is the
// worst case, (b) prune and restore cost the same (same diff set), and
// (c) reload cost is flat and orders of magnitude higher.
#include "bench_common.h"
#include "bench_report.h"
#include "core/reversible_pruner.h"

using namespace rrp;

namespace {

double median_transition_us(core::InferenceProvider& p, int from, int to,
                            int reps = 15) {
  std::vector<double> xs;
  for (int r = 0; r < reps; ++r) {
    p.set_level(from);
    xs.push_back(p.set_level(to).wall_us);
  }
  return quantile(xs, 0.5);
}

}  // namespace

int main() {
  bench::print_banner("R-T4", "transition cost for every level pair");
  models::ProvisionedModel pm = bench::provision(models::ModelKind::ResNetLite);
  core::ReversiblePruner masked = pm.make_pruner();
  core::ReloadProvider reload(pm.net, pm.levels,
                              core::ReloadProvider::Source::Memory, "",
                              pm.bn_states);
  const int levels = masked.level_count();

  bench::BenchReport report("t4");
  report.config("mode", "full");
  report.config("model", "resnetlite");

  TableFormatter table({"from", "to", "elements", "masked_us", "reload_us",
                        "speedup"});
  for (int from = 0; from < levels; ++from) {
    for (int to = 0; to < levels; ++to) {
      if (from == to) continue;
      masked.set_level(from);
      const auto s = masked.set_level(to);
      const double masked_us = median_transition_us(masked, from, to);
      const double reload_us = median_transition_us(reload, from, to);
      table.row({std::to_string(from), std::to_string(to),
                 std::to_string(s.elements_changed), fmt(masked_us, 1),
                 fmt(reload_us, 1), fmt(reload_us / std::max(masked_us, 0.01), 0) + "x"});
      // Elements touched are a pure function of the nested masks (the O(Δ)
      // property itself); wall times stay console-only.
      if (from < to)
        report.set("elements." + std::to_string(from) + "to" +
                       std::to_string(to),
                   static_cast<double>(s.elements_changed), "count");
    }
  }
  table.print(std::cout);

  // The symmetry check the table encodes: k->k' touches the same element
  // set as k'->k.
  masked.set_level(0);
  const auto up = masked.set_level(levels - 1);
  const auto down = masked.set_level(0);
  std::cout << "\nprune 0->" << levels - 1 << " touched "
            << up.elements_changed << " elements; restore touched "
            << down.elements_changed << " (identical set)\n";
  report.set("symmetry.prune_elements",
             static_cast<double>(up.elements_changed), "count");
  report.set("symmetry.restore_elements",
             static_cast<double>(down.elements_changed), "count");
  return report.write() ? 0 : 1;
}
