// R-F5 — Accuracy–energy Pareto front.
//
// Points: every static level (the classical design-time menu) and every
// adaptive policy (criticality-greedy at several hysteresis settings,
// hybrid with an energy budget, oracle) on the urban suite.  Adaptive
// reversible points dominate the static menu: more accuracy for the same
// energy, because they only spend accuracy where the scene is calm.
#include "bench_common.h"
#include "bench_report.h"
#include "core/reversible_pruner.h"

using namespace rrp;

namespace {

struct Point {
  std::string config;
  double accuracy;
  double crit_accuracy;
  double energy_mj;
  std::int64_t violations;
};

}  // namespace

int main() {
  bench::print_banner("R-F5", "accuracy-energy Pareto (urban suite)");
  models::ProvisionedModel pm = bench::provision(models::ModelKind::ResNetLite);
  const core::SafetyConfig certified = bench::standard_certified();
  sim::RunConfig cfg = bench::standard_run_config();
  const sim::Scenario scenario = sim::make_urban(900, 55);

  std::vector<Point> points;
  auto run_one = [&](const std::string& name,
                     core::InferenceProvider& provider, core::Policy& policy,
                     bool monitored, const sim::RunConfig& rc) {
    core::SafetyMonitor monitor(certified);
    core::RuntimeController ctl(policy, provider,
                                monitored ? &monitor : nullptr);
    const core::RunSummary s = sim::run_scenario(scenario, ctl, rc).summary;
    points.push_back({name, s.accuracy, s.critical_accuracy,
                      s.total_energy_mj, s.safety_violations});
  };

  // Static menu: one point per fixed level.
  for (int k = 0; k < pm.levels.level_count(); ++k) {
    core::StaticProvider p(pm.net, pm.levels, k, pm.bn_states);
    core::FixedPolicy policy(k);
    run_one("static-L" + std::to_string(k), p, policy, true, cfg);
  }
  // Adaptive reversible points.
  for (int hysteresis : {2, 6, 15}) {
    core::ReversiblePruner p = pm.make_pruner();
    core::CriticalityGreedyPolicy policy(certified, hysteresis,
                                         p.level_count());
    run_one("reversible-h" + std::to_string(hysteresis), p, policy, true,
            cfg);
  }
  // Hybrid under an energy budget.
  {
    core::ReversiblePruner p = pm.make_pruner();
    const sim::PlatformModel platform(cfg.platform);
    const core::LevelProfile prof = sim::profile_levels(
        p, platform, pm.eval_data, models::zoo_input_shape());
    core::HybridPolicy policy(certified, prof, 6);
    sim::RunConfig budgeted = cfg;
    budgeted.energy_budget_mj = 2000.0;
    run_one("hybrid-budget", p, policy, true, budgeted);
  }
  // Oracle upper bound.
  {
    core::ReversiblePruner p = pm.make_pruner();
    const auto trace = sim::criticality_trace(scenario, cfg.criticality);
    core::OraclePolicy policy(certified, trace, 15);
    run_one("oracle", p, policy, true, cfg);
  }

  bench::BenchReport report("f5");
  report.config("mode", "full");
  report.config("model", "resnetlite");
  int pareto_count = 0;

  TableFormatter table({"config", "accuracy", "crit_accuracy", "energy_mJ",
                        "violations", "pareto"});
  for (const auto& pt : points) {
    // A point is Pareto-optimal if nothing has both >= accuracy and
    // <= energy (strict in one).
    bool dominated = false;
    for (const auto& other : points) {
      if (&other == &pt) continue;
      const bool better_or_equal =
          other.accuracy >= pt.accuracy && other.energy_mj <= pt.energy_mj;
      const bool strictly_better = other.accuracy > pt.accuracy ||
                                   other.energy_mj < pt.energy_mj;
      if (better_or_equal && strictly_better) dominated = true;
    }
    table.row({pt.config, fmt(pt.accuracy, 3), fmt(pt.crit_accuracy, 3),
               fmt(pt.energy_mj, 1), std::to_string(pt.violations),
               dominated ? "" : "*"});
    if (!dominated) ++pareto_count;
    report.set(pt.config + ".accuracy", pt.accuracy, "fraction");
    report.set(pt.config + ".energy_mj", pt.energy_mj, "mJ");
    report.set(pt.config + ".violations", static_cast<double>(pt.violations),
               "count");
  }
  table.print(std::cout);
  std::cout << "(* = on the Pareto front)\n";
  report.set("pareto_points", static_cast<double>(pareto_count), "count");
  return report.write() ? 0 : 1;
}
