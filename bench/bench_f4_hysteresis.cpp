// R-F4 — Controller ablation: hysteresis width.
//
// Sweeping the re-prune hysteresis (frames of calm required before pruning
// harder) on the urban suite: small K chases the criticality signal and
// thrashes (many switches, switch energy, deadline pressure); large K
// parks at low levels and wastes energy.  Restores (safety direction) are
// always immediate, so violations stay at zero throughout — the asymmetry
// that makes the ablation safe to run.
#include <sstream>

#include "bench_common.h"
#include "bench_report.h"
#include "core/reversible_pruner.h"

using namespace rrp;

int main() {
  bench::print_banner("R-F4", "hysteresis ablation (urban suite)");
  models::ProvisionedModel pm = bench::provision(models::ModelKind::LeNet);
  const core::SafetyConfig certified = bench::standard_certified();
  const sim::RunConfig cfg = bench::standard_run_config();
  const sim::Scenario scenario = sim::make_urban(1200, 99);

  TableFormatter table({"hysteresis_frames", "switches", "mean_level",
                        "energy_mJ", "accuracy", "missed_crit_%",
                        "violations"});
  bench::BenchReport report("f4");
  report.config("mode", "full");
  report.config("model", "lenet");
  for (int k : {1, 2, 4, 6, 10, 15, 30}) {
    core::ReversiblePruner provider = pm.make_pruner();
    core::CriticalityGreedyPolicy policy(certified, k,
                                         provider.level_count());
    core::SafetyMonitor monitor(certified);
    core::RuntimeController ctl(policy, provider, &monitor);
    const core::RunSummary s =
        sim::run_scenario(scenario, ctl, cfg).summary;
    table.row({std::to_string(k), std::to_string(s.level_switches),
               fmt(s.mean_level, 2), fmt(s.total_energy_mj, 1),
               fmt(s.accuracy, 3), fmt(100.0 * s.missed_critical_rate, 1),
               std::to_string(s.safety_violations)});
    // ostringstream (not operator+ chains) sidesteps a GCC 12 -Wrestrict
    // false positive (PR105329) that trips the -Werror gate.
    std::ostringstream base;
    base << "h" << k << ".";
    report.set(base.str() + "switches",
               static_cast<double>(s.level_switches), "count");
    report.set(base.str() + "energy_mj", s.total_energy_mj, "mJ");
    report.set(base.str() + "accuracy", s.accuracy, "fraction");
  }
  table.print(std::cout);
  return report.write() ? 0 : 1;
}
