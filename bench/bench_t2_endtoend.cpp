// R-T2 — The headline end-to-end comparison across scenario suites.
//
// Systems compared on every suite (highway / urban / cut_in / degraded):
//   no-prune            — full network every frame (accuracy ceiling,
//                         energy worst case)
//   static-L2 / static-L4 — design-time pruning (energy win, cannot
//                         recover: safety violations in hazards)
//   reload+adaptive     — NON-reversible runtime pruning: adapts via
//                         artifact reload; pays the full-model reload cost
//                         on every hazard (deadline misses)
//   reversible (ours)   — masked O(Δ) switching with safety monitor
//   fastpath (ours)     — provisioned compacted ladder: O(1) level swap,
//                         physically smaller math on the frame path
//   oracle              — reversible with future knowledge (upper bound)
//
// Columns are the reconstructed table's: perception accuracy, missed
// critical detections, deadline misses, energy, switching behaviour.
#include <cctype>
#include <cstring>
#include <fstream>

#include "bench_common.h"
#include "bench_report.h"
#include "core/metrics.h"
#include "core/reversible_pruner.h"
#include "util/thread_pool.h"
#include "util/trace.h"

using namespace rrp;

namespace {

struct SystemRow {
  std::string system;
  core::RunSummary summary;
};

/// Averages summaries over seeds (counts become per-run means).
core::RunSummary average(const std::vector<core::RunSummary>& xs) {
  core::RunSummary m;
  const double n = static_cast<double>(xs.size());
  for (const auto& s : xs) {
    m.frames += s.frames;
    m.accuracy += s.accuracy / n;
    m.critical_accuracy += s.critical_accuracy / n;
    m.missed_critical_rate += s.missed_critical_rate / n;
    m.deadline_miss_rate += s.deadline_miss_rate / n;
    m.total_energy_mj += s.total_energy_mj / n;
    m.mean_level += s.mean_level / n;
    m.level_switches += s.level_switches;
    m.mean_switch_us += s.mean_switch_us / n;
    m.safety_violations += s.safety_violations;
    m.vetoes += s.vetoes;
  }
  m.level_switches /= static_cast<std::int64_t>(xs.size());
  m.safety_violations /= static_cast<std::int64_t>(xs.size());
  m.vetoes /= static_cast<std::int64_t>(xs.size());
  return m;
}

/// Metric-id-safe system key: "reversible (ours)" -> "reversible-ours".
std::string system_key(const std::string& name) {
  std::string key;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-') {
      key.push_back(c);
    } else if (!key.empty() && key.back() != '-') {
      key.push_back('-');
    }
  }
  while (!key.empty() && key.back() == '-') key.pop_back();
  return key;
}

void run_suite(models::ProvisionedModel& pm,
               const std::vector<sim::Scenario>& replicas,
               const sim::RunConfig& base_cfg, bench::BenchReport& report) {
  const core::SafetyConfig certified = bench::standard_certified();
  std::vector<SystemRow> rows;
  std::vector<sim::WallStats> walls;  // aligned with rows; empty frames
                                      // unless base_cfg.measure_wall

  // `make` rebuilds provider+policy fresh per replica (controllers are
  // stateful); results are averaged over scenario seeds.  Replica seeds fan
  // out over the thread pool: each replica runs against a private clone of
  // the co-trained network (ReversiblePruner mutates its network), and
  // summaries land in per-replica slots so the seed average is reduced in
  // replica order — identical results for any RRP_THREADS.
  auto run_system = [&](const std::string& name, auto&& make) {
    RRP_SPAN_VAR(sys_span, name.c_str());
    sys_span.add_items(static_cast<std::int64_t>(replicas.size()));
    std::vector<core::RunSummary> summaries(replicas.size());
    std::vector<sim::WallStats> rep_walls(replicas.size());
    parallel_for(
        0, static_cast<std::int64_t>(replicas.size()), 1,
        [&](std::int64_t r_begin, std::int64_t r_end) {
          for (std::int64_t rep = r_begin; rep < r_end; ++rep) {
            sim::RunConfig cfg = base_cfg;
            cfg.noise_seed = base_cfg.noise_seed + static_cast<std::uint64_t>(rep);
            nn::Network net = pm.net.clone();
            auto [provider, policy] =
                make(replicas[static_cast<std::size_t>(rep)], net);
            core::SafetyMonitor monitor(certified);
            core::RuntimeController ctl(*policy, *provider, &monitor);
            sim::RunResult res =
                sim::run_scenario(replicas[static_cast<std::size_t>(rep)], ctl,
                                  cfg);
            summaries[static_cast<std::size_t>(rep)] = res.summary;
            rep_walls[static_cast<std::size_t>(rep)] = std::move(res.wall);
          }
        });
    // Merge measured frames in replica order (deterministic layout; the
    // readings themselves are machine-dependent and stay gate-exempt).
    sim::WallStats merged;
    merged.enabled = base_cfg.measure_wall;
    for (auto& w : rep_walls)
      merged.frames.insert(merged.frames.end(), w.frames.begin(),
                           w.frames.end());
    walls.push_back(std::move(merged));
    rows.push_back({name, average(summaries)});
  };

  using ProviderPtr = std::unique_ptr<core::InferenceProvider>;
  using PolicyPtr = std::unique_ptr<core::Policy>;
  const int levels = pm.levels.level_count();

  // Per-replica ReversiblePruner over the replica's private clone, with the
  // shared switchable-BN states installed (mirrors pm.make_pruner()).
  auto make_pruner = [&](nn::Network& net) {
    auto p = std::make_unique<core::ReversiblePruner>(net, pm.levels);
    if (!pm.bn_states.empty()) p->set_bn_states(pm.bn_states);
    return p;
  };

  run_system("no-prune", [&](const sim::Scenario&, nn::Network& net) {
    ProviderPtr p = make_pruner(net);
    PolicyPtr pol = std::make_unique<core::FixedPolicy>(0);
    return std::make_pair(std::move(p), std::move(pol));
  });
  run_system("static-L2", [&](const sim::Scenario&, nn::Network& net) {
    ProviderPtr p = std::make_unique<core::StaticProvider>(
        net, pm.levels, 2, pm.bn_states);
    PolicyPtr pol = std::make_unique<core::CriticalityGreedyPolicy>(
        certified, 6, levels);
    return std::make_pair(std::move(p), std::move(pol));
  });
  run_system("static-L4", [&](const sim::Scenario&, nn::Network& net) {
    ProviderPtr p = std::make_unique<core::StaticProvider>(
        net, pm.levels, 4, pm.bn_states);
    PolicyPtr pol = std::make_unique<core::CriticalityGreedyPolicy>(
        certified, 6, levels);
    return std::make_pair(std::move(p), std::move(pol));
  });
  run_system("reload+adaptive", [&](const sim::Scenario&, nn::Network& net) {
    ProviderPtr p = std::make_unique<core::ReloadProvider>(
        net, pm.levels, core::ReloadProvider::Source::Memory, "",
        pm.bn_states);
    PolicyPtr pol = std::make_unique<core::CriticalityGreedyPolicy>(
        certified, 6, levels);
    return std::make_pair(std::move(p), std::move(pol));
  });
  run_system("reversible (ours)", [&](const sim::Scenario&, nn::Network& net) {
    ProviderPtr p = make_pruner(net);
    PolicyPtr pol = std::make_unique<core::CriticalityGreedyPolicy>(
        certified, 6, levels);
    return std::make_pair(std::move(p), std::move(pol));
  });
  run_system("fastpath (ours)", [&](const sim::Scenario&, nn::Network& net) {
    // Provisioned compacted ladder: O(1) swap, physically smaller math on
    // the frame path, masked golden arm riding along for scrub/restore.
    ProviderPtr p = std::make_unique<core::CompactedLadderProvider>(
        net, pm.levels, sim::input_shape(base_cfg.vision), pm.bn_states);
    PolicyPtr pol = std::make_unique<core::CriticalityGreedyPolicy>(
        certified, 6, levels);
    return std::make_pair(std::move(p), std::move(pol));
  });
  run_system("oracle", [&](const sim::Scenario& sc, nn::Network& net) {
    ProviderPtr p = make_pruner(net);
    PolicyPtr pol = std::make_unique<core::OraclePolicy>(
        certified, sim::criticality_trace(sc, base_cfg.criticality), 15);
    return std::make_pair(std::move(p), std::move(pol));
  });

  TableFormatter table({"system", "accuracy", "crit_acc", "missed_crit_%",
                        "deadline_miss_%", "energy_mJ", "mean_level",
                        "switches", "mean_switch_us", "violations"});
  for (const auto& r : rows) {
    const core::RunSummary& s = r.summary;
    table.row({r.system, fmt(s.accuracy, 3), fmt(s.critical_accuracy, 3),
               fmt(100.0 * s.missed_critical_rate, 1),
               fmt(100.0 * s.deadline_miss_rate, 1),
               fmt(s.total_energy_mj, 1), fmt(s.mean_level, 2),
               std::to_string(s.level_switches), fmt(s.mean_switch_us, 1),
               std::to_string(s.safety_violations)});
  }
  std::cout << "\n--- suite: " << replicas.front().name << " ("
            << replicas.front().frame_count() << " frames x "
            << replicas.size() << " seeds, averaged) ---\n";
  table.print(std::cout);

  // Machine-readable mirror of the table — everything is modeled
  // (accuracy, deadline slack, energy from the platform model), so the
  // values reproduce exactly and the regression gate can band them.
  const std::string suite = replicas.front().name;
  for (const auto& r : rows) {
    const core::RunSummary& s = r.summary;
    const std::string base = suite + "." + system_key(r.system) + ".";
    report.set(base + "accuracy", s.accuracy, "fraction");
    report.set(base + "missed_critical_rate", s.missed_critical_rate,
               "fraction");
    report.set(base + "deadline_miss_rate", s.deadline_miss_rate, "fraction");
    report.set(base + "energy_mj", s.total_energy_mj, "mJ");
    report.set(base + "mean_switch_us", s.mean_switch_us, "us");
    report.set(base + "violations", static_cast<double>(s.safety_violations),
               "count");
  }

  // Measured wall-clock mirror (gate-exempt): mean per-frame inference
  // wall time per system, plus the per-level breakdown where a level
  // actually executed frames.
  if (base_cfg.measure_wall) {
    for (std::size_t ri = 0; ri < rows.size(); ++ri) {
      const std::string base = suite + "." + system_key(rows[ri].system) + ".";
      report.set_wall(base + "wall_infer_mean_us", walls[ri].mean_infer_us(),
                      "us");
      for (int k = 0; k < levels; ++k) {
        const double us = walls[ri].mean_infer_us(k);
        if (us > 0.0)
          report.set_wall(base + "wall_infer_us.l" + std::to_string(k), us,
                          "us");
      }
    }
    const auto mean_of = [&](const std::string& name) -> double {
      for (std::size_t ri = 0; ri < rows.size(); ++ri)
        if (rows[ri].system == name) return walls[ri].mean_infer_us();
      return 0.0;
    };
    const double fast = mean_of("fastpath (ours)");
    const double noprune = mean_of("no-prune");
    const double masked = mean_of("reversible (ours)");
    if (fast > 0.0 && noprune > 0.0 && masked > 0.0) {
      report.set_wall(suite + ".wall_speedup_fastpath_vs_noprune",
                      noprune / fast, "x");
      report.set_wall(suite + ".wall_speedup_fastpath_vs_masked",
                      masked / fast, "x");
      std::cout << "measured wall: fastpath " << fmt(fast, 1)
                << " us/frame vs no-prune " << fmt(noprune, 1) << " ("
                << fmt(noprune / fast, 2) << "x) vs reversible-masked "
                << fmt(masked, 1) << " (" << fmt(masked / fast, 2) << "x)\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  // --trace out.json: arm the span tracer for the whole bench and dump a
  // Chrome trace_event file at exit.  Replica runs execute inside pool
  // chunks, so their spans are suppressed (deterministic); the trace shows
  // the top-level fan-out structure (pool.parallel_for per system).
  //
  // --gate 1: reduced recipe (cut_in suite only, 300 frames, 1 seed) for
  // the bench-regression gate — small enough to run on every check.sh
  // invocation, and marked mode=gate in BENCH_t2.json so baselines never
  // get compared against full-recipe runs.
  //
  // --wall 1: the gate recipe with per-frame MEASURED inference wall-clock
  // on (RunConfig::measure_wall).  One seed so replicas never contend for
  // cores; measured numbers land under the gate-exempt wall_metrics key.
  std::string trace_path;
  bool gate = false;
  bool wall = false;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--trace") == 0) trace_path = argv[i + 1];
    if (std::strcmp(argv[i], "--gate") == 0) gate = argv[i + 1][0] == '1';
    if (std::strcmp(argv[i], "--wall") == 0) wall = argv[i + 1][0] == '1';
  }

  bench::print_banner("R-T2", "end-to-end safety/efficiency across suites");
  models::ProvisionedModel pm = bench::provision(models::ModelKind::ResNetLite);
  std::cout << "model: resnetlite, per-level accuracy:";
  for (double a : pm.level_accuracy) std::cout << " " << fmt(a, 3);
  std::cout << "\n";

  if (!trace_path.empty()) {
    core::reset_observability();
    trace::set_enabled(true);
  }

  const bool reduced = gate || wall;
  const int frames = reduced ? 300 : 900;
  const int seeds = reduced ? 1 : 3;
  const int suites = reduced ? 1 : 4;  // reduced: cut_in only (index 2)
  bench::BenchReport report("t2");
  report.config("model", "resnetlite");
  report.config("mode", gate ? "gate" : (wall ? "wall" : "full"));
  report.config("frames", frames);
  report.config("seeds", seeds);

  sim::RunConfig cfg = bench::standard_run_config();
  cfg.measure_wall = wall;
  for (int suite = 0; suite < suites; ++suite) {
    const std::size_t index = reduced ? 2u : static_cast<std::size_t>(suite);
    std::vector<sim::Scenario> replicas;
    for (int rep = 0; rep < seeds; ++rep)
      replicas.push_back(
          sim::standard_suites(frames, 20240325 + 1000ull * rep)[index]);
    run_suite(pm, replicas, cfg, report);
  }
  if (!report.write()) return 1;

  if (!trace_path.empty()) {
    trace::set_enabled(false);
    std::ofstream f(trace_path);
    if (!f) {
      std::cerr << "cannot write " << trace_path << "\n";
      return 1;
    }
    trace::write_chrome_trace(f);
    std::cout << "\nchrome trace (" << trace::spans().size()
              << " spans) written to " << trace_path << "\n";
  }
  return 0;
}
