// R-C1 — Monte-Carlo robustness campaign: streaming tail statistics.
//
// Fans scenario x policy x fault-plan cells (sim/campaign.h) over the
// thread pool and reports the campaign's tail metrics: the p99/p99.9
// missed-critical rate across cells, worst-case fault detection latency
// and recovery time, and the deadline-slack distribution — the numbers
// the statistical safety case (DESIGN.md) argues from.
//
// Everything gated is *modeled* (platform-model latency, modeled repair
// cost), so BENCH_campaign.json reproduces byte-exactly from the cached
// artifacts at any RRP_THREADS; the only measured numbers (campaign wall
// time, cells/s) go through set_wall() and are never compared.
//
// --gate 1: reduced recipe (2 scenarios x 2 policies x 3 replicates,
// 150 frames) for the bench-regression gate; the full recipe sweeps the
// generated scenario families at 300 frames.
#include <cstring>

#include "bench_common.h"
#include "bench_report.h"
#include "sim/campaign.h"

using namespace rrp;

int main(int argc, char** argv) {
  bool gate = false;
  for (int i = 1; i + 1 < argc; i += 2)
    if (std::strcmp(argv[i], "--gate") == 0) gate = argv[i + 1][0] == '1';

  bench::print_banner("R-C1",
                      "Monte-Carlo robustness campaign tail statistics");
  models::ProvisionedModel pm = bench::provision(models::ModelKind::LeNet);

  sim::CampaignSpec spec;
  spec.seed = 20240325;
  spec.frames = gate ? 150 : 300;
  spec.replicates = gate ? 3 : 16;
  spec.faults_per_cell = 4;
  spec.worst_cells = 3;
  const std::vector<std::string> families =
      gate ? std::vector<std::string>{"cut_in", "fog_ramp"}
           : std::vector<std::string>{"cut_in", "swarm_cut_in", "rush_hour",
                                      "fog_ramp"};
  for (const std::string& name : families)
    spec.scenarios.push_back(sim::builtin_scenario_spec(name));
  spec.policies = {"greedy", "fixed2"};

  sim::CampaignInputs inputs;
  inputs.net = &pm.net;
  inputs.levels = &pm.levels;
  inputs.bn_states = pm.bn_states;
  inputs.certified = bench::standard_certified();

  const std::int64_t cells = sim::campaign_cell_count(spec);
  Timer timer;
  const sim::CampaignAggregate agg = sim::run_campaign(spec, inputs);
  const double wall_s = timer.elapsed_s();

  sim::write_campaign_report(spec, agg, std::cout);
  std::cout << "\nwall: " << fmt(wall_s, 2) << " s ("
            << fmt(static_cast<double>(cells) / wall_s, 1) << " cells/s)\n";

  bench::BenchReport report("campaign");
  report.config("model", "lenet");
  report.config("mode", gate ? "gate" : "full");
  report.config("frames", spec.frames);
  report.config("cells", cells);

  const auto count = [&](const std::string& id, std::int64_t v) {
    report.set(id, static_cast<double>(v), "count");
  };
  count("cells", agg.cells);
  count("critical_frames", agg.critical_frames);
  count("missed_critical_frames", agg.missed_critical_frames);
  count("deadline_misses", agg.deadline_misses);
  count("true_safety_violations", agg.true_safety_violations);
  count("watchdog_degrades", agg.watchdog_degrades);
  count("weight_faults.injected", agg.weight_faults_injected);
  count("weight_faults.detected", agg.weight_faults_detected);
  count("weight_faults.healed", agg.weight_faults_healed);

  report.set("missed_critical_rate.p99",
             agg.missed_critical_rate.quantile(0.99), "fraction");
  report.set("missed_critical_rate.p999",
             agg.missed_critical_rate.quantile(0.999), "fraction");
  report.set("missed_critical_rate.max", agg.missed_critical_rate.max(),
             "fraction");
  report.set("detect_latency_frames.p99",
             agg.detect_latency_frames.quantile(0.99), "frames");
  report.set("detect_latency_frames.max", agg.detect_latency_frames.max(),
             "frames");
  report.set("recovery_ms.p99", agg.recovery_ms.quantile(0.99), "ms");
  report.set("recovery_ms.max", agg.recovery_ms.max(), "ms");
  report.set("deadline_slack_ms.p50", agg.deadline_slack_ms.quantile(0.5),
             "ms");
  report.set("deadline_slack_ms.min", agg.deadline_slack_ms.min(), "ms");
  if (!agg.worst.empty()) {
    count("worst.missed_critical", agg.worst[0].missed_critical);
    report.set("worst.min_slack_ms", agg.worst[0].min_slack_ms, "ms");
  }

  report.set_wall("wall_campaign_s", wall_s, "s");
  report.set_wall("wall_cells_per_s", static_cast<double>(cells) / wall_s,
                  "cells/s");
  return report.write() ? 0 : 1;
}
