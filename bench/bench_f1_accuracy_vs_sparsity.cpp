// R-F1 — Accuracy vs pruning ratio, structured vs unstructured, per model.
//
// Reproduces the figure motivating the level ladder: accuracy degrades
// gracefully under one-shot unstructured pruning, faster under structured
// pruning, and the co-trained shared-weight ladder (the deployed artifact)
// recovers most of the structured gap.
#include "bench_common.h"
#include "bench_report.h"
#include "core/reversible_pruner.h"

using namespace rrp;

namespace {

void sweep(models::ModelKind kind, bench::BenchReport& report) {
  models::ProvisionedModel pm = bench::provision(kind);

  // One-shot masks on the CO-TRAINED weights at a fine ratio grid.
  const std::vector<double> grid{0.0, 0.1, 0.2, 0.3, 0.4,
                                 0.5, 0.6, 0.7, 0.8, 0.9};
  TableFormatter table({"ratio", "unstructured_acc", "structured_acc",
                        "cotrained_ladder_acc", "ladder_sparsity"});

  auto ulib = prune::PruneLevelLibrary::build_unstructured(pm.net, grid);
  auto slib = prune::PruneLevelLibrary::build_structured(
      pm.net, grid, models::zoo_input_shape(), prune::ImportanceMetric::L1,
      /*min_channels=*/1);

  core::ReversiblePruner ladder = pm.make_pruner();
  const auto ladder_ratios = [&] {
    std::vector<double> r;
    for (int k = 0; k < pm.levels.level_count(); ++k)
      r.push_back(pm.levels.ratio(k));
    return r;
  }();

  for (std::size_t i = 0; i < grid.size(); ++i) {
    const int k = static_cast<int>(i);
    nn::Network probe_u = pm.net.clone();
    ulib.mask(k).apply(probe_u);
    const double acc_u = nn::evaluate_accuracy(probe_u, pm.eval_data);

    nn::Network probe_s = pm.net.clone();
    slib.mask(k).apply(probe_s);
    const double acc_s = nn::evaluate_accuracy(probe_s, pm.eval_data);

    // Ladder entry: the nearest certified level at or below this ratio.
    std::string ladder_acc = "-", ladder_sparsity = "-";
    for (int l = 0; l < pm.levels.level_count(); ++l) {
      if (std::abs(ladder_ratios[static_cast<std::size_t>(l)] - grid[i]) <
          1e-9) {
        ladder_acc = fmt(pm.level_accuracy[static_cast<std::size_t>(l)], 3);
        ladder_sparsity = fmt(pm.levels.mask(l).sparsity(pm.net), 3);
      }
    }

    table.row({fmt(grid[i], 2), fmt(acc_u, 3), fmt(acc_s, 3), ladder_acc,
               ladder_sparsity});

    if (std::abs(grid[i] - 0.5) < 1e-9) {
      const std::string base = std::string(models::model_kind_name(kind));
      report.set(base + ".unstructured_acc@0.5", acc_u, "fraction");
      report.set(base + ".structured_acc@0.5", acc_s, "fraction");
    }
  }

  report.set(std::string(models::model_kind_name(kind)) + ".dense_acc",
             pm.level_accuracy[0], "fraction");

  std::cout << "\n[" << models::model_kind_name(kind)
            << "] dense eval accuracy = " << fmt(pm.level_accuracy[0], 3)
            << "\n";
  table.print(std::cout);
}

}  // namespace

int main() {
  bench::print_banner("R-F1",
                      "accuracy vs pruning ratio (structured / unstructured / "
                      "co-trained ladder)");
  bench::BenchReport report("f1");
  report.config("mode", "full");
  for (models::ModelKind kind : models::all_model_kinds())
    sweep(kind, report);
  return report.write() ? 0 : 1;
}
