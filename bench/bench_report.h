// bench_report.h — machine-readable results for every bench binary.
//
// Each bench_* binary builds one BenchReport, fills it with the headline
// numbers it already prints as tables, and writes BENCH_<name>.json at
// exit.  The JSON is schema-versioned and byte-deterministic (config and
// metrics are emitted in sorted order, numbers in fixed-precision form),
// so tools/bench_gate.py can diff a fresh run against the committed
// baselines in bench/baselines/ with a relative tolerance band.
//
// Metrics fed to the regression gate must come from the *modeled* side of
// the house (platform-model microseconds, touched bytes, accuracies) —
// those are pure functions of the cached artifacts and reproduce exactly.
// Measured wall-clock numbers go through set_wall() instead: they are
// emitted under a separate "wall_metrics" key that bench_gate.py prints
// informationally but NEVER compares — machine-dependent readings must not
// be able to fail the deterministic gate.
#pragma once

#include <map>
#include <ostream>
#include <string>

namespace rrp::bench {

/// Current layout of BENCH_<name>.json; bump when fields change shape.
/// v2: added the "wall_metrics" array (measured wall-clock, gate-exempt).
inline constexpr int kBenchReportSchemaVersion = 2;

class BenchReport {
 public:
  /// `name` becomes the "name" field and the BENCH_<name>.json filename.
  explicit BenchReport(std::string name);

  /// Records a config key (model, mode, frames...).  Reports are only
  /// comparable when their configs match, and bench_gate.py enforces it.
  void config(const std::string& key, const std::string& value);
  void config(const std::string& key, std::int64_t value);

  /// Records one metric.  Re-setting an id overwrites it.
  void set(const std::string& id, double value, const std::string& unit);

  /// Records one MEASURED wall-clock metric.  These serialize under
  /// "wall_metrics", which the regression gate treats as informational:
  /// they can never fail a comparison and baselines need not contain them.
  void set_wall(const std::string& id, double value, const std::string& unit);

  /// Deterministic JSON: sorted config, sorted metrics, fixed-precision
  /// numbers — the same inputs always serialize to the same bytes.
  void write_json(std::ostream& out) const;

  /// Output path: $RRP_BENCH_OUT/BENCH_<name>.json when the environment
  /// variable is set (and non-empty), else ./BENCH_<name>.json.
  std::string path() const;

  /// Writes path(); never throws.  On failure prints a diagnostic to the
  /// stream of the caller's choice via the return value contract: false
  /// means the file was not (fully) written.
  bool write() const;

  const std::string& name() const { return name_; }

 private:
  struct Metric {
    double value = 0.0;
    std::string unit;
  };

  std::string name_;
  std::map<std::string, std::string> config_;  // sorted -> deterministic
  std::map<std::string, Metric> metrics_;      // sorted -> deterministic
  std::map<std::string, Metric> wall_metrics_; // measured; gate-exempt
};

}  // namespace rrp::bench
