#include "bench_report.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "util/csv.h"

namespace rrp::bench {

namespace {

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

void BenchReport::config(const std::string& key, const std::string& value) {
  config_[key] = value;
}

void BenchReport::config(const std::string& key, std::int64_t value) {
  config_[key] = std::to_string(value);
}

void BenchReport::set(const std::string& id, double value,
                      const std::string& unit) {
  metrics_[id] = Metric{value, unit};
}

void BenchReport::set_wall(const std::string& id, double value,
                           const std::string& unit) {
  wall_metrics_[id] = Metric{value, unit};
}

void BenchReport::write_json(std::ostream& out) const {
  out << "{\n";
  out << "  \"schema_version\": " << kBenchReportSchemaVersion << ",\n";
  out << "  \"name\": \"" << json_escape(name_) << "\",\n";
  out << "  \"config\": {";
  bool first = true;
  for (const auto& [k, v] : config_) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(k) << "\": \""
        << json_escape(v) << "\"";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n";
  out << "  \"metrics\": [";
  first = true;
  for (const auto& [id, m] : metrics_) {
    out << (first ? "\n" : ",\n") << "    {\"id\": \"" << json_escape(id)
        << "\", \"value\": " << CsvWriter::num(m.value, 6)
        << ", \"unit\": \"" << json_escape(m.unit) << "\"}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "],\n";
  // Measured wall-clock: same shape as "metrics" but a separate key, so
  // the regression gate can print it without ever comparing it.
  out << "  \"wall_metrics\": [";
  first = true;
  for (const auto& [id, m] : wall_metrics_) {
    out << (first ? "\n" : ",\n") << "    {\"id\": \"" << json_escape(id)
        << "\", \"value\": " << CsvWriter::num(m.value, 6)
        << ", \"unit\": \"" << json_escape(m.unit) << "\"}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "]\n";
  out << "}\n";
}

std::string BenchReport::path() const {
  const char* dir = std::getenv("RRP_BENCH_OUT");
  const std::string base = "BENCH_" + name_ + ".json";
  if (dir != nullptr && *dir != '\0')
    return std::string(dir) + "/" + base;
  return base;
}

bool BenchReport::write() const {
  const std::string p = path();
  errno = 0;
  std::ofstream f(p, std::ios::trunc);
  if (!f) {
    std::cerr << "bench_report: cannot open '" << p << "' for writing ("
              << (errno != 0 ? std::strerror(errno) : "unknown error")
              << ")\n";
    return false;
  }
  write_json(f);
  f.flush();
  if (!f) {
    std::cerr << "bench_report: write failed for '" << p << "'\n";
    return false;
  }
  std::cout << "bench report written to " << p << "\n";
  return true;
}

}  // namespace rrp::bench
