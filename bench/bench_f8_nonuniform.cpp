// R-F8 — Uniform vs sensitivity-guided non-uniform ladders.
//
// The per-layer sensitivity profile (R-F6) feeds
// PruneLevelLibrary::build_structured_nonuniform: fragile layers are
// pruned at a throttled ratio, robust layers at the full level ratio.
// Comparison at (approximately) matched effective MACs: the non-uniform
// ladder should retain more accuracy for the same compute.
#include "bench_common.h"
#include "bench_report.h"
#include "core/reversible_pruner.h"
#include "prune/sensitivity.h"

using namespace rrp;

namespace {

void run(models::ModelKind kind, bench::BenchReport& report) {
  models::ProvisionedModel pm = bench::provision(kind);
  const nn::Shape in = models::zoo_input_shape();
  const std::vector<double> ratios{0.0, 0.3, 0.5, 0.7, 0.85};

  // Sensitivity sweep on the co-trained weights -> per-layer scales.
  prune::SensitivityOptions opt;
  opt.ratios = {0.0, 0.25, 0.5, 0.75};
  const auto points =
      prune::layer_sensitivity(pm.net, pm.eval_data, in, opt);
  const auto scales = prune::sensitivity_scales(points, /*max_drop=*/0.05);

  auto uniform = prune::PruneLevelLibrary::build_structured(
      pm.net, ratios, in, prune::ImportanceMetric::L1, 2);
  auto nonuniform = prune::PruneLevelLibrary::build_structured_nonuniform(
      pm.net, ratios, in, scales, prune::ImportanceMetric::L1, 2);

  auto evaluate = [&](prune::PruneLevelLibrary& lib, int k,
                      double* acc, std::int64_t* macs) {
    core::ReversiblePruner rp(pm.net, lib);
    rp.set_level(k);
    *acc = nn::evaluate_accuracy(pm.net, pm.eval_data);
    *macs = rp.active_macs(in);
    rp.set_level(0);
  };

  TableFormatter table({"level", "uni_MMACs", "uni_acc", "nonuni_MMACs",
                        "nonuni_acc", "acc_delta"});
  for (int k = 0; k < uniform.level_count(); ++k) {
    double ua, na;
    std::int64_t um, nm;
    evaluate(uniform, k, &ua, &um);
    evaluate(nonuniform, k, &na, &nm);
    table.row({std::to_string(k), fmt(um / 1e6, 3), fmt(ua, 3),
               fmt(nm / 1e6, 3), fmt(na, 3), fmt(na - ua, 3)});
    if (k == uniform.level_count() - 1) {
      const std::string base = std::string(models::model_kind_name(kind)) +
                               ".deepest.";
      report.set(base + "uniform_acc", ua, "fraction");
      report.set(base + "nonuniform_acc", na, "fraction");
      report.set(base + "uniform_mmacs", um / 1e6, "MMAC");
      report.set(base + "nonuniform_mmacs", nm / 1e6, "MMAC");
    }
  }
  std::cout << "\n[" << models::model_kind_name(kind)
            << "] per-layer scales:";
  for (const auto& [layer, s] : scales)
    std::cout << " " << layer << "=" << fmt(s, 2);
  std::cout << "\n";
  table.print(std::cout);
}

}  // namespace

int main() {
  bench::print_banner("R-F8",
                      "uniform vs sensitivity-guided non-uniform ladders "
                      "(one-shot)");
  bench::BenchReport report("f8");
  report.config("mode", "full");
  for (models::ModelKind kind :
       {models::ModelKind::LeNet, models::ModelKind::DetNet})
    run(kind, report);
  return report.write() ? 0 : 1;
}
