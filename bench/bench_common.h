// bench_common.h — shared setup for the experiment-reproduction binaries.
//
// Every bench binary regenerates one reconstructed table/figure (see
// DESIGN.md §3 and EXPERIMENTS.md).  Models are provisioned through the
// disk cache (cache_*.rrpn in $RRP_CACHE_DIR, default "cache"), so the
// first ever run trains them (~4 min total) and every later run starts in
// milliseconds.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/baselines.h"
#include "models/trained_cache.h"
#include "sim/runner.h"
#include "sim/suites.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/timer.h"

namespace rrp::bench {

inline std::string cache_dir() {
  const char* dir = std::getenv("RRP_CACHE_DIR");
  return dir != nullptr && *dir != '\0' ? dir : "cache";
}

/// The standard experiment recipe (matches the shipped cache files).
inline models::TrainRecipe standard_train_recipe() {
  return models::TrainRecipe{};  // defaults: 10 epochs, 4k samples
}

inline models::LevelRecipe standard_level_recipe() {
  return models::LevelRecipe{};  // {0, .3, .5, .7, .85}, structured, co 5
}

inline models::ProvisionedModel provision(models::ModelKind kind) {
  return models::get_provisioned(kind, standard_train_recipe(),
                                 standard_level_recipe(), cache_dir());
}

/// The certified safety ladder used across experiments: Critical -> full
/// network, High -> <= level 1, Medium -> <= level 3, Low -> anything.
inline core::SafetyConfig standard_certified() {
  core::SafetyConfig c;
  c.max_level_for = {4, 3, 1, 0};
  return c;
}

/// Platform + loop configuration shared by closed-loop experiments.
/// The 12 ms deadline fits the largest model (detnet, ~10 ms at level 0)
/// so NoPrune remains a meaningful baseline.
inline sim::RunConfig standard_run_config() {
  sim::RunConfig cfg;
  cfg.deadline_ms = 12.0;
  cfg.noise_seed = 424242;
  return cfg;
}

inline void print_banner(const std::string& experiment,
                         const std::string& description) {
  std::cout << "\n=== " << experiment << " — " << description << " ===\n";
}

}  // namespace rrp::bench
