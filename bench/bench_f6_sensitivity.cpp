// R-F6 — Per-layer pruning sensitivity.
//
// Prunes one layer at a time and measures accuracy: the profile that
// justifies (a) which layers the planner may prune and (b) non-uniform
// per-layer ratios.  Early conv layers and the classifier head are the
// sensitive ones; wide mid layers absorb pruning almost for free.
#include <cmath>
#include <set>

#include "bench_common.h"
#include "bench_report.h"
#include "prune/sensitivity.h"

using namespace rrp;

namespace {

void run(models::ModelKind kind, bench::BenchReport& report) {
  models::ProvisionedModel pm = bench::provision(kind);
  prune::SensitivityOptions opt;
  opt.ratios = {0.0, 0.25, 0.5, 0.75, 0.9};
  const auto points = prune::layer_sensitivity(
      pm.net, pm.eval_data, models::zoo_input_shape(), opt);

  // Aggregate (deterministic) profile: mean accuracy across layers at the
  // deepest probed ratio, plus how many prunable layers were profiled.
  double deep_acc_sum = 0.0;
  int deep_count = 0;
  std::set<std::string> layers;
  for (const auto& p : points) {
    layers.insert(p.layer);
    if (std::abs(p.ratio - opt.ratios.back()) < 1e-9) {
      deep_acc_sum += p.accuracy;
      ++deep_count;
    }
  }
  const std::string base = std::string(models::model_kind_name(kind)) + ".";
  report.set(base + "layers", static_cast<double>(layers.size()), "count");
  if (deep_count > 0)
    report.set(base + "mean_acc@" + fmt(opt.ratios.back(), 2),
               deep_acc_sum / deep_count, "fraction");

  // Pivot: one row per layer, one column per ratio.
  std::vector<std::string> header{"layer"};
  for (double r : opt.ratios) header.push_back("acc@" + fmt(r, 2));
  TableFormatter table(header);

  std::string current;
  std::vector<std::string> row;
  for (const auto& p : points) {
    if (p.layer != current) {
      if (!row.empty()) table.row(row);
      current = p.layer;
      row = {current};
    }
    row.push_back(fmt(p.accuracy, 3));
  }
  if (!row.empty()) table.row(row);

  std::cout << "\n[" << models::model_kind_name(kind) << "]\n";
  table.print(std::cout);
}

}  // namespace

int main() {
  bench::print_banner("R-F6", "per-layer structured pruning sensitivity");
  bench::BenchReport report("f6");
  report.config("mode", "full");
  for (models::ModelKind kind : models::all_model_kinds())
    run(kind, report);
  return report.write() ? 0 : 1;
}
