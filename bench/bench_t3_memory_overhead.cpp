// R-T3 — Memory overhead of reversibility.
//
// What does "keep the past resident" cost?  Per model: the live network,
// the golden weight store, all nested masks, the per-level BatchNorm
// statistics (switchable BN), and — for comparison — the compact-cache
// mode (all levels resident) and the reload baseline's artifacts.
#include "bench_common.h"
#include "bench_report.h"
#include "core/reversible_pruner.h"

using namespace rrp;

namespace {

std::string kb(std::int64_t bytes) {
  return fmt(static_cast<double>(bytes) / 1024.0, 1);
}

void report_model(models::ModelKind kind, bench::BenchReport& out) {
  models::ProvisionedModel pm = bench::provision(kind);
  const nn::Shape in = models::zoo_input_shape();

  const std::int64_t model_bytes = pm.net.param_count() * 4;
  const std::int64_t store_bytes = model_bytes;  // golden copy
  const std::int64_t mask_bytes = pm.levels.storage_bytes();
  std::int64_t bn_bytes = 0;
  for (const auto& s : pm.bn_states) bn_bytes += s.total_bytes();

  core::ReversiblePruner masked = pm.make_pruner();
  core::CompactedLevelCache compact(pm.net, pm.levels, in, pm.bn_states);
  core::ReloadProvider reload(pm.net, pm.levels,
                              core::ReloadProvider::Source::Memory);

  std::int64_t artifact_bytes = 0;
  for (int k = 0; k < reload.level_count(); ++k)
    artifact_bytes += reload.artifact_bytes(k);

  TableFormatter table({"component", "KiB", "x model size"});
  auto row = [&](const std::string& name, std::int64_t bytes) {
    table.row({name, kb(bytes),
               fmt(static_cast<double>(bytes) / model_bytes, 2)});
  };
  row("model weights (live)", model_bytes);
  row("golden weight store", store_bytes);
  row("nested masks (all levels)", mask_bytes);
  row("switchable BN states", bn_bytes);
  row("TOTAL reversible-masked", masked.resident_weight_bytes() + bn_bytes);
  row("TOTAL compact cache (all levels)", compact.resident_weight_bytes());
  row("reload artifacts (RAM mode)", artifact_bytes);

  // Every number here is a pure function of the cached artifacts.
  const std::string base = std::string(models::model_kind_name(kind)) + ".";
  out.set(base + "model_bytes", static_cast<double>(model_bytes), "bytes");
  out.set(base + "mask_bytes", static_cast<double>(mask_bytes), "bytes");
  out.set(base + "bn_bytes", static_cast<double>(bn_bytes), "bytes");
  out.set(base + "reversible_total_bytes",
          static_cast<double>(masked.resident_weight_bytes() + bn_bytes),
          "bytes");
  out.set(base + "compact_total_bytes",
          static_cast<double>(compact.resident_weight_bytes()), "bytes");
  out.set(base + "reload_artifact_bytes",
          static_cast<double>(artifact_bytes), "bytes");

  std::cout << "\n[" << models::model_kind_name(kind) << "] "
            << pm.net.param_count() << " parameters\n";
  table.print(std::cout);
}

}  // namespace

int main() {
  bench::print_banner("R-T3", "memory overhead of reversibility");
  bench::BenchReport report("t3");
  report.config("mode", "full");
  for (models::ModelKind kind : models::all_model_kinds())
    report_model(kind, report);
  return report.write() ? 0 : 1;
}
