// R-F3 — Closed-loop timeline on the cut-in scenario.
//
// The "back to the future" moment, frame by frame: criticality spikes when
// a vehicle cuts in, the controller restores the full network within one
// frame (O(Δ) masked copy-back), and after the hazard clears the hysteresis
// delays re-pruning.  Printed as a downsampled series plus every frame
// where the level changed.
#include "bench_common.h"
#include "bench_report.h"
#include "core/reversible_pruner.h"

using namespace rrp;

int main() {
  bench::print_banner("R-F3", "cut-in scenario timeline (reversible runtime)");

  models::ProvisionedModel pm = bench::provision(models::ModelKind::LeNet);
  core::ReversiblePruner provider = pm.make_pruner();
  const core::SafetyConfig certified = bench::standard_certified();
  core::CriticalityGreedyPolicy policy(certified, /*hysteresis=*/6,
                                       provider.level_count());
  core::SafetyMonitor monitor(certified);
  core::RuntimeController ctl(policy, provider, &monitor);

  const sim::Scenario scenario = sim::make_cut_in(900, 7);
  sim::RunConfig cfg = bench::standard_run_config();
  const sim::RunResult result = sim::run_scenario(scenario, ctl, cfg);

  TableFormatter table({"frame", "t_s", "criticality", "level", "latency_ms",
                        "switch_us", "correct"});
  int prev_level = -1;
  for (const auto& r : result.telemetry.records()) {
    const bool level_changed = r.executed_level != prev_level;
    if (level_changed || r.frame % 45 == 0) {
      table.row({std::to_string(r.frame),
                 fmt(static_cast<double>(r.frame) * scenario.dt_s, 2),
                 core::criticality_name(r.criticality),
                 std::to_string(r.executed_level), fmt(r.latency_ms, 3),
                 fmt(r.switch_us, 1), r.correct ? "1" : "0"});
    }
    prev_level = r.executed_level;
  }
  table.print(std::cout);

  const core::RunSummary& s = result.summary;
  std::cout << "\nsummary: accuracy=" << fmt(s.accuracy, 3)
            << " critical_accuracy=" << fmt(s.critical_accuracy, 3)
            << " mean_level=" << fmt(s.mean_level, 2)
            << " switches=" << s.level_switches
            << " violations=" << s.safety_violations
            << " mean_switch_us=" << fmt(s.mean_switch_us, 1) << "\n";

  bench::BenchReport report("f3");
  report.config("mode", "full");
  report.config("model", "lenet");
  report.set("accuracy", s.accuracy, "fraction");
  report.set("critical_accuracy", s.critical_accuracy, "fraction");
  report.set("mean_level", s.mean_level, "level");
  report.set("switches", static_cast<double>(s.level_switches), "count");
  report.set("violations", static_cast<double>(s.safety_violations), "count");
  report.set("mean_switch_us", s.mean_switch_us, "us");
  return report.write() ? 0 : 1;
}
