// Micro-benchmarks (google-benchmark): GEMM kernel, per-level inference of
// the masked and compacted providers, and the raw level-switch primitives.
// These are the numbers the platform model is sanity-checked against.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/reversible_pruner.h"
#include "nn/gemm.h"

using namespace rrp;

namespace {

models::ProvisionedModel& detnet() {
  static models::ProvisionedModel pm =
      bench::provision(models::ModelKind::DetNet);
  return pm;
}

nn::Tensor sample_input() {
  nn::Tensor x(models::zoo_input_shape());
  Rng rng(3);
  for (float& v : x.data()) v = static_cast<float>(rng.uniform(0.0, 1.0));
  return x;
}

void BM_Gemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  std::vector<float> a(static_cast<std::size_t>(n * n)),
      b(static_cast<std::size_t>(n * n)), c(static_cast<std::size_t>(n * n));
  Rng rng(1);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    nn::gemm(n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_InferMasked(benchmark::State& state) {
  auto& pm = detnet();
  static core::ReversiblePruner provider = pm.make_pruner();
  provider.set_level(static_cast<int>(state.range(0)));
  const nn::Tensor x = sample_input();
  for (auto _ : state) {
    auto y = provider.infer(x);
    benchmark::DoNotOptimize(y.raw());
  }
  provider.set_level(0);
}
BENCHMARK(BM_InferMasked)->DenseRange(0, 4);

void BM_InferCompact(benchmark::State& state) {
  auto& pm = detnet();
  static core::CompactedLevelCache cache(pm.net, pm.levels,
                                         models::zoo_input_shape(),
                                         pm.bn_states);
  cache.set_level(static_cast<int>(state.range(0)));
  const nn::Tensor x = sample_input();
  for (auto _ : state) {
    auto y = cache.infer(x);
    benchmark::DoNotOptimize(y.raw());
  }
  cache.set_level(0);
}
BENCHMARK(BM_InferCompact)->DenseRange(0, 4);

void BM_ReversibleSwitch(benchmark::State& state) {
  auto& pm = detnet();
  static core::ReversiblePruner provider = pm.make_pruner();
  const int to = static_cast<int>(state.range(0));
  for (auto _ : state) {
    provider.set_level(to);
    provider.set_level(0);
  }
  state.SetLabel("roundtrip 0<->" + std::to_string(to));
}
BENCHMARK(BM_ReversibleSwitch)->DenseRange(1, 4);

void BM_ReloadSwitch(benchmark::State& state) {
  auto& pm = detnet();
  static core::ReloadProvider provider(
      pm.net, pm.levels, core::ReloadProvider::Source::Memory);
  const int to = static_cast<int>(state.range(0));
  for (auto _ : state) {
    provider.set_level(to);
    provider.set_level(0);
  }
  state.SetLabel("roundtrip 0<->" + std::to_string(to));
}
BENCHMARK(BM_ReloadSwitch)->DenseRange(1, 4);

}  // namespace

BENCHMARK_MAIN();
