// Micro-benchmarks (google-benchmark): GEMM kernel, per-level inference of
// the masked and compacted providers, and the raw level-switch primitives.
// These are the numbers the platform model is sanity-checked against.
//
// `bench_micro --gate` skips the google-benchmark suite and emits
// BENCH_micro.json whose gated `metrics` are *modeled* (platform-model
// latency, switch touched-bytes, resident memory) — pure functions of the
// cached detnet artifacts, so the numbers reproduce byte-identically and
// tools/bench_gate.py can diff them against bench/baselines/.  Measured
// wall-clock numbers ride along under the gate-exempt `wall_metrics` key.
//
// `bench_micro --wall` is the sparsity-realizing headline: measured
// per-level inference wall-clock of the masked-dense path vs the
// provisioned compacted ladder (warmup + median-of-repeats, repeat count
// recorded in the report config), the real speedup per ladder level, and
// an affine-in-MACs fit showing the measured ladder tracks the modeled
// `infer_modeled_us` ladder (DESIGN.md invariant 13 tolerance).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "bench_common.h"
#include "bench_report.h"
#include "core/reversible_pruner.h"
#include "nn/gemm.h"
#include "nn/gemm_kernels.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace rrp;

namespace {

models::ProvisionedModel& detnet() {
  static models::ProvisionedModel pm =
      bench::provision(models::ModelKind::DetNet);
  return pm;
}

nn::Tensor sample_input() {
  nn::Tensor x(models::zoo_input_shape());
  Rng rng(3);
  for (float& v : x.data()) v = static_cast<float>(rng.uniform(0.0, 1.0));
  return x;
}

void BM_Gemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  std::vector<float> a(static_cast<std::size_t>(n * n)),
      b(static_cast<std::size_t>(n * n)), c(static_cast<std::size_t>(n * n));
  Rng rng(1);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    nn::gemm(n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

// --- threaded variants -----------------------------------------------------
// Same kernels under an explicit pool size (second arg).  Results are
// bit-identical across thread counts by construction; only wall time may
// change.  Sweep 1/2/4/N where N = hardware_concurrency.

int hw_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void thread_args(benchmark::internal::Benchmark* b,
                 const std::vector<std::int64_t>& sizes) {
  std::vector<int> counts = {1, 2, 4};
  if (hw_threads() > 4) counts.push_back(hw_threads());
  for (std::int64_t s : sizes)
    for (int t : counts) b->Args({s, t});
}

void BM_GemmThreaded(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  ThreadCountGuard guard(static_cast<int>(state.range(1)));
  std::vector<float> a(static_cast<std::size_t>(n * n)),
      b(static_cast<std::size_t>(n * n)), c(static_cast<std::size_t>(n * n));
  Rng rng(1);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    nn::gemm(n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  state.SetLabel("threads=" + std::to_string(state.range(1)));
}
BENCHMARK(BM_GemmThreaded)->Apply([](benchmark::internal::Benchmark* b) {
  thread_args(b, {128, 256});
});

void BM_ConvForwardThreaded(benchmark::State& state) {
  // Batched conv-net forward: samples fan out over the pool (outer level),
  // the per-sample GEMMs run inline via the reentrancy guard.
  const std::int64_t batch = state.range(0);
  ThreadCountGuard guard(static_cast<int>(state.range(1)));
  auto& pm = detnet();
  nn::Shape shape = models::zoo_input_shape();
  shape[0] = static_cast<int>(batch);
  nn::Tensor x(shape);
  Rng rng(5);
  for (float& v : x.data()) v = static_cast<float>(rng.uniform(0.0, 1.0));
  for (auto _ : state) {
    auto y = pm.net.forward(x);
    benchmark::DoNotOptimize(y.raw());
  }
  state.SetItemsProcessed(state.iterations() * batch);
  state.SetLabel("threads=" + std::to_string(state.range(1)));
}
BENCHMARK(BM_ConvForwardThreaded)->Apply([](benchmark::internal::Benchmark* b) {
  thread_args(b, {8});
});

void BM_EvalThreaded(benchmark::State& state) {
  // Full dataset accuracy evaluation: batches fan out over the pool with
  // per-chunk network clones (the zoo-provisioning hot path).
  ThreadCountGuard guard(static_cast<int>(state.range(0)));
  auto& pm = detnet();
  for (auto _ : state) {
    const double acc = nn::evaluate_accuracy(pm.net, pm.eval_data, 64);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pm.eval_data.inputs.size()));
  state.SetLabel("threads=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_EvalThreaded)->Apply([](benchmark::internal::Benchmark* b) {
  std::vector<int> counts = {1, 2, 4};
  if (hw_threads() > 4) counts.push_back(hw_threads());
  for (int t : counts) b->Arg(t);
});

void BM_InferMasked(benchmark::State& state) {
  auto& pm = detnet();
  static core::ReversiblePruner provider = pm.make_pruner();
  provider.set_level(static_cast<int>(state.range(0)));
  const nn::Tensor x = sample_input();
  for (auto _ : state) {
    auto y = provider.infer(x);
    benchmark::DoNotOptimize(y.raw());
  }
  provider.set_level(0);
}
BENCHMARK(BM_InferMasked)->DenseRange(0, 4);

void BM_InferCompact(benchmark::State& state) {
  auto& pm = detnet();
  static core::CompactedLevelCache cache(pm.net, pm.levels,
                                         models::zoo_input_shape(),
                                         pm.bn_states);
  cache.set_level(static_cast<int>(state.range(0)));
  const nn::Tensor x = sample_input();
  for (auto _ : state) {
    auto y = cache.infer(x);
    benchmark::DoNotOptimize(y.raw());
  }
  cache.set_level(0);
}
BENCHMARK(BM_InferCompact)->DenseRange(0, 4);

void BM_ReversibleSwitch(benchmark::State& state) {
  auto& pm = detnet();
  static core::ReversiblePruner provider = pm.make_pruner();
  const int to = static_cast<int>(state.range(0));
  for (auto _ : state) {
    provider.set_level(to);
    provider.set_level(0);
  }
  state.SetLabel("roundtrip 0<->" + std::to_string(to));
}
BENCHMARK(BM_ReversibleSwitch)->DenseRange(1, 4);

void BM_ReloadSwitch(benchmark::State& state) {
  auto& pm = detnet();
  static core::ReloadProvider provider(
      pm.net, pm.levels, core::ReloadProvider::Source::Memory);
  const int to = static_cast<int>(state.range(0));
  for (auto _ : state) {
    provider.set_level(to);
    provider.set_level(0);
  }
  state.SetLabel("roundtrip 0<->" + std::to_string(to));
}
BENCHMARK(BM_ReloadSwitch)->DenseRange(1, 4);

// --- measured wall-clock (gate-exempt) -------------------------------------

struct WallRecipe {
  int warmup = 3;          ///< untimed inferences before measuring
  int repeats = 7;         ///< timed repeats; the MEDIAN is reported
  double block_ms = 30.0;  ///< target wall time of one timed repeat
};

// Lighter recipe for --gate runs: the wall numbers there are context, not
// the headline, so a shorter measurement keeps the gate fast.
constexpr WallRecipe kGateWall{2, 5, 10.0};
constexpr WallRecipe kFullWall{};

// DESIGN.md invariant 13 tracking tolerance: max relative residual of the
// affine-in-MACs fit over the measured compact ladder.  Typical unloaded
// runs land near 0.3; the band leaves room for host noise at the deepest
// (tens-of-µs) level.
constexpr double kWallFitTolerance = 0.5;

// Median-of-repeats per-inference wall time: `warmup` untimed calls, then
// `repeats` timed blocks of `iters` inferences each (iters sized so one
// block lasts ~block_ms; stable against timer granularity).
double measure_infer_us(core::InferenceProvider& provider, const nn::Tensor& x,
                        const WallRecipe& recipe) {
  for (int i = 0; i < recipe.warmup; ++i) {
    auto y = provider.infer(x);
    benchmark::DoNotOptimize(y.raw());
  }
  Timer probe;
  {
    auto y = provider.infer(x);
    benchmark::DoNotOptimize(y.raw());
  }
  const double probe_us = std::max(1.0, probe.elapsed_us());
  const int iters = static_cast<int>(
      std::clamp(recipe.block_ms * 1000.0 / probe_us, 1.0, 200.0));
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(recipe.repeats));
  for (int r = 0; r < recipe.repeats; ++r) {
    Timer t;
    for (int i = 0; i < iters; ++i) {
      auto y = provider.infer(x);
      benchmark::DoNotOptimize(y.raw());
    }
    samples.push_back(t.elapsed_us() / iters);
  }
  return quantile(samples, 0.5);
}

// Measured wall-clock of the masked-dense path vs the compacted ladder at
// every level, the per-level real speedup, and an affine-in-MACs fit of
// the measured compact ladder.  The platform model is affine in MACs, so
// "measured tracks modeled" == the fit's max relative residual stays
// within the DESIGN.md invariant-13 tolerance (kWallFitTolerance).
void emit_wall_metrics(bench::BenchReport& report, const WallRecipe& recipe,
                       bool print_table) {
  auto& pm = detnet();
  const nn::Shape in = models::zoo_input_shape();
  const nn::Tensor x = sample_input();
  const sim::PlatformModel platform;

  core::ReversiblePruner masked = pm.make_pruner();
  core::CompactedLadderProvider fast = pm.make_fast_provider(in);

  report.config("wall_warmup", static_cast<std::int64_t>(recipe.warmup));
  report.config("wall_repeats", static_cast<std::int64_t>(recipe.repeats));

  const int levels = masked.level_count();
  std::vector<double> masked_us(static_cast<std::size_t>(levels));
  std::vector<double> compact_us(static_cast<std::size_t>(levels));
  std::vector<double> macs(static_cast<std::size_t>(levels));
  std::vector<double> modeled_us(static_cast<std::size_t>(levels));
  for (int k = 0; k < levels; ++k) {
    masked.set_level(k);
    fast.set_level(k);
    masked_us[static_cast<std::size_t>(k)] =
        measure_infer_us(masked, x, recipe);
    compact_us[static_cast<std::size_t>(k)] =
        measure_infer_us(fast, x, recipe);
    macs[static_cast<std::size_t>(k)] =
        static_cast<double>(fast.active_macs(in));
    modeled_us[static_cast<std::size_t>(k)] =
        platform.latency_ms(fast.active_macs(in)) * 1000.0;
  }
  masked.set_level(0);

  for (int k = 0; k < levels; ++k) {
    const auto i = static_cast<std::size_t>(k);
    const std::string l = ".l" + std::to_string(k);
    report.set_wall("wall_infer_masked_us" + l, masked_us[i], "us");
    report.set_wall("wall_infer_compact_us" + l, compact_us[i], "us");
    report.set_wall("wall_speedup_vs_masked" + l,
                    masked_us[i] / compact_us[i], "x");
    report.set_wall("wall_speedup_vs_dense" + l,
                    masked_us[0] / compact_us[i], "x");
  }

  // Least-squares fit measured_us ~= macs / macs_per_us + overhead_us over
  // the compacted ladder (same functional family as the platform model).
  const auto n = static_cast<double>(levels);
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (int k = 0; k < levels; ++k) {
    const auto i = static_cast<std::size_t>(k);
    sx += macs[i];
    sy += compact_us[i];
    sxx += macs[i] * macs[i];
    sxy += macs[i] * compact_us[i];
  }
  const double denom = n * sxx - sx * sx;
  const double slope = denom != 0.0 ? (n * sxy - sx * sy) / denom : 0.0;
  const double intercept = (sy - slope * sx) / n;
  double max_resid = 0.0;
  for (int k = 0; k < levels; ++k) {
    const auto i = static_cast<std::size_t>(k);
    const double pred = slope * macs[i] + intercept;
    max_resid = std::max(
        max_resid, std::abs(pred - compact_us[i]) / compact_us[i]);
  }
  report.set_wall("wall_model_fit.max_rel_resid", max_resid, "frac");
  if (slope > 0.0)
    report.set_wall("wall_model_fit.macs_per_us", 1.0 / slope, "macs/us");
  report.set_wall("wall_model_fit.overhead_us", std::max(0.0, intercept),
                  "us");

  if (print_table) {
    std::printf("\nmeasured inference wall-clock (kernel=%s, warmup=%d, "
                "median of %d repeats)\n",
                nn::kernels::active_variant(), recipe.warmup, recipe.repeats);
    std::printf("%-6s %14s %14s %12s %12s %14s\n", "level", "masked_us",
                "compact_us", "speedup", "vs_dense", "modeled_us");
    for (int k = 0; k < levels; ++k) {
      const auto i = static_cast<std::size_t>(k);
      std::printf("l%-5d %14.1f %14.1f %11.2fx %11.2fx %14.1f\n", k,
                  masked_us[i], compact_us[i], masked_us[i] / compact_us[i],
                  masked_us[0] / compact_us[i], modeled_us[i]);
    }
    std::printf("affine-in-MACs fit of compact ladder: max relative "
                "residual %.3f (tolerance %.2f, DESIGN.md invariant 13)%s\n",
                max_resid, kWallFitTolerance,
                max_resid <= kWallFitTolerance ? "" : " — EXCEEDED");
  }
}

// Deterministic modeled metrics on detnet — everything in the gated
// `metrics` section is a pure function of the cached co-trained artifacts
// (no wall clocks), which is what makes BENCH_micro.json gate-able against
// a committed baseline.  Measured numbers go to the gate-exempt
// `wall_metrics` section via emit_wall_metrics.
int emit_report(const char* mode, const WallRecipe& wall_recipe,
                bool print_table) {
  auto& pm = detnet();
  bench::BenchReport report("micro");
  report.config("model", "detnet");
  report.config("mode", mode);
  // The active kernel variant depends on the build host and RRP_SIMD —
  // keep it OUT of the gate-mode config so the deterministic baseline
  // comparison never depends on either (kernels are bit-identical, so the
  // gated metrics genuinely don't).
  if (std::strcmp(mode, "gate") != 0)
    report.config("kernel_variant", nn::kernels::active_variant());

  const sim::PlatformModel platform;
  const nn::Shape in = models::zoo_input_shape();
  core::ReversiblePruner rp = pm.make_pruner();

  std::vector<double> infer_us, switch_us;
  for (int k = 0; k < rp.level_count(); ++k) {
    rp.set_level(k);
    const double us = platform.latency_ms(rp.active_macs(in)) * 1000.0;
    report.set("infer_modeled_us.l" + std::to_string(k), us, "us");
    infer_us.push_back(us);
  }
  rp.set_level(0);
  for (int k = 1; k < rp.level_count(); ++k) {
    const auto s = rp.set_level(k);
    const double us = platform.switch_latency_us(s.bytes_written);
    report.set("switch_touched_bytes.l" + std::to_string(k),
               static_cast<double>(s.bytes_written), "bytes");
    report.set("switch_modeled_us.l" + std::to_string(k), us, "us");
    switch_us.push_back(us);
    rp.set_level(0);
  }
  report.set("infer_modeled_us.median", quantile(infer_us, 0.5), "us");
  report.set("switch_modeled_us.median", quantile(switch_us, 0.5), "us");
  report.set("memory.resident_bytes",
             static_cast<double>(rp.resident_weight_bytes()), "bytes");
  report.set("memory.delta_index_bytes",
             static_cast<double>(rp.delta_index_bytes()), "bytes");
  report.set("memory.store_bytes",
             static_cast<double>(rp.store().total_bytes()), "bytes");

  emit_wall_metrics(report, wall_recipe, print_table);
  return report.write() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gate") == 0)
      return emit_report("gate", kGateWall, /*print_table=*/false);
    if (std::strcmp(argv[i], "--wall") == 0)
      return emit_report("wall", kFullWall, /*print_table=*/true);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return emit_report("full", kFullWall, /*print_table=*/true);
}
