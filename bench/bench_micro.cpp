// Micro-benchmarks (google-benchmark): GEMM kernel, per-level inference of
// the masked and compacted providers, and the raw level-switch primitives.
// These are the numbers the platform model is sanity-checked against.
//
// `bench_micro --gate` skips the wall-clock benchmarks entirely and only
// emits BENCH_micro.json with *modeled* metrics (platform-model latency,
// switch touched-bytes, resident memory) — pure functions of the cached
// detnet artifacts, so the numbers reproduce byte-identically and
// tools/bench_gate.py can diff them against bench/baselines/.
#include <benchmark/benchmark.h>

#include <cstring>

#include "bench_common.h"
#include "bench_report.h"
#include "core/reversible_pruner.h"
#include "nn/gemm.h"
#include "util/thread_pool.h"

using namespace rrp;

namespace {

models::ProvisionedModel& detnet() {
  static models::ProvisionedModel pm =
      bench::provision(models::ModelKind::DetNet);
  return pm;
}

nn::Tensor sample_input() {
  nn::Tensor x(models::zoo_input_shape());
  Rng rng(3);
  for (float& v : x.data()) v = static_cast<float>(rng.uniform(0.0, 1.0));
  return x;
}

void BM_Gemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  std::vector<float> a(static_cast<std::size_t>(n * n)),
      b(static_cast<std::size_t>(n * n)), c(static_cast<std::size_t>(n * n));
  Rng rng(1);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    nn::gemm(n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

// --- threaded variants -----------------------------------------------------
// Same kernels under an explicit pool size (second arg).  Results are
// bit-identical across thread counts by construction; only wall time may
// change.  Sweep 1/2/4/N where N = hardware_concurrency.

int hw_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void thread_args(benchmark::internal::Benchmark* b,
                 const std::vector<std::int64_t>& sizes) {
  std::vector<int> counts = {1, 2, 4};
  if (hw_threads() > 4) counts.push_back(hw_threads());
  for (std::int64_t s : sizes)
    for (int t : counts) b->Args({s, t});
}

void BM_GemmThreaded(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  ThreadCountGuard guard(static_cast<int>(state.range(1)));
  std::vector<float> a(static_cast<std::size_t>(n * n)),
      b(static_cast<std::size_t>(n * n)), c(static_cast<std::size_t>(n * n));
  Rng rng(1);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    nn::gemm(n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  state.SetLabel("threads=" + std::to_string(state.range(1)));
}
BENCHMARK(BM_GemmThreaded)->Apply([](benchmark::internal::Benchmark* b) {
  thread_args(b, {128, 256});
});

void BM_ConvForwardThreaded(benchmark::State& state) {
  // Batched conv-net forward: samples fan out over the pool (outer level),
  // the per-sample GEMMs run inline via the reentrancy guard.
  const std::int64_t batch = state.range(0);
  ThreadCountGuard guard(static_cast<int>(state.range(1)));
  auto& pm = detnet();
  nn::Shape shape = models::zoo_input_shape();
  shape[0] = static_cast<int>(batch);
  nn::Tensor x(shape);
  Rng rng(5);
  for (float& v : x.data()) v = static_cast<float>(rng.uniform(0.0, 1.0));
  for (auto _ : state) {
    auto y = pm.net.forward(x);
    benchmark::DoNotOptimize(y.raw());
  }
  state.SetItemsProcessed(state.iterations() * batch);
  state.SetLabel("threads=" + std::to_string(state.range(1)));
}
BENCHMARK(BM_ConvForwardThreaded)->Apply([](benchmark::internal::Benchmark* b) {
  thread_args(b, {8});
});

void BM_EvalThreaded(benchmark::State& state) {
  // Full dataset accuracy evaluation: batches fan out over the pool with
  // per-chunk network clones (the zoo-provisioning hot path).
  ThreadCountGuard guard(static_cast<int>(state.range(0)));
  auto& pm = detnet();
  for (auto _ : state) {
    const double acc = nn::evaluate_accuracy(pm.net, pm.eval_data, 64);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pm.eval_data.inputs.size()));
  state.SetLabel("threads=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_EvalThreaded)->Apply([](benchmark::internal::Benchmark* b) {
  std::vector<int> counts = {1, 2, 4};
  if (hw_threads() > 4) counts.push_back(hw_threads());
  for (int t : counts) b->Arg(t);
});

void BM_InferMasked(benchmark::State& state) {
  auto& pm = detnet();
  static core::ReversiblePruner provider = pm.make_pruner();
  provider.set_level(static_cast<int>(state.range(0)));
  const nn::Tensor x = sample_input();
  for (auto _ : state) {
    auto y = provider.infer(x);
    benchmark::DoNotOptimize(y.raw());
  }
  provider.set_level(0);
}
BENCHMARK(BM_InferMasked)->DenseRange(0, 4);

void BM_InferCompact(benchmark::State& state) {
  auto& pm = detnet();
  static core::CompactedLevelCache cache(pm.net, pm.levels,
                                         models::zoo_input_shape(),
                                         pm.bn_states);
  cache.set_level(static_cast<int>(state.range(0)));
  const nn::Tensor x = sample_input();
  for (auto _ : state) {
    auto y = cache.infer(x);
    benchmark::DoNotOptimize(y.raw());
  }
  cache.set_level(0);
}
BENCHMARK(BM_InferCompact)->DenseRange(0, 4);

void BM_ReversibleSwitch(benchmark::State& state) {
  auto& pm = detnet();
  static core::ReversiblePruner provider = pm.make_pruner();
  const int to = static_cast<int>(state.range(0));
  for (auto _ : state) {
    provider.set_level(to);
    provider.set_level(0);
  }
  state.SetLabel("roundtrip 0<->" + std::to_string(to));
}
BENCHMARK(BM_ReversibleSwitch)->DenseRange(1, 4);

void BM_ReloadSwitch(benchmark::State& state) {
  auto& pm = detnet();
  static core::ReloadProvider provider(
      pm.net, pm.levels, core::ReloadProvider::Source::Memory);
  const int to = static_cast<int>(state.range(0));
  for (auto _ : state) {
    provider.set_level(to);
    provider.set_level(0);
  }
  state.SetLabel("roundtrip 0<->" + std::to_string(to));
}
BENCHMARK(BM_ReloadSwitch)->DenseRange(1, 4);

// Deterministic modeled metrics on detnet — everything here is a pure
// function of the cached co-trained artifacts (no wall clocks), which is
// what makes BENCH_micro.json gate-able against a committed baseline.
int emit_report(const char* mode) {
  auto& pm = detnet();
  bench::BenchReport report("micro");
  report.config("model", "detnet");
  report.config("mode", mode);

  const sim::PlatformModel platform;
  const nn::Shape in = models::zoo_input_shape();
  core::ReversiblePruner rp = pm.make_pruner();

  std::vector<double> infer_us, switch_us;
  for (int k = 0; k < rp.level_count(); ++k) {
    rp.set_level(k);
    const double us = platform.latency_ms(rp.active_macs(in)) * 1000.0;
    report.set("infer_modeled_us.l" + std::to_string(k), us, "us");
    infer_us.push_back(us);
  }
  rp.set_level(0);
  for (int k = 1; k < rp.level_count(); ++k) {
    const auto s = rp.set_level(k);
    const double us = platform.switch_latency_us(s.bytes_written);
    report.set("switch_touched_bytes.l" + std::to_string(k),
               static_cast<double>(s.bytes_written), "bytes");
    report.set("switch_modeled_us.l" + std::to_string(k), us, "us");
    switch_us.push_back(us);
    rp.set_level(0);
  }
  report.set("infer_modeled_us.median", quantile(infer_us, 0.5), "us");
  report.set("switch_modeled_us.median", quantile(switch_us, 0.5), "us");
  report.set("memory.resident_bytes",
             static_cast<double>(rp.resident_weight_bytes()), "bytes");
  report.set("memory.delta_index_bytes",
             static_cast<double>(rp.delta_index_bytes()), "bytes");
  report.set("memory.store_bytes",
             static_cast<double>(rp.store().total_bytes()), "bytes");
  return report.write() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--gate") == 0) return emit_report("gate");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return emit_report("full");
}
