// Micro-benchmarks (google-benchmark): GEMM kernel, per-level inference of
// the masked and compacted providers, and the raw level-switch primitives.
// These are the numbers the platform model is sanity-checked against.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/reversible_pruner.h"
#include "nn/gemm.h"
#include "util/thread_pool.h"

using namespace rrp;

namespace {

models::ProvisionedModel& detnet() {
  static models::ProvisionedModel pm =
      bench::provision(models::ModelKind::DetNet);
  return pm;
}

nn::Tensor sample_input() {
  nn::Tensor x(models::zoo_input_shape());
  Rng rng(3);
  for (float& v : x.data()) v = static_cast<float>(rng.uniform(0.0, 1.0));
  return x;
}

void BM_Gemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  std::vector<float> a(static_cast<std::size_t>(n * n)),
      b(static_cast<std::size_t>(n * n)), c(static_cast<std::size_t>(n * n));
  Rng rng(1);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    nn::gemm(n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

// --- threaded variants -----------------------------------------------------
// Same kernels under an explicit pool size (second arg).  Results are
// bit-identical across thread counts by construction; only wall time may
// change.  Sweep 1/2/4/N where N = hardware_concurrency.

int hw_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void thread_args(benchmark::internal::Benchmark* b,
                 const std::vector<std::int64_t>& sizes) {
  std::vector<int> counts = {1, 2, 4};
  if (hw_threads() > 4) counts.push_back(hw_threads());
  for (std::int64_t s : sizes)
    for (int t : counts) b->Args({s, t});
}

void BM_GemmThreaded(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  ThreadCountGuard guard(static_cast<int>(state.range(1)));
  std::vector<float> a(static_cast<std::size_t>(n * n)),
      b(static_cast<std::size_t>(n * n)), c(static_cast<std::size_t>(n * n));
  Rng rng(1);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    nn::gemm(n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  state.SetLabel("threads=" + std::to_string(state.range(1)));
}
BENCHMARK(BM_GemmThreaded)->Apply([](benchmark::internal::Benchmark* b) {
  thread_args(b, {128, 256});
});

void BM_ConvForwardThreaded(benchmark::State& state) {
  // Batched conv-net forward: samples fan out over the pool (outer level),
  // the per-sample GEMMs run inline via the reentrancy guard.
  const std::int64_t batch = state.range(0);
  ThreadCountGuard guard(static_cast<int>(state.range(1)));
  auto& pm = detnet();
  nn::Shape shape = models::zoo_input_shape();
  shape[0] = static_cast<int>(batch);
  nn::Tensor x(shape);
  Rng rng(5);
  for (float& v : x.data()) v = static_cast<float>(rng.uniform(0.0, 1.0));
  for (auto _ : state) {
    auto y = pm.net.forward(x);
    benchmark::DoNotOptimize(y.raw());
  }
  state.SetItemsProcessed(state.iterations() * batch);
  state.SetLabel("threads=" + std::to_string(state.range(1)));
}
BENCHMARK(BM_ConvForwardThreaded)->Apply([](benchmark::internal::Benchmark* b) {
  thread_args(b, {8});
});

void BM_EvalThreaded(benchmark::State& state) {
  // Full dataset accuracy evaluation: batches fan out over the pool with
  // per-chunk network clones (the zoo-provisioning hot path).
  ThreadCountGuard guard(static_cast<int>(state.range(0)));
  auto& pm = detnet();
  for (auto _ : state) {
    const double acc = nn::evaluate_accuracy(pm.net, pm.eval_data, 64);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pm.eval_data.inputs.size()));
  state.SetLabel("threads=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_EvalThreaded)->Apply([](benchmark::internal::Benchmark* b) {
  std::vector<int> counts = {1, 2, 4};
  if (hw_threads() > 4) counts.push_back(hw_threads());
  for (int t : counts) b->Arg(t);
});

void BM_InferMasked(benchmark::State& state) {
  auto& pm = detnet();
  static core::ReversiblePruner provider = pm.make_pruner();
  provider.set_level(static_cast<int>(state.range(0)));
  const nn::Tensor x = sample_input();
  for (auto _ : state) {
    auto y = provider.infer(x);
    benchmark::DoNotOptimize(y.raw());
  }
  provider.set_level(0);
}
BENCHMARK(BM_InferMasked)->DenseRange(0, 4);

void BM_InferCompact(benchmark::State& state) {
  auto& pm = detnet();
  static core::CompactedLevelCache cache(pm.net, pm.levels,
                                         models::zoo_input_shape(),
                                         pm.bn_states);
  cache.set_level(static_cast<int>(state.range(0)));
  const nn::Tensor x = sample_input();
  for (auto _ : state) {
    auto y = cache.infer(x);
    benchmark::DoNotOptimize(y.raw());
  }
  cache.set_level(0);
}
BENCHMARK(BM_InferCompact)->DenseRange(0, 4);

void BM_ReversibleSwitch(benchmark::State& state) {
  auto& pm = detnet();
  static core::ReversiblePruner provider = pm.make_pruner();
  const int to = static_cast<int>(state.range(0));
  for (auto _ : state) {
    provider.set_level(to);
    provider.set_level(0);
  }
  state.SetLabel("roundtrip 0<->" + std::to_string(to));
}
BENCHMARK(BM_ReversibleSwitch)->DenseRange(1, 4);

void BM_ReloadSwitch(benchmark::State& state) {
  auto& pm = detnet();
  static core::ReloadProvider provider(
      pm.net, pm.levels, core::ReloadProvider::Source::Memory);
  const int to = static_cast<int>(state.range(0));
  for (auto _ : state) {
    provider.set_level(to);
    provider.set_level(0);
  }
  state.SetLabel("roundtrip 0<->" + std::to_string(to));
}
BENCHMARK(BM_ReloadSwitch)->DenseRange(1, 4);

}  // namespace

BENCHMARK_MAIN();
