// R-F2 — Latency and energy vs pruning level.
//
// Two views per model and level:
//   * platform-model latency/energy from the level's effective MACs
//     (what a sparsity-aware embedded accelerator would see), and
//   * measured wall-clock inference latency of THIS engine for the masked
//     network and the physically compacted network — demonstrating that
//     masked execution alone does not buy wall-clock time on dense
//     hardware, while compaction does.
#include "bench_common.h"
#include "bench_report.h"
#include "core/reversible_pruner.h"

using namespace rrp;

namespace {

double measure_infer_ms(core::InferenceProvider& provider,
                        const nn::Tensor& x, int reps) {
  provider.infer(x);  // warm-up
  std::vector<double> times;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    provider.infer(x);
    times.push_back(t.elapsed_ms());
  }
  return quantile(times, 0.5);
}

void sweep(models::ModelKind kind, bench::BenchReport& report) {
  models::ProvisionedModel pm = bench::provision(kind);
  const nn::Shape in = models::zoo_input_shape();
  const sim::PlatformModel platform;

  core::ReversiblePruner masked = pm.make_pruner();
  core::CompactedLevelCache compact(pm.net, pm.levels, in,
                                    pm.bn_states);

  nn::Tensor x(in);
  Rng rng(5);
  for (float& v : x.data()) v = static_cast<float>(rng.uniform(0.0, 1.0));

  TableFormatter table({"level", "ratio", "eff_MMACs", "model_lat_ms",
                        "model_energy_mJ", "host_masked_ms",
                        "host_compact_ms", "accuracy"});
  for (int k = 0; k < pm.levels.level_count(); ++k) {
    masked.set_level(k);
    compact.set_level(k);
    const std::int64_t macs = masked.active_macs(in);
    table.row({std::to_string(k), fmt(pm.levels.ratio(k), 2),
               fmt(static_cast<double>(macs) / 1e6, 3),
               fmt(platform.latency_ms(macs), 3),
               fmt(platform.energy_mj(macs), 3),
               fmt(measure_infer_ms(masked, x, 15), 3),
               fmt(measure_infer_ms(compact, x, 15), 3),
               fmt(pm.level_accuracy[static_cast<std::size_t>(k)], 3)});

    // Modeled (deterministic) view only — host wall times stay console-only.
    const std::string base = std::string(models::model_kind_name(kind)) +
                             ".l" + std::to_string(k) + ".";
    report.set(base + "model_lat_ms", platform.latency_ms(macs), "ms");
    report.set(base + "model_energy_mj", platform.energy_mj(macs), "mJ");
    report.set(base + "eff_mmacs", static_cast<double>(macs) / 1e6, "MMAC");
  }
  std::cout << "\n[" << models::model_kind_name(kind) << "]\n";
  table.print(std::cout);
}

}  // namespace

int main() {
  bench::print_banner("R-F2", "latency & energy vs pruning level");
  bench::BenchReport report("f2");
  report.config("mode", "full");
  for (models::ModelKind kind : models::all_model_kinds())
    sweep(kind, report);
  return report.write() ? 0 : 1;
}
