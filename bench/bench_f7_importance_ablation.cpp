// R-F7 — Importance-metric ablation.
//
// The same nested-ladder machinery with three channel-importance metrics:
// data-free L1 and L2 magnitude, and data-driven first-order Taylor
// (|w·∂L/∂w| over calibration batches).  Reported: one-shot accuracy per
// ratio per metric (no co-training, isolating the ranking quality).
#include "bench_common.h"
#include "bench_report.h"
#include "core/reversible_pruner.h"

using namespace rrp;

namespace {

void run(models::ModelKind kind, bench::BenchReport& report) {
  models::ProvisionedModel pm = bench::provision(kind);
  const std::vector<double> ratios{0.0, 0.2, 0.4, 0.6, 0.8};
  const nn::Shape in = models::zoo_input_shape();

  auto ladder_accuracy =
      [&](prune::PruneLevelLibrary lib) -> std::vector<double> {
    std::vector<double> acc;
    core::ReversiblePruner rp(pm.net, std::move(lib));
    for (int k = 0; k < rp.level_count(); ++k) {
      rp.set_level(k);
      acc.push_back(nn::evaluate_accuracy(pm.net, pm.eval_data));
    }
    rp.set_level(0);
    return acc;
  };

  const auto l1 = ladder_accuracy(prune::PruneLevelLibrary::build_structured(
      pm.net, ratios, in, prune::ImportanceMetric::L1, 2));
  const auto l2 = ladder_accuracy(prune::PruneLevelLibrary::build_structured(
      pm.net, ratios, in, prune::ImportanceMetric::L2, 2));

  Rng rng(7);
  const prune::TaylorScores ts =
      prune::taylor_scores(pm.net, pm.train_data, /*batches=*/12,
                           /*batch_size=*/32, rng);
  const auto taylor =
      ladder_accuracy(prune::PruneLevelLibrary::build_structured_scored(
          pm.net, ratios, in, ts.channel, 2));

  TableFormatter table({"ratio", "L1_acc", "L2_acc", "Taylor_acc"});
  for (std::size_t i = 0; i < ratios.size(); ++i)
    table.row({fmt(ratios[i], 2), fmt(l1[i], 3), fmt(l2[i], 3),
               fmt(taylor[i], 3)});
  std::cout << "\n[" << models::model_kind_name(kind) << "]\n";
  table.print(std::cout);

  const std::string base = std::string(models::model_kind_name(kind)) +
                           ".acc@" + fmt(ratios.back(), 2) + ".";
  report.set(base + "l1", l1.back(), "fraction");
  report.set(base + "l2", l2.back(), "fraction");
  report.set(base + "taylor", taylor.back(), "fraction");
}

}  // namespace

int main() {
  bench::print_banner("R-F7", "channel-importance metric ablation "
                              "(one-shot, no co-training)");
  bench::BenchReport report("f7");
  report.config("mode", "full");
  for (models::ModelKind kind :
       {models::ModelKind::LeNet, models::ModelKind::ResNetLite,
        models::ModelKind::DetNet})
    run(kind, report);
  return report.write() ? 0 : 1;
}
