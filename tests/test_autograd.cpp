// Numerical gradient verification of every trainable layer, alone and in
// composition — the foundation the accuracy experiments stand on.
#include <gtest/gtest.h>

#include "test_support.h"
#include "util/thread_pool.h"

namespace rrp::nn {
namespace {

using rrp::testing::gradient_check;
using rrp::testing::random_tensor;

constexpr double kTol = 0.05;  // median relative error over directions

std::vector<int> labels_for(int n, int classes, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<int> out(static_cast<std::size_t>(n));
  for (int& l : out) l = rng.uniform_int(0, classes - 1);
  return out;
}

TEST(Autograd, LinearOnly) {
  Network net("n");
  net.emplace<Linear>("fc", 6, 4);
  Rng rng(1);
  init_network(net, rng);
  const Tensor x = random_tensor({5, 6}, 2);
  EXPECT_LT(gradient_check(net, x, labels_for(5, 4, 3)), kTol);
}

TEST(Autograd, TwoLinearWithReLU) {
  Network net("n");
  net.emplace<Linear>("fc1", 6, 8);
  net.emplace<ReLU>("r");
  net.emplace<Linear>("fc2", 8, 3);
  Rng rng(4);
  init_network(net, rng);
  const Tensor x = random_tensor({4, 6}, 5);
  EXPECT_LT(gradient_check(net, x, labels_for(4, 3, 6)), kTol);
}

TEST(Autograd, ConvOnly) {
  Network net("n");
  net.emplace<Conv2D>("c", 2, 3, 3, 1, 1);
  net.emplace<Flatten>("f");
  Rng rng(7);
  init_network(net, rng);
  const Tensor x = random_tensor({2, 2, 5, 5}, 8);
  EXPECT_LT(gradient_check(net, x, labels_for(2, 75, 9)), kTol);
}

TEST(Autograd, ConvWithStrideNoPadding) {
  Network net("n");
  net.emplace<Conv2D>("c", 1, 2, 3, 2, 0);
  net.emplace<Flatten>("f");
  Rng rng(10);
  init_network(net, rng);
  const Tensor x = random_tensor({2, 1, 7, 7}, 11);
  EXPECT_LT(gradient_check(net, x, labels_for(2, 18, 12)), kTol);
}

TEST(Autograd, MaxPoolPath) {
  Network net("n");
  net.emplace<Conv2D>("c", 1, 2, 3, 1, 1);
  net.emplace<MaxPool>("p", 2, 2);
  net.emplace<Flatten>("f");
  net.emplace<Linear>("fc", 2 * 4 * 4, 3);
  Rng rng(13);
  init_network(net, rng);
  const Tensor x = random_tensor({2, 1, 8, 8}, 14);
  EXPECT_LT(gradient_check(net, x, labels_for(2, 3, 15)), kTol);
}

TEST(Autograd, AvgPoolPath) {
  Network net("n");
  net.emplace<Conv2D>("c", 1, 2, 3, 1, 1);
  net.emplace<AvgPool>("p", 2, 2);
  net.emplace<Flatten>("f");
  net.emplace<Linear>("fc", 2 * 4 * 4, 3);
  Rng rng(16);
  init_network(net, rng);
  const Tensor x = random_tensor({2, 1, 8, 8}, 17);
  EXPECT_LT(gradient_check(net, x, labels_for(2, 3, 18)), kTol);
}

TEST(Autograd, GlobalAvgPoolPath) {
  Network net("n");
  net.emplace<Conv2D>("c", 1, 4, 3, 1, 1);
  net.emplace<GlobalAvgPool>("g");
  net.emplace<Linear>("fc", 4, 3);
  Rng rng(19);
  init_network(net, rng);
  const Tensor x = random_tensor({3, 1, 6, 6}, 20);
  EXPECT_LT(gradient_check(net, x, labels_for(3, 3, 21)), kTol);
}

TEST(Autograd, BatchNorm4D) {
  Network net("n");
  net.emplace<Conv2D>("c", 1, 3, 3, 1, 1);
  net.emplace<BatchNorm>("bn", 3);
  net.emplace<ReLU>("r");
  net.emplace<Flatten>("f");
  net.emplace<Linear>("fc", 3 * 6 * 6, 3);
  Rng rng(22);
  init_network(net, rng);
  const Tensor x = random_tensor({4, 1, 6, 6}, 23);
  EXPECT_LT(gradient_check(net, x, labels_for(4, 3, 24)), kTol);
}

TEST(Autograd, BatchNorm2D) {
  Network net("n");
  net.emplace<Linear>("fc1", 5, 4);
  net.emplace<BatchNorm>("bn", 4);
  net.emplace<ReLU>("r");
  net.emplace<Linear>("fc2", 4, 3);
  Rng rng(25);
  init_network(net, rng);
  const Tensor x = random_tensor({6, 5}, 26);
  EXPECT_LT(gradient_check(net, x, labels_for(6, 3, 27)), kTol);
}

TEST(Autograd, ResidualBlock) {
  Network net = rrp::testing::tiny_residual_net(28);
  const Tensor x = random_tensor({2, 1, 8, 8}, 29);
  EXPECT_LT(gradient_check(net, x, labels_for(2, 3, 30)), kTol);
}

TEST(Autograd, FullTinyConvNet) {
  Network net = rrp::testing::tiny_conv_net(31);
  const Tensor x = random_tensor({3, 1, 8, 8}, 32);
  EXPECT_LT(gradient_check(net, x, labels_for(3, 3, 33)), kTol);
}

TEST(Autograd, FullTinyBnNet) {
  Network net = rrp::testing::tiny_bn_net(34);
  const Tensor x = random_tensor({4, 1, 8, 8}, 35);
  EXPECT_LT(gradient_check(net, x, labels_for(4, 3, 36)), kTol);
}

TEST(Autograd, GradientCheckHoldsUnderParallelPool) {
  // The numerical-gradient harness exercises forward/backward through the
  // parallel conv/GEMM kernels; it must pass identically with a large pool.
  ThreadCountGuard guard(8);
  Network net = rrp::testing::tiny_conv_net(55);
  const Tensor x = random_tensor({3, 1, 8, 8}, 56);
  EXPECT_LT(gradient_check(net, x, labels_for(3, 3, 57)), kTol);
}

TEST(Autograd, GradientsBitExactAcrossThreadCounts) {
  // One forward/backward pass on the conv+depthwise+residual nets must
  // yield byte-identical parameter gradients for any RRP_THREADS value.
  const Tensor x = random_tensor({4, 1, 8, 8}, 58);
  Rng label_rng(59);
  std::vector<int> labels(4);
  for (int& l : labels) l = label_rng.uniform_int(0, 2);

  auto grads = [&](int threads, std::uint64_t net_seed) {
    ThreadCountGuard guard(threads);
    Network net = rrp::testing::tiny_residual_net(net_seed);
    Tensor y = net.forward(x, /*training=*/true);
    net.zero_grad();
    net.backward(softmax_cross_entropy(y, labels).grad);
    std::vector<float> g;
    for (const auto& p : net.params())
      g.insert(g.end(), p.grad->data().begin(), p.grad->data().end());
    return g;
  };
  const std::vector<float> serial = grads(1, 60);
  EXPECT_TRUE(serial == grads(2, 60));
  EXPECT_TRUE(serial == grads(8, 60));
}

class AutogradSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AutogradSeedSweep, ConvLinearStackAcrossSeeds) {
  const std::uint64_t seed = GetParam();
  Network net("n");
  net.emplace<Conv2D>("c", 1, 2, 3, 1, 1);
  net.emplace<ReLU>("r1");
  net.emplace<Flatten>("f");
  net.emplace<Linear>("fc", 2 * 6 * 6, 4);
  Rng rng(seed);
  init_network(net, rng);
  const Tensor x = random_tensor({2, 1, 6, 6}, seed + 1);
  EXPECT_LT(gradient_check(net, x, labels_for(2, 4, seed + 2)), kTol);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutogradSeedSweep,
                         ::testing::Values(101ull, 202ull, 303ull, 404ull,
                                           505ull));

}  // namespace
}  // namespace rrp::nn
