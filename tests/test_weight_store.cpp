#include <gtest/gtest.h>

#include <cstring>

#include "core/weight_store.h"
#include "prune/planner.h"
#include "test_support.h"
#include "util/checks.h"

namespace rrp::core {
namespace {

using rrp::testing::tiny_conv_net;

TEST(WeightStore, SnapshotCapturesAllParams) {
  nn::Network net = tiny_conv_net(1);
  const WeightStore store = WeightStore::snapshot(net);
  EXPECT_EQ(store.param_count(), net.params().size());
  EXPECT_EQ(store.total_elements(), net.param_count());
  EXPECT_EQ(store.total_bytes(), net.param_count() * 4);
  EXPECT_TRUE(store.has("conv1.weight"));
  EXPECT_FALSE(store.has("ghost"));
}

TEST(WeightStore, GetReturnsGoldenValues) {
  nn::Network net = tiny_conv_net(2);
  const float orig = net.params()[0].value->data()[0];
  const WeightStore store = WeightStore::snapshot(net);
  net.params()[0].value->fill(0.0f);
  EXPECT_EQ(store.get(net.params()[0].name)[0], orig);
  EXPECT_THROW(store.get("ghost"), PreconditionError);
}

TEST(WeightStore, RestoreAllIsBitExact) {
  nn::Network net = tiny_conv_net(3);
  std::vector<nn::Tensor> before;
  for (auto& p : net.params()) before.push_back(*p.value);
  const WeightStore store = WeightStore::snapshot(net);
  for (auto& p : net.params()) p.value->fill(-7.0f);
  store.restore_all(net);
  auto after = net.params();
  for (std::size_t i = 0; i < after.size(); ++i)
    EXPECT_TRUE(after[i].value->equals(before[i])) << after[i].name;
}

TEST(WeightStore, ApplyMaskCombinesGoldenAndZeros) {
  nn::Network net("n");
  auto& lin = net.emplace<nn::Linear>("fc", 2, 1, false);
  lin.weight() = nn::Tensor({1, 2}, {3.0f, 4.0f});
  const WeightStore store = WeightStore::snapshot(net);
  lin.weight().fill(-1.0f);  // corrupt

  prune::NetworkMask mask;
  mask.set("fc.weight", {0, 1});
  store.apply_mask(net, mask);
  EXPECT_FLOAT_EQ(lin.weight()[0], 0.0f);  // pruned
  EXPECT_FLOAT_EQ(lin.weight()[1], 4.0f);  // golden restored
}

TEST(WeightStore, ApplyMaskRestoresUnmaskedParamsFully) {
  nn::Network net = tiny_conv_net(4);
  const WeightStore store = WeightStore::snapshot(net);
  std::vector<nn::Tensor> golden;
  for (auto& p : net.params()) golden.push_back(*p.value);
  for (auto& p : net.params()) p.value->fill(9.0f);

  store.apply_mask(net, prune::NetworkMask{});  // empty mask
  auto after = net.params();
  for (std::size_t i = 0; i < after.size(); ++i)
    EXPECT_TRUE(after[i].value->equals(golden[i]));
}

TEST(WeightStore, ThousandCyclesStayBitExact) {
  nn::Network net = tiny_conv_net(5);
  const WeightStore store = WeightStore::snapshot(net);
  std::vector<nn::Tensor> golden;
  for (auto& p : net.params()) golden.push_back(*p.value);

  // Reversibility claim at endurance scale: 1000 prune/restore cycles
  // across two different masks leave every element BIT-identical (memcmp,
  // not approximate equality) — no drift, ever.
  const prune::NetworkMask mask_a = prune::plan_unstructured(net, 0.5);
  const prune::NetworkMask mask_b = prune::plan_unstructured(net, 0.8);
  for (int cycle = 0; cycle < 1000; ++cycle) {
    store.apply_mask(net, (cycle % 2 == 0) ? mask_a : mask_b);
    store.restore_all(net);
  }
  auto after = net.params();
  ASSERT_EQ(after.size(), golden.size());
  for (std::size_t i = 0; i < after.size(); ++i) {
    ASSERT_EQ(after[i].value->numel(), golden[i].numel());
    EXPECT_EQ(std::memcmp(after[i].value->raw(), golden[i].raw(),
                          sizeof(float) *
                              static_cast<std::size_t>(golden[i].numel())),
              0)
        << after[i].name;
  }
}

}  // namespace
}  // namespace rrp::core
