// DepthwiseConv2D: forward/backward correctness, channel-coupled pruning
// semantics, compaction equivalence, serialization, MobileNet integration.
#include <gtest/gtest.h>

#include "core/reversible_pruner.h"
#include "models/zoo.h"
#include "nn/serialize.h"
#include "prune/compact.h"
#include "prune/levels.h"
#include "test_support.h"
#include "util/checks.h"

namespace rrp::nn {
namespace {

using rrp::testing::gradient_check;
using rrp::testing::random_tensor;

TEST(Depthwise, IdentityKernelPassesThrough) {
  DepthwiseConv2D dw("d", 2, 3, 1, 1);
  dw.weight().fill(0.0f);
  dw.weight().at(0, 0, 1, 1) = 1.0f;
  dw.weight().at(1, 0, 1, 1) = 1.0f;
  const Tensor x = random_tensor({1, 2, 5, 5}, 1);
  const Tensor y = dw.forward(x, false);
  EXPECT_NEAR(y.max_abs_diff(x), 0.0f, 1e-6f);
}

TEST(Depthwise, ChannelsAreIndependent) {
  DepthwiseConv2D dw("d", 2, 3, 1, 1);
  Rng rng(2);
  for (float& v : dw.weight().data())
    v = static_cast<float>(rng.uniform(-1, 1));
  // Zeroing channel 1's input must not change channel 0's output.
  Tensor x = random_tensor({1, 2, 5, 5}, 3);
  const Tensor y_full = dw.forward(x, false);
  for (int i = 0; i < 25; ++i) x[25 + i] = 0.0f;  // channel 1 plane
  const Tensor y_zeroed = dw.forward(x, false);
  for (int i = 0; i < 25; ++i)
    EXPECT_EQ(y_full[i], y_zeroed[i]) << "channel 0 output changed at " << i;
}

TEST(Depthwise, MatchesEquivalentGroupedDenseConv) {
  // A depthwise conv equals a dense conv whose cross-channel taps are zero.
  const int c = 3, k = 3;
  DepthwiseConv2D dw("d", c, k, 1, 1);
  Conv2D dense("c", c, c, k, 1, 1);
  dense.weight().fill(0.0f);
  Rng rng(4);
  for (int ch = 0; ch < c; ++ch)
    for (int a = 0; a < k; ++a)
      for (int b = 0; b < k; ++b) {
        const float v = static_cast<float>(rng.uniform(-1, 1));
        dw.weight().at(ch, 0, a, b) = v;
        dense.weight().at(ch, ch, a, b) = v;
      }
  for (int ch = 0; ch < c; ++ch) {
    const float b = static_cast<float>(rng.uniform(-1, 1));
    dw.bias()[ch] = b;
    dense.bias()[ch] = b;
  }
  const Tensor x = random_tensor({2, c, 6, 6}, 5);
  EXPECT_LT(dw.forward(x, false).max_abs_diff(dense.forward(x, false)),
            1e-5f);
}

TEST(Depthwise, StrideAndPaddingGeometry) {
  DepthwiseConv2D dw("d", 4, 3, 2, 1);
  EXPECT_EQ(dw.output_shape({1, 4, 8, 8}), (Shape{1, 4, 4, 4}));
  EXPECT_EQ(dw.macs({1, 4, 8, 8}), 4LL * 9 * 4 * 4);
  EXPECT_THROW(dw.forward(Tensor({1, 3, 8, 8}), false), PreconditionError);
}

TEST(Depthwise, EffectiveMacsTrackSparsity) {
  DepthwiseConv2D dw("d", 2, 3, 1, 1);
  dw.weight().fill(1.0f);
  const Shape in{1, 2, 8, 8};
  const std::int64_t dense = dw.effective_macs(in);
  for (int a = 0; a < 3; ++a)
    for (int b = 0; b < 3; ++b) dw.weight().at(0, 0, a, b) = 0.0f;
  EXPECT_EQ(dw.effective_macs(in), dense / 2);
}

TEST(Depthwise, GradientCheck) {
  Network net("n");
  net.emplace<Conv2D>("c", 1, 3, 3, 1, 1);
  net.emplace<ReLU>("r1");
  net.emplace<DepthwiseConv2D>("dw", 3, 3, 1, 1);
  net.emplace<ReLU>("r2");
  net.emplace<GlobalAvgPool>("gap");
  net.emplace<Linear>("fc", 3, 3);
  Rng rng(6);
  init_network(net, rng);
  const Tensor x = random_tensor({2, 1, 6, 6}, 7);
  EXPECT_LT(gradient_check(net, x, {0, 2}), 0.05);
}

TEST(Depthwise, SerializationRoundTrip) {
  Network net("n");
  auto& dw = net.emplace<DepthwiseConv2D>("dw", 3, 3, 2, 1);
  dw.set_out_prunable(false);
  Rng rng(8);
  init_network(net, rng);
  Network copy = nn::deserialize_network(nn::serialize_network(net));
  auto* dw2 = dynamic_cast<DepthwiseConv2D*>(copy.find("dw"));
  ASSERT_NE(dw2, nullptr);
  EXPECT_EQ(dw2->channels(), 3);
  EXPECT_EQ(dw2->stride(), 2);
  EXPECT_FALSE(dw2->out_prunable());
  EXPECT_TRUE(dw2->weight().equals(dw.weight()));
  const Tensor x = random_tensor({1, 3, 7, 7}, 9);
  EXPECT_TRUE(net.forward(x, false).equals(copy.forward(x, false)));
}

}  // namespace
}  // namespace rrp::nn

namespace rrp::prune {
namespace {

using rrp::testing::random_tensor;

/// stem conv -> depthwise -> pointwise -> gap -> head; stem prunable.
nn::Network sep_net(std::uint64_t seed) {
  nn::Network net("sep");
  net.emplace<nn::Conv2D>("stem", 1, 6, 3, 1, 1);
  net.emplace<nn::ReLU>("r1");
  auto& dw = net.emplace<nn::DepthwiseConv2D>("dw", 6, 3, 1, 1);
  dw.set_out_prunable(false);  // follows stem's liveness
  net.emplace<nn::ReLU>("r2");
  net.emplace<nn::Conv2D>("pw", 6, 8, 1, 1, 0);
  net.emplace<nn::ReLU>("r3");
  net.emplace<nn::GlobalAvgPool>("gap");
  auto& head = net.emplace<nn::Linear>("head", 8, 3);
  head.set_out_prunable(false);
  Rng rng(seed);
  nn::init_network(net, rng);
  return net;
}

TEST(DepthwisePrune, UpstreamPruningKillsDepthwiseChannels) {
  nn::Network net = sep_net(1);
  ChannelMask cm{"stem", {1, 0, 1, 0, 1, 1}};
  const NetworkMask mask = lower_channel_masks(net, {cm}, {1, 1, 8, 8});
  const auto* dw_keep = mask.find("dw.weight");
  ASSERT_NE(dw_keep, nullptr);
  // channels 1 and 3 dead -> their 9 filter taps pruned
  for (int t = 0; t < 9; ++t) {
    EXPECT_EQ((*dw_keep)[9 + t], 0);
    EXPECT_EQ((*dw_keep)[27 + t], 0);
    EXPECT_EQ((*dw_keep)[t], 1);
  }
  // depthwise bias must be zeroed for dead channels too
  const auto* db = mask.find("dw.bias");
  ASSERT_NE(db, nullptr);
  EXPECT_EQ((*db)[1], 0);
  EXPECT_EQ((*db)[0], 1);
  // and the pointwise consumer's input slices
  const auto* pw_keep = mask.find("pw.weight");
  ASSERT_NE(pw_keep, nullptr);
}

TEST(DepthwisePrune, MaskedEqualsCompacted) {
  for (double ratio : {0.2, 0.4, 0.6}) {
    nn::Network net = sep_net(2);
    const auto masks = plan_structured(net, ratio);
    nn::Network masked = net.clone();
    lower_channel_masks(masked, masks, {1, 1, 8, 8}).apply(masked);
    nn::Network compacted = compact_network(net, masks, {1, 1, 8, 8});
    const nn::Tensor x = random_tensor({2, 1, 8, 8}, 3);
    EXPECT_LT(masked.forward(x, false).max_abs_diff(
                  compacted.forward(x, false)),
              1e-4f)
        << "ratio " << ratio;
    auto* dw = dynamic_cast<nn::DepthwiseConv2D*>(compacted.find("dw"));
    ASSERT_NE(dw, nullptr);
    EXPECT_LT(dw->channels(), 6);  // physically shrunk with its producer
  }
}

TEST(DepthwisePrune, NonPrunableDepthwiseRejectsDirectMask) {
  nn::Network net = sep_net(4);
  ChannelMask cm{"dw", {1, 0, 1, 0, 1, 1}};
  EXPECT_THROW(lower_channel_masks(net, {cm}, {1, 1, 8, 8}),
               PreconditionError);
}

TEST(DepthwisePrune, ReversibleWalkOnSeparableNet) {
  nn::Network net = sep_net(5);
  std::vector<nn::Tensor> golden;
  for (auto& p : net.params()) golden.push_back(*p.value);
  auto lib = PruneLevelLibrary::build_structured(net, {0.0, 0.3, 0.6},
                                                 {1, 1, 8, 8});
  EXPECT_TRUE(lib.verify_nested());
  {
    core::ReversiblePruner rp(net, std::move(lib));
    Rng rng(6);
    for (int i = 0; i < 20; ++i)
      rp.set_level(rng.uniform_int(0, rp.level_count() - 1));
  }
  auto after = net.params();
  for (std::size_t i = 0; i < after.size(); ++i)
    EXPECT_TRUE(after[i].value->equals(golden[i]));
}

TEST(DepthwisePrune, MobileNetLiteProvisionable) {
  Rng rng(7);
  nn::Network net = models::build_model(models::ModelKind::MobileNetLite, rng);
  EXPECT_EQ(net.output_shape(models::zoo_input_shape()),
            (nn::Shape{1, models::zoo_num_classes()}));
  auto lib = PruneLevelLibrary::build_structured(
      net, {0.0, 0.3, 0.6}, models::zoo_input_shape(),
      ImportanceMetric::L1, 2);
  EXPECT_TRUE(lib.verify_nested());
  // Compacted level must shrink both pointwise AND depthwise layers.
  nn::Network c =
      compact_network(net, lib.channel_masks(2), models::zoo_input_shape());
  auto* dw2 = dynamic_cast<nn::DepthwiseConv2D*>(c.find("dw2"));
  ASSERT_NE(dw2, nullptr);
  EXPECT_LT(dw2->channels(), 32);
  const nn::Tensor x = random_tensor({1, 1, 16, 16}, 8);
  nn::Network masked = net.clone();
  lib.mask(2).apply(masked);
  EXPECT_LT(masked.forward(x, false).max_abs_diff(c.forward(x, false)),
            1e-4f);
}

}  // namespace
}  // namespace rrp::prune
