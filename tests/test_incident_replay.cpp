// test_incident_replay.cpp — record a faulted closed loop into an incident
// bundle and replay it byte-identically (sim/incident_replay.h).  The
// flight-recorder acceptance path: a fault-induced SLO incident produces a
// bundle, and `replay_bundle` reproduces the recorded telemetry byte-for-
// byte at every thread-pool size.
#include <gtest/gtest.h>

#include <sstream>

#include "core/integrity.h"
#include "core/weight_store.h"
#include "nn/init.h"
#include "sim/incident_replay.h"
#include "sim/suites.h"
#include "test_support.h"
#include "util/thread_pool.h"

namespace rrp::sim {
namespace {

// Same closed-loop fixture as test_faults.cpp: a briefly-trained conv net
// on the vision task's default geometry with a 3-level structured ladder.
class ReplayFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = nn::Network("replay-net");
    net_.emplace<nn::Conv2D>("conv1", 1, 6, 3, 1, 1);
    net_.emplace<nn::ReLU>("relu1");
    net_.emplace<nn::MaxPool>("pool1", 4, 4);
    net_.emplace<nn::Flatten>("flatten");
    net_.emplace<nn::Linear>("fc1", 6 * 4 * 4, 16);
    net_.emplace<nn::ReLU>("relu2");
    auto& head = net_.emplace<nn::Linear>("head", 16, kNumClasses);
    head.set_out_prunable(false);
    Rng rng(1);
    nn::init_network(net_, rng);

    RunConfig cfg;
    Rng data_rng(2);
    data_ = make_dataset(400, cfg.vision, data_rng);
    rrp::testing::quick_train(net_, data_, 4);

    lib_ = prune::PruneLevelLibrary::build_structured(
        net_, {0.0, 0.3, 0.6}, input_shape(cfg.vision));

    inputs_.net = &net_;
    inputs_.levels = &lib_;
    inputs_.certified.max_level_for = {2, 1, 1, 0};
  }

  // A spec whose weight-dominated fault schedule reliably raises
  // integrity-detection incidents within a short run.
  BlackboxRunSpec spec() const {
    BlackboxRunSpec s;
    s.model = "replay-net";
    s.suite = "cut_in";
    s.policy = "fixed0";  // fixed level: flips are never masked by switches
    s.frames = 160;
    s.scenario_seed = 905;
    s.noise_seed = 905 ^ 0x5DEECE66Dull;
    s.deadline_ms = 5.0;
    s.scrub_period_frames = 10;
    s.recorder_capacity = 64;
    FaultMix mix;
    mix.weight_bit_flip = 5.0;
    s.faults = FaultPlan::random_plan(31337, s.frames, 6, mix);
    return s;
  }

  nn::Network net_;
  nn::Dataset data_;
  prune::PruneLevelLibrary lib_;
  CampaignInputs inputs_;
};

std::string bundle_bytes(const core::IncidentBundle& bundle) {
  std::ostringstream os(std::ios::binary);
  core::write_incident_bundle(bundle, os);
  return os.str();
}

TEST(RecordedFaultConversion, FaultEventRoundTripsLosslessly) {
  FaultPlan plan = FaultPlan::random_plan(99, 400, 12);
  const std::vector<core::RecordedFault> recorded = record_fault_plan(plan);
  ASSERT_EQ(recorded.size(), plan.events.size());
  const FaultPlan back = fault_plan_from_recorded(recorded);
  ASSERT_EQ(back.events.size(), plan.events.size());
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    const FaultEvent& a = plan.events[i];
    const FaultEvent& b = back.events[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.frame, b.frame);
    EXPECT_EQ(a.duration_frames, b.duration_frames);
    EXPECT_EQ(a.magnitude, b.magnitude);
    EXPECT_EQ(a.target, b.target);
    EXPECT_EQ(a.bit, b.bit);
    EXPECT_EQ(a.stuck, b.stuck);
    EXPECT_EQ(a.count, b.count);
  }
}

TEST_F(ReplayFixture, FaultRunRaisesIncidentsAndPacksTheBundle) {
  const core::WeightStore before = core::WeightStore::snapshot(net_);
  const BlackboxRunResult res = run_blackbox(spec(), inputs_);

  // Weight faults under a 10-frame scrub: detections MUST surface as
  // incidents (note_event per detection frame).
  EXPECT_TRUE(res.incident);
  ASSERT_FALSE(res.bundle.incidents.empty());
  bool any_integrity = false;
  for (const core::Incident& inc : res.bundle.incidents)
    any_integrity |= inc.slo_id.find("integrity") != std::string::npos;
  EXPECT_TRUE(any_integrity);

  // The bundle carries the whole spec back out.
  EXPECT_EQ(res.bundle.context.model, "replay-net");
  EXPECT_EQ(res.bundle.context.suite, "cut_in");
  EXPECT_EQ(res.bundle.context.policy, "fixed0");
  EXPECT_EQ(res.bundle.context.frames, 160);
  EXPECT_EQ(res.bundle.faults.size(), spec().faults.events.size());
  EXPECT_FALSE(res.bundle.slos.empty());
  EXPECT_FALSE(res.bundle.records.empty());
  EXPECT_LE(res.bundle.records.size(), std::size_t{64});
  EXPECT_NE(res.bundle.context.telemetry_digest, 0u);

  const BlackboxRunSpec round = spec_from_bundle(res.bundle);
  EXPECT_EQ(round.suite, "cut_in");
  EXPECT_EQ(round.frames, 160);
  EXPECT_EQ(round.scenario_seed, 905u);
  EXPECT_EQ(round.faults.events.size(), spec().faults.events.size());

  // run_blackbox restored the (fault-corrupted) network bit-exactly.
  const core::IntegrityChecker checker(before);
  EXPECT_TRUE(checker.scrub(net_, lib_.mask(0)).clean());
}

TEST_F(ReplayFixture, ReplayIsByteIdenticalAtEveryThreadCount) {
  std::string recorded_bytes;
  core::IncidentBundle bundle;
  {
    ThreadCountGuard guard(1);
    const BlackboxRunResult res = run_blackbox(spec(), inputs_);
    ASSERT_TRUE(res.incident);
    bundle = res.bundle;
    recorded_bytes = bundle_bytes(bundle);
  }

  for (int threads : {1, 2, 8}) {
    ThreadCountGuard guard(threads);
    const ReplayResult r = replay_bundle(bundle, inputs_);
    EXPECT_TRUE(r.records_match) << "threads=" << threads;
    EXPECT_TRUE(r.telemetry_match) << "threads=" << threads;
    EXPECT_TRUE(r.incidents_match) << "threads=" << threads;
    EXPECT_TRUE(r.match) << "threads=" << threads;
    EXPECT_EQ(r.recorded_csv, r.replayed_csv) << "threads=" << threads;
    EXPECT_EQ(r.recorded_telemetry_digest, r.replayed_telemetry_digest);
    EXPECT_EQ(r.summary.frames, 160);
  }

  // Recording itself is thread-count-invariant too: re-record at 8 threads
  // and compare the bundles byte-for-byte.
  {
    ThreadCountGuard guard(8);
    const BlackboxRunResult res = run_blackbox(spec(), inputs_);
    EXPECT_EQ(bundle_bytes(res.bundle), recorded_bytes);
  }
}

TEST_F(ReplayFixture, TamperedBundleFailsReplay) {
  ThreadCountGuard guard(2);
  const BlackboxRunResult res = run_blackbox(spec(), inputs_);
  ASSERT_TRUE(res.incident);

  // Doctor one recorded latency: the window CSV no longer matches what the
  // re-run produces, so replay must report a mismatch (the forensic
  // property: recorded evidence cannot be silently edited).
  core::IncidentBundle doctored = res.bundle;
  ASSERT_FALSE(doctored.records.empty());
  doctored.records.back().latency_ms += 0.125;
  const ReplayResult r = replay_bundle(doctored, inputs_);
  EXPECT_FALSE(r.records_match);
  EXPECT_FALSE(r.match);
  // The re-run itself still matches the ORIGINAL telemetry digest (the
  // context was untouched), so the mismatch is pinned to the records.
  EXPECT_TRUE(r.telemetry_match);
}

}  // namespace
}  // namespace rrp::sim
