// test_rrp_lint.cpp — the linter linted.
//
// Drives the rrp_lint rule engine (tools/rrp_lint/lint.cpp) against the
// fixture tree in tests/lint_fixtures/: every rule must fire on exactly
// the seeded lines, valid suppressions must silence their target, the
// whitelists must hold, and — the actual gate — the real source tree must
// come back clean.  Paths are injected by tests/CMakeLists.txt as
// RRP_LINT_FIXTURE_DIR / RRP_LINT_REPO_ROOT.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.h"

namespace {

using rrp::lint::Finding;

std::vector<Finding> fixture_findings() {
  static const std::vector<Finding> findings =
      rrp::lint::lint_tree(RRP_LINT_FIXTURE_DIR);
  return findings;
}

/// Findings for one fixture file, as (line, rule) pairs.
std::vector<std::pair<int, std::string>> fired(const std::string& file) {
  std::vector<std::pair<int, std::string>> out;
  for (const Finding& f : fixture_findings())
    if (f.file == file) out.push_back({f.line, f.rule});
  return out;
}

bool has(const std::vector<std::pair<int, std::string>>& v, int line,
         const std::string& rule) {
  return std::find(v.begin(), v.end(), std::make_pair(line, rule)) != v.end();
}

TEST(RrpLint, DeterminismRandomRule) {
  const auto v = fired("src/nn/bad_random.cpp");
  EXPECT_TRUE(has(v, 3, "determinism-random")) << "#include <random>";
  EXPECT_TRUE(has(v, 6, "determinism-random")) << "srand(42)";
  EXPECT_TRUE(has(v, 7, "determinism-random")) << "std::random_device";
  EXPECT_TRUE(has(v, 8, "determinism-random")) << "system_clock::now()";
  EXPECT_TRUE(has(v, 11, "determinism-random")) << "rand()";
  // The raw system_clock read trips the chrono rule too (R5 closes the
  // steady/high_resolution gap; system_clock is banned by both).
  EXPECT_TRUE(has(v, 8, "determinism-chrono"));
  // Banned names inside comments or string literals never fire.
  EXPECT_FALSE(has(v, 14, "determinism-random"));
  EXPECT_FALSE(has(v, 15, "determinism-random"));
  EXPECT_EQ(v.size(), 6u);
}

TEST(RrpLint, DeterminismChronoRule) {
  const auto v = fired("src/nn/bad_chrono.cpp");
  EXPECT_TRUE(has(v, 3, "determinism-chrono")) << "#include <chrono>";
  EXPECT_TRUE(has(v, 5, "determinism-chrono")) << "std::chrono::steady_clock";
  EXPECT_TRUE(has(v, 6, "determinism-chrono")) << "bare high_resolution_clock";
  EXPECT_TRUE(has(v, 7, "determinism-chrono")) << "std::chrono duration type";
  // A documented suppression silences its line; comments and string
  // literals never fire.
  EXPECT_FALSE(has(v, 10, "determinism-chrono"));
  EXPECT_EQ(v.size(), 4u);
}

TEST(RrpLint, ChronoWhitelistCoversTimeFacades) {
  // The Timer facade, the span tracer's wall capture, the pool's timed
  // waits and telemetry's timestamps are the sanctioned chrono users.
  EXPECT_TRUE(
      rrp::lint::lint_file("src/util/timer.h", "#include <chrono>\n").empty());
  EXPECT_TRUE(rrp::lint::lint_file("src/util/trace.cpp",
                                   "using c = std::chrono::steady_clock;\n")
                  .empty());
  // Everyone else goes through Timer.
  const auto v =
      rrp::lint::lint_file("src/core/controller.cpp", "#include <chrono>\n");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "determinism-chrono");
}

// The flight recorder's determinism contract is lint-enforced: a bundle's
// bytes must be identical on every host, so core/flight_recorder.* and
// core/slo.* stay OFF kChronoWhitelist (all record time is modeled
// platform time or frame indices), and core may never reach up into sim
// for scenario state (R3).
TEST(RrpLint, FlightRecorderStaysOffTheChronoWhitelist) {
  const auto v = fired("src/core/bad_recorder_chrono.cpp");
  EXPECT_TRUE(has(v, 6, "determinism-chrono")) << "#include <chrono>";
  EXPECT_TRUE(has(v, 7, "layering")) << "core -> sim is upward";
  EXPECT_TRUE(has(v, 11, "determinism-chrono")) << "wall-clock timestamp";
  EXPECT_EQ(v.size(), 3u);
  // The contract holds for the real recorder/SLO translation units, not
  // just the fixture name: any future <chrono> include there must fire.
  EXPECT_FALSE(rrp::lint::lint_file("src/core/flight_recorder.cpp",
                                    "#include <chrono>\n")
                   .empty());
  EXPECT_FALSE(
      rrp::lint::lint_file("src/core/slo.cpp", "#include <chrono>\n").empty());
}

// The fault-injection layer is intentionally not random-whitelisted: it
// must draw exclusively from the seeded rrp::Rng, so ambient entropy under
// src/sim/ still fires R1a.
TEST(RrpLint, FaultSimTreeIsNotRandomWhitelisted) {
  const auto v = fired("src/sim/bad_faults.cpp");
  EXPECT_TRUE(has(v, 4, "determinism-random")) << "#include <random>";
  EXPECT_TRUE(has(v, 7, "determinism-random")) << "std::random_device";
  EXPECT_EQ(v.size(), 2u);
}

// The scenario DSL and the Monte-Carlo campaign carry the same contract:
// (spec, seed) expands byte-identically and aggregates are thread-count
// invariant, so sim/scenario_gen.* stays off kRandomWhitelist and
// sim/campaign.* stays off both kRandomWhitelist and kChronoWhitelist.
TEST(RrpLint, ScenarioGenAndCampaignStayOffTheDeterminismWhitelists) {
  const auto gen = fired("src/sim/bad_scenario_gen.cpp");
  EXPECT_TRUE(has(gen, 5, "determinism-random")) << "#include <random>";
  EXPECT_TRUE(has(gen, 8, "determinism-random")) << "std::random_device";
  EXPECT_EQ(gen.size(), 2u);

  const auto camp = fired("src/sim/bad_campaign.cpp");
  EXPECT_TRUE(has(camp, 5, "determinism-chrono")) << "#include <chrono>";
  EXPECT_TRUE(has(camp, 8, "determinism-chrono")) << "steady_clock::now()";
  EXPECT_TRUE(has(camp, 9, "determinism-chrono")) << "duration + clock read";
  EXPECT_GE(camp.size(), 3u);

  // The contract holds for the real translation units, not just the
  // fixture names: ambient entropy or a raw clock there must fire.
  EXPECT_FALSE(rrp::lint::lint_file("src/sim/scenario_gen.cpp",
                                    "#include <random>\n")
                   .empty());
  EXPECT_FALSE(
      rrp::lint::lint_file("src/sim/campaign.cpp", "#include <chrono>\n")
          .empty());
  EXPECT_FALSE(
      rrp::lint::lint_file("src/sim/campaign.cpp", "#include <random>\n")
          .empty());
}

// The serving engine carries the strongest determinism contract in the
// tree (DESIGN.md invariant 16: per-stream reports and the admission
// trace are byte-identical at any RRP_THREADS), so src/serve stays off
// kRandomWhitelist, kThreadWhitelist AND kChronoWhitelist — and, sitting
// below models in the layer DAG, must never include upward.
TEST(RrpLint, ServeStaysOffEveryDeterminismWhitelist) {
  const auto v = fired("src/serve/bad_serve.cpp");
  EXPECT_TRUE(has(v, 8, "determinism-chrono")) << "#include <chrono>";
  EXPECT_TRUE(has(v, 9, "determinism-random")) << "#include <random>";
  EXPECT_TRUE(has(v, 10, "determinism-thread")) << "#include <thread>";
  EXPECT_TRUE(has(v, 12, "layering")) << "serve -> models is upward";
  EXPECT_TRUE(has(v, 15, "determinism-random")) << "std::random_device";
  EXPECT_TRUE(has(v, 17, "determinism-thread")) << "raw std::thread";
  EXPECT_GE(v.size(), 6u);

  // The contract holds for the real translation units, not just the
  // fixture name.
  EXPECT_FALSE(rrp::lint::lint_file("src/serve/serve_engine.cpp",
                                    "#include <random>\n")
                   .empty());
  EXPECT_FALSE(rrp::lint::lint_file("src/serve/serve_engine.cpp",
                                    "#include <chrono>\n")
                   .empty());
  EXPECT_FALSE(rrp::lint::lint_file("src/serve/admission.cpp",
                                    "#include <thread>\n")
                   .empty());
  // Downward includes (serve -> sim) stay legal.
  EXPECT_TRUE(rrp::lint::lint_file("src/serve/serve_engine.cpp",
                                   "#include \"sim/runner.h\"\n")
                  .empty());
}

// The observability plane's whitelist boundary (DESIGN.md §7/§8): the
// wall profiler (util/wprof.*) aggregates under a plain mutex, so it is
// thread-whitelisted — and NOTHING else.  Its measured spans flow
// through the rrp::Timer facade, so the chrono and random rules keep
// applying to it, while the exporters (core/metrics_export.*,
// serve/obs.*) are pure functions of registry state and sit on NO
// whitelist at all (invariant 17).
TEST(RrpLint, ObservabilityPlaneWhitelistBoundaries) {
  // The fixture name shares the "src/util/wprof." prefix, so the thread
  // whitelist genuinely applies to it: the <mutex> include and both
  // std::mutex lines stay silent while R1a/R5 keep firing.
  const auto wp = fired("src/util/wprof.bad.cpp");
  EXPECT_TRUE(has(wp, 8, "determinism-random")) << "#include <random>";
  EXPECT_TRUE(has(wp, 9, "determinism-chrono")) << "#include <chrono>";
  EXPECT_TRUE(has(wp, 13, "determinism-random")) << "mt19937 / random_device";
  EXPECT_TRUE(has(wp, 16, "determinism-random")) << "argless now()";
  EXPECT_TRUE(has(wp, 16, "determinism-chrono")) << "std::chrono read";
  EXPECT_EQ(wp.size(), 5u) << "only the mutex machinery stays silent";

  const auto obs = fired("src/serve/bad_obs.cpp");
  EXPECT_TRUE(has(obs, 8, "determinism-chrono")) << "#include <chrono>";
  EXPECT_TRUE(has(obs, 11, "determinism-chrono")) << "steady_clock::now()";
  EXPECT_TRUE(has(obs, 11, "determinism-random")) << "argless now()";
  EXPECT_TRUE(has(obs, 12, "determinism-chrono")) << "duration_cast";
  EXPECT_EQ(obs.size(), 4u);

  // The contract holds for the real translation units, not just the
  // fixture names.
  EXPECT_FALSE(rrp::lint::lint_file("src/util/wprof.cpp",
                                    "std::chrono::steady_clock::now();\n")
                   .empty());
  EXPECT_TRUE(
      rrp::lint::lint_file("src/util/wprof.cpp", "std::mutex m;\n").empty());
  EXPECT_FALSE(
      rrp::lint::lint_file("src/util/wprof.cpp", "#include <random>\n")
          .empty());
  EXPECT_FALSE(rrp::lint::lint_file("src/core/metrics_export.cpp",
                                    "#include <chrono>\n")
                   .empty());
  EXPECT_FALSE(
      rrp::lint::lint_file("src/serve/obs.cpp", "#include <chrono>\n").empty());
  EXPECT_FALSE(
      rrp::lint::lint_file("src/serve/obs.cpp", "#include <random>\n").empty());
}

TEST(RrpLint, DeterminismThreadRule) {
  const auto v = fired("src/nn/bad_thread.cpp");
  EXPECT_TRUE(has(v, 3, "determinism-thread")) << "#include <thread>";
  EXPECT_TRUE(has(v, 6, "determinism-thread")) << "std::mutex";
  EXPECT_TRUE(has(v, 7, "determinism-thread")) << "std::thread";
  EXPECT_TRUE(has(v, 8, "determinism-thread")) << "std::async";
  // hardware_concurrency is a read-only query, allowed everywhere.
  EXPECT_FALSE(has(v, 10, "determinism-thread"));
  EXPECT_EQ(v.size(), 4u);
}

TEST(RrpLint, FloatAccumulatorRule) {
  const auto v = fired("src/nn/gemm_fixture.cpp");
  EXPECT_TRUE(has(v, 6, "float-accumulator")) << "float acc += in loop";
  // double accumulator and per-iteration float both stay silent.
  EXPECT_EQ(v.size(), 1u);
}

TEST(RrpLint, FloatAccumulatorCoversMicroKernelFiles) {
  // "kernel" in the file name is enough — no gemm/conv/depthwise needed —
  // so new SIMD micro-kernel TUs are covered the day they are added.
  const auto v = fired("src/nn/bad_kernels.cpp");
  EXPECT_TRUE(has(v, 8, "float-accumulator")) << "float acc += in loop";
  // Per-term accumulation into C memory (the sanctioned micro-kernel
  // contract) stays silent.
  EXPECT_EQ(v.size(), 1u);
  // The real micro-kernel TUs are in scope for R2 by name:
  const auto real = rrp::lint::lint_file(
      "src/nn/gemm_kernels_avx2.cpp",
      "float f(const float* a, int n) {\n"
      "  float s = 0.0f;\n"
      "  for (int i = 0; i < n; ++i) s += a[i];\n"
      "  return s;\n"
      "}\n");
  ASSERT_EQ(real.size(), 1u);
  EXPECT_EQ(real[0].rule, "float-accumulator");
}

TEST(RrpLint, FloatAccumulatorScopedToKernels) {
  // The same float-accumulator pattern outside gemm/conv/depthwise files
  // is not part of the contract.  bad_logging.cpp is an nn file but not a
  // kernel: synthesize the check directly.
  const auto findings = rrp::lint::lint_file(
      "src/nn/layers_pool.cpp",
      "float m(const float* a, int n) {\n"
      "  float acc = 0.0f;\n"
      "  for (int i = 0; i < n; ++i) acc += a[i];\n"
      "  return acc;\n"
      "}\n");
  EXPECT_TRUE(findings.empty());
  const auto kernel = rrp::lint::lint_file(
      "src/nn/layers_conv.cpp",
      "float m(const float* a, int n) {\n"
      "  float acc = 0.0f;\n"
      "  for (int i = 0; i < n; ++i) acc += a[i];\n"
      "  return acc;\n"
      "}\n");
  ASSERT_EQ(kernel.size(), 1u);
  EXPECT_EQ(kernel[0].rule, "float-accumulator");
  EXPECT_EQ(kernel[0].line, 3);
}

TEST(RrpLint, LayeringRule) {
  const auto v = fired("src/nn/bad_layering.cpp");
  EXPECT_TRUE(has(v, 2, "layering")) << "nn -> core is upward";
  EXPECT_TRUE(has(v, 3, "layering")) << "nn -> models is upward";
  // Same-module and downward includes are fine.
  EXPECT_FALSE(has(v, 4, "layering"));
  EXPECT_FALSE(has(v, 5, "layering"));
  EXPECT_EQ(v.size(), 2u);
}

TEST(RrpLint, HygieneHeaderRules) {
  const auto v = fired("src/nn/bad_header.h");
  EXPECT_TRUE(has(v, 7, "hygiene-using-namespace"));
  EXPECT_TRUE(has(v, 16, "hygiene-override")) << "virtual without override";
  // Base-class virtuals, override'd members and destructors are silent.
  EXPECT_EQ(v.size(), 2u);
}

TEST(RrpLint, HygieneLoggingRule) {
  const auto v = fired("src/nn/bad_logging.cpp");
  EXPECT_TRUE(has(v, 6, "hygiene-logging")) << "std::cout";
  EXPECT_TRUE(has(v, 7, "hygiene-logging")) << "std::cerr";
  EXPECT_TRUE(has(v, 8, "hygiene-logging")) << "printf";
  EXPECT_EQ(v.size(), 3u);
}

TEST(RrpLint, SuppressionsSilenceFindings) {
  EXPECT_TRUE(fired("src/nn/suppressed_ok.cpp").empty());
}

TEST(RrpLint, MalformedSuppressionsAreFindings) {
  const auto v = fired("src/nn/bad_suppression.cpp");
  EXPECT_TRUE(has(v, 4, "bad-suppression")) << "missing reason";
  EXPECT_TRUE(has(v, 5, "determinism-random"))
      << "reason-less marker must not silence the violation";
  EXPECT_TRUE(has(v, 7, "bad-suppression")) << "unknown rule id";
  EXPECT_EQ(v.size(), 3u);
}

TEST(RrpLint, WhitelistsAndScopes) {
  // thread_pool.* may use every threading primitive.
  EXPECT_TRUE(fired("src/util/thread_pool.fixture.cpp").empty());
  // Apps own their stdout and may include any module.
  EXPECT_TRUE(fired("tools/clean_tool.cpp").empty());
  // A clean header stays clean.
  EXPECT_TRUE(fired("src/util/clean_util.h").empty());
}

TEST(RrpLint, TopLevelBlobCheck) {
  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() / "rrp_lint_blob_test";
  fs::remove_all(root);
  fs::create_directories(root / "cache");
  {
    std::ofstream txt(root / "README.md");
    txt << "text is fine\n";
    std::ofstream blob(root / "cache_mlp.rrpn", std::ios::binary);
    const char nulbuf[4] = {'\0', '\1', '\2', '\3'};
    blob.write(nulbuf, sizeof nulbuf);
    std::ofstream sneaky(root / "weights.dat", std::ios::binary);
    sneaky.write(nulbuf, sizeof nulbuf);  // NUL sniff, unknown extension
    std::ofstream nested(root / "cache" / "model.rrpn", std::ios::binary);
    nested.write(nulbuf, sizeof nulbuf);  // cache/ is the sanctioned home
  }
  const auto findings = rrp::lint::check_top_level(root.string());
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].file, "cache_mlp.rrpn");
  EXPECT_EQ(findings[0].rule, "top-level-blob");
  EXPECT_EQ(findings[1].file, "weights.dat");
  fs::remove_all(root);
}

TEST(RrpLint, ScannerBlanksLiteralsAndComments) {
  const rrp::lint::FileView view = rrp::lint::scan_file(
      "int a; // srand(1)\n"
      "const char* s = \"std::mutex\";\n"
      "/* time(0) */ int b;\n"
      "const char* r = R\"(rand())\";\n");
  ASSERT_EQ(view.code.size(), 5u);  // trailing newline yields an empty line
  EXPECT_EQ(view.code[0].find("srand"), std::string::npos);
  EXPECT_EQ(view.code[1].find("mutex"), std::string::npos);
  EXPECT_EQ(view.code[2].find("time"), std::string::npos);
  EXPECT_NE(view.code[2].find("int b;"), std::string::npos);
  EXPECT_EQ(view.code[3].find("rand"), std::string::npos);
  EXPECT_NE(view.comments[0].find("srand(1)"), std::string::npos);
}

TEST(RrpLint, RealTreeIsClean) {
  const auto findings = rrp::lint::lint_tree(RRP_LINT_REPO_ROOT);
  for (const Finding& f : findings) ADD_FAILURE() << rrp::lint::to_string(f);
}

// --------------------------------------------------------------------------
// R6/R7 interprocedural frame-path analysis (tools/rrp_lint/callgraph.cpp).
// --------------------------------------------------------------------------

TEST(RrpLintFramePath, AllocationRule) {
  const auto v = fired("src/core/fp_alloc.cpp");
  EXPECT_TRUE(has(v, 6, "frame-path-alloc")) << "new[] one hop from root";
  EXPECT_TRUE(has(v, 10, "frame-path-alloc")) << "malloc";
  EXPECT_TRUE(has(v, 11, "frame-path-alloc")) << "free";
  EXPECT_TRUE(has(v, 19, "frame-path-alloc")) << "delete[] in the root body";
  EXPECT_EQ(v.size(), 4u);
}

TEST(RrpLintFramePath, ContainerGrowthRule) {
  const auto v = fired("src/core/fp_growth.cpp");
  EXPECT_TRUE(has(v, 11, "frame-path-alloc")) << "push_back";
  EXPECT_TRUE(has(v, 12, "frame-path-alloc")) << "emplace_back";
  EXPECT_TRUE(has(v, 16, "frame-path-alloc")) << "resize";
  EXPECT_TRUE(has(v, 17, "frame-path-alloc")) << "reserve";
  EXPECT_TRUE(has(v, 18, "frame-path-alloc")) << "insert";
  EXPECT_EQ(v.size(), 5u);
}

TEST(RrpLintFramePath, LockRule) {
  const auto v = fired("src/core/fp_lock.cpp");
  EXPECT_TRUE(has(v, 12, "frame-path-lock")) << "RAII lock_guard token";
  EXPECT_TRUE(has(v, 16, "frame-path-lock")) << "explicit .lock()";
  // core is not thread-whitelisted, so R4 fires alongside — expected.
  EXPECT_TRUE(has(v, 4, "determinism-thread"));
  EXPECT_TRUE(has(v, 9, "determinism-thread"));
  EXPECT_TRUE(has(v, 12, "determinism-thread"));
  EXPECT_EQ(v.size(), 5u);
}

TEST(RrpLintFramePath, IoRule) {
  const auto v = fired("src/core/fp_io.cpp");
  EXPECT_TRUE(has(v, 8, "frame-path-io")) << "printf one hop from root";
  EXPECT_TRUE(has(v, 12, "frame-path-io")) << "ofstream token";
  // One printf is one frame-path-io finding — the resolver must not add a
  // spurious frame-path-unresolved for a printf-family name.
  EXPECT_FALSE(has(v, 8, "frame-path-unresolved"));
  // The per-file logging rule fires on the same line independently.
  EXPECT_TRUE(has(v, 8, "hygiene-logging"));
  EXPECT_EQ(v.size(), 3u);
}

TEST(RrpLintFramePath, ThrowRule) {
  const auto v = fired("src/core/fp_throw.cpp");
  EXPECT_TRUE(has(v, 5, "frame-path-throw")) << "throw two hops from root";
  EXPECT_EQ(v.size(), 1u);
}

TEST(RrpLintFramePath, RecursionRule) {
  const auto v = fired("src/core/fp_recursion.cpp");
  EXPECT_TRUE(has(v, 5, "frame-path-recursion")) << "direct self-recursion";
  EXPECT_TRUE(has(v, 12, "frame-path-recursion")) << "mutual cycle, even_step";
  EXPECT_TRUE(has(v, 17, "frame-path-recursion")) << "mutual cycle, odd_step";
  EXPECT_EQ(v.size(), 3u);
}

TEST(RrpLintFramePath, MarkerHygiene) {
  const auto v = fired("src/core/fp_marker.cpp");
  EXPECT_TRUE(has(v, 7, "bad-frame-path-marker")) << "stop without a reason";
  EXPECT_TRUE(has(v, 10, "bad-frame-path-marker")) << "unknown marker suffix";
  EXPECT_TRUE(has(v, 15, "bad-frame-path-marker")) << "dangling marker";
  EXPECT_EQ(v.size(), 3u);
}

TEST(RrpLintFramePath, LambdaBodyAttributedToEnclosingDef) {
  const auto v = fired("src/core/fp_lambda.cpp");
  EXPECT_TRUE(has(v, 11, "frame-path-alloc")) << "growth inside the lambda";
  EXPECT_TRUE(has(v, 12, "frame-path-alloc"));
  // The reasoned suppression silences the lambda-variable call site.
  EXPECT_EQ(v.size(), 2u);
}

TEST(RrpLintFramePath, OverloadsLinkConservatively) {
  const auto v = fired("src/core/fp_overload.cpp");
  EXPECT_TRUE(has(v, 11, "frame-path-alloc"))
      << "the dirty overload fires even though the clean one is called";
  EXPECT_EQ(v.size(), 1u);
}

TEST(RrpLintFramePath, TemplatesAreIndexed) {
  const auto v = fired("src/core/fp_template.cpp");
  EXPECT_TRUE(has(v, 9, "frame-path-alloc")) << "growth inside the template";
  EXPECT_EQ(v.size(), 1u);
}

TEST(RrpLintFramePath, MemberFunctionPointersAreUnresolved) {
  const auto v = fired("src/core/fp_memfn_ptr.cpp");
  EXPECT_TRUE(has(v, 10, "frame-path-unresolved")) << "(obj->*hook_)(v)";
  EXPECT_TRUE(has(v, 14, "frame-path-unresolved")) << "(obj.*hook_)(v)";
  EXPECT_EQ(v.size(), 2u);
}

TEST(RrpLintFramePath, VirtualDispatchAndExternCallees) {
  const auto v = fired("src/core/fp_virtual.cpp");
  EXPECT_TRUE(has(v, 21, "frame-path-alloc"))
      << "virtual call links to every override: the dirty one fires";
  EXPECT_TRUE(has(v, 42, "frame-path-unresolved")) << "undefined extern callee";
  // The stop-marked override's `new` is exempt (line 34), and the
  // suppressed vendor intrinsic stays silent (line 45).
  EXPECT_EQ(v.size(), 2u);
}

TEST(RrpLintFramePath, CleanRootStaysClean) {
  EXPECT_TRUE(fired("src/core/fp_clean.cpp").empty());
}

TEST(RrpLintFramePath, SingleLexPassPerFile) {
  rrp::lint::reset_lex_count();
  const rrp::lint::LintReport report =
      rrp::lint::lint_tree_report(RRP_LINT_FIXTURE_DIR);
  // Per-file rules, suppression scan and the interprocedural pass all
  // share ONE lex of each file.
  EXPECT_EQ(rrp::lint::lex_count(), report.files_scanned);
  EXPECT_EQ(report.lex_passes, report.files_scanned);
  EXPECT_GT(report.files_scanned, 0u);
}

TEST(RrpLintFramePath, ReportCountsRootsAndSuppressions) {
  const rrp::lint::LintReport report =
      rrp::lint::lint_tree_report(RRP_LINT_FIXTURE_DIR);
  // One root per fp_ fixture that declares one (alloc, growth, lock, io,
  // throw, recursion, lambda, overload, template, memfn, virtual, clean).
  EXPECT_EQ(report.frame_path_roots, 12);
  EXPECT_GT(report.frame_path_reachable, report.frame_path_roots)
      << "roots must drag their callees into the reachable set";
  EXPECT_GE(report.frame_path_stops, 1) << "fp_virtual's audited override";
  // The reasoned suppressions in the fixtures are retained, not dropped.
  EXPECT_FALSE(report.suppressed.empty());
}

TEST(RrpLintFramePath, RealTreeReport) {
  const rrp::lint::LintReport report =
      rrp::lint::lint_tree_report(RRP_LINT_REPO_ROOT);
  // The annotated real tree: controller step, provider set_levels,
  // sync_masked, scrub/repair, recorder, GEMM entry points and kernel
  // variants, conv/depthwise forwards.
  EXPECT_GE(report.frame_path_roots, 15);
  EXPECT_GT(report.frame_path_reachable, report.frame_path_roots);
  EXPECT_GE(report.frame_path_stops, 8);
  // Zero silent allowances: every suppression in the tree carries a
  // reason (reason-less markers are bad-suppression findings, and the
  // RealTreeIsClean gate above already proved there are none).
  EXPECT_GE(report.suppressed.size(), 10u);
}

TEST(RrpLintFramePath, JsonRoundTrip) {
  std::string err;
  EXPECT_TRUE(rrp::lint::json_self_test(&err)) << err;
  // The real report serializes without choking on message punctuation.
  const rrp::lint::LintReport report =
      rrp::lint::lint_tree_report(RRP_LINT_FIXTURE_DIR);
  const std::string json = rrp::lint::to_json(report);
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"frame-path-alloc\""), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\":true"), std::string::npos);
}

}  // namespace
