#include <gtest/gtest.h>

#include "sim/perception_criticality.h"
#include "sim/runner.h"
#include "sim/suites.h"
#include "test_support.h"
#include "util/checks.h"

namespace rrp::sim {
namespace {

using core::CriticalityClass;

nn::Tensor logits_for(int label, float margin) {
  nn::Tensor row({kNumClasses});
  row.fill(0.0f);
  row[label] = margin;
  return row;
}

TEST(PerceptionCriticality, ClearFramesStayLow) {
  PerceptionCriticality pc;
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(pc.update(kClearLabel, logits_for(kClearLabel, 5.0f)),
              CriticalityClass::Low);
}

TEST(PerceptionCriticality, DetectionRaisesToMediumThenHigh) {
  PerceptionCriticality pc;
  // Confident vehicle detections: Medium first, High after confirmation.
  EXPECT_EQ(pc.update(0, logits_for(0, 8.0f)), CriticalityClass::Medium);
  EXPECT_EQ(pc.update(0, logits_for(0, 8.0f)), CriticalityClass::High);
  EXPECT_EQ(pc.update(0, logits_for(0, 8.0f)), CriticalityClass::High);
}

TEST(PerceptionCriticality, LowConfidenceNeverConfirmsHigh) {
  PerceptionCriticality pc;
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(pc.update(0, logits_for(0, 0.1f)), CriticalityClass::Medium);
}

TEST(PerceptionCriticality, NeverReportsCritical) {
  PerceptionCriticality pc;
  CriticalityClass worst = CriticalityClass::Low;
  for (int i = 0; i < 20; ++i)
    worst = std::max(worst, pc.update(1, logits_for(1, 10.0f)));
  EXPECT_EQ(worst, CriticalityClass::High);  // no range info -> no Critical
}

TEST(PerceptionCriticality, TrackHoldDelaysDecay) {
  PerceptionCriticality::Config cfg;
  cfg.hold_frames = 2;
  PerceptionCriticality pc(cfg);
  pc.update(0, logits_for(0, 8.0f));
  pc.update(0, logits_for(0, 8.0f));  // High confirmed
  // Lost frames: held High for hold_frames, then Low.
  EXPECT_EQ(pc.update(kClearLabel, logits_for(kClearLabel, 8.0f)),
            CriticalityClass::High);
  EXPECT_EQ(pc.update(kClearLabel, logits_for(kClearLabel, 8.0f)),
            CriticalityClass::High);
  EXPECT_EQ(pc.update(kClearLabel, logits_for(kClearLabel, 8.0f)),
            CriticalityClass::Low);
}

TEST(PerceptionCriticality, ResetClearsState) {
  PerceptionCriticality pc;
  pc.update(0, logits_for(0, 8.0f));
  pc.reset();
  EXPECT_EQ(pc.current(), CriticalityClass::Low);
  EXPECT_EQ(pc.update(0, logits_for(0, 8.0f)), CriticalityClass::Medium);
}

TEST(PerceptionCriticality, ValidatesConfigAndInput) {
  PerceptionCriticality::Config bad;
  bad.high_confidence = 0.0;
  EXPECT_THROW(PerceptionCriticality{bad}, PreconditionError);
  PerceptionCriticality pc;
  EXPECT_THROW(pc.update(99, logits_for(0, 1.0f)), PreconditionError);
}

TEST(PerceptionSource, SelfTriggeredLoopHasMoreTrueViolations) {
  // Small trained net; compare ground-truth-TTC monitoring against the
  // perception-derived loop on a hazard-rich scenario.  The self-triggered
  // loop must show at least as many TRUE-basis violations (typically many
  // more: pruned perception misses the hazard that would restore it).
  nn::Network net("pc-net");
  net.emplace<nn::Conv2D>("conv1", 1, 6, 3, 1, 1);
  net.emplace<nn::ReLU>("relu1");
  net.emplace<nn::MaxPool>("pool1", 4, 4);
  net.emplace<nn::Flatten>("flatten");
  net.emplace<nn::Linear>("fc1", 6 * 4 * 4, 16);
  net.emplace<nn::ReLU>("relu2");
  auto& head = net.emplace<nn::Linear>("head", 16, kNumClasses);
  head.set_out_prunable(false);
  Rng rng(1);
  nn::init_network(net, rng);
  RunConfig cfg;
  Rng data_rng(2);
  const nn::Dataset data = make_dataset(600, cfg.vision, data_rng);
  rrp::testing::quick_train(net, data, 5);
  auto lib = prune::PruneLevelLibrary::build_structured(
      net, {0.0, 0.3, 0.6}, input_shape(cfg.vision));

  core::SafetyConfig certified;
  certified.max_level_for = {2, 1, 0, 0};
  const Scenario sc = make_cut_in(600, 5);

  auto run_with = [&](CriticalitySource source) {
    core::ReversiblePruner provider(net, lib);
    core::CriticalityGreedyPolicy policy(certified, 3,
                                         provider.level_count());
    core::SafetyMonitor monitor(certified);
    core::RuntimeController ctl(policy, provider, &monitor);
    RunConfig c = cfg;
    c.criticality_source = source;
    return run_scenario(sc, ctl, c).summary;
  };

  const auto ttc = run_with(CriticalitySource::GroundTruthTtc);
  const auto self = run_with(CriticalitySource::Perception);
  EXPECT_GE(self.true_safety_violations, ttc.true_safety_violations);
  // Sensed-basis violations stay zero for both: each system is "safe"
  // with respect to what it can observe — that is exactly the hazard.
  EXPECT_EQ(self.safety_violations, 0);
  EXPECT_EQ(ttc.safety_violations, 0);
}

TEST(PerceptionSource, FloorVariantPrunesLess) {
  nn::Network net = rrp::testing::tiny_conv_net(9);
  auto lib = prune::PruneLevelLibrary::build_structured(
      net, {0.0, 0.5}, rrp::testing::tiny_input_shape());
  // The floor variant can never report Low, so greedy never reaches the
  // deepest level.  (The tiny net is untrained; we only check levels.)
  core::SafetyConfig certified;
  certified.max_level_for = {1, 1, 0, 0};
  core::ReversiblePruner provider(net, lib);
  core::CriticalityGreedyPolicy policy(certified, 1, provider.level_count());
  core::RuntimeController ctl(policy, provider, nullptr);
  RunConfig cfg;
  cfg.vision.height = 8;
  cfg.vision.width = 8;
  cfg.criticality_source = CriticalitySource::PerceptionFloor;
  const auto s = run_scenario(make_urban(120, 3), ctl, cfg).summary;
  EXPECT_LE(s.mean_level, 1.0 + 1e-9);
}

}  // namespace
}  // namespace rrp::sim
