#include <gtest/gtest.h>

#include <set>

#include "util/checks.h"
#include "util/rng.h"

namespace rrp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversFullRangeInclusive) {
  Rng rng(3);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, UniformU64RejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_u64(0), PreconditionError);
}

TEST(Rng, UniformMeanApproximatelyHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NormalScaleAndShift) {
  Rng rng(17);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(23);
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i)
    ++counts[rng.categorical({1.0, 2.0, 1.0})];
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.5, 0.02);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.02);
}

TEST(Rng, CategoricalZeroWeightNeverPicked) {
  Rng rng(29);
  for (int i = 0; i < 2000; ++i)
    EXPECT_NE(rng.categorical({1.0, 0.0, 1.0}), 1u);
}

TEST(Rng, CategoricalRejectsBadInput) {
  Rng rng(1);
  EXPECT_THROW(rng.categorical({}), PreconditionError);
  EXPECT_THROW(rng.categorical({-1.0, 2.0}), PreconditionError);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), PreconditionError);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(31);
  const auto p = rng.permutation(100);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, PermutationOfZeroAndOne) {
  Rng rng(1);
  EXPECT_TRUE(rng.permutation(0).empty());
  const auto p = rng.permutation(1);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], 0u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.fork();
  // The child stream should not simply mirror the parent.
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next_u64() == child.next_u64());
  EXPECT_LT(equal, 2);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformIntAlwaysInRange) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const int v = rng.uniform_int(0, 9);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 9);
  }
}

TEST_P(RngSeedSweep, PermutationValidAcrossSeeds) {
  Rng rng(GetParam());
  const auto p = rng.permutation(17);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 17u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 42ull, 0xFFFFull,
                                           0xDEADBEEFull,
                                           0xFFFFFFFFFFFFFFFFull));

}  // namespace
}  // namespace rrp
