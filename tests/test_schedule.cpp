#include <gtest/gtest.h>

#include "prune/schedule.h"
#include "test_support.h"
#include "util/checks.h"

namespace rrp::prune {
namespace {

using rrp::testing::tiny_conv_net;
using rrp::testing::tiny_dataset;

class ImpFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = tiny_conv_net(1);
    train_ = tiny_dataset(250, 2);
    eval_ = tiny_dataset(100, 3);
    rrp::testing::quick_train(net_, train_, 3);
  }
  nn::Network net_;
  nn::Dataset train_, eval_;
};

TEST_F(ImpFixture, ReachesTargetSparsity) {
  IterativeScheduleConfig cfg;
  cfg.target_ratio = 0.7;
  cfg.steps = 3;
  Rng rng(4);
  const auto history =
      iterative_magnitude_prune(net_, train_, eval_, cfg, rng);
  ASSERT_EQ(history.size(), 3u);
  // Sparsity is over all params (biases unpruned), slightly under target.
  EXPECT_GT(history.back().sparsity, 0.6);
  EXPECT_LE(history.back().sparsity, 0.72);
}

TEST_F(ImpFixture, SparsityMonotoneAcrossSteps) {
  IterativeScheduleConfig cfg;
  cfg.target_ratio = 0.8;
  cfg.steps = 4;
  Rng rng(5);
  const auto history =
      iterative_magnitude_prune(net_, train_, eval_, cfg, rng);
  for (std::size_t i = 1; i < history.size(); ++i) {
    EXPECT_GT(history[i].sparsity, history[i - 1].sparsity);
    EXPECT_GT(history[i].ratio, history[i - 1].ratio);
  }
}

TEST_F(ImpFixture, FineTuningBeatsOneShotAtHighSparsity) {
  // One-shot 80%:
  nn::Network oneshot = net_.clone();
  plan_unstructured(oneshot, 0.8).apply(oneshot);
  const double oneshot_acc = nn::evaluate_accuracy(oneshot, eval_);

  // Iterative with fine-tuning to the same target:
  IterativeScheduleConfig cfg;
  cfg.target_ratio = 0.8;
  cfg.steps = 4;
  cfg.finetune_epochs = 2;
  Rng rng(6);
  const auto history =
      iterative_magnitude_prune(net_, train_, eval_, cfg, rng);
  EXPECT_GE(history.back().accuracy + 0.02, oneshot_acc);
}

TEST_F(ImpFixture, PrunedWeightsNeverRegrow) {
  IterativeScheduleConfig cfg;
  cfg.target_ratio = 0.6;
  cfg.steps = 2;
  cfg.finetune_epochs = 1;
  Rng rng(7);
  iterative_magnitude_prune(net_, train_, eval_, cfg, rng);
  const std::int64_t nonzero_after_schedule = net_.param_nonzero();

  // One more fine-tune epoch with freeze on must not change sparsity.
  nn::SgdConfig sgd;
  sgd.epochs = 1;
  sgd.freeze_zeros = true;
  sgd.weight_decay = 0.0f;
  Rng rng2(8);
  nn::train_sgd(net_, train_, sgd, rng2);
  EXPECT_LE(net_.param_nonzero(), nonzero_after_schedule);
}

TEST_F(ImpFixture, ValidatesConfig) {
  IterativeScheduleConfig bad;
  bad.target_ratio = 1.0;
  Rng rng(9);
  EXPECT_THROW(iterative_magnitude_prune(net_, train_, eval_, bad, rng),
               PreconditionError);
  bad.target_ratio = 0.5;
  bad.steps = 0;
  EXPECT_THROW(iterative_magnitude_prune(net_, train_, eval_, bad, rng),
               PreconditionError);
}

}  // namespace
}  // namespace rrp::prune
