// test_faults.cpp — seeded fault plans, the injector, the fault-aware
// runner (scrub / self-heal / watchdog), and the R-F9 campaign driver.
#include <gtest/gtest.h>

#include <sstream>

#include "core/baselines.h"
#include "nn/init.h"
#include "sim/faults.h"
#include "sim/runner.h"
#include "sim/suites.h"
#include "test_support.h"
#include "util/checks.h"
#include "util/thread_pool.h"

namespace rrp::sim {
namespace {

using core::CriticalityClass;

// The closed-loop fixture: a briefly-trained conv net on the vision task's
// default geometry (16x16, kNumClasses), with a 3-level structured ladder.
class FaultsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_.deadline_ms = 5.0;
    cfg_.noise_seed = 77;

    net_ = nn::Network("faults-net");
    net_.emplace<nn::Conv2D>("conv1", 1, 6, 3, 1, 1);
    net_.emplace<nn::ReLU>("relu1");
    net_.emplace<nn::MaxPool>("pool1", 4, 4);
    net_.emplace<nn::Flatten>("flatten");
    net_.emplace<nn::Linear>("fc1", 6 * 4 * 4, 16);
    net_.emplace<nn::ReLU>("relu2");
    auto& head = net_.emplace<nn::Linear>("head", 16, kNumClasses);
    head.set_out_prunable(false);
    Rng rng(1);
    nn::init_network(net_, rng);

    Rng data_rng(2);
    data_ = make_dataset(400, cfg_.vision, data_rng);
    rrp::testing::quick_train(net_, data_, 4);

    lib_ = prune::PruneLevelLibrary::build_structured(
        net_, {0.0, 0.3, 0.6}, input_shape(cfg_.vision));
    certified_.max_level_for = {2, 1, 1, 0};
  }

  RunConfig cfg_;
  nn::Network net_;
  nn::Dataset data_;
  prune::PruneLevelLibrary lib_;
  core::SafetyConfig certified_;
};

TEST(FaultPlan, RandomPlanIsDeterministicInSeed) {
  const FaultPlan a = FaultPlan::random_plan(42, 500, 20);
  const FaultPlan b = FaultPlan::random_plan(42, 500, 20);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].frame, b.events[i].frame);
    EXPECT_EQ(a.events[i].target, b.events[i].target);
    EXPECT_EQ(a.events[i].bit, b.events[i].bit);
  }
  const FaultPlan c = FaultPlan::random_plan(43, 500, 20);
  bool any_differs = false;
  for (std::size_t i = 0; i < c.events.size(); ++i)
    any_differs |= c.events[i].frame != a.events[i].frame ||
                   c.events[i].kind != a.events[i].kind;
  EXPECT_TRUE(any_differs);
}

TEST(FaultPlan, EventsSortedAndMixRespected) {
  FaultMix mix;
  mix.sensor_blackout = 0.0;
  mix.store_bit_flip = 0.0;
  mix.stuck_criticality = 0.0;
  mix.stale_criticality = 0.0;
  mix.latency_spike = 0.0;
  mix.dropped_decision = 0.0;
  mix.artifact_read_failure = 0.0;
  mix.weight_bit_flip = 1.0;
  const FaultPlan plan = FaultPlan::random_plan(7, 300, 25, mix, 20);
  ASSERT_EQ(plan.events.size(), 25u);
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    EXPECT_EQ(plan.events[i].kind, FaultKind::WeightBitFlip);
    EXPECT_GE(plan.events[i].frame, 20);
    EXPECT_LT(plan.events[i].frame, 300);
    if (i > 0) {
      EXPECT_GE(plan.events[i].frame, plan.events[i - 1].frame);
    }
  }
  FaultMix empty;
  empty.sensor_blackout = empty.weight_bit_flip = empty.store_bit_flip = 0.0;
  empty.stuck_criticality = empty.stale_criticality = 0.0;
  empty.latency_spike = empty.dropped_decision = 0.0;
  empty.artifact_read_failure = 0.0;
  EXPECT_THROW(FaultPlan::random_plan(1, 100, 5, empty), PreconditionError);
}

TEST(FaultInjector, BurstsActivateAndExpire) {
  FaultPlan plan;
  FaultEvent spike;
  spike.kind = FaultKind::LatencySpike;
  spike.frame = 5;
  spike.duration_frames = 3;
  spike.magnitude = 4.0;
  plan.add(spike);
  FaultEvent stuck;
  stuck.kind = FaultKind::StuckCriticality;
  stuck.frame = 6;
  stuck.duration_frames = 2;
  stuck.stuck = CriticalityClass::Medium;
  plan.add(stuck);

  FaultInjector injector(plan, {});
  for (std::int64_t f = 0; f < 12; ++f) {
    const FrameFaults ff = injector.begin_frame(f);
    if (f >= 5 && f < 8)
      EXPECT_DOUBLE_EQ(ff.latency_scale, 4.0) << "frame " << f;
    else
      EXPECT_DOUBLE_EQ(ff.latency_scale, 1.0) << "frame " << f;
    if (f >= 6 && f < 8) {
      ASSERT_TRUE(ff.stuck_criticality.has_value()) << "frame " << f;
      EXPECT_EQ(*ff.stuck_criticality, CriticalityClass::Medium);
    } else {
      EXPECT_FALSE(ff.stuck_criticality.has_value()) << "frame " << f;
    }
  }
  ASSERT_EQ(injector.injected().size(), 2u);
  EXPECT_TRUE(injector.injected()[0].applied);
}

TEST(FaultInjector, WeightFlipWithoutTargetIsReportedSkipped) {
  FaultPlan plan;
  FaultEvent flip;
  flip.kind = FaultKind::WeightBitFlip;
  flip.frame = 0;
  plan.add(flip);
  FaultInjector injector(plan, {});
  injector.begin_frame(0);
  ASSERT_EQ(injector.injected().size(), 1u);
  EXPECT_FALSE(injector.injected()[0].applied);
}

TEST_F(FaultsFixture, StuckCriticalityBlindsTheController) {
  // Stuck-at-Low over the whole run: the greedy policy never sees High, so
  // it prunes at the Low cap the entire time; the ground-truth audit
  // (true_violation) records the resulting exposure in a cut-in.
  const Scenario scenario = make_cut_in(200, 5);
  FaultEvent stuck;
  stuck.kind = FaultKind::StuckCriticality;
  stuck.frame = 0;
  stuck.duration_frames = 200;
  stuck.stuck = CriticalityClass::Low;

  core::ReversiblePruner rp(net_, lib_);
  core::CriticalityGreedyPolicy policy(certified_, 2, rp.level_count());
  core::SafetyMonitor monitor(certified_);
  core::RuntimeController controller(policy, rp, &monitor);
  RunConfig cfg = cfg_;
  cfg.faults.add(stuck);
  const RunResult faulty = run_scenario(scenario, controller, cfg, nullptr);

  core::ReversiblePruner rp2(net_, lib_);
  core::CriticalityGreedyPolicy policy2(certified_, 2, rp2.level_count());
  core::SafetyMonitor monitor2(certified_);
  core::RuntimeController controller2(policy2, rp2, &monitor2);
  const RunResult clean = run_scenario(scenario, controller2, cfg_, nullptr);

  // The stuck sensor keeps the mean level at the Low cap; the clean run
  // restores when the cut-in raises criticality.
  EXPECT_GT(faulty.summary.mean_level, clean.summary.mean_level);
  EXPECT_GE(faulty.summary.true_safety_violations,
            clean.summary.true_safety_violations);
}

TEST_F(FaultsFixture, DroppedDecisionFreezesTheLevel) {
  const Scenario scenario = make_cut_in(150, 5);
  core::ReversiblePruner rp(net_, lib_);
  core::CriticalityGreedyPolicy policy(certified_, 2, rp.level_count());
  core::SafetyMonitor monitor(certified_);
  core::RuntimeController controller(policy, rp, &monitor);
  RunConfig cfg = cfg_;
  FaultEvent drop;
  drop.kind = FaultKind::DroppedDecision;
  drop.frame = 0;
  drop.duration_frames = 150;
  cfg.faults.add(drop);
  const RunResult result = run_scenario(scenario, controller, cfg, nullptr);
  // Every decision dropped: the provider never leaves level 0 and the
  // controller never steps (no switches recorded).
  EXPECT_EQ(result.summary.level_switches, 0);
  EXPECT_DOUBLE_EQ(result.summary.mean_level, 0.0);
  EXPECT_EQ(controller.switch_count(), 0);
  // The audit trail still covers every frame.
  EXPECT_EQ(monitor.audited_frames(), 150);
}

TEST_F(FaultsFixture, LatencySpikeTripsTheWatchdog) {
  const Scenario scenario = make_highway(120, 5);
  core::ReversiblePruner rp(net_, lib_);
  // A fixed level-0 policy never prunes, so under a long latency spike only
  // the watchdog can shed load.
  core::FixedPolicy policy(0);
  core::SafetyMonitor monitor(certified_);
  core::RuntimeController controller(policy, rp, &monitor);
  RunConfig cfg = cfg_;
  cfg.deadline_ms = 1.0;  // tight: the spike overruns every frame
  cfg.watchdog_overrun_frames = 4;
  FaultEvent spike;
  spike.kind = FaultKind::LatencySpike;
  spike.frame = 10;
  spike.duration_frames = 40;
  spike.magnitude = 50.0;
  cfg.faults.add(spike);
  const RunResult result = run_scenario(scenario, controller, cfg, nullptr);
  (void)result;
  EXPECT_GE(monitor.watchdog_degrade_count(), 1);
  bool saw_record = false;
  for (const core::AssuranceRecord& rec : monitor.log())
    if (rec.kind == core::AssuranceKind::WatchdogDegrade) {
      saw_record = true;
      EXPECT_GE(rec.frame, 10 + 4 - 1);
      EXPECT_EQ(rec.requested_level, 0);  // from_level before forcing
      EXPECT_GT(rec.enforced_level, 0);   // forced to the certified max
    }
  EXPECT_TRUE(saw_record);
}

TEST_F(FaultsFixture, ScrubDetectsAndHealsInjectedFlipInLoop) {
  const Scenario scenario = make_highway(100, 5);
  core::ReversiblePruner rp(net_, lib_);
  core::IntegrityChecker checker(rp.store());
  core::FixedPolicy policy(0);
  core::SafetyMonitor monitor(certified_);
  core::RuntimeController controller(policy, rp, &monitor);

  FaultHarness harness;
  harness.targets.live_net = &rp.network();
  harness.targets.store = &rp.mutable_store();
  harness.checker = &checker;
  harness.levels = &lib_;

  RunConfig cfg = cfg_;
  cfg.scrub_period_frames = 10;
  FaultEvent flip;
  flip.kind = FaultKind::WeightBitFlip;
  flip.frame = 23;
  flip.target = 12345;
  flip.bit = 30;
  cfg.faults.add(flip);

  run_scenario(scenario, controller, cfg, &harness);

  ASSERT_EQ(harness.injected.size(), 1u);
  EXPECT_TRUE(harness.injected[0].applied);
  EXPECT_EQ(monitor.integrity_detect_count(), 1);
  EXPECT_EQ(monitor.integrity_repair_count(), 1);
  ASSERT_EQ(harness.recoveries.size(), 1u);
  // Injected at 23, scrub cadence 10 → detected and healed at frame 29.
  EXPECT_EQ(harness.recoveries[0].frame, 29);
  EXPECT_EQ(harness.recoveries[0].mechanism, "self-heal");
  EXPECT_EQ(harness.recoveries[0].elements, 1);
  EXPECT_TRUE(harness.recoveries[0].recovered);
  // After the run the live weights are bit-exact again.
  EXPECT_TRUE(
      checker.scrub(rp.network(), lib_.mask(rp.current_level())).clean());
}

TEST_F(FaultsFixture, ReloadArmDetectsViaDigestAndPaysFullReload) {
  const Scenario scenario = make_highway(100, 5);
  core::ReloadProvider reload(net_, lib_,
                              core::ReloadProvider::Source::Memory);
  const std::vector<std::uint64_t> digests = reload_level_digests(reload);
  ASSERT_EQ(digests.size(), static_cast<std::size_t>(lib_.level_count()));
  core::FixedPolicy policy(0);
  core::SafetyMonitor monitor(certified_);
  core::RuntimeController controller(policy, reload, &monitor);

  FaultHarness harness;
  harness.targets.live_net = &reload.active_network();
  harness.targets.reload = &reload;
  harness.reload = &reload;
  harness.reload_digests = &digests;

  RunConfig cfg = cfg_;
  cfg.scrub_period_frames = 10;
  FaultEvent flip;
  flip.kind = FaultKind::WeightBitFlip;
  flip.frame = 23;
  flip.target = 999;
  flip.bit = 29;
  cfg.faults.add(flip);

  run_scenario(scenario, controller, cfg, &harness);

  EXPECT_EQ(monitor.integrity_detect_count(), 1);
  ASSERT_EQ(harness.recoveries.size(), 1u);
  EXPECT_EQ(harness.recoveries[0].mechanism, "reload");
  // The reload arm rewrites the whole artifact, not O(Δ).
  EXPECT_EQ(harness.recoveries[0].elements, net_.param_count());
  EXPECT_GT(harness.recoveries[0].bytes,
            static_cast<std::int64_t>(sizeof(float)));
  EXPECT_EQ(live_network_digest(reload.active_network()), digests[0]);
}

TEST_F(FaultsFixture, RetryAbsorbsTransientReadFailures) {
  core::ReloadProvider reload(net_, lib_,
                              core::ReloadProvider::Source::Memory);
  reload.inject_read_failures(2);  // < max_attempts - 1
  const core::TransitionStats stats = reload.set_level(1);
  EXPECT_EQ(reload.current_level(), 1);
  EXPECT_EQ(stats.read_retries, 2);
  // Modeled exponential backoff: 200 + 400 us.
  EXPECT_DOUBLE_EQ(stats.backoff_us, 600.0);
  EXPECT_EQ(reload.pending_read_failures(), 0);
}

TEST_F(FaultsFixture, RetryExhaustionThrowsDiagnosableError) {
  core::ReloadProvider reload(net_, lib_,
                              core::ReloadProvider::Source::Memory);
  reload.inject_read_failures(10);
  try {
    reload.set_level(1);
    FAIL() << "expected SerializationError";
  } catch (const SerializationError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("after 4 attempts"), std::string::npos) << what;
  }
  // The provider survives: the active network and level are unchanged.
  EXPECT_EQ(reload.current_level(), 0);
  reload.inject_read_failures(0);
  EXPECT_EQ(reload.set_level(1).to_level, 1);
}

// The R-F9 driver: a small campaign must be byte-identical across repeated
// runs AND across thread-pool sizes, and must show the reversible arm
// recovering in strictly less modeled time (and strictly fewer bytes) than
// the reload arm on the same fault schedule.
TEST_F(FaultsFixture, CampaignIsDeterministicAndReversibleRecoversFaster) {
  CampaignInputs inputs;
  inputs.net = &net_;
  inputs.levels = &lib_;
  inputs.certified = certified_;

  FaultCampaignConfig config;
  config.seed = 911;
  config.frames = 120;
  config.faults_per_run = 6;
  config.suites = {"cut_in"};
  config.arms = {CampaignArm::Reversible, CampaignArm::ReloadMemory};
  config.scrub_period_frames = 10;
  config.mix.weight_bit_flip = 5.0;  // weight faults dominate the schedule
  // A fixed level keeps flipped elements from being silently overwritten
  // by level transitions, so detection coverage is exact.
  config.policy = "fixed0";

  const core::WeightStore before = core::WeightStore::snapshot(net_);

  std::string csv_serial, csv_parallel, csv_repeat;
  FaultCampaignSummary reversible, reload;
  {
    ThreadCountGuard guard(1);
    const FaultCampaignResult r = run_fault_campaign(inputs, config);
    std::ostringstream out;
    write_campaign_csv(r, out);
    csv_serial = out.str();
    ASSERT_EQ(r.summaries.size(), 2u);
    EXPECT_EQ(r.summaries[0].first, "reversible");
    EXPECT_EQ(r.summaries[1].first, "reload-memory");
    reversible = r.summaries[0].second;
    reload = r.summaries[1].second;
  }
  {
    ThreadCountGuard guard(5);
    const FaultCampaignResult r = run_fault_campaign(inputs, config);
    std::ostringstream out;
    write_campaign_csv(r, out);
    csv_parallel = out.str();
  }
  {
    const FaultCampaignResult r = run_fault_campaign(inputs, config);
    std::ostringstream out;
    write_campaign_csv(r, out);
    csv_repeat = out.str();
  }
  EXPECT_EQ(csv_serial, csv_parallel);
  EXPECT_EQ(csv_serial, csv_repeat);

  // Detection coverage: every applied live-weight flip is detected.
  EXPECT_GT(reversible.weight_faults_injected, 0);
  EXPECT_EQ(reversible.weight_faults_detected,
            reversible.weight_faults_injected);
  // R-F9: O(Δ) self-heal beats full-artifact reload on both axes.
  EXPECT_GT(reload.mean_recovery_ms, 0.0);
  EXPECT_LT(reversible.mean_recovery_ms, reload.mean_recovery_ms);
  EXPECT_LT(reversible.mean_recovery_bytes, reload.mean_recovery_bytes);

  // The campaign left the shared network bit-exactly as it found it.
  const core::IntegrityChecker checker(before);
  EXPECT_TRUE(checker.scrub(net_, lib_.mask(0)).clean());
}

TEST_F(FaultsFixture, CampaignValidatesInputs) {
  CampaignInputs inputs;
  EXPECT_THROW(run_fault_campaign(inputs, {}), PreconditionError);
  inputs.net = &net_;
  inputs.levels = &lib_;
  inputs.certified = certified_;
  FaultCampaignConfig config;
  config.suites = {"not_a_suite"};
  config.frames = 30;
  config.faults_per_run = 1;
  EXPECT_THROW(run_fault_campaign(inputs, config), PreconditionError);
  config.suites = {"highway"};
  config.policy = "what";
  EXPECT_THROW(run_fault_campaign(inputs, config), PreconditionError);
}

}  // namespace
}  // namespace rrp::sim
