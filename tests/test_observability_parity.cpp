// test_observability_parity.cpp — the differential determinism gate for
// the observability layer (DESIGN.md invariant 11).
//
// One closed-loop scenario is run under RRP_THREADS = 1, 2 and 8.  The
// pre-existing contract says the RunSummary is identical; this test
// extends it to the NEW surfaces: the telemetry CSV, the span trace CSV
// and the metrics snapshot CSV must be BYTE-identical across thread
// counts (wall-clock capture off).  Any span recorded inside a chunk
// body, any schedule-dependent gauge write, or any non-commutative
// counter would show up here as a single-character diff.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/reversible_pruner.h"
#include "sim/runner.h"
#include "sim/suites.h"
#include "test_support.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace rrp::sim {
namespace {

struct RunCapture {
  core::RunSummary summary;
  std::string telemetry_csv;
  std::string span_csv;
  std::string metrics_csv;
};

class ObservabilityParity : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_.vision.height = 16;
    cfg_.vision.width = 16;
    cfg_.deadline_ms = 5.0;
    cfg_.noise_seed = 77;

    net_ = nn::Network("parity-net");
    net_.emplace<nn::Conv2D>("conv1", 1, 6, 3, 1, 1);
    net_.emplace<nn::ReLU>("relu1");
    net_.emplace<nn::MaxPool>("pool1", 4, 4);
    net_.emplace<nn::Flatten>("flatten");
    net_.emplace<nn::Linear>("fc1", 6 * 4 * 4, 16);
    net_.emplace<nn::ReLU>("relu2");
    auto& head = net_.emplace<nn::Linear>("head", 16, kNumClasses);
    head.set_out_prunable(false);
    Rng rng(1);
    nn::init_network(net_, rng);
    Rng data_rng(2);
    const nn::Dataset data = make_dataset(400, cfg_.vision, data_rng);
    rrp::testing::quick_train(net_, data, 4);

    lib_ = prune::PruneLevelLibrary::build_structured(
        net_, {0.0, 0.3, 0.6}, input_shape(cfg_.vision));
  }

  /// One full instrumented run at the current pool size.
  RunCapture run_once() {
    core::reset_observability();
    trace::set_enabled(true);
    RunCapture cap;
    {
      core::ReversiblePruner rp(net_, lib_);
      core::SafetyConfig certified;
      certified.max_level_for = {2, 1, 0, 0};
      core::CriticalityGreedyPolicy policy(certified, 3, rp.level_count());
      core::SafetyMonitor monitor(certified);
      core::RuntimeController ctl(policy, rp, &monitor);
      const Scenario sc = make_cut_in(200, 5);
      const RunResult result = run_scenario(sc, ctl, cfg_);
      cap.summary = result.summary;
      std::ostringstream os;
      result.telemetry.write_csv(os);
      cap.telemetry_csv = os.str();
    }
    trace::set_enabled(false);
    cap.span_csv = trace::span_csv_string();
    cap.metrics_csv = core::capture_metrics().csv_string();
    core::reset_observability();
    return cap;
  }

  RunConfig cfg_;
  nn::Network net_;
  prune::PruneLevelLibrary lib_;
};

TEST_F(ObservabilityParity, RunAndObservabilityAreByteIdenticalAcrossThreads) {
  std::vector<RunCapture> caps;
  for (int threads : {1, 2, 8}) {
    ThreadCountGuard pool(threads);
    caps.push_back(run_once());
  }
  ASSERT_FALSE(caps[0].span_csv.empty());
  ASSERT_NE(caps[0].metrics_csv.find("runner.frames"), std::string::npos);

  for (std::size_t i = 1; i < caps.size(); ++i) {
    const int threads = i == 1 ? 2 : 8;
    // RunSummary: exact double equality is the contract, not "close".
    EXPECT_EQ(caps[0].summary.frames, caps[i].summary.frames);
    EXPECT_EQ(caps[0].summary.accuracy, caps[i].summary.accuracy)
        << "threads=" << threads;
    EXPECT_EQ(caps[0].summary.total_energy_mj, caps[i].summary.total_energy_mj)
        << "threads=" << threads;
    EXPECT_EQ(caps[0].summary.mean_latency_ms, caps[i].summary.mean_latency_ms)
        << "threads=" << threads;
    EXPECT_EQ(caps[0].summary.p99_latency_ms, caps[i].summary.p99_latency_ms)
        << "threads=" << threads;
    EXPECT_EQ(caps[0].summary.level_switches, caps[i].summary.level_switches)
        << "threads=" << threads;
    EXPECT_EQ(caps[0].summary.mean_switch_us, caps[i].summary.mean_switch_us)
        << "threads=" << threads;
    EXPECT_EQ(caps[0].summary.safety_violations,
              caps[i].summary.safety_violations)
        << "threads=" << threads;
    // The three observability exports, byte for byte.
    EXPECT_EQ(caps[0].telemetry_csv, caps[i].telemetry_csv)
        << "threads=" << threads;
    EXPECT_EQ(caps[0].span_csv, caps[i].span_csv) << "threads=" << threads;
    EXPECT_EQ(caps[0].metrics_csv, caps[i].metrics_csv)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace rrp::sim
