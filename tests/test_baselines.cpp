#include <gtest/gtest.h>

#include <filesystem>

#include "core/baselines.h"
#include "test_support.h"
#include "util/checks.h"

namespace rrp::core {
namespace {

using rrp::testing::random_tensor;
using rrp::testing::tiny_conv_net;
using rrp::testing::tiny_input_shape;

const std::vector<double> kRatios{0.0, 0.3, 0.6};

prune::PruneLevelLibrary lib_for(nn::Network& net) {
  return prune::PruneLevelLibrary::build_structured(net, kRatios,
                                                    tiny_input_shape());
}

TEST(StaticProvider, IgnoresLevelRequests) {
  nn::Network net = tiny_conv_net(1);
  const auto lib = lib_for(net);
  StaticProvider sp(net, lib, 1);
  EXPECT_EQ(sp.current_level(), 1);
  const auto s = sp.set_level(0);
  EXPECT_EQ(sp.current_level(), 1);     // unchanged
  EXPECT_EQ(s.to_level, 1);
  EXPECT_EQ(s.elements_changed, 0);
}

TEST(StaticProvider, OutputsMatchMaskedNetworkAtFixedLevel) {
  nn::Network net = tiny_conv_net(2);
  const auto lib = lib_for(net);
  StaticProvider sp(net, lib, 2);
  nn::Network masked = net.clone();
  lib.mask(2).apply(masked);
  const nn::Tensor x = random_tensor({2, 1, 8, 8}, 3);
  EXPECT_TRUE(sp.infer(x).equals(masked.forward(x, false)));
}

TEST(StaticProvider, DoesNotTouchSourceNetwork) {
  nn::Network net = tiny_conv_net(4);
  std::vector<nn::Tensor> golden;
  for (auto& p : net.params()) golden.push_back(*p.value);
  const auto lib = lib_for(net);
  StaticProvider sp(net, lib, 2);
  auto after = net.params();
  for (std::size_t i = 0; i < after.size(); ++i)
    EXPECT_TRUE(after[i].value->equals(golden[i]));
}

TEST(StaticProvider, ValidatesFixedLevel) {
  nn::Network net = tiny_conv_net(5);
  const auto lib = lib_for(net);
  EXPECT_THROW(StaticProvider(net, lib, 3), PreconditionError);
  EXPECT_THROW(StaticProvider(net, lib, -1), PreconditionError);
}

TEST(ReloadProvider, MemorySwitchMatchesMaskedOutputs) {
  nn::Network net = tiny_conv_net(6);
  const auto lib = lib_for(net);
  ReloadProvider rp(net, lib, ReloadProvider::Source::Memory);
  const nn::Tensor x = random_tensor({2, 1, 8, 8}, 7);
  for (int k = 0; k < rp.level_count(); ++k) {
    rp.set_level(k);
    nn::Network masked = net.clone();
    lib.mask(k).apply(masked);
    EXPECT_TRUE(rp.infer(x).equals(masked.forward(x, false))) << k;
  }
}

TEST(ReloadProvider, SwitchCostScalesWithWholeModel) {
  nn::Network net = tiny_conv_net(8);
  const auto lib = lib_for(net);
  ReloadProvider rp(net, lib, ReloadProvider::Source::Memory);
  const auto s = rp.set_level(1);
  // A reload rewrites the whole parameter set, not the mask diff.
  EXPECT_EQ(s.elements_changed, net.param_count());
  EXPECT_GT(s.bytes_written, net.param_count() * 4);
  EXPECT_GT(s.wall_us, 0.0);
}

TEST(ReloadProvider, DiskModeRoundTrips) {
  nn::Network net = tiny_conv_net(9);
  const auto lib = lib_for(net);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "rrp_reload_test").string();
  ReloadProvider rp(net, lib, ReloadProvider::Source::Disk, dir);
  const nn::Tensor x = random_tensor({1, 1, 8, 8}, 10);
  rp.set_level(2);
  nn::Network masked = net.clone();
  lib.mask(2).apply(masked);
  EXPECT_TRUE(rp.infer(x).equals(masked.forward(x, false)));
  EXPECT_TRUE(std::filesystem::exists(dir + "/level_2.rrpn"));
  std::filesystem::remove_all(dir);
}

TEST(ReloadProvider, MissingArtifactFailsWithDiagnosableError) {
  nn::Network net = tiny_conv_net(9);
  const auto lib = lib_for(net);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "rrp_reload_missing").string();
  ReloadProvider rp(net, lib, ReloadProvider::Source::Disk, dir);
  std::filesystem::remove(rp.artifact_path(1));
  try {
    rp.set_level(1);
    FAIL() << "expected SerializationError";
  } catch (const SerializationError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cannot open artifact"), std::string::npos) << what;
    EXPECT_NE(what.find(rp.artifact_path(1)), std::string::npos) << what;
  }
  EXPECT_EQ(rp.current_level(), 0);  // provider state is unchanged
  std::filesystem::remove_all(dir);
}

TEST(ReloadProvider, TruncatedArtifactFailsWithDiagnosableError) {
  nn::Network net = tiny_conv_net(9);
  const auto lib = lib_for(net);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "rrp_reload_trunc").string();
  ReloadProvider rp(net, lib, ReloadProvider::Source::Disk, dir);
  // Truncate level 2's artifact to half its size: the size check must turn
  // what would be stream UB into a typed, named error.
  std::filesystem::resize_file(
      rp.artifact_path(2),
      static_cast<std::uintmax_t>(rp.artifact_bytes(2) / 2));
  try {
    rp.set_level(2);
    FAIL() << "expected SerializationError";
  } catch (const SerializationError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("truncated"), std::string::npos) << what;
    EXPECT_NE(what.find(rp.artifact_path(2)), std::string::npos) << what;
  }
  EXPECT_EQ(rp.current_level(), 0);
  // The provider keeps serving the level-0 network after the failure.
  const nn::Tensor x = random_tensor({1, 1, 8, 8}, 10);
  EXPECT_EQ(rp.infer(x).numel(), 3);
  std::filesystem::remove_all(dir);
}

TEST(ReloadProvider, DiskModeNeedsDirectory) {
  nn::Network net = tiny_conv_net(11);
  const auto lib = lib_for(net);
  EXPECT_THROW(ReloadProvider(net, lib, ReloadProvider::Source::Disk, ""),
               PreconditionError);
}

TEST(ReloadProvider, ArtifactBytesReported) {
  nn::Network net = tiny_conv_net(12);
  const auto lib = lib_for(net);
  ReloadProvider rp(net, lib, ReloadProvider::Source::Memory);
  for (int k = 0; k < rp.level_count(); ++k)
    EXPECT_GT(rp.artifact_bytes(k), net.param_count() * 4);
  EXPECT_THROW(rp.artifact_bytes(9), PreconditionError);
}

TEST(ReloadProvider, NoOpSwitchIsFree) {
  nn::Network net = tiny_conv_net(13);
  const auto lib = lib_for(net);
  ReloadProvider rp(net, lib, ReloadProvider::Source::Memory);
  rp.set_level(1);
  const auto s = rp.set_level(1);
  EXPECT_EQ(s.elements_changed, 0);
}

TEST(Providers, NamesAreDistinct) {
  nn::Network net = tiny_conv_net(14);
  const auto lib = lib_for(net);
  StaticProvider sp(net, lib, 1);
  ReloadProvider rm(net, lib, ReloadProvider::Source::Memory);
  ReversiblePruner rev(net, lib_for(net));
  EXPECT_NE(sp.name(), rm.name());
  EXPECT_NE(rm.name(), rev.name());
}

}  // namespace
}  // namespace rrp::core
