#include <gtest/gtest.h>

#include "core/assurance_export.h"

namespace rrp::core {
namespace {

AssuranceReport sample_report() {
  AssuranceReport r;
  r.scenario = "cut_in";
  r.provider = "reversible-masked";
  r.policy = "criticality-greedy";
  r.certified.max_level_for = {4, 3, 1, 0};
  r.summary.frames = 900;
  r.summary.accuracy = 0.91;
  r.summary.safety_violations = 0;
  r.summary.true_safety_violations = 3;
  AssuranceRecord rec;
  rec.frame = 42;
  rec.criticality = CriticalityClass::Critical;
  rec.requested_level = 4;
  rec.enforced_level = 0;
  rec.veto = true;
  r.log.push_back(rec);
  return r;
}

TEST(AssuranceExport, ContainsAllSections) {
  const std::string json = assurance_json(sample_report());
  EXPECT_NE(json.find("\"scenario\": \"cut_in\""), std::string::npos);
  EXPECT_NE(json.find("\"certified_max_level\""), std::string::npos);
  EXPECT_NE(json.find("\"Critical\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"violations_sensed_basis\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"violations_true_basis\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"assurance_log\""), std::string::npos);
  EXPECT_NE(json.find("\"frame\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"veto\": true"), std::string::npos);
}

TEST(AssuranceExport, EmptyLogYieldsEmptyArray) {
  AssuranceReport r = sample_report();
  r.log.clear();
  const std::string json = assurance_json(r);
  EXPECT_NE(json.find("\"assurance_log\": [\n  ]"), std::string::npos);
}

TEST(AssuranceExport, EscapesSpecialCharacters) {
  AssuranceReport r = sample_report();
  r.scenario = "with \"quotes\" and \\slashes\\ and\nnewline";
  const std::string json = assurance_json(r);
  EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\slashes\\\\"), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
}

TEST(AssuranceExport, BalancedBracesSmokeCheck) {
  const std::string json = assurance_json(sample_report());
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

}  // namespace
}  // namespace rrp::core
