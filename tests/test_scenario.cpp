#include <gtest/gtest.h>

#include <cmath>

#include "sim/criticality.h"
#include "sim/suites.h"
#include "util/checks.h"

namespace rrp::sim {
namespace {

using core::CriticalityClass;

TEST(Scene, DominantPicksNearestInCorridor) {
  Scene s;
  s.actors.push_back({ActorType::Vehicle, 30.0, 0.0, 0.0});
  s.actors.push_back({ActorType::Pedestrian, 10.0, 0.0, 0.5});
  s.actors.push_back({ActorType::Cyclist, 5.0, 0.0, 5.0});  // off-corridor
  const Actor* dom = s.dominant();
  ASSERT_NE(dom, nullptr);
  EXPECT_EQ(dom->type, ActorType::Pedestrian);
}

TEST(Scene, DominantNullWhenClear) {
  Scene s;
  s.actors.push_back({ActorType::Vehicle, 30.0, 0.0, 9.0});
  EXPECT_EQ(s.dominant(), nullptr);
  Scene empty;
  EXPECT_EQ(empty.dominant(), nullptr);
}

TEST(Scene, StepActorsAdvancesAndCulls) {
  Scene s;
  s.actors.push_back({ActorType::Vehicle, 10.0, 5.0, 0.0});
  s.actors.push_back({ActorType::Vehicle, 0.4, 30.0, 0.0});
  step_actors(s, 0.1);
  ASSERT_EQ(s.actors.size(), 1u);  // the 0.4 m actor passed behind
  EXPECT_NEAR(s.actors[0].distance_m, 9.5, 1e-9);
}

TEST(Criticality, TtcComputation) {
  Scene s;
  s.actors.push_back({ActorType::Vehicle, 20.0, 10.0, 0.0});
  EXPECT_NEAR(scene_min_ttc_s(s), 2.0, 1e-9);
}

TEST(Criticality, OpeningGapIsInfiniteTtc) {
  Scene s;
  s.actors.push_back({ActorType::Vehicle, 20.0, -1.0, 0.0});
  EXPECT_TRUE(std::isinf(scene_min_ttc_s(s)));
}

TEST(Criticality, OffCorridorActorsIgnored) {
  Scene s;
  s.actors.push_back({ActorType::Vehicle, 5.0, 20.0, 4.0});
  EXPECT_TRUE(std::isinf(scene_min_ttc_s(s)));
  EXPECT_EQ(classify_scene(s), CriticalityClass::Low);
}

TEST(Criticality, ClassThresholds) {
  CriticalityConfig cfg;
  auto with_ttc = [](double ttc) {
    Scene s;
    s.actors.push_back({ActorType::Vehicle, ttc * 10.0, 10.0, 0.0});
    return s;
  };
  EXPECT_EQ(classify_scene(with_ttc(1.0), cfg), CriticalityClass::Critical);
  EXPECT_EQ(classify_scene(with_ttc(2.5), cfg), CriticalityClass::High);
  EXPECT_EQ(classify_scene(with_ttc(5.0), cfg), CriticalityClass::Medium);
  EXPECT_EQ(classify_scene(with_ttc(20.0), cfg), CriticalityClass::Low);
}

TEST(Criticality, ProximityFloorEvenWithoutClosing) {
  Scene s;
  s.actors.push_back({ActorType::Pedestrian, 6.0, 0.0, 0.0});
  EXPECT_EQ(classify_scene(s), CriticalityClass::High);
  s.actors[0].distance_m = 15.0;
  EXPECT_EQ(classify_scene(s), CriticalityClass::Medium);
}

TEST(Criticality, TraceMatchesPerSceneClassification) {
  const Scenario sc = make_cut_in(200, 42);
  const auto trace = criticality_trace(sc);
  ASSERT_EQ(trace.size(), sc.scenes.size());
  for (std::size_t i = 0; i < trace.size(); i += 17)
    EXPECT_EQ(trace[i], classify_scene(sc.scenes[i]));
}

TEST(Suites, DeterministicForSameSeed) {
  const Scenario a = make_highway(300, 7);
  const Scenario b = make_highway(300, 7);
  ASSERT_EQ(a.scenes.size(), b.scenes.size());
  for (std::size_t i = 0; i < a.scenes.size(); i += 29) {
    ASSERT_EQ(a.scenes[i].actors.size(), b.scenes[i].actors.size());
    for (std::size_t j = 0; j < a.scenes[i].actors.size(); ++j)
      EXPECT_DOUBLE_EQ(a.scenes[i].actors[j].distance_m,
                       b.scenes[i].actors[j].distance_m);
  }
}

TEST(Suites, DifferentSeedsDiffer) {
  const Scenario a = make_urban(300, 1);
  const Scenario b = make_urban(300, 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.scenes.size(); ++i)
    if (a.scenes[i].actors.size() != b.scenes[i].actors.size())
      any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Suites, RequestedFrameCount) {
  for (int frames : {30, 450}) {
    EXPECT_EQ(make_highway(frames, 3).frame_count(),
              static_cast<std::size_t>(frames));
    EXPECT_EQ(make_urban(frames, 3).frame_count(),
              static_cast<std::size_t>(frames));
    EXPECT_EQ(make_cut_in(frames, 3).frame_count(),
              static_cast<std::size_t>(frames));
    EXPECT_EQ(make_degraded(frames, 3).frame_count(),
              static_cast<std::size_t>(frames));
  }
  EXPECT_THROW(make_highway(0, 3), PreconditionError);
}

TEST(Suites, CutInProducesCriticalBursts) {
  const Scenario sc = make_cut_in(900, 11);
  const auto trace = criticality_trace(sc);
  int critical_or_high = 0, low = 0;
  for (auto c : trace) {
    critical_or_high += (c >= CriticalityClass::High);
    low += (c == CriticalityClass::Low);
  }
  EXPECT_GT(critical_or_high, 10);   // the scripted cut-ins bite
  EXPECT_GT(low, 300);               // but most of the drive is calm
}

TEST(Suites, HighwayMostlyCalm) {
  const Scenario sc = make_highway(900, 13);
  const auto trace = criticality_trace(sc);
  int low_or_medium = 0;
  for (auto c : trace) low_or_medium += (c <= CriticalityClass::Medium);
  EXPECT_GT(low_or_medium, 600);
}

TEST(Suites, DegradedHasVisibilityDrops) {
  const Scenario sc = make_degraded(1200, 17);
  double min_vis = 1.0;
  for (const Scene& s : sc.scenes) min_vis = std::min(min_vis, s.visibility);
  EXPECT_LT(min_vis, 0.75);
}

TEST(Suites, UrbanContainsVulnerableRoadUsers) {
  const Scenario sc = make_urban(900, 19);
  int vru = 0;
  for (const Scene& s : sc.scenes)
    for (const Actor& a : s.actors)
      vru += (a.type == ActorType::Pedestrian ||
              a.type == ActorType::Cyclist);
  EXPECT_GT(vru, 0);
}

TEST(Suites, StandardSuitesBundle) {
  const auto suites = standard_suites(60, 100);
  ASSERT_EQ(suites.size(), 5u);
  EXPECT_EQ(suites[0].name, "highway");
  EXPECT_EQ(suites[1].name, "urban");
  EXPECT_EQ(suites[2].name, "cut_in");
  EXPECT_EQ(suites[3].name, "degraded");
  EXPECT_EQ(suites[4].name, "intersection");
}

TEST(ActorTypes, Names) {
  EXPECT_STREQ(actor_type_name(ActorType::Pedestrian), "pedestrian");
  EXPECT_STREQ(actor_type_name(ActorType::Obstacle), "obstacle");
}

}  // namespace
}  // namespace rrp::sim

namespace rrp::sim {
namespace {

using core::CriticalityClass;

TEST(Intersection, DeterministicAndSized) {
  const Scenario a = make_intersection(600, 3);
  const Scenario b = make_intersection(600, 3);
  ASSERT_EQ(a.frame_count(), 600u);
  for (std::size_t i = 0; i < a.scenes.size(); i += 37) {
    ASSERT_EQ(a.scenes[i].actors.size(), b.scenes[i].actors.size());
    for (std::size_t j = 0; j < a.scenes[i].actors.size(); ++j)
      EXPECT_DOUBLE_EQ(a.scenes[i].actors[j].lateral_m,
                       b.scenes[i].actors[j].lateral_m);
  }
}

TEST(Intersection, CrossersTraverseTheCorridor) {
  const Scenario sc = make_intersection(1800, 5);
  // Criticality must rise (proximity floor) while a walker is in-corridor
  // and fall once it leaves — i.e. the trace has both High and Low frames.
  const auto trace = criticality_trace(sc);
  int high = 0, low = 0;
  for (auto c : trace) {
    high += (c >= CriticalityClass::High);
    low += (c == CriticalityClass::Low);
  }
  EXPECT_GT(high, 10);
  EXPECT_GT(low, 100);
}

TEST(Intersection, OnlyVulnerableRoadUsers) {
  const Scenario sc = make_intersection(900, 7);
  for (const Scene& s : sc.scenes)
    for (const Actor& a : s.actors)
      EXPECT_TRUE(a.type == ActorType::Pedestrian ||
                  a.type == ActorType::Cyclist);
}

}  // namespace
}  // namespace rrp::sim
