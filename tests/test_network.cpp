#include <gtest/gtest.h>

#include "nn/network.h"
#include "test_support.h"
#include "util/checks.h"

namespace rrp::nn {
namespace {

using rrp::testing::random_tensor;
using rrp::testing::tiny_residual_net;

TEST(Network, ForwardComposesLayers) {
  Network net("n");
  auto& l1 = net.emplace<Linear>("fc1", 2, 2, false);
  auto& l2 = net.emplace<Linear>("fc2", 2, 1, false);
  l1.weight() = Tensor({2, 2}, {1, 0, 0, 1});  // identity
  l2.weight() = Tensor({1, 2}, {1, 1});        // sum
  const Tensor y = net.forward(Tensor({1, 2}, {3, 4}), false);
  EXPECT_FLOAT_EQ(y[0], 7.0f);
}

TEST(Network, LayerAccessAndCount) {
  Network net("n");
  net.emplace<ReLU>("r1");
  net.emplace<ReLU>("r2");
  EXPECT_EQ(net.layer_count(), 2u);
  EXPECT_EQ(net.layer(1).name(), "r2");
  EXPECT_THROW(net.layer(2), PreconditionError);
}

TEST(Network, ParamsAreHierarchicallyNamed) {
  Network net = tiny_residual_net(1);
  std::vector<std::string> names;
  for (auto& p : net.params()) names.push_back(p.name);
  EXPECT_NE(std::find(names.begin(), names.end(), "block.conv1.weight"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "head.bias"), names.end());
}

TEST(Network, AllLayersRecursesIntoResidual) {
  Network net = tiny_residual_net(1);
  auto all = net.all_layers();
  auto leaves = net.leaf_layers();
  // all includes the Residual container itself, leaves do not.
  EXPECT_EQ(all.size(), leaves.size() + 1);
  bool found_inner = false;
  for (auto* l : leaves) found_inner |= (l->name() == "block.conv2");
  EXPECT_TRUE(found_inner);
}

TEST(Network, FindLocatesNestedLayers) {
  Network net = tiny_residual_net(1);
  EXPECT_NE(net.find("block.conv1"), nullptr);
  EXPECT_NE(net.find("block"), nullptr);
  EXPECT_EQ(net.find("nope"), nullptr);
}

TEST(Network, OutputShapePropagates) {
  Network net = rrp::testing::tiny_conv_net(2);
  EXPECT_EQ(net.output_shape({4, 1, 8, 8}), (Shape{4, 3}));
}

TEST(Network, MacsSumOverLayers) {
  Network net("n");
  net.emplace<Linear>("a", 10, 20);
  net.emplace<ReLU>("r");
  net.emplace<Linear>("b", 20, 5);
  EXPECT_EQ(net.macs({1, 10}), 200 + 100);
}

TEST(Network, ParamCountAndNonzero) {
  Network net("n");
  auto& lin = net.emplace<Linear>("fc", 4, 2, false);
  EXPECT_EQ(net.param_count(), 8);
  lin.weight().fill(1.0f);
  lin.weight()[0] = 0.0f;
  EXPECT_EQ(net.param_nonzero(), 7);
}

TEST(Network, ZeroGradClearsAll) {
  Network net = rrp::testing::tiny_conv_net(3);
  const Tensor x = random_tensor({2, 1, 8, 8}, 4);
  const Tensor y = net.forward(x, true);
  Tensor g(y.shape());
  g.fill(1.0f);
  net.backward(g);
  net.zero_grad();
  for (auto& p : net.params()) EXPECT_EQ(p.grad->max_abs(), 0.0f);
}

TEST(Network, CloneIsIndependentDeepCopy) {
  Network net = rrp::testing::tiny_conv_net(5);
  Network copy = net.clone();
  const Tensor x = random_tensor({1, 1, 8, 8}, 6);
  const Tensor y1 = net.forward(x, false);
  // Mutate the original; the clone must be unaffected.
  for (auto& p : net.params()) p.value->fill(0.0f);
  const Tensor y2 = copy.forward(x, false);
  EXPECT_TRUE(y1.equals(y2));
  EXPECT_EQ(copy.name(), net.name());
}

TEST(Residual, AddsIdentity) {
  // Body that outputs all zeros -> residual output equals input.
  Network body("b");
  auto& conv = body.emplace<Conv2D>("c", 2, 2, 3, 1, 1);
  conv.weight().fill(0.0f);
  Network net("n");
  net.add(std::make_unique<Residual>("res", std::move(body)));
  const Tensor x = random_tensor({1, 2, 4, 4}, 7);
  const Tensor y = net.forward(x, false);
  EXPECT_NEAR(y.max_abs_diff(x), 0.0f, 1e-6f);
}

TEST(Residual, RejectsShapeChangingBody) {
  Network body("b");
  body.emplace<Conv2D>("c", 2, 3, 3, 1, 1);  // channel change
  Residual res("res", std::move(body));
  EXPECT_THROW(res.output_shape({1, 2, 4, 4}), PreconditionError);
  EXPECT_THROW(res.forward(random_tensor({1, 2, 4, 4}, 8), false),
               PreconditionError);
}

TEST(Residual, RejectsEmptyBody) {
  EXPECT_THROW(Residual("r", Network("b")), PreconditionError);
}

TEST(Residual, MacsComeFromBody) {
  Network net = tiny_residual_net(9);
  const Shape in{1, 1, 8, 8};
  EXPECT_GT(net.macs(in), 0);
  // Residual contributes its body's MACs exactly.
  Layer* res = net.find("block");
  ASSERT_NE(res, nullptr);
  auto* r = dynamic_cast<Residual*>(res);
  EXPECT_EQ(r->macs({1, 6, 8, 8}), r->body().macs({1, 6, 8, 8}));
}

TEST(Network, MoveSemantics) {
  Network a = rrp::testing::tiny_conv_net(10);
  const Tensor x = random_tensor({1, 1, 8, 8}, 11);
  const Tensor y1 = a.forward(x, false);
  Network b = std::move(a);
  const Tensor y2 = b.forward(x, false);
  EXPECT_TRUE(y1.equals(y2));
}

}  // namespace
}  // namespace rrp::nn
