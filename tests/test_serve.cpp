// test_serve.cpp — the fleet-scale serving engine (src/serve).
//
// The acceptance properties (DESIGN.md invariant 16):
//   (1) the full serve report — per-stream telemetry, the admission/
//       degrade/shed event trace, and the metrics snapshot — is
//       byte-identical at RRP_THREADS=1/2/8;
//   (2) a 1-stream engine run is byte-identical to the legacy sim/runner
//       path over the same (scenario, noise) seeds;
//   (3) admission/shedding is a pure function of the arrival schedule:
//       replaying the same specs reproduces the identical event trace,
//       across ~100 seeded configurations;
//   (4) a shed stream's resources are fully reclaimed — only the SHARED
//       ladder survives it.
#include <gtest/gtest.h>

#include <sstream>

#include "core/metrics.h"
#include "serve/serve_engine.h"
#include "sim/runner.h"
#include "sim/scenario_gen.h"
#include "test_support.h"
#include "util/checks.h"
#include "util/cli.h"
#include "util/thread_pool.h"

namespace rrp::serve {
namespace {

// ---------------------------------------------------------------------------
// AdmissionController: the pure overload state machine.
// ---------------------------------------------------------------------------

AdmissionConfig small_admission() {
  AdmissionConfig cfg;
  cfg.max_streams = 2;
  cfg.degrade_miss_ratio = 0.25;
  cfg.shed_miss_ratio = 0.5;
  cfg.restore_miss_ratio = 0.05;
  cfg.window_ticks = 4;
  cfg.restore_healthy_ticks = 2;
  cfg.cooldown_ticks = 1;
  cfg.max_floor = 2;
  return cfg;
}

TEST(ServeAdmission, CapacityPredicate) {
  AdmissionController ctl(small_admission());
  EXPECT_TRUE(ctl.admit(0));
  EXPECT_TRUE(ctl.admit(1));
  EXPECT_FALSE(ctl.admit(2));
  EXPECT_FALSE(ctl.admit(3));
}

TEST(ServeAdmission, EscalatesDegradeThenShedThenRestores) {
  AdmissionController ctl(small_admission());
  EXPECT_EQ(ctl.level_floor(), 0);

  // Sustained misses: degrade first (floor 1), then a cooldown tick.
  EXPECT_EQ(ctl.update(10, 10, false), OverloadDecision::Degrade);
  EXPECT_EQ(ctl.level_floor(), 1);
  EXPECT_EQ(ctl.update(10, 10, false), OverloadDecision::None) << "cooldown";
  // Still overloaded after the cooldown: degrade to the max floor.
  EXPECT_EQ(ctl.update(10, 10, false), OverloadDecision::Degrade);
  EXPECT_EQ(ctl.level_floor(), 2);
  EXPECT_EQ(ctl.update(10, 10, false), OverloadDecision::None) << "cooldown";
  // Floor at max and the ratio beyond the shed threshold: shed.
  EXPECT_EQ(ctl.update(10, 10, false), OverloadDecision::Shed);
  EXPECT_EQ(ctl.level_floor(), 2) << "shedding does not move the floor";

  // Health returns: the miss window drains, a healthy streak accrues, and
  // the floor steps back down one cooldown-separated notch at a time.
  int restores = 0;
  for (int i = 0; i < 20 && ctl.level_floor() > 0; ++i)
    if (ctl.update(10, 0, false) == OverloadDecision::Restore) ++restores;
  EXPECT_EQ(restores, 2);
  EXPECT_EQ(ctl.level_floor(), 0);
}

TEST(ServeAdmission, SloBreachAloneTriggersDegrade) {
  AdmissionController ctl(small_admission());
  // Zero misses, but the online SLO monitor latched a breach this tick.
  EXPECT_EQ(ctl.update(10, 0, true), OverloadDecision::Degrade);
  EXPECT_EQ(ctl.level_floor(), 1);
}

TEST(ServeAdmission, ResetRestoresInitialState) {
  AdmissionController ctl(small_admission());
  (void)ctl.update(10, 10, false);
  (void)ctl.update(10, 10, false);
  (void)ctl.update(10, 10, false);
  ASSERT_GT(ctl.level_floor(), 0);
  ctl.reset();
  EXPECT_EQ(ctl.level_floor(), 0);
  EXPECT_EQ(ctl.window_miss_ratio(), 0.0);
  EXPECT_EQ(ctl.healthy_ticks(), 0);
}

TEST(ServeAdmission, RejectsContradictoryThresholds) {
  AdmissionConfig bad = small_admission();
  bad.degrade_miss_ratio = 0.8;  // above shed_miss_ratio = 0.5
  EXPECT_THROW(AdmissionController ctl(bad), PreconditionError);
}

// ---------------------------------------------------------------------------
// The shared --threads parsing contract (util/cli.h): strict full-string,
// positive, no trailing garbage — pinned here so rrp_cli can't regress to
// std::stoi's prefix parsing ("4abc" -> 4).
// ---------------------------------------------------------------------------

TEST(CliThreadsFlag, StrictPositiveIntegerParse) {
  EXPECT_EQ(parse_thread_count("1"), 1);
  EXPECT_EQ(parse_thread_count("4"), 4);
  EXPECT_EQ(parse_thread_count("128"), 128);
  EXPECT_FALSE(parse_thread_count("0").has_value());
  EXPECT_FALSE(parse_thread_count("-3").has_value());
  EXPECT_FALSE(parse_thread_count("abc").has_value());
  EXPECT_FALSE(parse_thread_count("4abc").has_value()) << "trailing garbage";
  EXPECT_FALSE(parse_thread_count("").has_value());
  EXPECT_FALSE(parse_thread_count(" 4").has_value());
  EXPECT_FALSE(parse_thread_count("4 ").has_value());
  EXPECT_FALSE(parse_thread_count("+4").has_value());
  EXPECT_FALSE(parse_thread_count("4.0").has_value());
  EXPECT_FALSE(parse_thread_count("99999999999999999999").has_value());
}

// ---------------------------------------------------------------------------
// The engine: same closed-loop fixture as test_campaign — a briefly
// trained conv net on the vision geometry, 3-level structured ladder.
// ---------------------------------------------------------------------------

class ServeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = nn::Network("serve-net");
    net_.emplace<nn::Conv2D>("conv1", 1, 6, 3, 1, 1);
    net_.emplace<nn::ReLU>("relu1");
    net_.emplace<nn::MaxPool>("pool1", 4, 4);
    net_.emplace<nn::Flatten>("flatten");
    net_.emplace<nn::Linear>("fc1", 6 * 4 * 4, 16);
    net_.emplace<nn::ReLU>("relu2");
    auto& head = net_.emplace<nn::Linear>("head", 16, sim::kNumClasses);
    head.set_out_prunable(false);
    Rng rng(1);
    nn::init_network(net_, rng);

    sim::RunConfig cfg;
    Rng data_rng(2);
    data_ = sim::make_dataset(400, cfg.vision, data_rng);
    rrp::testing::quick_train(net_, data_, 4);

    lib_ = prune::PruneLevelLibrary::build_structured(
        net_, {0.0, 0.3, 0.6}, sim::input_shape(cfg.vision));

    inputs_.net = &net_;
    inputs_.levels = &lib_;
    inputs_.certified.max_level_for = {2, 1, 1, 0};
  }

  /// A small mixed fleet: capacity pressure (4 specs, capacity 3),
  /// staggered arrivals, two suites, a fixed-policy straggler.
  static std::vector<StreamSpec> mixed_fleet(int frames) {
    std::vector<StreamSpec> specs(4);
    specs[0].scenario = "cut_in";
    specs[0].frames = frames;
    specs[0].priority = 3;
    specs[1].scenario = "urban";
    specs[1].frames = frames;
    specs[1].priority = 2;
    specs[2].scenario = "cut_in";
    specs[2].frames = frames;
    specs[2].arrival_tick = 3;
    specs[2].priority = 1;
    specs[2].policy = "fixed1";
    specs[3].scenario = "urban";
    specs[3].frames = frames;
    specs[3].arrival_tick = 3;
    specs[3].priority = 0;
    return specs;
  }

  static ServeConfig contended_config() {
    ServeConfig cfg;
    cfg.seed = 4242;
    cfg.tick_budget_ms = 0.5;  // tiny modeled host: congestion engages
    cfg.admission.max_streams = 3;
    cfg.admission.window_ticks = 8;
    cfg.admission.cooldown_ticks = 4;
    cfg.admission.restore_healthy_ticks = 6;
    return cfg;
  }

  /// Every byte the engine produces: the rendered report, each stream's
  /// per-frame telemetry CSV, and the full metrics snapshot.
  static std::string full_digest(ServeEngine& engine,
                                 const std::vector<StreamSpec>& specs) {
    core::reset_observability();
    const ServeReport report = engine.run(specs);
    std::ostringstream os;
    write_serve_report(report, os);
    for (const StreamResult& r : report.streams) {
      os << "--- stream " << r.spec_index << " telemetry ---\n";
      r.run.telemetry.write_csv(os);
    }
    os << "--- metrics ---\n";
    core::capture_metrics().write_csv(os);
    return os.str();
  }

  nn::Network net_;
  nn::Dataset data_;
  prune::PruneLevelLibrary lib_;
  ServeInputs inputs_;
};

TEST_F(ServeFixture, ReportByteIdenticalAcrossThreadCounts) {
  ServeEngine engine(inputs_, contended_config());
  const std::vector<StreamSpec> specs = mixed_fleet(40);

  std::string reference;
  {
    ThreadCountGuard guard(1);
    reference = full_digest(engine, specs);
  }
  // The trace must show real multi-stream dynamics, or this pin is
  // vacuous: an admission rejection (4 specs, capacity 3) at minimum.
  EXPECT_NE(reference.find("reject"), std::string::npos);
  for (int threads : {2, 8}) {
    ThreadCountGuard guard(threads);
    EXPECT_EQ(full_digest(engine, specs), reference) << "threads=" << threads;
  }
}

TEST_F(ServeFixture, SoloStreamMatchesLegacyRunnerByteForByte) {
  ServeConfig cfg;
  cfg.seed = 777;
  ServeEngine engine(inputs_, cfg);

  StreamSpec spec;
  spec.scenario = "cut_in";
  spec.frames = 50;
  std::vector<StreamSpec> specs = {spec};
  const ServeReport report = engine.run(specs);
  ASSERT_EQ(report.streams.size(), 1u);
  const sim::RunResult& served = report.streams[0].run;

  // The legacy path: sim/runner over a fresh compacted-ladder provider,
  // reproducing the stream's seeds via the documented split.
  sim::RunConfig rc;
  rc.deadline_ms = spec.deadline_ms;
  rc.noise_seed = stream_noise_seed(cfg.seed, 0);
  sim::Scenario scenario = sim::make_suite_or_dsl(
      spec.scenario, spec.frames, stream_scenario_seed(cfg.seed, 0));
  core::CompactedLadderProvider provider(net_, lib_,
                                         sim::input_shape(rc.vision));
  core::CriticalityGreedyPolicy policy(inputs_.certified, spec.hysteresis,
                                       provider.level_count());
  core::SafetyMonitor monitor(inputs_.certified);
  core::RuntimeController controller(policy, provider, &monitor);
  const sim::RunResult legacy = sim::run_scenario(scenario, controller, rc);

  // Frame-for-frame byte identity of the telemetry...
  std::ostringstream served_csv, legacy_csv;
  served.telemetry.write_csv(served_csv);
  legacy.telemetry.write_csv(legacy_csv);
  EXPECT_EQ(served_csv.str(), legacy_csv.str());
  // ...and the summary (the provider NAME differs by design:
  // "reversible-fastpath-view" vs "reversible-fastpath").
  EXPECT_EQ(served.summary.frames, legacy.summary.frames);
  EXPECT_EQ(served.summary.accuracy, legacy.summary.accuracy);
  EXPECT_EQ(served.summary.deadline_miss_rate,
            legacy.summary.deadline_miss_rate);
  EXPECT_EQ(served.summary.mean_level, legacy.summary.mean_level);
  EXPECT_EQ(served.summary.level_switches, legacy.summary.level_switches);
  EXPECT_EQ(served.summary.total_energy_mj, legacy.summary.total_energy_mj);
  EXPECT_EQ(served.policy, legacy.policy) << "FloorPolicy must keep the "
                                             "inner policy's identity";
}

TEST_F(ServeFixture, OverloadDegradesThenShedsAndReclaims) {
  ServeConfig cfg;
  cfg.seed = 99;
  cfg.tick_budget_ms = 0.25;
  cfg.admission.max_streams = 4;
  cfg.admission.window_ticks = 4;
  cfg.admission.cooldown_ticks = 2;
  ServeEngine engine(inputs_, cfg);

  // An impossible deadline: every frame misses, so the ladder must walk
  // Degrade -> ... -> max floor -> Shed, deterministically.
  std::vector<StreamSpec> specs = mixed_fleet(60);
  for (StreamSpec& s : specs) s.deadline_ms = 0.01;
  const ServeReport report = engine.run(specs);

  EXPECT_GT(report.degrades, 0);
  // max_floor 0 in the config means "deepest ladder level"; the engine
  // resolves it at construction, so read it back from the engine.
  EXPECT_EQ(engine.config().admission.max_floor,
            engine.shared_provider().level_count() - 1);
  EXPECT_EQ(report.final_floor, engine.config().admission.max_floor);
  ASSERT_GT(report.sheds, 0);

  // The shed stream: identified in the trace, partial telemetry, and its
  // per-stream resources fully reclaimed (only the shared ladder is left).
  bool found_shed = false;
  for (const StreamResult& r : report.streams) {
    if (r.shed_tick < 0) continue;
    found_shed = true;
    EXPECT_GE(r.shed_tick, r.admitted_tick);
    EXPECT_LT(r.frames_executed,
              static_cast<std::int64_t>(specs[r.spec_index].frames));
    EXPECT_EQ(r.frames_executed,
              static_cast<std::int64_t>(r.run.telemetry.records().size()));
  }
  EXPECT_TRUE(found_shed);
  EXPECT_EQ(engine.active_stream_count(), 0);

  // Victim order: shedding drops the lowest-priority stream first.
  for (const AdmissionEvent& e : report.events) {
    if (e.action != ServeAction::Shed) continue;
    EXPECT_EQ(e.stream, "stream3") << "priority 0 must shed first";
    break;
  }

  // The shared ladder survives shedding: a fresh uncontended run over the
  // same engine completes cleanly.
  std::vector<StreamSpec> calm(1);
  calm[0].frames = 10;
  const ServeReport after = engine.run(calm);
  EXPECT_EQ(after.sheds, 0);
  EXPECT_EQ(after.frames, 10);
  EXPECT_EQ(engine.active_stream_count(), 0);
}

// Property: the admission/degrade/shed trace is a pure function of the
// arrival schedule and SLO state — replaying the same specs through the
// same engine yields the identical event trace and report bytes.  ~100
// seeded configurations: 50 schedules x {contended, uncontended}.
TEST_F(ServeFixture, ReplayReproducesEventTraceAcross100SeededConfigs) {
  ServeConfig contended = contended_config();
  contended.admission.max_streams = 2;
  ServeConfig uncontended;
  uncontended.seed = 31337;
  ServeEngine engines[2] = {ServeEngine(inputs_, contended),
                            ServeEngine(inputs_, uncontended)};

  for (int c = 0; c < 50; ++c) {
    Rng rng(static_cast<std::uint64_t>(c) * 1000003u + 17u);
    const int n_streams = 2 + static_cast<int>(rng.next_u64() % 3);
    std::vector<StreamSpec> specs(static_cast<std::size_t>(n_streams));
    for (StreamSpec& s : specs) {
      s.scenario = (rng.next_u64() % 2 == 0) ? "cut_in" : "urban";
      s.policy = (rng.next_u64() % 3 == 0) ? "fixed1" : "greedy";
      s.frames = 8 + static_cast<int>(rng.next_u64() % 10);
      s.arrival_tick = static_cast<std::int64_t>(rng.next_u64() % 6);
      s.priority = static_cast<int>(rng.next_u64() % 4);
      s.deadline_ms = (rng.next_u64() % 4 == 0) ? 0.05 : 5.0;
    }
    ServeEngine& engine = engines[c % 2];

    const ServeReport first = engine.run(specs);
    const ServeReport second = engine.run(specs);

    EXPECT_EQ(first.events, second.events) << "config " << c;
    std::ostringstream a, b;
    write_serve_report(first, a);
    write_serve_report(second, b);
    EXPECT_EQ(a.str(), b.str()) << "config " << c;
    EXPECT_EQ(engine.active_stream_count(), 0) << "config " << c;
  }
}

// Arrivals beyond capacity are rejected in deterministic arrival order,
// and rejected streams execute zero frames.
TEST_F(ServeFixture, RejectionIsDeterministicAndExecutesNothing) {
  ServeConfig cfg;
  cfg.seed = 5;
  cfg.admission.max_streams = 1;
  ServeEngine engine(inputs_, cfg);

  std::vector<StreamSpec> specs(3);
  for (StreamSpec& s : specs) s.frames = 12;
  const ServeReport report = engine.run(specs);

  EXPECT_EQ(report.admitted, 1);
  EXPECT_EQ(report.rejected, 2);
  ASSERT_GE(report.events.size(), 3u);
  EXPECT_EQ(report.events[0].action, ServeAction::Admit);
  EXPECT_EQ(report.events[0].stream, "stream0");
  EXPECT_EQ(report.events[1].action, ServeAction::Reject);
  EXPECT_EQ(report.events[1].stream, "stream1");
  EXPECT_EQ(report.events[2].action, ServeAction::Reject);
  EXPECT_EQ(report.events[2].stream, "stream2");
  for (const StreamResult& r : report.streams)
    if (r.admitted_tick < 0) {
      EXPECT_EQ(r.frames_executed, 0);
      EXPECT_TRUE(r.run.telemetry.records().empty());
    }
}

}  // namespace
}  // namespace rrp::serve
