#include <gtest/gtest.h>

#include "core/safety_monitor.h"
#include "util/checks.h"

namespace rrp::core {
namespace {

TEST(SafetyMonitor, DefaultsAreMonotone) {
  SafetyMonitor m;
  EXPECT_GE(m.certified_max(CriticalityClass::Low),
            m.certified_max(CriticalityClass::Medium));
  EXPECT_GE(m.certified_max(CriticalityClass::Medium),
            m.certified_max(CriticalityClass::High));
  EXPECT_GE(m.certified_max(CriticalityClass::High),
            m.certified_max(CriticalityClass::Critical));
  EXPECT_EQ(m.certified_max(CriticalityClass::Critical), 0);
}

TEST(SafetyMonitor, RejectsNonMonotoneConfig) {
  SafetyConfig bad;
  bad.max_level_for = {1, 2, 0, 0};  // Medium allows more than Low
  EXPECT_THROW(SafetyMonitor{bad}, PreconditionError);
}

TEST(SafetyMonitor, RejectsNegativeLevels) {
  SafetyConfig bad;
  bad.max_level_for = {2, 1, 0, -1};
  EXPECT_THROW(SafetyMonitor{bad}, PreconditionError);
}

TEST(SafetyMonitor, ScreenPassesCompliantRequests) {
  SafetyMonitor m;
  EXPECT_EQ(m.screen(0, CriticalityClass::Low, 3), 3);
  EXPECT_EQ(m.veto_count(), 0);
  EXPECT_TRUE(m.log().empty());
}

TEST(SafetyMonitor, ScreenVetoesExcessPruning) {
  SafetyMonitor m;
  EXPECT_EQ(m.screen(7, CriticalityClass::Critical, 4), 0);
  EXPECT_EQ(m.veto_count(), 1);
  ASSERT_EQ(m.log().size(), 1u);
  const AssuranceRecord& rec = m.log()[0];
  EXPECT_EQ(rec.frame, 7);
  EXPECT_TRUE(rec.veto);
  EXPECT_FALSE(rec.violation);
  EXPECT_EQ(rec.requested_level, 4);
  EXPECT_EQ(rec.enforced_level, 0);
}

TEST(SafetyMonitor, AuditCountsViolations) {
  SafetyMonitor m;
  EXPECT_TRUE(m.audit(0, CriticalityClass::Low, 4));
  EXPECT_FALSE(m.audit(1, CriticalityClass::Critical, 2));
  EXPECT_EQ(m.violation_count(), 1);
  EXPECT_EQ(m.audited_frames(), 2);
  ASSERT_EQ(m.log().size(), 1u);
  EXPECT_TRUE(m.log()[0].violation);
  EXPECT_EQ(m.log()[0].frame, 1);
}

TEST(SafetyMonitor, ClearResetsEverything) {
  SafetyMonitor m;
  m.screen(0, CriticalityClass::Critical, 3);
  m.audit(0, CriticalityClass::Critical, 3);
  m.clear();
  EXPECT_EQ(m.veto_count(), 0);
  EXPECT_EQ(m.violation_count(), 0);
  EXPECT_EQ(m.audited_frames(), 0);
  EXPECT_TRUE(m.log().empty());
}

TEST(SafetyMonitor, CriticalityNames) {
  EXPECT_STREQ(criticality_name(CriticalityClass::Low), "Low");
  EXPECT_STREQ(criticality_name(CriticalityClass::Critical), "Critical");
}

class SafetyLadderSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SafetyLadderSweep, ScreenNeverExceedsCertifiedMax) {
  const auto [crit, requested] = GetParam();
  SafetyMonitor m;
  const auto c = static_cast<CriticalityClass>(crit);
  const int enforced = m.screen(0, c, requested);
  EXPECT_LE(enforced, m.certified_max(c));
  EXPECT_LE(enforced, requested);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SafetyLadderSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(0, 1, 2, 3, 4)));

}  // namespace
}  // namespace rrp::core
