#include <gtest/gtest.h>

#include "prune/mask.h"
#include "prune/planner.h"
#include "test_support.h"
#include "util/checks.h"

namespace rrp::prune {
namespace {

using rrp::testing::random_tensor;
using rrp::testing::tiny_bn_net;
using rrp::testing::tiny_conv_net;
using rrp::testing::tiny_input_shape;
using rrp::testing::tiny_residual_net;

TEST(ChannelMask, Counts) {
  ChannelMask cm{"l", {1, 0, 1, 0, 0}};
  EXPECT_EQ(cm.kept_count(), 2u);
  EXPECT_EQ(cm.pruned_count(), 3u);
}

TEST(NetworkMask, ApplyZeroesMaskedElements) {
  nn::Network net("n");
  auto& lin = net.emplace<nn::Linear>("fc", 2, 2, false);
  lin.weight() = nn::Tensor({2, 2}, {1, 2, 3, 4});
  NetworkMask mask;
  mask.set("fc.weight", {1, 0, 0, 1});
  mask.apply(net);
  EXPECT_FLOAT_EQ(lin.weight()[0], 1.0f);
  EXPECT_FLOAT_EQ(lin.weight()[1], 0.0f);
  EXPECT_FLOAT_EQ(lin.weight()[2], 0.0f);
  EXPECT_FLOAT_EQ(lin.weight()[3], 4.0f);
}

TEST(NetworkMask, ApplyValidatesNamesAndSizes) {
  nn::Network net("n");
  net.emplace<nn::Linear>("fc", 2, 2, false);
  NetworkMask bad_name;
  bad_name.set("nope.weight", {1});
  EXPECT_THROW(bad_name.apply(net), PreconditionError);
  NetworkMask bad_size;
  bad_size.set("fc.weight", {1, 0});
  EXPECT_THROW(bad_size.apply(net), PreconditionError);
}

TEST(NetworkMask, SparsityAndCounts) {
  nn::Network net("n");
  net.emplace<nn::Linear>("fc", 4, 2, false);  // 8 params
  NetworkMask mask;
  mask.set("fc.weight", {1, 0, 0, 0, 1, 1, 1, 1});
  EXPECT_EQ(mask.pruned_count(), 3);
  EXPECT_NEAR(mask.sparsity(net), 3.0 / 8.0, 1e-12);
}

TEST(NetworkMask, NestingDetection) {
  NetworkMask coarse, fine;
  coarse.set("w", {1, 1, 0, 1});
  fine.set("w", {1, 0, 0, 1});
  EXPECT_TRUE(coarse.nested_within(fine));
  EXPECT_FALSE(fine.nested_within(coarse));
}

TEST(NetworkMask, NestingWithMissingParam) {
  NetworkMask a, b;
  a.set("w", {1, 1, 1});  // nothing pruned
  EXPECT_TRUE(a.nested_within(b));
  a.set("w", {1, 0, 1});
  EXPECT_FALSE(a.nested_within(b));  // b keeps w fully
}

TEST(NetworkMask, DiffCountIsSymmetric) {
  NetworkMask a, b;
  a.set("w", {1, 0, 0, 1});
  b.set("w", {1, 1, 0, 0});
  EXPECT_EQ(a.diff_count(b), 2);
  EXPECT_EQ(b.diff_count(a), 2);
  EXPECT_EQ(a.diff_count(a), 0);
}

TEST(NetworkMask, StorageBytesCountsNamesAndFlags) {
  NetworkMask m;
  m.set("abc", {1, 0});
  EXPECT_EQ(m.storage_bytes(), 3 + 2);
}

TEST(LowerChannelMasks, ZeroesProducerRowsAndBias) {
  nn::Network net = tiny_conv_net(1);
  auto* conv1 = dynamic_cast<nn::Conv2D*>(net.find("conv1"));
  ChannelMask cm{"conv1", {1, 1, 0, 1, 1, 1}};
  const NetworkMask mask = lower_channel_masks(net, {cm}, tiny_input_shape());
  mask.apply(net);
  // Filter 2 fully zeroed.
  for (int i = 0; i < conv1->in_channels(); ++i)
    for (int a = 0; a < 3; ++a)
      for (int b = 0; b < 3; ++b)
        EXPECT_EQ(conv1->weight().at(2, i, a, b), 0.0f);
  EXPECT_EQ(conv1->bias()[2], 0.0f);
  // Other filters untouched.
  EXPECT_NE(conv1->weight().at(0, 0, 1, 1), 0.0f);
}

TEST(LowerChannelMasks, ZeroesDownstreamLinearColumnsThroughFlatten) {
  nn::Network net = tiny_conv_net(2);
  auto* fc1 = dynamic_cast<nn::Linear*>(net.find("fc1"));
  ChannelMask cm{"conv1", {1, 1, 0, 1, 1, 1}};
  const NetworkMask mask = lower_channel_masks(net, {cm}, tiny_input_shape());
  mask.apply(net);
  // After pool, spatial is 4x4; channel 2 maps to features [32, 48).
  for (int r = 0; r < fc1->out_features(); ++r)
    for (int f = 32; f < 48; ++f)
      EXPECT_EQ(fc1->weight().at(r, f), 0.0f) << r << "," << f;
  EXPECT_NE(fc1->weight().at(0, 0), 0.0f);
}

TEST(LowerChannelMasks, ZeroesBatchNormGammaBeta) {
  nn::Network net = tiny_bn_net(3);
  auto* bn = dynamic_cast<nn::BatchNorm*>(net.find("bn1"));
  bn->beta().fill(0.5f);
  ChannelMask cm{"conv1", {0, 1, 1, 1, 1, 1}};
  const NetworkMask mask = lower_channel_masks(net, {cm}, tiny_input_shape());
  mask.apply(net);
  EXPECT_EQ(bn->gamma()[0], 0.0f);
  EXPECT_EQ(bn->beta()[0], 0.0f);
  EXPECT_NE(bn->gamma()[1], 0.0f);
}

TEST(LowerChannelMasks, MaskedOutputIdenticalToManualChannelRemoval) {
  // The masked network must output exactly what a network without the
  // pruned channel computes.
  nn::Network net = tiny_conv_net(4);
  nn::Network masked = net.clone();
  ChannelMask cm{"conv1", {1, 0, 1, 1, 0, 1}};
  const NetworkMask mask = lower_channel_masks(masked, {cm},
                                               tiny_input_shape());
  mask.apply(masked);

  const nn::Tensor x = random_tensor({2, 1, 8, 8}, 5);
  const nn::Tensor y_masked = masked.forward(x, false);

  // Manual removal: zero the producer channels in a fresh clone and ALSO
  // zero the consumer columns — i.e. exactly the lowering contract.  Here
  // we instead verify the prediction is unchanged when the dead channels'
  // activations are forced to zero by hand.
  nn::Network probe = net.clone();
  mask.apply(probe);
  EXPECT_TRUE(y_masked.equals(probe.forward(x, false)));
}

TEST(LowerChannelMasks, ResidualBodyOrSemantics) {
  nn::Network net = tiny_residual_net(6);
  ChannelMask cm{"block.conv1", {1, 0, 1, 0, 1, 1}};
  const NetworkMask mask = lower_channel_masks(net, {cm}, tiny_input_shape());
  // block.conv2 input slices for dead channels must be pruned.
  const auto* keep = mask.find("block.conv2.weight");
  ASSERT_NE(keep, nullptr);
  auto* conv2 = dynamic_cast<nn::Conv2D*>(net.find("block.conv2"));
  const int ic = conv2->in_channels();
  const int kk = conv2->kernel() * conv2->kernel();
  // input channel 1 dead -> weights [o][1][*] pruned
  for (int o = 0; o < conv2->out_channels(); ++o)
    for (int t = 0; t < kk; ++t)
      EXPECT_EQ((*keep)[(static_cast<std::size_t>(o) * ic + 1) * kk + t], 0);
  // Nothing AFTER the residual may be pruned: the identity shortcut
  // revives all channels.
  EXPECT_EQ(mask.find("head.weight"), nullptr);
}

TEST(LowerChannelMasks, RejectsUnknownLayer) {
  nn::Network net = tiny_conv_net(7);
  ChannelMask cm{"ghost", {1, 0}};
  EXPECT_THROW(lower_channel_masks(net, {cm}, tiny_input_shape()),
               PreconditionError);
}

TEST(LowerChannelMasks, RejectsNonPrunableLayer) {
  nn::Network net = tiny_conv_net(8);
  ChannelMask cm{"head", {1, 0, 1}};
  EXPECT_THROW(lower_channel_masks(net, {cm}, tiny_input_shape()),
               PreconditionError);
}

TEST(LowerChannelMasks, RejectsAllChannelsPruned) {
  nn::Network net = tiny_conv_net(9);
  ChannelMask cm{"conv1", {0, 0, 0, 0, 0, 0}};
  EXPECT_THROW(lower_channel_masks(net, {cm}, tiny_input_shape()),
               PreconditionError);
}

TEST(LowerChannelMasks, RejectsWidthMismatch) {
  nn::Network net = tiny_conv_net(10);
  ChannelMask cm{"conv1", {1, 0}};
  EXPECT_THROW(lower_channel_masks(net, {cm}, tiny_input_shape()),
               PreconditionError);
}

TEST(LowerChannelMasks, EmptyMaskListYieldsEmptyMask) {
  nn::Network net = tiny_conv_net(11);
  const NetworkMask mask = lower_channel_masks(net, {}, tiny_input_shape());
  EXPECT_EQ(mask.pruned_count(), 0);
}

TEST(FindChannelMask, LookupByName) {
  std::vector<ChannelMask> masks{{"a", {1}}, {"b", {0}}};
  EXPECT_EQ(find_channel_mask(masks, "b"), &masks[1]);
  EXPECT_EQ(find_channel_mask(masks, "c"), nullptr);
}

}  // namespace
}  // namespace rrp::prune
