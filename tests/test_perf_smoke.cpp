// test_perf_smoke.cpp — `ctest -L perf`: pruning must save REAL cycles.
//
// The modeled ladder (platform_model) says deeper levels are cheaper; the
// sparsity-realizing fast path claims the same in wall-clock terms.  This
// smoke measures it: the deepest compacted level of a detection-grade
// model must run measurably faster than the masked dense network.  The
// assertion is deliberately weak (the full methodology with warmup +
// median-of-repeats and the modeled-fit tolerance lives in
// bench/bench_micro.cpp --wall); the measured margin is ~6x, the gate here
// is 1.25x, so host noise cannot flip it while a fast path that stopped
// saving cycles still fails loudly.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/reversible_pruner.h"
#include "models/zoo.h"
#include "prune/levels.h"
#include "util/rng.h"
#include "util/timer.h"

namespace rrp {
namespace {

nn::Tensor random_input(const nn::Shape& shape, std::uint64_t seed) {
  nn::Tensor x(shape);
  Rng rng(seed);
  for (float& v : x.data()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return x;
}

/// Median over `repeats` timed blocks of `iters` inferences each.
template <typename F>
double median_block_us(F&& body, int iters, int repeats) {
  std::vector<double> samples;
  for (int r = 0; r < repeats; ++r) {
    Timer t;
    for (int i = 0; i < iters; ++i) body();
    samples.push_back(t.elapsed_us() / iters);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

TEST(PerfSmoke, DeepCompactedLevelBeatsMaskedDense) {
  Rng rng(202406);
  nn::Network net = models::build_model(models::ModelKind::DetNet, rng);
  const nn::Shape in = models::zoo_input_shape();
  core::CompactedLadderProvider fast(
      net, prune::PruneLevelLibrary::build_structured(net, {0.0, 0.5, 0.85},
                                                      in),
      in);
  const nn::Tensor x = random_input(in, 7);

  core::ReversiblePruner& dense = fast.masked();  // lagging arm at level 0
  fast.set_level(fast.level_count() - 1);

  // Warmup (page-in, frequency ramp), then median-of-5 blocks each.
  for (int i = 0; i < 3; ++i) {
    dense.infer(x);
    fast.infer(x);
  }
  const double dense_us =
      median_block_us([&] { dense.infer(x); }, 10, 5);
  const double fast_us = median_block_us([&] { fast.infer(x); }, 10, 5);

  EXPECT_GT(dense_us / fast_us, 1.25)
      << "deepest compacted level " << fast_us
      << " us/frame vs masked dense " << dense_us
      << " us/frame — the fast path stopped realizing sparsity";
}

}  // namespace
}  // namespace rrp
