#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.h"
#include "test_support.h"
#include "util/checks.h"

namespace rrp::nn {
namespace {

TEST(SoftmaxCE, UniformLogitsGiveLogK) {
  const Tensor logits({2, 4});  // all zeros
  const LossResult r = softmax_cross_entropy(logits, {0, 3});
  EXPECT_NEAR(r.loss, std::log(4.0f), 1e-5f);
}

TEST(SoftmaxCE, ConfidentCorrectIsLowLoss) {
  Tensor logits({1, 3}, {10.0f, -10.0f, -10.0f});
  const LossResult r = softmax_cross_entropy(logits, {0});
  EXPECT_LT(r.loss, 1e-4f);
}

TEST(SoftmaxCE, ConfidentWrongIsHighLoss) {
  Tensor logits({1, 3}, {10.0f, -10.0f, -10.0f});
  const LossResult r = softmax_cross_entropy(logits, {1});
  EXPECT_GT(r.loss, 10.0f);
}

TEST(SoftmaxCE, GradientRowsSumToZero) {
  const Tensor logits = rrp::testing::random_tensor({3, 5}, 1);
  const LossResult r = softmax_cross_entropy(logits, {0, 2, 4});
  for (int i = 0; i < 3; ++i) {
    double s = 0.0;
    for (int c = 0; c < 5; ++c) s += r.grad.at(i, c);
    EXPECT_NEAR(s, 0.0, 1e-6);
  }
}

TEST(SoftmaxCE, GradientMatchesNumeric) {
  Tensor logits = rrp::testing::random_tensor({2, 4}, 2);
  const std::vector<int> labels{1, 3};
  const LossResult r = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    const float numeric = (softmax_cross_entropy(lp, labels).loss -
                           softmax_cross_entropy(lm, labels).loss) /
                          (2 * eps);
    EXPECT_NEAR(r.grad[i], numeric, 5e-3f) << "logit " << i;
  }
}

TEST(SoftmaxCE, ValidatesInput) {
  EXPECT_THROW(softmax_cross_entropy(Tensor({2, 3}), {0}), PreconditionError);
  EXPECT_THROW(softmax_cross_entropy(Tensor({1, 3}), {3}), PreconditionError);
  EXPECT_THROW(softmax_cross_entropy(Tensor({1, 3}), {-1}), PreconditionError);
}

TEST(Mse, KnownValue) {
  const Tensor pred({2}, {1.0f, 3.0f});
  const Tensor target({2}, {0.0f, 1.0f});
  const LossResult r = mse(pred, target);
  EXPECT_NEAR(r.loss, (1.0f + 4.0f) / 2.0f, 1e-6f);
  EXPECT_NEAR(r.grad[0], 1.0f, 1e-6f);   // 2*(1-0)/2
  EXPECT_NEAR(r.grad[1], 2.0f, 1e-6f);   // 2*(3-1)/2
}

TEST(Mse, ShapeMismatchThrows) {
  EXPECT_THROW(mse(Tensor({2}), Tensor({3})), PreconditionError);
}

TEST(Argmax, PicksLargestPerRow) {
  const Tensor logits({2, 3}, {1, 5, 2, 9, 0, 3});
  const auto idx = argmax_rows(logits);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(Accuracy, CountsMatches) {
  const Tensor logits({3, 2}, {1, 0, 0, 1, 1, 0});
  EXPECT_NEAR(accuracy(logits, {0, 1, 1}), 2.0 / 3.0, 1e-9);
}

TEST(Accuracy, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(accuracy(Tensor({1, 2}), std::vector<int>{0}), 1.0);
}

}  // namespace
}  // namespace rrp::nn
