// End-to-end integration: the headline qualitative claims of the paper on
// a miniature version of experiment R-T2, all in one process.
#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/level_train.h"
#include "sim/runner.h"
#include "sim/suites.h"
#include "test_support.h"
#include "util/checks.h"

namespace rrp {
namespace {

using core::CriticalityClass;

class EndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_.deadline_ms = 5.0;
    cfg_.noise_seed = 2024;

    net_ = nn::Network("e2e-net");
    net_.emplace<nn::Conv2D>("conv1", 1, 8, 3, 1, 1);
    net_.emplace<nn::ReLU>("relu1");
    net_.emplace<nn::MaxPool>("pool1", 2, 2);
    net_.emplace<nn::Conv2D>("conv2", 8, 12, 3, 1, 1);
    net_.emplace<nn::ReLU>("relu2");
    net_.emplace<nn::MaxPool>("pool2", 2, 2);
    net_.emplace<nn::Flatten>("flatten");
    net_.emplace<nn::Linear>("fc1", 12 * 4 * 4, 24);
    net_.emplace<nn::ReLU>("relu3");
    auto& head = net_.emplace<nn::Linear>("head", 24, sim::kNumClasses);
    head.set_out_prunable(false);
    Rng rng(3);
    nn::init_network(net_, rng);

    Rng data_rng(4);
    train_ = sim::make_dataset(1200, cfg_.vision, data_rng);
    rrp::testing::quick_train(net_, train_, 6);

    lib_ = prune::PruneLevelLibrary::build_structured(
        net_, {0.0, 0.3, 0.6}, sim::input_shape(cfg_.vision));

    // Brief co-training so intermediate levels are usable.
    core::CoTrainConfig co;
    co.epochs = 2;
    Rng co_rng(5);
    core::co_train_levels(net_, lib_, train_, nn::Dataset{}, co, co_rng);

    certified_.max_level_for = {2, 1, 0, 0};
    scenario_ = sim::make_cut_in(600, 6);
  }

  sim::RunResult run_with(core::InferenceProvider& provider,
                          core::Policy& policy, bool with_monitor = true) {
    core::SafetyMonitor monitor(certified_);
    core::RuntimeController ctl(policy, provider,
                                with_monitor ? &monitor : nullptr);
    return sim::run_scenario(scenario_, ctl, cfg_);
  }

  sim::RunConfig cfg_;
  nn::Network net_;
  nn::Dataset train_;
  prune::PruneLevelLibrary lib_;
  core::SafetyConfig certified_;
  sim::Scenario scenario_;
};

TEST_F(EndToEnd, ReversibleSavesEnergyVersusNoPrune) {
  nn::Network rev_net = net_.clone();
  core::ReversiblePruner rev(rev_net, lib_);
  core::CriticalityGreedyPolicy adaptive(certified_, 3, rev.level_count());
  const auto adaptive_run = run_with(rev, adaptive);

  nn::Network full_net = net_.clone();
  core::ReversiblePruner full(full_net, lib_);
  core::FixedPolicy never_prunes(0);
  const auto noprune_run = run_with(full, never_prunes);

  EXPECT_LT(adaptive_run.summary.total_energy_mj,
            noprune_run.summary.total_energy_mj * 0.9);
  EXPECT_EQ(adaptive_run.summary.safety_violations, 0);
  EXPECT_EQ(noprune_run.summary.safety_violations, 0);
}

TEST_F(EndToEnd, ReversibleBeatsStaticOnCriticalAccuracy) {
  nn::Network rev_net = net_.clone();
  core::ReversiblePruner rev(rev_net, lib_);
  core::CriticalityGreedyPolicy adaptive(certified_, 3, rev.level_count());
  const auto adaptive_run = run_with(rev, adaptive);

  core::StaticProvider deep(net_, lib_, 2);
  core::CriticalityGreedyPolicy policy2(certified_, 3, deep.level_count());
  const auto static_run = run_with(deep, policy2);

  // The static-deep system cannot restore accuracy in hazards.
  EXPECT_GT(static_run.summary.safety_violations, 0);
  EXPECT_EQ(adaptive_run.summary.safety_violations, 0);
  EXPECT_LE(adaptive_run.summary.missed_critical_rate,
            static_run.summary.missed_critical_rate + 0.05);
}

TEST_F(EndToEnd, ReversibleRestoreOrdersOfMagnitudeCheaperThanReload) {
  nn::Network rev_net = net_.clone();
  core::ReversiblePruner rev(rev_net, lib_);
  core::ReloadProvider reload(net_, lib_, core::ReloadProvider::Source::Memory);

  rev.set_level(2);
  reload.set_level(2);
  const auto rev_restore = rev.set_level(0);
  const auto reload_restore = reload.set_level(0);

  // The reversible restore touches only the masked weights; the reload
  // rewrites the whole model (and re-parses the artifact).
  EXPECT_LT(rev_restore.elements_changed, reload_restore.elements_changed);
  EXPECT_LT(rev_restore.bytes_written, reload_restore.bytes_written);
}

TEST_F(EndToEnd, OracleIsAtLeastAsGoodAsCausalOnViolations) {
  nn::Network rev_net = net_.clone();
  core::ReversiblePruner rev(rev_net, lib_);
  const auto trace = sim::criticality_trace(scenario_, cfg_.criticality);
  core::OraclePolicy oracle(certified_, trace, /*lookahead=*/15);
  const auto oracle_run = run_with(rev, oracle);
  EXPECT_EQ(oracle_run.summary.safety_violations, 0);
  EXPECT_GT(oracle_run.summary.mean_level, 0.5);  // it still saves energy
}

TEST_F(EndToEnd, CompactProviderDeliversRealLatencyReduction) {
  core::CompactedLevelCache cache(net_, lib_, sim::input_shape(cfg_.vision));
  cache.set_level(2);
  const std::int64_t pruned_macs =
      cache.active_macs(sim::input_shape(cfg_.vision));
  cache.set_level(0);
  const std::int64_t full_macs =
      cache.active_macs(sim::input_shape(cfg_.vision));
  EXPECT_LT(pruned_macs, full_macs / 2);

  const sim::PlatformModel pm;
  EXPECT_LT(pm.latency_ms(pruned_macs), pm.latency_ms(full_macs));
}

TEST_F(EndToEnd, VetoesHappenOnlyWithAggressivePolicies) {
  nn::Network rev_net = net_.clone();
  core::ReversiblePruner rev(rev_net, lib_);
  core::FixedPolicy reckless(2);  // wants deep pruning always
  const auto run = run_with(rev, reckless);
  EXPECT_GT(run.summary.vetoes, 0);
  EXPECT_EQ(run.summary.safety_violations, 0);  // monitor caught every one
}

}  // namespace
}  // namespace rrp
