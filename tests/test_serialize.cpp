#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "nn/serialize.h"
#include "util/checks.h"
#include "test_support.h"

namespace rrp::nn {
namespace {

using rrp::testing::random_tensor;

void randomize(Network& net, std::uint64_t seed) {
  Rng rng(seed);
  for (auto& p : net.params())
    for (float& v : p.value->data())
      v = static_cast<float>(rng.uniform(-1.0, 1.0));
}

void expect_identical(Network& a, Network& b) {
  auto pa = a.params();
  auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].name, pb[i].name);
    EXPECT_TRUE(pa[i].value->equals(*pb[i].value)) << pa[i].name;
  }
  const Tensor x = random_tensor({2, 1, 8, 8}, 999);
  EXPECT_TRUE(a.forward(x, false).equals(b.forward(x, false)));
}

TEST(Serialize, RoundTripTinyConvNet) {
  Network net = rrp::testing::tiny_conv_net(1);
  randomize(net, 2);
  Network copy = deserialize_network(serialize_network(net));
  expect_identical(net, copy);
  EXPECT_EQ(copy.name(), net.name());
}

TEST(Serialize, RoundTripResidualNet) {
  Network net = rrp::testing::tiny_residual_net(3);
  randomize(net, 4);
  Network copy = deserialize_network(serialize_network(net));
  expect_identical(net, copy);
}

TEST(Serialize, RoundTripBatchNormWithRunningStats) {
  Network net = rrp::testing::tiny_bn_net(5);
  randomize(net, 6);
  auto* bn = dynamic_cast<BatchNorm*>(net.find("bn1"));
  ASSERT_NE(bn, nullptr);
  bn->running_mean() = Tensor({6}, {1, 2, 3, 4, 5, 6});
  bn->running_var() = Tensor({6}, {2, 2, 2, 2, 2, 2});

  Network copy = deserialize_network(serialize_network(net));
  auto* bn2 = dynamic_cast<BatchNorm*>(copy.find("bn1"));
  ASSERT_NE(bn2, nullptr);
  EXPECT_TRUE(bn2->running_mean().equals(bn->running_mean()));
  EXPECT_TRUE(bn2->running_var().equals(bn->running_var()));
  expect_identical(net, copy);
}

TEST(Serialize, RoundTripAllStatelessKinds) {
  Network net("all");
  net.emplace<Conv2D>("c", 1, 2, 3, 1, 1);
  net.emplace<ReLU>("r");
  net.emplace<MaxPool>("mp", 2, 2);
  net.emplace<Conv2D>("c2", 2, 4, 3, 1, 1);
  net.emplace<AvgPool>("ap", 2, 2);
  net.emplace<GlobalAvgPool>("gap");
  net.emplace<Linear>("fc", 4, 3);
  net.emplace<Softmax>("sm");
  randomize(net, 7);
  Network copy = deserialize_network(serialize_network(net));
  const Tensor x = random_tensor({1, 1, 8, 8}, 8);
  EXPECT_TRUE(net.forward(x, false).equals(copy.forward(x, false)));
}

TEST(Serialize, PreservesPrunableFlags) {
  Network net = rrp::testing::tiny_conv_net(9);
  Network copy = deserialize_network(serialize_network(net));
  auto* head = dynamic_cast<Linear*>(copy.find("head"));
  ASSERT_NE(head, nullptr);
  EXPECT_FALSE(head->out_prunable());
  auto* conv1 = dynamic_cast<Conv2D*>(copy.find("conv1"));
  EXPECT_TRUE(conv1->out_prunable());
}

TEST(Serialize, BadMagicThrows) {
  std::string bytes = serialize_network(rrp::testing::tiny_conv_net(10));
  bytes[0] = 'X';
  EXPECT_THROW(deserialize_network(bytes), SerializationError);
}

TEST(Serialize, TruncatedBlobThrows) {
  const std::string bytes = serialize_network(rrp::testing::tiny_conv_net(11));
  for (std::size_t cut : {bytes.size() / 4, bytes.size() / 2,
                          bytes.size() - 3}) {
    EXPECT_THROW(deserialize_network(bytes.substr(0, cut)),
                 SerializationError)
        << "cut at " << cut;
  }
}

TEST(Serialize, TrailingGarbageThrows) {
  std::string bytes = serialize_network(rrp::testing::tiny_conv_net(12));
  bytes += "extra";
  EXPECT_THROW(deserialize_network(bytes), SerializationError);
}

TEST(Serialize, UnsupportedVersionThrows) {
  std::string bytes = serialize_network(rrp::testing::tiny_conv_net(13));
  bytes[4] = 99;  // version field
  EXPECT_THROW(deserialize_network(bytes), SerializationError);
}

TEST(Serialize, EmptyInputThrows) {
  EXPECT_THROW(deserialize_network(""), SerializationError);
}

TEST(Serialize, FileRoundTrip) {
  Network net = rrp::testing::tiny_bn_net(14);
  randomize(net, 15);
  const std::string path =
      (std::filesystem::temp_directory_path() / "rrp_test_net.rrpn").string();
  save_network(net, path);
  Network copy = load_network(path);
  expect_identical(net, copy);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_network("/nonexistent/dir/net.rrpn"), SerializationError);
}

TEST(Serialize, BlobSizeTracksParamCount) {
  Network net = rrp::testing::tiny_conv_net(16);
  const std::string bytes = serialize_network(net);
  // At least 4 bytes per parameter element must be present.
  EXPECT_GT(static_cast<std::int64_t>(bytes.size()),
            net.param_count() * 4);
}

}  // namespace
}  // namespace rrp::nn
