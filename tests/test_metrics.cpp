// test_metrics.cpp — metrics registry (util/metrics.h) and the snapshot /
// reconciliation layer (core/metrics.h).
//
// Determinism is the design axis: counters and histogram buckets are
// commutative atomics (safe from pool chunks), gauges drop writes inside
// parallel regions, and snapshots serialize in sorted name order so equal
// state exports byte-equal.  Names created here are prefixed "test." so
// they never collide with the built-in schema.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "util/checks.h"
#include "util/csv.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace rrp {
namespace {

TEST(Metrics, CounterAddsFromParallelChunksAreExact) {
  metrics::Counter& c = metrics::counter("test.par_counter");
  for (int threads : {1, 3}) {
    ThreadCountGuard pool(threads);
    c.reset();
    parallel_for(0, 1000, 7, [&](std::int64_t begin, std::int64_t end) {
      for (std::int64_t i = begin; i < end; ++i) c.add(2);
    });
    EXPECT_EQ(c.value(), 2000) << "threads=" << threads;
  }
}

TEST(Metrics, GaugeWritesDropInsideParallelRegions) {
  metrics::Gauge& g = metrics::gauge("test.par_gauge");
  g.set(1.25);
  parallel_for(0, 4, 1, [&](std::int64_t, std::int64_t) {
    g.set(99.0);  // schedule-dependent last-write: must be ignored
  });
  EXPECT_DOUBLE_EQ(g.value(), 1.25);
  g.set(2.5);  // back on the driving thread: takes effect
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST(Metrics, HistogramBucketsBySmallestUpperBound) {
  metrics::Histogram& h = metrics::Registry::instance().histogram(
      "test.hist", std::vector<double>{1.0, 2.0, 5.0});
  h.reset();
  h.observe(0.5);   // le_1
  h.observe(1.0);   // le_1 (v <= bound)
  h.observe(1.5);   // le_2
  h.observe(5.0);   // le_5
  h.observe(100.0); // overflow
  EXPECT_EQ(h.bucket_count(0), 2);
  EXPECT_EQ(h.bucket_count(1), 1);
  EXPECT_EQ(h.bucket_count(2), 1);
  EXPECT_EQ(h.bucket_count(3), 1);  // overflow bucket
  EXPECT_EQ(h.total(), 5);
}

TEST(Metrics, HistogramRegistrationDiscipline) {
  // Unregistered lookup without bounds is a caller bug.
  EXPECT_THROW(metrics::histogram("test.never_registered"),
               PreconditionError);
  // Bounds must be strictly increasing.
  EXPECT_THROW(metrics::Registry::instance().histogram(
                   "test.bad_bounds", std::vector<double>{1.0, 1.0}),
               PreconditionError);
  // Re-registration with identical bounds returns the same instance;
  // conflicting bounds are rejected.
  metrics::Histogram& h = metrics::Registry::instance().histogram(
      "test.rereg", std::vector<double>{1.0, 2.0});
  EXPECT_EQ(&metrics::Registry::instance().histogram(
                "test.rereg", std::vector<double>{1.0, 2.0}),
            &h);
  EXPECT_THROW(metrics::Registry::instance().histogram(
                   "test.rereg", std::vector<double>{1.0, 3.0}),
               PreconditionError);
}

TEST(Metrics, BuiltInSchemaIsPreRegistered) {
  // Hot-path names must exist before any worker thread looks them up
  // (lookups never mutate the map; see util/metrics.h).
  const metrics::Registry& reg = metrics::Registry::instance();
  for (const char* name : {"gemm.flops", "prune.bytes_touched",
                           "integrity.scrub_elems", "controller.level_switch",
                           "runner.frames", "pool.chunks"})
    EXPECT_EQ(reg.counters().count(name), 1u) << name;
  EXPECT_EQ(reg.gauges().count("runner.energy_budget_frac"), 1u);
  EXPECT_EQ(reg.histograms().count("runner.frame_ms"), 1u);
  EXPECT_EQ(reg.histograms().count("prune.switch_us"), 1u);
}

TEST(Metrics, SnapshotIsSortedAndRoundTripsAsCsv) {
  metrics::reset_all();
  metrics::counter("test.snap_counter").add(41);
  metrics::gauge("test.snap_gauge").set(0.5);
  const core::MetricsSnapshot snap = core::capture_metrics();

  ASSERT_FALSE(snap.rows.empty());
  for (std::size_t i = 1; i < snap.rows.size(); ++i) {
    // Sorted within each kind block (counters, gauges, histograms).
    if (snap.rows[i - 1].kind == snap.rows[i].kind &&
        snap.rows[i].kind != "histogram") {
      EXPECT_LT(snap.rows[i - 1].name, snap.rows[i].name);
    }
  }

  // The CSV parses back to exactly the same rows (writer/parser pairing).
  std::istringstream is(snap.csv_string());
  std::vector<std::string> fields;
  ASSERT_TRUE(read_csv_record(is, fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"name", "kind", "value"}));
  std::size_t row = 0;
  while (read_csv_record(is, fields)) {
    ASSERT_LT(row, snap.rows.size());
    EXPECT_EQ(fields[0], snap.rows[row].name);
    EXPECT_EQ(fields[1], snap.rows[row].kind);
    EXPECT_EQ(fields[2], snap.rows[row].value);
    ++row;
  }
  EXPECT_EQ(row, snap.rows.size());

  const std::string json = snap.json_string();
  EXPECT_EQ(json.rfind("{\"metrics\":[", 0), 0u);
  EXPECT_NE(json.find("\"name\":\"test.snap_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":41"), std::string::npos);
}

TEST(Metrics, EqualStateSnapshotsAreByteEqual) {
  metrics::reset_all();
  metrics::counter("gemm.calls").add(3);
  const std::string a = core::capture_metrics().csv_string();
  metrics::reset_all();
  metrics::counter("gemm.calls").add(3);
  const std::string b = core::capture_metrics().csv_string();
  EXPECT_EQ(a, b);
}

TEST(Metrics, FrameReconciliationMatchesAndFlagsMissing) {
  core::reset_observability();
  trace::set_enabled(true);

  core::Telemetry telemetry;
  for (int f = 0; f < 3; ++f) {
    core::FrameRecord rec;
    rec.frame = f;
    rec.latency_ms = 1.0 + 0.125 * f;
    rec.switch_us = f == 1 ? 42.5 : 0.0;
    telemetry.add(rec);
    if (f == 2) continue;  // frame 2 gets no span: must be flagged
    trace::ScopedFrame tag(f);
    RRP_SPAN_VAR(span, "frame");
    span.add_modeled_us(rec.latency_ms * 1000.0 + rec.switch_us);
  }
  trace::set_enabled(false);

  const core::FrameReconciliation rec = core::reconcile_frame_spans(telemetry);
  EXPECT_EQ(rec.frames_compared, 2);
  EXPECT_EQ(rec.missing_frame_spans, 1);
  EXPECT_DOUBLE_EQ(rec.max_abs_delta_us, 0.0);
  EXPECT_FALSE(rec.ok()) << "a missing frame span must fail the check";
  trace::reset();
}

TEST(Metrics, HistogramClampsOutOfRangeAtBothEnds) {
  metrics::Histogram& h = metrics::Registry::instance().histogram(
      "test.hist_clamp", std::vector<double>{0.0, 10.0});
  h.reset();
  // Below every bound (including -inf): counted into the FIRST bucket —
  // out-of-range-low is clamped, never dropped.
  h.observe(-1.0);
  h.observe(-std::numeric_limits<double>::infinity());
  h.observe(0.0);  // exactly the lowest bound is still the first bucket
  EXPECT_EQ(h.bucket_count(0), 3);
  // Above every bound (including +inf): the overflow bucket — clamped
  // high, never dropped.
  h.observe(10.0);  // exactly the highest finite bound: NOT overflow
  h.observe(10.0000001);
  h.observe(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.bucket_count(1), 1);
  EXPECT_EQ(h.bucket_count(2), 2);
  // Every observation lands somewhere: total never undercounts.
  EXPECT_EQ(h.total(), 6);
}

TEST(Metrics, CounterOverflowWrapsLikeTwosComplement) {
  metrics::Counter& c = metrics::counter("test.overflow_counter");
  c.reset();
  // fetch_add on std::atomic<int64> is defined to wrap (no UB): a counter
  // driven past INT64_MAX comes back around instead of trapping.  Nothing
  // in the repo gets near this (gemm.flops would need ~centuries), but
  // the behavior is pinned so a future reader knows it is not a crash.
  c.add(std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(c.value(), std::numeric_limits<std::int64_t>::max());
  c.add(1);
  EXPECT_EQ(c.value(), std::numeric_limits<std::int64_t>::min());
  c.add(1);
  EXPECT_EQ(c.value(), std::numeric_limits<std::int64_t>::min() + 1);
  // Negative deltas are legal (used by nothing hot, but symmetric).
  c.reset();
  c.add(-7);
  EXPECT_EQ(c.value(), -7);
}

TEST(Metrics, GaugeDropIsThreadCountInvariantUnderWidePool) {
  // The drop-in-parallel-region contract must hold for EVERY pool size,
  // including wider-than-core pools (RRP_THREADS=8): any chunk body —
  // even one executed by the driving thread itself — is inside the
  // region, so its writes are schedule-dependent and must vanish.
  metrics::Gauge& g = metrics::gauge("test.par_gauge_wide");
  for (int threads : {1, 2, 8}) {
    ThreadCountGuard pool(threads);
    g.set(3.75);
    parallel_for(0, 64, 4, [&](std::int64_t begin, std::int64_t) {
      g.set(static_cast<double>(begin));  // dropped, every chunk
    });
    EXPECT_DOUBLE_EQ(g.value(), 3.75) << "threads=" << threads;
    g.set(static_cast<double>(threads));  // driving thread, outside: lands
    EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(threads));
  }
}

TEST(Metrics, ResetObservabilityClearsBothLayers) {
  trace::set_enabled(true);
  metrics::counter("test.reset_probe").add(5);
  {
    RRP_SPAN("probe");
  }
  trace::set_enabled(false);
  EXPECT_FALSE(trace::spans().empty());
  core::reset_observability();
  EXPECT_TRUE(trace::spans().empty());
  EXPECT_EQ(metrics::counter("test.reset_probe").value(), 0);
}

}  // namespace
}  // namespace rrp
