// test_golden_trace.cpp — golden digests for the observability exports.
//
// One fully pinned run: a LeNet provisioned with a small fixed recipe, a
// fixed-seed cut_in scenario, greedy policy, trace armed.  The telemetry
// CSV and the span-trace CSV are hashed with FNV-1a; the digests below
// are the regression oracle.  Every layer of the stack feeds them —
// kernels, pruner deltas, platform model, controller decisions, span
// suppression — so an unintended behaviour change anywhere shows up as a
// digest flip, under the plain build and the TSan/UBSan builds alike
// (this file is compiled into rrp_tests AND rrp_tsan_smoke).
//
// BUMP PROCEDURE: when an intentional change shifts an export, run
// `tools/bump_golden.sh` — it re-runs this test, copies the printed
// digests over the pinned constants below, and re-verifies.  Do NOT bump
// for a diff you cannot explain — that is the failure mode this test
// exists to catch.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <iomanip>
#include <sstream>
#include <string>

#include "core/integrity.h"
#include "core/metrics.h"
#include "models/trained_cache.h"
#include "sim/runner.h"
#include "sim/suites.h"
#include "util/trace.h"

namespace rrp {
namespace {

// Pinned digests.  See the bump procedure in the header comment.
constexpr std::uint64_t kTelemetryDigest = 0x9dd030b41fa5e8f3ull;
constexpr std::uint64_t kSpanTraceDigest = 0xe3c6c429f141648eull;

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << std::setw(16) << std::setfill('0') << v << "ull";
  return os.str();
}

std::uint64_t digest(const std::string& s) {
  return core::fnv1a64(s.data(), s.size());
}

TEST(GoldenTrace, LenetCutInExportsMatchPinnedDigests) {
  // Private per-process cache dir: the recipe is small enough to retrain
  // in seconds, and a shared dir would race when rrp_tests and
  // rrp_tsan_smoke run concurrently under ctest -j.
  namespace fs = std::filesystem;
  const fs::path cache_dir =
      fs::temp_directory_path() /
      ("rrp_golden_trace_cache_" + std::to_string(::getpid()));

  models::TrainRecipe train;
  train.train_samples = 600;
  train.eval_samples = 200;
  train.epochs = 3;
  models::LevelRecipe levels;
  levels.co_train_epochs = 1;
  models::ProvisionedModel pm = models::get_provisioned(
      models::ModelKind::LeNet, train, levels, cache_dir.string());
  fs::remove_all(cache_dir);

  core::reset_observability();
  trace::set_enabled(true);
  std::string telemetry_csv;
  {
    core::ReversiblePruner rp = pm.make_pruner();
    core::SafetyConfig certified;
    certified.max_level_for = {4, 3, 1, 0};
    core::CriticalityGreedyPolicy policy(certified, 6, rp.level_count());
    core::SafetyMonitor monitor(certified);
    core::RuntimeController ctl(policy, rp, &monitor);

    sim::RunConfig cfg;
    cfg.deadline_ms = 12.0;
    cfg.noise_seed = 0xC0FFEEull;
    const sim::Scenario sc = sim::make_cut_in(150, 41);
    const sim::RunResult result = sim::run_scenario(sc, ctl, cfg);

    std::ostringstream os;
    result.telemetry.write_csv(os);
    telemetry_csv = os.str();

    // The trace must reconcile before it is worth pinning.
    const core::FrameReconciliation rec =
        core::reconcile_frame_spans(result.telemetry);
    ASSERT_TRUE(rec.ok()) << "frame spans do not reconcile with telemetry: "
                          << rec.missing_frame_spans << " missing, max delta "
                          << rec.max_abs_delta_us << " us";
    ASSERT_EQ(rec.frames_compared, 150);
  }
  trace::set_enabled(false);
  const std::string span_csv = trace::span_csv_string();
  core::reset_observability();

  ASSERT_FALSE(telemetry_csv.empty());
  ASSERT_FALSE(span_csv.empty());
  EXPECT_EQ(digest(telemetry_csv), kTelemetryDigest)
      << "telemetry CSV drifted; if intentional, set kTelemetryDigest = "
      << hex64(digest(telemetry_csv))
      << "\n  (or run the scripted bump: tools/bump_golden.sh)";
  EXPECT_EQ(digest(span_csv), kSpanTraceDigest)
      << "span trace CSV drifted; if intentional, set kSpanTraceDigest = "
      << hex64(digest(span_csv))
      << "\n  (or run the scripted bump: tools/bump_golden.sh)";
}

}  // namespace
}  // namespace rrp
