// TSan/ASan smoke suite (ctest -L tsan) — a fast pass over every code path
// that fans work out on the thread pool: raw pool mechanics, the parallel
// GEMM kernels, clone-based batched evaluation, and multi-model zoo
// provisioning.  Build with -DRRP_SANITIZE=thread (or address) and run
// `ctest -L tsan`; any data race in the execution layer surfaces here.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "models/trained_cache.h"
#include "nn/gemm.h"
#include "test_support.h"
#include "util/thread_pool.h"

namespace rrp {
namespace {

TEST(TsanSmoke, PoolStress) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::int64_t> sum{0};
    pool.parallel_for(0, 257, 3, [&](std::int64_t b, std::int64_t e) {
      std::int64_t local = 0;
      for (std::int64_t i = b; i < e; ++i) local += i;
      sum += local;
    });
    ASSERT_EQ(sum.load(), 257 * 256 / 2);
  }
}

TEST(TsanSmoke, ParallelGemm) {
  ThreadCountGuard guard(4);
  const int m = 96, n = 64, k = 80;
  Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(m) * k);
  std::vector<float> b(static_cast<std::size_t>(k) * n);
  std::vector<float> c(static_cast<std::size_t>(m) * n, 0.0f);
  for (float& x : a) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (float& x : b) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (int round = 0; round < 10; ++round)
    nn::gemm(m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, c.data(), n);
  SUCCEED();
}

TEST(TsanSmoke, ParallelEvaluation) {
  ThreadCountGuard guard(4);
  const nn::Dataset data = rrp::testing::tiny_dataset(64, 3);
  nn::Network net = rrp::testing::tiny_bn_net(4);
  // Small batches force several clone-based chunks per evaluation.
  for (int round = 0; round < 5; ++round)
    nn::evaluate_accuracy(net, data, /*batch_size=*/8);
  SUCCEED();
}

TEST(TsanSmoke, ParallelProvisioning) {
  ThreadCountGuard guard(4);
  // Two models provisioned concurrently with a deliberately tiny recipe;
  // a scratch cache dir keeps this hermetic and forces the train path.
  const std::string cache_dir =
      (std::filesystem::temp_directory_path() / "rrp_tsan_cache").string();
  std::filesystem::remove_all(cache_dir);
  std::filesystem::create_directories(cache_dir);

  models::TrainRecipe train_recipe;
  train_recipe.train_samples = 96;
  train_recipe.eval_samples = 32;
  train_recipe.epochs = 1;
  models::LevelRecipe level_recipe;
  level_recipe.ratios = {0.0, 0.5};
  level_recipe.co_train_epochs = 1;

  const std::vector<models::ModelKind> kinds = {models::ModelKind::Mlp,
                                                models::ModelKind::LeNet};
  const auto provisioned = models::get_provisioned_all(
      kinds, train_recipe, level_recipe, cache_dir);
  ASSERT_EQ(provisioned.size(), kinds.size());
  for (const auto& pm : provisioned) {
    EXPECT_EQ(pm.levels.level_count(), 2);
    EXPECT_EQ(pm.level_accuracy.size(), 2u);
  }
  std::filesystem::remove_all(cache_dir);
}

}  // namespace
}  // namespace rrp
