// Fixture: src/util/wprof.* is thread-whitelisted (its aggregation map
// is guarded by a plain mutex) but sits on NO other determinism
// whitelist: the profiler reads time only through the rrp::Timer facade,
// so a direct chrono read or an ambient-entropy draw inside wprof still
// fires R1a/R5 while the mutex machinery below stays silent.  The file
// name shares the "src/util/wprof." prefix so the thread whitelist
// genuinely applies (like thread_pool.fixture.cpp).  Never compiled.
#include <random>
#include <chrono>
#include <mutex>

double sampled_span_us() {
  std::mt19937 gen(std::random_device{}());
  static std::mutex m;
  const std::lock_guard<std::mutex> lock(m);
  const auto t0 = std::chrono::steady_clock::now();
  return t0.time_since_epoch().count() * 1e-3 * (gen() % 3u);
}
