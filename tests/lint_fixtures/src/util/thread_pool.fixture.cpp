// Fixture: the src/util/thread_pool. whitelist — threading primitives are
// the pool's implementation domain, so nothing here may fire.
#include <condition_variable>
#include <mutex>
#include <thread>

void pool_impl() {
  std::mutex m;
  std::condition_variable cv;
  std::thread t([] {});
  (void)m;
  (void)cv;
  t.join();
}
