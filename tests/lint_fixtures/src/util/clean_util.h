// Fixture: a fully clean header — no rule may fire.
#pragma once

#include <cstdint>
#include <vector>

namespace rrp {

/// Sums a vector with a double accumulator (the blessed pattern).
inline double sum(const std::vector<float>& v) {
  double acc = 0.0;
  for (float x : v) acc += static_cast<double>(x);
  return acc;
}

}  // namespace rrp
