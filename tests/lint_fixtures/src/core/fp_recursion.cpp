// fp_recursion.cpp — R7 fixture: direct self-recursion and a two-node
// mutual cycle, both reachable from one root.
namespace rrp::core {

int count_down(int n) {
  if (n <= 0) return 0;
  return count_down(n - 1) + 1;
}

int odd_step(int n);

int even_step(int n) {
  if (n == 0) return 1;
  return odd_step(n - 1);
}

int odd_step(int n) {
  if (n == 0) return 0;
  return even_step(n - 1);
}

// rrp-frame-path: recursion fixture root.
int fp_recursion_root(int n) {
  return count_down(n) + even_step(n);
}

}  // namespace rrp::core
