// fp_overload.cpp — call-graph edge case: the name-based resolver links
// a call site to EVERY same-name overload (conservative), so the dirty
// overload fires even though the root "really" calls the clean one.
#include <vector>

namespace rrp::core {

int mix_in(int v) { return v * 3; }

int mix_in(std::vector<int>& sink, int v) {
  sink.push_back(v);
  return v;
}

// rrp-frame-path: overload fixture root.
int fp_overload_root(int v) {
  return mix_in(v);
}

}  // namespace rrp::core
