// fp_throw.cpp — R6 throw fixture: an unwind two hops from the root.
namespace rrp::core {

void deep_check(int v) {
  if (v < 0) throw v;
}

int shallow_check(int v) {
  deep_check(v);
  return v;
}

// rrp-frame-path: throw fixture root.
int fp_throw_root(int v) {
  return shallow_check(v);
}

}  // namespace rrp::core
