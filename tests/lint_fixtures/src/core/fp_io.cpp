// fp_io.cpp — R6 IO fixture: stdio calls and stream tokens fire exactly
// once each (the resolver leaves printf-family names to the body scan).
#include <fstream>

namespace rrp::core {

void emit(int v) {
  printf("%d\n", v);
}

void spill(int v) {
  std::ofstream f("spill.txt");
  f << v;
}

// rrp-frame-path: io fixture root.
void fp_io_root(int v) {
  emit(v);
  spill(v);
}

}  // namespace rrp::core
