// fp_clean.cpp — a certified-clean frame path: bounded arithmetic,
// safe-listed libc helpers and in-tree callees only.  Zero findings.
namespace rrp::core {

float mac_row(const float* a, const float* b, int n) {
  float acc = 0.0f;
  for (int i = 0; i < n; ++i) acc = acc + a[i] * b[i];
  return acc;
}

void copy_row(float* dst, const float* src, unsigned long bytes) {
  memcpy(dst, src, bytes);
}

// rrp-frame-path: clean fixture root.
float fp_clean_root(float* dst, const float* a, const float* b, int n) {
  copy_row(dst, a, sizeof(float) * 4u);
  return mac_row(a, b, n);
}

}  // namespace rrp::core
