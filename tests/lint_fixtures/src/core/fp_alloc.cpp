// fp_alloc.cpp — R6 allocation fixture: new/delete tokens and the
// malloc-family calls must all fire once the root makes them reachable.
namespace rrp::core {

int* make_buffer(int n) {
  return new int[n];
}

int scratch_round_trip(int n) {
  void* p = malloc(64u);
  free(p);
  return n;
}

// rrp-frame-path: allocation fixture root.
int fp_alloc_root(int n) {
  int* b = make_buffer(n);
  n = scratch_round_trip(n);
  delete[] b;
  return n;
}

}  // namespace rrp::core
