// fp_virtual.cpp — call-graph edge case: a virtual call through the base
// interface conservatively links to every override; a stop-marked
// override is exempt with its written reason; an extern callee with no
// indexed definition is an explicit unresolved finding, and the escape
// hatch is a reasoned suppression.
#include <vector>

namespace rrp::core {

int external_tick(int v);

class StepProvider {
 public:
  virtual ~StepProvider() = default;
  virtual int execute(int v) = 0;
};

class DirtyProvider : public StepProvider {
 public:
  int execute(int v) override {
    log_.push_back(v);
    return v;
  }

 private:
  std::vector<int> log_;
};

class AuditedProvider : public StepProvider {
 public:
  // rrp-frame-path-stop: measured comparison arm certified by its own
  // harness — not part of the frame path under analysis.
  int execute(int v) override {
    int* scratch = new int[4];
    return scratch != nullptr ? v : 0;
  }
};

// rrp-frame-path: virtual-dispatch fixture root.
int fp_virtual_root(StepProvider& p, int v) {
  const int a = p.execute(v);
  const int b = external_tick(a);
  // rrp-lint-allow(frame-path-unresolved): certified vendor intrinsic.
  const int c = platform_cycle_count(b);
  return a + b + c;
}

}  // namespace rrp::core
