// fp_memfn_ptr.cpp — call-graph edge case: member-function-pointer and
// pointer-to-member dereference calls cannot be resolved statically and
// are flagged as frame-path-unresolved, not silently passed.
namespace rrp::core {

struct Dispatcher {
  int (Dispatcher::*hook_)(int);

  int via_arrow(Dispatcher* obj, int v) {
    return (obj->*hook_)(v);
  }

  int via_dot(Dispatcher& obj, int v) {
    return (obj.*hook_)(v);
  }
};

// rrp-frame-path: member-function-pointer fixture root.
int fp_memfn_root(Dispatcher& d, int v) {
  return d.via_arrow(&d, v) + d.via_dot(d, v);
}

}  // namespace rrp::core
