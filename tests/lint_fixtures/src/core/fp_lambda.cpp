// fp_lambda.cpp — call-graph edge case: work inside a lambda body is
// attributed to the enclosing definition, so growth inside the callback
// fires against the root.
#include <vector>

namespace rrp::core {

// rrp-frame-path: lambda-attribution fixture root.
void fp_lambda_root(std::vector<int>& out, int n) {
  auto push_twice = [&out](int v) {
    out.push_back(v);
    out.push_back(v + 1);
  };
  // rrp-lint-allow(frame-path-unresolved): push_twice is the lambda above; its body is already attributed to this root by the indexer.
  push_twice(n);
}

}  // namespace rrp::core
