// fp_template.cpp — call-graph edge case: a function template is indexed
// like any definition, so growth inside it fires when it is reachable.
#include <vector>

namespace rrp::core {

template <typename T>
void append_one(std::vector<T>& v, T x) {
  v.push_back(x);
}

// rrp-frame-path: template fixture root.
void fp_template_root(std::vector<int>& v, int x) {
  append_one(v, x);
}

}  // namespace rrp::core
