// Fixture: the flight recorder's determinism contract is lint-enforced.
// core/flight_recorder.* is deliberately ABSENT from kChronoWhitelist (all
// record time is modeled platform time or frame indices) and core may not
// reach up into sim (R3).  Never compiled — test_rrp_lint.cpp asserts the
// exact lines that fire.
#include <chrono>
#include "sim/runner.h"

// Wall-clock timestamps in a flight record would make bundles
// host-dependent and break byte-identical replay.
std::chrono::steady_clock::time_point recorded_at;
