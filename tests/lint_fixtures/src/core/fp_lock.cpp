// fp_lock.cpp — R6 lock fixture: RAII guard tokens and explicit .lock()
// both fire on the frame path (the determinism-thread findings from R4
// are expected too — core is not thread-whitelisted).
#include <mutex>

namespace rrp::core {

struct LockBox {
  std::mutex m;

  void guarded_update() {
    std::lock_guard<std::mutex> g(m);
  }

  void manual_lock() {
    m.lock();
    m.unlock();
  }
};

// rrp-frame-path: lock fixture root.
void fp_lock_root(LockBox& box) {
  box.guarded_update();
  box.manual_lock();
}

}  // namespace rrp::core
