// fp_growth.cpp — R6 container-growth fixture: every growth verb fires
// in a reachable member function.
#include <vector>

namespace rrp::core {

struct GrowthBox {
  std::vector<int> items;

  void grow(int v) {
    items.push_back(v);
    items.emplace_back(v + 1);
  }

  void shape(int n) {
    items.resize(16u);
    items.reserve(64u);
    items.insert(items.begin(), n);
  }
};

// rrp-frame-path: container-growth fixture root.
void fp_growth_root(GrowthBox& box, int v) {
  box.grow(v);
  box.shape(v);
}

}  // namespace rrp::core
