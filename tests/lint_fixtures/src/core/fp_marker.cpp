// fp_marker.cpp — marker-hygiene fixture: a dangling root marker, a
// reason-less stop, and an unknown marker suffix are each findings.
namespace rrp::core {

int marker_target(int v) { return v; }

// rrp-frame-path-stop:
int stop_without_reason(int v) { return v; }

// rrp-frame-path-extra: unknown suffix must not silently bind.
int unknown_suffix(int v) { return v; }

int plain_tail(int v) { return v; }

// rrp-frame-path: dangling — no definition follows this marker.

}  // namespace rrp::core
