// Fixture: src/sim/campaign.* is deliberately NOT on kChronoWhitelist —
// campaign aggregates must be byte-identical at any RRP_THREADS, so cell
// timing is modeled platform time, never wall-clock.  A raw <chrono> read
// here must fire R5.  Never compiled.
#include <chrono>

double cell_wall_seconds() {
  const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}
