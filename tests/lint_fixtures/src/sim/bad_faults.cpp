// Fixture: src/sim/faults.* is deliberately NOT on kRandomWhitelist —
// fault plans must come from the seeded rrp::Rng so campaigns replay
// byte-identically.  Ambient entropy here must fire R1a.  Never compiled.
#include <random>

int roll_fault_frame() {
  std::mt19937 gen(std::random_device{}());
  return static_cast<int>(gen() % 600u);
}
