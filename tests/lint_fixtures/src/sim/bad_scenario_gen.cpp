// Fixture: src/sim/scenario_gen.* is deliberately NOT on
// kRandomWhitelist — a (spec, seed) pair must expand byte-identically on
// every host, so every draw comes from the seeded rrp::Rng.  Ambient
// entropy here must fire R1a.  Never compiled.
#include <random>

double roll_base_visibility() {
  std::random_device entropy;
  return static_cast<double>(entropy()) / 4294967295.0;
}
