// Fixture: src/serve is deliberately on NO determinism whitelist — the
// serving engine's report must be byte-identical at any RRP_THREADS, so
// every frame time is modeled platform time (no <chrono>), every draw
// comes from the seeded per-stream rrp::Rng split (no ambient entropy),
// and all fan-out goes through util/thread_pool (no raw std::thread).
// It also must not reach UP the layer DAG into src/models.  Each of the
// four sins below must fire its rule (R1a, R1b, R5, R3).  Never compiled.
#include <chrono>
#include <random>
#include <thread>

#include "models/zoo.h"

double shed_jitter_ms() {
  std::mt19937 gen(std::random_device{}());
  const auto t0 = std::chrono::steady_clock::now();
  std::thread worker([] {});
  worker.join();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
             .count() +
         static_cast<double>(gen() % 7u);
}
