// Fixture: the fleet observability exporters (serve/obs.*,
// core/metrics_export.*) are pure functions of registry state — snapshot
// JSON, Prometheus exposition and the event timeline must be
// byte-identical at any RRP_THREADS (DESIGN.md invariant 17) — so they
// sit on NO determinism whitelist.  A wall-clock "snapshot timestamp" is
// exactly the bug the rules exist to catch: every chrono use below must
// fire R5, and the argless now() read fires R1a on top.  Never compiled.
#include <chrono>

long long snapshot_stamp_ms() {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             now.time_since_epoch())
      .count();
}
