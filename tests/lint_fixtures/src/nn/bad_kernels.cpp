// Fixture: R2 (float-accumulator) on a micro-kernel TU.  The file name
// contains "kernel" but deliberately NOT gemm/conv/depthwise, proving the
// kernel-substring extension of is_kernel_file catches new micro-kernel
// files on its own.

float row_sum_bad(const float* row, int n) {
  float acc = 0.0f;
  for (int i = 0; i < n; ++i) acc += row[i];
  return acc;
}

// Register-tile style accumulation into C memory (one rounded add per
// term) is the sanctioned contract and must stay silent:
void axpy_ok(float av, const float* b, float* c, int n) {
  for (int j = 0; j < n; ++j) c[j] += av * b[j];
}
