// Fixture: R4 hygiene-logging — direct stream output in library code.
#include <cstdio>
#include <iostream>

void report(int frames) {
  std::cout << "frames: " << frames << "\n";
  std::cerr << "warning\n";
  printf("%d\n", frames);
}
