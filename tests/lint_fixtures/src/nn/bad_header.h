// Fixture: R4 hygiene — header-scope `using namespace` and a virtual
// member of a derived class missing `override`.
#pragma once

#include "nn/layer.h"

using namespace std;

struct Base {
  virtual ~Base() = default;
  virtual int kind() const = 0;
};

struct Derived : public Base {
  ~Derived() override = default;
  virtual int kind() const;
  int other() const override;
};
