// Fixture: R1a (determinism-random) triggers.  Never compiled —
// test_rrp_lint.cpp asserts the exact lines that fire.
#include <random>

int entropy() {
  srand(42);
  std::random_device rd;
  const auto wall = std::chrono::system_clock::now();
  (void)wall;
  (void)rd;
  return rand();
}

// A banned name inside a string or comment must NOT fire: std::rand.
const char* doc = "call srand(7) then time(nullptr)";
