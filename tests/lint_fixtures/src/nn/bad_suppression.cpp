// Fixture: malformed suppressions are themselves findings, and a marker
// without a reason does not silence the violation it annotates.

// rrp-lint-allow(determinism-random)
int no_reason = time(nullptr);

// rrp-lint-allow(no-such-rule): the rule id must exist
int fine = 0;
