// Fixture: R2 (float-accumulator) — the GEMM accumulation contract.
// File name contains "gemm" so the kernel rule applies.

float dot_bad(const float* a, const float* b, int n) {
  float acc = 0.0f;
  for (int i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

float dot_good(const float* a, const float* b, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i)
    acc += static_cast<double>(a[i]) * b[i];
  return static_cast<float>(acc);
}

// A float written inside a loop but declared inside the same loop body is
// not a cross-iteration accumulator and must not fire:
float per_iter(const float* a, int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    float scaled = a[i];
    scaled += 1.0f;
    total += scaled;
  }
  return static_cast<float>(total);
}
