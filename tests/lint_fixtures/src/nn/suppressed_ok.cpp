// Fixture: valid suppressions silence every finding in this file.

// rrp-lint-allow(determinism-random): fixture exercises the marker on the line above a violation
int seeded = rand();

int wall() {
  return time(nullptr);  // rrp-lint-allow(determinism-random): trailing marker on the violating line
}

// rrp-lint-allow(hygiene-logging): demonstrating suppression of a second rule
void print_direct() { std::cout << "ok\n"; }
