// Fixture: R1b (determinism-thread) triggers — ad-hoc threading outside
// src/util/thread_pool.
#include <thread>

void spawn() {
  std::mutex m;
  std::thread t([] {});
  auto f = std::async([] { return 1; });
  // A read-only capacity query is allowed everywhere:
  unsigned hw = std::thread::hardware_concurrency();
  (void)m;
  (void)hw;
  t.join();
}
