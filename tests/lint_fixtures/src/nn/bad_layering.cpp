// Fixture: R3 (layering) — nn is rank 1 and may only reach down.
#include "core/controller.h"
#include "models/zoo.h"
#include "nn/tensor.h"
#include "util/rng.h"

void use() {}
