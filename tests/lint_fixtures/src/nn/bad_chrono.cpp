// Fixture: R5 (determinism-chrono) triggers.  Never compiled —
// test_rrp_lint.cpp asserts the exact lines that fire.
#include <chrono>

using raw_clock = std::chrono::steady_clock;
using hr_clock = high_resolution_clock;
std::chrono::milliseconds pause(5);

// rrp-lint-allow(determinism-chrono): fixture demonstrates a documented exception
using allowed_clock = std::chrono::steady_clock;

// Tokens inside comments never fire: std::chrono::steady_clock.
const char* doc = "high_resolution_clock in a string stays silent";
