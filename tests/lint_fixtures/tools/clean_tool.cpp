// Fixture: apps (tools/bench/examples) may print to stdout — the
// hygiene-logging rule is scoped to src/ — and may include any module.
#include <iostream>

#include "models/zoo.h"
#include "util/rng.h"

int main() {
  std::cout << "apps own their stdout\n";
  return 0;
}
