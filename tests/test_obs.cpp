// test_obs.cpp — the fleet observability plane (DESIGN.md §8,
// invariant 17).
//
// The acceptance properties:
//   (1) labeled metric names follow the {k="v"} grammar exactly: keys
//       sorted and validated, values escaped, empty domain = identity,
//       and parse_labeled_name is the byte-true inverse;
//   (2) the periodic fleet snapshots (sorted JSON + Prometheus text
//       exposition) and the event timeline are byte-identical at
//       RRP_THREADS=1/2/8;
//   (3) burn-rate window math matches hand-computed fixtures, with
//       strict-inequality thresholds and a latched first alert tick;
//   (4) the per-stream frame-time histograms merge bucket-for-bucket
//       into the fleet histogram (they observe the same fold values over
//       the same bounds);
//   (5) the wall profiler stays a disabled-by-default no-op and never
//       appears in any deterministic artifact.
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/metrics_export.h"
#include "core/slo.h"
#include "serve/obs.h"
#include "serve/serve_engine.h"
#include "test_support.h"
#include "util/checks.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/wprof.h"

namespace rrp::serve {
namespace {

// A single-element braced list ({{"k","v"}}) is ambiguous between the
// vector<Label> ctor and the copy ctor; routing through an explicit
// vector parameter keeps the test call sites readable.
metrics::MetricDomain domain(std::vector<metrics::MetricDomain::Label> ls) {
  return metrics::MetricDomain(std::move(ls));
}

// ---------------------------------------------------------------------------
// MetricDomain: the {k="v"} label grammar.
// ---------------------------------------------------------------------------

TEST(MetricDomain, LabeledNameSortsKeysAndEscapesValues) {
  const metrics::MetricDomain d(
      {{"zone", "b\"c"}, {"stream", "3"}, {"aaa", "x\\y\nz"}});
  EXPECT_EQ(d.labeled_name("serve.frames"),
            "serve.frames{aaa=\"x\\\\y\\nz\",stream=\"3\",zone=\"b\\\"c\"}");
  ASSERT_EQ(d.labels().size(), 3u);
  EXPECT_EQ(d.labels()[0].first, "aaa") << "labels sorted by key";
  EXPECT_EQ(d.labels()[2].first, "zone");
}

TEST(MetricDomain, EmptyDomainIsTheIdentity) {
  const metrics::MetricDomain d;
  EXPECT_EQ(d.labeled_name("test.obs.plain"), "test.obs.plain");
  d.counter("test.obs.plain").add(2);
  EXPECT_EQ(metrics::counter("test.obs.plain").value(), 2);
  metrics::counter("test.obs.plain").reset();
}

TEST(MetricDomain, RejectsInvalidAndDuplicateKeys) {
  EXPECT_THROW(domain({{"1bad", "v"}}), PreconditionError);
  EXPECT_THROW(domain({{"a-b", "v"}}), PreconditionError);
  EXPECT_THROW(domain({{"", "v"}}), PreconditionError);
  EXPECT_THROW(domain({{"k", "1"}, {"k", "2"}}), PreconditionError);
  EXPECT_NO_THROW(domain({{"_ok", "any value is fine"}}));
}

TEST(MetricDomain, EscapeLabelValue) {
  EXPECT_EQ(metrics::escape_label_value("plain"), "plain");
  EXPECT_EQ(metrics::escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(metrics::escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(metrics::escape_label_value("a\nb"), "a\\nb");
}

TEST(MetricDomain, ParseLabeledNameIsTheInverse) {
  const metrics::MetricDomain d({{"stream", "7"}, {"cam", "front\"left"}});
  const std::string name = d.labeled_name("serve.stream.frames");
  const core::ParsedMetricName p = core::parse_labeled_name(name);
  EXPECT_EQ(p.base, "serve.stream.frames");
  ASSERT_EQ(p.labels.size(), 2u);
  EXPECT_EQ(p.labels[0].first, "cam");
  EXPECT_EQ(p.labels[0].second, "front\"left") << "unescaped round-trip";
  EXPECT_EQ(p.labels[1].first, "stream");
  EXPECT_EQ(p.labels[1].second, "7");

  const core::ParsedMetricName plain = core::parse_labeled_name("a.b.c");
  EXPECT_EQ(plain.base, "a.b.c");
  EXPECT_TRUE(plain.labels.empty());

  EXPECT_THROW(core::parse_labeled_name("x{k=\"v\""), SerializationError);
  EXPECT_THROW(core::parse_labeled_name("x{k=v}"), SerializationError);
  EXPECT_THROW(core::parse_labeled_name("x{k=\"unterminated}"),
               SerializationError);
}

TEST(MetricDomain, ResetPrefixCoversLabeledVariants) {
  metrics::counter("test.obs.reset.a").add(3);
  metrics::counter("test.obs.keep").add(5);
  const metrics::MetricDomain d = domain({{"stream", "0"}});
  d.counter("test.obs.reset.b").add(7);
  metrics::gauge("test.obs.reset.g").set(1.5);

  metrics::reset_prefix("test.obs.reset.");
  EXPECT_EQ(metrics::counter("test.obs.reset.a").value(), 0);
  EXPECT_EQ(d.counter("test.obs.reset.b").value(), 0) << "labeled variant";
  EXPECT_EQ(metrics::gauge("test.obs.reset.g").value(), 0.0);
  EXPECT_EQ(metrics::counter("test.obs.keep").value(), 5) << "prefix miss";
  metrics::counter("test.obs.keep").reset();
}

// ---------------------------------------------------------------------------
// Prometheus exposition: sanitized families, TYPE lines, cumulative
// buckets.  The registry is process-wide, so assertions are substring/
// order based under a prefix no other test uses.
// ---------------------------------------------------------------------------

TEST(PrometheusExposition, RendersFamiliesLabelsAndCumulativeBuckets) {
  metrics::counter("zzobs.count").add(5);
  const metrics::MetricDomain d = domain({{"stream", "0"}});
  d.counter("zzobs.count").add(2);
  metrics::gauge("zzobs.level").set(1.5);
  metrics::Registry::instance().histogram("zzobs.lat_ms", {1.0, 2.0});
  metrics::histogram("zzobs.lat_ms").observe(0.5);
  metrics::histogram("zzobs.lat_ms").observe(1.5);
  metrics::histogram("zzobs.lat_ms").observe(99.0);

  const std::string text = core::prometheus_exposition();
  // One TYPE line per family; the unlabeled and labeled series share it.
  EXPECT_NE(text.find("# TYPE zzobs_count counter\n"
                      "zzobs_count 5\n"
                      "zzobs_count{stream=\"0\"} 2\n"),
            std::string::npos);
  // Gauges render at fixed 9-digit precision; bucket bounds use fmt()'s
  // trimmed form (at least one decimal digit).
  EXPECT_NE(text.find("# TYPE zzobs_level gauge\nzzobs_level 1.500000000\n"),
            std::string::npos);
  // Cumulative buckets + +Inf + _count, no _sum.
  EXPECT_NE(text.find("# TYPE zzobs_lat_ms histogram\n"
                      "zzobs_lat_ms_bucket{le=\"1.0\"} 1\n"
                      "zzobs_lat_ms_bucket{le=\"2.0\"} 2\n"
                      "zzobs_lat_ms_bucket{le=\"+Inf\"} 3\n"
                      "zzobs_lat_ms_count 3\n"),
            std::string::npos);
  EXPECT_EQ(text.find("zzobs_lat_ms_sum"), std::string::npos);

  metrics::reset_prefix("zzobs.");
}

// ---------------------------------------------------------------------------
// Burn-rate window math, against hand-computed fixtures.
// ---------------------------------------------------------------------------

core::BurnRateConfig tiny_burn() {
  core::BurnRateConfig cfg;
  cfg.id = "burn.test";
  cfg.numerator = "n";
  cfg.denominator = "d";
  cfg.budget = 0.25;
  cfg.fast_window = 2;
  cfg.slow_window = 4;
  cfg.fast_burn_threshold = 2.0;
  cfg.slow_burn_threshold = 1.0;
  cfg.min_samples = 2;
  return cfg;
}

TEST(BurnRate, HandComputedWindowsAndStrictThresholds) {
  core::BurnRateTracker t(tiny_burn());

  // tick 0: delta (0, 10) — no errors yet.
  const core::BurnRateState& s0 = t.update(0, 0, 10);
  EXPECT_DOUBLE_EQ(s0.fast_burn, 0.0);
  EXPECT_DOUBLE_EQ(s0.slow_burn, 0.0);
  EXPECT_FALSE(s0.alerting);

  // tick 1: delta (10, 10).  Fast window = [(0,10),(10,10)]: ratio 0.5,
  // burn 0.5/0.25 = 2.0 — NOT > 2.0, so the strict threshold holds it.
  const core::BurnRateState& s1 = t.update(1, 10, 20);
  EXPECT_DOUBLE_EQ(s1.fast_burn, 2.0);
  EXPECT_DOUBLE_EQ(s1.slow_burn, 2.0);
  EXPECT_FALSE(s1.alerting) << "burn == threshold must not alert";
  EXPECT_FALSE(s1.latched);

  // tick 2: delta (10, 10).  Fast = [(10,10),(10,10)]: ratio 1.0, burn
  // 4.0 > 2.0; slow = 20/30 -> burn 8/3 > 1.0; 20 samples >= 2: alert.
  const core::BurnRateState& s2 = t.update(2, 20, 30);
  EXPECT_DOUBLE_EQ(s2.fast_burn, 4.0);
  EXPECT_NEAR(s2.slow_burn, (20.0 / 30.0) / 0.25, 1e-12);
  EXPECT_TRUE(s2.alerting);
  EXPECT_TRUE(s2.latched);
  EXPECT_EQ(s2.alert_tick, 2);

  // tick 3: delta (0, 10).  Fast cools to burn 2.0 (== threshold, no
  // alert) but the latch and first-alert tick survive.
  const core::BurnRateState& s3 = t.update(3, 20, 40);
  EXPECT_DOUBLE_EQ(s3.fast_burn, 2.0);
  EXPECT_FALSE(s3.alerting);
  EXPECT_TRUE(s3.latched);
  EXPECT_EQ(s3.alert_tick, 2) << "latch keeps the FIRST alert tick";

  // tick 4: delta (0, 10).  The slow window is now exactly the last 4
  // deltas — tick 0 fell off: 20 errors / 40 samples -> burn 2.0.
  const core::BurnRateState& s4 = t.update(4, 20, 50);
  EXPECT_DOUBLE_EQ(s4.fast_burn, 0.0);
  EXPECT_DOUBLE_EQ(s4.slow_burn, 2.0);

  t.reset();
  EXPECT_DOUBLE_EQ(t.state().fast_burn, 0.0);
  EXPECT_FALSE(t.state().latched);
  EXPECT_EQ(t.state().alert_tick, -1);
}

TEST(BurnRate, ZeroDenominatorIsZeroBurnNotDivisionByZero) {
  core::BurnRateTracker t(tiny_burn());
  const core::BurnRateState& s = t.update(0, 0, 0);
  EXPECT_DOUBLE_EQ(s.fast_burn, 0.0);
  EXPECT_DOUBLE_EQ(s.slow_burn, 0.0);
  EXPECT_FALSE(s.alerting);
}

TEST(BurnRate, RejectsDegenerateConfigs) {
  core::BurnRateConfig cfg = tiny_burn();
  cfg.id.clear();
  EXPECT_THROW(core::BurnRateTracker t(cfg), PreconditionError);
  cfg = tiny_burn();
  cfg.budget = 0.0;
  EXPECT_THROW(core::BurnRateTracker t(cfg), PreconditionError);
  cfg = tiny_burn();
  cfg.fast_window = 8;  // > slow_window = 4
  EXPECT_THROW(core::BurnRateTracker t(cfg), PreconditionError);
}

// ---------------------------------------------------------------------------
// wprof: the measured channel stays opt-in and out of everything gated.
// ---------------------------------------------------------------------------

TEST(Wprof, DisabledRecordIsANoOp) {
  wprof::set_enabled(false);
  wprof::reset();
  wprof::record("x", 5.0);
  { wprof::ScopedTimer t("y"); }
  EXPECT_TRUE(wprof::stats().empty());
  EXPECT_EQ(wprof::csv_string(), "key,count,total_us,mean_us,max_us\n");
}

TEST(Wprof, EnabledAggregatesInSortedKeyOrder) {
  wprof::reset();
  wprof::set_enabled(true);
  wprof::record("infer.L2", 5.0);
  wprof::record("infer.L2", 7.0);
  wprof::record("infer.L0", 1.0);
  wprof::set_enabled(false);

  const std::vector<wprof::Stat> stats = wprof::stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].key, "infer.L0") << "sorted key order";
  EXPECT_EQ(stats[1].key, "infer.L2");
  EXPECT_EQ(stats[1].count, 2);
  EXPECT_DOUBLE_EQ(stats[1].total_us, 12.0);
  EXPECT_DOUBLE_EQ(stats[1].mean_us(), 6.0);
  EXPECT_DOUBLE_EQ(stats[1].max_us, 7.0);
  wprof::reset();
  EXPECT_TRUE(wprof::stats().empty());
}

// ---------------------------------------------------------------------------
// The serving engine under observation: same closed-loop fixture as
// test_serve — a briefly trained conv net with a 3-level ladder.
// ---------------------------------------------------------------------------

class ObsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = nn::Network("obs-net");
    net_.emplace<nn::Conv2D>("conv1", 1, 6, 3, 1, 1);
    net_.emplace<nn::ReLU>("relu1");
    net_.emplace<nn::MaxPool>("pool1", 4, 4);
    net_.emplace<nn::Flatten>("flatten");
    net_.emplace<nn::Linear>("fc1", 6 * 4 * 4, 16);
    net_.emplace<nn::ReLU>("relu2");
    auto& head = net_.emplace<nn::Linear>("head", 16, sim::kNumClasses);
    head.set_out_prunable(false);
    Rng rng(1);
    nn::init_network(net_, rng);

    sim::RunConfig cfg;
    Rng data_rng(2);
    data_ = sim::make_dataset(400, cfg.vision, data_rng);
    rrp::testing::quick_train(net_, data_, 4);

    lib_ = prune::PruneLevelLibrary::build_structured(
        net_, {0.0, 0.3, 0.6}, sim::input_shape(cfg.vision));

    inputs_.net = &net_;
    inputs_.levels = &lib_;
    inputs_.certified.max_level_for = {2, 1, 1, 0};
  }

  static std::vector<StreamSpec> small_fleet(int frames) {
    std::vector<StreamSpec> specs(4);
    const char* suites[] = {"cut_in", "urban", "cut_in", "urban"};
    for (std::size_t i = 0; i < specs.size(); ++i) {
      specs[i].scenario = suites[i];
      specs[i].frames = frames;
      specs[i].priority = static_cast<int>(specs.size() - i);
      if (i >= 2) specs[i].arrival_tick = 3;
    }
    return specs;
  }

  static ServeConfig contended_config() {
    ServeConfig cfg;
    cfg.seed = 4242;
    cfg.tick_budget_ms = 0.5;  // tiny modeled host: congestion engages
    cfg.admission.max_streams = 3;
    cfg.admission.window_ticks = 8;
    cfg.admission.cooldown_ticks = 4;
    cfg.admission.restore_healthy_ticks = 6;
    cfg.snapshot_every_ticks = 8;
    return cfg;
  }

  /// Every observability byte of one run: report JSON, each snapshot's
  /// JSON and exposition, and the timeline CSV.
  static std::string obs_digest(ServeEngine& engine,
                                const std::vector<StreamSpec>& specs) {
    const ServeReport report = engine.run(specs);
    std::ostringstream os;
    write_serve_report_json(report, os);
    for (const FleetSnapshot& s : report.snapshots)
      os << "--- snapshot tick " << s.tick << " ---\n"
         << s.json << s.prom;
    os << "--- timeline ---\n" << timeline_csv(report.timeline);
    return os.str();
  }

  nn::Network net_;
  nn::Dataset data_;
  prune::PruneLevelLibrary lib_;
  ServeInputs inputs_;
};

TEST_F(ObsFixture, SnapshotsExpositionAndTimelineByteIdenticalAcrossThreads) {
  ServeEngine engine(inputs_, contended_config());
  const std::vector<StreamSpec> specs = small_fleet(40);

  std::string reference;
  {
    ThreadCountGuard guard(1);
    reference = obs_digest(engine, specs);
  }
  // The pin must cover real content: at least one periodic snapshot with
  // the versioned schema, labeled per-stream rows in both formats, and a
  // non-empty timeline that includes admission decisions.
  EXPECT_NE(reference.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(reference.find("serve.stream.frames{stream=\\\"0\\\"}"),
            std::string::npos)
      << "labeled row (JSON-escaped) in the snapshot";
  EXPECT_NE(reference.find("serve_stream_frames{stream=\"0\"}"),
            std::string::npos)
      << "labeled series in the exposition";
  EXPECT_NE(reference.find("tick,stream,kind,detail"), std::string::npos);
  EXPECT_NE(reference.find("admit"), std::string::npos);

  for (int threads : {2, 8}) {
    ThreadCountGuard guard(threads);
    EXPECT_EQ(obs_digest(engine, specs), reference)
        << "invariant 17 broke at threads=" << threads;
  }
}

TEST_F(ObsFixture, PerStreamHistogramsMergeIntoTheFleetHistogram) {
  ServeEngine engine(inputs_, contended_config());
  const ServeReport report = engine.run(small_fleet(40));
  ASSERT_GT(report.frames, 0);

  const metrics::Histogram& fleet = metrics::histogram("serve.frame_ms");
  const std::vector<double>& bounds = fleet.bounds();
  std::vector<std::int64_t> merged(bounds.size() + 1, 0);
  std::size_t labeled_series = 0;
  for (const auto& [name, h] :
       metrics::Registry::instance().histograms()) {
    if (name.rfind("serve.stream.frame_ms{", 0) != 0) continue;
    ++labeled_series;
    ASSERT_EQ(h->bounds(), bounds) << name << ": bounds must mirror fleet";
    for (std::size_t i = 0; i <= bounds.size(); ++i)
      merged[i] += h->bucket_count(i);
  }
  ASSERT_GE(labeled_series, 3u) << "per-stream series were registered";
  for (std::size_t i = 0; i <= bounds.size(); ++i)
    EXPECT_EQ(merged[i], fleet.bucket_count(i)) << "bucket " << i;
  EXPECT_EQ(fleet.total(), report.frames);
}

TEST_F(ObsFixture, ReportCarriesTailsBurnAlertsAndConsistentTimeline) {
  ServeEngine engine(inputs_, contended_config());
  const ServeReport report = engine.run(small_fleet(40));

  // Per-stream tails: executed streams get ordered, positive quantiles.
  for (const StreamResult& r : report.streams) {
    if (r.frames_executed == 0) continue;
    EXPECT_GT(r.p50_frame_ms, 0.0) << r.name;
    EXPECT_LE(r.p50_frame_ms, r.p99_frame_ms) << r.name;
  }

  // One standard burn tracker; a latched alert must appear in the
  // timeline at its alert tick.
  ASSERT_EQ(report.burn_alerts.size(), standard_serve_burn_rates().size());
  for (const BurnAlert& a : report.burn_alerts) {
    if (!a.latched) continue;
    bool in_timeline = false;
    for (const FleetEvent& e : report.timeline)
      in_timeline |= e.kind == "burn_alert" && e.tick == a.alert_tick &&
                     e.detail.find(a.id) != std::string::npos;
    EXPECT_TRUE(in_timeline) << a.id << " latched but not in the timeline";
  }

  // Every admission event is mirrored into the unified timeline.
  std::size_t admission_kind = 0;
  for (const FleetEvent& e : report.timeline)
    if (e.kind != "slo_breach" && e.kind != "burn_alert") ++admission_kind;
  EXPECT_EQ(admission_kind, report.events.size());

  // The text report renders the burn section and per-stream tails.
  std::ostringstream os;
  write_serve_report(report, os);
  EXPECT_NE(os.str().find("burn rates:"), std::string::npos);
  EXPECT_NE(os.str().find("p99="), std::string::npos);

  // The JSON report is schema-versioned and carries the same sections.
  std::ostringstream js;
  write_serve_report_json(report, js);
  EXPECT_NE(js.str().find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(js.str().find("\"burn_alerts\":["), std::string::npos);
  EXPECT_NE(js.str().find("\"timeline\":["), std::string::npos);
  EXPECT_NE(js.str().find("\"streams\":["), std::string::npos);
}

}  // namespace
}  // namespace rrp::serve
