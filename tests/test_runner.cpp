#include <gtest/gtest.h>

#include "core/baselines.h"
#include "sim/runner.h"
#include "util/checks.h"
#include "sim/suites.h"
#include "test_support.h"

namespace rrp::sim {
namespace {

using core::CriticalityClass;
using rrp::testing::tiny_conv_net;
using rrp::testing::tiny_input_shape;

// Shared fixture: a briefly-trained tiny net on the 8x8 task will NOT match
// the vision task (16x16, 5 classes), so for closed-loop tests we build a
// small net directly on the vision task's geometry.
class RunnerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_.vision.height = 16;
    cfg_.vision.width = 16;
    cfg_.deadline_ms = 5.0;
    cfg_.noise_seed = 77;

    net_ = nn::Network("runner-net");
    net_.emplace<nn::Conv2D>("conv1", 1, 6, 3, 1, 1);
    net_.emplace<nn::ReLU>("relu1");
    net_.emplace<nn::MaxPool>("pool1", 4, 4);
    net_.emplace<nn::Flatten>("flatten");
    net_.emplace<nn::Linear>("fc1", 6 * 4 * 4, 16);
    net_.emplace<nn::ReLU>("relu2");
    auto& head = net_.emplace<nn::Linear>("head", 16, kNumClasses);
    head.set_out_prunable(false);
    Rng rng(1);
    nn::init_network(net_, rng);

    Rng data_rng(2);
    data_ = make_dataset(600, cfg_.vision, data_rng);
    rrp::testing::quick_train(net_, data_, 6);

    lib_ = prune::PruneLevelLibrary::build_structured(
        net_, {0.0, 0.3, 0.6}, input_shape(cfg_.vision));
  }

  RunConfig cfg_;
  nn::Network net_;
  nn::Dataset data_;
  prune::PruneLevelLibrary lib_;
};

TEST_F(RunnerFixture, ProviderAccuracyMatchesEvaluate) {
  core::ReversiblePruner rp(net_, lib_);
  const double via_provider = provider_accuracy(rp, data_);
  const double direct = nn::evaluate_accuracy(net_, data_);
  EXPECT_NEAR(via_provider, direct, 1e-12);
  EXPECT_GT(direct, 0.55);
}

TEST_F(RunnerFixture, ProfileLevelsMonotoneCostAndRestoresLevel0) {
  core::ReversiblePruner rp(net_, lib_);
  const PlatformModel pm;
  const core::LevelProfile prof =
      profile_levels(rp, pm, data_, input_shape(cfg_.vision));
  ASSERT_EQ(prof.count(), 3);
  for (int k = 1; k < prof.count(); ++k) {
    EXPECT_LT(prof.latency_ms[k], prof.latency_ms[k - 1]);
    EXPECT_LT(prof.energy_mj[k], prof.energy_mj[k - 1]);
  }
  EXPECT_EQ(rp.current_level(), 0);
}

TEST_F(RunnerFixture, ClosedLoopProducesOneRecordPerFrame) {
  core::ReversiblePruner rp(net_, lib_);
  core::SafetyConfig certified;
  certified.max_level_for = {2, 1, 0, 0};
  core::CriticalityGreedyPolicy policy(certified, 3, rp.level_count());
  core::SafetyMonitor monitor(certified);
  core::RuntimeController ctl(policy, rp, &monitor);

  const Scenario sc = make_cut_in(240, 5);
  const RunResult result = run_scenario(sc, ctl, cfg_);
  EXPECT_EQ(result.telemetry.size(), sc.frame_count());
  EXPECT_EQ(result.scenario, "cut_in");
  EXPECT_EQ(result.provider, "reversible-masked");
  EXPECT_EQ(result.summary.frames, 240);
}

TEST_F(RunnerFixture, ReversibleControllerNeverViolatesSafety) {
  core::ReversiblePruner rp(net_, lib_);
  core::SafetyConfig certified;
  certified.max_level_for = {2, 1, 0, 0};
  core::CriticalityGreedyPolicy policy(certified, 3, rp.level_count());
  core::SafetyMonitor monitor(certified);
  core::RuntimeController ctl(policy, rp, &monitor);

  const Scenario sc = make_cut_in(400, 6);
  const RunResult result = run_scenario(sc, ctl, cfg_);
  EXPECT_EQ(result.summary.safety_violations, 0);
  // The controller must actually adapt in a cut-in scenario.
  EXPECT_GT(result.summary.level_switches, 0);
}

TEST_F(RunnerFixture, StaticDeepPruningViolatesInCriticalScenes) {
  core::SafetyConfig certified;
  certified.max_level_for = {2, 1, 0, 0};
  core::StaticProvider sp(net_, lib_, 2);  // fixed deepest level
  core::CriticalityGreedyPolicy policy(certified, 3, sp.level_count());
  core::SafetyMonitor monitor(certified);
  core::RuntimeController ctl(policy, sp, &monitor);

  const Scenario sc = make_cut_in(400, 7);
  const RunResult result = run_scenario(sc, ctl, cfg_);
  EXPECT_GT(result.summary.safety_violations, 0);
}

TEST_F(RunnerFixture, EnergyBudgetSignalReachesPolicy) {
  // With a tiny budget the energy fraction hits zero and a Hybrid policy
  // escalates to the deepest admissible level in calm scenes.
  core::ReversiblePruner rp(net_, lib_);
  const PlatformModel pm;
  const core::LevelProfile prof =
      profile_levels(rp, pm, data_, input_shape(cfg_.vision));
  core::SafetyConfig certified;
  certified.max_level_for = {2, 1, 0, 0};
  core::HybridPolicy policy(certified, prof, 1);
  core::RuntimeController ctl(policy, rp, nullptr);

  RunConfig cfg = cfg_;
  cfg.energy_budget_mj = 1e-6;  // exhausted immediately
  const Scenario sc = make_highway(200, 8);
  const RunResult result = run_scenario(sc, ctl, cfg);
  EXPECT_GT(result.summary.mean_level, 1.0);
}

TEST_F(RunnerFixture, SwitchCostAppearsInTelemetry) {
  core::ReversiblePruner rp(net_, lib_);
  core::SafetyConfig certified;
  certified.max_level_for = {2, 1, 0, 0};
  core::CriticalityGreedyPolicy policy(certified, 2, rp.level_count());
  core::RuntimeController ctl(policy, rp, nullptr);
  const Scenario sc = make_cut_in(300, 9);
  const RunResult result = run_scenario(sc, ctl, cfg_);
  EXPECT_GT(result.summary.mean_switch_us, 0.0);
}

TEST_F(RunnerFixture, DeterministicAcrossRuns) {
  auto run_once = [&]() {
    nn::Network net = net_.clone();
    core::ReversiblePruner rp(net, lib_);
    core::SafetyConfig certified;
    certified.max_level_for = {2, 1, 0, 0};
    core::CriticalityGreedyPolicy policy(certified, 3, rp.level_count());
    core::RuntimeController ctl(policy, rp, nullptr);
    const Scenario sc = make_urban(150, 10);
    return run_scenario(sc, ctl, cfg_).summary;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
  EXPECT_EQ(a.level_switches, b.level_switches);
  EXPECT_DOUBLE_EQ(a.total_energy_mj, b.total_energy_mj);
}

TEST_F(RunnerFixture, EmptyScenarioRejected) {
  core::ReversiblePruner rp(net_, lib_);
  core::FixedPolicy policy(0);
  core::RuntimeController ctl(policy, rp, nullptr);
  Scenario empty;
  empty.name = "empty";
  EXPECT_THROW(run_scenario(empty, ctl, cfg_), PreconditionError);
}

}  // namespace
}  // namespace rrp::sim

namespace rrp::sim {
namespace {

TEST(SensorFaults, BlackoutDegradesAccuracyButLoopSurvives) {
  // Reuse a small net trained inline (mirrors the fixture, standalone here
  // to keep the TEST() independent of the fixture lifecycle).
  nn::Network net("fault-net");
  net.emplace<nn::Conv2D>("conv1", 1, 6, 3, 1, 1);
  net.emplace<nn::ReLU>("relu1");
  net.emplace<nn::MaxPool>("pool1", 4, 4);
  net.emplace<nn::Flatten>("flatten");
  net.emplace<nn::Linear>("fc1", 6 * 4 * 4, 16);
  net.emplace<nn::ReLU>("relu2");
  auto& head = net.emplace<nn::Linear>("head", 16, kNumClasses);
  head.set_out_prunable(false);
  Rng rng(1);
  nn::init_network(net, rng);
  RunConfig cfg;
  Rng data_rng(2);
  const nn::Dataset data = make_dataset(500, cfg.vision, data_rng);
  rrp::testing::quick_train(net, data, 5);
  auto lib = prune::PruneLevelLibrary::build_structured(
      net, {0.0, 0.5}, input_shape(cfg.vision));

  auto run_with_blackout = [&](double p) {
    core::ReversiblePruner provider(net, lib);
    core::FixedPolicy policy(0);
    core::RuntimeController ctl(policy, provider, nullptr);
    RunConfig c = cfg;
    c.sensor_blackout_prob = p;
    return run_scenario(make_urban(400, 9), ctl, c).summary;
  };

  const auto clean = run_with_blackout(0.0);
  const auto faulty = run_with_blackout(0.4);
  EXPECT_EQ(clean.frames, faulty.frames);  // the loop never stalls
  EXPECT_LT(faulty.accuracy, clean.accuracy);
}

TEST(SensorFaults, ValidatesProbability) {
  nn::Network net = rrp::testing::tiny_conv_net(3);
  auto lib = prune::PruneLevelLibrary::build_structured(
      net, {0.0, 0.5}, rrp::testing::tiny_input_shape());
  core::ReversiblePruner provider(net, lib);
  core::FixedPolicy policy(0);
  core::RuntimeController ctl(policy, provider, nullptr);
  RunConfig cfg;
  cfg.sensor_blackout_prob = 1.5;
  EXPECT_THROW(run_scenario(make_urban(10, 1), ctl, cfg), PreconditionError);
}

}  // namespace
}  // namespace rrp::sim

namespace rrp::sim {
namespace {

TEST(CriticalitySourceTest, GroundTruthAndPerceptionDiverge) {
  // An untrained network's perception-derived criticality is decoupled
  // from the scene; the run must still complete with consistent records.
  nn::Network net = rrp::testing::tiny_conv_net(70);
  auto lib = prune::PruneLevelLibrary::build_structured(
      net, {0.0, 0.5}, rrp::testing::tiny_input_shape());
  core::ReversiblePruner provider(net, lib);
  core::SafetyConfig certified;
  certified.max_level_for = {1, 1, 0, 0};
  core::CriticalityGreedyPolicy policy(certified, 2, provider.level_count());
  core::SafetyMonitor monitor(certified);
  core::RuntimeController ctl(policy, provider, &monitor);

  RunConfig cfg;
  cfg.vision.height = 8;
  cfg.vision.width = 8;
  cfg.criticality_source = CriticalitySource::Perception;
  const RunResult r = run_scenario(make_cut_in(200, 4), ctl, cfg);
  EXPECT_EQ(r.telemetry.size(), 200u);
  // Sensed-basis violations are impossible by construction (monitor
  // screens the same signal it audits)...
  EXPECT_EQ(r.summary.safety_violations, 0);
  // ...but records carry the TRUE basis for exactly this comparison.
  EXPECT_GE(r.summary.true_safety_violations, 0);
}

TEST(CriticalitySourceTest, TrueViolationsAtLeastSensedForDelayedTtc) {
  // With ground-truth TTC and a sensing delay, the true basis can only be
  // stricter than the sensed basis.
  nn::Network net = rrp::testing::tiny_conv_net(71);
  auto lib = prune::PruneLevelLibrary::build_structured(
      net, {0.0, 0.5}, rrp::testing::tiny_input_shape());
  core::ReversiblePruner provider(net, lib);
  core::SafetyConfig certified;
  certified.max_level_for = {1, 1, 0, 0};
  core::CriticalityGreedyPolicy policy(certified, 2, provider.level_count());
  core::SafetyMonitor monitor(certified);
  core::RuntimeController ctl(policy, provider, &monitor);
  RunConfig cfg;
  cfg.vision.height = 8;
  cfg.vision.width = 8;
  cfg.sensing_delay_frames = 2;
  const RunResult r = run_scenario(make_cut_in(300, 5), ctl, cfg);
  EXPECT_GE(r.summary.true_safety_violations, r.summary.safety_violations);
}

TEST(IntersectionLoop, ControllerCyclesWithCrossingTraffic) {
  nn::Network net = rrp::testing::tiny_conv_net(72);
  auto lib = prune::PruneLevelLibrary::build_structured(
      net, {0.0, 0.4, 0.7}, rrp::testing::tiny_input_shape());
  core::ReversiblePruner provider(net, lib);
  core::SafetyConfig certified;
  certified.max_level_for = {2, 1, 0, 0};
  core::CriticalityGreedyPolicy policy(certified, 3, provider.level_count());
  core::SafetyMonitor monitor(certified);
  core::RuntimeController ctl(policy, provider, &monitor);
  RunConfig cfg;
  cfg.vision.height = 8;
  cfg.vision.width = 8;
  const RunResult r = run_scenario(make_intersection(1200, 6), ctl, cfg);
  // Crossing pedestrians force restore/re-prune cycles.
  EXPECT_GT(r.summary.level_switches, 2);
  EXPECT_EQ(r.summary.safety_violations, 0);
}

}  // namespace
}  // namespace rrp::sim
