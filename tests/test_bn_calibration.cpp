#include <gtest/gtest.h>

#include "core/bn_calibration.h"
#include "util/checks.h"
#include "core/reversible_pruner.h"
#include "test_support.h"

namespace rrp::core {
namespace {

using rrp::testing::tiny_bn_net;
using rrp::testing::tiny_conv_net;
using rrp::testing::tiny_dataset;
using rrp::testing::tiny_input_shape;

TEST(BnState, CaptureAndApplyRoundTrip) {
  nn::Network net = tiny_bn_net(1);
  auto* bn = dynamic_cast<nn::BatchNorm*>(net.find("bn1"));
  bn->running_mean() = nn::Tensor({6}, {1, 2, 3, 4, 5, 6});
  const BnState state = capture_bn_state(net);
  EXPECT_FALSE(state.empty());
  EXPECT_GT(state.total_bytes(), 0);

  bn->running_mean().fill(0.0f);
  apply_bn_state(net, state);
  EXPECT_FLOAT_EQ(bn->running_mean()[3], 4.0f);
}

TEST(BnState, EmptyForNetWithoutBn) {
  nn::Network net = tiny_conv_net(2);
  EXPECT_TRUE(capture_bn_state(net).empty());
}

TEST(BnState, ApplyValidatesLayerNames) {
  nn::Network net = tiny_bn_net(3);
  BnState bogus;
  bogus.stats.emplace("ghost",
                      std::make_pair(nn::Tensor({2}), nn::Tensor({2})));
  EXPECT_THROW(apply_bn_state(net, bogus), PreconditionError);
}

class CalibrationFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = tiny_bn_net(4);
    data_ = tiny_dataset(300, 5);
    rrp::testing::quick_train(net_, data_, 3);
    lib_ = prune::PruneLevelLibrary::build_structured(
        net_, {0.0, 0.5}, tiny_input_shape());
  }
  nn::Network net_;
  nn::Dataset data_;
  prune::PruneLevelLibrary lib_;
};

TEST_F(CalibrationFixture, ReturnsOneStatePerLevel) {
  Rng rng(6);
  const auto states =
      calibrate_bn_per_level(net_, lib_, data_, BnCalibrationConfig{}, rng);
  EXPECT_EQ(states.size(), 2u);
  for (const auto& s : states) EXPECT_FALSE(s.empty());
}

TEST_F(CalibrationFixture, LevelZeroKeepsDenseStats) {
  const BnState before = capture_bn_state(net_);
  Rng rng(7);
  const auto states =
      calibrate_bn_per_level(net_, lib_, data_, BnCalibrationConfig{}, rng);
  for (const auto& [name, mv] : before.stats) {
    const auto it = states[0].stats.find(name);
    ASSERT_NE(it, states[0].stats.end());
    EXPECT_TRUE(it->second.first.equals(mv.first));
    EXPECT_TRUE(it->second.second.equals(mv.second));
  }
}

TEST_F(CalibrationFixture, NetworkRestoredAfterCalibration) {
  std::vector<nn::Tensor> before;
  for (auto& p : net_.params()) before.push_back(*p.value);
  const BnState stats_before = capture_bn_state(net_);

  Rng rng(8);
  calibrate_bn_per_level(net_, lib_, data_, BnCalibrationConfig{}, rng);

  auto after = net_.params();
  for (std::size_t i = 0; i < after.size(); ++i)
    EXPECT_TRUE(after[i].value->equals(before[i]));
  const BnState stats_after = capture_bn_state(net_);
  for (const auto& [name, mv] : stats_before.stats) {
    EXPECT_TRUE(stats_after.stats.at(name).first.equals(mv.first));
    EXPECT_TRUE(stats_after.stats.at(name).second.equals(mv.second));
  }
}

TEST_F(CalibrationFixture, CalibratedStatsDifferFromDenseAtPrunedLevel) {
  Rng rng(9);
  const auto states =
      calibrate_bn_per_level(net_, lib_, data_, BnCalibrationConfig{}, rng);
  bool any_diff = false;
  for (const auto& [name, mv] : states[1].stats) {
    const auto& dense = states[0].stats.at(name);
    if (!mv.first.equals(dense.first)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(CalibrationFixture, CalibrationImprovesOrMatchesPrunedAccuracy) {
  Rng rng(10);
  const auto states =
      calibrate_bn_per_level(net_, lib_, data_, BnCalibrationConfig{}, rng);

  ReversiblePruner rp(net_, lib_);
  rp.set_level(1);
  const double without = nn::evaluate_accuracy(net_, data_);
  rp.set_level(0);

  ReversiblePruner rp2(net_, lib_);
  rp2.set_bn_states(states);
  rp2.set_level(1);
  const double with = nn::evaluate_accuracy(net_, data_);
  EXPECT_GE(with + 0.03, without);
}

TEST_F(CalibrationFixture, ValidatesConfig) {
  Rng rng(11);
  BnCalibrationConfig bad;
  bad.batches = 0;
  EXPECT_THROW(calibrate_bn_per_level(net_, lib_, data_, bad, rng),
               PreconditionError);
}

}  // namespace
}  // namespace rrp::core
