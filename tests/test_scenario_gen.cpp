// test_scenario_gen.cpp — the scenario DSL (sim/scenario_gen.h).
//
// The load-bearing property is PARITY: each legacy suite's DSL spec must
// expand byte-identically to the legacy generator under the same
// (frames, seed) — the golden traces pin the legacy generators, these
// tests pin the DSL to them.  On top: canonical encode/parse round-trips,
// validation errors, and scene invariants over randomly composed specs.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim/scenario_gen.h"
#include "sim/suites.h"
#include "sim/trace_io.h"
#include "util/checks.h"
#include "util/rng.h"

namespace rrp::sim {
namespace {

std::string scenario_bytes(const Scenario& sc) {
  std::ostringstream os;
  write_scenario_csv(sc, os);
  return os.str();
}

// ---------------------------------------------------------------------------
// Parity with the five legacy suites.
// ---------------------------------------------------------------------------

struct ParityCase {
  const char* name;
  Scenario (*legacy)(int, std::uint64_t);
};

class DslParity : public ::testing::TestWithParam<ParityCase> {};

TEST_P(DslParity, BuiltinSpecMatchesLegacyGeneratorByteForByte) {
  const ParityCase& pc = GetParam();
  const ScenarioSpec spec = builtin_scenario_spec(pc.name);
  for (std::uint64_t seed : {1ull, 42ull, 20240325ull}) {
    const Scenario legacy = pc.legacy(700, seed);
    const Scenario dsl = generate_scenario(spec, 700, seed);
    ASSERT_EQ(dsl.name, legacy.name) << pc.name;
    ASSERT_EQ(dsl.dt_s, legacy.dt_s) << pc.name;
    ASSERT_EQ(dsl.frame_count(), legacy.frame_count()) << pc.name;
    EXPECT_EQ(scenario_bytes(dsl), scenario_bytes(legacy))
        << pc.name << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLegacySuites, DslParity,
    ::testing::Values(ParityCase{"highway", make_highway},
                      ParityCase{"urban", make_urban},
                      ParityCase{"cut_in", make_cut_in},
                      ParityCase{"degraded", make_degraded},
                      ParityCase{"intersection", make_intersection}),
    [](const ::testing::TestParamInfo<ParityCase>& info) {
      return std::string(info.param.name);
    });

TEST(DslParityRoundTrip, ParityHoldsThroughEncodeAndParse) {
  // The campaign ships specs as canonical lines; parity must survive the
  // text round-trip, or worst-cell bundles would not replay.
  for (const char* name : {"highway", "urban", "cut_in", "degraded",
                           "intersection"}) {
    const ScenarioSpec spec = builtin_scenario_spec(name);
    const ScenarioSpec round = parse_scenario_spec(encode_scenario_spec(spec));
    EXPECT_EQ(scenario_bytes(generate_scenario(round, 300, 99)),
              scenario_bytes(generate_scenario(spec, 300, 99)))
        << name;
  }
}

// ---------------------------------------------------------------------------
// Determinism and composition.
// ---------------------------------------------------------------------------

TEST(DslDeterminism, SameSpecAndSeedIsByteIdentical) {
  for (const std::string& name : builtin_scenario_names()) {
    const ScenarioSpec spec = builtin_scenario_spec(name);
    EXPECT_EQ(scenario_bytes(generate_scenario(spec, 400, 7)),
              scenario_bytes(generate_scenario(spec, 400, 7)))
        << name;
    EXPECT_NE(scenario_bytes(generate_scenario(spec, 400, 7)),
              scenario_bytes(generate_scenario(spec, 400, 8)))
        << name << ": different seeds should differ";
  }
}

TEST(DslComposition, OverlayDoesNotPerturbTheTrafficStream) {
  // Adding an overlay must only touch visibility: actor kinematics are
  // drawn from the main stream, overlays from their own derived stream.
  ScenarioSpec plain = builtin_scenario_spec("urban");
  ScenarioSpec overlaid = plain;
  ScenarioPrimitive occ;
  occ.kind = "occlusion";
  occ.params["prob"] = 0.05;
  overlaid.primitives.push_back(occ);

  const Scenario a = generate_scenario(plain, 500, 31);
  const Scenario b = generate_scenario(overlaid, 500, 31);
  ASSERT_EQ(a.frame_count(), b.frame_count());
  bool any_vis_changed = false;
  for (std::size_t f = 0; f < a.scenes.size(); ++f) {
    ASSERT_EQ(a.scenes[f].actors.size(), b.scenes[f].actors.size()) << f;
    for (std::size_t i = 0; i < a.scenes[f].actors.size(); ++i) {
      EXPECT_EQ(a.scenes[f].actors[i].distance_m,
                b.scenes[f].actors[i].distance_m);
      EXPECT_EQ(a.scenes[f].actors[i].lateral_m,
                b.scenes[f].actors[i].lateral_m);
    }
    any_vis_changed |= a.scenes[f].visibility != b.scenes[f].visibility;
  }
  EXPECT_TRUE(any_vis_changed) << "occlusion at prob=0.05 over 500 frames "
                                  "should open at least one window";
}

TEST(DslComposition, TrafficBurstsRaiseDensity) {
  ScenarioSpec calm = builtin_scenario_spec("urban");
  ScenarioSpec bursty = calm;
  bursty.primitives[0].params["burst_period"] = 100.0;
  bursty.primitives[0].params["burst_len"] = 50.0;
  bursty.primitives[0].params["burst_factor"] = 8.0;
  bursty.primitives[0].params["max_actors"] = 12.0;
  calm.primitives[0].params["max_actors"] = 12.0;

  auto mean_actors = [](const Scenario& sc) {
    double sum = 0.0;
    for (const Scene& s : sc.scenes) sum += static_cast<double>(s.actors.size());
    return sum / static_cast<double>(sc.scenes.size());
  };
  EXPECT_GT(mean_actors(generate_scenario(bursty, 900, 5)),
            mean_actors(generate_scenario(calm, 900, 5)));
}

TEST(DslComposition, SpeedRegimeRampsTheEgo) {
  const ScenarioSpec spec = builtin_scenario_spec("rush_hour");
  const Scenario sc = generate_scenario(spec, 300, 11);
  EXPECT_EQ(sc.scenes.front().ego_speed_mps, 10.0);
  EXPECT_NEAR(sc.scenes.back().ego_speed_mps, 6.0, 1e-12);
}

TEST(DslComposition, VisibilityRampDegradesMonotonically) {
  const ScenarioSpec spec = builtin_scenario_spec("fog_ramp");
  ScenarioSpec no_occlusion = spec;  // isolate the deterministic ramp
  no_occlusion.primitives.pop_back();
  const Scenario sc = generate_scenario(no_occlusion, 300, 13);
  for (std::size_t f = 1; f < sc.scenes.size(); ++f)
    EXPECT_LE(sc.scenes[f].visibility, sc.scenes[f - 1].visibility + 1e-12);
  EXPECT_LT(sc.scenes.back().visibility, sc.scenes.front().visibility);
}

// ---------------------------------------------------------------------------
// Canonical encoding.
// ---------------------------------------------------------------------------

TEST(DslEncoding, RoundTripIsExact) {
  for (const std::string& name : builtin_scenario_names()) {
    const ScenarioSpec spec = builtin_scenario_spec(name);
    const std::string line = encode_scenario_spec(spec);
    const ScenarioSpec round = parse_scenario_spec(line);
    EXPECT_EQ(round.name, spec.name);
    EXPECT_EQ(round.dt_s, spec.dt_s);
    EXPECT_EQ(round.ego_speed_mps, spec.ego_speed_mps);
    EXPECT_EQ(round.vis_lo, spec.vis_lo);
    EXPECT_EQ(round.vis_hi, spec.vis_hi);
    EXPECT_EQ(round.seed_xor, spec.seed_xor);
    EXPECT_EQ(round.seed_add, spec.seed_add);
    ASSERT_EQ(round.primitives.size(), spec.primitives.size());
    for (std::size_t i = 0; i < spec.primitives.size(); ++i) {
      EXPECT_EQ(round.primitives[i].kind, spec.primitives[i].kind);
      EXPECT_EQ(round.primitives[i].params, spec.primitives[i].params);
    }
    // encode(parse(line)) is a fixed point: the line IS canonical.
    EXPECT_EQ(encode_scenario_spec(round), line) << name;
  }
}

TEST(DslEncoding, MalformedSpecsThrow) {
  EXPECT_THROW(parse_scenario_spec(""), SerializationError);  // no name
  EXPECT_THROW(parse_scenario_spec("ego=25"), SerializationError);
  EXPECT_THROW(parse_scenario_spec("name=x warp_drive{}"), SerializationError);
  EXPECT_THROW(parse_scenario_spec("name=x traffic{warp=9}"),
               SerializationError);
  EXPECT_THROW(parse_scenario_spec("name=x traffic{spawn_prob=abc}"),
               SerializationError);
  EXPECT_THROW(parse_scenario_spec("name=x traffic{spawn_prob=0.1"),
               SerializationError);  // unterminated
  EXPECT_THROW(parse_scenario_spec("name=x vis=0.9"), SerializationError);
  EXPECT_THROW(parse_scenario_spec("name=x vis=1.5,2.0"), SerializationError);
  EXPECT_THROW(parse_scenario_spec("name=x dt=0"), SerializationError);
  EXPECT_THROW(parse_scenario_spec("name=bad name!"), SerializationError);

  ScenarioSpec bad;
  bad.primitives.push_back(ScenarioPrimitive{"no_such_kind", {}});
  EXPECT_THROW(generate_scenario(bad, 10, 1), SerializationError);
  EXPECT_THROW(builtin_scenario_spec("no_such_builtin"), SerializationError);
}

// ---------------------------------------------------------------------------
// Scene invariants over randomly composed specs (property test).
// ---------------------------------------------------------------------------

ScenarioSpec random_spec(Rng& rng) {
  ScenarioSpec spec;
  spec.name = "prop";
  spec.ego_speed_mps = rng.uniform(5.0, 35.0);
  spec.vis_lo = rng.uniform(0.5, 0.9);
  spec.vis_hi = rng.uniform(spec.vis_lo, 1.0);
  const std::vector<std::string>& kinds = scenario_primitive_kinds();
  const int n = rng.uniform_int(1, 4);
  for (int i = 0; i < n; ++i) {
    ScenarioPrimitive p;
    p.kind = kinds[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(kinds.size()) - 1))];
    if (p.kind == "traffic" && rng.bernoulli(0.5)) {
      p.params["burst_period"] = 60.0;
      p.params["burst_len"] = 20.0;
      p.params["burst_factor"] = 3.0;
    }
    if (p.kind == "speed_regime") p.params["target"] = rng.uniform(3.0, 30.0);
    spec.primitives.push_back(std::move(p));
  }
  return spec;
}

TEST(DslProperties, EveryGeneratedScenarioSatisfiesSceneInvariants) {
  Rng meta(0xC0FFEE);
  for (int trial = 0; trial < 40; ++trial) {
    const ScenarioSpec spec = random_spec(meta);
    const std::uint64_t seed = meta.next_u64();
    const Scenario sc = generate_scenario(spec, 250, seed);
    ASSERT_EQ(sc.frame_count(), 250u);

    double prev_time = -1.0;
    for (const Scene& s : sc.scenes) {
      // Monotone clock.
      ASSERT_GT(s.time_s, prev_time);
      prev_time = s.time_s;
      // Visibility stays a valid sensor attenuation.
      ASSERT_GT(s.visibility, 0.0);
      ASSERT_LE(s.visibility, 1.0);
      ASSERT_GT(s.ego_speed_mps, 0.0);
      for (const Actor& a : s.actors) ASSERT_GT(a.distance_m, 0.0);

      // dominant() consistency: in-corridor, in-range, minimal distance.
      if (const Actor* d = s.dominant()) {
        ASSERT_LE(std::fabs(d->lateral_m), kCorridorHalfWidth_m);
        ASSERT_LE(d->distance_m, kSensorRange_m);
        for (const Actor& a : s.actors) {
          if (std::fabs(a.lateral_m) <= kCorridorHalfWidth_m &&
              a.distance_m <= kSensorRange_m) {
            ASSERT_LE(d->distance_m, a.distance_m);
          }
        }
      } else {
        for (const Actor& a : s.actors) {
          ASSERT_FALSE(std::fabs(a.lateral_m) <= kCorridorHalfWidth_m &&
                       a.distance_m <= kSensorRange_m);
        }
      }
    }
    // Byte-determinism of the random composition, too.
    EXPECT_EQ(scenario_bytes(generate_scenario(spec, 250, seed)),
              scenario_bytes(sc));
  }
}

// ---------------------------------------------------------------------------
// The shared suite resolver.
// ---------------------------------------------------------------------------

TEST(SuiteResolver, ResolvesLegacyBuiltinAndDslForms) {
  // Legacy name → legacy generator, byte-for-byte.
  EXPECT_EQ(scenario_bytes(make_suite_or_dsl("highway", 120, 3)),
            scenario_bytes(make_highway(120, 3)));
  // Built-in spec name → DSL expansion.
  EXPECT_EQ(scenario_bytes(make_suite_or_dsl("rush_hour", 120, 3)),
            scenario_bytes(
                generate_scenario(builtin_scenario_spec("rush_hour"), 120, 3)));
  // "dsl:<line>" → parse + expand; the round-trip matches the spec.
  const ScenarioSpec spec = builtin_scenario_spec("swarm_cut_in");
  EXPECT_TRUE(is_dsl_suite(dsl_suite_string(spec)));
  EXPECT_EQ(scenario_bytes(make_suite_or_dsl(dsl_suite_string(spec), 120, 3)),
            scenario_bytes(generate_scenario(spec, 120, 3)));

  EXPECT_THROW(make_suite_or_dsl("no_such_suite", 10, 1), PreconditionError);
  EXPECT_THROW(make_suite_or_dsl("dsl:ego=1", 10, 1), SerializationError);
}

}  // namespace
}  // namespace rrp::sim
