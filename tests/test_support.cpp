#include "test_support.h"

#include <algorithm>
#include <cmath>

#include "nn/loss.h"

namespace rrp::testing {

using namespace rrp::nn;

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (float& v : t.data())
    v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

Shape tiny_input_shape() { return {1, 1, 8, 8}; }

Network tiny_conv_net(std::uint64_t seed) {
  Network net("tiny");
  net.emplace<Conv2D>("conv1", 1, 6, 3, 1, 1);
  net.emplace<ReLU>("relu1");
  net.emplace<MaxPool>("pool1", 2, 2);
  net.emplace<Flatten>("flatten");
  net.emplace<Linear>("fc1", 6 * 4 * 4, 16);
  net.emplace<ReLU>("relu2");
  auto& head = net.emplace<Linear>("head", 16, 3);
  head.set_out_prunable(false);
  Rng rng(seed);
  init_network(net, rng);
  return net;
}

Network tiny_bn_net(std::uint64_t seed) {
  Network net("tinybn");
  net.emplace<Conv2D>("conv1", 1, 6, 3, 1, 1);
  net.emplace<BatchNorm>("bn1", 6);
  net.emplace<ReLU>("relu1");
  net.emplace<MaxPool>("pool1", 2, 2);
  net.emplace<Flatten>("flatten");
  net.emplace<Linear>("fc1", 6 * 4 * 4, 16);
  net.emplace<ReLU>("relu2");
  auto& head = net.emplace<Linear>("head", 16, 3);
  head.set_out_prunable(false);
  Rng rng(seed);
  init_network(net, rng);
  return net;
}

Network tiny_residual_net(std::uint64_t seed) {
  Network net("tinyres");
  auto& stem = net.emplace<Conv2D>("stem", 1, 6, 3, 1, 1);
  stem.set_out_prunable(false);
  net.emplace<ReLU>("stem.relu");
  {
    Network body("block.body");
    body.emplace<Conv2D>("block.conv1", 6, 6, 3, 1, 1);
    body.emplace<ReLU>("block.relu");
    auto& c2 = body.emplace<Conv2D>("block.conv2", 6, 6, 3, 1, 1);
    c2.set_out_prunable(false);
    net.add(std::make_unique<Residual>("block", std::move(body)));
  }
  net.emplace<ReLU>("post.relu");
  net.emplace<GlobalAvgPool>("gap");
  auto& head = net.emplace<Linear>("head", 6, 3);
  head.set_out_prunable(false);
  Rng rng(seed);
  init_network(net, rng);
  return net;
}

Dataset tiny_dataset(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  data.num_classes = 3;
  for (std::size_t i = 0; i < n; ++i) {
    const int label = rng.uniform_int(0, 2);
    Tensor img({1, 8, 8});
    // Class 0: bright top rows; class 1: bright left columns; class 2: X.
    for (int r = 0; r < 8; ++r)
      for (int c = 0; c < 8; ++c) {
        float v = 0.0f;
        if (label == 0 && r < 3) v = 1.0f;
        if (label == 1 && c < 3) v = 1.0f;
        if (label == 2 && (r == c || r == 7 - c)) v = 1.0f;
        img[static_cast<std::int64_t>(r) * 8 + c] =
            v + static_cast<float>(rng.normal(0.0, 0.15));
      }
    data.inputs.push_back(std::move(img));
    data.labels.push_back(label);
  }
  return data;
}

double quick_train(Network& net, const Dataset& data, int epochs,
                   std::uint64_t seed) {
  SgdConfig cfg;
  cfg.epochs = epochs;
  cfg.lr = 0.05f;
  cfg.batch_size = 16;
  Rng rng(seed);
  const auto history = train_sgd(net, data, cfg, rng);
  return history.back().train_accuracy;
}

double gradient_check(Network& net, const Tensor& x,
                      const std::vector<int>& labels, int directions) {
  // Analytic gradients (training mode: BN uses batch statistics).
  net.zero_grad();
  const Tensor logits = net.forward(x, true);
  const LossResult base = softmax_cross_entropy(logits, labels);
  net.backward(base.grad);

  std::vector<Tensor> analytic;
  for (auto& p : net.params()) analytic.push_back(*p.grad);

  auto params = net.params();
  const float eps = 1e-3f;
  std::vector<double> rel_errors;

  for (int t = 0; t < directions; ++t) {
    Rng dir_rng(0xD1Dull * 31 + static_cast<std::uint64_t>(t));
    // Direction d, one normal value per parameter element.
    std::vector<Tensor> d;
    double dot = 0.0;
    for (std::size_t pi = 0; pi < params.size(); ++pi) {
      Tensor di(params[pi].value->shape());
      for (std::int64_t i = 0; i < di.numel(); ++i) {
        di[i] = static_cast<float>(dir_rng.normal());
        dot += static_cast<double>(di[i]) * analytic[pi][i];
      }
      d.push_back(std::move(di));
    }

    auto shift = [&](float sign) {
      for (std::size_t pi = 0; pi < params.size(); ++pi)
        params[pi].value->axpy_(sign * eps, d[pi]);
    };
    shift(+1.0f);
    const float lp = softmax_cross_entropy(net.forward(x, true), labels).loss;
    shift(-2.0f);
    const float lm = softmax_cross_entropy(net.forward(x, true), labels).loss;
    shift(+1.0f);  // restore

    const double numeric = (static_cast<double>(lp) - lm) / (2.0 * eps);
    const double denom = std::max(std::fabs(dot), 1e-4);
    rel_errors.push_back(std::fabs(numeric - dot) / denom);
  }

  std::sort(rel_errors.begin(), rel_errors.end());
  return rel_errors[rel_errors.size() / 2];
}

}  // namespace rrp::testing
