// test_flight_recorder.cpp — black-box ring buffer + incident-bundle
// serialization (core/flight_recorder.h): ring semantics, the binary
// round-trip, checksum/truncation failure modes, CSV/summary rendering.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/flight_recorder.h"
#include "util/checks.h"

namespace rrp::core {
namespace {

FlightRecord make_record(std::int64_t frame) {
  FlightRecord r;
  r.frame = frame;
  r.criticality = static_cast<std::int32_t>(frame % 4);
  r.true_criticality = static_cast<std::int32_t>((frame + 1) % 4);
  r.requested_level = 2;
  r.executed_level = static_cast<std::int32_t>(frame % 3);
  r.latency_ms = 3.25 + 0.001 * static_cast<double>(frame);
  r.switch_us = 40.0;
  r.deadline_ms = 5.0;
  r.energy_mj = 1.5;
  r.flags = FlightRecord::kCorrect;
  r.integrity_detects = frame % 7 == 0 ? 1 : 0;
  r.span_digest = 0x1234u + static_cast<std::uint64_t>(frame);
  return r;
}

IncidentBundle make_bundle(std::size_t n_records) {
  IncidentBundle bundle;
  bundle.context.model = "lenet";
  bundle.context.suite = "cut_in";
  bundle.context.policy = "greedy";
  bundle.context.provider = "reversible";
  bundle.context.frames = 600;
  bundle.context.scenario_seed = 20240325;
  bundle.context.noise_seed = 0x5DEECE66Dull;
  bundle.context.deadline_ms = 12.0;
  bundle.context.scrub_period_frames = 20;
  bundle.context.watchdog_overrun_frames = 8;
  bundle.context.certified = {4, 3, 1, 0};
  bundle.context.telemetry_digest = 0xfeedface12345678ull;

  RecordedFault f;
  f.kind = 3;
  f.frame = 40;
  f.magnitude = 4.0;
  f.target = 77;
  f.bit = 12;
  bundle.faults.push_back(f);

  bundle.slos = standard_slos();

  Incident inc;
  inc.frame = 55;
  inc.slo_id = "integrity.detect";
  inc.observed = 2.0;
  inc.detail = "weight fault detected";
  bundle.incidents.push_back(inc);
  bundle.dropped_incidents = 3;

  for (std::size_t i = 0; i < n_records; ++i)
    bundle.records.push_back(make_record(static_cast<std::int64_t>(i) + 30));
  return bundle;
}

std::string bundle_to_string(const IncidentBundle& bundle) {
  std::ostringstream os(std::ios::binary);
  write_incident_bundle(bundle, os);
  return os.str();
}

IncidentBundle bundle_from_string(const std::string& bytes) {
  std::istringstream is(bytes, std::ios::binary);
  return read_incident_bundle(is);
}

TEST(FlightRecorder, RingKeepsNewestWindowInOrder) {
  FlightRecorder rec(8);
  EXPECT_EQ(rec.capacity(), 8u);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_TRUE(rec.window().empty());

  for (std::int64_t f = 0; f < 20; ++f) rec.record(make_record(f));
  EXPECT_EQ(rec.size(), 8u);
  EXPECT_EQ(rec.total_recorded(), 20);

  const std::vector<FlightRecord> window = rec.window();
  ASSERT_EQ(window.size(), 8u);
  for (std::size_t i = 0; i < window.size(); ++i)
    EXPECT_EQ(window[i].frame, static_cast<std::int64_t>(12 + i))
        << "oldest-to-newest order, frames 12..19";

  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.total_recorded(), 0);
}

TEST(FlightRecorder, PartialFillPreservesEverything) {
  FlightRecorder rec(256);
  for (std::int64_t f = 0; f < 5; ++f) rec.record(make_record(f));
  const std::vector<FlightRecord> window = rec.window();
  ASSERT_EQ(window.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(window[i].frame, static_cast<std::int64_t>(i));
}

TEST(FlightRecorder, ZeroCapacityIsRejected) {
  EXPECT_THROW(FlightRecorder(0), PreconditionError);
}

TEST(FlightRecord, FlagHelpersAndSlack) {
  FlightRecord r;
  r.flags = FlightRecord::kCorrect | FlightRecord::kViolation;
  EXPECT_TRUE(r.correct());
  EXPECT_FALSE(r.veto());
  EXPECT_TRUE(r.violation());
  EXPECT_FALSE(r.true_violation());

  r.deadline_ms = 5.0;
  r.latency_ms = 3.0;
  r.switch_us = 500.0;  // 0.5 ms
  EXPECT_NEAR(r.slack_ms(), 1.5, 1e-12);
}

TEST(IncidentBundle, RoundTripPreservesEveryField) {
  const IncidentBundle bundle = make_bundle(12);
  const IncidentBundle back = bundle_from_string(bundle_to_string(bundle));

  EXPECT_EQ(back.context.model, "lenet");
  EXPECT_EQ(back.context.suite, "cut_in");
  EXPECT_EQ(back.context.policy, "greedy");
  EXPECT_EQ(back.context.provider, "reversible");
  EXPECT_EQ(back.context.frames, 600);
  EXPECT_EQ(back.context.scenario_seed, 20240325u);
  EXPECT_EQ(back.context.noise_seed, 0x5DEECE66Dull);
  EXPECT_EQ(back.context.deadline_ms, 12.0);
  EXPECT_EQ(back.context.certified, bundle.context.certified);
  EXPECT_EQ(back.context.telemetry_digest, 0xfeedface12345678ull);

  ASSERT_EQ(back.faults.size(), 1u);
  EXPECT_EQ(back.faults[0].kind, 3);
  EXPECT_EQ(back.faults[0].frame, 40);
  EXPECT_EQ(back.faults[0].target, 77u);
  EXPECT_EQ(back.faults[0].bit, 12);

  ASSERT_EQ(back.slos.size(), standard_slos().size());
  EXPECT_EQ(back.slos[0].id, "slo.deadline_miss_rate");
  EXPECT_EQ(back.slos[0].numerator, "runner.deadline_misses");
  EXPECT_EQ(back.slos[1].quantile, 0.99);

  ASSERT_EQ(back.incidents.size(), 1u);
  EXPECT_EQ(back.incidents[0].frame, 55);
  EXPECT_EQ(back.incidents[0].slo_id, "integrity.detect");
  EXPECT_EQ(back.incidents[0].detail, "weight fault detected");
  EXPECT_EQ(back.dropped_incidents, 3);

  ASSERT_EQ(back.records.size(), 12u);
  for (std::size_t i = 0; i < back.records.size(); ++i) {
    EXPECT_EQ(back.records[i].frame, bundle.records[i].frame);
    EXPECT_EQ(back.records[i].latency_ms, bundle.records[i].latency_ms);
    EXPECT_EQ(back.records[i].flags, bundle.records[i].flags);
    EXPECT_EQ(back.records[i].span_digest, bundle.records[i].span_digest);
  }

  // Serialization is deterministic: the round-tripped bundle re-serializes
  // to the exact same bytes.
  EXPECT_EQ(bundle_to_string(back), bundle_to_string(bundle));
}

TEST(IncidentBundle, EveryCorruptedByteFailsTheChecksum) {
  const std::string bytes = bundle_to_string(make_bundle(4));
  // Flip one bit at a spread of positions (header, body, checksum itself):
  // every single-byte corruption must be caught before parsing.
  for (std::size_t pos : {std::size_t{0}, bytes.size() / 2, bytes.size() - 1}) {
    std::string bad = bytes;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    try {
      bundle_from_string(bad);
      FAIL() << "corruption at byte " << pos << " was not detected";
    } catch (const SerializationError& e) {
      EXPECT_NE(std::string(e.what()).find("checksum mismatch"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(IncidentBundle, TruncationAndBadMagicAreRejected) {
  const std::string bytes = bundle_to_string(make_bundle(4));
  EXPECT_THROW(bundle_from_string(bytes.substr(0, 10)), SerializationError);
  EXPECT_THROW(bundle_from_string(bytes.substr(0, bytes.size() - 9)),
               SerializationError);
  // A valid checksum over a wrong magic: rebuild the tail by hand is
  // overkill — corrupting the magic already fails at the checksum, which
  // is the designed first line of defense (asserted above).  An EMPTY
  // stream must also fail cleanly.
  EXPECT_THROW(bundle_from_string(""), SerializationError);
}

TEST(IncidentBundle, CsvRenderingIsStable) {
  const IncidentBundle bundle = make_bundle(3);
  const std::string csv = incident_csv_string(bundle);
  EXPECT_EQ(csv, incident_csv_string(bundle));
  EXPECT_NE(csv.find("frame,criticality,true_criticality"), std::string::npos);
  EXPECT_NE(csv.find("slack_ms"), std::string::npos);
  EXPECT_NE(csv.find("span_digest"), std::string::npos);
  // Header + one line per record.
  const std::size_t lines =
      static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, 1u + bundle.records.size());
}

TEST(IncidentBundle, SummaryNamesTheEvidence) {
  const IncidentBundle bundle = make_bundle(5);
  const std::string text = incident_summary_string(bundle);
  EXPECT_NE(text.find("model=lenet suite=cut_in"), std::string::npos);
  EXPECT_NE(text.find("certified=[4,3,1,0]"), std::string::npos);
  EXPECT_NE(text.find("id=integrity.detect"), std::string::npos);
  EXPECT_NE(text.find("(+3 dropped)"), std::string::npos);
  EXPECT_NE(text.find("window frames [30, 34]"), std::string::npos);
}

}  // namespace
}  // namespace rrp::core
