#include <gtest/gtest.h>

#include "sim/platform_model.h"
#include "util/checks.h"

namespace rrp::sim {
namespace {

TEST(Platform, LatencyAffineInMacs) {
  PlatformModel pm;
  const double base = pm.latency_ms(0);
  EXPECT_NEAR(base, pm.config().infer_overhead_us * 1e-3, 1e-12);
  const double l1 = pm.latency_ms(300000);
  const double l2 = pm.latency_ms(600000);
  EXPECT_NEAR(l2 - l1, l1 - base, 1e-9);
  EXPECT_GT(l1, base);
}

TEST(Platform, EnergyIncludesStaticAndDynamic) {
  PlatformModel pm;
  const double idle = pm.energy_mj(0);
  EXPECT_GT(idle, 0.0);  // static power over the fixed overhead
  EXPECT_GT(pm.energy_mj(1000000), idle);
}

TEST(Platform, EnergyMonotoneInMacs) {
  PlatformModel pm;
  double prev = -1.0;
  for (std::int64_t macs : {0LL, 10000LL, 100000LL, 1000000LL}) {
    const double e = pm.energy_mj(macs);
    EXPECT_GT(e, prev);
    prev = e;
  }
}

TEST(Platform, SwitchLatencyScalesWithBytes) {
  PlatformModel pm;
  const double zero = pm.switch_latency_us(0);
  EXPECT_NEAR(zero, pm.config().switch_overhead_us, 1e-12);
  EXPECT_GT(pm.switch_latency_us(1 << 20), zero);
}

TEST(Platform, SwitchEnergyPositive) {
  PlatformModel pm;
  EXPECT_GT(pm.switch_energy_mj(4096), 0.0);
}

TEST(Platform, ValidatesInputs) {
  PlatformModel pm;
  EXPECT_THROW(pm.latency_ms(-1), PreconditionError);
  EXPECT_THROW(pm.switch_latency_us(-1), PreconditionError);
  PlatformConfig bad;
  bad.macs_per_us = 0.0;
  EXPECT_THROW(PlatformModel{bad}, PreconditionError);
}

TEST(Platform, CustomConfigRespected) {
  PlatformConfig cfg;
  cfg.macs_per_us = 1000.0;
  cfg.infer_overhead_us = 0.0;
  PlatformModel pm(cfg);
  EXPECT_NEAR(pm.latency_ms(1000000), 1.0, 1e-9);
}

}  // namespace
}  // namespace rrp::sim
