#include <gtest/gtest.h>

#include "core/controller.h"
#include "core/baselines.h"
#include "test_support.h"

namespace rrp::core {
namespace {

using rrp::testing::tiny_conv_net;
using rrp::testing::tiny_input_shape;

const std::vector<double> kRatios{0.0, 0.2, 0.4, 0.6, 0.8};

prune::PruneLevelLibrary lib_for(nn::Network& net) {
  return prune::PruneLevelLibrary::build_structured(net, kRatios,
                                                    tiny_input_shape());
}

ControlInput input_at(CriticalityClass c, std::int64_t frame = 0) {
  ControlInput in;
  in.frame = frame;
  in.criticality = c;
  return in;
}

TEST(Controller, AppliesPolicyDecisionToProvider) {
  nn::Network net = tiny_conv_net(1);
  ReversiblePruner provider(net, lib_for(net));
  CriticalityGreedyPolicy policy(SafetyConfig{}, /*hysteresis=*/1, 5);
  SafetyMonitor monitor;
  RuntimeController ctl(policy, provider, &monitor);

  const auto d = ctl.step(input_at(CriticalityClass::Low));
  EXPECT_EQ(d.requested_level, 4);
  EXPECT_EQ(d.enforced_level, 4);
  EXPECT_EQ(provider.current_level(), 4);
  EXPECT_FALSE(d.veto);
}

TEST(Controller, SafetyVetoForcesRestore) {
  nn::Network net = tiny_conv_net(2);
  ReversiblePruner provider(net, lib_for(net));
  FixedPolicy policy(4);  // insists on deepest pruning
  SafetyMonitor monitor;
  RuntimeController ctl(policy, provider, &monitor);

  const auto d = ctl.step(input_at(CriticalityClass::Critical));
  EXPECT_EQ(d.requested_level, 4);
  EXPECT_EQ(d.enforced_level, 0);
  EXPECT_TRUE(d.veto);
  EXPECT_EQ(provider.current_level(), 0);
  EXPECT_EQ(monitor.veto_count(), 1);
  EXPECT_EQ(monitor.violation_count(), 0);  // veto prevented the violation
}

TEST(Controller, WithoutMonitorNoScreening) {
  nn::Network net = tiny_conv_net(3);
  ReversiblePruner provider(net, lib_for(net));
  FixedPolicy policy(4);
  RuntimeController ctl(policy, provider, nullptr);
  const auto d = ctl.step(input_at(CriticalityClass::Critical));
  EXPECT_EQ(d.enforced_level, 4);  // nothing stops it
  EXPECT_FALSE(d.veto);
}

TEST(Controller, StaticProviderIgnoresDecisionAndAuditCatchesIt) {
  nn::Network net = tiny_conv_net(4);
  const auto lib = lib_for(net);
  StaticProvider provider(net, lib, 4);  // stuck at deepest pruning
  CriticalityGreedyPolicy policy(SafetyConfig{}, 1, 5);
  SafetyMonitor monitor;
  RuntimeController ctl(policy, provider, &monitor);

  ctl.step(input_at(CriticalityClass::Critical));
  // The monitor demanded level 0 but the static provider cannot comply:
  // that frame is a recorded safety violation.
  EXPECT_EQ(provider.current_level(), 4);
  EXPECT_EQ(monitor.violation_count(), 1);
}

TEST(Controller, CountsActualSwitchesOnly) {
  nn::Network net = tiny_conv_net(5);
  ReversiblePruner provider(net, lib_for(net));
  CriticalityGreedyPolicy policy(SafetyConfig{}, 1, 5);
  RuntimeController ctl(policy, provider, nullptr);

  ctl.step(input_at(CriticalityClass::Low, 0));   // 0 -> 4: switch
  ctl.step(input_at(CriticalityClass::Low, 1));   // stays: no switch
  ctl.step(input_at(CriticalityClass::High, 2));  // 4 -> 1: switch
  EXPECT_EQ(ctl.switch_count(), 2);
}

TEST(Controller, ClampsPolicyOutputToLevelRange) {
  nn::Network net = tiny_conv_net(6);
  ReversiblePruner provider(net, lib_for(net));
  FixedPolicy policy(99);
  RuntimeController ctl(policy, provider, nullptr);
  const auto d = ctl.step(input_at(CriticalityClass::Low));
  EXPECT_EQ(d.requested_level, 4);
  EXPECT_EQ(provider.current_level(), 4);
}

TEST(Controller, ResetClearsPolicyMonitorAndCounter) {
  nn::Network net = tiny_conv_net(7);
  ReversiblePruner provider(net, lib_for(net));
  CriticalityGreedyPolicy policy(SafetyConfig{}, 3, 5);
  SafetyMonitor monitor;
  RuntimeController ctl(policy, provider, &monitor);
  ctl.step(input_at(CriticalityClass::Low, 0));
  ctl.reset();
  EXPECT_EQ(ctl.switch_count(), 0);
  EXPECT_EQ(monitor.audited_frames(), 0);
}

TEST(Controller, TransitionStatsSurfaceInDecision) {
  nn::Network net = tiny_conv_net(8);
  ReversiblePruner provider(net, lib_for(net));
  CriticalityGreedyPolicy policy(SafetyConfig{}, 1, 5);
  RuntimeController ctl(policy, provider, nullptr);
  const auto d = ctl.step(input_at(CriticalityClass::Low));
  EXPECT_EQ(d.transition.from_level, 0);
  EXPECT_EQ(d.transition.to_level, 4);
  EXPECT_GT(d.transition.elements_changed, 0);
}

}  // namespace
}  // namespace rrp::core
