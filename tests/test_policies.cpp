#include <gtest/gtest.h>

#include "core/policies.h"
#include "util/checks.h"

namespace rrp::core {
namespace {

constexpr int kLevels = 5;

SafetyConfig certified() {
  SafetyConfig c;
  c.max_level_for = {4, 3, 1, 0};
  return c;
}

ControlInput input_at(CriticalityClass crit, std::int64_t frame = 0) {
  ControlInput in;
  in.frame = frame;
  in.criticality = crit;
  return in;
}

TEST(CriticalityGreedy, RelaxesImmediately) {
  CriticalityGreedyPolicy p(certified(), /*hysteresis=*/5, kLevels);
  // Cruising pruned hard; hazard appears -> must drop NOW.
  EXPECT_EQ(p.decide(input_at(CriticalityClass::Critical), 4), 0);
  EXPECT_EQ(p.decide(input_at(CriticalityClass::High), 4), 1);
}

TEST(CriticalityGreedy, PrunesOnlyAfterHysteresis) {
  CriticalityGreedyPolicy p(certified(), /*hysteresis=*/3, kLevels);
  // Calm scene, current level 0: needs 3 consecutive proposals.
  EXPECT_EQ(p.decide(input_at(CriticalityClass::Low, 0), 0), 0);
  EXPECT_EQ(p.decide(input_at(CriticalityClass::Low, 1), 0), 0);
  EXPECT_EQ(p.decide(input_at(CriticalityClass::Low, 2), 0), 4);
}

TEST(CriticalityGreedy, HysteresisResetsOnTargetChange) {
  CriticalityGreedyPolicy p(certified(), 3, kLevels);
  p.decide(input_at(CriticalityClass::Low), 0);
  p.decide(input_at(CriticalityClass::Low), 0);
  // Criticality interrupts the streak.
  EXPECT_EQ(p.decide(input_at(CriticalityClass::Critical), 0), 0);
  // Streak starts over.
  EXPECT_EQ(p.decide(input_at(CriticalityClass::Low), 0), 0);
  EXPECT_EQ(p.decide(input_at(CriticalityClass::Low), 0), 0);
  EXPECT_EQ(p.decide(input_at(CriticalityClass::Low), 0), 4);
}

TEST(CriticalityGreedy, ResetClearsState) {
  CriticalityGreedyPolicy p(certified(), 2, kLevels);
  p.decide(input_at(CriticalityClass::Low), 0);
  p.reset();
  EXPECT_EQ(p.decide(input_at(CriticalityClass::Low), 0), 0);  // streak anew
  EXPECT_EQ(p.decide(input_at(CriticalityClass::Low), 0), 2 >= 2 ? 4 : 0);
}

TEST(CriticalityGreedy, CapsAtLevelCount) {
  SafetyConfig wide;
  wide.max_level_for = {9, 8, 7, 6};
  CriticalityGreedyPolicy p(wide, 1, /*level_count=*/3);
  EXPECT_LE(p.decide(input_at(CriticalityClass::Low), 2), 2);
}

TEST(Deadline, PicksLeastPrunedFeasibleLevel) {
  LevelProfile prof;
  prof.latency_ms = {10.0, 6.0, 3.0, 1.0};
  prof.energy_mj = {4, 3, 2, 1};
  prof.accuracy = {0.95, 0.9, 0.8, 0.6};
  DeadlinePolicy p(prof, /*margin=*/1.0);
  ControlInput in;
  in.deadline_ms = 7.0;
  EXPECT_EQ(p.decide(in, 0), 1);
  in.deadline_ms = 100.0;
  EXPECT_EQ(p.decide(in, 0), 0);
}

TEST(Deadline, InfeasibleDeadlinePrunesMaximally) {
  LevelProfile prof;
  prof.latency_ms = {10.0, 6.0};
  prof.energy_mj = {2, 1};
  prof.accuracy = {0.9, 0.8};
  DeadlinePolicy p(prof);
  ControlInput in;
  in.deadline_ms = 0.1;
  EXPECT_EQ(p.decide(in, 0), 1);
}

TEST(Deadline, MarginTightensBudget) {
  LevelProfile prof;
  prof.latency_ms = {10.0, 5.0};
  prof.energy_mj = {2, 1};
  prof.accuracy = {0.9, 0.8};
  DeadlinePolicy p(prof, /*margin=*/0.5);
  ControlInput in;
  in.deadline_ms = 11.0;  // budget 5.5 -> level 1
  EXPECT_EQ(p.decide(in, 0), 1);
}

LevelProfile flat_profile() {
  LevelProfile prof;
  prof.latency_ms = {4.0, 3.0, 2.0, 1.5, 1.0};
  prof.energy_mj = {5, 4, 3, 2, 1};
  prof.accuracy = {0.95, 0.93, 0.9, 0.85, 0.7};
  return prof;
}

TEST(Hybrid, CriticalSceneForcesFullAccuracy) {
  HybridPolicy p(certified(), flat_profile(), 1);
  ControlInput in = input_at(CriticalityClass::Critical);
  in.deadline_ms = 10.0;
  EXPECT_EQ(p.decide(in, 3), 0);
}

TEST(Hybrid, LowEnergyBudgetEscalatesPruning) {
  HybridPolicy p(certified(), flat_profile(), 1);
  ControlInput calm = input_at(CriticalityClass::Low);
  calm.deadline_ms = 10.0;
  calm.energy_budget_frac = 0.1;  // below watermark
  EXPECT_EQ(p.decide(calm, 0), 4);
}

TEST(Hybrid, UpwardMovesGoThroughHysteresis) {
  HybridPolicy p(certified(), flat_profile(), /*hysteresis=*/2);
  ControlInput calm = input_at(CriticalityClass::Low);
  calm.energy_budget_frac = 0.1;
  EXPECT_EQ(p.decide(calm, 0), 0);  // first proposal waits
  EXPECT_EQ(p.decide(calm, 0), 4);  // second commits
}

TEST(Hybrid, DeadlineFloorsThePick) {
  HybridPolicy p(certified(), flat_profile(), 1, /*deadline_margin=*/1.0);
  ControlInput in = input_at(CriticalityClass::Critical);
  in.deadline_ms = 1.2;  // only level 4 fits, but Critical caps at 0:
  // safety cap wins inside the policy; the SafetyMonitor decides the rest.
  EXPECT_EQ(p.decide(in, 0), 0);
}

TEST(Oracle, SeesFutureHazard) {
  std::vector<CriticalityClass> future(100, CriticalityClass::Low);
  future[50] = CriticalityClass::Critical;
  OraclePolicy p(certified(), future, /*lookahead=*/10);
  EXPECT_EQ(p.decide(input_at(CriticalityClass::Low, 45), 4), 0);
  EXPECT_EQ(p.decide(input_at(CriticalityClass::Low, 30), 4), 4);
  EXPECT_EQ(p.decide(input_at(CriticalityClass::Low, 51), 4), 4);
}

TEST(Fixed, AlwaysProposesSameLevel) {
  FixedPolicy p(2);
  EXPECT_EQ(p.decide(input_at(CriticalityClass::Critical), 0), 2);
  EXPECT_EQ(p.decide(input_at(CriticalityClass::Low), 4), 2);
  EXPECT_EQ(p.name(), "fixed-L2");
}

TEST(Policies, ValidateConstruction) {
  EXPECT_THROW(CriticalityGreedyPolicy(certified(), 0, 5), PreconditionError);
  LevelProfile empty;
  EXPECT_THROW(DeadlinePolicy(empty, 0.9), PreconditionError);
  EXPECT_THROW(HybridPolicy(certified(), flat_profile(), 0),
               PreconditionError);
  EXPECT_THROW(FixedPolicy(-1), PreconditionError);
}

}  // namespace
}  // namespace rrp::core
