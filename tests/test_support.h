// test_support.h — shared fixtures/helpers for the rrp test suite.
#pragma once

#include "models/trained_cache.h"
#include "nn/init.h"
#include "nn/network.h"
#include "nn/train.h"
#include "sim/vision_task.h"
#include "util/rng.h"

namespace rrp::testing {

/// Fills a tensor with deterministic pseudo-random values in [-1, 1].
nn::Tensor random_tensor(nn::Shape shape, std::uint64_t seed);

/// A tiny conv net (1x8x8 input, 3 classes) that trains in well under a
/// second; structured-prunable (conv1, fc1), pinned head.
nn::Network tiny_conv_net(std::uint64_t seed);

/// Same topology as tiny_conv_net but with BatchNorm after conv1.
nn::Network tiny_bn_net(std::uint64_t seed);

/// A tiny residual net (shape-preserving block) on 1x8x8 input.
nn::Network tiny_residual_net(std::uint64_t seed);

/// Batch-1 input shape for the tiny nets.
nn::Shape tiny_input_shape();

/// A small synthetic 3-class dataset on 1x8x8 inputs whose classes are
/// linearly separable-ish patterns; trains to >80% in a couple of epochs.
nn::Dataset tiny_dataset(std::size_t n, std::uint64_t seed);

/// Trains `net` briefly on tiny_dataset; returns final train accuracy.
double quick_train(nn::Network& net, const nn::Dataset& data, int epochs = 3,
                   std::uint64_t seed = 11);

/// Directional-derivative gradient check: compares the analytic gradient's
/// projection onto random directions against central differences of the
/// loss along those directions.  Returns the MEDIAN relative error over
/// `directions` probes — robust to isolated ReLU/MaxPool kink crossings
/// while any systematic backward bug shifts every probe.
double gradient_check(nn::Network& net, const nn::Tensor& x,
                      const std::vector<int>& labels, int directions = 15);

}  // namespace rrp::testing
