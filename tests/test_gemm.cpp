#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "nn/gemm.h"
#include "util/rng.h"

namespace rrp::nn {
namespace {

// Naive reference: C = alpha*op(A)*op(B) + beta*C.
void ref_gemm(bool ta, bool tb, std::int64_t m, std::int64_t n, std::int64_t k,
              float alpha, const std::vector<float>& a,
              const std::vector<float>& b, float beta, std::vector<float>& c) {
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = ta ? a[kk * m + i] : a[i * k + kk];
        const float bv = tb ? b[j * k + kk] : b[kk * n + j];
        acc += static_cast<double>(av) * bv;
      }
      c[i * n + j] = alpha * static_cast<float>(acc) +
                     (beta == 0.0f ? 0.0f : beta * c[i * n + j]);
    }
}

std::vector<float> random_vec(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

using GemmShape = std::tuple<int, int, int>;

class GemmShapes : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmShapes, MatchesReference) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 10007 + n * 101 + k));
  const auto a = random_vec(static_cast<std::size_t>(m) * k, rng);
  const auto b = random_vec(static_cast<std::size_t>(k) * n, rng);
  std::vector<float> c(static_cast<std::size_t>(m) * n, 0.0f);
  std::vector<float> expected = c;

  gemm(m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, c.data(), n);
  ref_gemm(false, false, m, n, k, 1.0f, a, b, 0.0f, expected);
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], expected[i], 1e-4f) << "at " << i;
}

TEST_P(GemmShapes, TransposedAMatchesReference) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 7 + n * 11 + k * 13));
  const auto a = random_vec(static_cast<std::size_t>(k) * m, rng);  // [K, M]
  const auto b = random_vec(static_cast<std::size_t>(k) * n, rng);
  std::vector<float> c(static_cast<std::size_t>(m) * n, 0.0f);
  std::vector<float> expected = c;

  gemm_at(m, n, k, 1.0f, a.data(), m, b.data(), n, 0.0f, c.data(), n);
  ref_gemm(true, false, m, n, k, 1.0f, a, b, 0.0f, expected);
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], expected[i], 1e-4f) << "at " << i;
}

TEST_P(GemmShapes, TransposedBMatchesReference) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 3 + n * 5 + k * 17));
  const auto a = random_vec(static_cast<std::size_t>(m) * k, rng);
  const auto b = random_vec(static_cast<std::size_t>(n) * k, rng);  // [N, K]
  std::vector<float> c(static_cast<std::size_t>(m) * n, 0.0f);
  std::vector<float> expected = c;

  gemm_bt(m, n, k, 1.0f, a.data(), k, b.data(), k, 0.0f, c.data(), n);
  ref_gemm(false, true, m, n, k, 1.0f, a, b, 0.0f, expected);
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], expected[i], 1e-4f) << "at " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(GemmShape{1, 1, 1}, GemmShape{1, 7, 3},
                      GemmShape{5, 1, 9}, GemmShape{4, 4, 4},
                      GemmShape{16, 16, 16}, GemmShape{33, 17, 65},
                      GemmShape{64, 64, 64}, GemmShape{70, 65, 130},
                      GemmShape{128, 3, 128}));

TEST(Gemm, AlphaBetaAccumulate) {
  Rng rng(99);
  const int m = 9, n = 11, k = 13;
  const auto a = random_vec(static_cast<std::size_t>(m) * k, rng);
  const auto b = random_vec(static_cast<std::size_t>(k) * n, rng);
  auto c = random_vec(static_cast<std::size_t>(m) * n, rng);
  std::vector<float> expected = c;

  gemm(m, n, k, 0.5f, a.data(), k, b.data(), n, 2.0f, c.data(), n);
  ref_gemm(false, false, m, n, k, 0.5f, a, b, 2.0f, expected);
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], expected[i], 1e-3f);
}

TEST(Gemm, BetaOneAccumulatesIntoExisting) {
  const int m = 2, n = 2, k = 2;
  std::vector<float> a{1, 0, 0, 1};  // identity
  std::vector<float> b{1, 2, 3, 4};
  std::vector<float> c{10, 10, 10, 10};
  gemm(m, n, k, 1.0f, a.data(), k, b.data(), n, 1.0f, c.data(), n);
  EXPECT_FLOAT_EQ(c[0], 11.0f);
  EXPECT_FLOAT_EQ(c[3], 14.0f);
}

TEST(Gemm, ZeroWeightsShortCircuitIsExact) {
  // The kernel skips zero A-values; result must equal the reference anyway.
  const int m = 4, n = 4, k = 4;
  Rng rng(7);
  auto a = random_vec(16, rng);
  for (std::size_t i = 0; i < a.size(); i += 2) a[i] = 0.0f;  // half pruned
  const auto b = random_vec(16, rng);
  std::vector<float> c(16, 0.0f), expected(16, 0.0f);
  gemm(m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, c.data(), n);
  ref_gemm(false, false, m, n, k, 1.0f, a, b, 0.0f, expected);
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], expected[i], 1e-5f);
}

}  // namespace
}  // namespace rrp::nn
