#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include "nn/gemm.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace rrp::nn {
namespace {

// Naive reference: C = alpha*op(A)*op(B) + beta*C.
void ref_gemm(bool ta, bool tb, std::int64_t m, std::int64_t n, std::int64_t k,
              float alpha, const std::vector<float>& a,
              const std::vector<float>& b, float beta, std::vector<float>& c) {
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = ta ? a[kk * m + i] : a[i * k + kk];
        const float bv = tb ? b[j * k + kk] : b[kk * n + j];
        acc += static_cast<double>(av) * bv;
      }
      c[i * n + j] = alpha * static_cast<float>(acc) +
                     (beta == 0.0f ? 0.0f : beta * c[i * n + j]);
    }
}

std::vector<float> random_vec(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

using GemmShape = std::tuple<int, int, int>;

class GemmShapes : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmShapes, MatchesReference) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 10007 + n * 101 + k));
  const auto a = random_vec(static_cast<std::size_t>(m) * k, rng);
  const auto b = random_vec(static_cast<std::size_t>(k) * n, rng);
  std::vector<float> c(static_cast<std::size_t>(m) * n, 0.0f);
  std::vector<float> expected = c;

  gemm(m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, c.data(), n);
  ref_gemm(false, false, m, n, k, 1.0f, a, b, 0.0f, expected);
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], expected[i], 1e-4f) << "at " << i;
}

TEST_P(GemmShapes, TransposedAMatchesReference) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 7 + n * 11 + k * 13));
  const auto a = random_vec(static_cast<std::size_t>(k) * m, rng);  // [K, M]
  const auto b = random_vec(static_cast<std::size_t>(k) * n, rng);
  std::vector<float> c(static_cast<std::size_t>(m) * n, 0.0f);
  std::vector<float> expected = c;

  gemm_at(m, n, k, 1.0f, a.data(), m, b.data(), n, 0.0f, c.data(), n);
  ref_gemm(true, false, m, n, k, 1.0f, a, b, 0.0f, expected);
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], expected[i], 1e-4f) << "at " << i;
}

TEST_P(GemmShapes, TransposedBMatchesReference) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 3 + n * 5 + k * 17));
  const auto a = random_vec(static_cast<std::size_t>(m) * k, rng);
  const auto b = random_vec(static_cast<std::size_t>(n) * k, rng);  // [N, K]
  std::vector<float> c(static_cast<std::size_t>(m) * n, 0.0f);
  std::vector<float> expected = c;

  gemm_bt(m, n, k, 1.0f, a.data(), k, b.data(), k, 0.0f, c.data(), n);
  ref_gemm(false, true, m, n, k, 1.0f, a, b, 0.0f, expected);
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], expected[i], 1e-4f) << "at " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(GemmShape{1, 1, 1}, GemmShape{1, 7, 3},
                      GemmShape{5, 1, 9}, GemmShape{4, 4, 4},
                      GemmShape{16, 16, 16}, GemmShape{33, 17, 65},
                      GemmShape{64, 64, 64}, GemmShape{70, 65, 130},
                      GemmShape{128, 3, 128}));

TEST(Gemm, AlphaBetaAccumulate) {
  Rng rng(99);
  const int m = 9, n = 11, k = 13;
  const auto a = random_vec(static_cast<std::size_t>(m) * k, rng);
  const auto b = random_vec(static_cast<std::size_t>(k) * n, rng);
  auto c = random_vec(static_cast<std::size_t>(m) * n, rng);
  std::vector<float> expected = c;

  gemm(m, n, k, 0.5f, a.data(), k, b.data(), n, 2.0f, c.data(), n);
  ref_gemm(false, false, m, n, k, 0.5f, a, b, 2.0f, expected);
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], expected[i], 1e-3f);
}

TEST(Gemm, BetaOneAccumulatesIntoExisting) {
  const int m = 2, n = 2, k = 2;
  std::vector<float> a{1, 0, 0, 1};  // identity
  std::vector<float> b{1, 2, 3, 4};
  std::vector<float> c{10, 10, 10, 10};
  gemm(m, n, k, 1.0f, a.data(), k, b.data(), n, 1.0f, c.data(), n);
  EXPECT_FLOAT_EQ(c[0], 11.0f);
  EXPECT_FLOAT_EQ(c[3], 14.0f);
}

TEST(Gemm, CrossVariantConsistencyWithinTolerance) {
  // gemm.h accumulation contract: gemm/gemm_at sum in float, gemm_bt sums
  // each dot product in double and rounds once.  The three variants are
  // therefore NOT bitwise interchangeable — they must only agree to the
  // documented ~1e-4 relative tolerance on the same logical product.
  const int m = 33, n = 29, k = 127;
  Rng rng(20240325);
  const auto a = random_vec(static_cast<std::size_t>(m) * k, rng);   // [M, K]
  const auto b = random_vec(static_cast<std::size_t>(k) * n, rng);   // [K, N]

  // Re-layout A as [K, M] for gemm_at and B as [N, K] for gemm_bt.
  std::vector<float> a_t(a.size()), b_t(b.size());
  for (int i = 0; i < m; ++i)
    for (int kk = 0; kk < k; ++kk) a_t[static_cast<std::size_t>(kk) * m + i] = a[static_cast<std::size_t>(i) * k + kk];
  for (int kk = 0; kk < k; ++kk)
    for (int j = 0; j < n; ++j) b_t[static_cast<std::size_t>(j) * k + kk] = b[static_cast<std::size_t>(kk) * n + j];

  std::vector<float> c_nn(static_cast<std::size_t>(m) * n, 0.0f);
  std::vector<float> c_at = c_nn, c_bt = c_nn;
  gemm(m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, c_nn.data(), n);
  gemm_at(m, n, k, 1.0f, a_t.data(), m, b.data(), n, 0.0f, c_at.data(), n);
  gemm_bt(m, n, k, 1.0f, a.data(), k, b_t.data(), k, 0.0f, c_bt.data(), n);

  for (std::size_t i = 0; i < c_nn.size(); ++i) {
    const float scale = std::max(1.0f, std::abs(c_nn[i]));
    EXPECT_NEAR(c_nn[i], c_at[i], 1e-4f * scale) << "gemm vs gemm_at at " << i;
    EXPECT_NEAR(c_nn[i], c_bt[i], 1e-4f * scale) << "gemm vs gemm_bt at " << i;
  }
}

TEST_P(GemmShapes, BitExactAcrossThreadCounts) {
  // Each variant must produce byte-identical output for any pool size:
  // rows are accumulated independently, so row-block partitioning cannot
  // change any per-element operation order.
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 31 + n * 37 + k * 41));
  const auto a = random_vec(static_cast<std::size_t>(m) * k, rng);
  const auto at = random_vec(static_cast<std::size_t>(k) * m, rng);
  const auto b = random_vec(static_cast<std::size_t>(k) * n, rng);
  const auto bt = random_vec(static_cast<std::size_t>(n) * k, rng);
  const auto c0 = random_vec(static_cast<std::size_t>(m) * n, rng);

  auto run_all = [&](int threads) {
    ThreadCountGuard guard(threads);
    std::vector<float> c_nn = c0, c_at = c0, c_bt = c0;
    gemm(m, n, k, 1.0f, a.data(), k, b.data(), n, 0.5f, c_nn.data(), n);
    gemm_at(m, n, k, 1.0f, at.data(), m, b.data(), n, 0.5f, c_at.data(), n);
    gemm_bt(m, n, k, 1.0f, a.data(), k, bt.data(), k, 0.5f, c_bt.data(), n);
    std::vector<float> all;
    all.insert(all.end(), c_nn.begin(), c_nn.end());
    all.insert(all.end(), c_at.begin(), c_at.end());
    all.insert(all.end(), c_bt.begin(), c_bt.end());
    return all;
  };
  const std::vector<float> serial = run_all(1);
  EXPECT_TRUE(serial == run_all(2)) << "threads=2 diverged";
  EXPECT_TRUE(serial == run_all(8)) << "threads=8 diverged";
}

TEST(Gemm, ZeroWeightsShortCircuitIsExact) {
  // The kernel skips zero A-values; result must equal the reference anyway.
  const int m = 4, n = 4, k = 4;
  Rng rng(7);
  auto a = random_vec(16, rng);
  for (std::size_t i = 0; i < a.size(); i += 2) a[i] = 0.0f;  // half pruned
  const auto b = random_vec(16, rng);
  std::vector<float> c(16, 0.0f), expected(16, 0.0f);
  gemm(m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, c.data(), n);
  ref_gemm(false, false, m, n, k, 1.0f, a, b, 0.0f, expected);
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], expected[i], 1e-5f);
}

}  // namespace
}  // namespace rrp::nn
