#include <gtest/gtest.h>

#include <cmath>

#include "nn/tensor.h"
#include "util/checks.h"

namespace rrp::nn {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.numel(), 0);
  EXPECT_EQ(t.dim(), 0);
}

TEST(Tensor, ConstructionZeroInitializes) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, ConstructionFromValues) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(Tensor, ValueCountMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), PreconditionError);
}

TEST(Tensor, NonPositiveExtentThrows) {
  EXPECT_THROW(Tensor({2, 0}), PreconditionError);
  EXPECT_THROW(Tensor({-1}), PreconditionError);
}

TEST(Tensor, FullFills) {
  const Tensor t = Tensor::full({3}, 2.5f);
  EXPECT_EQ(t[0], 2.5f);
  EXPECT_EQ(t[2], 2.5f);
}

TEST(Tensor, SizeSupportsNegativeIndex) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.size(-1), 4);
  EXPECT_EQ(t.size(-3), 2);
  EXPECT_THROW(t.size(3), PreconditionError);
  EXPECT_THROW(t.size(-4), PreconditionError);
}

TEST(Tensor, FlatIndexBoundsChecked) {
  Tensor t({2});
  EXPECT_THROW(t[2], PreconditionError);
  EXPECT_THROW(t[-1], PreconditionError);
}

TEST(Tensor, MultiIndexRankChecked) {
  Tensor t({2, 2});
  EXPECT_THROW(t.at(0), PreconditionError);
  EXPECT_THROW(t.at(0, 0, 0), PreconditionError);
}

TEST(Tensor, MultiIndex4D) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 9.0f;
  EXPECT_EQ(t[t.numel() - 1], 9.0f);
  EXPECT_THROW(t.at(2, 0, 0, 0), PreconditionError);
}

TEST(Tensor, ReshapePreservesDataAndChecksNumel) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshape({3, 2});
  EXPECT_EQ(r.at(2, 1), 6.0f);
  EXPECT_THROW(t.reshape({4, 2}), PreconditionError);
}

TEST(Tensor, ElementwiseOps) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  a.add_(b);
  EXPECT_EQ(a[1], 22.0f);
  a.sub_(b);
  EXPECT_EQ(a[1], 2.0f);
  a.mul_(2.0f);
  EXPECT_EQ(a[2], 6.0f);
  a.axpy_(0.5f, b);
  EXPECT_EQ(a[0], 2.0f + 5.0f);
}

TEST(Tensor, ElementwiseShapeMismatchThrows) {
  Tensor a({3}), b({4});
  EXPECT_THROW(a.add_(b), PreconditionError);
  EXPECT_THROW(a.sub_(b), PreconditionError);
  EXPECT_THROW(a.axpy_(1.0f, b), PreconditionError);
}

TEST(Tensor, Reductions) {
  Tensor t({4}, {1, -2, 3, -4});
  EXPECT_FLOAT_EQ(t.sum(), -2.0f);
  EXPECT_FLOAT_EQ(t.abs_sum(), 10.0f);
  EXPECT_FLOAT_EQ(t.sq_sum(), 30.0f);
  EXPECT_FLOAT_EQ(t.max_abs(), 4.0f);
}

TEST(Tensor, EqualsIsBitExact) {
  Tensor a({2}, {1.0f, 2.0f});
  Tensor b({2}, {1.0f, 2.0f});
  EXPECT_TRUE(a.equals(b));
  b[1] = std::nextafter(2.0f, 3.0f);
  EXPECT_FALSE(a.equals(b));
  const Tensor c({1, 2}, {1.0f, 2.0f});
  EXPECT_FALSE(a.equals(c));  // shape differs
}

TEST(Tensor, MaxAbsDiff) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {1, 2.5, 2});
  EXPECT_FLOAT_EQ(a.max_abs_diff(b), 1.0f);
  Tensor c({2});
  EXPECT_THROW(a.max_abs_diff(c), PreconditionError);
}

TEST(Tensor, ShapeHelpers) {
  EXPECT_EQ(shape_numel({2, 3, 4}), 24);
  EXPECT_EQ(shape_numel({}), 1);  // scalar
  EXPECT_EQ(shape_str({2, 3}), "[2, 3]");
}

TEST(Tensor, FillOverwritesAll) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  t.fill(0.5f);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 0.5f);
}

}  // namespace
}  // namespace rrp::nn
