#include <gtest/gtest.h>

#include "prune/importance.h"
#include "util/checks.h"
#include "test_support.h"

namespace rrp::prune {
namespace {

TEST(Importance, ElementScoresL1) {
  const nn::Tensor w({4}, {-2, 1, 0, 3});
  const auto s = element_scores(w, ImportanceMetric::L1);
  EXPECT_FLOAT_EQ(s[0], 2.0f);
  EXPECT_FLOAT_EQ(s[1], 1.0f);
  EXPECT_FLOAT_EQ(s[2], 0.0f);
  EXPECT_FLOAT_EQ(s[3], 3.0f);
}

TEST(Importance, ElementScoresL2) {
  const nn::Tensor w({2}, {-2, 3});
  const auto s = element_scores(w, ImportanceMetric::L2);
  EXPECT_FLOAT_EQ(s[0], 4.0f);
  EXPECT_FLOAT_EQ(s[1], 9.0f);
}

TEST(Importance, LinearRowScoresMeanAbs) {
  nn::Linear lin("l", 2, 2);
  lin.weight() = nn::Tensor({2, 2}, {1, 3, -2, -2});
  const auto s = linear_row_scores(lin, ImportanceMetric::L1);
  EXPECT_FLOAT_EQ(s[0], 2.0f);
  EXPECT_FLOAT_EQ(s[1], 2.0f);
}

TEST(Importance, ConvChannelScoresRankFilters) {
  nn::Conv2D conv("c", 1, 2, 2, 1, 0);
  conv.weight().fill(0.0f);
  conv.weight().at(0, 0, 0, 0) = 0.1f;
  conv.weight().at(1, 0, 0, 0) = 5.0f;
  const auto s = conv_channel_scores(conv, ImportanceMetric::L1);
  EXPECT_LT(s[0], s[1]);
}

TEST(Importance, L2RowScoreIsRms) {
  nn::Linear lin("l", 4, 1);
  lin.weight() = nn::Tensor({1, 4}, {1, 1, 1, 1});
  const auto s = linear_row_scores(lin, ImportanceMetric::L2);
  EXPECT_NEAR(s[0], 1.0f, 1e-6f);
}

TEST(Importance, ChannelScoresDispatch) {
  nn::Linear lin("l", 2, 3);
  EXPECT_EQ(channel_scores(lin, ImportanceMetric::L1).size(), 3u);
  nn::Conv2D conv("c", 1, 4, 3, 1, 1);
  EXPECT_EQ(channel_scores(conv, ImportanceMetric::L1).size(), 4u);
  nn::ReLU relu("r");
  EXPECT_THROW(channel_scores(relu, ImportanceMetric::L1), rrp::Error);
}

TEST(Importance, AscendingOrderSortsStably) {
  const auto order = ascending_order({3.0f, 1.0f, 2.0f, 1.0f});
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 1u);  // ties keep original order (stable)
  EXPECT_EQ(order[1], 3u);
  EXPECT_EQ(order[2], 2u);
  EXPECT_EQ(order[3], 0u);
}

TEST(Importance, MetricNames) {
  EXPECT_STREQ(importance_metric_name(ImportanceMetric::L1), "L1");
  EXPECT_STREQ(importance_metric_name(ImportanceMetric::L2), "L2");
}

}  // namespace
}  // namespace rrp::prune
