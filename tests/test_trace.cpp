// test_trace.cpp — deterministic span tracer unit tests (util/trace.h).
//
// The tracer's contract is that its output is a pure function of the
// instrumented code path: timestamps are event-sequence ticks, spans are
// suppressed inside pool parallel regions, and wall-clock capture is an
// explicit opt-in that forfeits byte-identity.  These tests pin each of
// those properties in isolation; the cross-thread byte-identity of whole
// runs is covered by test_observability_parity.cpp.
#include <gtest/gtest.h>

#include <string>

#include "util/thread_pool.h"
#include "util/trace.h"

namespace rrp::trace {
namespace {

/// Arms a clean tracer for one test and disarms it after.
struct TraceGuard {
  TraceGuard() {
    set_enabled(false);
    reset();
    set_enabled(true);
  }
  ~TraceGuard() {
    set_enabled(false);
    set_wall_clock(false);
    reset();
  }
};

TEST(Trace, DisabledTracerRecordsNothing) {
  set_enabled(false);
  reset();
  {
    RRP_SPAN("off");
  }
  EXPECT_TRUE(spans().empty());
  EXPECT_EQ(dropped_spans(), 0);
}

TEST(Trace, NestedSpansGetDepthAndSequentialTicks) {
  TraceGuard g;
  {
    RRP_SPAN("outer");
    {
      RRP_SPAN("inner");
    }
  }
  ASSERT_EQ(spans().size(), 2u);
  const SpanRecord& outer = spans()[0];  // records in begin order
  const SpanRecord& inner = spans()[1];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(inner.depth, 1);
  // Each begin/end consumes one tick: outer opens at 0, inner spans
  // [1, 2], outer closes at 3.  No wall clock anywhere.
  EXPECT_EQ(outer.begin_seq, 0);
  EXPECT_EQ(inner.begin_seq, 1);
  EXPECT_EQ(inner.end_seq, 2);
  EXPECT_EQ(outer.end_seq, 3);
  EXPECT_EQ(outer.wall_us, 0.0);
}

TEST(Trace, ScopedFrameTagsSpansAndRestores) {
  TraceGuard g;
  EXPECT_EQ(current_frame(), -1);
  {
    ScopedFrame frame(7);
    EXPECT_EQ(current_frame(), 7);
    RRP_SPAN("tagged");
  }
  {
    RRP_SPAN("untagged");
  }
  ASSERT_EQ(spans().size(), 2u);
  EXPECT_EQ(spans()[0].frame, 7);
  EXPECT_EQ(spans()[1].frame, -1);
  EXPECT_EQ(current_frame(), -1);
}

TEST(Trace, ModeledTimeAndItemsAccumulate) {
  TraceGuard g;
  {
    RRP_SPAN_VAR(span, "work");
    span.add_modeled_us(1.5);
    span.add_modeled_us(2.25);
    span.add_items(10);
    span.add_items(5);
  }
  ASSERT_EQ(spans().size(), 1u);
  EXPECT_DOUBLE_EQ(spans()[0].modeled_us, 3.75);
  EXPECT_EQ(spans()[0].items, 15);
}

TEST(Trace, SpansAreSuppressedInsideParallelChunks) {
  // The suppression must be IDENTICAL whether chunks run inline on the
  // caller (pool of 1) or on workers — that is the whole point of
  // in_parallel_region() (DESIGN.md invariant 11).
  for (int threads : {1, 3}) {
    ThreadCountGuard pool(threads);
    TraceGuard g;
    parallel_for(0, 8, 1, [&](std::int64_t, std::int64_t) {
      RRP_SPAN("chunk");  // must not record
      set_frame(42);      // must not stick
    });
    // Only the pool's own top-level fan-out span records.
    ASSERT_EQ(spans().size(), 1u) << "threads=" << threads;
    EXPECT_EQ(spans()[0].name, "pool.parallel_for");
    EXPECT_EQ(spans()[0].items, 8);  // chunk count
    EXPECT_EQ(current_frame(), -1) << "threads=" << threads;
  }
}

TEST(Trace, ResetMidSpanLeavesDanglingSpanInert) {
  TraceGuard g;
  {
    RRP_SPAN_VAR(span, "interrupted");
    reset();                  // generation bump
    span.add_modeled_us(9.9); // must not touch the new epoch
    span.add_items(3);
  }                           // dtor must not write either
  EXPECT_TRUE(spans().empty());
}

TEST(Trace, ChromeTraceExportShape) {
  TraceGuard g;
  {
    ScopedFrame frame(3);
    RRP_SPAN_VAR(span, "say \"hi\"");
    span.add_items(2);
  }
  const std::string json = chrome_trace_string();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"name\":\"say \\\"hi\\\"\""), std::string::npos)
      << "names must be JSON-escaped";
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"frame\":3"), std::string::npos);
  EXPECT_NE(json.find("\"clock\":\"event-sequence\""), std::string::npos);
  // Wall clock is off: the field must be absent entirely.
  EXPECT_EQ(json.find("wall_us"), std::string::npos);
}

TEST(Trace, SpanCsvShapeAndWallClockOptIn) {
  TraceGuard g;
  {
    RRP_SPAN("a");
  }
  const std::string csv = span_csv_string();
  EXPECT_EQ(csv.rfind("id,frame,depth,name,begin_seq,end_seq,modeled_us,items",
                      0),
            0u);
  EXPECT_EQ(csv.find("wall_us"), std::string::npos);

  // Opting into wall capture adds the column (and forfeits byte-identity
  // across runs — which is why it is off by default).
  reset();
  set_wall_clock(true);
  {
    RRP_SPAN("b");
  }
  const std::string wall_csv = span_csv_string();
  EXPECT_NE(wall_csv.find("wall_us"), std::string::npos);
  ASSERT_EQ(spans().size(), 1u);
  EXPECT_GE(spans()[0].wall_us, 0.0);
}

TEST(Trace, SequenceRestartsAfterReset) {
  TraceGuard g;
  {
    RRP_SPAN("first");
  }
  reset();
  {
    RRP_SPAN("second");
  }
  ASSERT_EQ(spans().size(), 1u);
  EXPECT_EQ(spans()[0].name, "second");
  EXPECT_EQ(spans()[0].begin_seq, 0);
  EXPECT_EQ(spans()[0].end_seq, 1);
}

}  // namespace
}  // namespace rrp::trace
