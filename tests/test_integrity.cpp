// test_integrity.cpp — digests, scrub detection parity, and O(Δ) self-heal.
#include <gtest/gtest.h>

#include <cstring>

#include "core/integrity.h"
#include "core/reversible_pruner.h"
#include "test_support.h"
#include "util/checks.h"

namespace rrp::core {
namespace {

using rrp::testing::tiny_conv_net;

class IntegrityFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = tiny_conv_net(31);
    lib_ = prune::PruneLevelLibrary::build_unstructured(net_, {0.0, 0.4, 0.7});
    store_ = WeightStore::snapshot(net_);
  }

  std::vector<float> flat_weights() {
    std::vector<float> out;
    for (const auto& p : net_.params())
      out.insert(out.end(), p.value->data().begin(), p.value->data().end());
    return out;
  }

  nn::Network net_;
  prune::PruneLevelLibrary lib_;
  WeightStore store_;
};

TEST_F(IntegrityFixture, DigestsAreStableAndSensitive) {
  const IntegrityChecker checker(store_);
  for (const std::string& name : store_.param_names()) {
    EXPECT_EQ(checker.digest(name), tensor_digest(store_.get(name)));
  }
  // Any single-bit change to the payload changes the digest.
  nn::Tensor t = store_.get(store_.param_names().front());
  const std::uint64_t before = tensor_digest(t);
  std::uint32_t bits = 0;
  std::memcpy(&bits, t.raw(), sizeof(bits));
  bits ^= 1u;
  std::memcpy(t.raw(), &bits, sizeof(bits));
  EXPECT_NE(tensor_digest(t), before);
}

TEST_F(IntegrityFixture, CleanNetworkScrubsClean) {
  const IntegrityChecker checker(store_);
  for (int level = 0; level < lib_.level_count(); ++level) {
    store_.apply_mask(net_, lib_.mask(level));
    const ScrubReport report = checker.scrub(net_, lib_.mask(level));
    EXPECT_TRUE(report.clean()) << "level " << level;
    EXPECT_EQ(report.elements_checked, store_.total_elements());
  }
}

// Parity sweep: every injected single-bit flip — any parameter, low/high
// bits, kept or pruned element, any level — must be detected (the scrub is
// an exhaustive compare, so this is 100% by construction) and healed back
// to bit-exact weights.
TEST_F(IntegrityFixture, DetectsAndHealsEverySingleBitFlip) {
  const IntegrityChecker checker(store_);
  const int level = 1;
  store_.apply_mask(net_, lib_.mask(level));
  const std::vector<float> golden_masked = flat_weights();

  auto params = net_.params();
  Rng rng(99);
  for (const int bit : {0, 7, 15, 23, 30, 31}) {
    for (std::size_t pi = 0; pi < params.size(); ++pi) {
      nn::Tensor& value = *params[pi].value;
      const std::int64_t element = static_cast<std::int64_t>(
          rng.uniform_u64(static_cast<std::uint64_t>(value.numel())));
      float* slot = value.raw() + element;
      std::uint32_t bits = 0;
      std::memcpy(&bits, slot, sizeof(bits));
      bits ^= (1u << bit);
      std::memcpy(slot, &bits, sizeof(bits));

      const ScrubReport report = checker.scrub(net_, lib_.mask(level));
      ASSERT_EQ(report.findings.size(), 1u)
          << "param " << params[pi].name << " bit " << bit;
      EXPECT_EQ(report.findings[0].param, params[pi].name);
      EXPECT_EQ(report.findings[0].diverged_elements, 1);
      EXPECT_EQ(report.findings[0].first_index, element);
      EXPECT_FALSE(report.findings[0].store_corrupt);

      const RepairReport fix = checker.repair(net_, lib_.mask(level), report);
      EXPECT_EQ(fix.elements_repaired, 1);
      EXPECT_EQ(fix.bytes_written, static_cast<std::int64_t>(sizeof(float)));
      EXPECT_TRUE(fix.fully_repaired());
    }
  }
  // After the whole sweep the weights are bit-exactly the masked golden.
  const std::vector<float> healed = flat_weights();
  ASSERT_EQ(healed.size(), golden_masked.size());
  for (std::size_t i = 0; i < healed.size(); ++i)
    EXPECT_EQ(std::memcmp(&healed[i], &golden_masked[i], sizeof(float)), 0)
        << "element " << i;
}

TEST_F(IntegrityFixture, ScrubAndRepairHealsMultiElementCorruption) {
  const IntegrityChecker checker(store_);
  store_.apply_mask(net_, lib_.mask(2));
  auto params = net_.params();
  // Corrupt several elements across two parameters.
  for (std::int64_t e : {0, 3, 5}) params[0].value->raw()[e] += 1.5f;
  params.back().value->raw()[1] = -42.0f;

  ScrubReport scrub;
  const RepairReport fix = checker.scrub_and_repair(net_, lib_.mask(2), &scrub);
  EXPECT_GE(scrub.diverged_elements(), 3);
  EXPECT_EQ(fix.elements_repaired, scrub.diverged_elements());
  EXPECT_TRUE(fix.fully_repaired());
  EXPECT_TRUE(checker.scrub(net_, lib_.mask(2)).clean());
}

TEST_F(IntegrityFixture, StoreCorruptionIsDetectedButNotLaundered) {
  const IntegrityChecker checker(store_);
  store_.apply_mask(net_, lib_.mask(0));
  const std::string victim = store_.param_names().front();
  store_.flip_bit(victim, 0, 30);

  const ScrubReport report = checker.scrub(net_, lib_.mask(0));
  ASSERT_FALSE(report.clean());
  EXPECT_TRUE(report.store_corrupt());
  bool found = false;
  for (const IntegrityFinding& f : report.findings)
    if (f.param == victim) {
      found = true;
      EXPECT_TRUE(f.store_corrupt);
      // The live copy diverges from the now-corrupt golden at that element.
      EXPECT_EQ(f.diverged_elements, 1);
    }
  EXPECT_TRUE(found);

  // Repair must NOT copy from the corrupt golden: the live value is kept
  // and the parameter is reported unrepairable.
  const float live_before = net_.params()[0].value->raw()[0];
  const RepairReport fix = checker.repair(net_, lib_.mask(0), report);
  EXPECT_FALSE(fix.fully_repaired());
  ASSERT_EQ(fix.unrepairable.size(), 1u);
  EXPECT_EQ(fix.unrepairable[0], victim);
  EXPECT_EQ(net_.params()[0].value->raw()[0], live_before);
}

TEST_F(IntegrityFixture, FlipOnPrunedElementIsDetected) {
  const IntegrityChecker checker(store_);
  const int level = lib_.level_count() - 1;
  const prune::NetworkMask& mask = lib_.mask(level);
  store_.apply_mask(net_, mask);
  // Find a pruned (zeroed) element and flip a bit in it: a stray write to
  // "dead" weights still violates the invariant and must be caught.
  auto params = net_.params();
  for (const auto& p : params) {
    const auto* keep = mask.find(p.name);
    if (keep == nullptr) continue;
    for (std::size_t i = 0; i < keep->size(); ++i) {
      if ((*keep)[i]) continue;
      p.value->raw()[i] = 0.25f;
      const ScrubReport report = checker.scrub(net_, mask);
      ASSERT_EQ(report.findings.size(), 1u);
      EXPECT_EQ(report.findings[0].param, p.name);
      const RepairReport fix = checker.repair(net_, mask, report);
      EXPECT_EQ(fix.elements_repaired, 1);
      EXPECT_EQ(p.value->raw()[i], 0.0f);
      return;
    }
  }
  FAIL() << "level library pruned nothing";
}

TEST_F(IntegrityFixture, IntegratesWithReversiblePruner) {
  ReversiblePruner pruner(net_, lib_);
  const IntegrityChecker checker(pruner.store());
  pruner.set_level(1);
  const prune::NetworkMask& mask = lib_.mask(1);
  EXPECT_TRUE(checker.scrub(pruner.network(), mask).clean());

  // Corrupt the live net through the provider's own network reference.
  pruner.network().params()[0].value->raw()[2] += 1.5f;
  ScrubReport scrub;
  const RepairReport fix =
      checker.scrub_and_repair(pruner.network(), mask, &scrub);
  EXPECT_EQ(scrub.diverged_elements(), 1);
  EXPECT_EQ(fix.elements_repaired, 1);
  // Healed state survives a full prune/restore cycle bit-exactly.
  pruner.set_level(2);
  pruner.restore_full();
  EXPECT_TRUE(checker.scrub(pruner.network(), lib_.mask(0)).clean());
}

TEST_F(IntegrityFixture, StoreFlipBitValidatesArguments) {
  EXPECT_THROW(store_.flip_bit("nope", 0, 0), PreconditionError);
  const std::string name = store_.param_names().front();
  EXPECT_THROW(store_.flip_bit(name, -1, 0), PreconditionError);
  EXPECT_THROW(store_.flip_bit(name, store_.get(name).numel(), 0),
               PreconditionError);
  EXPECT_THROW(store_.flip_bit(name, 0, 32), PreconditionError);
  // A double flip is the identity: bit-exact round trip.
  const float before = store_.get(name).raw()[0];
  store_.flip_bit(name, 0, 13);
  store_.flip_bit(name, 0, 13);
  EXPECT_EQ(std::memcmp(&before, store_.get(name).raw(), sizeof(float)), 0);
}

}  // namespace
}  // namespace rrp::core
