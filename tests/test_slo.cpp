// test_slo.cpp — declarative SLO monitor (core/slo.h): the histogram
// quantile estimator, spec evaluation + latching, note_event capping.
#include <gtest/gtest.h>

#include <cmath>

#include "core/slo.h"
#include "util/metrics.h"

namespace rrp::core {
namespace {

TEST(HistogramQuantile, EmptyHistogramIsZero) {
  metrics::Histogram h({10.0, 20.0, 50.0});
  EXPECT_EQ(histogram_quantile(h, 0.5), 0.0);
  EXPECT_EQ(histogram_quantile(h, 0.99), 0.0);
}

TEST(HistogramQuantile, UpperBoundSemantics) {
  metrics::Histogram h({10.0, 20.0, 50.0});
  // 8 samples land in the <=10 bucket, 2 in the <=20 bucket.
  for (int i = 0; i < 8; ++i) h.observe(5.0);
  h.observe(15.0);
  h.observe(15.0);
  // Median rank 5 of 10 lands in the first bucket: its UPPER bound.
  EXPECT_EQ(histogram_quantile(h, 0.5), 10.0);
  // p90 (rank 9) needs the second bucket.
  EXPECT_EQ(histogram_quantile(h, 0.9), 20.0);
  // q = 1 is the max: still the second bucket's bound.
  EXPECT_EQ(histogram_quantile(h, 1.0), 20.0);
}

TEST(HistogramQuantile, OverflowBucketIsInfinity) {
  metrics::Histogram h({10.0});
  h.observe(5.0);
  h.observe(1e9);  // overflow
  EXPECT_EQ(histogram_quantile(h, 0.5), 10.0);
  EXPECT_TRUE(std::isinf(histogram_quantile(h, 1.0)));
}

TEST(HistogramQuantile, P99NeedsOneInHundredToOverflow) {
  metrics::Histogram h({10.0});
  for (int i = 0; i < 99; ++i) h.observe(1.0);
  h.observe(100.0);
  // rank ceil(0.99 * 100) = 99 is still inside the first bucket.
  EXPECT_EQ(histogram_quantile(h, 0.99), 10.0);
  h.observe(100.0);  // 2 of 101 overflow: rank 100 crosses over
  EXPECT_TRUE(std::isinf(histogram_quantile(h, 0.99)));
}

TEST(SloKindName, CoversEveryKind) {
  EXPECT_STREQ(slo_kind_name(SloKind::RatioMax), "ratio_max");
  EXPECT_STREQ(slo_kind_name(SloKind::HistogramQuantileMax),
               "histogram_quantile_max");
}

// A registry-backed fixture: every test gets a zeroed registry and leaves
// one behind (the test names below are test-only and created serially,
// which the registry allows outside parallel regions).
class SloMonitorTest : public ::testing::Test {
 protected:
  void SetUp() override { metrics::reset_all(); }
  void TearDown() override { metrics::reset_all(); }
};

SloSpec ratio_spec() {
  SloSpec s;
  s.id = "test.slo.miss_rate";
  s.kind = SloKind::RatioMax;
  s.numerator = "test.slo.misses";
  s.denominator = "test.slo.frames";
  s.threshold = 0.10;
  s.min_samples = 10;
  return s;
}

TEST_F(SloMonitorTest, RatioBelowMinSamplesDoesNotEvaluate) {
  SloMonitor monitor({ratio_spec()});
  metrics::counter("test.slo.misses").add(5);
  metrics::counter("test.slo.frames").add(5);  // 100% miss, but < 10 samples
  monitor.evaluate(3);
  EXPECT_FALSE(monitor.any_incident());
}

TEST_F(SloMonitorTest, RatioBreachLatchesOnce) {
  SloMonitor monitor({ratio_spec()});
  metrics::counter("test.slo.misses").add(5);
  metrics::counter("test.slo.frames").add(20);  // 25% > 10%
  monitor.evaluate(7);
  monitor.evaluate(8);
  monitor.evaluate(9);  // stays breached: still ONE incident
  ASSERT_EQ(monitor.incidents().size(), 1u);
  const Incident& inc = monitor.incidents()[0];
  EXPECT_EQ(inc.frame, 7);
  EXPECT_EQ(inc.slo_id, "test.slo.miss_rate");
  EXPECT_NEAR(inc.observed, 0.25, 1e-12);
  EXPECT_EQ(inc.threshold, 0.10);
  EXPECT_NE(inc.detail.find("test.slo.misses"), std::string::npos);
}

TEST_F(SloMonitorTest, RatioWithinThresholdIsQuiet) {
  SloMonitor monitor({ratio_spec()});
  metrics::counter("test.slo.misses").add(1);
  metrics::counter("test.slo.frames").add(50);  // 2% <= 10%
  monitor.evaluate(1);
  EXPECT_FALSE(monitor.any_incident());
}

TEST_F(SloMonitorTest, QuantileSpecFiresOnOverflowTail) {
  SloSpec s;
  s.id = "test.slo.latency_p99";
  s.kind = SloKind::HistogramQuantileMax;
  s.histogram = "test.slo.latency_us";
  s.quantile = 0.99;
  s.threshold = 100.0;
  s.min_samples = 2;
  metrics::Histogram& h =
      metrics::Registry::instance().histogram("test.slo.latency_us",
                                              {10.0, 100.0});
  SloMonitor monitor({s});
  h.observe(5.0);
  monitor.evaluate(1);  // below min_samples
  EXPECT_FALSE(monitor.any_incident());
  h.observe(1e6);  // overflow: p99 becomes +inf > 100
  monitor.evaluate(2);
  ASSERT_EQ(monitor.incidents().size(), 1u);
  EXPECT_EQ(monitor.incidents()[0].frame, 2);
  EXPECT_TRUE(std::isinf(monitor.incidents()[0].observed));
}

TEST_F(SloMonitorTest, ClearUnlatchesSpecs) {
  SloMonitor monitor({ratio_spec()});
  metrics::counter("test.slo.misses").add(5);
  metrics::counter("test.slo.frames").add(20);
  monitor.evaluate(1);
  ASSERT_EQ(monitor.incidents().size(), 1u);
  monitor.clear();
  EXPECT_FALSE(monitor.any_incident());
  monitor.evaluate(2);  // re-fires after clear
  ASSERT_EQ(monitor.incidents().size(), 1u);
  EXPECT_EQ(monitor.incidents()[0].frame, 2);
}

TEST_F(SloMonitorTest, NoteEventsDoNotLatchAndCapAtMax) {
  SloMonitor monitor({});
  monitor.note_event(1, "integrity.detect", 3.0, "weight fault");
  monitor.note_event(1, "integrity.detect", 1.0, "weight fault");
  EXPECT_EQ(monitor.incidents().size(), 2u);  // same id, both kept
  for (std::int64_t f = 2; f < 200; ++f)
    monitor.note_event(f, "integrity.detect", 1.0, "flood");
  EXPECT_EQ(monitor.incidents().size(), SloMonitor::kMaxIncidents);
  EXPECT_EQ(monitor.dropped_incidents(),
            static_cast<std::int64_t>(200 - SloMonitor::kMaxIncidents));
  monitor.clear();
  EXPECT_EQ(monitor.incidents().size(), 0u);
  EXPECT_EQ(monitor.dropped_incidents(), 0);
}

TEST_F(SloMonitorTest, StandardSlosMatchDesignThresholds) {
  const std::vector<SloSpec> v = standard_slos();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0].id, "slo.deadline_miss_rate");
  EXPECT_EQ(v[0].kind, SloKind::RatioMax);
  EXPECT_EQ(v[0].numerator, "runner.deadline_misses");
  EXPECT_EQ(v[0].denominator, "runner.frames");
  EXPECT_EQ(v[0].threshold, 0.05);
  EXPECT_EQ(v[1].id, "slo.recovery_latency_p99_us");
  EXPECT_EQ(v[1].histogram, "prune.switch_us");
  EXPECT_EQ(v[1].threshold, 20000.0);
  EXPECT_EQ(v[2].id, "slo.scrub_detect_latency_p99_frames");
  EXPECT_EQ(v[2].histogram, "integrity.detect_latency_frames");
  EXPECT_EQ(v[2].threshold, 50.0);
}

}  // namespace
}  // namespace rrp::core
