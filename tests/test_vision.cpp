#include <gtest/gtest.h>

#include <cmath>

#include "sim/vision_task.h"
#include "util/checks.h"

namespace rrp::sim {
namespace {

TEST(VisionTask, LabelFollowsDominantActor) {
  Scene s;
  EXPECT_EQ(scene_label(s), kClearLabel);
  s.actors.push_back({ActorType::Cyclist, 12.0, 0.0, 0.0});
  EXPECT_EQ(scene_label(s), static_cast<int>(ActorType::Cyclist));
  s.actors.push_back({ActorType::Pedestrian, 6.0, 0.0, 0.0});
  EXPECT_EQ(scene_label(s), static_cast<int>(ActorType::Pedestrian));
}

TEST(VisionTask, RenderShapeMatchesConfig) {
  VisionTaskConfig cfg;
  Rng rng(1);
  Scene s;
  const nn::Tensor img = render_scene(s, cfg, rng);
  EXPECT_EQ(img.shape(), (nn::Shape{1, cfg.height, cfg.width}));
  EXPECT_EQ(input_shape(cfg), (nn::Shape{1, 1, cfg.height, cfg.width}));
}

TEST(VisionTask, RenderIsDeterministicGivenRngState) {
  VisionTaskConfig cfg;
  Scene s;
  s.actors.push_back({ActorType::Vehicle, 15.0, 3.0, 0.2});
  Rng r1(7), r2(7);
  const nn::Tensor a = render_scene(s, cfg, r1);
  const nn::Tensor b = render_scene(s, cfg, r2);
  EXPECT_TRUE(a.equals(b));
}

TEST(VisionTask, CloserActorsHaveStrongerSignal) {
  VisionTaskConfig cfg;
  cfg.base_noise = 0.0;  // isolate the geometry
  auto energy_at = [&cfg](double distance) {
    Scene s;
    s.actors.push_back({ActorType::Vehicle, distance, 0.0, 0.0});
    Rng rng(3);
    Scene clear;
    Rng rng2(3);
    const nn::Tensor with = render_scene(s, cfg, rng);
    const nn::Tensor without = render_scene(clear, cfg, rng2);
    nn::Tensor diff = with;
    diff.sub_(without);
    return diff.abs_sum();
  };
  EXPECT_GT(energy_at(5.0), energy_at(25.0));
  EXPECT_GT(energy_at(25.0), 0.0f);
}

TEST(VisionTask, LowVisibilityWeakensContrast) {
  VisionTaskConfig cfg;
  cfg.base_noise = 0.0;
  Scene bright, foggy;
  bright.visibility = 1.0;
  foggy.visibility = 0.55;
  bright.actors.push_back({ActorType::Vehicle, 10.0, 0.0, 0.0});
  foggy.actors = bright.actors;
  Rng r1(4), r2(4);
  const nn::Tensor a = render_scene(bright, cfg, r1);
  const nn::Tensor b = render_scene(foggy, cfg, r2);
  EXPECT_GT(a.max_abs(), b.max_abs());
}

TEST(VisionTask, NoiseScalesWithPoorVisibility) {
  VisionTaskConfig cfg;
  cfg.base_noise = 0.2;
  Scene clear_sky, fog;
  clear_sky.visibility = 1.0;
  fog.visibility = 0.5;
  // Measure noise as deviation from the noiseless render.
  VisionTaskConfig quiet = cfg;
  quiet.base_noise = 0.0;
  Rng r0(5);
  const nn::Tensor base = render_scene(clear_sky, quiet, r0);
  auto noise_power = [&](const Scene& s) {
    Rng rng(6);
    nn::Tensor img = render_scene(s, cfg, rng);
    img.sub_(base);
    return img.sq_sum();
  };
  EXPECT_GT(noise_power(fog), noise_power(clear_sky));
}

TEST(VisionTask, DatasetBalancedAcrossClasses) {
  VisionTaskConfig cfg;
  Rng rng(8);
  const nn::Dataset data = make_dataset(2000, cfg, rng);
  EXPECT_EQ(data.size(), 2000u);
  EXPECT_EQ(data.num_classes, kNumClasses);
  std::vector<int> counts(static_cast<std::size_t>(kNumClasses), 0);
  for (int l : data.labels) {
    ASSERT_GE(l, 0);
    ASSERT_LT(l, kNumClasses);
    ++counts[static_cast<std::size_t>(l)];
  }
  for (int c : counts) EXPECT_GT(c, 2000 / kNumClasses / 2);
}

TEST(VisionTask, DatasetDeterministicPerSeed) {
  VisionTaskConfig cfg;
  Rng r1(9), r2(9);
  const nn::Dataset a = make_dataset(50, cfg, r1);
  const nn::Dataset b = make_dataset(50, cfg, r2);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.labels[i], b.labels[i]);
    EXPECT_TRUE(a.inputs[i].equals(b.inputs[i]));
  }
}

TEST(VisionTask, PixelsStayInValidRange) {
  VisionTaskConfig cfg;
  Rng rng(10);
  for (int i = 0; i < 20; ++i) {
    const Scene s = random_scene(cfg, rng);
    const nn::Tensor img = render_scene(s, cfg, rng);
    for (float v : img.data()) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 2.0f);
    }
  }
}

TEST(VisionTask, RejectsTinyFrames) {
  VisionTaskConfig cfg;
  cfg.height = 4;
  Rng rng(11);
  Scene s;
  EXPECT_THROW(render_scene(s, cfg, rng), PreconditionError);
}

}  // namespace
}  // namespace rrp::sim
