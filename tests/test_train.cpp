#include <gtest/gtest.h>

#include <cmath>

#include "nn/train.h"
#include "test_support.h"
#include "util/checks.h"

namespace rrp::nn {
namespace {

using rrp::testing::tiny_conv_net;
using rrp::testing::tiny_dataset;

TEST(Dataset, BatchStacksSamples) {
  const Dataset data = tiny_dataset(10, 1);
  std::vector<std::size_t> order{3, 7, 1};
  std::vector<int> labels;
  const Tensor batch = data.batch(order, 0, 3, &labels);
  EXPECT_EQ(batch.shape(), (Shape{3, 1, 8, 8}));
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0], data.labels[3]);
  EXPECT_EQ(labels[2], data.labels[1]);
  // First sample copied verbatim.
  for (std::int64_t i = 0; i < 64; ++i)
    EXPECT_EQ(batch[i], data.inputs[3][i]);
}

TEST(Dataset, BatchValidatesRange) {
  const Dataset data = tiny_dataset(4, 2);
  std::vector<std::size_t> order{0, 1, 2, 3};
  EXPECT_THROW(data.batch(order, 3, 2, nullptr), PreconditionError);
  EXPECT_THROW(data.batch(order, 0, 0, nullptr), PreconditionError);
}

TEST(Train, LossDecreasesOnSeparableTask) {
  Network net = tiny_conv_net(10);
  const Dataset data = tiny_dataset(200, 11);
  SgdConfig cfg;
  cfg.epochs = 4;
  cfg.lr = 0.05f;
  Rng rng(12);
  const auto history = train_sgd(net, data, cfg, rng);
  ASSERT_EQ(history.size(), 4u);
  EXPECT_LT(history.back().train_loss, history.front().train_loss);
  EXPECT_GT(history.back().train_accuracy, 0.8);
}

TEST(Train, DeterministicForFixedSeed) {
  const Dataset data = tiny_dataset(100, 20);
  Network a = tiny_conv_net(21);
  Network b = tiny_conv_net(21);
  SgdConfig cfg;
  cfg.epochs = 2;
  Rng r1(22), r2(22);
  train_sgd(a, data, cfg, r1);
  train_sgd(b, data, cfg, r2);
  auto pa = a.params();
  auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i)
    EXPECT_TRUE(pa[i].value->equals(*pb[i].value)) << pa[i].name;
}

TEST(Train, FreezeZerosPreservesSparsity) {
  Network net = tiny_conv_net(30);
  // Zero half of fc1's weights.
  auto* fc1 = dynamic_cast<Linear*>(net.find("fc1"));
  ASSERT_NE(fc1, nullptr);
  for (std::int64_t i = 0; i < fc1->weight().numel(); i += 2)
    fc1->weight()[i] = 0.0f;
  const std::int64_t nonzero_before = net.param_nonzero();

  const Dataset data = tiny_dataset(100, 31);
  SgdConfig cfg;
  cfg.epochs = 2;
  cfg.freeze_zeros = true;
  cfg.weight_decay = 0.0f;
  Rng rng(32);
  train_sgd(net, data, cfg, rng);

  for (std::int64_t i = 0; i < fc1->weight().numel(); i += 2)
    EXPECT_EQ(fc1->weight()[i], 0.0f) << "regrew at " << i;
  EXPECT_LE(net.param_nonzero(), nonzero_before);
}

TEST(Train, WithoutFreezeZerosWeightsRegrow) {
  Network net = tiny_conv_net(40);
  auto* fc1 = dynamic_cast<Linear*>(net.find("fc1"));
  // Zero half the weights (keeping the layer alive so gradients flow).
  for (std::int64_t i = 0; i < fc1->weight().numel(); i += 2)
    fc1->weight()[i] = 0.0f;
  const Dataset data = tiny_dataset(100, 41);
  SgdConfig cfg;
  cfg.epochs = 1;
  Rng rng(42);
  train_sgd(net, data, cfg, rng);
  std::int64_t regrown = 0;
  for (std::int64_t i = 0; i < fc1->weight().numel(); i += 2)
    regrown += (fc1->weight()[i] != 0.0f);
  EXPECT_GT(regrown, 0);
}

TEST(Train, EmptyDatasetThrows) {
  Network net = tiny_conv_net(50);
  Dataset empty;
  SgdConfig cfg;
  Rng rng(51);
  EXPECT_THROW(train_sgd(net, empty, cfg, rng), PreconditionError);
}

TEST(Evaluate, AccuracyAndLossAgreeWithTraining) {
  Network net = tiny_conv_net(60);
  const Dataset data = tiny_dataset(200, 61);
  rrp::testing::quick_train(net, data, 4);
  const double acc = evaluate_accuracy(net, data);
  EXPECT_GT(acc, 0.8);
  const double loss = evaluate_loss(net, data);
  EXPECT_LT(loss, 1.0);
  EXPECT_GT(loss, 0.0);
}

TEST(Evaluate, EmptyDatasetIsZero) {
  Network net = tiny_conv_net(70);
  Dataset empty;
  EXPECT_DOUBLE_EQ(evaluate_accuracy(net, empty), 0.0);
  EXPECT_DOUBLE_EQ(evaluate_loss(net, empty), 0.0);
}

TEST(Optimizer, MomentumAcceleratesAlongConstantGradient) {
  // One Linear with constant artificial gradient: with momentum, step
  // sizes must grow across iterations.
  Network net("n");
  auto& lin = net.emplace<Linear>("fc", 1, 1, false);
  lin.weight()[0] = 0.0f;
  SgdConfig cfg;
  cfg.lr = 0.1f;
  cfg.momentum = 0.9f;
  cfg.weight_decay = 0.0f;
  SgdOptimizer opt(net, cfg);

  float prev = 0.0f, prev_step = 0.0f;
  for (int i = 0; i < 3; ++i) {
    net.zero_grad();
    (*net.params()[0].grad)[0] = 1.0f;
    opt.step();
    const float step = std::fabs(lin.weight()[0] - prev);
    if (i > 0) {
      EXPECT_GT(step, prev_step);
    }
    prev_step = step;
    prev = lin.weight()[0];
  }
}

}  // namespace
}  // namespace rrp::nn
