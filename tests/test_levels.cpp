#include <gtest/gtest.h>

#include "prune/levels.h"
#include "test_support.h"
#include "util/checks.h"

namespace rrp::prune {
namespace {

using rrp::testing::tiny_conv_net;
using rrp::testing::tiny_input_shape;
using rrp::testing::tiny_residual_net;

const std::vector<double> kRatios{0.0, 0.25, 0.5, 0.75};

TEST(Levels, UnstructuredLaddersAreNested) {
  nn::Network net = tiny_conv_net(1);
  const auto lib = PruneLevelLibrary::build_unstructured(net, kRatios);
  EXPECT_EQ(lib.level_count(), 4);
  EXPECT_FALSE(lib.structured());
  EXPECT_TRUE(lib.verify_nested());
}

TEST(Levels, StructuredLaddersAreNested) {
  nn::Network net = tiny_conv_net(2);
  const auto lib =
      PruneLevelLibrary::build_structured(net, kRatios, tiny_input_shape());
  EXPECT_TRUE(lib.structured());
  EXPECT_TRUE(lib.verify_nested());
}

TEST(Levels, ResidualStructuredNested) {
  nn::Network net = tiny_residual_net(3);
  const auto lib =
      PruneLevelLibrary::build_structured(net, kRatios, tiny_input_shape());
  EXPECT_TRUE(lib.verify_nested());
}

TEST(Levels, LevelZeroIsEmptyMask) {
  nn::Network net = tiny_conv_net(4);
  const auto lib = PruneLevelLibrary::build_unstructured(net, kRatios);
  EXPECT_EQ(lib.mask(0).pruned_count(), 0);
  EXPECT_EQ(lib.ratio(0), 0.0);
}

TEST(Levels, SparsityIncreasesMonotonically) {
  nn::Network net = tiny_conv_net(5);
  for (bool structured : {false, true}) {
    const auto lib =
        structured ? PruneLevelLibrary::build_structured(net, kRatios,
                                                         tiny_input_shape())
                   : PruneLevelLibrary::build_unstructured(net, kRatios);
    const auto sparsity = lib.achieved_sparsity(net);
    for (std::size_t k = 1; k < sparsity.size(); ++k)
      EXPECT_GT(sparsity[k], sparsity[k - 1]) << "structured=" << structured;
  }
}

TEST(Levels, UnstructuredSparsityTracksRatios) {
  nn::Network net = tiny_conv_net(6);
  const auto lib = PruneLevelLibrary::build_unstructured(net, kRatios);
  const auto sparsity = lib.achieved_sparsity(net);
  for (std::size_t k = 1; k < sparsity.size(); ++k)
    EXPECT_NEAR(sparsity[k], kRatios[k], 0.05);
}

TEST(Levels, ChannelMasksOnlyInStructuredMode) {
  nn::Network net = tiny_conv_net(7);
  const auto ulib = PruneLevelLibrary::build_unstructured(net, kRatios);
  EXPECT_THROW(ulib.channel_masks(1), PreconditionError);
  const auto slib =
      PruneLevelLibrary::build_structured(net, kRatios, tiny_input_shape());
  EXPECT_TRUE(slib.channel_masks(0).empty());
  EXPECT_FALSE(slib.channel_masks(3).empty());
}

TEST(Levels, StructuredChannelMasksAreNestedPerLayer) {
  nn::Network net = tiny_conv_net(8);
  const auto lib =
      PruneLevelLibrary::build_structured(net, kRatios, tiny_input_shape());
  for (int k = 1; k + 1 < lib.level_count(); ++k) {
    for (const auto& cm : lib.channel_masks(k)) {
      const auto* finer = find_channel_mask(lib.channel_masks(k + 1),
                                            cm.layer_name);
      if (finer == nullptr) continue;
      for (std::size_t c = 0; c < cm.keep.size(); ++c)
        if (cm.keep[c] == 0) {
          EXPECT_EQ(finer->keep[c], 0);
        }
    }
  }
}

TEST(Levels, RatioValidation) {
  nn::Network net = tiny_conv_net(9);
  EXPECT_THROW(PruneLevelLibrary::build_unstructured(net, {}),
               PreconditionError);
  EXPECT_THROW(PruneLevelLibrary::build_unstructured(net, {0.1, 0.5}),
               PreconditionError);  // must start at 0
  EXPECT_THROW(PruneLevelLibrary::build_unstructured(net, {0.0, 0.5, 0.5}),
               PreconditionError);  // strictly increasing
  EXPECT_THROW(PruneLevelLibrary::build_unstructured(net, {0.0, 1.0}),
               PreconditionError);  // < 1
}

TEST(Levels, AccessorBounds) {
  nn::Network net = tiny_conv_net(10);
  const auto lib = PruneLevelLibrary::build_unstructured(net, kRatios);
  EXPECT_THROW(lib.mask(-1), PreconditionError);
  EXPECT_THROW(lib.mask(4), PreconditionError);
  EXPECT_THROW(lib.ratio(4), PreconditionError);
}

TEST(Levels, StorageBytesPositiveOnceLeveled) {
  nn::Network net = tiny_conv_net(11);
  const auto lib = PruneLevelLibrary::build_unstructured(net, kRatios);
  EXPECT_GT(lib.storage_bytes(), 0);
}

TEST(Levels, DefaultConstructedIsEmpty) {
  PruneLevelLibrary lib;
  EXPECT_EQ(lib.level_count(), 0);
}

TEST(Levels, MinChannelsRespectedInStructured) {
  nn::Network net = tiny_conv_net(12);
  const auto lib = PruneLevelLibrary::build_structured(
      net, {0.0, 0.9}, tiny_input_shape(), ImportanceMetric::L1,
      /*min_channels=*/3);
  for (const auto& cm : lib.channel_masks(1)) EXPECT_GE(cm.kept_count(), 3u);
}

}  // namespace
}  // namespace rrp::prune
