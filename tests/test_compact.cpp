// Compaction fidelity: the physically shrunk network must be numerically
// equivalent to the masked network — invariant #3 of DESIGN.md.
#include <gtest/gtest.h>

#include "prune/compact.h"
#include "prune/levels.h"
#include "test_support.h"
#include "util/checks.h"

namespace rrp::prune {
namespace {

using rrp::testing::random_tensor;
using rrp::testing::tiny_bn_net;
using rrp::testing::tiny_conv_net;
using rrp::testing::tiny_input_shape;
using rrp::testing::tiny_residual_net;

void randomize(nn::Network& net, std::uint64_t seed) {
  Rng rng(seed);
  for (auto& p : net.params())
    for (float& v : p.value->data())
      v = static_cast<float>(rng.uniform(-1.0, 1.0));
}

void expect_equivalent(nn::Network& original, double ratio,
                       std::uint64_t seed) {
  const auto masks = plan_structured(original, ratio);
  nn::Network masked = original.clone();
  lower_channel_masks(masked, masks, tiny_input_shape()).apply(masked);
  nn::Network compacted =
      compact_network(original, masks, tiny_input_shape());

  const nn::Tensor x = random_tensor({3, 1, 8, 8}, seed);
  const nn::Tensor ym = masked.forward(x, false);
  const nn::Tensor yc = compacted.forward(x, false);
  ASSERT_EQ(ym.shape(), yc.shape());
  EXPECT_LT(ym.max_abs_diff(yc), 1e-4f) << "ratio " << ratio;
  EXPECT_LT(compacted.param_count(), original.param_count());
}

class CompactRatios : public ::testing::TestWithParam<double> {};

TEST_P(CompactRatios, ConvNetEquivalence) {
  nn::Network net = tiny_conv_net(1);
  randomize(net, 2);
  expect_equivalent(net, GetParam(), 3);
}

TEST_P(CompactRatios, BnNetEquivalence) {
  nn::Network net = tiny_bn_net(4);
  randomize(net, 5);
  // Give BN meaningful running stats.
  auto* bn = dynamic_cast<nn::BatchNorm*>(net.find("bn1"));
  for (int c = 0; c < 6; ++c) {
    bn->running_mean()[c] = 0.1f * c;
    bn->running_var()[c] = 1.0f + 0.2f * c;
  }
  expect_equivalent(net, GetParam(), 6);
}

TEST_P(CompactRatios, ResidualNetEquivalence) {
  nn::Network net = tiny_residual_net(7);
  randomize(net, 8);
  expect_equivalent(net, GetParam(), 9);
}

INSTANTIATE_TEST_SUITE_P(Ratios, CompactRatios,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8));

TEST(Compact, NoMasksIsStructuralClone) {
  nn::Network net = tiny_conv_net(10);
  nn::Network c = compact_network(net, {}, tiny_input_shape());
  EXPECT_EQ(c.param_count(), net.param_count());
  const nn::Tensor x = random_tensor({1, 1, 8, 8}, 11);
  EXPECT_TRUE(net.forward(x, false).equals(c.forward(x, false)));
}

TEST(Compact, ShrinksConvAndDownstreamLinear) {
  nn::Network net = tiny_conv_net(12);
  ChannelMask cm{"conv1", {1, 0, 1, 0, 1, 0}};
  nn::Network c = compact_network(net, {cm}, tiny_input_shape());
  auto* conv1 = dynamic_cast<nn::Conv2D*>(c.find("conv1"));
  ASSERT_NE(conv1, nullptr);
  EXPECT_EQ(conv1->out_channels(), 3);
  auto* fc1 = dynamic_cast<nn::Linear*>(c.find("fc1"));
  EXPECT_EQ(fc1->in_features(), 3 * 4 * 4);
}

TEST(Compact, GathersSurvivingWeightsInOrder) {
  nn::Network net("n");
  auto& conv = net.emplace<nn::Conv2D>("c", 1, 3, 1, 1, 0);
  conv.weight() = nn::Tensor({3, 1, 1, 1}, {10, 20, 30});
  conv.bias() = nn::Tensor({3}, {1, 2, 3});
  ChannelMask cm{"c", {1, 0, 1}};
  nn::Network c = compact_network(net, {cm}, {1, 1, 4, 4});
  auto* cc = dynamic_cast<nn::Conv2D*>(c.find("c"));
  EXPECT_FLOAT_EQ(cc->weight()[0], 10.0f);
  EXPECT_FLOAT_EQ(cc->weight()[1], 30.0f);
  EXPECT_FLOAT_EQ(cc->bias()[0], 1.0f);
  EXPECT_FLOAT_EQ(cc->bias()[1], 3.0f);
}

TEST(Compact, ShrinksBatchNorm) {
  nn::Network net = tiny_bn_net(13);
  ChannelMask cm{"conv1", {1, 1, 0, 0, 1, 1}};
  nn::Network c = compact_network(net, {cm}, tiny_input_shape());
  auto* bn = dynamic_cast<nn::BatchNorm*>(c.find("bn1"));
  ASSERT_NE(bn, nullptr);
  EXPECT_EQ(bn->channels(), 4);
}

TEST(Compact, ReducesMacs) {
  nn::Network net = tiny_conv_net(14);
  const auto masks = plan_structured(net, 0.5);
  nn::Network c = compact_network(net, masks, tiny_input_shape());
  EXPECT_LT(c.macs(tiny_input_shape()), net.macs(tiny_input_shape()));
}

TEST(Compact, RejectsPrunedActivationIntoResidual) {
  // Build a net where a PRUNABLE conv feeds a residual block: compaction
  // must refuse (the identity shortcut pins the width).
  nn::Network net("bad");
  net.emplace<nn::Conv2D>("stem", 1, 4, 3, 1, 1);  // prunable (default)
  {
    nn::Network body("b");
    auto& c = body.emplace<nn::Conv2D>("block.conv", 4, 4, 3, 1, 1);
    c.set_out_prunable(false);
    net.add(std::make_unique<nn::Residual>("block", std::move(body)));
  }
  Rng rng(15);
  nn::init_network(net, rng);
  ChannelMask cm{"stem", {1, 0, 1, 1}};
  EXPECT_THROW(compact_network(net, {cm}, {1, 1, 8, 8}), PreconditionError);
}

TEST(Compact, ResidualInternalPruningWorks) {
  nn::Network net = tiny_residual_net(16);
  ChannelMask cm{"block.conv1", {1, 0, 1, 0, 1, 1}};
  nn::Network c = compact_network(net, {cm}, tiny_input_shape());
  auto* conv1 = dynamic_cast<nn::Conv2D*>(c.find("block.conv1"));
  EXPECT_EQ(conv1->out_channels(), 4);
  auto* conv2 = dynamic_cast<nn::Conv2D*>(c.find("block.conv2"));
  EXPECT_EQ(conv2->in_channels(), 4);
  EXPECT_EQ(conv2->out_channels(), 6);  // pinned by the identity add
}

TEST(Compact, LevelLibraryLevelsAllCompact) {
  nn::Network net = tiny_conv_net(17);
  randomize(net, 18);
  const auto lib = PruneLevelLibrary::build_structured(
      net, {0.0, 0.3, 0.6}, tiny_input_shape());
  const nn::Tensor x = random_tensor({2, 1, 8, 8}, 19);
  for (int k = 0; k < lib.level_count(); ++k) {
    nn::Network masked = net.clone();
    lib.mask(k).apply(masked);
    nn::Network compacted =
        compact_network(net, lib.channel_masks(k), tiny_input_shape());
    EXPECT_LT(masked.forward(x, false).max_abs_diff(
                  compacted.forward(x, false)),
              1e-4f)
        << "level " << k;
  }
}

}  // namespace
}  // namespace rrp::prune
