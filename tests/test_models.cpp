#include <gtest/gtest.h>

#include <filesystem>

#include "models/trained_cache.h"

namespace rrp::models {
namespace {

TEST(Zoo, AllModelsBuildAndProduceLogits) {
  Rng rng(1);
  for (ModelKind kind : all_model_kinds()) {
    nn::Network net = build_model(kind, rng);
    const nn::Shape in = zoo_input_shape();
    EXPECT_EQ(net.output_shape(in), (nn::Shape{1, zoo_num_classes()}))
        << model_kind_name(kind);
    nn::Tensor x(in);
    const nn::Tensor y = net.forward(x, false);
    EXPECT_EQ(y.numel(), zoo_num_classes());
  }
}

TEST(Zoo, HeadsArePinned) {
  Rng rng(2);
  for (ModelKind kind : all_model_kinds()) {
    nn::Network net = build_model(kind, rng);
    auto* head = dynamic_cast<nn::Linear*>(net.find("head"));
    ASSERT_NE(head, nullptr) << model_kind_name(kind);
    EXPECT_FALSE(head->out_prunable());
  }
}

TEST(Zoo, ResidualAdjacentConvsArePinned) {
  Rng rng(3);
  nn::Network net = build_model(ModelKind::ResNetLite, rng);
  auto* stem = dynamic_cast<nn::Conv2D*>(net.find("stem"));
  ASSERT_NE(stem, nullptr);
  EXPECT_FALSE(stem->out_prunable());
  auto* c2 = dynamic_cast<nn::Conv2D*>(net.find("block1.conv2"));
  ASSERT_NE(c2, nullptr);
  EXPECT_FALSE(c2->out_prunable());
  auto* c1 = dynamic_cast<nn::Conv2D*>(net.find("block1.conv1"));
  EXPECT_TRUE(c1->out_prunable());
}

TEST(Zoo, MacsOrdering) {
  Rng rng(4);
  const auto in = zoo_input_shape();
  nn::Network mlp = build_model(ModelKind::Mlp, rng);
  nn::Network lenet = build_model(ModelKind::LeNet, rng);
  nn::Network detnet = build_model(ModelKind::DetNet, rng);
  EXPECT_LT(mlp.macs(in), lenet.macs(in));
  EXPECT_LT(lenet.macs(in), detnet.macs(in));
}

TEST(Zoo, KindNamesRoundTrip) {
  EXPECT_STREQ(model_kind_name(ModelKind::Mlp), "mlp");
  EXPECT_STREQ(model_kind_name(ModelKind::DetNet), "detnet");
  EXPECT_EQ(all_model_kinds().size(), 5u);
}

TEST(TrainedCache, DatasetsAreDeterministic) {
  TrainRecipe recipe;
  recipe.train_samples = 40;
  recipe.eval_samples = 20;
  nn::Dataset t1, e1, t2, e2;
  make_datasets(recipe, t1, e1);
  make_datasets(recipe, t2, e2);
  ASSERT_EQ(t1.size(), 40u);
  ASSERT_EQ(e1.size(), 20u);
  EXPECT_TRUE(t1.inputs[7].equals(t2.inputs[7]));
  EXPECT_EQ(e1.labels, e2.labels);
}

TEST(TrainedCache, TrainsThenLoadsIdenticalWeights) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "rrp_cache_test").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  TrainRecipe recipe;
  recipe.train_samples = 300;
  recipe.eval_samples = 100;
  recipe.epochs = 2;

  const TrainedModel first = get_trained(ModelKind::Mlp, recipe, dir);
  EXPECT_GT(first.eval_accuracy, 0.3);  // clearly better than 1/5 chance

  TrainedModel second = get_trained(ModelKind::Mlp, recipe, dir);
  auto pa = const_cast<TrainedModel&>(first).net.params();
  auto pb = second.net.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i)
    EXPECT_TRUE(pa[i].value->equals(*pb[i].value));
  std::filesystem::remove_all(dir);
}

TEST(TrainedCache, ProvisionedModelHasConsistentPieces) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "rrp_prov_test").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  TrainRecipe train_recipe;
  train_recipe.train_samples = 300;
  train_recipe.eval_samples = 100;
  train_recipe.epochs = 2;
  LevelRecipe level_recipe;
  level_recipe.ratios = {0.0, 0.5};
  level_recipe.co_train_epochs = 1;

  ProvisionedModel pm =
      get_provisioned(ModelKind::LeNet, train_recipe, level_recipe, dir);
  EXPECT_EQ(pm.levels.level_count(), 2);
  EXPECT_TRUE(pm.levels.verify_nested());
  EXPECT_EQ(pm.level_accuracy.size(), 2u);
  EXPECT_TRUE(pm.bn_states.empty());  // lenet has no BatchNorm

  // A second call must reuse both caches and yield identical weights + masks.
  ProvisionedModel again =
      get_provisioned(ModelKind::LeNet, train_recipe, level_recipe, dir);
  auto pa = pm.net.params();
  auto pb = again.net.params();
  for (std::size_t i = 0; i < pa.size(); ++i)
    EXPECT_TRUE(pa[i].value->equals(*pb[i].value));
  EXPECT_EQ(pm.levels.mask(1).diff_count(again.levels.mask(1)), 0);
  std::filesystem::remove_all(dir);
}

TEST(TrainedCache, ProvisionedBnModelCarriesBnStates) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "rrp_prov_bn_test").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  TrainRecipe train_recipe;
  train_recipe.train_samples = 300;
  train_recipe.eval_samples = 100;
  train_recipe.epochs = 1;
  LevelRecipe level_recipe;
  level_recipe.ratios = {0.0, 0.5};
  level_recipe.co_train_epochs = 1;

  ProvisionedModel pm = get_provisioned(ModelKind::ResNetLite, train_recipe,
                                        level_recipe, dir);
  EXPECT_EQ(pm.bn_states.size(), 2u);
  auto pruner = pm.make_pruner();
  EXPECT_TRUE(pruner.has_bn_states());
  pruner.set_level(1);
  pruner.set_level(0);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rrp::models
