#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers.h"
#include "test_support.h"
#include "util/checks.h"

namespace rrp::nn {
namespace {

using rrp::testing::random_tensor;

TEST(Linear, KnownForward) {
  Linear lin("l", 2, 2);
  lin.weight() = Tensor({2, 2}, {1, 2, 3, 4});
  lin.bias() = Tensor({2}, {0.5f, -0.5f});
  const Tensor x({1, 2}, {1, 1});
  const Tensor y = lin.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 3.5f);   // 1+2+0.5
  EXPECT_FLOAT_EQ(y.at(0, 1), 6.5f);   // 3+4-0.5
}

TEST(Linear, NoBiasVariant) {
  Linear lin("l", 2, 1, /*with_bias=*/false);
  lin.weight() = Tensor({1, 2}, {2, -1});
  const Tensor y = lin.forward(Tensor({1, 2}, {3, 4}), false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 2.0f);
  EXPECT_EQ(lin.params().size(), 1u);
}

TEST(Linear, BatchedForward) {
  Linear lin("l", 3, 2);
  lin.weight() = random_tensor({2, 3}, 1);
  const Tensor x = random_tensor({4, 3}, 2);
  const Tensor y = lin.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{4, 2}));
  // Row independence: row 0 of batched result == single-row inference.
  Tensor x0({1, 3}, {x[0], x[1], x[2]});
  const Tensor y0 = lin.forward(x0, false);
  EXPECT_NEAR(y.at(0, 0), y0.at(0, 0), 1e-6f);
  EXPECT_NEAR(y.at(0, 1), y0.at(0, 1), 1e-6f);
}

TEST(Linear, ShapeValidation) {
  Linear lin("l", 3, 2);
  EXPECT_THROW(lin.forward(Tensor({1, 4}), false), PreconditionError);
  EXPECT_EQ(lin.output_shape({5, 3}), (Shape{5, 2}));
  EXPECT_EQ(lin.macs({1, 3}), 6);
}

TEST(Linear, EffectiveMacsCountsNonzeros) {
  Linear lin("l", 4, 2);
  lin.weight() = Tensor({2, 4}, {1, 0, 0, 2, 0, 0, 0, 3});
  EXPECT_EQ(lin.effective_macs({1, 4}), 3);
}

TEST(Conv2D, IdentityKernelPassesThrough) {
  Conv2D conv("c", 1, 1, 3, 1, 1);
  conv.weight().fill(0.0f);
  conv.weight().at(0, 0, 1, 1) = 1.0f;  // center tap
  const Tensor x = random_tensor({1, 1, 5, 5}, 3);
  const Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), x.shape());
  EXPECT_NEAR(y.max_abs_diff(x), 0.0f, 1e-6f);
}

TEST(Conv2D, KnownSumKernel) {
  Conv2D conv("c", 1, 1, 2, 1, 0);
  conv.weight().fill(1.0f);
  const Tensor x({1, 1, 2, 2}, {1, 2, 3, 4});
  const Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 10.0f);
}

TEST(Conv2D, StrideAndPaddingGeometry) {
  Conv2D conv("c", 2, 4, 3, 2, 1);
  EXPECT_EQ(conv.output_shape({1, 2, 8, 8}), (Shape{1, 4, 4, 4}));
  EXPECT_EQ(conv.macs({1, 2, 8, 8}), 4LL * 2 * 9 * 4 * 4);
}

TEST(Conv2D, BiasAddsPerChannel) {
  Conv2D conv("c", 1, 2, 1, 1, 0);
  conv.weight().fill(0.0f);
  conv.bias() = Tensor({2}, {1.5f, -2.0f});
  const Tensor y = conv.forward(Tensor({1, 1, 2, 2}), false);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 1.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 1, 1), -2.0f);
}

TEST(Conv2D, RejectsWrongChannelCount) {
  Conv2D conv("c", 3, 4, 3, 1, 1);
  EXPECT_THROW(conv.forward(Tensor({1, 2, 8, 8}), false), PreconditionError);
}

TEST(Conv2D, TooSmallInputThrows) {
  Conv2D conv("c", 1, 1, 5, 1, 0);
  EXPECT_THROW(conv.forward(Tensor({1, 1, 3, 3}), false), PreconditionError);
}

TEST(Conv2D, EffectiveMacsScaleWithSparsity) {
  Conv2D conv("c", 2, 2, 3, 1, 1);
  conv.weight().fill(1.0f);
  const Shape in{1, 2, 8, 8};
  const std::int64_t dense = conv.effective_macs(in);
  EXPECT_EQ(dense, conv.macs(in));
  // Zero one full filter -> half the effective MACs.
  for (int i = 0; i < 2; ++i)
    for (int a = 0; a < 3; ++a)
      for (int b = 0; b < 3; ++b) conv.weight().at(0, i, a, b) = 0.0f;
  EXPECT_EQ(conv.effective_macs(in), dense / 2);
}

TEST(ReLU, ClampsNegatives) {
  ReLU relu("r");
  const Tensor y = relu.forward(Tensor({4}, {-1, 0, 2, -3}), false);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  EXPECT_FLOAT_EQ(y[3], 0.0f);
}

TEST(Softmax, RowsSumToOne) {
  Softmax sm("s");
  const Tensor y = sm.forward(random_tensor({3, 5}, 4).mul_(10.0f), false);
  for (int r = 0; r < 3; ++r) {
    double sum = 0.0;
    for (int c = 0; c < 5; ++c) {
      EXPECT_GT(y.at(r, c), 0.0f);
      sum += y.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  Softmax sm("s");
  const Tensor y = sm.forward(Tensor({1, 2}, {1000.0f, 1000.0f}), false);
  EXPECT_NEAR(y[0], 0.5f, 1e-6f);
  EXPECT_FALSE(std::isnan(y[0]));
}

TEST(Flatten, CollapsesTrailingDims) {
  Flatten f("f");
  const Tensor y = f.forward(random_tensor({2, 3, 4, 5}, 5), false);
  EXPECT_EQ(y.shape(), (Shape{2, 60}));
  EXPECT_EQ(f.output_shape({2, 3, 4, 5}), (Shape{2, 60}));
}

TEST(MaxPool, PicksWindowMaxima) {
  MaxPool mp("m", 2, 2);
  const Tensor x({1, 1, 2, 4}, {1, 5, 2, 0, 3, 4, 8, 1});
  const Tensor y = mp.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  EXPECT_FLOAT_EQ(y[1], 8.0f);
}

TEST(AvgPool, AveragesWindows) {
  AvgPool ap("a", 2, 2);
  const Tensor x({1, 1, 2, 2}, {1, 2, 3, 4});
  const Tensor y = ap.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 2.5f);
}

TEST(GlobalAvgPool, ReducesToChannels) {
  GlobalAvgPool gap("g");
  Tensor x({2, 3, 2, 2});
  x.fill(2.0f);
  const Tensor y = gap.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(y.at(1, 2), 2.0f);
}

TEST(BatchNorm, InferenceUsesRunningStats) {
  BatchNorm bn("b", 2);
  bn.running_mean() = Tensor({2}, {1.0f, 2.0f});
  bn.running_var() = Tensor({2}, {4.0f, 1.0f});
  bn.gamma() = Tensor({2}, {2.0f, 1.0f});
  bn.beta() = Tensor({2}, {0.0f, 10.0f});
  Tensor x({1, 2, 1, 1}, {3.0f, 2.0f});
  const Tensor y = bn.forward(x, false);
  // (3-1)/2 * 2 + 0 = 2 ; (2-2)/1 * 1 + 10 = 10
  EXPECT_NEAR(y[0], 2.0f, 1e-4f);
  EXPECT_NEAR(y[1], 10.0f, 1e-4f);
}

TEST(BatchNorm, TrainingNormalizesBatch) {
  BatchNorm bn("b", 1);
  Tensor x({4, 1}, {1, 2, 3, 4});
  const Tensor y = bn.forward(x, true);
  double mean = 0.0, var = 0.0;
  for (int i = 0; i < 4; ++i) mean += y[i];
  mean /= 4;
  for (int i = 0; i < 4; ++i) var += (y[i] - mean) * (y[i] - mean);
  EXPECT_NEAR(mean, 0.0, 1e-5);
  EXPECT_NEAR(var / 4, 1.0, 1e-3);
}

TEST(BatchNorm, RunningStatsMoveTowardBatch) {
  BatchNorm bn("b", 1, /*momentum=*/0.5f);
  Tensor x({2, 1}, {10.0f, 14.0f});  // mean 12
  bn.forward(x, true);
  EXPECT_NEAR(bn.running_mean()[0], 6.0f, 1e-4f);  // 0.5*0 + 0.5*12
}

TEST(BatchNorm, Supports2DAnd4D) {
  BatchNorm bn("b", 3);
  EXPECT_NO_THROW(bn.forward(Tensor({2, 3}), false));
  EXPECT_NO_THROW(bn.forward(Tensor({2, 3, 4, 4}), false));
  EXPECT_THROW(bn.forward(Tensor({2, 4}), false), PreconditionError);
}

TEST(Layers, CloneIsDeep) {
  Linear lin("l", 2, 2);
  lin.weight().fill(1.0f);
  auto clone = lin.clone();
  lin.weight().fill(2.0f);
  auto* cl = dynamic_cast<Linear*>(clone.get());
  ASSERT_NE(cl, nullptr);
  EXPECT_FLOAT_EQ(cl->weight()[0], 1.0f);
  EXPECT_EQ(cl->name(), "l");
}

TEST(Layers, CloneCarriesPrunableFlag) {
  Conv2D conv("c", 1, 2, 3, 1, 1);
  conv.set_out_prunable(false);
  auto clone = conv.clone();
  EXPECT_FALSE(dynamic_cast<Conv2D*>(clone.get())->out_prunable());
}

TEST(Layers, BackwardWithoutTrainingForwardThrows) {
  Linear lin("l", 2, 2);
  EXPECT_THROW(lin.backward(Tensor({1, 2})), PreconditionError);
  ReLU relu("r");
  EXPECT_THROW(relu.backward(Tensor({1, 2})), PreconditionError);
}

TEST(Layers, SoftmaxHasNoBackward) {
  Softmax sm("s");
  sm.forward(Tensor({1, 2}), true);
  EXPECT_THROW(sm.backward(Tensor({1, 2})), Error);
}

TEST(Layers, KindNamesStable) {
  EXPECT_STREQ(layer_kind_name(LayerKind::Conv2D), "Conv2D");
  EXPECT_STREQ(layer_kind_name(LayerKind::Residual), "Residual");
}

}  // namespace
}  // namespace rrp::nn
