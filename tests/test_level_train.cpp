#include <gtest/gtest.h>

#include "core/level_train.h"
#include "util/checks.h"
#include "core/reversible_pruner.h"
#include "test_support.h"

namespace rrp::core {
namespace {

using rrp::testing::tiny_conv_net;
using rrp::testing::tiny_dataset;
using rrp::testing::tiny_input_shape;

class CoTrainFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = tiny_conv_net(1);
    train_ = tiny_dataset(300, 2);
    eval_ = tiny_dataset(120, 3);
    rrp::testing::quick_train(net_, train_, 3);
    lib_ = prune::PruneLevelLibrary::build_structured(
        net_, {0.0, 0.4, 0.7}, tiny_input_shape());
  }

  std::vector<double> level_accuracy() {
    ReversiblePruner rp(net_, lib_);
    std::vector<double> acc;
    for (int k = 0; k < lib_.level_count(); ++k) {
      rp.set_level(k);
      acc.push_back(nn::evaluate_accuracy(net_, eval_));
    }
    rp.set_level(0);
    return acc;
  }

  nn::Network net_;
  nn::Dataset train_, eval_;
  prune::PruneLevelLibrary lib_;
};

TEST_F(CoTrainFixture, ImprovesPrunedLevelsWithoutWreckingDense) {
  const auto before = level_accuracy();
  CoTrainConfig cfg;
  cfg.epochs = 3;
  Rng rng(4);
  co_train_levels(net_, lib_, train_, eval_, cfg, rng);
  const auto after = level_accuracy();

  // Dense level must stay strong and the deepest pruned level must not be
  // WORSE than before co-training (it usually improves a lot).
  EXPECT_GT(after[0], 0.8);
  EXPECT_GE(after[2] + 0.05, before[2]);
}

TEST_F(CoTrainFixture, ReturnsPerLevelAccuracy) {
  CoTrainConfig cfg;
  cfg.epochs = 1;
  Rng rng(5);
  const CoTrainStats stats =
      co_train_levels(net_, lib_, train_, eval_, cfg, rng);
  ASSERT_EQ(stats.final_level_accuracy.size(), 3u);
  for (double a : stats.final_level_accuracy) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

TEST_F(CoTrainFixture, ZeroEpochsLeavesWeightsUntouched) {
  std::vector<nn::Tensor> before;
  for (auto& p : net_.params()) before.push_back(*p.value);
  CoTrainConfig cfg;
  cfg.epochs = 0;
  Rng rng(6);
  co_train_levels(net_, lib_, train_, eval_, cfg, rng);
  auto after = net_.params();
  for (std::size_t i = 0; i < after.size(); ++i)
    EXPECT_TRUE(after[i].value->equals(before[i]));
}

TEST_F(CoTrainFixture, MaskedElementsSurviveCoTraining) {
  // After co-training, applying the deepest mask then restoring level 0
  // must still be exact — i.e. co-training never bakes masking into the
  // shared weights.
  CoTrainConfig cfg;
  cfg.epochs = 2;
  Rng rng(7);
  co_train_levels(net_, lib_, train_, eval_, cfg, rng);

  std::vector<nn::Tensor> shared;
  for (auto& p : net_.params()) shared.push_back(*p.value);
  ReversiblePruner rp(net_, lib_);
  rp.set_level(2);
  rp.set_level(0);
  auto after = net_.params();
  for (std::size_t i = 0; i < after.size(); ++i)
    EXPECT_TRUE(after[i].value->equals(shared[i]));
}

TEST_F(CoTrainFixture, ValidatesConfig) {
  CoTrainConfig cfg;
  cfg.level0_weight = 1.5;
  Rng rng(8);
  EXPECT_THROW(co_train_levels(net_, lib_, train_, eval_, cfg, rng),
               PreconditionError);
  nn::Dataset empty;
  CoTrainConfig ok;
  EXPECT_THROW(co_train_levels(net_, lib_, empty, eval_, ok, rng),
               PreconditionError);
}

TEST(CoTrainBn, BnStatisticsNotPollutedByMaskedBatches) {
  nn::Network net = rrp::testing::tiny_bn_net(10);
  nn::Dataset train = tiny_dataset(200, 11);
  rrp::testing::quick_train(net, train, 2);
  auto lib = prune::PruneLevelLibrary::build_structured(
      net, {0.0, 0.6}, tiny_input_shape());

  const double dense_before = nn::evaluate_accuracy(net, train);
  CoTrainConfig cfg;
  cfg.epochs = 2;
  Rng rng(12);
  co_train_levels(net, lib, train, nn::Dataset{}, cfg, rng);
  const double dense_after = nn::evaluate_accuracy(net, train);
  EXPECT_GT(dense_after, dense_before - 0.1);
}

}  // namespace
}  // namespace rrp::core
