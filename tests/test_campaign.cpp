// test_campaign.cpp — the Monte-Carlo robustness campaign (sim/campaign.h).
//
// The acceptance properties: (1) the aggregate report is byte-identical at
// RRP_THREADS=1/2/8 and for any fan-out block size; (2) the accumulators
// are fixed-size, so a hundreds-of-cells smoke campaign streams through
// O(block) memory; (3) the worst cell carries enough identity to re-run
// under run_blackbox and replay its incident bundle byte-for-byte.
#include <gtest/gtest.h>

#include <sstream>

#include "core/integrity.h"
#include "core/weight_store.h"
#include "nn/init.h"
#include "sim/campaign.h"
#include "test_support.h"
#include "util/checks.h"
#include "util/thread_pool.h"

namespace rrp::sim {
namespace {

// Same closed-loop fixture as test_faults / test_incident_replay: a
// briefly-trained conv net on the vision task's geometry, 3-level ladder.
class CampaignFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = nn::Network("campaign-net");
    net_.emplace<nn::Conv2D>("conv1", 1, 6, 3, 1, 1);
    net_.emplace<nn::ReLU>("relu1");
    net_.emplace<nn::MaxPool>("pool1", 4, 4);
    net_.emplace<nn::Flatten>("flatten");
    net_.emplace<nn::Linear>("fc1", 6 * 4 * 4, 16);
    net_.emplace<nn::ReLU>("relu2");
    auto& head = net_.emplace<nn::Linear>("head", 16, kNumClasses);
    head.set_out_prunable(false);
    Rng rng(1);
    nn::init_network(net_, rng);

    RunConfig cfg;
    Rng data_rng(2);
    data_ = make_dataset(400, cfg.vision, data_rng);
    rrp::testing::quick_train(net_, data_, 4);

    lib_ = prune::PruneLevelLibrary::build_structured(
        net_, {0.0, 0.3, 0.6}, input_shape(cfg.vision));

    inputs_.net = &net_;
    inputs_.levels = &lib_;
    inputs_.certified.max_level_for = {2, 1, 1, 0};
  }

  CampaignSpec small_spec() const {
    CampaignSpec spec;
    spec.seed = 777;
    spec.frames = 40;
    spec.replicates = 5;
    spec.faults_per_cell = 3;
    spec.scenarios = {builtin_scenario_spec("cut_in"),
                      builtin_scenario_spec("urban")};
    spec.policies = {"greedy", "fixed0"};
    spec.deadline_ms = 5.0;
    spec.scrub_period_frames = 10;
    spec.worst_cells = 3;
    return spec;
  }

  std::string report(const CampaignSpec& spec, const CampaignAggregate& agg) {
    std::ostringstream os;
    write_campaign_report(spec, agg, os);
    return os.str();
  }

  nn::Network net_;
  nn::Dataset data_;
  prune::PruneLevelLibrary lib_;
  CampaignInputs inputs_;
};

TEST(CampaignCellDecode, IndexMapsToScenarioPolicyReplicate) {
  CampaignSpec spec;
  spec.seed = 100;
  spec.replicates = 3;
  spec.scenarios = {builtin_scenario_spec("cut_in"),
                    builtin_scenario_spec("urban")};
  spec.policies = {"greedy", "fixed1"};
  ASSERT_EQ(campaign_cell_count(spec), 12);

  const std::string cut_in = encode_scenario_spec(spec.scenarios[0]);
  const std::string urban = encode_scenario_spec(spec.scenarios[1]);
  EXPECT_EQ(campaign_cell(spec, 0).scenario, cut_in);
  EXPECT_EQ(campaign_cell(spec, 0).policy, "greedy");
  EXPECT_EQ(campaign_cell(spec, 5).scenario, cut_in);
  EXPECT_EQ(campaign_cell(spec, 5).policy, "fixed1");
  EXPECT_EQ(campaign_cell(spec, 6).scenario, urban);
  EXPECT_EQ(campaign_cell(spec, 6).policy, "greedy");
  EXPECT_EQ(campaign_cell(spec, 11).scenario, urban);
  EXPECT_EQ(campaign_cell(spec, 11).policy, "fixed1");

  // Every cell gets distinct, decoupled seed streams.
  for (std::int64_t i = 0; i < 12; ++i) {
    const CampaignCell a = campaign_cell(spec, i);
    EXPECT_EQ(a.index, i);
    EXPECT_NE(a.scenario_seed, a.noise_seed);
    EXPECT_NE(a.scenario_seed, a.fault_seed);
    for (std::int64_t j = i + 1; j < 12; ++j)
      EXPECT_NE(a.scenario_seed, campaign_cell(spec, j).scenario_seed);
  }
  EXPECT_THROW(campaign_cell(spec, 12), PreconditionError);
}

TEST(CampaignWorstOrder, SeverityIsLexicographicWithIndexTieBreak) {
  CampaignWorstCell a, b;
  a.cell.index = 4;
  b.cell.index = 9;
  EXPECT_TRUE(worse_cell(a, b));  // equal severity: lower index wins
  b.missed_critical = 1;
  EXPECT_TRUE(worse_cell(b, a));
  a.missed_critical = 1;
  a.min_slack_ms = -2.0;
  b.min_slack_ms = 1.0;
  EXPECT_TRUE(worse_cell(a, b));
  b.true_violations = 2;
  EXPECT_TRUE(worse_cell(b, a));  // higher field dominates lower ones
}

TEST_F(CampaignFixture, ReportIsByteIdenticalAcrossThreadsAndBlockSizes) {
  const CampaignSpec spec = small_spec();
  ASSERT_EQ(campaign_cell_count(spec), 20);

  std::string reference;
  {
    ThreadCountGuard guard(1);
    reference = report(spec, run_campaign(spec, inputs_));
  }
  for (int threads : {2, 8}) {
    ThreadCountGuard guard(threads);
    EXPECT_EQ(report(spec, run_campaign(spec, inputs_)), reference)
        << "threads=" << threads;
  }
  {
    // The fan-out block bounds memory; it must not leak into the bytes.
    ThreadCountGuard guard(8);
    CampaignSpec blocked = spec;
    blocked.block_cells = 3;
    EXPECT_EQ(report(blocked, run_campaign(blocked, inputs_)), reference);
  }
  // The campaign never mutates the caller's network (cells run on clones).
  const core::WeightStore after = core::WeightStore::snapshot(net_);
  const core::IntegrityChecker checker(after);
  EXPECT_TRUE(checker.scrub(net_, lib_.mask(0)).clean());
}

TEST_F(CampaignFixture, SmokeCampaignStreamsHundredsOfCells) {
  CampaignSpec spec = small_spec();
  spec.frames = 25;
  spec.replicates = 60;  // 2 scenarios x 2 policies x 60 = 240 cells
  spec.block_cells = 16;
  const std::int64_t cells = campaign_cell_count(spec);
  ASSERT_EQ(cells, 240);

  const CampaignAggregate agg = run_campaign(spec, inputs_);
  EXPECT_EQ(agg.cells, cells);
  EXPECT_EQ(agg.frames, cells * spec.frames);
  // Streaming accumulators saw every observation...
  EXPECT_EQ(agg.deadline_slack_ms.count(), agg.frames);
  EXPECT_EQ(agg.missed_critical_rate.count(), agg.cells);
  // ...in fixed-size state: sketch size is set at construction, the worst
  // list is bounded by K — nothing here grows with the cell count.
  EXPECT_EQ(agg.deadline_slack_ms.bucket_count(),
            QuantileSketch(agg.deadline_slack_ms.config()).bucket_count());
  ASSERT_LE(agg.worst.size(), static_cast<std::size_t>(spec.worst_cells));
  ASSERT_FALSE(agg.worst.empty());
  for (std::size_t i = 1; i < agg.worst.size(); ++i)
    EXPECT_FALSE(worse_cell(agg.worst[i], agg.worst[i - 1]));
  // Fault plans were drawn per cell; most weight faults should be seen.
  EXPECT_GT(agg.weight_faults_injected, 0);
  EXPECT_GE(agg.weight_faults_injected, agg.weight_faults_detected);
}

TEST_F(CampaignFixture, WorstCellReplaysThroughBlackboxByteIdentically) {
  const CampaignSpec spec = small_spec();
  CampaignAggregate agg;
  {
    ThreadCountGuard guard(8);
    agg = run_campaign(spec, inputs_);
  }
  ASSERT_FALSE(agg.worst.empty());
  const CampaignWorstCell& worst = agg.worst.front();

  // Re-run the worst cell serially under the blackbox recorder.  The
  // recorder is pure bookkeeping, so the re-run's telemetry must reproduce
  // the exact severity the campaign attributed to the cell.
  const BlackboxRunSpec bspec =
      blackbox_spec_for_cell(spec, worst.cell, "campaign-net");
  EXPECT_TRUE(is_dsl_suite(bspec.suite));
  const BlackboxRunResult res = run_blackbox(bspec, inputs_);

  std::int64_t missed = 0, misses = 0;
  double min_slack = spec.deadline_ms;
  for (const core::FrameRecord& r : res.run.telemetry.records()) {
    const double slack = r.deadline_ms - (r.latency_ms + r.switch_us * 1e-3);
    if (slack < min_slack) min_slack = slack;
    if (r.latency_ms + r.switch_us * 1e-3 > r.deadline_ms) ++misses;
    if (r.criticality >= core::CriticalityClass::High && !r.correct) ++missed;
  }
  EXPECT_EQ(missed, worst.missed_critical);
  EXPECT_EQ(misses, worst.deadline_misses);
  EXPECT_EQ(min_slack, worst.min_slack_ms);

  // And the packed bundle replays byte-for-byte at another thread count —
  // the campaign-to-flight-recorder chain is closed.
  ThreadCountGuard guard(2);
  const ReplayResult replay = replay_bundle(res.bundle, inputs_);
  EXPECT_TRUE(replay.match);
  EXPECT_TRUE(replay.records_match);
  EXPECT_TRUE(replay.telemetry_match);
}

TEST(CampaignSpecParse, ParsesCommentsKeysPoliciesAndScenarios) {
  std::istringstream in(
      "# campaign spec\n"
      "seed 42\n"
      "frames 120   # inline comment\n"
      "replicates 7\n"
      "faults 2\n"
      "deadline_ms 6.5\n"
      "scrub 15\n"
      "worst 4\n"
      "policy greedy\n"
      "policy fixed1\n"
      "scenario cut_in\n"
      "scenario name=custom ego=20 vis=0.7,0.9 traffic{spawn_prob=0.05}\n");
  const CampaignSpec spec = parse_campaign_spec(in);
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_EQ(spec.frames, 120);
  EXPECT_EQ(spec.replicates, 7);
  EXPECT_EQ(spec.faults_per_cell, 2);
  EXPECT_EQ(spec.deadline_ms, 6.5);
  EXPECT_EQ(spec.scrub_period_frames, 15);
  EXPECT_EQ(spec.worst_cells, 4);
  ASSERT_EQ(spec.policies.size(), 2u);
  EXPECT_EQ(spec.policies[1], "fixed1");
  ASSERT_EQ(spec.scenarios.size(), 2u);
  EXPECT_EQ(spec.scenarios[0].name, "cut_in");
  EXPECT_EQ(spec.scenarios[1].name, "custom");
  EXPECT_EQ(spec.scenarios[1].ego_speed_mps, 20.0);
  EXPECT_EQ(campaign_cell_count(spec), 2 * 2 * 7);
}

TEST(CampaignSpecParse, MalformedSpecsThrowWithLineDiagnostics) {
  const auto parse = [](const std::string& text) {
    std::istringstream in(text);
    return parse_campaign_spec(in);
  };
  EXPECT_THROW(parse(""), SerializationError);  // no scenario
  EXPECT_THROW(parse("scenario cut_in\nframes nope\n"), SerializationError);
  EXPECT_THROW(parse("scenario cut_in\nwarp 9\n"), SerializationError);
  EXPECT_THROW(parse("scenario no_such_scenario\n"), SerializationError);
  EXPECT_THROW(parse("scenario cut_in\npolicy warp\n"), SerializationError);
  EXPECT_THROW(parse("scenario cut_in\nframes 0\n"), SerializationError);
  EXPECT_THROW(parse("scenario cut_in\nseed\n"), SerializationError);
  try {
    parse("scenario cut_in\nwarp 9\n");
    FAIL() << "expected SerializationError";
  } catch (const SerializationError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(CampaignFaultTails, FoldsOutcomesIntoPerProviderSketches) {
  FaultCampaignResult result;
  result.summaries = {{"reversible", {}}, {"reload-memory", {}}};
  const auto outcome = [](const char* provider, FaultKind kind, bool applied,
                          std::int64_t latency, const char* mechanism,
                          double ms, bool healed) {
    FaultOutcome o;
    o.provider = provider;
    o.kind = kind;
    o.applied = applied;
    o.detect_latency_frames = latency;
    o.recovery_mechanism = mechanism;
    o.recovery_modeled_ms = ms;
    o.recovery_bytes = 64;
    o.healed = healed;
    return o;
  };
  // Summaries carry ARM names ("reversible") but outcomes carry the
  // provider's self-reported name ("reversible-masked"); the fold must
  // still attribute these rows to the "reversible" stats bucket.
  result.outcomes = {
      outcome("reversible-masked", FaultKind::WeightBitFlip, true, 4,
              "self-heal", 0.5, true),
      outcome("reversible-masked", FaultKind::WeightBitFlip, true, 12,
              "self-heal", 0.75, true),
      outcome("reversible-masked", FaultKind::StoreBitFlip, true, -1, "", 0.0,
              false),                // injected, never detected
      outcome("reversible-masked", FaultKind::SensorBlackout, true, -1, "",
              0.0, false),          // not a weight fault: ignored by tails
      outcome("reversible-masked", FaultKind::WeightBitFlip, false, -1, "",
              0.0, false),          // not applied: ignored
      outcome("reload-memory", FaultKind::WeightBitFlip, true, 8, "reload",
              3.0, true),
  };

  const std::vector<FaultTailStats> stats = fold_fault_outcomes(result);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].provider, "reversible");
  EXPECT_EQ(stats[0].injected, 3);
  EXPECT_EQ(stats[0].detected, 2);
  EXPECT_EQ(stats[0].healed, 2);
  EXPECT_EQ(stats[0].detect_latency_frames.count(), 2);
  EXPECT_EQ(stats[0].detect_latency_frames.min(), 4.0);
  EXPECT_EQ(stats[0].detect_latency_frames.max(), 12.0);
  EXPECT_EQ(stats[0].recovery_ms.count(), 2);
  EXPECT_EQ(stats[1].provider, "reload-memory");
  EXPECT_EQ(stats[1].injected, 1);
  EXPECT_EQ(stats[1].recovery_ms.max(), 3.0);

  std::ostringstream os;
  write_fault_tail_stats(stats, os);
  EXPECT_NE(os.str().find("reversible"), std::string::npos);
  EXPECT_NE(os.str().find("p99"), std::string::npos);
}

}  // namespace
}  // namespace rrp::sim
