#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "sim/criticality.h"
#include "sim/suites.h"
#include "sim/trace_io.h"
#include "util/checks.h"

namespace rrp::sim {
namespace {

void expect_same(const Scenario& a, const Scenario& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_NEAR(a.dt_s, b.dt_s, 1e-9);
  ASSERT_EQ(a.scenes.size(), b.scenes.size());
  for (std::size_t f = 0; f < a.scenes.size(); ++f) {
    const Scene& x = a.scenes[f];
    const Scene& y = b.scenes[f];
    EXPECT_NEAR(x.ego_speed_mps, y.ego_speed_mps, 1e-5) << f;
    EXPECT_NEAR(x.visibility, y.visibility, 1e-5) << f;
    ASSERT_EQ(x.actors.size(), y.actors.size()) << f;
    for (std::size_t i = 0; i < x.actors.size(); ++i) {
      EXPECT_EQ(x.actors[i].type, y.actors[i].type);
      EXPECT_NEAR(x.actors[i].distance_m, y.actors[i].distance_m, 1e-5);
      EXPECT_NEAR(x.actors[i].closing_mps, y.actors[i].closing_mps, 1e-5);
      EXPECT_NEAR(x.actors[i].lateral_m, y.actors[i].lateral_m, 1e-5);
    }
  }
}

TEST(TraceIo, RoundTripCutIn) {
  const Scenario sc = make_cut_in(240, 7);
  std::ostringstream os;
  write_scenario_csv(sc, os);
  std::istringstream is(os.str());
  expect_same(sc, read_scenario_csv(is));
}

TEST(TraceIo, RoundTripPreservesCriticalityTrace) {
  const Scenario sc = make_urban(300, 9);
  std::ostringstream os;
  write_scenario_csv(sc, os);
  std::istringstream is(os.str());
  const Scenario back = read_scenario_csv(is);
  const auto t1 = criticality_trace(sc);
  const auto t2 = criticality_trace(back);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) EXPECT_EQ(t1[i], t2[i]) << i;
}

TEST(TraceIo, EmptyFramesSurvive) {
  Scenario sc;
  sc.name = "sparse";
  sc.scenes.resize(3);
  sc.scenes[1].actors.push_back({ActorType::Obstacle, 12.0, 1.0, 0.3});
  std::ostringstream os;
  write_scenario_csv(sc, os);
  std::istringstream is(os.str());
  const Scenario back = read_scenario_csv(is);
  ASSERT_EQ(back.scenes.size(), 3u);
  EXPECT_TRUE(back.scenes[0].actors.empty());
  ASSERT_EQ(back.scenes[1].actors.size(), 1u);
  EXPECT_EQ(back.scenes[1].actors[0].type, ActorType::Obstacle);
}

TEST(TraceIo, FileRoundTrip) {
  const Scenario sc = make_intersection(120, 3);
  const std::string path =
      (std::filesystem::temp_directory_path() / "rrp_trace.csv").string();
  save_scenario_csv(sc, path);
  expect_same(sc, load_scenario_csv(path));
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsMalformedInput) {
  {
    std::istringstream is("");
    EXPECT_THROW(read_scenario_csv(is), SerializationError);
  }
  {
    std::istringstream is("garbage header\n1,2,3\n");
    EXPECT_THROW(read_scenario_csv(is), SerializationError);
  }
  {
    // Valid header but a row with the wrong arity.
    std::ostringstream os;
    write_scenario_csv(make_cut_in(5, 1), os);
    std::string text = os.str() + "9,1,2\n";
    std::istringstream is(text);
    EXPECT_THROW(read_scenario_csv(is), SerializationError);
  }
  {
    // Gap in the frame sequence.
    std::ostringstream os;
    write_scenario_csv(make_cut_in(3, 1), os);
    std::string text = os.str() + "7,0.1,25,0.9,none,0,0,0\n";
    std::istringstream is(text);
    EXPECT_THROW(read_scenario_csv(is), SerializationError);
  }
  {
    std::istringstream is("x");
    EXPECT_THROW(read_scenario_csv(is), SerializationError);
  }
  EXPECT_THROW(load_scenario_csv("/nonexistent/trace.csv"),
               SerializationError);
}

TEST(TraceIo, UnknownActorTypeRejected) {
  std::ostringstream os;
  write_scenario_csv(make_cut_in(2, 1), os);
  std::string text = os.str();
  std::string row = "2,0.06,25,0.9,unicorn,10,1,0\n";
  std::istringstream is(text + row);
  EXPECT_THROW(read_scenario_csv(is), SerializationError);
}

}  // namespace
}  // namespace rrp::sim
