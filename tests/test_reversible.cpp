// The core property tests: exact reversibility, O(Δ) transitions, nesting.
#include <gtest/gtest.h>

#include "core/reversible_pruner.h"
#include "test_support.h"
#include "util/checks.h"

namespace rrp::core {
namespace {

using rrp::testing::random_tensor;
using rrp::testing::tiny_bn_net;
using rrp::testing::tiny_conv_net;
using rrp::testing::tiny_input_shape;
using rrp::testing::tiny_residual_net;

const std::vector<double> kRatios{0.0, 0.25, 0.5, 0.75};

prune::PruneLevelLibrary structured_lib(nn::Network& net) {
  return prune::PruneLevelLibrary::build_structured(net, kRatios,
                                                    tiny_input_shape());
}

TEST(ReversiblePruner, StartsAtLevelZeroUnchanged) {
  nn::Network net = tiny_conv_net(1);
  std::vector<nn::Tensor> golden;
  for (auto& p : net.params()) golden.push_back(*p.value);
  ReversiblePruner rp(net, structured_lib(net));
  EXPECT_EQ(rp.current_level(), 0);
  auto after = net.params();
  for (std::size_t i = 0; i < after.size(); ++i)
    EXPECT_TRUE(after[i].value->equals(golden[i]));
}

TEST(ReversiblePruner, RestoreIsBitExactAfterAnyWalk) {
  nn::Network net = tiny_conv_net(2);
  std::vector<nn::Tensor> golden;
  for (auto& p : net.params()) golden.push_back(*p.value);
  const nn::Tensor x = random_tensor({2, 1, 8, 8}, 3);
  const nn::Tensor y0 = net.forward(x, false);

  ReversiblePruner rp(net, structured_lib(net));
  Rng rng(4);
  for (int step = 0; step < 50; ++step)
    rp.set_level(rng.uniform_int(0, rp.level_count() - 1));
  rp.restore_full();

  auto after = net.params();
  for (std::size_t i = 0; i < after.size(); ++i)
    EXPECT_TRUE(after[i].value->equals(golden[i])) << after[i].name;
  EXPECT_TRUE(net.forward(x, false).equals(y0));
}

TEST(ReversiblePruner, LevelOutputsAreDeterministicAcrossRevisits) {
  nn::Network net = tiny_conv_net(5);
  ReversiblePruner rp(net, structured_lib(net));
  const nn::Tensor x = random_tensor({1, 1, 8, 8}, 6);

  std::vector<nn::Tensor> first;
  for (int k = 0; k < rp.level_count(); ++k) {
    rp.set_level(k);
    first.push_back(rp.infer(x));
  }
  // Revisit in a scrambled order: outputs must be identical.
  for (int k : {2, 0, 3, 1, 3, 0}) {
    rp.set_level(k);
    EXPECT_TRUE(rp.infer(x).equals(first[static_cast<std::size_t>(k)]))
        << "level " << k;
  }
}

TEST(ReversiblePruner, TransitionTouchesExactlyTheMaskDiff) {
  nn::Network net = tiny_conv_net(7);
  auto lib = structured_lib(net);
  const std::int64_t diff01 = lib.mask(0).diff_count(lib.mask(1));
  const std::int64_t diff13 = lib.mask(1).diff_count(lib.mask(3));
  ReversiblePruner rp(net, std::move(lib));

  EXPECT_EQ(rp.set_level(1).elements_changed, diff01);
  EXPECT_EQ(rp.set_level(3).elements_changed, diff13);
  EXPECT_EQ(rp.set_level(1).elements_changed, diff13);  // restore same set
  EXPECT_EQ(rp.set_level(0).elements_changed, diff01);
}

TEST(ReversiblePruner, NoOpTransitionTouchesNothing) {
  nn::Network net = tiny_conv_net(8);
  ReversiblePruner rp(net, structured_lib(net));
  rp.set_level(2);
  const TransitionStats s = rp.set_level(2);
  EXPECT_EQ(s.elements_changed, 0);
  EXPECT_EQ(s.bytes_written, 0);
}

TEST(ReversiblePruner, RestoreFlagAndHistory) {
  nn::Network net = tiny_conv_net(9);
  ReversiblePruner rp(net, structured_lib(net));
  const auto up = rp.set_level(3);
  EXPECT_FALSE(up.is_restore);
  const auto down = rp.set_level(1);
  EXPECT_TRUE(down.is_restore);
  EXPECT_EQ(rp.history().size(), 2u);
  EXPECT_EQ(rp.history()[1].from_level, 3);
  EXPECT_EQ(rp.history()[1].to_level, 1);
}

// Invariant 14: the transition history is a bounded ring — once full it
// overwrites in place (oldest slot first) instead of reallocating, so
// set_level never allocates on the frame path.
TEST(ReversiblePruner, HistoryRingOverwritesBeyondCapacity) {
  nn::Network net = tiny_conv_net(11);
  ReversiblePruner rp(net, structured_lib(net));
  const std::size_t cap = ReversiblePruner::kHistoryCapacity;
  const TransitionStats* before_data = rp.history().data();

  const std::size_t total = cap + 5;
  for (std::size_t i = 0; i < total; ++i)
    rp.set_level(static_cast<int>(i % 2) + 1);  // 1 <-> 2, every one real

  EXPECT_EQ(rp.history().size(), cap);
  // No reallocation: push_back stopped at the reserved capacity and the
  // ring branch writes in place.
  EXPECT_EQ(rp.history().data(), before_data);
  // Five overwrites happened; the cursor points at the oldest slot.
  EXPECT_EQ(rp.history_ring_next(), 5u);
  // The newest transition sits just behind the cursor.
  const TransitionStats& newest = rp.history()[4];
  EXPECT_EQ(newest.to_level, static_cast<int>((total - 1) % 2) + 1);
  // The ring never corrupted the switching math: restore is still exact.
  rp.set_level(0);
}

TEST(ReversiblePruner, SparsityMatchesLevelMask) {
  nn::Network net = tiny_conv_net(10);
  auto lib = structured_lib(net);
  const auto expected = lib.achieved_sparsity(net);
  ReversiblePruner rp(net, std::move(lib));
  for (int k = 0; k < rp.level_count(); ++k) {
    rp.set_level(k);
    const double live =
        1.0 - static_cast<double>(net.param_nonzero()) / net.param_count();
    // Some golden weights may be exactly zero already; sparsity can only
    // exceed the mask's fraction, never undershoot.
    EXPECT_GE(live + 1e-12, expected[static_cast<std::size_t>(k)]);
  }
}

TEST(ReversiblePruner, ActiveMacsDecreaseWithLevel) {
  nn::Network net = tiny_conv_net(11);
  ReversiblePruner rp(net, structured_lib(net));
  std::int64_t prev = -1;
  for (int k = 0; k < rp.level_count(); ++k) {
    rp.set_level(k);
    const std::int64_t macs = rp.active_macs(tiny_input_shape());
    if (k > 0) {
      EXPECT_LT(macs, prev);
    }
    prev = macs;
  }
}

TEST(ReversiblePruner, UnstructuredLibraryWorksToo) {
  nn::Network net = tiny_conv_net(12);
  auto lib = prune::PruneLevelLibrary::build_unstructured(net, kRatios);
  std::vector<nn::Tensor> golden;
  for (auto& p : net.params()) golden.push_back(*p.value);
  ReversiblePruner rp(net, std::move(lib));
  rp.set_level(3);
  rp.set_level(1);
  rp.set_level(2);
  rp.restore_full();
  auto after = net.params();
  for (std::size_t i = 0; i < after.size(); ++i)
    EXPECT_TRUE(after[i].value->equals(golden[i]));
}

TEST(ReversiblePruner, RejectsOutOfRangeLevel) {
  nn::Network net = tiny_conv_net(13);
  ReversiblePruner rp(net, structured_lib(net));
  EXPECT_THROW(rp.set_level(-1), PreconditionError);
  EXPECT_THROW(rp.set_level(4), PreconditionError);
}

TEST(ReversiblePruner, ResidentBytesIncludeStoreAndMasks) {
  nn::Network net = tiny_conv_net(14);
  ReversiblePruner rp(net, structured_lib(net));
  EXPECT_GT(rp.resident_weight_bytes(), 2 * net.param_count() * 4);
}

TEST(ReversiblePruner, BnStatesSwapOnLevelChange) {
  nn::Network net = tiny_bn_net(15);
  auto lib = structured_lib(net);
  const int levels = lib.level_count();
  ReversiblePruner rp(net, std::move(lib));

  std::vector<BnState> states;
  for (int k = 0; k < levels; ++k) {
    BnState s = capture_bn_state(net);
    for (auto& [name, mv] : s.stats) mv.first.fill(static_cast<float>(k));
    states.push_back(std::move(s));
  }
  rp.set_bn_states(states);

  auto* bn = dynamic_cast<nn::BatchNorm*>(net.find("bn1"));
  for (int k : {3, 1, 0, 2}) {
    rp.set_level(k);
    EXPECT_FLOAT_EQ(bn->running_mean()[0], static_cast<float>(k));
  }
}

TEST(ReversiblePruner, BnStatesCountRequired) {
  nn::Network net = tiny_bn_net(16);
  ReversiblePruner rp(net, structured_lib(net));
  EXPECT_THROW(rp.set_bn_states({BnState{}}), PreconditionError);
}

TEST(CompactedLevelCache, SwitchIsPointerSwap) {
  nn::Network net = tiny_conv_net(17);
  const auto lib = structured_lib(net);
  CompactedLevelCache cache(net, lib, tiny_input_shape());
  const auto s = cache.set_level(2);
  EXPECT_EQ(s.elements_changed, 0);
  EXPECT_EQ(s.bytes_written, 0);
  EXPECT_EQ(cache.current_level(), 2);
}

TEST(CompactedLevelCache, MatchesMaskedOutputs) {
  nn::Network net = tiny_conv_net(18);
  auto lib = structured_lib(net);
  CompactedLevelCache cache(net, lib, tiny_input_shape());
  ReversiblePruner rp(net, std::move(lib));
  const nn::Tensor x = random_tensor({2, 1, 8, 8}, 19);
  for (int k = 0; k < rp.level_count(); ++k) {
    rp.set_level(k);
    cache.set_level(k);
    EXPECT_LT(rp.infer(x).max_abs_diff(cache.infer(x)), 1e-4f) << k;
  }
}

TEST(CompactedLevelCache, MacsShrinkPhysically) {
  nn::Network net = tiny_conv_net(20);
  const auto lib = structured_lib(net);
  CompactedLevelCache cache(net, lib, tiny_input_shape());
  std::int64_t prev = -1;
  for (int k = 0; k < cache.level_count(); ++k) {
    cache.set_level(k);
    const std::int64_t macs = cache.active_macs(tiny_input_shape());
    if (k > 0) {
      EXPECT_LT(macs, prev);
    }
    prev = macs;
  }
}

TEST(CompactedLevelCache, RequiresStructuredLibrary) {
  nn::Network net = tiny_conv_net(21);
  const auto lib = prune::PruneLevelLibrary::build_unstructured(net, kRatios);
  EXPECT_THROW(CompactedLevelCache(net, lib, tiny_input_shape()),
               PreconditionError);
}

TEST(CompactedLevelCache, ResidentBytesSumAllLevels) {
  nn::Network net = tiny_conv_net(22);
  const auto lib = structured_lib(net);
  CompactedLevelCache cache(net, lib, tiny_input_shape());
  // All levels resident: more than one copy, less than level_count copies.
  const std::int64_t one = net.param_count() * 4;
  EXPECT_GT(cache.resident_weight_bytes(), one);
  EXPECT_LT(cache.resident_weight_bytes(), one * cache.level_count());
}

TEST(ReversiblePruner, ResidualNetworkFullWalk) {
  nn::Network net = tiny_residual_net(23);
  std::vector<nn::Tensor> golden;
  for (auto& p : net.params()) golden.push_back(*p.value);
  ReversiblePruner rp(net, structured_lib(net));
  Rng rng(24);
  for (int i = 0; i < 30; ++i)
    rp.set_level(rng.uniform_int(0, rp.level_count() - 1));
  rp.restore_full();
  auto after = net.params();
  for (std::size_t i = 0; i < after.size(); ++i)
    EXPECT_TRUE(after[i].value->equals(golden[i]));
}

class ReversibleSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReversibleSeedSweep, RandomWalkAlwaysRestores) {
  nn::Network net = tiny_conv_net(GetParam());
  std::vector<nn::Tensor> golden;
  for (auto& p : net.params()) golden.push_back(*p.value);
  ReversiblePruner rp(net, structured_lib(net));
  Rng rng(GetParam() + 1);
  for (int i = 0; i < 25; ++i)
    rp.set_level(rng.uniform_int(0, rp.level_count() - 1));
  rp.set_level(0);
  auto after = net.params();
  for (std::size_t i = 0; i < after.size(); ++i)
    EXPECT_TRUE(after[i].value->equals(golden[i]));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReversibleSeedSweep,
                         ::testing::Values(31ull, 32ull, 33ull, 34ull, 35ull,
                                           36ull));

}  // namespace
}  // namespace rrp::core

namespace rrp::core {
namespace {

using rrp::testing::tiny_conv_net;
using rrp::testing::tiny_input_shape;

TEST(ReversiblePruner, DestructorRestoresTheNetwork) {
  nn::Network net = tiny_conv_net(101);
  std::vector<nn::Tensor> golden;
  for (auto& p : net.params()) golden.push_back(*p.value);
  {
    ReversiblePruner rp(
        net, prune::PruneLevelLibrary::build_structured(
                 net, {0.0, 0.5}, tiny_input_shape()));
    rp.set_level(1);
    // leave it pruned; destruction must clean up
  }
  auto after = net.params();
  for (std::size_t i = 0; i < after.size(); ++i)
    EXPECT_TRUE(after[i].value->equals(golden[i])) << after[i].name;
}

TEST(ReversiblePruner, SequentialProvidersSeeCleanWeights) {
  // Regression: a second provider built from the same network must snapshot
  // the ORIGINAL weights even if the first one is still alive but pruned.
  nn::Network net = tiny_conv_net(102);
  auto lib = prune::PruneLevelLibrary::build_structured(net, {0.0, 0.6},
                                                        tiny_input_shape());
  const nn::Tensor x = rrp::testing::random_tensor({1, 1, 8, 8}, 103);
  nn::Tensor y_clean;
  {
    ReversiblePruner first(net, lib);
    y_clean = first.infer(x);
    first.set_level(1);
  }  // destructor restores
  ReversiblePruner second(net, lib);
  EXPECT_TRUE(second.infer(x).equals(y_clean));
}

TEST(ReversiblePruner, MoveTransfersOwnershipOfRestore) {
  nn::Network net = tiny_conv_net(104);
  std::vector<nn::Tensor> golden;
  for (auto& p : net.params()) golden.push_back(*p.value);
  {
    ReversiblePruner a(net, prune::PruneLevelLibrary::build_structured(
                                net, {0.0, 0.5}, tiny_input_shape()));
    a.set_level(1);
    ReversiblePruner b = std::move(a);
    EXPECT_EQ(b.current_level(), 1);
    // `a`'s destructor (moved-from) must NOT restore; `b`'s must.
  }
  auto after = net.params();
  for (std::size_t i = 0; i < after.size(); ++i)
    EXPECT_TRUE(after[i].value->equals(golden[i]));
}

}  // namespace
}  // namespace rrp::core
