// Thread-pool unit tests plus the bit-exact thread-count parity suite:
// forward/backward on every layer family and batched evaluation must be
// byte-identical for RRP_THREADS = 1, 2, 8 (DESIGN.md threading contract).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "nn/loss.h"
#include "test_support.h"
#include "util/thread_pool.h"

namespace rrp {
namespace {

using rrp::testing::random_tensor;

// ---------------------------------------------------------------------------
// Pool mechanics.
// ---------------------------------------------------------------------------

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(103, 0);  // chunks are disjoint, so no atomics needed
  pool.parallel_for(0, 103, 7, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) ++hits[static_cast<std::size_t>(i)];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, NonZeroBeginAndOversizedGrain) {
  ThreadPool pool(3);
  std::vector<int> hits(50, 0);
  pool.parallel_for(10, 50, 1000, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) ++hits[static_cast<std::size_t>(i)];
  });
  for (int i = 0; i < 10; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)], 0);
  for (int i = 10; i < 50; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)], 1);
}

TEST(ThreadPool, EmptyRangeRunsNothing) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  pool.parallel_for(5, 3, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ChunkBoundariesIndependentOfThreadCount) {
  // The determinism contract: the chunk set depends only on
  // (begin, end, grain), never on how many workers execute it.
  auto chunk_set = [](int threads) {
    ThreadPool pool(threads);
    std::mutex m;
    std::set<std::pair<std::int64_t, std::int64_t>> chunks;
    pool.parallel_for(3, 97, 11, [&](std::int64_t b, std::int64_t e) {
      std::lock_guard<std::mutex> lock(m);
      chunks.insert({b, e});
    });
    return chunks;
  };
  const auto serial = chunk_set(1);
  EXPECT_EQ(serial, chunk_set(2));
  EXPECT_EQ(serial, chunk_set(8));
  // Chunk k covers [begin + k*grain, min(begin + (k+1)*grain, end)).
  std::set<std::pair<std::int64_t, std::int64_t>> expected;
  for (std::int64_t b = 3; b < 97; b += 11) expected.insert({b, std::min<std::int64_t>(b + 11, 97)});
  EXPECT_EQ(serial, expected);
}

TEST(ThreadPool, SizeOnePoolRunsInlineOnCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  bool inline_run = false;
  pool.parallel_for(0, 10, 1, [&](std::int64_t, std::int64_t) {
    inline_run = (std::this_thread::get_id() == caller);
    EXPECT_FALSE(ThreadPool::in_worker());
  });
  EXPECT_TRUE(inline_run);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 32, 1,
                        [&](std::int64_t b, std::int64_t) {
                          if (b == 13) throw std::runtime_error("chunk 13");
                        }),
      std::runtime_error);
  // The pool must stay usable after a failed job.
  std::atomic<int> ran{0};
  pool.parallel_for(0, 8, 1, [&](std::int64_t, std::int64_t) { ++ran; });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, NestedParallelForRunsSerialInline) {
  ThreadPool pool(4);
  std::vector<int> hits(64, 0);
  pool.parallel_for(0, 8, 1, [&](std::int64_t ob, std::int64_t oe) {
    for (std::int64_t o = ob; o < oe; ++o) {
      // Inside a worker the nested call must not fan out (reentrancy
      // guard), but it still has to cover its whole range.
      pool.parallel_for(0, 8, 1, [&](std::int64_t ib, std::int64_t ie) {
        for (std::int64_t i = ib; i < ie; ++i)
          ++hits[static_cast<std::size_t>(o * 8 + i)];
      });
    }
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ManySmallJobsBackToBack) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<std::int64_t> sum{0};
    pool.parallel_for(0, 17, 3, [&](std::int64_t b, std::int64_t e) {
      std::int64_t local = 0;
      for (std::int64_t i = b; i < e; ++i) local += i;
      sum += local;
    });
    ASSERT_EQ(sum.load(), 17 * 16 / 2);
  }
}

TEST(ThreadPool, ThreadCountGuardRestoresGlobal) {
  const int before = ThreadPool::global_thread_count();
  {
    ThreadCountGuard guard(3);
    EXPECT_EQ(ThreadPool::global_thread_count(), 3);
    EXPECT_EQ(ThreadPool::global().thread_count(), 3);
  }
  EXPECT_EQ(ThreadPool::global_thread_count(), before);
}

TEST(ThreadPool, ThreadCountClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1);
  ThreadPool neg(-4);
  EXPECT_EQ(neg.thread_count(), 1);
}

// ---------------------------------------------------------------------------
// Bit-exact parity: forward/backward must not depend on the thread count.
// ---------------------------------------------------------------------------

struct RunCapture {
  std::vector<float> output;
  std::vector<float> grad_in;
  std::vector<float> param_grads;
};

bool operator==(const RunCapture& a, const RunCapture& b) {
  return a.output == b.output && a.grad_in == b.grad_in &&
         a.param_grads == b.param_grads;
}

/// Builds the net fresh, runs one forward/backward pass under `threads`
/// pool threads, and captures every float the pass produced.
template <typename BuildFn>
RunCapture run_pass(int threads, BuildFn&& build, const nn::Tensor& x,
                    const std::vector<int>& labels) {
  ThreadCountGuard guard(threads);
  nn::Network net = build();
  nn::Tensor y = net.forward(x, /*training=*/true);
  nn::LossResult loss = nn::softmax_cross_entropy(y, labels);
  net.zero_grad();
  nn::Tensor gin = net.backward(loss.grad);

  RunCapture cap;
  cap.output.assign(y.data().begin(), y.data().end());
  cap.grad_in.assign(gin.data().begin(), gin.data().end());
  for (const auto& p : net.params())
    cap.param_grads.insert(cap.param_grads.end(), p.grad->data().begin(),
                           p.grad->data().end());
  return cap;
}

std::vector<int> labels_for(int n, int classes, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<int> out(static_cast<std::size_t>(n));
  for (int& l : out) l = rng.uniform_int(0, classes - 1);
  return out;
}

template <typename BuildFn>
void expect_thread_parity(BuildFn&& build, const nn::Tensor& x, int classes,
                          std::uint64_t label_seed) {
  const std::vector<int> labels = labels_for(x.size(0), classes, label_seed);
  const RunCapture serial = run_pass(1, build, x, labels);
  EXPECT_TRUE(serial == run_pass(2, build, x, labels)) << "threads=2 diverged";
  EXPECT_TRUE(serial == run_pass(8, build, x, labels)) << "threads=8 diverged";
}

TEST(ThreadParity, LinearStack) {
  auto build = [] {
    nn::Network net("n");
    net.emplace<nn::Linear>("fc1", 12, 24);
    net.emplace<nn::ReLU>("r");
    net.emplace<nn::Linear>("fc2", 24, 5);
    Rng rng(41);
    nn::init_network(net, rng);
    return net;
  };
  expect_thread_parity(build, random_tensor({9, 12}, 42), 5, 43);
}

TEST(ThreadParity, ConvNet) {
  auto build = [] {
    nn::Network net("n");
    net.emplace<nn::Conv2D>("c1", 2, 6, 3, 1, 1);
    net.emplace<nn::ReLU>("r1");
    net.emplace<nn::Conv2D>("c2", 6, 4, 3, 2, 0);
    net.emplace<nn::Flatten>("f");
    net.emplace<nn::Linear>("fc", 4 * 3 * 3, 4);
    Rng rng(51);
    nn::init_network(net, rng);
    return net;
  };
  expect_thread_parity(build, random_tensor({5, 2, 8, 8}, 52), 4, 53);
}

TEST(ThreadParity, DepthwiseNet) {
  auto build = [] {
    nn::Network net("n");
    net.emplace<nn::Conv2D>("c", 1, 6, 3, 1, 1);
    net.emplace<nn::ReLU>("r1");
    net.emplace<nn::DepthwiseConv2D>("dw", 6, 3, 1, 1);
    net.emplace<nn::ReLU>("r2");
    net.emplace<nn::Flatten>("f");
    net.emplace<nn::Linear>("fc", 6 * 8 * 8, 3);
    Rng rng(61);
    nn::init_network(net, rng);
    return net;
  };
  expect_thread_parity(build, random_tensor({6, 1, 8, 8}, 62), 3, 63);
}

TEST(ThreadParity, ResidualBnNet) {
  auto build = [] { return rrp::testing::tiny_residual_net(71); };
  expect_thread_parity(build, random_tensor({4, 1, 8, 8}, 72), 3, 73);
}

TEST(ThreadParity, BatchNormNet) {
  auto build = [] { return rrp::testing::tiny_bn_net(81); };
  expect_thread_parity(build, random_tensor({6, 1, 8, 8}, 82), 3, 83);
}

TEST(ThreadParity, BatchedEvaluationMatchesSerial) {
  // Dataset evaluation fans batches out over the pool with per-chunk
  // network clones; accuracy and loss must equal the serial pass exactly.
  const nn::Dataset data = rrp::testing::tiny_dataset(70, 91);
  nn::Network net = rrp::testing::tiny_bn_net(92);
  rrp::testing::quick_train(net, data, /*epochs=*/1, /*seed=*/93);

  double acc1, loss1;
  {
    ThreadCountGuard guard(1);
    acc1 = nn::evaluate_accuracy(net, data, /*batch_size=*/16);
    loss1 = nn::evaluate_loss(net, data, /*batch_size=*/16);
  }
  for (int threads : {2, 8}) {
    ThreadCountGuard guard(threads);
    EXPECT_EQ(acc1, nn::evaluate_accuracy(net, data, 16))
        << "threads=" << threads;
    EXPECT_EQ(loss1, nn::evaluate_loss(net, data, 16))
        << "threads=" << threads;
  }
}

TEST(ThreadParity, TrainingRunMatchesSerial) {
  // A full SGD run (forward + backward + update every step) must produce
  // bit-identical weights regardless of the pool size.
  const nn::Dataset data = rrp::testing::tiny_dataset(48, 95);
  auto train_weights = [&](int threads) {
    ThreadCountGuard guard(threads);
    nn::Network net = rrp::testing::tiny_conv_net(96);
    rrp::testing::quick_train(net, data, /*epochs=*/2, /*seed=*/97);
    std::vector<float> w;
    for (const auto& p : net.params())
      w.insert(w.end(), p.value->data().begin(), p.value->data().end());
    return w;
  };
  const std::vector<float> serial = train_weights(1);
  EXPECT_TRUE(serial == train_weights(2));
  EXPECT_TRUE(serial == train_weights(8));
}

}  // namespace
}  // namespace rrp
