// test_fast_path.cpp — the sparsity-realizing fast path: the
// CompactedLadderProvider (provisioned compacted-network ladder + masked
// golden arm) and the GEMM micro-kernel variants behind nn/gemm.cpp.
//
// Seeded randomized property sweep in the test_mask_properties.cpp style
// (~100 configurations from one fixed seed, arch x ladder x net seed):
//
//   F1  compacted ≡ masked — at every ladder level the active compacted
//       network's forward matches the masked golden network within the
//       DESIGN.md invariant-13 tolerance, including Residual nets whose
//       identity shortcut pins channel widths;
//   F2  ladder-swap-then-restore round trip — any level walk on the fast
//       path, synced to the masked arm and restored, leaves every golden
//       parameter bit-exact;
//   F3  O(1) level swap — switching levels performs no rebuild and no
//       weight copy on the frame path: rebuild/byte counters stay flat
//       and parameter storage addresses are stable across swaps;
//   F4  kernel variants are bit-identical — reference / blocked / avx2
//       produce byte-equal C for any row partition, and the public gemm
//       entry points are bit-exact across thread counts (1/2/8).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/reversible_pruner.h"
#include "nn/gemm.h"
#include "nn/gemm_kernels.h"
#include "prune/levels.h"
#include "test_support.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace rrp::core {
namespace {

using rrp::testing::random_tensor;
using rrp::testing::tiny_bn_net;
using rrp::testing::tiny_conv_net;
using rrp::testing::tiny_input_shape;
using rrp::testing::tiny_residual_net;

/// One randomly drawn configuration.  The ladder is always structured:
/// the compacted fast path is only defined for channel pruning.
struct Config {
  int net_kind = 0;  // 0 conv, 1 bn, 2 residual
  std::uint64_t net_seed = 0;
  std::vector<double> ratios;
};

Config draw_config(Rng& rng) {
  Config c;
  c.net_kind = rng.uniform_int(0, 2);
  c.net_seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 20));
  // Strictly increasing ladder starting at 0, 2–4 pruned levels, capped
  // below 0.9 so every layer keeps >= 1 channel.
  const int pruned_levels = rng.uniform_int(2, 4);
  double r = 0.0;
  c.ratios.push_back(0.0);
  for (int k = 0; k < pruned_levels; ++k) {
    r += 0.05 + (0.85 - r) * rng.uniform() * 0.45;
    c.ratios.push_back(r);
  }
  return c;
}

nn::Network make_net(const Config& c) {
  switch (c.net_kind) {
    case 0: return tiny_conv_net(c.net_seed);
    case 1: return tiny_bn_net(c.net_seed);
    default: return tiny_residual_net(c.net_seed);
  }
}

std::string describe(const Config& c, int idx) {
  std::string s = "config " + std::to_string(idx) +
                  " kind=" + std::to_string(c.net_kind) +
                  " seed=" + std::to_string(c.net_seed) + " ratios=";
  for (double r : c.ratios) s += std::to_string(r) + ",";
  return s;
}

constexpr int kConfigs = 100;
constexpr std::uint64_t kSweepSeed = 0xFA57FA57ull;

/// Forward-equivalence tolerance of DESIGN.md invariant 13: the compacted
/// gather reorders no surviving arithmetic, so only BN folding noise at
/// the 1e-4 scale is admissible.
constexpr float kEquivTolerance = 1e-4f;

TEST(FastPath, CompactedMatchesMaskedAtEveryLevel) {
  Rng rng(kSweepSeed);
  for (int i = 0; i < kConfigs; ++i) {
    const Config c = draw_config(rng);
    nn::Network net = make_net(c);
    prune::PruneLevelLibrary lib = prune::PruneLevelLibrary::build_structured(
        net, c.ratios, tiny_input_shape());
    std::vector<prune::NetworkMask> masks;
    for (int k = 0; k < lib.level_count(); ++k) masks.push_back(lib.mask(k));

    CompactedLadderProvider fast(net, std::move(lib), tiny_input_shape());
    const nn::Tensor x = random_tensor({2, 1, 8, 8}, c.net_seed + 1);
    for (int k = 0; k < fast.level_count(); ++k) {
      fast.set_level(k);
      const nn::Tensor yc = fast.infer(x);
      // The masked arm lags at level 0, so `net` still holds golden
      // weights: the masked reference is a fresh clone + mask apply.
      nn::Network masked = net.clone();
      masks[static_cast<std::size_t>(k)].apply(masked);
      const nn::Tensor ym = masked.forward(x, false);
      ASSERT_EQ(ym.shape(), yc.shape()) << describe(c, i) << " level " << k;
      EXPECT_LT(ym.max_abs_diff(yc), kEquivTolerance)
          << describe(c, i) << " level " << k;
      if (c.net_kind == 2) {
        // Residual identity shortcut pins the block output width: the
        // compacted clone must keep it at full width at EVERY level.
        auto* conv2 = dynamic_cast<nn::Conv2D*>(
            fast.network_at(k).find("block.conv2"));
        ASSERT_NE(conv2, nullptr) << describe(c, i);
        EXPECT_EQ(conv2->out_channels(), 6)
            << describe(c, i) << " level " << k;
      }
    }
  }
}

TEST(FastPath, LadderSwapThenRestoreRoundTripIsBitExact) {
  Rng rng(kSweepSeed + 1);
  for (int i = 0; i < kConfigs; ++i) {
    const Config c = draw_config(rng);
    nn::Network net = make_net(c);
    std::vector<nn::Tensor> golden;
    for (auto& p : net.params()) golden.push_back(*p.value);

    {
      CompactedLadderProvider fast(
          net,
          prune::PruneLevelLibrary::build_structured(net, c.ratios,
                                                     tiny_input_shape()),
          tiny_input_shape());
      const int walk_len = rng.uniform_int(3, 10);
      for (int s = 0; s < walk_len; ++s) {
        fast.set_level(rng.uniform_int(0, fast.level_count() - 1));
        // Occasionally align the masked golden arm mid-walk, as the
        // runner does on the scrub cadence.
        if (rng.uniform_int(0, 2) == 0) fast.sync_masked();
      }
      fast.sync_masked();
      fast.masked().restore_full();
      auto after = net.params();
      for (std::size_t p = 0; p < after.size(); ++p)
        EXPECT_TRUE(after[p].value->equals(golden[p]))
            << describe(c, i) << " param " << after[p].name;
    }
    // Provider destruction must also leave the net as found, even after
    // a walk that never synced (the masked arm restores level 0).
    auto after = net.params();
    for (std::size_t p = 0; p < after.size(); ++p)
      EXPECT_TRUE(after[p].value->equals(golden[p]))
          << describe(c, i) << " param " << after[p].name << " post-dtor";
  }
}

TEST(FastPath, LevelSwapIsO1OnTheFramePath) {
  nn::Network net = tiny_conv_net(33);
  CompactedLadderProvider fast(
      net,
      prune::PruneLevelLibrary::build_structured(net, {0.0, 0.3, 0.6, 0.8},
                                                 tiny_input_shape()),
      tiny_input_shape());

  // Parameter storage addresses of every ladder network, pre-walk.
  std::vector<const float*> addrs;
  for (int k = 0; k < fast.level_count(); ++k)
    for (auto& p : fast.network_at(k).params())
      addrs.push_back(p.value->data().data());

  metrics::Counter& rebuilds = metrics::counter("prune.ladder_rebuilds");
  metrics::Counter& bytes = metrics::counter("prune.bytes_touched");
  metrics::Counter& swaps = metrics::counter("prune.ladder_swaps");
  const std::int64_t rebuilds0 = rebuilds.value();
  const std::int64_t bytes0 = bytes.value();
  const std::int64_t swaps0 = swaps.value();

  const nn::Tensor x = random_tensor({1, 1, 8, 8}, 34);
  Rng rng(35);
  int level_changes = 0;
  int level = fast.current_level();
  for (int s = 0; s < 50; ++s) {
    const int to = rng.uniform_int(0, fast.level_count() - 1);
    const TransitionStats st = fast.set_level(to);
    EXPECT_EQ(st.elements_changed, 0) << "swap " << s;
    EXPECT_EQ(st.bytes_written, 0) << "swap " << s;
    if (to != level) ++level_changes;
    level = to;
    fast.infer(x);
  }

  // No rebuild, no weight copy: the counters are flat and every ladder
  // parameter still lives at its original address.
  EXPECT_EQ(rebuilds.value(), rebuilds0);
  EXPECT_EQ(bytes.value(), bytes0);
  EXPECT_EQ(swaps.value(), swaps0 + level_changes);
  std::size_t a = 0;
  for (int k = 0; k < fast.level_count(); ++k)
    for (auto& p : fast.network_at(k).params())
      EXPECT_EQ(addrs[a++], p.value->data().data())
          << "level " << k << " param " << p.name;
}

// Two serve streams alias ONE shared provider through per-stream views.
// A view's level swap must never be observable from any other view: not
// in its level index, not in the physical network it resolves to, and
// not in its inference output.  This is the isolation contract the
// serving engine's fan-out relies on (DESIGN.md invariant 16).
TEST(FastPath, SharedLadderViewsAliasWithoutInterference) {
  nn::Network net = tiny_conv_net(36);
  CompactedLadderProvider shared(
      net,
      prune::PruneLevelLibrary::build_structured(net, {0.0, 0.3, 0.6, 0.8},
                                                 tiny_input_shape()),
      tiny_input_shape());

  CompactedLadderView a(shared, 0);
  CompactedLadderView b(shared, 2);
  EXPECT_EQ(a.current_level(), 0);
  EXPECT_EQ(b.current_level(), 2);
  EXPECT_EQ(a.level_count(), shared.level_count());

  // Both views resolve to the shared, pre-compacted ladder networks.
  EXPECT_EQ(&a.active_network(), &shared.network_at(0));
  EXPECT_EQ(&b.active_network(), &shared.network_at(2));
  EXPECT_EQ(a.resident_weight_bytes(), b.resident_weight_bytes())
      << "views must report the shared footprint, not a private copy";

  const nn::Tensor x = random_tensor({1, 1, 8, 8}, 37);
  const nn::Tensor a_ref = a.infer(x);
  const nn::Tensor b_ref = b.infer(x);

  // Walk view `a` across every level; view `b` must be inert throughout.
  Rng rng(38);
  for (int s = 0; s < 32; ++s) {
    const TransitionStats st =
        a.set_level(rng.uniform_int(0, shared.level_count() - 1));
    EXPECT_EQ(st.elements_changed, 0) << "swap " << s;
    EXPECT_EQ(st.bytes_written, 0) << "swap " << s;
    EXPECT_EQ(b.current_level(), 2) << "swap " << s;
    EXPECT_EQ(&b.active_network(), &shared.network_at(2)) << "swap " << s;
    EXPECT_TRUE(b.infer(x).equals(b_ref)) << "swap " << s;
  }

  // And symmetrically: b's swaps never disturb a.
  a.set_level(0);
  b.set_level(3);
  EXPECT_EQ(a.current_level(), 0);
  EXPECT_EQ(&a.active_network(), &shared.network_at(0));
  EXPECT_TRUE(a.infer(x).equals(a_ref));

  // Two views at the SAME level share the same physical network: the
  // whole point of the view layer is that N streams cost one ladder.
  b.set_level(0);
  EXPECT_EQ(&a.active_network(), &b.active_network());
  EXPECT_TRUE(b.infer(x).equals(a_ref));
  // The shared provider's own cursor was never touched by any view.
  EXPECT_EQ(shared.current_level(), 0);
}

// ---------------------------------------------------------------------------
// F4: micro-kernel bit-exactness.
// ---------------------------------------------------------------------------

/// Odd sizes exercise every register-tile and vector-lane tail path.
constexpr std::int64_t kM = 13, kN = 37, kK = 29;

std::vector<float> random_matrix(std::int64_t elems, std::uint64_t seed,
                                 double zero_frac) {
  Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(elems));
  for (float& x : v)
    x = rng.uniform() < zero_frac
            ? 0.0f
            : static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

void expect_bits_equal(const std::vector<float>& want,
                       const std::vector<float>& got, const char* label) {
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_EQ(want[i], got[i]) << label << " element " << i;
}

TEST(FastPath, KernelVariantsAreBitIdentical) {
  // ~30% zeros in A exercises the zero-skip short-circuit every variant
  // must share for masked-sparsity bit-exactness.
  const std::vector<float> a = random_matrix(kM * kK, 40, 0.3);
  const std::vector<float> at = random_matrix(kK * kM, 41, 0.3);
  const std::vector<float> b = random_matrix(kK * kN, 42, 0.0);
  const std::vector<float> c0 = random_matrix(kM * kN, 43, 0.0);

  for (float alpha : {1.0f, 1.3f}) {
    for (float beta : {0.0f, 1.0f, 0.5f}) {
      const std::string tag =
          "alpha=" + std::to_string(alpha) + " beta=" + std::to_string(beta);
      std::vector<float> ref = c0, blk = c0;
      nn::kernels::gemm_rows_reference(0, kM, kN, kK, alpha, a.data(), kK,
                                       b.data(), kN, beta, ref.data(), kN);
      nn::kernels::gemm_rows_blocked(0, kM, kN, kK, alpha, a.data(), kK,
                                     b.data(), kN, beta, blk.data(), kN);
      expect_bits_equal(ref, blk, (tag + " blocked").c_str());

      std::vector<float> ref_at = c0, blk_at = c0;
      nn::kernels::gemm_at_rows_reference(0, kM, kN, kK, alpha, at.data(),
                                          kM, b.data(), kN, beta,
                                          ref_at.data(), kN);
      nn::kernels::gemm_at_rows_blocked(0, kM, kN, kK, alpha, at.data(), kM,
                                        b.data(), kN, beta, blk_at.data(),
                                        kN);
      expect_bits_equal(ref_at, blk_at, (tag + " blocked_at").c_str());

#if defined(RRP_HAVE_AVX2)
      if (nn::kernels::avx2_usable()) {
        std::vector<float> vec = c0, vec_at = c0;
        nn::kernels::gemm_rows_avx2(0, kM, kN, kK, alpha, a.data(), kK,
                                    b.data(), kN, beta, vec.data(), kN);
        expect_bits_equal(ref, vec, (tag + " avx2").c_str());
        nn::kernels::gemm_at_rows_avx2(0, kM, kN, kK, alpha, at.data(), kM,
                                       b.data(), kN, beta, vec_at.data(),
                                       kN);
        expect_bits_equal(ref_at, vec_at, (tag + " avx2_at").c_str());
      }
#endif
    }
  }
}

TEST(FastPath, KernelsAreRowPartitionInvariant) {
  // The pool splits GEMM over row ranges; any partition must be invisible
  // in the result.  Also covers the active dispatch against the oracle.
  const std::vector<float> a = random_matrix(kM * kK, 44, 0.3);
  const std::vector<float> b = random_matrix(kK * kN, 45, 0.0);
  const std::vector<float> c0 = random_matrix(kM * kN, 46, 0.0);

  std::vector<float> whole = c0;
  nn::kernels::gemm_rows_reference(0, kM, kN, kK, 1.1f, a.data(), kK,
                                   b.data(), kN, 0.5f, whole.data(), kN);

  const nn::kernels::GemmRowsFn fns[] = {
      nn::kernels::gemm_rows_reference,
      nn::kernels::gemm_rows_blocked,
      nn::kernels::active_gemm_rows(),
  };
  const std::int64_t cuts[] = {0, 3, 4, 9, kM};
  for (const auto fn : fns) {
    std::vector<float> split = c0;
    for (std::size_t s = 0; s + 1 < std::size(cuts); ++s)
      fn(cuts[s], cuts[s + 1], kN, kK, 1.1f, a.data(), kK, b.data(), kN,
         0.5f, split.data(), kN);
    expect_bits_equal(whole, split, "row partition");
  }
}

TEST(FastPath, PublicGemmIsBitExactAcrossThreadCounts) {
  // Larger shapes so parallel_for actually fans out.
  const std::int64_t m = 96, n = 80, k = 72;
  const std::vector<float> a = random_matrix(m * k, 47, 0.3);
  const std::vector<float> at = random_matrix(k * m, 48, 0.3);
  const std::vector<float> bt = random_matrix(n * k, 49, 0.0);
  const std::vector<float> b = random_matrix(k * n, 50, 0.0);
  const std::vector<float> c0 = random_matrix(m * n, 51, 0.0);

  std::vector<std::vector<float>> gemm_out, at_out, bt_out;
  for (int threads : {1, 2, 8}) {
    ThreadCountGuard guard(threads);
    std::vector<float> c1 = c0, c2 = c0, c3 = c0;
    nn::gemm(m, n, k, 1.0f, a.data(), k, b.data(), n, 0.25f, c1.data(), n);
    nn::gemm_at(m, n, k, 1.0f, at.data(), m, b.data(), n, 0.25f, c2.data(),
                n);
    nn::gemm_bt(m, n, k, 1.0f, a.data(), k, bt.data(), k, 0.25f, c3.data(),
                n);
    gemm_out.push_back(std::move(c1));
    at_out.push_back(std::move(c2));
    bt_out.push_back(std::move(c3));
  }
  for (std::size_t t = 1; t < gemm_out.size(); ++t) {
    expect_bits_equal(gemm_out[0], gemm_out[t], "gemm threads");
    expect_bits_equal(at_out[0], at_out[t], "gemm_at threads");
    expect_bits_equal(bt_out[0], bt_out[t], "gemm_bt threads");
  }
}

TEST(FastPath, ActiveDispatchIsCoherent) {
  const std::string v = nn::kernels::active_variant();
  EXPECT_TRUE(v == "scalar" || v == "blocked" || v == "avx2") << v;
  if (v == "avx2") {
    EXPECT_TRUE(nn::kernels::avx2_usable());
  }
  EXPECT_NE(nn::kernels::active_gemm_rows(), nullptr);
  EXPECT_NE(nn::kernels::active_gemm_at_rows(), nullptr);
}

}  // namespace
}  // namespace rrp::core
