// Whole-zoo invariant sweep: every core property of the reversible runtime
// must hold for EVERY architecture in the zoo (untrained weights — the
// invariants are structural, not statistical), parameterized per model.
#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/reversible_pruner.h"
#include "models/zoo.h"
#include "nn/serialize.h"
#include "prune/compact.h"
#include "test_support.h"

namespace rrp::models {
namespace {

class ZooInvariants : public ::testing::TestWithParam<ModelKind> {
 protected:
  void SetUp() override {
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
    net_ = build_model(GetParam(), rng);
    lib_ = prune::PruneLevelLibrary::build_structured(
        net_, {0.0, 0.3, 0.6}, zoo_input_shape(),
        prune::ImportanceMetric::L1, 2);
  }
  nn::Network net_;
  prune::PruneLevelLibrary lib_;
};

TEST_P(ZooInvariants, LaddersAreNested) {
  EXPECT_TRUE(lib_.verify_nested());
  const auto sparsity = lib_.achieved_sparsity(net_);
  for (std::size_t k = 1; k < sparsity.size(); ++k)
    EXPECT_GT(sparsity[k], sparsity[k - 1]);
}

TEST_P(ZooInvariants, RandomWalkRestoresBitExactly) {
  std::vector<nn::Tensor> golden;
  for (auto& p : net_.params()) golden.push_back(*p.value);
  {
    core::ReversiblePruner rp(net_, lib_);
    Rng rng(7);
    for (int i = 0; i < 20; ++i)
      rp.set_level(rng.uniform_int(0, rp.level_count() - 1));
    rp.restore_full();
    auto after = net_.params();
    for (std::size_t i = 0; i < after.size(); ++i)
      EXPECT_TRUE(after[i].value->equals(golden[i])) << after[i].name;
  }
}

TEST_P(ZooInvariants, MaskedEqualsCompactedAtEveryLevel) {
  const nn::Tensor x = rrp::testing::random_tensor(zoo_input_shape(), 9);
  for (int k = 0; k < lib_.level_count(); ++k) {
    nn::Network masked = net_.clone();
    lib_.mask(k).apply(masked);
    nn::Network compacted =
        prune::compact_network(net_, lib_.channel_masks(k), zoo_input_shape());
    EXPECT_LT(masked.forward(x, false).max_abs_diff(
                  compacted.forward(x, false)),
              1e-4f)
        << "level " << k;
  }
}

TEST_P(ZooInvariants, EffectiveMacsDecreaseAcrossLevels) {
  core::ReversiblePruner rp(net_, lib_);
  std::int64_t prev = -1;
  for (int k = 0; k < rp.level_count(); ++k) {
    rp.set_level(k);
    const std::int64_t macs = rp.active_macs(zoo_input_shape());
    if (k > 0) {
      EXPECT_LT(macs, prev) << "level " << k;
    }
    prev = macs;
  }
  rp.set_level(0);
}

TEST_P(ZooInvariants, SerializationRoundTripsTheArchitecture) {
  nn::Network copy = nn::deserialize_network(nn::serialize_network(net_));
  const nn::Tensor x = rrp::testing::random_tensor(zoo_input_shape(), 11);
  EXPECT_TRUE(net_.forward(x, false).equals(copy.forward(x, false)));
  EXPECT_EQ(copy.param_count(), net_.param_count());
}

TEST_P(ZooInvariants, ReloadBaselineAgreesWithMaskedExecution) {
  core::ReloadProvider reload(net_, lib_,
                              core::ReloadProvider::Source::Memory);
  core::ReversiblePruner rp(net_, lib_);
  const nn::Tensor x = rrp::testing::random_tensor(zoo_input_shape(), 13);
  for (int k = 0; k < lib_.level_count(); ++k) {
    rp.set_level(k);
    reload.set_level(k);
    EXPECT_TRUE(rp.infer(x).equals(reload.infer(x))) << "level " << k;
  }
  rp.set_level(0);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ZooInvariants,
    ::testing::Values(ModelKind::Mlp, ModelKind::LeNet, ModelKind::ResNetLite,
                      ModelKind::DetNet, ModelKind::MobileNetLite),
    [](const ::testing::TestParamInfo<ModelKind>& info) {
      return std::string(model_kind_name(info.param));
    });

}  // namespace
}  // namespace rrp::models
