#include <gtest/gtest.h>

#include <sstream>

#include "core/telemetry.h"

namespace rrp::core {
namespace {

FrameRecord frame(std::int64_t i, CriticalityClass c, int level,
                  double latency, bool correct) {
  FrameRecord r;
  r.frame = i;
  r.criticality = c;
  r.executed_level = level;
  r.latency_ms = latency;
  r.energy_mj = 1.0;
  r.deadline_ms = 5.0;
  r.correct = correct;
  return r;
}

TEST(Telemetry, EmptySummaryIsZeroed) {
  Telemetry t;
  const RunSummary s = t.summarize();
  EXPECT_EQ(s.frames, 0);
  EXPECT_DOUBLE_EQ(s.accuracy, 0.0);
}

TEST(Telemetry, AccuracyAndCriticalAccuracy) {
  Telemetry t;
  t.add(frame(0, CriticalityClass::Low, 2, 1.0, true));
  t.add(frame(1, CriticalityClass::High, 0, 1.0, false));
  t.add(frame(2, CriticalityClass::Critical, 0, 1.0, true));
  t.add(frame(3, CriticalityClass::Medium, 1, 1.0, true));
  const RunSummary s = t.summarize();
  EXPECT_EQ(s.frames, 4);
  EXPECT_DOUBLE_EQ(s.accuracy, 0.75);
  EXPECT_EQ(s.critical_frames, 2);
  EXPECT_DOUBLE_EQ(s.critical_accuracy, 0.5);
  EXPECT_DOUBLE_EQ(s.missed_critical_rate, 0.5);
}

TEST(Telemetry, DeadlineMissIncludesSwitchTime) {
  Telemetry t;
  FrameRecord ok = frame(0, CriticalityClass::Low, 0, 4.0, true);
  t.add(ok);
  FrameRecord miss = frame(1, CriticalityClass::Low, 0, 4.0, true);
  miss.switch_us = 1500.0;  // 1.5 ms pushes past the 5 ms deadline
  t.add(miss);
  const RunSummary s = t.summarize();
  EXPECT_DOUBLE_EQ(s.deadline_miss_rate, 0.5);
}

TEST(Telemetry, EnergyTotalsAndMeans) {
  Telemetry t;
  for (int i = 0; i < 4; ++i)
    t.add(frame(i, CriticalityClass::Low, 0, 1.0, true));
  const RunSummary s = t.summarize();
  EXPECT_DOUBLE_EQ(s.total_energy_mj, 4.0);
  EXPECT_DOUBLE_EQ(s.mean_energy_mj, 1.0);
}

TEST(Telemetry, LevelSwitchCounting) {
  Telemetry t;
  t.add(frame(0, CriticalityClass::Low, 0, 1.0, true));
  t.add(frame(1, CriticalityClass::Low, 2, 1.0, true));
  t.add(frame(2, CriticalityClass::Low, 2, 1.0, true));
  t.add(frame(3, CriticalityClass::Low, 1, 1.0, true));
  const RunSummary s = t.summarize();
  EXPECT_EQ(s.level_switches, 2);
  EXPECT_DOUBLE_EQ(s.mean_level, 1.25);
}

TEST(Telemetry, SwitchStatsOnlyOverSwitchFrames) {
  Telemetry t;
  FrameRecord a = frame(0, CriticalityClass::Low, 0, 1.0, true);
  a.switch_us = 100.0;
  FrameRecord b = frame(1, CriticalityClass::Low, 0, 1.0, true);
  b.switch_us = 300.0;
  t.add(a);
  t.add(b);
  t.add(frame(2, CriticalityClass::Low, 0, 1.0, true));  // no switch
  const RunSummary s = t.summarize();
  EXPECT_DOUBLE_EQ(s.mean_switch_us, 200.0);
  EXPECT_DOUBLE_EQ(s.max_switch_us, 300.0);
}

TEST(Telemetry, ViolationsAndVetoesCounted) {
  Telemetry t;
  FrameRecord r = frame(0, CriticalityClass::High, 3, 1.0, false);
  r.violation = true;
  r.veto = true;
  t.add(r);
  const RunSummary s = t.summarize();
  EXPECT_EQ(s.safety_violations, 1);
  EXPECT_EQ(s.vetoes, 1);
}

TEST(Telemetry, CsvHasHeaderAndOneRowPerFrame) {
  Telemetry t;
  t.add(frame(0, CriticalityClass::Low, 1, 2.0, true));
  t.add(frame(1, CriticalityClass::High, 0, 3.0, false));
  std::ostringstream os;
  t.write_csv(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("frame,criticality"), std::string::npos);
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 3);
  EXPECT_NE(s.find("High"), std::string::npos);
}

TEST(Telemetry, P99LatencyTracksTail) {
  Telemetry t;
  for (int i = 0; i < 99; ++i)
    t.add(frame(i, CriticalityClass::Low, 0, 1.0, true));
  t.add(frame(99, CriticalityClass::Low, 0, 50.0, true));
  const RunSummary s = t.summarize();
  // Interpolated p99 sits between the 1 ms bulk and the 50 ms outlier.
  EXPECT_GT(s.p99_latency_ms, s.mean_latency_ms);
  EXPECT_GT(s.p99_latency_ms, 1.2);
  EXPECT_LT(s.mean_latency_ms, 2.0);
}

TEST(Telemetry, ClearEmpties) {
  Telemetry t;
  t.add(frame(0, CriticalityClass::Low, 0, 1.0, true));
  t.clear();
  EXPECT_EQ(t.size(), 0u);
}

}  // namespace
}  // namespace rrp::core
