#include <gtest/gtest.h>

#include "prune/sensitivity.h"
#include "test_support.h"

namespace rrp::prune {
namespace {

using rrp::testing::tiny_conv_net;
using rrp::testing::tiny_dataset;
using rrp::testing::tiny_input_shape;

class SensitivityFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = tiny_conv_net(1);
    data_ = tiny_dataset(150, 2);
    rrp::testing::quick_train(net_, data_, 3);
  }
  nn::Network net_;
  nn::Dataset data_;
};

TEST_F(SensitivityFixture, CoversEveryPrunableLayerAndRatio) {
  SensitivityOptions opt;
  opt.ratios = {0.0, 0.5};
  const auto points = layer_sensitivity(net_, data_, tiny_input_shape(), opt);
  // 2 prunable layers (conv1, fc1) x 2 ratios.
  EXPECT_EQ(points.size(), 4u);
  for (const auto& p : points) {
    EXPECT_GE(p.accuracy, 0.0);
    EXPECT_LE(p.accuracy, 1.0);
  }
}

TEST_F(SensitivityFixture, ZeroRatioMatchesBaseline) {
  SensitivityOptions opt;
  opt.ratios = {0.0};
  const double base = nn::evaluate_accuracy(net_, data_);
  const auto points = layer_sensitivity(net_, data_, tiny_input_shape(), opt);
  for (const auto& p : points) EXPECT_NEAR(p.accuracy, base, 1e-9);
}

TEST_F(SensitivityFixture, HeavyPruningHurtsSomewhere) {
  SensitivityOptions opt;
  opt.ratios = {0.0, 0.9};
  const auto points = layer_sensitivity(net_, data_, tiny_input_shape(), opt);
  double base = 0.0, worst = 1.0;
  for (const auto& p : points) {
    if (p.ratio == 0.0) base = std::max(base, p.accuracy);
    else worst = std::min(worst, p.accuracy);
  }
  EXPECT_LT(worst, base);
}

TEST_F(SensitivityFixture, NetworkIsUntouched) {
  const auto before = net_.params();
  std::vector<nn::Tensor> snapshot;
  for (auto& p : before) snapshot.push_back(*p.value);
  SensitivityOptions opt;
  opt.ratios = {0.0, 0.8};
  layer_sensitivity(net_, data_, tiny_input_shape(), opt);
  auto after = net_.params();
  for (std::size_t i = 0; i < after.size(); ++i)
    EXPECT_TRUE(after[i].value->equals(snapshot[i]));
}

TEST_F(SensitivityFixture, UnstructuredModeWorks) {
  SensitivityOptions opt;
  opt.ratios = {0.0, 0.5};
  opt.structured = false;
  const auto points = layer_sensitivity(net_, data_, tiny_input_shape(), opt);
  EXPECT_EQ(points.size(), 4u);
}

TEST_F(SensitivityFixture, SparsityReportedForPrunedPoints) {
  SensitivityOptions opt;
  opt.ratios = {0.5};
  const auto points = layer_sensitivity(net_, data_, tiny_input_shape(), opt);
  for (const auto& p : points) EXPECT_GT(p.sparsity, 0.0);
}

}  // namespace
}  // namespace rrp::prune
