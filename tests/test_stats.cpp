#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>

#include "util/checks.h"
#include "util/rng.h"
#include "util/stats.h"

namespace rrp {
namespace {

TEST(Stats, MeanOfKnownSample) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Stats, MeanOfEmptyIsZero) { EXPECT_DOUBLE_EQ(mean({}), 0.0); }

TEST(Stats, StddevOfKnownSample) {
  // Sample stddev of {2, 4, 4, 4, 5, 5, 7, 9} is sqrt(32/7).
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, StddevDegenerateCases) {
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({3.0}), 0.0);
}

TEST(Stats, QuantileEndpointsAndMedian) {
  std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
}

TEST(Stats, QuantileInterpolates) {
  EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 0.25), 2.5);
}

TEST(Stats, QuantileRejectsBadInput) {
  EXPECT_THROW(quantile({}, 0.5), PreconditionError);
  EXPECT_THROW(quantile({1.0}, 1.5), PreconditionError);
}

TEST(Stats, SummaryFieldsConsistent) {
  std::vector<double> xs;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.uniform(0.0, 100.0));
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, xs.size());
  EXPECT_LE(s.min, s.p50);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
  EXPECT_NEAR(s.mean, mean(xs), 1e-9);
}

TEST(Stats, SummaryOfEmptyIsZeroed) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(RunningStats, MatchesBatchStatistics) {
  Rng rng(9);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(rs.max(), *std::max_element(xs.begin(), xs.end()));
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats rs;
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  rs.add(7.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 7.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 7.0);
  EXPECT_DOUBLE_EQ(rs.max(), 7.0);
}

TEST(RunningStats, SumAccumulates) {
  RunningStats rs;
  rs.add(1.5);
  rs.add(2.5);
  EXPECT_DOUBLE_EQ(rs.sum(), 4.0);
}

}  // namespace
}  // namespace rrp
