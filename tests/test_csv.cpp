#include <gtest/gtest.h>

#include <sstream>

#include "util/checks.h"
#include "util/csv.h"

namespace rrp {
namespace {

TEST(Csv, EscapePlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(Csv, EscapeCommaQuoteNewline) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WriterEmitsHeaderAndRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"a", "b"});
  w.row({"1", "2"});
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Csv, WriterEnforcesArity) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"a", "b"});
  EXPECT_THROW(w.row({"only-one"}), PreconditionError);
}

TEST(Csv, HeaderMustComeFirst) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"x"});
  EXPECT_THROW(w.header({"a"}), PreconditionError);
}

TEST(Csv, NumFormatsFixedPrecision) {
  EXPECT_EQ(CsvWriter::num(1.23456, 2), "1.23");
}

TEST(Table, PrintsAlignedTable) {
  TableFormatter t({"name", "value"});
  t.row({"x", "1"});
  t.row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("| longer"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvExportMatchesRows) {
  TableFormatter t({"h1", "h2"});
  t.row({"a", "b"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "h1,h2\na,b\n");
}

TEST(Table, RejectsWrongArity) {
  TableFormatter t({"h1", "h2"});
  EXPECT_THROW(t.row({"a"}), PreconditionError);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(TableFormatter({}), PreconditionError);
}

TEST(Fmt, TrimsTrailingZeros) {
  EXPECT_EQ(fmt(1.5, 3), "1.5");
  EXPECT_EQ(fmt(2.0, 3), "2.0");
  EXPECT_EQ(fmt(0.125, 3), "0.125");
}

}  // namespace
}  // namespace rrp
