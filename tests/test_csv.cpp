#include <gtest/gtest.h>

#include <sstream>

#include "util/checks.h"
#include "util/csv.h"

namespace rrp {
namespace {

TEST(Csv, EscapePlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(Csv, EscapeCommaQuoteNewline) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WriterEmitsHeaderAndRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"a", "b"});
  w.row({"1", "2"});
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Csv, WriterEnforcesArity) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"a", "b"});
  EXPECT_THROW(w.row({"only-one"}), PreconditionError);
}

TEST(Csv, HeaderMustComeFirst) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"x"});
  EXPECT_THROW(w.header({"a"}), PreconditionError);
}

TEST(Csv, NumFormatsFixedPrecision) {
  EXPECT_EQ(CsvWriter::num(1.23456, 2), "1.23");
}

TEST(CsvParse, PlainFields) {
  EXPECT_EQ(parse_csv_line("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvParse, EmptyFieldsPreserved) {
  EXPECT_EQ(parse_csv_line("a,,"), (std::vector<std::string>{"a", "", ""}));
  EXPECT_EQ(parse_csv_line(","), (std::vector<std::string>{"", ""}));
}

TEST(CsvParse, QuotedCommaAndQuote) {
  EXPECT_EQ(parse_csv_line("\"a,b\",c"),
            (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(parse_csv_line("\"say \"\"hi\"\"\",x"),
            (std::vector<std::string>{"say \"hi\"", "x"}));
}

TEST(CsvParse, RoundTripsEscapedFields) {
  const std::vector<std::string> fields = {"plain", "with,comma",
                                           "with \"quotes\"", ""};
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) line += ',';
    line += csv_escape(fields[i]);
  }
  EXPECT_EQ(parse_csv_line(line), fields);
}

TEST(CsvParse, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv_line("\"open,never,closed"), SerializationError);
}

TEST(CsvParse, TrailingContentAfterRecordThrows) {
  EXPECT_THROW(parse_csv_line("a,b\nc,d"), SerializationError);
}

TEST(CsvParse, RecordStreamHandlesEmbeddedNewlineAndCrlf) {
  std::istringstream is("\"line\nbreak\",x\r\nsecond,row\n");
  std::vector<std::string> fields;
  ASSERT_TRUE(read_csv_record(is, fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"line\nbreak", "x"}));
  ASSERT_TRUE(read_csv_record(is, fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"second", "row"}));
  EXPECT_FALSE(read_csv_record(is, fields));
}

TEST(CsvParse, WriterOutputParsesBackExactly) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"name", "note"});
  w.row({"a,b", "line\nbreak \"q\""});
  std::istringstream is(os.str());
  std::vector<std::string> fields;
  ASSERT_TRUE(read_csv_record(is, fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"name", "note"}));
  ASSERT_TRUE(read_csv_record(is, fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"a,b", "line\nbreak \"q\""}));
  EXPECT_FALSE(read_csv_record(is, fields));
}

TEST(Table, PrintsAlignedTable) {
  TableFormatter t({"name", "value"});
  t.row({"x", "1"});
  t.row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("| longer"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvExportMatchesRows) {
  TableFormatter t({"h1", "h2"});
  t.row({"a", "b"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "h1,h2\na,b\n");
}

TEST(Table, RejectsWrongArity) {
  TableFormatter t({"h1", "h2"});
  EXPECT_THROW(t.row({"a"}), PreconditionError);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(TableFormatter({}), PreconditionError);
}

TEST(Fmt, TrimsTrailingZeros) {
  EXPECT_EQ(fmt(1.5, 3), "1.5");
  EXPECT_EQ(fmt(2.0, 3), "2.0");
  EXPECT_EQ(fmt(0.125, 3), "0.125");
}

}  // namespace
}  // namespace rrp
