#include <gtest/gtest.h>

#include "prune/compact.h"
#include "prune/mask.h"
#include "prune/planner.h"
#include "test_support.h"
#include "util/checks.h"

namespace rrp::prune {
namespace {

using rrp::testing::tiny_conv_net;
using rrp::testing::tiny_input_shape;

TEST(MacBudget, HitsTargetFraction) {
  nn::Network net = tiny_conv_net(1);
  const nn::Shape in = tiny_input_shape();
  const std::int64_t dense = net.macs(in);
  for (double target : {0.7, 0.5, 0.3}) {
    const auto masks = plan_structured_for_macs(net, target, in);
    nn::Network compacted = compact_network(net, masks, in);
    const double achieved =
        static_cast<double>(compacted.macs(in)) / dense;
    // Producer-side estimate: achieved is at or below target (downstream
    // slices shrink too), but not absurdly below.
    EXPECT_LE(achieved, target + 0.05) << target;
    EXPECT_GT(achieved, target * 0.5) << target;
  }
}

TEST(MacBudget, FullBudgetPrunesNothing) {
  nn::Network net = tiny_conv_net(2);
  EXPECT_TRUE(
      plan_structured_for_macs(net, 1.0, tiny_input_shape()).empty());
}

TEST(MacBudget, RespectsMinChannels) {
  nn::Network net = tiny_conv_net(3);
  StructuredOptions opt;
  opt.min_channels = 3;
  const auto masks =
      plan_structured_for_macs(net, 0.05, tiny_input_shape(), opt);
  for (const auto& cm : masks) EXPECT_GE(cm.kept_count(), 3u);
}

TEST(MacBudget, PrefersCheapUnimportantChannelsGlobally) {
  // The masks must be lowerable and the masked network must agree with
  // the compacted one (full pipeline validity of the global plan).
  nn::Network net = tiny_conv_net(4);
  const auto masks = plan_structured_for_macs(net, 0.4, tiny_input_shape());
  nn::Network masked = net.clone();
  lower_channel_masks(masked, masks, tiny_input_shape()).apply(masked);
  nn::Network compacted = compact_network(net, masks, tiny_input_shape());
  const nn::Tensor x = rrp::testing::random_tensor({2, 1, 8, 8}, 5);
  EXPECT_LT(
      masked.forward(x, false).max_abs_diff(compacted.forward(x, false)),
      1e-4f);
}

TEST(MacBudget, WorksOnResidualTopology) {
  nn::Network net = rrp::testing::tiny_residual_net(6);
  const auto masks = plan_structured_for_macs(net, 0.6, tiny_input_shape());
  // Only the block-internal conv is prunable; the plan must stay valid.
  nn::Network compacted = compact_network(net, masks, tiny_input_shape());
  EXPECT_LT(compacted.macs(tiny_input_shape()),
            net.macs(tiny_input_shape()));
}

TEST(MacBudget, ValidatesTarget) {
  nn::Network net = tiny_conv_net(7);
  EXPECT_THROW(plan_structured_for_macs(net, 0.0, tiny_input_shape()),
               PreconditionError);
  EXPECT_THROW(plan_structured_for_macs(net, 1.5, tiny_input_shape()),
               PreconditionError);
}

}  // namespace
}  // namespace rrp::prune
