// test_qsketch.cpp — the mergeable quantile sketch (util/qsketch.h): the
// relative-accuracy guarantee, exact min/max, sign handling, and the
// property the campaign's thread-count invariance rests on — merges are
// order-independent, and merging per-part sketches equals one sketch fed
// everything.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/checks.h"
#include "util/qsketch.h"
#include "util/rng.h"

namespace rrp {
namespace {

double exact_quantile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  std::int64_t target = static_cast<std::int64_t>(
      std::ceil(q * static_cast<double>(v.size())));
  if (target < 1) target = 1;
  return v[static_cast<std::size_t>(target - 1)];
}

TEST(QuantileSketch, EmptySketchIsZeroEverywhere) {
  QuantileSketch s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.quantile(0.5), 0.0);
}

TEST(QuantileSketch, RelativeAccuracyBoundHolds) {
  QuantileSketch::Config cfg;
  cfg.gamma = 0.01;
  QuantileSketch s(cfg);
  Rng rng(42);
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    // Heavy-tailed positives spanning several orders of magnitude.
    const double v = std::exp(rng.uniform(-3.0, 8.0));
    values.push_back(v);
    s.add(v);
  }
  ASSERT_EQ(s.count(), 20000);
  const double base = (1.0 + cfg.gamma) / (1.0 - cfg.gamma);
  const double bound = std::sqrt(base) - 1.0;  // the documented guarantee
  for (double q : {0.01, 0.1, 0.5, 0.9, 0.99, 0.999}) {
    const double exact = exact_quantile(values, q);
    const double approx = s.quantile(q);
    EXPECT_LE(std::fabs(approx - exact) / exact, bound)
        << "q=" << q << " exact=" << exact << " approx=" << approx;
  }
  // Extremes are tracked exactly.
  EXPECT_EQ(s.quantile(0.0), *std::min_element(values.begin(), values.end()));
  EXPECT_EQ(s.quantile(1.0), *std::max_element(values.begin(), values.end()));
}

TEST(QuantileSketch, HandlesNegativesAndZeros) {
  QuantileSketch s;
  s.add(-4.0);
  s.add(-2.0);
  s.add(0.0);
  s.add(1e-9);  // below min_abs: exact-zero bucket
  s.add(3.0);
  EXPECT_EQ(s.count(), 5);
  EXPECT_EQ(s.min(), -4.0);
  EXPECT_EQ(s.max(), 3.0);
  // Median of {-4, -2, 0, ~0, 3} is the zero bucket.
  EXPECT_EQ(s.quantile(0.5), 0.0);
  // The 1/5 quantile is the most negative sample's bucket; within γ of -4.
  EXPECT_NEAR(s.quantile(0.2), -4.0, 4.0 * 0.011);
  EXPECT_EQ(s.quantile(0.0), -4.0);
  EXPECT_EQ(s.quantile(1.0), 3.0);
}

TEST(QuantileSketch, MergeIsOrderIndependent) {
  Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 3000; ++i)
    values.push_back(rng.uniform(-50.0, 200.0));

  // Whole vs three parts merged in two different orders.
  QuantileSketch whole, a, b, c;
  for (std::size_t i = 0; i < values.size(); ++i) {
    whole.add(values[i]);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).add(values[i]);
  }
  QuantileSketch abc = a;
  abc.merge(b);
  abc.merge(c);
  QuantileSketch cba = c;
  cba.merge(b);
  cba.merge(a);

  EXPECT_EQ(abc.count(), whole.count());
  EXPECT_EQ(cba.count(), whole.count());
  for (double q : {0.0, 0.05, 0.25, 0.5, 0.75, 0.95, 1.0}) {
    // Bit-for-bit equality, not approximate: integer bucket adds.
    EXPECT_EQ(abc.quantile(q), whole.quantile(q)) << "q=" << q;
    EXPECT_EQ(cba.quantile(q), whole.quantile(q)) << "q=" << q;
  }
  EXPECT_EQ(abc.min(), whole.min());
  EXPECT_EQ(abc.max(), whole.max());
}

TEST(QuantileSketch, WeightedAddMatchesRepeatedAdd) {
  QuantileSketch a, b;
  a.add_n(2.5, 100);
  a.add_n(-1.0, 50);
  for (int i = 0; i < 100; ++i) b.add(2.5);
  for (int i = 0; i < 50; ++i) b.add(-1.0);
  EXPECT_EQ(a.count(), b.count());
  for (double q : {0.1, 0.5, 0.9})
    EXPECT_EQ(a.quantile(q), b.quantile(q));
}

TEST(QuantileSketch, MemoryIsFixedAtConstruction) {
  QuantileSketch s;
  const std::size_t buckets = s.bucket_count();
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) s.add(rng.uniform(-1e6, 1e6));
  EXPECT_EQ(s.bucket_count(), buckets);  // never grows with samples
}

TEST(QuantileSketch, RejectsBadConfigAndMixedMerges) {
  QuantileSketch::Config bad;
  bad.gamma = 0.0;
  EXPECT_THROW(QuantileSketch{bad}, PreconditionError);

  QuantileSketch::Config other;
  other.gamma = 0.02;
  QuantileSketch a, b(other);
  EXPECT_THROW(a.merge(b), PreconditionError);
  EXPECT_THROW(a.add(std::nan("")), PreconditionError);
  EXPECT_THROW(a.add_n(1.0, -1), PreconditionError);
}

TEST(QuantileSketch, ClampsOutOfRangeMagnitudes) {
  QuantileSketch::Config cfg;
  cfg.min_abs = 0.1;
  cfg.max_abs = 100.0;
  QuantileSketch s(cfg);
  s.add(1e9);  // clamps into the top bucket
  s.add(1e9);
  EXPECT_EQ(s.max(), 1e9);          // exact extreme still tracked
  EXPECT_EQ(s.quantile(0.5), 1e9);  // representative clamped into [min,max]
}

}  // namespace
}  // namespace rrp
