// test_mask_properties.cpp — seeded randomized property sweep over the
// mask / level-ladder / reversible-transition invariants.
//
// The targeted tests in test_mask.cpp and test_reversible.cpp pin the
// invariants on a handful of hand-picked ladders; this file drives the
// same three properties across ~100 randomly generated configurations
// (net topology x ladder shape x structured/unstructured x walk order),
// all derived from one fixed seed so a failure reproduces exactly:
//
//   P1  monotone containment — pruned(level j) ⊆ pruned(level k) for
//       every j < k, not just adjacent pairs, and pruned_count is
//       non-decreasing in the level index;
//   P2  prune→restore round trip — after any level walk, restoring
//       level 0 leaves every parameter bit-exactly equal to golden;
//   P3  O(Δ) accounting — each transition's elements_changed equals the
//       mask set-difference |pruned(from) Δ pruned(to)| and
//       bytes_written covers exactly those elements.
#include <gtest/gtest.h>

#include "core/reversible_pruner.h"
#include "prune/levels.h"
#include "test_support.h"
#include "util/rng.h"

namespace rrp::core {
namespace {

using rrp::testing::random_tensor;
using rrp::testing::tiny_bn_net;
using rrp::testing::tiny_conv_net;
using rrp::testing::tiny_input_shape;
using rrp::testing::tiny_residual_net;

/// One randomly drawn configuration: which tiny net, which ladder, and
/// whether levels are structured (channel) or unstructured (element).
struct Config {
  int net_kind = 0;  // 0 conv, 1 bn, 2 residual
  std::uint64_t net_seed = 0;
  std::vector<double> ratios;
  bool structured = false;
};

Config draw_config(Rng& rng) {
  Config c;
  c.net_kind = rng.uniform_int(0, 2);
  c.net_seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 20));
  c.structured = rng.uniform_int(0, 1) == 1;
  // Strictly increasing ladder starting at 0, 2–5 pruned levels, capped
  // below 0.9 so structured levels keep >= 1 channel per layer.
  const int pruned_levels = rng.uniform_int(2, 5);
  double r = 0.0;
  c.ratios.push_back(0.0);
  for (int k = 0; k < pruned_levels; ++k) {
    r += 0.05 + (0.85 - r) * rng.uniform() * 0.45;
    c.ratios.push_back(r);
  }
  return c;
}

nn::Network make_net(const Config& c) {
  switch (c.net_kind) {
    case 0: return tiny_conv_net(c.net_seed);
    case 1: return tiny_bn_net(c.net_seed);
    default: return tiny_residual_net(c.net_seed);
  }
}

prune::PruneLevelLibrary make_lib(const Config& c, nn::Network& net) {
  if (c.structured)
    return prune::PruneLevelLibrary::build_structured(net, c.ratios,
                                                      tiny_input_shape());
  return prune::PruneLevelLibrary::build_unstructured(net, c.ratios);
}

std::string describe(const Config& c, std::size_t idx) {
  std::string s = "config " + std::to_string(idx) +
                  " kind=" + std::to_string(c.net_kind) +
                  " seed=" + std::to_string(c.net_seed) +
                  (c.structured ? " structured" : " unstructured") +
                  " ratios=";
  for (double r : c.ratios) s += std::to_string(r) + ",";
  return s;
}

constexpr int kConfigs = 100;
constexpr std::uint64_t kSweepSeed = 0x5EEDFACEull;

TEST(MaskProperties, MonotoneContainmentAcrossAllLevelPairs) {
  Rng rng(kSweepSeed);
  for (int i = 0; i < kConfigs; ++i) {
    const Config c = draw_config(rng);
    nn::Network net = make_net(c);
    const prune::PruneLevelLibrary lib = make_lib(c, net);
    ASSERT_TRUE(lib.verify_nested()) << describe(c, i);
    // verify_nested() checks adjacent pairs; containment must hold for
    // EVERY j < k (transitively implied, asserted directly here).
    for (int j = 0; j < lib.level_count(); ++j) {
      for (int k = j + 1; k < lib.level_count(); ++k) {
        EXPECT_TRUE(lib.mask(j).nested_within(lib.mask(k)))
            << describe(c, i) << " levels " << j << " -> " << k;
        EXPECT_LE(lib.mask(j).pruned_count(), lib.mask(k).pruned_count())
            << describe(c, i) << " levels " << j << " -> " << k;
        // Under nesting the symmetric difference collapses to the count
        // difference — the O(Δ) cost model's central identity.
        EXPECT_EQ(lib.mask(j).diff_count(lib.mask(k)),
                  lib.mask(k).pruned_count() - lib.mask(j).pruned_count())
            << describe(c, i) << " levels " << j << " -> " << k;
      }
    }
  }
}

TEST(MaskProperties, PruneRestoreRoundTripIsBitExact) {
  Rng rng(kSweepSeed + 1);
  for (int i = 0; i < kConfigs; ++i) {
    const Config c = draw_config(rng);
    nn::Network net = make_net(c);
    std::vector<nn::Tensor> golden;
    for (auto& p : net.params()) golden.push_back(*p.value);

    {
      ReversiblePruner rp(net, make_lib(c, net));
      const int walk_len = rng.uniform_int(3, 12);
      for (int s = 0; s < walk_len; ++s)
        rp.set_level(rng.uniform_int(0, rp.level_count() - 1));
      rp.restore_full();
      auto after = net.params();
      for (std::size_t p = 0; p < after.size(); ++p)
        EXPECT_TRUE(after[p].value->equals(golden[p]))
            << describe(c, i) << " param " << after[p].name;
    }
    // The pruner's destructor must ALSO leave the net as found (the
    // provider-swap contract), even after a non-zero final level.
    auto after = net.params();
    for (std::size_t p = 0; p < after.size(); ++p)
      EXPECT_TRUE(after[p].value->equals(golden[p]))
          << describe(c, i) << " param " << after[p].name << " post-dtor";
  }
}

TEST(MaskProperties, TransitionCostEqualsMaskSetDifference) {
  Rng rng(kSweepSeed + 2);
  for (int i = 0; i < kConfigs; ++i) {
    const Config c = draw_config(rng);
    nn::Network net = make_net(c);
    prune::PruneLevelLibrary lib = make_lib(c, net);
    // Keep an owning copy of the masks: the pruner takes the library.
    std::vector<std::int64_t> pruned_at;
    std::vector<prune::NetworkMask> masks;
    for (int k = 0; k < lib.level_count(); ++k) {
      pruned_at.push_back(lib.mask(k).pruned_count());
      masks.push_back(lib.mask(k));
    }
    ReversiblePruner rp(net, std::move(lib));
    int from = 0;
    const int walk_len = rng.uniform_int(4, 10);
    for (int s = 0; s < walk_len; ++s) {
      const int to = rng.uniform_int(0, rp.level_count() - 1);
      const TransitionStats st = rp.set_level(to);
      const std::int64_t delta =
          masks[static_cast<std::size_t>(from)].diff_count(
              masks[static_cast<std::size_t>(to)]);
      EXPECT_EQ(st.elements_changed, delta)
          << describe(c, i) << " " << from << " -> " << to;
      // No BN states installed in this sweep: every written byte is a
      // float element of the symmetric difference.
      EXPECT_EQ(st.bytes_written,
                delta * static_cast<std::int64_t>(sizeof(float)))
          << describe(c, i) << " " << from << " -> " << to;
      EXPECT_EQ(st.is_restore, to < from)
          << describe(c, i) << " " << from << " -> " << to;
      from = to;
    }
  }
}

}  // namespace
}  // namespace rrp::core
