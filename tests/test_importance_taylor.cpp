#include <gtest/gtest.h>

#include "core/reversible_pruner.h"
#include "prune/importance.h"
#include "prune/levels.h"
#include "prune/sensitivity.h"
#include "test_support.h"
#include "util/checks.h"

namespace rrp::prune {
namespace {

using rrp::testing::tiny_conv_net;
using rrp::testing::tiny_dataset;
using rrp::testing::tiny_input_shape;

class TaylorFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = tiny_conv_net(1);
    data_ = tiny_dataset(200, 2);
    rrp::testing::quick_train(net_, data_, 3);
  }
  nn::Network net_;
  nn::Dataset data_;
};

TEST_F(TaylorFixture, ScoresCoverAllParamsAndPrunableLayers) {
  Rng rng(3);
  const TaylorScores ts = taylor_scores(net_, data_, 4, 16, rng);
  for (auto& p : net_.params()) {
    const auto it = ts.element.find(p.name);
    ASSERT_NE(it, ts.element.end()) << p.name;
    EXPECT_EQ(static_cast<std::int64_t>(it->second.size()), p.value->numel());
  }
  EXPECT_EQ(ts.channel.count("conv1"), 1u);
  EXPECT_EQ(ts.channel.count("fc1"), 1u);
  EXPECT_EQ(ts.channel.count("head"), 0u);  // pinned, not prunable
  EXPECT_EQ(ts.channel.at("conv1").size(), 6u);
}

TEST_F(TaylorFixture, ScoresAreNonNegativeAndNotAllZero) {
  Rng rng(4);
  const TaylorScores ts = taylor_scores(net_, data_, 4, 16, rng);
  double total = 0.0;
  for (const auto& [name, s] : ts.element)
    for (float v : s) {
      EXPECT_GE(v, 0.0f);
      total += v;
    }
  EXPECT_GT(total, 0.0);
}

TEST_F(TaylorFixture, WeightsUnchangedByScoring) {
  std::vector<nn::Tensor> before;
  for (auto& p : net_.params()) before.push_back(*p.value);
  Rng rng(5);
  taylor_scores(net_, data_, 3, 16, rng);
  auto after = net_.params();
  for (std::size_t i = 0; i < after.size(); ++i)
    EXPECT_TRUE(after[i].value->equals(before[i]));
}

TEST_F(TaylorFixture, DeterministicForFixedRng) {
  Rng r1(6), r2(6);
  const TaylorScores a = taylor_scores(net_, data_, 3, 16, r1);
  const TaylorScores b = taylor_scores(net_, data_, 3, 16, r2);
  for (const auto& [name, s] : a.element) {
    const auto& s2 = b.element.at(name);
    for (std::size_t i = 0; i < s.size(); ++i) EXPECT_EQ(s[i], s2[i]);
  }
}

TEST_F(TaylorFixture, ValidatesInputs) {
  Rng rng(7);
  EXPECT_THROW(taylor_scores(net_, data_, 0, 16, rng), PreconditionError);
  nn::Dataset tiny = tiny_dataset(4, 8);
  EXPECT_THROW(taylor_scores(net_, tiny, 1, 16, rng), PreconditionError);
}

TEST_F(TaylorFixture, ScoredLadderIsNestedAndUsable) {
  Rng rng(9);
  const TaylorScores ts = taylor_scores(net_, data_, 4, 16, rng);
  auto lib = PruneLevelLibrary::build_structured_scored(
      net_, {0.0, 0.3, 0.6}, tiny_input_shape(), ts.channel);
  EXPECT_TRUE(lib.verify_nested());
  EXPECT_TRUE(lib.structured());
  core::ReversiblePruner rp(net_, std::move(lib));
  rp.set_level(2);
  rp.set_level(0);
}

TEST_F(TaylorFixture, ScoredBuilderSkipsMissingLayers) {
  Rng rng(10);
  TaylorScores ts = taylor_scores(net_, data_, 2, 16, rng);
  ts.channel.erase("fc1");
  auto lib = PruneLevelLibrary::build_structured_scored(
      net_, {0.0, 0.6}, tiny_input_shape(), ts.channel);
  for (const auto& cm : lib.channel_masks(1))
    EXPECT_NE(cm.layer_name, "fc1");
}

TEST_F(TaylorFixture, ScoredBuilderRejectsWidthMismatch) {
  std::map<std::string, std::vector<float>> bogus;
  bogus["conv1"] = {1.0f, 2.0f};  // conv1 has 6 channels
  EXPECT_THROW(PruneLevelLibrary::build_structured_scored(
                   net_, {0.0, 0.5}, tiny_input_shape(), bogus),
               PreconditionError);
}

TEST(NonUniform, ScalesThrottlePerLayerPruning) {
  nn::Network net = tiny_conv_net(11);
  std::map<std::string, double> scales{{"conv1", 0.25}, {"fc1", 1.0}};
  auto lib = PruneLevelLibrary::build_structured_nonuniform(
      net, {0.0, 0.8}, tiny_input_shape(), scales);
  EXPECT_TRUE(lib.verify_nested());
  const auto* conv_cm = find_channel_mask(lib.channel_masks(1), "conv1");
  const auto* fc_cm = find_channel_mask(lib.channel_masks(1), "fc1");
  ASSERT_NE(conv_cm, nullptr);
  ASSERT_NE(fc_cm, nullptr);
  const double conv_ratio =
      static_cast<double>(conv_cm->pruned_count()) / conv_cm->keep.size();
  const double fc_ratio =
      static_cast<double>(fc_cm->pruned_count()) / fc_cm->keep.size();
  EXPECT_LT(conv_ratio, fc_ratio);
  EXPECT_NEAR(conv_ratio, 0.8 * 0.25, 0.18);
}

TEST(NonUniform, RejectsOutOfRangeScale) {
  nn::Network net = tiny_conv_net(12);
  std::map<std::string, double> bad{{"conv1", 1.5}};
  EXPECT_THROW(PruneLevelLibrary::build_structured_nonuniform(
                   net, {0.0, 0.5}, tiny_input_shape(), bad),
               PreconditionError);
}

TEST(SensitivityScales, TolerancesNormalized) {
  std::vector<SensitivityPoint> pts;
  auto add = [&](const char* layer, double ratio, double acc) {
    pts.push_back({layer, ratio, acc, 0.0});
  };
  // robust: survives up to 0.8; fragile: dies after 0.2.
  add("robust", 0.0, 0.9);
  add("robust", 0.4, 0.89);
  add("robust", 0.8, 0.87);
  add("fragile", 0.0, 0.9);
  add("fragile", 0.2, 0.88);
  add("fragile", 0.4, 0.60);
  const auto scales = sensitivity_scales(pts, /*max_drop=*/0.05);
  EXPECT_DOUBLE_EQ(scales.at("robust"), 1.0);
  EXPECT_NEAR(scales.at("fragile"), 0.25, 1e-9);
}

TEST(SensitivityScales, FloorAppliesWhenNothingTolerated) {
  std::vector<SensitivityPoint> pts;
  pts.push_back({"l", 0.0, 0.9, 0.0});
  pts.push_back({"l", 0.5, 0.1, 0.0});
  const auto scales = sensitivity_scales(pts, 0.01, /*min_scale=*/0.3);
  EXPECT_DOUBLE_EQ(scales.at("l"), 0.3);
}

TEST(SensitivityScales, RequiresBaselinePoints) {
  std::vector<SensitivityPoint> pts;
  pts.push_back({"l", 0.5, 0.5, 0.0});
  EXPECT_THROW(sensitivity_scales(pts, 0.05), PreconditionError);
}

}  // namespace
}  // namespace rrp::prune

namespace rrp::prune {
namespace {

TEST(TaylorPurity, BatchNormStatsPreserved) {
  nn::Network net = rrp::testing::tiny_bn_net(20);
  nn::Dataset data = rrp::testing::tiny_dataset(100, 21);
  rrp::testing::quick_train(net, data, 2);
  auto* bn = dynamic_cast<nn::BatchNorm*>(net.find("bn1"));
  ASSERT_NE(bn, nullptr);
  const nn::Tensor mean_before = bn->running_mean();
  const nn::Tensor var_before = bn->running_var();
  Rng rng(22);
  taylor_scores(net, data, 4, 16, rng);
  EXPECT_TRUE(bn->running_mean().equals(mean_before));
  EXPECT_TRUE(bn->running_var().equals(var_before));
}

}  // namespace
}  // namespace rrp::prune
