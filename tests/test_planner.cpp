#include <gtest/gtest.h>

#include "prune/planner.h"
#include "test_support.h"
#include "util/checks.h"

namespace rrp::prune {
namespace {

using rrp::testing::tiny_conv_net;

TEST(PlanUnstructured, ZeroRatioIsEmpty) {
  nn::Network net = tiny_conv_net(1);
  const NetworkMask mask = plan_unstructured(net, 0.0);
  EXPECT_EQ(mask.pruned_count(), 0);
}

TEST(PlanUnstructured, GlobalRatioApproximatelyAchieved) {
  nn::Network net = tiny_conv_net(2);
  for (double ratio : {0.25, 0.5, 0.75}) {
    const NetworkMask mask = plan_unstructured(net, ratio);
    const double achieved = mask.sparsity(net);
    // Sparsity is over ALL params; biases are never pruned, so achieved is
    // slightly below the weight-only ratio.
    EXPECT_GT(achieved, ratio * 0.8) << ratio;
    EXPECT_LT(achieved, ratio * 1.05) << ratio;
  }
}

TEST(PlanUnstructured, PrunesSmallestMagnitudesFirst) {
  nn::Network net("n");
  auto& lin = net.emplace<nn::Linear>("fc", 4, 1, false);
  lin.weight() = nn::Tensor({1, 4}, {0.1f, -5.0f, 0.2f, 4.0f});
  const NetworkMask mask = plan_unstructured(net, 0.5);
  const auto* keep = mask.find("fc.weight");
  ASSERT_NE(keep, nullptr);
  EXPECT_EQ((*keep)[0], 0);  // 0.1 pruned
  EXPECT_EQ((*keep)[1], 1);  // -5 kept
  EXPECT_EQ((*keep)[2], 0);  // 0.2 pruned
  EXPECT_EQ((*keep)[3], 1);  // 4 kept
}

TEST(PlanUnstructured, PerLayerMode) {
  nn::Network net = tiny_conv_net(3);
  UnstructuredOptions opt;
  opt.global_threshold = false;
  const NetworkMask mask = plan_unstructured(net, 0.5, opt);
  // Each weight tensor is pruned at ~the same ratio.
  for (const auto& [name, keep] : mask.entries()) {
    std::size_t pruned = 0;
    for (auto k : keep) pruned += (k == 0);
    const double r = static_cast<double>(pruned) / keep.size();
    EXPECT_NEAR(r, 0.5, 0.02) << name;
  }
}

TEST(PlanUnstructured, NeverZeroesWholeTensor) {
  nn::Network net("n");
  auto& lin = net.emplace<nn::Linear>("fc", 2, 1, false);
  lin.weight() = nn::Tensor({1, 2}, {1e-9f, 1e-9f});
  const NetworkMask mask = plan_unstructured(net, 0.99);
  const auto* keep = mask.find("fc.weight");
  ASSERT_NE(keep, nullptr);
  EXPECT_GE(std::count(keep->begin(), keep->end(), 1), 1);
}

TEST(PlanUnstructured, RejectsBadRatio) {
  nn::Network net = tiny_conv_net(4);
  EXPECT_THROW(plan_unstructured(net, -0.1), PreconditionError);
  EXPECT_THROW(plan_unstructured(net, 1.0), PreconditionError);
}

TEST(PrunableLayers, ExcludesPinnedOutputs) {
  nn::Network net = tiny_conv_net(5);
  const auto layers = prunable_layers(net);
  std::vector<std::string> names;
  for (auto* l : layers) names.push_back(l->name());
  EXPECT_NE(std::find(names.begin(), names.end(), "conv1"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "fc1"), names.end());
  EXPECT_EQ(std::find(names.begin(), names.end(), "head"), names.end());
}

TEST(PlanStructured, RatioPerLayer) {
  nn::Network net = tiny_conv_net(6);
  const auto masks = plan_structured(net, 0.5);
  for (const auto& cm : masks) {
    const double r =
        static_cast<double>(cm.pruned_count()) / cm.keep.size();
    EXPECT_LE(r, 0.5 + 1e-9) << cm.layer_name;
    EXPECT_GT(r, 0.2) << cm.layer_name;
  }
}

TEST(PlanStructured, RespectsMinChannels) {
  nn::Network net = tiny_conv_net(7);
  StructuredOptions opt;
  opt.min_channels = 4;
  const auto masks = plan_structured(net, 0.9, opt);
  for (const auto& cm : masks) EXPECT_GE(cm.kept_count(), 4u);
}

TEST(PlanStructured, PrunesLowestScoringChannels) {
  nn::Network net("n");
  auto& conv = net.emplace<nn::Conv2D>("c", 1, 3, 2, 1, 0, false);
  conv.weight().fill(0.0f);
  conv.weight().at(0, 0, 0, 0) = 3.0f;
  conv.weight().at(1, 0, 0, 0) = 0.1f;
  conv.weight().at(2, 0, 0, 0) = 2.0f;
  const auto masks = plan_structured(net, 0.4);
  ASSERT_EQ(masks.size(), 1u);
  EXPECT_EQ(masks[0].keep[1], 0);  // weakest channel pruned
  EXPECT_EQ(masks[0].keep[0], 1);
  EXPECT_EQ(masks[0].keep[2], 1);
}

TEST(PlanStructured, ZeroRatioEmpty) {
  nn::Network net = tiny_conv_net(8);
  EXPECT_TRUE(plan_structured(net, 0.0).empty());
}

TEST(PlanStructured, RejectsBadOptions) {
  nn::Network net = tiny_conv_net(9);
  StructuredOptions opt;
  opt.min_channels = 0;
  EXPECT_THROW(plan_structured(net, 0.5, opt), PreconditionError);
  EXPECT_THROW(plan_structured(net, 1.0), PreconditionError);
}

}  // namespace
}  // namespace rrp::prune
