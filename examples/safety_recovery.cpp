// safety_recovery — the "back to the future" moment, frame by frame.
//
// The vehicle cruises with deep pruning active; a vehicle suddenly cuts in
// at critical TTC.  The demo walks the next frames one by one and shows
// the safety monitor vetoing the stale level, the reversible O(Δ) restore,
// and the assurance log entries a safety case would cite.
//
// Run from the repository root:   ./build/examples/safety_recovery
#include <iostream>

#include "models/trained_cache.h"
#include "sim/runner.h"
#include "util/csv.h"
#include "util/log.h"

using namespace rrp;

int main() {
  set_log_level(LogLevel::Warn);
  std::cout << "== sudden cut-in: reversible recovery demo ==\n\n";

  models::ProvisionedModel pm =
      models::get_provisioned(models::ModelKind::ResNetLite);
  core::ReversiblePruner provider = pm.make_pruner();
  core::SafetyConfig certified;
  certified.max_level_for = {4, 3, 1, 0};
  core::CriticalityGreedyPolicy policy(certified, 6, provider.level_count());
  core::SafetyMonitor monitor(certified);
  core::RuntimeController controller(policy, provider, &monitor);

  // Hand-scripted micro-scenario: 20 calm frames, then the cut-in.
  sim::Scenario sc;
  sc.name = "cutin-demo";
  sim::Scene scene;
  scene.ego_speed_mps = 25.0;
  scene.visibility = 0.95;
  for (int f = 0; f < 40; ++f) {
    if (f == 20) {
      sim::Actor cut;
      cut.type = sim::ActorType::Vehicle;
      cut.distance_m = 24.0;
      cut.closing_mps = 12.0;  // TTC = 2 s -> High, soon Critical
      scene.actors.push_back(cut);
    }
    sc.scenes.push_back(scene);
    sim::step_actors(scene, 1.0 / 30.0);
  }

  // Drive the loop manually so we can narrate each frame.
  sim::RunConfig cfg;
  cfg.deadline_ms = 12.0;
  Rng noise(99);
  const sim::CriticalityConfig crit_cfg;
  for (std::size_t f = 0; f < sc.scenes.size(); ++f) {
    const std::size_t sensed = f > 0 ? f - 1 : 0;  // one frame of latency
    core::ControlInput in;
    in.frame = static_cast<std::int64_t>(f);
    in.criticality = sim::classify_scene(sc.scenes[sensed], crit_cfg);
    in.deadline_ms = cfg.deadline_ms;
    const core::ControlDecision d = controller.step(in);

    if (f < 18 && f % 6 != 0 && !d.veto &&
        d.transition.from_level == d.transition.to_level)
      continue;  // keep the log readable during steady cruise
    std::cout << "frame " << f << ": criticality "
              << core::criticality_name(in.criticality) << ", level "
              << provider.current_level();
    if (d.transition.from_level != d.transition.to_level)
      std::cout << "  <- switched " << d.transition.from_level << " -> "
                << d.transition.to_level << " ("
                << d.transition.elements_changed << " weights, "
                << fmt(d.transition.wall_us, 1) << " us)";
    if (d.veto) std::cout << "  [SAFETY VETO of level " << d.requested_level
                          << "]";
    std::cout << "\n";
  }

  // Act two: a (deliberately) reckless planner keeps demanding the deepest
  // level during the hazard — the safety monitor vetoes it every frame.
  std::cout << "\n-- act two: buggy planner demands L4 during the hazard --\n";
  core::FixedPolicy reckless(4);
  core::RuntimeController buggy(reckless, provider, &monitor);
  for (std::size_t f = 30; f < 36; ++f) {
    core::ControlInput in;
    in.frame = static_cast<std::int64_t>(f + 100);  // distinct log frames
    in.criticality = sim::classify_scene(sc.scenes[f], crit_cfg);
    const core::ControlDecision d = buggy.step(in);
    std::cout << "frame " << in.frame << ": criticality "
              << core::criticality_name(in.criticality) << ", requested L"
              << d.requested_level << " -> enforced L" << d.enforced_level
              << (d.veto ? "  [SAFETY VETO]" : "") << "\n";
  }

  std::cout << "\nassurance log (" << monitor.log().size() << " entries):\n";
  for (const auto& rec : monitor.log())
    std::cout << "  frame " << rec.frame << ": criticality "
              << core::criticality_name(rec.criticality) << ", requested L"
              << rec.requested_level << " -> enforced L"
              << rec.enforced_level << (rec.veto ? " (veto)" : "")
              << (rec.violation ? " (VIOLATION)" : "") << "\n";
  std::cout << "\nviolations: " << monitor.violation_count()
            << " — the reversible runtime restored before any frame "
               "executed above its certified level.\n";
  return 0;
}
