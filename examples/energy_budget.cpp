// energy_budget — the hybrid policy under a shrinking energy budget.
//
// The same urban drive is run with three mission energy budgets.  As the
// remaining budget falls through the policy's watermark, the controller
// escalates pruning in calm traffic while the safety monitor keeps the
// criticality ladder intact — energy-aware but never uncertified.
//
// Run from the repository root:   ./build/examples/energy_budget
#include <iostream>

#include "models/trained_cache.h"
#include "sim/runner.h"
#include "sim/suites.h"
#include "util/csv.h"
#include "util/log.h"

using namespace rrp;

int main() {
  set_log_level(LogLevel::Warn);
  std::cout << "== energy-budgeted urban drive (hybrid policy) ==\n\n";

  models::ProvisionedModel pm =
      models::get_provisioned(models::ModelKind::LeNet);
  core::SafetyConfig certified;
  certified.max_level_for = {4, 3, 1, 0};

  // Profile the ladder once (the policy's knowledge base).
  sim::RunConfig cfg;
  cfg.deadline_ms = 5.0;
  const sim::PlatformModel platform(cfg.platform);
  core::LevelProfile profile;
  {
    core::ReversiblePruner probe = pm.make_pruner();
    profile = sim::profile_levels(probe, platform, pm.eval_data,
                                  models::zoo_input_shape());
  }
  std::cout << "level profile (latency ms / energy mJ / accuracy):\n";
  for (int k = 0; k < profile.count(); ++k)
    std::cout << "  L" << k << ": " << fmt(profile.latency_ms[k], 3) << " / "
              << fmt(profile.energy_mj[k], 3) << " / "
              << fmt(profile.accuracy[k], 3) << "\n";

  const sim::Scenario scenario = sim::make_urban(1200, 17);
  TableFormatter table({"budget_mJ", "energy_used_mJ", "mean_level",
                        "accuracy", "missed_crit_%", "violations"});
  for (double budget : {0.0, 120.0, 60.0}) {
    core::ReversiblePruner provider = pm.make_pruner();
    core::HybridPolicy policy(certified, profile, 6);
    core::SafetyMonitor monitor(certified);
    core::RuntimeController controller(policy, provider, &monitor);
    sim::RunConfig run_cfg = cfg;
    run_cfg.energy_budget_mj = budget;
    const core::RunSummary s =
        sim::run_scenario(scenario, controller, run_cfg).summary;
    table.row({budget == 0.0 ? "unlimited" : fmt(budget, 0),
               fmt(s.total_energy_mj, 1), fmt(s.mean_level, 2),
               fmt(s.accuracy, 3), fmt(100.0 * s.missed_critical_rate, 1),
               std::to_string(s.safety_violations)});
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nA tighter budget pushes the mean level up in calm frames; "
               "certified caps never move, so violations stay at zero.\n";
  return 0;
}
