// adaptive_highway — the full closed loop on the highway suite.
//
// Provisions a trained, co-trained LeNet (disk-cached), wires the MAPE-K
// runtime controller with a safety monitor, runs 30 s of highway driving
// with lead-vehicle braking events, prints the run summary, and exports
// the per-frame telemetry to highway_telemetry.csv for plotting.
//
// Run from the repository root:   ./build/examples/adaptive_highway
#include <fstream>
#include <iostream>

#include "models/trained_cache.h"
#include "sim/runner.h"
#include "sim/suites.h"
#include "util/csv.h"
#include "util/log.h"

using namespace rrp;

int main() {
  set_log_level(LogLevel::Info);
  std::cout << "== adaptive highway drive ==\n";

  models::ProvisionedModel pm =
      models::get_provisioned(models::ModelKind::ResNetLite);
  std::cout << "resnetlite per-level accuracy:";
  for (double a : pm.level_accuracy) std::cout << " " << fmt(a, 3);
  std::cout << "\n";

  core::ReversiblePruner provider = pm.make_pruner();
  // Certified ladder chosen from the measured per-level accuracy above
  // (every resnetlite level holds up; Critical still demands the full
  // network).
  core::SafetyConfig certified;
  certified.max_level_for = {4, 3, 1, 0};
  core::CriticalityGreedyPolicy policy(certified, /*hysteresis=*/6,
                                       provider.level_count());
  core::SafetyMonitor monitor(certified);
  core::RuntimeController controller(policy, provider, &monitor);

  const sim::Scenario scenario = sim::make_highway(900, /*seed=*/7);
  sim::RunConfig cfg;
  cfg.deadline_ms = 12.0;
  const sim::RunResult result = sim::run_scenario(scenario, controller, cfg);

  const core::RunSummary& s = result.summary;
  std::cout << "\nframes            : " << s.frames
            << "\naccuracy          : " << fmt(s.accuracy, 3)
            << "\ncritical accuracy : " << fmt(s.critical_accuracy, 3)
            << "\nmean level        : " << fmt(s.mean_level, 2)
            << "\nlevel switches    : " << s.level_switches
            << "\nmean switch cost  : " << fmt(s.mean_switch_us, 1) << " us"
            << "\ntotal energy      : " << fmt(s.total_energy_mj, 1) << " mJ"
            << "\nsafety vetoes     : " << s.vetoes
            << "\nsafety violations : " << s.safety_violations << "\n";

  std::ofstream csv("highway_telemetry.csv");
  result.telemetry.write_csv(csv);
  std::cout << "\nper-frame telemetry written to highway_telemetry.csv\n";
  return 0;
}
