// quickstart — the rrp library in ~80 lines.
//
// Builds a small CNN, trains it on the synthetic vision task, constructs a
// nested pruning-level ladder, and demonstrates the core operation:
// O(Δ) level switching with bit-exact restore ("back to the future").
//
// Run from the repository root:   ./build/examples/quickstart
#include <iostream>

#include "core/reversible_pruner.h"
#include "nn/init.h"
#include "nn/train.h"
#include "sim/vision_task.h"
#include "util/csv.h"
#include "util/log.h"

using namespace rrp;

int main() {
  set_log_level(LogLevel::Warn);
  std::cout << "== rrp quickstart ==\n\n";

  // 1. A small perception network (structured-prunable conv + fc).
  nn::Network net("quickstart-net");
  net.emplace<nn::Conv2D>("conv1", 1, 8, 3, 1, 1);
  net.emplace<nn::ReLU>("relu1");
  net.emplace<nn::MaxPool>("pool1", 2, 2);
  net.emplace<nn::Flatten>("flatten");
  net.emplace<nn::Linear>("fc1", 8 * 8 * 8, 24);
  net.emplace<nn::ReLU>("relu2");
  auto& head = net.emplace<nn::Linear>("head", 24, sim::kNumClasses);
  head.set_out_prunable(false);  // class count is pinned
  Rng init_rng(1);
  nn::init_network(net, init_rng);

  // 2. Train briefly on the synthetic driving-perception task.
  sim::VisionTaskConfig task;
  Rng data_rng(2);
  const nn::Dataset train = sim::make_dataset(1500, task, data_rng);
  const nn::Dataset eval = sim::make_dataset(400, task, data_rng);
  nn::SgdConfig sgd;
  sgd.epochs = 6;
  Rng train_rng(3);
  nn::train_sgd(net, train, sgd, train_rng);
  std::cout << "trained: eval accuracy = "
            << fmt(nn::evaluate_accuracy(net, eval), 3) << "\n\n";

  // 3. Build a nested structured level ladder (0%, 30%, 60% of channels).
  auto levels = prune::PruneLevelLibrary::build_structured(
      net, {0.0, 0.3, 0.6}, sim::input_shape(task));
  std::cout << "levels nested: " << std::boolalpha << levels.verify_nested()
            << "\n\n";

  // 4. The reversible runtime: switch levels, then come back — exactly.
  core::ReversiblePruner pruner(net, levels);
  const nn::Shape in = sim::input_shape(task);
  for (int k = 0; k < pruner.level_count(); ++k) {
    const auto t = pruner.set_level(k);
    std::cout << "level " << k << ": sparsity "
              << fmt(levels.mask(k).sparsity(net), 3) << ", accuracy "
              << fmt(nn::evaluate_accuracy(net, eval), 3) << ", MACs "
              << pruner.active_macs(in) << " (switch touched "
              << t.elements_changed << " weights in " << fmt(t.wall_us, 1)
              << " us)\n";
  }

  const auto restore = pruner.restore_full();
  std::cout << "\nrestore to level 0: " << restore.elements_changed
            << " weights copied back in " << fmt(restore.wall_us, 1)
            << " us — accuracy "
            << fmt(nn::evaluate_accuracy(net, eval), 3)
            << " (bit-exact golden weights)\n";
  return 0;
}
