// trace_replay — record a scenario, replay it bit-for-bit, and export the
// machine-readable safety-case evidence.
//
// Workflow a certification engineer would actually run:
//   1. generate (or import) a traffic trace and archive it as CSV,
//   2. replay the archived trace through the closed loop,
//   3. export the assurance report (certified ladder, run summary on both
//      sensed and ground-truth bases, veto/violation log) as JSON.
//
// Run from the repository root:   ./build/examples/trace_replay
#include <fstream>
#include <iostream>

#include "core/assurance_export.h"
#include "models/trained_cache.h"
#include "sim/runner.h"
#include "sim/suites.h"
#include "sim/trace_io.h"
#include "util/csv.h"
#include "util/log.h"

using namespace rrp;

int main() {
  set_log_level(LogLevel::Warn);
  std::cout << "== trace record / replay / assurance export ==\n\n";

  // 1. Record: archive a cut-in scenario as a CSV trace.
  const sim::Scenario original = sim::make_cut_in(600, 42);
  sim::save_scenario_csv(original, "cutin_trace.csv");
  std::cout << "recorded " << original.frame_count()
            << " frames to cutin_trace.csv\n";

  // 2. Replay: load the archive and drive the closed loop from it.
  const sim::Scenario replayed = sim::load_scenario_csv("cutin_trace.csv");
  models::ProvisionedModel pm =
      models::get_provisioned(models::ModelKind::ResNetLite);
  core::ReversiblePruner provider = pm.make_pruner();
  core::SafetyConfig certified;
  certified.max_level_for = {4, 3, 1, 0};
  core::CriticalityGreedyPolicy policy(certified, 6, provider.level_count());
  core::SafetyMonitor monitor(certified);
  core::RuntimeController controller(policy, provider, &monitor);

  sim::RunConfig cfg;
  cfg.deadline_ms = 12.0;
  const sim::RunResult result = sim::run_scenario(replayed, controller, cfg);
  std::cout << "replayed: accuracy " << fmt(result.summary.accuracy, 3)
            << ", mean level " << fmt(result.summary.mean_level, 2)
            << ", switches " << result.summary.level_switches
            << ", violations (sensed/true) "
            << result.summary.safety_violations << "/"
            << result.summary.true_safety_violations << "\n";

  // 3. Evidence: export the assurance report.
  core::AssuranceReport report;
  report.scenario = result.scenario;
  report.provider = result.provider;
  report.policy = result.policy;
  report.certified = certified;
  report.summary = result.summary;
  report.log = monitor.log();
  std::ofstream json("cutin_assurance.json");
  core::write_assurance_json(report, json);
  std::cout << "assurance evidence written to cutin_assurance.json\n";
  return 0;
}
