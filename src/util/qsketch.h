// qsketch.h — mergeable fixed-size quantile sketch (DESIGN.md §"Statistical
// safety case").
//
// The Monte-Carlo campaign driver (sim/campaign.h) folds millions of
// per-frame observations into a handful of accumulators whose size must not
// grow with the number of cells.  Vector-based quantiles (util/stats.h)
// are O(samples); this sketch is O(1): a logarithmic bucket array with a
// guaranteed RELATIVE accuracy, in the spirit of DDSketch (Masson et al.).
//
// Layout.  With accuracy parameter γ the bucket base is
// b = (1+γ)/(1-γ); positive magnitudes in [min_abs, max_abs) land in
// bucket i = floor(log(|v|/min_abs) / log(b)), covering
// [min_abs·bⁱ, min_abs·bⁱ⁺¹).  Negative values mirror into a second array
// (deadline slack goes negative on overruns), |v| < min_abs collapses into
// an exact-zero bucket, and |v| >= max_abs clamps into the top bucket.
// A bucket's representative value is its geometric midpoint min_abs·bⁱ·√b.
//
// Accuracy bound.  Any quantile's representative is off from a true sample
// in its bucket by a relative factor of at most √b - 1 = √((1+γ)/(1-γ)) - 1
// ≈ γ (1.005 % for the default γ = 0.01).  Exact min/max are tracked on
// the side and quantile() clamps into [min, max], so q=0 / q=1 are exact.
//
// Mergeability.  merge() adds bucket counts — integer addition, so the
// result is independent of merge order and merge(a, merge(b, c)) equals
// merge(merge(a, b), c) bit-for-bit.  This is what makes the campaign's
// aggregates thread-count-invariant: per-cell sketches fold in a fixed
// cell order, but any order would produce the same bytes.  No floating
// accumulator (sum/mean) lives in the sketch for exactly this reason.
#pragma once

#include <cstdint>
#include <vector>

namespace rrp {

class QuantileSketch {
 public:
  struct Config {
    double gamma = 0.01;    ///< relative accuracy target (0 < γ < 1)
    double min_abs = 1e-6;  ///< |v| below this is counted as exactly zero
    double max_abs = 1e9;   ///< |v| at or above this clamps to the top bucket

    bool operator==(const Config& o) const {
      return gamma == o.gamma && min_abs == o.min_abs && max_abs == o.max_abs;
    }
  };

  QuantileSketch() : QuantileSketch(Config{}) {}
  explicit QuantileSketch(Config cfg);

  void add(double v) { add_n(v, 1); }
  void add_n(double v, std::int64_t n);

  /// Adds `other`'s counts into this sketch.  Configs must match.
  void merge(const QuantileSketch& other);

  std::int64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Exact extremes of every value ever added (0 when empty).
  double min() const;
  double max() const;

  /// q in [0, 1]; returns the representative of the bucket holding the
  /// ceil(q·count)-th smallest sample, clamped into [min(), max()].
  /// Returns 0 when empty.
  double quantile(double q) const;

  const Config& config() const { return cfg_; }
  /// Total bucket slots (fixed at construction; memory is O(this)).
  std::size_t bucket_count() const { return 2 * pos_.size() + 1; }

 private:
  std::size_t bucket_index(double abs_v) const;
  double bucket_value(std::size_t i) const;

  Config cfg_;
  double inv_log_base_ = 0.0;  ///< 1 / log(b)
  double sqrt_base_ = 1.0;     ///< √b: bucket geometric midpoint factor
  std::vector<std::int64_t> pos_, neg_;
  std::int64_t zero_ = 0;
  std::int64_t count_ = 0;
  double min_ = 0.0, max_ = 0.0;
};

}  // namespace rrp
