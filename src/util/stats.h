// stats.h — small descriptive-statistics helpers used by telemetry,
// benchmarks and tests.  All functions are pure; Summary is a value type.
#pragma once

#include <cstddef>
#include <vector>

namespace rrp {

/// Descriptive summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1), 0 if count < 2
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Computes the full summary of a sample. Returns a zeroed Summary if empty.
Summary summarize(const std::vector<double>& xs);

/// Arithmetic mean; 0 for an empty sample.
double mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator); 0 if fewer than two values.
double stddev(const std::vector<double>& xs);

/// Linear-interpolated quantile, q in [0,1]. Precondition: xs non-empty.
double quantile(std::vector<double> xs, double q);

/// Streaming mean/variance accumulator (Welford), used by telemetry so we
/// never need to retain per-frame vectors for long scenarios.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< sample variance, 0 if count < 2
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace rrp
