// trace.h — deterministic nested span tracing (DESIGN.md §8).
//
// `RRP_SPAN("name")` opens an RAII scope that records a span on the
// process-wide timeline.  The layer is built to serve as a *regression
// oracle*, so its default output is bit-reproducible:
//
//   * Timestamps are a monotonically increasing EVENT SEQUENCE COUNTER,
//     not wall-clock.  Every span begin/end consumes one tick, so the
//     timeline orders events without ever reading a clock.
//   * Modeled time (the platform-model microseconds the simulator charges
//     a frame) is attached to spans explicitly via `add_modeled_us`; it is
//     pure arithmetic and byte-exact across RRP_THREADS.
//   * Spans opened inside a ThreadPool parallel region (worker chunks AND
//     the inline chunks the caller runs itself) are suppressed, so the
//     recorded stream is identical for any thread count, including 1.
//   * Wall-clock capture is OFF by default.  `set_wall_clock(true)` adds a
//     wall_us column/arg for profiling; doing so forfeits byte-identity
//     and is never used by tests or golden traces.
//
// Recording is single-threaded by contract: spans are only recorded on
// the thread that drives the pool (suppression enforces this — any thread
// executing pool chunks is inside a parallel region).  Tracing is off by
// default; enable with `set_enabled(true)` or the RRP_TRACE=1 env var.
//
// Exporters: Chrome trace_event JSON (chrome://tracing / Perfetto) and a
// per-frame span CSV.  See core/metrics.h for the counterpart metrics
// registry snapshot.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rrp::trace {

namespace detail {
extern std::atomic<bool> g_enabled;  // defined in trace.cpp
}

/// One closed span on the timeline.  `begin_seq`/`end_seq` are event
/// sequence ticks (deterministic); `modeled_us` is platform-model time
/// attributed by the instrumentation site; `items` is a site-defined
/// payload (FLOPs, elements, bytes...); `wall_us` is 0 unless wall-clock
/// capture was enabled.
struct SpanRecord {
  std::string name;
  std::int32_t depth = 0;    // nesting depth at open (0 = top level)
  std::int64_t frame = -1;   // simulator frame tag, -1 outside a frame
  std::int64_t begin_seq = 0;
  std::int64_t end_seq = 0;
  double modeled_us = 0.0;
  std::int64_t items = 0;
  double wall_us = 0.0;
};

/// Fast path: one relaxed atomic load when tracing is off.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// Wall-clock capture (adds wall_us; forfeits byte-identity). Off by
/// default and independent of `enabled()`.
bool wall_clock_enabled();
void set_wall_clock(bool on);

/// Drops all records and restarts the sequence counter at 0.  Open Span
/// objects from before the reset become inert (their end is discarded).
void reset();

/// Tags subsequently opened spans with a simulator frame index (-1 =
/// untagged).  Prefer the ScopedFrame RAII helper.
void set_frame(std::int64_t frame);
std::int64_t current_frame();

/// Closed spans in completion order.  Invalidated by reset().
const std::vector<SpanRecord>& spans();

/// Spans discarded because the record cap was hit (bounded memory).
std::int64_t dropped_spans();

/// RAII span scope.  Construction/destruction cost when tracing is off or
/// inside a parallel region: one relaxed load (+ one branch).
class Span {
 public:
  explicit Span(const char* name) {
    if (enabled()) begin_(name);
  }
  ~Span() {
    if (slot_ >= 0) end_();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when this span is actually being recorded.
  bool active() const { return slot_ >= 0; }

  /// Attributes platform-model time / a payload count to this span.
  void add_modeled_us(double us);
  void add_items(std::int64_t n);

 private:
  void begin_(const char* name);
  void end_();

  std::int64_t slot_ = -1;        // index into the record vector, -1 = inert
  std::uint32_t generation_ = 0;  // guards against reset() mid-span
};

/// RAII frame tag: set_frame(frame) now, restore the previous tag on exit.
class ScopedFrame {
 public:
  explicit ScopedFrame(std::int64_t frame) : saved_(current_frame()) {
    set_frame(frame);
  }
  ~ScopedFrame() { set_frame(saved_); }
  ScopedFrame(const ScopedFrame&) = delete;
  ScopedFrame& operator=(const ScopedFrame&) = delete;

 private:
  std::int64_t saved_;
};

/// Chrome trace_event JSON ("X" complete events, ts/dur in sequence
/// ticks, modeled_us/items/frame in args).  Loads in about:tracing and
/// Perfetto.
void write_chrome_trace(std::ostream& out);

/// Per-frame span CSV: id,frame,depth,name,begin_seq,end_seq,modeled_us,
/// items (+wall_us when wall-clock capture is on).
void write_span_csv(std::ostream& out);

std::string chrome_trace_string();
std::string span_csv_string();

}  // namespace rrp::trace

#define RRP_TRACE_CAT2(a, b) a##b
#define RRP_TRACE_CAT(a, b) RRP_TRACE_CAT2(a, b)
/// Opens a span for the rest of the enclosing scope.
#define RRP_SPAN(name) \
  ::rrp::trace::Span RRP_TRACE_CAT(rrp_span_, __LINE__)(name)
/// Same, but names the Span object so the site can add payloads.
#define RRP_SPAN_VAR(var, name) ::rrp::trace::Span var(name)
