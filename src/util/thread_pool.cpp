#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>

#include "util/checks.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace rrp {

namespace {

thread_local bool tls_in_worker = false;
// True while a chunk body runs on this thread via the inline serial path
// (tls_in_worker covers the worker/drain paths).  Together they make
// in_parallel_region() thread-count-invariant.
thread_local bool tls_in_chunk = false;

// RAII so an exception thrown by a chunk body cannot leave the flag set.
struct ChunkFlagGuard {
  ChunkFlagGuard() : saved(tls_in_chunk) { tls_in_chunk = true; }
  ~ChunkFlagGuard() { tls_in_chunk = saved; }
  bool saved;
};

int clamp_threads(int threads) { return std::max(1, threads); }

int env_default_threads() {
  const char* env = std::getenv("RRP_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && v >= 1 && v <= 1024)
      return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::mutex global_mutex;
std::unique_ptr<ThreadPool> global_pool;
std::atomic<ThreadPool*> global_pool_fast{nullptr};  // lock-free hot path
int global_threads_override = 0;  // 0 = derive from env / hardware

}  // namespace

ThreadPool::ThreadPool(int threads) : threads_(clamp_threads(threads)) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::in_worker() { return tls_in_worker; }

bool ThreadPool::in_parallel_region() { return tls_in_worker || tls_in_chunk; }

void ThreadPool::drain_job(std::unique_lock<std::mutex>& lock) {
  while (job_.next_chunk < job_.chunk_count) {
    const std::int64_t chunk = job_.next_chunk++;
    const std::int64_t b = job_.begin + chunk * job_.grain;
    const std::int64_t e = std::min(b + job_.grain, job_.end);
    const ChunkFn* fn = job_.fn;
    lock.unlock();
    // The caller drains chunks too; flag it while a chunk body runs so a
    // nested parallel_for from inside the body goes down the inline-serial
    // path instead of trying to post a second job (workers set the flag
    // permanently in worker_loop; save/restore makes this a no-op there).
    const bool was_in_worker = tls_in_worker;
    tls_in_worker = true;
    std::exception_ptr error;
    try {
      (*fn)(b, e);
    } catch (...) {
      error = std::current_exception();
    }
    tls_in_worker = was_in_worker;
    lock.lock();
    if (error && !job_.error) job_.error = error;
    ++job_.done_chunks;
  }
}

void ThreadPool::worker_loop() {
  tls_in_worker = true;
  std::unique_lock<std::mutex> lock(mutex_);
  std::uint64_t seen_serial = 0;
  while (true) {
    work_cv_.wait(lock, [&] {
      return stop_ || (has_job_ && job_serial_ != seen_serial);
    });
    if (stop_) return;
    seen_serial = job_serial_;
    drain_job(lock);
    if (job_.done_chunks == job_.chunk_count) done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::int64_t begin, std::int64_t end,
                              std::int64_t grain, const ChunkFn& fn) {
  if (begin >= end) return;
  grain = std::max<std::int64_t>(1, grain);
  const std::int64_t chunks = (end - begin + grain - 1) / grain;

  // Job/chunk counts depend only on (begin, end, grain), so these totals
  // are byte-identical for any thread count.
  static metrics::Counter& jobs = metrics::counter("pool.jobs");
  static metrics::Counter& chunk_count = metrics::counter("pool.chunks");
  jobs.add(1);
  chunk_count.add(chunks);
  RRP_SPAN_VAR(span, "pool.parallel_for");
  span.add_items(chunks);

  // Serial paths: single chunk, single-thread pool, or a nested call from
  // inside a worker.  Running inline keeps pool size 1 byte-identical to
  // the legacy engine and makes nested parallel_for safe.
  if (chunks == 1 || threads_ == 1 || tls_in_worker) {
    for (std::int64_t c = 0; c < chunks; ++c) {
      const std::int64_t b = begin + c * grain;
      ChunkFlagGuard in_chunk;
      fn(b, std::min(b + grain, end));
    }
    return;
  }

  std::unique_lock<std::mutex> lock(mutex_);
  RRP_CHECK_MSG(!has_job_, "ThreadPool::parallel_for is not reentrant from "
                           "multiple external threads");
  job_ = Job{};
  job_.fn = &fn;
  job_.begin = begin;
  job_.end = end;
  job_.grain = grain;
  job_.chunk_count = chunks;
  has_job_ = true;
  ++job_serial_;
  work_cv_.notify_all();

  // The caller participates, then waits for stragglers.
  drain_job(lock);
  done_cv_.wait(lock, [&] { return job_.done_chunks == job_.chunk_count; });
  has_job_ = false;
  const std::exception_ptr error = job_.error;
  job_ = Job{};
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::global() {
  ThreadPool* fast = global_pool_fast.load(std::memory_order_acquire);
  if (fast != nullptr) return *fast;
  std::lock_guard<std::mutex> lock(global_mutex);
  if (!global_pool) {
    const int n =
        global_threads_override > 0 ? global_threads_override
                                    : env_default_threads();
    global_pool = std::make_unique<ThreadPool>(n);
  }
  global_pool_fast.store(global_pool.get(), std::memory_order_release);
  return *global_pool;
}

void ThreadPool::set_global_threads(int threads) {
  std::lock_guard<std::mutex> lock(global_mutex);
  global_threads_override = clamp_threads(threads);
  if (global_pool && global_pool->thread_count() == global_threads_override)
    return;
  global_pool_fast.store(nullptr, std::memory_order_release);
  global_pool.reset();  // joins workers; respawned lazily at the new size
}

int ThreadPool::global_thread_count() {
  std::lock_guard<std::mutex> lock(global_mutex);
  if (global_pool) return global_pool->thread_count();
  return global_threads_override > 0 ? global_threads_override
                                     : env_default_threads();
}

}  // namespace rrp
