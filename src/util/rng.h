// rng.h — deterministic pseudo-random number generation.
//
// Every stochastic component in the library (weight init, synthetic data,
// scenario generation) takes an explicit Rng so that experiments are
// bit-reproducible across runs and platforms.  The generator is
// xoshiro256**, seeded via splitmix64, which is fast, high quality and
// trivially portable (no <random> engine-implementation divergence).
#pragma once

#include <cstdint>
#include <vector>

namespace rrp {

/// Deterministic 64-bit PRNG (xoshiro256**), explicit-seed only.
class Rng {
 public:
  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, n). Precondition: n > 0.
  std::uint64_t uniform_u64(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int uniform_int(int lo, int hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (cached second variate).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Returns an index in [0, weights.size()) with probability proportional
  /// to weights[i]. Precondition: weights non-empty, all >= 0, sum > 0.
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derives an independent child generator; stable given the call sequence.
  Rng fork();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace rrp
