// wprof.h — wall-clock sampling profiler (the MEASURED channel).
//
// Everything else in the observability stack (trace spans, metrics,
// telemetry) is *modeled* time and byte-deterministic; wprof is the one
// sanctioned place where measured wall time is aggregated, exactly like
// `bench_micro --wall`:
//
//   * disabled by default — record() is a no-op until set_enabled(true)
//     (rrp_cli serve --wall / bench_serve --wall flip it);
//   * output never feeds telemetry, trace, metrics or any gate — it is
//     rendered only into the wall channel (console table, wall_metrics);
//   * keys are free-form spans ("infer.L2", "stream.cam_front"), so the
//     serve path gets per-kernel and per-level breakdowns for free.
//
// Aggregation is mutex-guarded (NOT deterministic, by design: measured
// time never is) and the map is keyed by std::string in a std::map, so
// stats() render in sorted key order — stable layout over unstable
// numbers.  wprof must never be called from an // rrp-frame-path root
// (the mutex would trip lint R6); the serve tick fold and the frame
// engine's measure_wall block are the intended call sites.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/timer.h"

namespace rrp::wprof {

/// Global enable switch; record() is a no-op while disabled.
bool enabled();
void set_enabled(bool on);

/// Adds one measured sample (microseconds) under `key`.  Thread-safe;
/// no-op while disabled.
void record(const std::string& key, double us);

/// Aggregated view of one key.
struct Stat {
  std::string key;
  std::int64_t count = 0;
  double total_us = 0.0;
  double max_us = 0.0;
  double mean_us() const { return count > 0 ? total_us / count : 0.0; }
};

/// All stats in sorted key order (empty while nothing was recorded).
std::vector<Stat> stats();

/// "key,count,total_us,mean_us,max_us" CSV of stats().
std::string csv_string();

/// Drops every aggregate (the enable switch is left as-is).
void reset();

/// RAII sample: measures construction->destruction wall time (through
/// the rrp::Timer facade — wprof itself never reads a clock directly)
/// and records it under `key`.  A sample is only recorded when the
/// profiler was enabled at construction AND is still enabled at
/// destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string key);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string key_;
  Timer timer_;
  bool armed_ = false;  // enabled() at construction
};

}  // namespace rrp::wprof
