#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/checks.h"

namespace rrp {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  RRP_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

int Rng::uniform_int(int lo, int hi) {
  RRP_CHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(hi) - lo) + 1;
  return lo + static_cast<int>(uniform_u64(span));
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] to keep log finite.
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::categorical(const std::vector<double>& weights) {
  RRP_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    RRP_CHECK_MSG(w >= 0.0, "negative categorical weight " << w);
    total += w;
  }
  RRP_CHECK(total > 0.0);
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point edge: land on the last bucket
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    std::size_t j = uniform_u64(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

Rng Rng::fork() { return Rng(next_u64() ^ 0xA5A5A5A55A5A5A5Aull); }

}  // namespace rrp
