// timer.h — wall-clock timing helpers for recovery-latency and inference
// benchmarks.  Header-only.
#pragma once

#include <chrono>
#include <cstdint>

namespace rrp {

/// Monotonic stopwatch with microsecond resolution.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed time since construction / last reset, in seconds.
  double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_s() * 1e3; }
  double elapsed_us() const { return elapsed_s() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace rrp
