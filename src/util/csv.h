// csv.h — tiny CSV / table emitter used by benches and telemetry export.
//
// Two front-ends over the same row model:
//   * CsvWriter      — RFC-4180-ish CSV to any std::ostream (or file).
//   * TableFormatter — aligned, human-readable console tables, so each
//                      bench binary can print paper-style rows directly.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace rrp {

/// Escapes a single CSV field (quotes when it contains , " or newline).
std::string csv_escape(const std::string& field);

/// Reads one RFC-4180 record from `in` into `fields`: quoted fields may
/// contain commas, doubled quotes ("" -> "), and embedded newlines (the
/// record then spans physical lines).  Accepts LF and CRLF terminators.
/// Returns false (fields empty) at end of input; throws SerializationError
/// on an unterminated quoted field.
bool read_csv_record(std::istream& in, std::vector<std::string>& fields);

/// Parses a single line as one RFC-4180 record.  Throws SerializationError
/// if the line is malformed (unterminated quote, or trailing content after
/// a record terminator — i.e. more than one record on the line).
std::vector<std::string> parse_csv_line(const std::string& line);

/// Streams rows of string fields as CSV. The header is optional but, once
/// written, every row must have the same arity (checked).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void header(const std::vector<std::string>& names);
  void row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with fixed precision.
  static std::string num(double v, int precision = 6);

 private:
  std::ostream* out_;
  std::size_t arity_ = 0;  // 0 until the first header/row fixes it
};

/// Collects rows then prints an aligned ASCII table.
class TableFormatter {
 public:
  explicit TableFormatter(std::vector<std::string> header);

  void row(std::vector<std::string> fields);
  void print(std::ostream& out) const;
  /// Also emit the same content as CSV (for scripting / plotting).
  void print_csv(std::ostream& out) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double like "12.3", trimming trailing zeros sensibly.
std::string fmt(double v, int precision = 3);

}  // namespace rrp
