// thread_pool.h — deterministic fixed-size thread pool for data-parallel
// kernels and embarrassingly parallel experiment loops.
//
// Design constraints (DESIGN.md §2, "Threading"):
//   * Determinism: `parallel_for` splits [begin, end) into chunks whose
//     boundaries depend only on (begin, end, grain) — never on the thread
//     count or on scheduling.  Callers arrange that every chunk writes a
//     disjoint output region (or that cross-chunk reductions happen in a
//     fixed chunk order on the calling thread), so results are bit-exact
//     and identical for any RRP_THREADS value, including 1.
//   * Legacy serial path: a pool of size 1 never spawns threads and runs
//     every chunk inline on the caller, reproducing the pre-threading
//     engine instruction-for-instruction.
//   * Reentrancy: `parallel_for` called from inside a worker runs serially
//     inline (no nested fan-out, no deadlock on the single job slot).
//   * Exceptions: the first exception thrown by any chunk is captured and
//     rethrown on the calling thread after all chunks finish.
//
// The process-wide pool is sized by, in priority order: the last
// `set_global_threads()` call (the `rrp_cli --threads` flag), the
// RRP_THREADS environment variable, then `hardware_concurrency()`.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rrp {

class ThreadPool {
 public:
  /// Chunk body: processes the half-open index range [chunk_begin,
  /// chunk_end).
  using ChunkFn = std::function<void(std::int64_t, std::int64_t)>;

  /// Spawns `threads - 1` workers (the caller participates as the Nth).
  /// `threads` is clamped to >= 1; a pool of size 1 owns no threads.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return threads_; }

  /// Runs fn over [begin, end) split into ceil((end-begin)/grain) chunks.
  /// Chunk k covers [begin + k*grain, min(begin + (k+1)*grain, end)).
  /// Chunks may execute concurrently and in any order; see the header
  /// comment for the determinism contract.  `grain` is clamped to >= 1.
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    const ChunkFn& fn);

  /// True when called from inside one of this pool's workers.
  static bool in_worker();

  /// True while ANY parallel_for chunk body is executing on this thread —
  /// worker chunks, chunks the caller drains itself, and the inline serial
  /// path alike.  Unlike in_worker(), this is consistent across thread
  /// counts (with RRP_THREADS=1 chunks run inline on the caller, which
  /// in_worker() does not see), so the observability layer uses it to
  /// suppress span recording deterministically (see util/trace.h).
  static bool in_parallel_region();

  /// The process-wide pool (created on first use).
  static ThreadPool& global();

  /// Resizes the process-wide pool (tears down and respawns workers).
  /// Must not be called while a parallel_for is in flight; intended for
  /// process startup (CLI flag) and tests.
  static void set_global_threads(int threads);

  /// Thread count the global pool has (or would be created with).
  static int global_thread_count();

 private:
  struct Job {
    const ChunkFn* fn = nullptr;
    std::int64_t begin = 0;
    std::int64_t end = 0;
    std::int64_t grain = 1;
    std::int64_t next_chunk = 0;   // next chunk index to claim
    std::int64_t chunk_count = 0;  // total chunks in this job
    std::int64_t done_chunks = 0;  // chunks fully executed
    std::exception_ptr error;      // first failure, rethrown on the caller
  };

  void worker_loop();
  /// Claims and runs chunks of the current job until none remain.
  void drain_job(std::unique_lock<std::mutex>& lock);

  int threads_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  // signals workers: job posted / stop
  std::condition_variable done_cv_;  // signals caller: all chunks done
  Job job_;
  bool has_job_ = false;
  bool stop_ = false;
  std::uint64_t job_serial_ = 0;  // wakes workers exactly once per job
};

/// Convenience wrapper over the global pool.
inline void parallel_for(std::int64_t begin, std::int64_t end,
                         std::int64_t grain, const ThreadPool::ChunkFn& fn) {
  ThreadPool::global().parallel_for(begin, end, grain, fn);
}

/// RAII override of the global pool size (tests / benchmarks).
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int threads)
      : saved_(ThreadPool::global_thread_count()) {
    ThreadPool::set_global_threads(threads);
  }
  ~ThreadCountGuard() { ThreadPool::set_global_threads(saved_); }
  ThreadCountGuard(const ThreadCountGuard&) = delete;
  ThreadCountGuard& operator=(const ThreadCountGuard&) = delete;

 private:
  int saved_;
};

}  // namespace rrp
