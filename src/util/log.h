// log.h — minimal leveled logger.
//
// The library itself logs sparingly (controller decisions, safety vetoes);
// examples raise the level to Info for narrative output. No global mutable
// state beyond the level, which is an atomic.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace rrp {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global minimum level that will be emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits a single log line to stderr if `level` passes the filter.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace rrp

#define RRP_LOG_DEBUG ::rrp::detail::LogStream(::rrp::LogLevel::Debug)
#define RRP_LOG_INFO ::rrp::detail::LogStream(::rrp::LogLevel::Info)
#define RRP_LOG_WARN ::rrp::detail::LogStream(::rrp::LogLevel::Warn)
#define RRP_LOG_ERROR ::rrp::detail::LogStream(::rrp::LogLevel::Error)
