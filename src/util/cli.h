// cli.h — tiny shared helpers for command-line front ends.
//
// Lives in src/util (not tools/) so the parsing contract is unit-testable
// from the main test binary: tools link it, tests pin it.
#pragma once

#include <charconv>
#include <optional>
#include <string>

namespace rrp {

/// Strict full-string parse of a thread-count argument: a plain positive
/// decimal integer ("4"), nothing else.  Rejects empty strings, signs,
/// whitespace, zero, negatives, overflow, and trailing garbage ("4abc",
/// which std::stoi would silently accept).  nullopt means "invalid" — the
/// caller prints one diagnostic and exits non-zero.
inline std::optional<int> parse_thread_count(const std::string& text) {
  int value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || value < 1) return std::nullopt;
  return value;
}

}  // namespace rrp
