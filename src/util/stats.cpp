#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/checks.h"

namespace rrp {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s2 = 0.0;
  for (double x : xs) s2 += (x - m) * (x - m);
  return std::sqrt(s2 / static_cast<double>(xs.size() - 1));
}

double quantile(std::vector<double> xs, double q) {
  RRP_CHECK(!xs.empty());
  RRP_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  if (xs.empty()) return s;
  s.count = xs.size();
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  s.p50 = quantile(xs, 0.50);
  s.p95 = quantile(xs, 0.95);
  s.p99 = quantile(xs, 0.99);
  return s;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace rrp
