#include "util/qsketch.h"

#include <cmath>

#include "util/checks.h"

namespace rrp {

QuantileSketch::QuantileSketch(Config cfg) : cfg_(cfg) {
  RRP_CHECK_MSG(cfg_.gamma > 0.0 && cfg_.gamma < 1.0,
                "sketch gamma must be in (0, 1), got " << cfg_.gamma);
  RRP_CHECK_MSG(cfg_.min_abs > 0.0 && cfg_.min_abs < cfg_.max_abs,
                "sketch range must satisfy 0 < min_abs < max_abs");
  const double base = (1.0 + cfg_.gamma) / (1.0 - cfg_.gamma);
  inv_log_base_ = 1.0 / std::log(base);
  sqrt_base_ = std::sqrt(base);
  const std::size_t k = static_cast<std::size_t>(
      std::ceil(std::log(cfg_.max_abs / cfg_.min_abs) * inv_log_base_));
  pos_.assign(k, 0);
  neg_.assign(k, 0);
}

std::size_t QuantileSketch::bucket_index(double abs_v) const {
  // abs_v >= min_abs here; the top bucket absorbs everything >= max_abs.
  const double i = std::floor(std::log(abs_v / cfg_.min_abs) * inv_log_base_);
  if (i <= 0.0) return 0;
  const std::size_t idx = static_cast<std::size_t>(i);
  return idx < pos_.size() ? idx : pos_.size() - 1;
}

double QuantileSketch::bucket_value(std::size_t i) const {
  // Geometric midpoint of [min_abs·bⁱ, min_abs·bⁱ⁺¹): relative error ≤ √b-1.
  return cfg_.min_abs * std::exp(static_cast<double>(i) / inv_log_base_) *
         sqrt_base_;
}

void QuantileSketch::add_n(double v, std::int64_t n) {
  RRP_CHECK_MSG(n >= 0, "sketch weight must be non-negative");
  RRP_CHECK_MSG(std::isfinite(v), "sketch values must be finite");
  if (n == 0) return;
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  count_ += n;
  const double a = std::fabs(v);
  if (a < cfg_.min_abs) {
    zero_ += n;
  } else if (v > 0.0) {
    pos_[bucket_index(a)] += n;
  } else {
    neg_[bucket_index(a)] += n;
  }
}

void QuantileSketch::merge(const QuantileSketch& other) {
  RRP_CHECK_MSG(cfg_ == other.cfg_,
                "cannot merge sketches with different configs");
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  zero_ += other.zero_;
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    pos_[i] += other.pos_[i];
    neg_[i] += other.neg_[i];
  }
}

double QuantileSketch::min() const { return count_ == 0 ? 0.0 : min_; }
double QuantileSketch::max() const { return count_ == 0 ? 0.0 : max_; }

double QuantileSketch::quantile(double q) const {
  RRP_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile q must be in [0, 1]");
  if (count_ == 0) return 0.0;
  // Rank of the requested order statistic, 1-based.
  std::int64_t target = static_cast<std::int64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (target <= 1) return min_;       // exact: tracked extreme
  if (target >= count_) return max_;  // exact: tracked extreme

  const auto clamp = [this](double v) {
    if (v < min_) return min_;
    if (v > max_) return max_;
    return v;
  };

  std::int64_t seen = 0;
  // Most negative first: negative buckets from the largest magnitude down.
  for (std::size_t i = neg_.size(); i-- > 0;) {
    seen += neg_[i];
    if (seen >= target) return clamp(-bucket_value(i));
  }
  seen += zero_;
  if (seen >= target) return clamp(0.0);
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    seen += pos_[i];
    if (seen >= target) return clamp(bucket_value(i));
  }
  return max_;  // unreachable: counts always sum to count_
}

}  // namespace rrp
