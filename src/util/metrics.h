// metrics.h — process-wide metrics registry (DESIGN.md §8).
//
// Three primitive kinds, each chosen so that every value is byte-exact
// across RRP_THREADS (the registry is a regression oracle, like the rest
// of the observability layer):
//
//   * Counter   — monotonically added std::atomic<int64>.  Safe to add
//                 from ANY thread, including pool chunk bodies: integer
//                 addition is commutative, so the total is independent of
//                 scheduling.
//   * Gauge     — last-written double.  Writes are silently dropped
//                 inside pool parallel regions (a racing "last write"
//                 would be schedule-dependent); set it from the driving
//                 thread only.
//   * Histogram — fixed upper-bound buckets with atomic<int64> counts.
//                 Safe from any thread for the same reason as Counter.
//
// Registration discipline: every hot-path metric name is pre-registered
// by the Registry constructor, so lookups from worker threads never
// mutate the name map.  Creating a NEW name (tests, ad-hoc tooling) is
// only legal outside parallel regions (checked).  Call sites cache the
// reference:
//
//   static metrics::Counter& c = metrics::counter("gemm.flops");
//   c.add(2 * m * n * k);
//
// Snapshots / CSV / JSON export live one layer up in core/metrics.h.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace rrp::metrics {

class Counter {
 public:
  void add(std::int64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

class Gauge {
 public:
  /// No-op when called inside a pool parallel region (see header).
  void set(double v);
  double value() const { return v_; }
  void reset() { v_ = 0.0; }

 private:
  double v_ = 0.0;
};

class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing; an implicit +inf
  /// overflow bucket is appended.
  explicit Histogram(std::vector<double> upper_bounds);

  /// Counts v into the first bucket with v <= bound (overflow otherwise).
  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// i in [0, bounds().size()]; the last index is the overflow bucket.
  std::int64_t bucket_count(std::size_t i) const;
  std::int64_t total() const;
  void reset();

 private:
  std::vector<double> bounds_;
  // unique_ptr array because std::atomic is not movable.
  std::unique_ptr<std::atomic<std::int64_t>[]> counts_;
};

/// Name -> metric maps (std::map so iteration order is sorted == the
/// deterministic export order).
class Registry {
 public:
  /// The process-wide registry, with the built-in schema pre-registered.
  static Registry& instance();

  /// Look up (or, outside parallel regions only, create) by name.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Looks up an existing histogram (pre-registered or prior creation).
  Histogram& histogram(const std::string& name);
  /// Creates with explicit bounds, or returns the existing instance
  /// (bounds then must match what was registered).
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// Zeroes every metric (counters, gauges, histogram buckets).
  void reset();

  const std::map<std::string, std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, std::unique_ptr<Histogram>>& histograms() const {
    return histograms_;
  }

 private:
  Registry();  // pre-registers the built-in schema (metrics.cpp)

  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Shorthands for Registry::instance().xxx(name).
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

/// Zeroes every metric in the process-wide registry.
void reset_all();

/// Zeroes every metric whose name starts with `prefix` (labeled variants
/// included: "serve." also matches "serve.stream.frames{stream=\"0\"}").
void reset_prefix(const std::string& prefix);

/// Escapes a label VALUE for the {k="v"} grammar: backslash, double
/// quote and newline become \\ \" \n (the Prometheus escaping rules, so
/// the mangled registry key doubles as the exposition label string).
std::string escape_label_value(const std::string& v);

/// A (base name, labels) scope over the process-wide registry
/// (DESIGN.md §8: metric-label grammar).
///
/// `MetricDomain({{"stream", "3"}}).counter("serve.stream.frames")`
/// resolves to the registry entry `serve.stream.frames{stream="3"}`.
/// Label keys must match [a-zA-Z_][a-zA-Z0-9_]* and be unique; keys are
/// sorted and values escaped, so equal label SETS always mangle to the
/// same registry key (and therefore the same sorted export position).
///
/// The determinism contract is exactly the unlabeled one: the labeled
/// name is a plain registry key, so creation is only legal outside
/// parallel regions — pre-register every per-stream domain's metrics on
/// the driving thread (ServeEngine does this at the start of run())
/// before any worker thread looks them up.
class MetricDomain {
 public:
  using Label = std::pair<std::string, std::string>;

  /// The empty domain: labeled_name(base) == base (plain registry key).
  MetricDomain() = default;
  /// Validates keys, sorts by key, precomputes the {…} suffix.
  explicit MetricDomain(std::vector<Label> labels);

  const std::vector<Label>& labels() const { return labels_; }
  /// base -> base{k1="v1",k2="v2"} (empty domain: base unchanged).
  std::string labeled_name(const std::string& base) const {
    return base + suffix_;
  }

  Counter& counter(const std::string& base) const;
  Gauge& gauge(const std::string& base) const;
  Histogram& histogram(const std::string& base) const;
  Histogram& histogram(const std::string& base,
                       std::vector<double> bounds) const;

 private:
  std::vector<Label> labels_;  // sorted by key, keys unique
  std::string suffix_;         // "{k=\"v\",…}", or "" for the empty domain
};

}  // namespace rrp::metrics
