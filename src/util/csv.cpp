#include "util/csv.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/checks.h"

namespace rrp {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

bool read_csv_record(std::istream& in, std::vector<std::string>& fields) {
  fields.clear();
  int c = in.get();
  if (c == std::char_traits<char>::eof()) return false;

  std::string field;
  bool in_quotes = false;
  for (;; c = in.get()) {
    if (c == std::char_traits<char>::eof()) {
      if (in_quotes)
        throw SerializationError("unterminated quoted CSV field");
      fields.push_back(std::move(field));
      return true;
    }
    const char ch = static_cast<char>(c);
    if (in_quotes) {
      if (ch == '"') {
        if (in.peek() == '"') {
          in.get();
          field += '"';  // escaped quote
        } else {
          in_quotes = false;
        }
      } else {
        field += ch;  // commas and newlines are literal inside quotes
      }
    } else if (ch == '"') {
      in_quotes = true;
    } else if (ch == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (ch == '\n' || ch == '\r') {
      if (ch == '\r' && in.peek() == '\n') in.get();  // CRLF
      fields.push_back(std::move(field));
      return true;
    } else {
      field += ch;
    }
  }
}

std::vector<std::string> parse_csv_line(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> fields;
  if (!read_csv_record(is, fields)) return fields;  // empty input: no fields
  if (is.peek() != std::char_traits<char>::eof())
    throw SerializationError("CSV line holds more than one record: " + line);
  return fields;
}

void CsvWriter::header(const std::vector<std::string>& names) {
  RRP_CHECK_MSG(arity_ == 0, "CSV header must be written first");
  arity_ = names.size();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << csv_escape(names[i]);
  }
  *out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  if (arity_ == 0) arity_ = fields.size();
  RRP_CHECK_MSG(fields.size() == arity_,
                "CSV row arity " << fields.size() << " != " << arity_);
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << csv_escape(fields[i]);
  }
  *out_ << '\n';
}

std::string CsvWriter::num(double v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << std::fixed << v;
  return os.str();
}

TableFormatter::TableFormatter(std::vector<std::string> header)
    : header_(std::move(header)) {
  RRP_CHECK(!header_.empty());
}

void TableFormatter::row(std::vector<std::string> fields) {
  RRP_CHECK_MSG(fields.size() == header_.size(),
                "table row arity " << fields.size()
                                   << " != " << header_.size());
  rows_.push_back(std::move(fields));
}

void TableFormatter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  auto print_row = [&](const std::vector<std::string>& r) {
    out << "| ";
    for (std::size_t c = 0; c < r.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c])) << r[c];
      out << (c + 1 == r.size() ? " |" : " | ");
    }
    out << '\n';
  };
  auto print_rule = [&] {
    out << '+';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      for (std::size_t i = 0; i < widths[c] + 2; ++i) out << '-';
      out << '+';
    }
    out << '\n';
  };

  print_rule();
  print_row(header_);
  print_rule();
  for (const auto& r : rows_) print_row(r);
  print_rule();
}

void TableFormatter::print_csv(std::ostream& out) const {
  CsvWriter w(out);
  w.header(header_);
  for (const auto& r : rows_) w.row(r);
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << std::fixed << v;
  std::string s = os.str();
  // Trim trailing zeros but keep at least one decimal digit.
  if (s.find('.') != std::string::npos) {
    while (s.size() > 1 && s.back() == '0') s.pop_back();
    if (s.back() == '.') s += '0';
  }
  return s;
}

}  // namespace rrp
