#include "util/metrics.h"

#include <algorithm>

#include "util/checks.h"
#include "util/thread_pool.h"

namespace rrp::metrics {

void Gauge::set(double v) {
  // A last-write-wins double is only deterministic when the writes are
  // ordered; drop writes from inside parallel regions so a fanned-out
  // run records exactly what the serial run records.
  if (ThreadPool::in_parallel_region()) return;
  v_ = v;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(new std::atomic<std::int64_t>[bounds_.size() + 1]) {
  RRP_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    RRP_CHECK_MSG(bounds_[i - 1] < bounds_[i],
                  "histogram bounds must be strictly increasing");
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());  // == size() -> overflow
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::int64_t Histogram::bucket_count(std::size_t i) const {
  RRP_CHECK(i <= bounds_.size());
  return counts_[i].load(std::memory_order_relaxed);
}

std::int64_t Histogram::total() const {
  std::int64_t n = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    n += counts_[i].load(std::memory_order_relaxed);
  return n;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    counts_[i].store(0, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  static Registry r;
  return r;
}

Registry::Registry() {
  // Built-in schema: every name the instrumented hot paths touch, so
  // worker-thread lookups never have to mutate the maps.  Keep sorted.
  static const char* const kCounters[] = {
      "bn.calibrations",        "bn.state_swaps",
      "controller.level_switch", "controller.steps",
      "controller.vetoes",      "conv.calls",
      "depthwise.calls",        "depthwise.flops",
      "faults.injected",        "gemm.calls",
      "gemm.flops",             "integrity.findings",
      "integrity.heal_bytes",   "integrity.heal_elems",
      "integrity.scrub_elems",  "integrity.scrubs",
      "pool.chunks",            "pool.jobs",
      "prune.bytes_touched",    "prune.elements_touched",
      "prune.ladder_rebuilds",  "prune.ladder_swaps",
      "prune.restores",         "prune.transitions",
      "runner.deadline_misses", "runner.frames",
      "serve.admitted",         "serve.deadline_misses",
      "serve.degraded",         "serve.frames",
      "serve.rejected",         "serve.restored",
      "serve.shed",             "serve.ticks",
  };
  for (const char* name : kCounters)
    counters_.emplace(name, std::make_unique<Counter>());
  gauges_.emplace("runner.energy_budget_frac", std::make_unique<Gauge>());
  gauges_.emplace("serve.admission.floor", std::make_unique<Gauge>());
  gauges_.emplace("serve.admission.window_miss_ratio",
                  std::make_unique<Gauge>());
  histograms_.emplace(
      "prune.switch_us",
      std::make_unique<Histogram>(std::vector<double>{
          10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 5000.0, 20000.0}));
  histograms_.emplace(
      "runner.frame_ms",
      std::make_unique<Histogram>(std::vector<double>{
          2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 16.0, 20.0, 30.0, 50.0}));
  histograms_.emplace(
      "serve.frame_ms",
      std::make_unique<Histogram>(std::vector<double>{
          2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 16.0, 20.0, 30.0, 50.0}));
  histograms_.emplace(
      "integrity.detect_latency_frames",
      std::make_unique<Histogram>(std::vector<double>{
          1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0}));
}

Counter& Registry::counter(const std::string& name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  RRP_CHECK_MSG(!ThreadPool::in_parallel_region(),
                "new metric '" << name
                               << "' registered inside a parallel region; "
                                  "pre-register it in the Registry schema");
  return *counters_.emplace(name, std::make_unique<Counter>())
              .first->second;
}

Gauge& Registry::gauge(const std::string& name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  RRP_CHECK_MSG(!ThreadPool::in_parallel_region(),
                "new metric '" << name
                               << "' registered inside a parallel region; "
                                  "pre-register it in the Registry schema");
  return *gauges_.emplace(name, std::make_unique<Gauge>()).first->second;
}

Histogram& Registry::histogram(const std::string& name) {
  const auto it = histograms_.find(name);
  RRP_CHECK_MSG(it != histograms_.end(),
                "histogram '" << name << "' is not registered (bounds are "
                                         "required at first registration)");
  return *it->second;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    RRP_CHECK_MSG(it->second->bounds() == bounds,
                  "histogram '" << name << "' re-registered with different "
                                           "bounds");
    return *it->second;
  }
  RRP_CHECK_MSG(!ThreadPool::in_parallel_region(),
                "new metric '" << name
                               << "' registered inside a parallel region; "
                                  "pre-register it in the Registry schema");
  return *histograms_
              .emplace(name, std::make_unique<Histogram>(std::move(bounds)))
              .first->second;
}

void Registry::reset() {
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Counter& counter(const std::string& name) {
  return Registry::instance().counter(name);
}
Gauge& gauge(const std::string& name) {
  return Registry::instance().gauge(name);
}
Histogram& histogram(const std::string& name) {
  return Registry::instance().histogram(name);
}
void reset_all() { Registry::instance().reset(); }

void reset_prefix(const std::string& prefix) {
  Registry& reg = Registry::instance();
  for (auto& [name, c] : reg.counters())
    if (name.rfind(prefix, 0) == 0) c->reset();
  for (auto& [name, g] : reg.gauges())
    if (name.rfind(prefix, 0) == 0) g->reset();
  for (auto& [name, h] : reg.histograms())
    if (name.rfind(prefix, 0) == 0) h->reset();
}

std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

namespace {

bool label_key_ok(const std::string& k) {
  if (k.empty()) return false;
  const auto alpha = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  const auto digit = [](char c) { return c >= '0' && c <= '9'; };
  if (!alpha(k[0])) return false;
  for (char c : k)
    if (!alpha(c) && !digit(c)) return false;
  return true;
}

}  // namespace

MetricDomain::MetricDomain(std::vector<Label> labels)
    : labels_(std::move(labels)) {
  std::sort(labels_.begin(), labels_.end());
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    RRP_CHECK_MSG(label_key_ok(labels_[i].first),
                  "metric label key '" << labels_[i].first
                                       << "' must match "
                                          "[a-zA-Z_][a-zA-Z0-9_]*");
    if (i > 0)
      RRP_CHECK_MSG(labels_[i - 1].first != labels_[i].first,
                    "duplicate metric label key '" << labels_[i].first << "'");
  }
  if (!labels_.empty()) {
    suffix_ = "{";
    for (std::size_t i = 0; i < labels_.size(); ++i) {
      if (i > 0) suffix_ += ',';
      suffix_ += labels_[i].first;
      suffix_ += "=\"";
      suffix_ += escape_label_value(labels_[i].second);
      suffix_ += '"';
    }
    suffix_ += '}';
  }
}

Counter& MetricDomain::counter(const std::string& base) const {
  return Registry::instance().counter(labeled_name(base));
}
Gauge& MetricDomain::gauge(const std::string& base) const {
  return Registry::instance().gauge(labeled_name(base));
}
Histogram& MetricDomain::histogram(const std::string& base) const {
  return Registry::instance().histogram(labeled_name(base));
}
Histogram& MetricDomain::histogram(const std::string& base,
                                   std::vector<double> bounds) const {
  return Registry::instance().histogram(labeled_name(base), std::move(bounds));
}

}  // namespace rrp::metrics
