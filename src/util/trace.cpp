#include "util/trace.h"

#include <cstdlib>
#include <ostream>
#include <sstream>

#include "util/csv.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace rrp::trace {

namespace detail {

namespace {
bool env_trace_on() {
  const char* env = std::getenv("RRP_TRACE");
  return env != nullptr && *env != '\0' && *env != '0';
}
}  // namespace

std::atomic<bool> g_enabled{env_trace_on()};

}  // namespace detail

namespace {

// Bounded so an accidentally always-on trace (e.g. RRP_TRACE=1 under a
// long benchmark) cannot grow without limit; overflow is counted, never
// silent.  The cap is count-based, hence deterministic.
constexpr std::size_t kMaxSpans = 1u << 20;

struct OpenSpan {
  std::int64_t slot = 0;
  Timer timer;  // read only when wall-clock capture is on
};

// All recording state lives here.  Single-threaded by contract: spans are
// suppressed inside pool parallel regions, so only the driving thread
// ever mutates it (see trace.h header comment).
struct TraceState {
  std::vector<SpanRecord> records;
  std::vector<OpenSpan> open;
  std::int64_t seq = 0;
  std::int64_t frame = -1;
  std::int64_t dropped = 0;
  std::uint32_t generation = 0;
  bool wall = false;
};

TraceState& state() {
  static TraceState s;
  return s;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

bool wall_clock_enabled() { return state().wall; }
void set_wall_clock(bool on) { state().wall = on; }

void reset() {
  TraceState& s = state();
  s.records.clear();
  s.open.clear();
  s.seq = 0;
  s.frame = -1;
  s.dropped = 0;
  ++s.generation;  // outstanding Span objects become inert
}

void set_frame(std::int64_t frame) {
  // Same suppression as spans: a run fanned out inside pool chunks must
  // not touch the (single-threaded) recorder state.
  if (ThreadPool::in_parallel_region()) return;
  state().frame = frame;
}
std::int64_t current_frame() { return state().frame; }

const std::vector<SpanRecord>& spans() { return state().records; }
std::int64_t dropped_spans() { return state().dropped; }

void Span::begin_(const char* name) {
  if (ThreadPool::in_parallel_region()) return;  // determinism: see trace.h
  TraceState& s = state();
  if (s.records.size() >= kMaxSpans) {
    ++s.dropped;
    return;
  }
  SpanRecord rec;
  rec.name = name;
  rec.depth = static_cast<std::int32_t>(s.open.size());
  rec.frame = s.frame;
  rec.begin_seq = s.seq++;
  slot_ = static_cast<std::int64_t>(s.records.size());
  generation_ = s.generation;
  s.records.push_back(std::move(rec));
  s.open.push_back(OpenSpan{slot_, Timer{}});
}

void Span::end_() {
  TraceState& s = state();
  if (generation_ != s.generation) return;  // reset() happened mid-span
  SpanRecord& rec = s.records[static_cast<std::size_t>(slot_)];
  rec.end_seq = s.seq++;
  // RAII scopes close LIFO, so this span is the innermost open one.
  while (!s.open.empty()) {
    const OpenSpan top = s.open.back();
    s.open.pop_back();
    if (top.slot == slot_) {
      if (s.wall) rec.wall_us = top.timer.elapsed_us();
      break;
    }
  }
  slot_ = -1;
}

void Span::add_modeled_us(double us) {
  if (slot_ < 0) return;
  TraceState& s = state();
  if (generation_ != s.generation) return;
  s.records[static_cast<std::size_t>(slot_)].modeled_us += us;
}

void Span::add_items(std::int64_t n) {
  if (slot_ < 0) return;
  TraceState& s = state();
  if (generation_ != s.generation) return;
  s.records[static_cast<std::size_t>(slot_)].items += n;
}

void write_chrome_trace(std::ostream& out) {
  const TraceState& s = state();
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& r : s.records) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"" << json_escape(r.name)
        << "\",\"cat\":\"rrp\",\"ph\":\"X\",\"pid\":1,\"tid\":1"
        << ",\"ts\":" << r.begin_seq
        << ",\"dur\":" << (r.end_seq - r.begin_seq) << ",\"args\":{"
        << "\"frame\":" << r.frame << ",\"depth\":" << r.depth
        << ",\"modeled_us\":" << CsvWriter::num(r.modeled_us, 9)
        << ",\"items\":" << r.items;
    if (s.wall) out << ",\"wall_us\":" << CsvWriter::num(r.wall_us, 3);
    out << "}}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
      << "\"clock\":\"event-sequence\",\"dropped_spans\":" << s.dropped
      << "}}\n";
}

void write_span_csv(std::ostream& out) {
  const TraceState& s = state();
  CsvWriter w(out);
  std::vector<std::string> header = {"id",        "frame",   "depth",
                                     "name",      "begin_seq", "end_seq",
                                     "modeled_us", "items"};
  if (s.wall) header.push_back("wall_us");
  w.header(header);
  for (std::size_t i = 0; i < s.records.size(); ++i) {
    const SpanRecord& r = s.records[i];
    std::vector<std::string> row = {
        std::to_string(i),           std::to_string(r.frame),
        std::to_string(r.depth),     r.name,
        std::to_string(r.begin_seq), std::to_string(r.end_seq),
        CsvWriter::num(r.modeled_us, 9), std::to_string(r.items)};
    if (s.wall) row.push_back(CsvWriter::num(r.wall_us, 3));
    w.row(row);
  }
}

std::string chrome_trace_string() {
  std::ostringstream os;
  write_chrome_trace(os);
  return os.str();
}

std::string span_csv_string() {
  std::ostringstream os;
  write_span_csv(os);
  return os.str();
}

}  // namespace rrp::trace
