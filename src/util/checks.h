// checks.h — precondition / invariant checking for the rrp library.
//
// The library uses exceptions for recoverable interface errors (per C++ Core
// Guidelines I.10) and RRP_CHECK for preconditions that indicate a caller
// bug.  Checks stay enabled in release builds: this is a safety-oriented
// library and the cost of a predictable branch is negligible next to GEMM.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rrp {

/// Base class for all exceptions thrown by the rrp library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a precondition on an API call is violated.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// Thrown when tensor shapes are incompatible.
class ShapeError : public Error {
 public:
  explicit ShapeError(const std::string& what) : Error(what) {}
};

/// Thrown on serialization / deserialization format problems.
class SerializationError : public Error {
 public:
  explicit SerializationError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void fail_check(const char* expr, const char* file, int line,
                                    const std::string& msg) {
  std::ostringstream os;
  os << "RRP_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}
}  // namespace detail

}  // namespace rrp

/// Check a precondition; throws rrp::PreconditionError with location info.
#define RRP_CHECK(expr)                                                     \
  do {                                                                      \
    if (!(expr)) ::rrp::detail::fail_check(#expr, __FILE__, __LINE__, ""); \
  } while (false)

/// Check a precondition with a streamed message:
///   RRP_CHECK_MSG(a == b, "a=" << a << " b=" << b);
#define RRP_CHECK_MSG(expr, stream_expr)                                 \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream rrp_check_os_;                                  \
      rrp_check_os_ << stream_expr;                                      \
      ::rrp::detail::fail_check(#expr, __FILE__, __LINE__,               \
                                rrp_check_os_.str());                    \
    }                                                                    \
  } while (false)
