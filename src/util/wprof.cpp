#include "util/wprof.h"

#include <atomic>
#include <map>
#include <mutex>
#include <sstream>

#include "util/csv.h"

namespace rrp::wprof {

namespace {

struct Agg {
  std::int64_t count = 0;
  double total_us = 0.0;
  double max_us = 0.0;
};

struct State {
  std::mutex mu;
  std::map<std::string, Agg> aggs;
};

State& state() {
  static State s;
  return s;
}

std::atomic<bool> g_enabled{false};

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void record(const std::string& key, double us) {
  if (!enabled()) return;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  Agg& a = s.aggs[key];
  ++a.count;
  a.total_us += us;
  if (us > a.max_us) a.max_us = us;
}

std::vector<Stat> stats() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::vector<Stat> out;
  out.reserve(s.aggs.size());
  for (const auto& [key, a] : s.aggs)
    out.push_back({key, a.count, a.total_us, a.max_us});
  return out;
}

std::string csv_string() {
  std::ostringstream os;
  os << "key,count,total_us,mean_us,max_us\n";
  for (const Stat& st : stats())
    os << csv_escape(st.key) << ',' << st.count << ','
       << CsvWriter::num(st.total_us, 3) << ','
       << CsvWriter::num(st.mean_us(), 3) << ','
       << CsvWriter::num(st.max_us, 3) << '\n';
  return os.str();
}

void reset() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.aggs.clear();
}

ScopedTimer::ScopedTimer(std::string key) : key_(std::move(key)) {
  if (enabled()) {
    armed_ = true;
    timer_.reset();
  }
}

ScopedTimer::~ScopedTimer() {
  if (armed_ && enabled()) record(key_, timer_.elapsed_us());
}

}  // namespace rrp::wprof
