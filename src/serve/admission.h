// admission.h — SLO-driven admission control and load shedding.
//
// The serving engine (serve_engine.h) runs many streams against one shared
// ladder; this file is the pure decision layer above them.  Two concerns:
//
//   * Admission — a stream arriving at a tick is admitted iff the active
//     set is below capacity; otherwise it is rejected.  A pure capacity
//     predicate, decided on the driving thread in arrival order.
//
//   * Overload — a windowed deadline-miss ratio over recent ticks (plus
//     any online SLO breach) drives a three-state escalation ladder:
//
//         Normal --miss ratio >= degrade--> Degraded (raise level floor)
//         Degraded --ratio >= shed, floor at max--> shed one stream
//         Degraded --sustained health--> lower the floor (Restore)
//
//     Raising the level floor deepens every active stream's prune level
//     (cheaper frames, lower fleet demand) BEFORE any stream is dropped;
//     shedding is the last resort.  Each action is followed by a cooldown
//     so its effect lands in the window before the next escalation.
//
// Everything here is a pure function of the call sequence — no clocks, no
// RNG, no global state — so replaying the same arrival schedule and tick
// outcomes yields the identical event trace (property-tested in
// tests/test_serve.cpp, DESIGN.md invariant 16).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rrp::serve {

/// Every action the engine can take on a stream or the fleet.
enum class ServeAction : int {
  Admit = 0,    ///< stream accepted into the active set
  Reject = 1,   ///< stream refused: active set at capacity
  Degrade = 2,  ///< fleet level floor raised one step
  Restore = 3,  ///< fleet level floor lowered one step
  Shed = 4,     ///< lowest-priority stream dropped
};

const char* serve_action_name(ServeAction a);

/// One entry of the engine's decision trace, in decision order.
struct AdmissionEvent {
  std::int64_t tick = 0;
  std::string stream;  ///< stream name; "fleet" for Degrade/Restore
  ServeAction action = ServeAction::Admit;
  std::string detail;

  bool operator==(const AdmissionEvent& o) const {
    return tick == o.tick && stream == o.stream && action == o.action &&
           detail == o.detail;
  }
};

struct AdmissionConfig {
  int max_streams = 8;  ///< admission capacity of the active set
  /// Windowed deadline-miss ratio at which the floor is raised.
  double degrade_miss_ratio = 0.25;
  /// Ratio at which, with the floor already at max, a stream is shed.
  double shed_miss_ratio = 0.5;
  /// Ratio at or below which a tick counts toward the healthy streak.
  double restore_miss_ratio = 0.05;
  int window_ticks = 16;           ///< miss-ratio window length
  int restore_healthy_ticks = 32;  ///< healthy streak required to restore
  /// Ticks to wait after any Degrade/Restore/Shed before acting again,
  /// so the action's effect is visible in the window first.
  int cooldown_ticks = 16;
  /// Deepest level floor Degrade may reach (the engine sets this to the
  /// ladder's deepest level).
  int max_floor = 0;
};

/// The per-tick overload decision (at most one action per tick).
enum class OverloadDecision : int { None = 0, Degrade, Restore, Shed };

/// Deterministic overload state machine.  Feed one update() per tick with
/// that tick's aggregate frame/miss counts; read the current level floor
/// after each update.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config);

  const AdmissionConfig& config() const { return config_; }

  /// Capacity predicate for one arriving stream.
  // rrp-frame-path: pure admission decision (no alloc/lock/IO).
  bool admit(int active_streams) const {
    return active_streams < config_.max_streams;
  }

  /// Feeds one tick's outcome and returns this tick's overload action.
  /// `slo_breach` is the post-hoc signal (a latched SLO fired this tick);
  /// `burn_alert` is the leading one (multi-window error-budget burn,
  /// core::BurnRateTracker) — both count as overload pressure, so a
  /// burning fleet degrades BEFORE the SLO itself is breached.
  OverloadDecision update(std::int64_t frames, std::int64_t misses,
                          bool slo_breach, bool burn_alert = false);

  int level_floor() const { return floor_; }
  /// Miss ratio over the current window (0 when the window is empty).
  double window_miss_ratio() const;
  int healthy_ticks() const { return healthy_ticks_; }

  void reset();

 private:
  AdmissionConfig config_;
  /// Per-tick (frames, misses) ring of the last window_ticks ticks.
  std::vector<std::pair<std::int64_t, std::int64_t>> window_;
  std::size_t window_next_ = 0;
  int floor_ = 0;
  int healthy_ticks_ = 0;
  int cooldown_ = 0;
};

// Note on observability: update() also publishes the fleet gauges
// serve.admission.floor and serve.admission.window_miss_ratio (the
// decision is still a pure function of the call sequence; the gauges are
// a read-only mirror for the snapshot exporter, written on the driving
// thread like every gauge).

}  // namespace rrp::serve
