#include "serve/serve_engine.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "sim/scenario_gen.h"
#include "util/checks.h"
#include "util/thread_pool.h"

namespace rrp::serve {
namespace {

// Per-stream seed split, campaign-style: a golden-ratio stride walks the
// engine seed per spec index, and fixed salts derive the independent
// sensor-noise and scenario streams from each base.
constexpr std::uint64_t kStreamSeedStride = 0x9E3779B97F4A7C15ull;
constexpr std::uint64_t kNoiseSalt = 0x5DEECE66Dull;
constexpr std::uint64_t kScenarioSalt = 0xA5C152EDB7E15133ull;

// Same vocabulary as the campaign/fault drivers: "greedy" | "fixed<K>".
std::unique_ptr<core::Policy> make_stream_policy(
    const std::string& name, const core::SafetyConfig& certified,
    int hysteresis, int level_count) {
  if (name.rfind("fixed", 0) == 0 && name.size() > 5) {
    int level = 0;
    bool ok = true;
    for (std::size_t i = 5; i < name.size(); ++i) {
      ok = ok && name[i] >= '0' && name[i] <= '9';
      if (ok) level = level * 10 + (name[i] - '0');
    }
    RRP_CHECK_MSG(ok, "bad fixed policy '" << name << "'");
    RRP_CHECK_MSG(level < level_count,
                  "fixed policy level " << level << " outside ladder of "
                                        << level_count);
    return std::make_unique<core::FixedPolicy>(level);
  }
  RRP_CHECK_MSG(name == "greedy",
                "unknown stream policy '" << name << "' (greedy | fixed<K>)");
  return std::make_unique<core::CriticalityGreedyPolicy>(certified, hysteresis,
                                                         level_count);
}

std::string stream_name(const StreamSpec& spec, std::size_t index) {
  return spec.name.empty() ? "stream" + std::to_string(index) : spec.name;
}

std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

std::uint64_t stream_base_seed(std::uint64_t engine_seed,
                               std::size_t spec_index) {
  return engine_seed +
         kStreamSeedStride * (static_cast<std::uint64_t>(spec_index) + 1);
}

}  // namespace

std::uint64_t stream_scenario_seed(std::uint64_t engine_seed,
                                   std::size_t spec_index) {
  return stream_base_seed(engine_seed, spec_index) ^ kScenarioSalt;
}

std::uint64_t stream_noise_seed(std::uint64_t engine_seed,
                                std::size_t spec_index) {
  return stream_base_seed(engine_seed, spec_index) ^ kNoiseSalt;
}

std::vector<core::SloSpec> standard_serve_slos() {
  std::vector<core::SloSpec> specs;
  {
    core::SloSpec s;
    s.id = "slo.serve_miss_rate";
    s.kind = core::SloKind::RatioMax;
    s.numerator = "serve.deadline_misses";
    s.denominator = "serve.frames";
    s.threshold = 0.10;
    s.min_samples = 64;
    specs.push_back(s);
  }
  {
    core::SloSpec s;
    s.id = "slo.serve_frame_p99";
    s.kind = core::SloKind::HistogramQuantileMax;
    s.histogram = "serve.frame_ms";
    s.quantile = 0.99;
    s.threshold = 30.0;
    s.min_samples = 64;
    specs.push_back(s);
  }
  return specs;
}

/// One admitted stream: its own view over the shared ladder, policy,
/// monitor, controller and loop state.  Heap-held so every internal
/// pointer (StreamState -> scenario/controller) stays stable while the
/// active set grows, shrinks and reorders around it.
struct ServeEngine::ActiveStream {
  StreamSpec spec;
  std::size_t spec_index = 0;
  std::string name;
  std::int64_t admitted_tick = 0;

  sim::Scenario scenario;
  std::unique_ptr<core::CompactedLadderView> view;
  std::unique_ptr<FloorPolicy> policy;
  std::unique_ptr<core::SafetyMonitor> monitor;
  std::unique_ptr<core::RuntimeController> controller;
  std::unique_ptr<sim::FrameEngine> engine;
  std::unique_ptr<sim::StreamState> state;
};

ServeEngine::~ServeEngine() = default;

ServeEngine::ServeEngine(const ServeInputs& inputs, ServeConfig config)
    : config_(std::move(config)), certified_(inputs.certified) {
  RRP_CHECK_MSG(inputs.net != nullptr, "serve needs a network");
  RRP_CHECK_MSG(inputs.levels != nullptr, "serve needs a level library");
  shared_ = std::make_unique<core::CompactedLadderProvider>(
      *inputs.net, *inputs.levels, sim::input_shape(config_.vision),
      inputs.bn_states);
  if (config_.admission.max_floor <= 0)
    config_.admission.max_floor = shared_->level_count() - 1;
  RRP_CHECK_MSG(config_.admission.max_floor < shared_->level_count(),
                "degrade floor outside the ladder");
  if (config_.slos.empty()) config_.slos = standard_serve_slos();
}

std::unique_ptr<ServeEngine::ActiveStream> ServeEngine::admit_stream(
    const StreamSpec& spec, std::size_t spec_index, std::int64_t tick) {
  auto s = std::make_unique<ActiveStream>();
  s->spec = spec;
  s->spec_index = spec_index;
  s->name = stream_name(spec, spec_index);
  s->admitted_tick = tick;
  s->scenario = sim::make_suite_or_dsl(
      spec.scenario, spec.frames, stream_scenario_seed(config_.seed, spec_index));
  s->view = std::make_unique<core::CompactedLadderView>(*shared_);
  s->policy = std::make_unique<FloorPolicy>(make_stream_policy(
      spec.policy, certified_, spec.hysteresis, shared_->level_count()));
  s->monitor = std::make_unique<core::SafetyMonitor>(certified_);
  s->controller = std::make_unique<core::RuntimeController>(
      *s->policy, *s->view, s->monitor.get());

  sim::RunConfig rc;
  rc.deadline_ms = spec.deadline_ms;
  rc.sensing_delay_frames = config_.sensing_delay_frames;
  rc.platform = config_.platform;
  rc.criticality = config_.criticality;
  rc.vision = config_.vision;
  rc.noise_seed =
      spec.seed != 0 ? spec.seed : stream_noise_seed(config_.seed, spec_index);
  s->engine = std::make_unique<sim::FrameEngine>(rc);
  s->state = std::make_unique<sim::StreamState>(
      s->engine->make_stream(s->scenario, *s->controller));
  return s;
}

void ServeEngine::retire_stream(std::size_t active_index,
                                std::int64_t shed_tick,
                                std::vector<StreamResult>& results) {
  ActiveStream& s = *active_[active_index];
  StreamResult& r = results[s.spec_index];
  r.admitted_tick = s.admitted_tick;
  r.shed_tick = shed_tick;
  r.run = s.engine->finish(*s.state);
  r.frames_executed =
      static_cast<std::int64_t>(r.run.telemetry.records().size());
  // Erasing the unique_ptr destroys the view, policy, controller and loop
  // state — the stream's entire footprint beyond the SHARED ladder — and
  // keeps the remaining streams in admission order (the fold order).
  active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(active_index));
}

ServeReport ServeEngine::run(const std::vector<StreamSpec>& specs) {
  metrics::Counter& ticks_ctr = metrics::counter("serve.ticks");
  metrics::Counter& frames_ctr = metrics::counter("serve.frames");
  metrics::Counter& misses_ctr = metrics::counter("serve.deadline_misses");
  metrics::Counter& admitted_ctr = metrics::counter("serve.admitted");
  metrics::Counter& rejected_ctr = metrics::counter("serve.rejected");
  metrics::Counter& degraded_ctr = metrics::counter("serve.degraded");
  metrics::Counter& restored_ctr = metrics::counter("serve.restored");
  metrics::Counter& shed_ctr = metrics::counter("serve.shed");
  metrics::Histogram& frame_hist = metrics::histogram("serve.frame_ms");
  // The serve.* metrics are reset per run so the online SLOs evaluate a
  // pure function of THIS run — replaying the same schedule reproduces
  // the same breaches at the same ticks (invariant 16).
  ticks_ctr.reset();
  frames_ctr.reset();
  misses_ctr.reset();
  admitted_ctr.reset();
  rejected_ctr.reset();
  degraded_ctr.reset();
  restored_ctr.reset();
  shed_ctr.reset();
  frame_hist.reset();

  active_.clear();
  AdmissionController admission(config_.admission);
  core::SloMonitor slo(config_.slos);
  QuantileSketch sketch(QuantileSketch::Config{config_.sketch_gamma, 1e-6,
                                               1e9});

  ServeReport report;
  report.streams.resize(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    report.streams[i].spec_index = i;
    report.streams[i].name = stream_name(specs[i], i);
    report.streams[i].priority = specs[i].priority;
  }

  // Arrival order: by arrival tick, spec order within a tick.
  std::vector<std::size_t> arrivals(specs.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) arrivals[i] = i;
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [&](std::size_t a, std::size_t b) {
                     return specs[a].arrival_tick < specs[b].arrival_tick;
                   });

  struct TickSlot {
    double frame_ms = 0.0;
    bool done = false;
  };
  std::vector<TickSlot> slots;

  std::int64_t tick = 0;
  std::size_t next_arrival = 0;
  std::size_t prev_incidents = 0;
  double congestion_sum = 0.0;
  std::int64_t congestion_ticks = 0;

  while (next_arrival < arrivals.size() || !active_.empty()) {
    // Idle fast-forward: with nothing active, jump to the next arrival.
    if (active_.empty() &&
        specs[arrivals[next_arrival]].arrival_tick > tick)
      tick = specs[arrivals[next_arrival]].arrival_tick;

    // 1. Admission, in arrival order on the driving thread.
    while (next_arrival < arrivals.size() &&
           specs[arrivals[next_arrival]].arrival_tick <= tick) {
      const std::size_t idx = arrivals[next_arrival];
      ++next_arrival;
      const std::string name = stream_name(specs[idx], idx);
      if (admission.admit(static_cast<int>(active_.size()))) {
        std::unique_ptr<ActiveStream> s = admit_stream(specs[idx], idx, tick);
        s->policy->set_floor(admission.level_floor());
        active_.push_back(std::move(s));
        admitted_ctr.add(1);
        ++report.admitted;
        report.events.push_back(
            {tick, name, ServeAction::Admit,
             "active=" + std::to_string(active_.size())});
      } else {
        report.streams[idx].admitted_tick = -1;
        rejected_ctr.add(1);
        ++report.rejected;
        report.events.push_back(
            {tick, name, ServeAction::Reject,
             "capacity=" + std::to_string(config_.admission.max_streams)});
      }
    }

    report.peak_active =
        std::max(report.peak_active, static_cast<int>(active_.size()));

    // 2. Fan-out: one frame per active stream.  Every chunk writes only
    // its own stream's state and slot, so any RRP_THREADS partition
    // produces the same bytes; counters hit inside step() are
    // commutative atomics and spans/gauges are suppressed in chunk
    // bodies (ThreadPool::in_parallel_region).
    const std::size_t n = active_.size();
    slots.assign(n, TickSlot{});
    if (n > 0) {
      parallel_for(0, static_cast<std::int64_t>(n), 1,
                   [&](std::int64_t begin, std::int64_t end) {
                     for (std::int64_t i = begin; i < end; ++i) {
                       ActiveStream& s = *active_[static_cast<std::size_t>(i)];
                       s.engine->step(*s.state);
                       const core::FrameRecord& rec =
                           s.state->result.telemetry.records().back();
                       slots[static_cast<std::size_t>(i)] = {
                           rec.latency_ms + rec.switch_us / 1000.0,
                           s.state->done()};
                     }
                   });
    }

    // 3. Fold on the driving thread, in stream-index (= admission) order.
    double demand_ms = 0.0;
    for (const TickSlot& slot : slots) demand_ms += slot.frame_ms;
    const double congestion =
        (config_.tick_budget_ms > 0.0 && demand_ms > config_.tick_budget_ms)
            ? demand_ms / config_.tick_budget_ms
            : 1.0;
    if (n > 0) {
      congestion_sum += congestion;
      ++congestion_ticks;
    }
    std::int64_t tick_frames = 0;
    std::int64_t tick_misses = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double effective_ms = slots[i].frame_ms * congestion;
      ++tick_frames;
      frames_ctr.add(1);
      frame_hist.observe(effective_ms);
      sketch.add(effective_ms);
      if (effective_ms > active_[i]->spec.deadline_ms) {
        ++tick_misses;
        misses_ctr.add(1);
      }
    }
    report.frames += tick_frames;
    report.deadline_misses += tick_misses;

    // Retire completed streams in index order.
    for (std::size_t i = 0; i < active_.size();) {
      if (active_[i]->state->done())
        retire_stream(i, /*shed_tick=*/-1, report.streams);
      else
        ++i;
    }

    // 4. Online SLOs, then the overload state machine.
    slo.evaluate(tick);
    const bool slo_breach = slo.incidents().size() > prev_incidents;
    prev_incidents = slo.incidents().size();

    switch (admission.update(tick_frames, tick_misses, slo_breach)) {
      case OverloadDecision::None:
        break;
      case OverloadDecision::Degrade: {
        for (auto& s : active_) s->policy->set_floor(admission.level_floor());
        degraded_ctr.add(1);
        ++report.degrades;
        report.events.push_back(
            {tick, "fleet", ServeAction::Degrade,
             "floor=" + std::to_string(admission.level_floor()) +
                 " miss_ratio=" + fmt("%.4f", admission.window_miss_ratio())});
        break;
      }
      case OverloadDecision::Restore: {
        for (auto& s : active_) s->policy->set_floor(admission.level_floor());
        restored_ctr.add(1);
        ++report.restores;
        report.events.push_back(
            {tick, "fleet", ServeAction::Restore,
             "floor=" + std::to_string(admission.level_floor()) +
                 " miss_ratio=" + fmt("%.4f", admission.window_miss_ratio())});
        break;
      }
      case OverloadDecision::Shed: {
        if (active_.empty()) break;
        // Victim: lowest priority; among ties, the most recently admitted
        // (latest index — LIFO, so long-running streams survive).
        std::size_t victim = 0;
        for (std::size_t i = 1; i < active_.size(); ++i)
          if (active_[i]->spec.priority <= active_[victim]->spec.priority)
            victim = i;
        const std::string name = active_[victim]->name;
        const int priority = active_[victim]->spec.priority;
        retire_stream(victim, tick, report.streams);
        shed_ctr.add(1);
        ++report.sheds;
        report.events.push_back(
            {tick, name, ServeAction::Shed,
             "priority=" + std::to_string(priority) +
                 " miss_ratio=" + fmt("%.4f", admission.window_miss_ratio())});
        break;
      }
    }

    ticks_ctr.add(1);
    ++report.ticks;
    ++tick;
  }

  report.final_floor = admission.level_floor();
  if (!sketch.empty()) {
    report.p50_frame_ms = sketch.quantile(0.5);
    report.p99_frame_ms = sketch.quantile(0.99);
    report.max_frame_ms = sketch.max();
  }
  report.mean_congestion =
      congestion_ticks > 0
          ? congestion_sum / static_cast<double>(congestion_ticks)
          : 1.0;
  report.incidents = slo.incidents();
  return report;
}

void write_serve_report(const ServeReport& report, std::ostream& out) {
  out << "rrp_serve report\n";
  out << "  streams: " << report.streams.size() << " specs, "
      << report.admitted << " admitted, " << report.rejected << " rejected, "
      << report.sheds << " shed\n";
  const double miss_rate =
      report.frames > 0 ? static_cast<double>(report.deadline_misses) /
                              static_cast<double>(report.frames)
                        : 0.0;
  out << "  ticks: " << report.ticks << "  frames: " << report.frames
      << "  deadline misses: " << report.deadline_misses << " ("
      << fmt("%.2f", 100.0 * miss_rate) << "%)\n";
  out << "  frame_ms: p50=" << fmt("%.3f", report.p50_frame_ms)
      << " p99=" << fmt("%.3f", report.p99_frame_ms)
      << " max=" << fmt("%.3f", report.max_frame_ms) << "\n";
  out << "  congestion: mean x" << fmt("%.3f", report.mean_congestion)
      << "  peak active: " << report.peak_active << "\n";
  out << "  fleet: degrades=" << report.degrades
      << " restores=" << report.restores
      << " final floor=" << report.final_floor << "\n";
  out << "  events:\n";
  for (const AdmissionEvent& e : report.events)
    out << "    [tick " << e.tick << "] " << serve_action_name(e.action) << " "
        << e.stream << " (" << e.detail << ")\n";
  if (!report.incidents.empty()) {
    out << "  slo incidents:\n";
    for (const core::Incident& inc : report.incidents)
      out << "    [tick " << inc.frame << "] " << inc.slo_id
          << " observed=" << fmt("%.4f", inc.observed)
          << " threshold=" << fmt("%.4f", inc.threshold) << "\n";
  }
  out << "  per-stream:\n";
  for (const StreamResult& r : report.streams) {
    out << "    " << r.name;
    if (r.admitted_tick < 0) {
      out << ": rejected\n";
      continue;
    }
    out << ": admitted@" << r.admitted_tick;
    if (r.shed_tick >= 0) out << " shed@" << r.shed_tick;
    out << " frames=" << r.frames_executed
        << " acc=" << fmt("%.4f", r.run.summary.accuracy)
        << " miss=" << fmt("%.4f", r.run.summary.deadline_miss_rate)
        << " mean_level=" << fmt("%.3f", r.run.summary.mean_level) << "\n";
  }
}

}  // namespace rrp::serve
