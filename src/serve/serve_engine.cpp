#include "serve/serve_engine.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "sim/scenario_gen.h"
#include "util/checks.h"
#include "util/thread_pool.h"
#include "util/wprof.h"

namespace rrp::serve {
namespace {

// Per-stream seed split, campaign-style: a golden-ratio stride walks the
// engine seed per spec index, and fixed salts derive the independent
// sensor-noise and scenario streams from each base.
constexpr std::uint64_t kStreamSeedStride = 0x9E3779B97F4A7C15ull;
constexpr std::uint64_t kNoiseSalt = 0x5DEECE66Dull;
constexpr std::uint64_t kScenarioSalt = 0xA5C152EDB7E15133ull;

// Same vocabulary as the campaign/fault drivers: "greedy" | "fixed<K>".
std::unique_ptr<core::Policy> make_stream_policy(
    const std::string& name, const core::SafetyConfig& certified,
    int hysteresis, int level_count) {
  if (name.rfind("fixed", 0) == 0 && name.size() > 5) {
    int level = 0;
    bool ok = true;
    for (std::size_t i = 5; i < name.size(); ++i) {
      ok = ok && name[i] >= '0' && name[i] <= '9';
      if (ok) level = level * 10 + (name[i] - '0');
    }
    RRP_CHECK_MSG(ok, "bad fixed policy '" << name << "'");
    RRP_CHECK_MSG(level < level_count,
                  "fixed policy level " << level << " outside ladder of "
                                        << level_count);
    return std::make_unique<core::FixedPolicy>(level);
  }
  RRP_CHECK_MSG(name == "greedy",
                "unknown stream policy '" << name << "' (greedy | fixed<K>)");
  return std::make_unique<core::CriticalityGreedyPolicy>(certified, hysteresis,
                                                         level_count);
}

std::string stream_name(const StreamSpec& spec, std::size_t index) {
  return spec.name.empty() ? "stream" + std::to_string(index) : spec.name;
}

std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

const char* stream_final_state(const StreamResult& r) {
  if (r.admitted_tick < 0) return "rejected";
  if (r.shed_tick >= 0) return "shed";
  return "completed";
}

std::string json_string_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::uint64_t stream_base_seed(std::uint64_t engine_seed,
                               std::size_t spec_index) {
  return engine_seed +
         kStreamSeedStride * (static_cast<std::uint64_t>(spec_index) + 1);
}

}  // namespace

std::uint64_t stream_scenario_seed(std::uint64_t engine_seed,
                                   std::size_t spec_index) {
  return stream_base_seed(engine_seed, spec_index) ^ kScenarioSalt;
}

std::uint64_t stream_noise_seed(std::uint64_t engine_seed,
                                std::size_t spec_index) {
  return stream_base_seed(engine_seed, spec_index) ^ kNoiseSalt;
}

std::vector<core::BurnRateConfig> standard_serve_burn_rates() {
  std::vector<core::BurnRateConfig> v;
  core::BurnRateConfig c;
  c.id = "burn.serve_miss";
  c.numerator = "serve.deadline_misses";
  c.denominator = "serve.frames";
  c.budget = 0.10;
  c.fast_window = 8;
  c.slow_window = 32;
  c.fast_burn_threshold = 2.0;
  c.slow_burn_threshold = 1.0;
  c.min_samples = 8;
  v.push_back(std::move(c));
  return v;
}

metrics::MetricDomain stream_metric_domain(std::size_t spec_index) {
  return metrics::MetricDomain({{"stream", std::to_string(spec_index)}});
}

namespace {

// Per-stream metric bases under the {stream="<i>"} domain.  frame_ms
// shares the fleet histogram's bounds so the per-stream histograms merge
// bucket-for-bucket into serve.frame_ms (property-tested).
const std::vector<double>& stream_frame_ms_bounds() {
  static const std::vector<double> bounds{2.0,  4.0,  6.0,  8.0,  10.0,
                                          12.0, 16.0, 20.0, 30.0, 50.0};
  return bounds;
}

// Creates every labeled metric of one stream's domain (driving thread).
void preregister_stream_metrics(const metrics::MetricDomain& d) {
  d.counter("serve.stream.frames");
  d.counter("serve.stream.deadline_misses");
  d.counter("serve.stream.admitted");
  d.counter("serve.stream.rejected");
  d.counter("serve.stream.shed");
  d.gauge("serve.stream.level");
  d.histogram("serve.stream.frame_ms", stream_frame_ms_bounds());
}

}  // namespace

std::vector<core::SloSpec> standard_serve_slos() {
  std::vector<core::SloSpec> specs;
  {
    core::SloSpec s;
    s.id = "slo.serve_miss_rate";
    s.kind = core::SloKind::RatioMax;
    s.numerator = "serve.deadline_misses";
    s.denominator = "serve.frames";
    s.threshold = 0.10;
    s.min_samples = 64;
    specs.push_back(s);
  }
  {
    core::SloSpec s;
    s.id = "slo.serve_frame_p99";
    s.kind = core::SloKind::HistogramQuantileMax;
    s.histogram = "serve.frame_ms";
    s.quantile = 0.99;
    s.threshold = 30.0;
    s.min_samples = 64;
    specs.push_back(s);
  }
  return specs;
}

/// One admitted stream: its own view over the shared ladder, policy,
/// monitor, controller and loop state.  Heap-held so every internal
/// pointer (StreamState -> scenario/controller) stays stable while the
/// active set grows, shrinks and reorders around it.
struct ServeEngine::ActiveStream {
  StreamSpec spec;
  std::size_t spec_index = 0;
  std::string name;
  std::int64_t admitted_tick = 0;

  sim::Scenario scenario;
  std::unique_ptr<core::CompactedLadderView> view;
  std::unique_ptr<FloorPolicy> policy;
  std::unique_ptr<core::SafetyMonitor> monitor;
  std::unique_ptr<core::RuntimeController> controller;
  std::unique_ptr<sim::FrameEngine> engine;
  std::unique_ptr<sim::StreamState> state;

  // Labeled observability: the stream's metric domain plus handles
  // resolved at admission (driving thread — run() pre-registered the
  // names, so these are pure lookups) and the per-stream latency sketch.
  metrics::MetricDomain domain;
  metrics::Counter* miss_ctr = nullptr;
  metrics::Counter* shed_ctr = nullptr;
  metrics::Gauge* level_gauge = nullptr;
  metrics::Histogram* frame_hist = nullptr;
  std::unique_ptr<QuantileSketch> sketch;
};

ServeEngine::~ServeEngine() = default;

ServeEngine::ServeEngine(const ServeInputs& inputs, ServeConfig config)
    : config_(std::move(config)), certified_(inputs.certified) {
  RRP_CHECK_MSG(inputs.net != nullptr, "serve needs a network");
  RRP_CHECK_MSG(inputs.levels != nullptr, "serve needs a level library");
  shared_ = std::make_unique<core::CompactedLadderProvider>(
      *inputs.net, *inputs.levels, sim::input_shape(config_.vision),
      inputs.bn_states);
  if (config_.admission.max_floor <= 0)
    config_.admission.max_floor = shared_->level_count() - 1;
  RRP_CHECK_MSG(config_.admission.max_floor < shared_->level_count(),
                "degrade floor outside the ladder");
  if (config_.slos.empty()) config_.slos = standard_serve_slos();
  if (config_.burn_rates.empty())
    config_.burn_rates = standard_serve_burn_rates();
  RRP_CHECK_MSG(config_.snapshot_every_ticks >= 0,
                "snapshot_every_ticks must be >= 0");
}

std::unique_ptr<ServeEngine::ActiveStream> ServeEngine::admit_stream(
    const StreamSpec& spec, std::size_t spec_index, std::int64_t tick) {
  auto s = std::make_unique<ActiveStream>();
  s->spec = spec;
  s->spec_index = spec_index;
  s->name = stream_name(spec, spec_index);
  s->admitted_tick = tick;
  s->scenario = sim::make_suite_or_dsl(
      spec.scenario, spec.frames, stream_scenario_seed(config_.seed, spec_index));
  s->view = std::make_unique<core::CompactedLadderView>(*shared_);
  s->policy = std::make_unique<FloorPolicy>(make_stream_policy(
      spec.policy, certified_, spec.hysteresis, shared_->level_count()));
  s->monitor = std::make_unique<core::SafetyMonitor>(certified_);
  s->controller = std::make_unique<core::RuntimeController>(
      *s->policy, *s->view, s->monitor.get());

  s->domain = stream_metric_domain(spec_index);
  s->miss_ctr = &s->domain.counter("serve.stream.deadline_misses");
  s->shed_ctr = &s->domain.counter("serve.stream.shed");
  s->level_gauge = &s->domain.gauge("serve.stream.level");
  s->frame_hist = &s->domain.histogram("serve.stream.frame_ms");
  s->sketch = std::make_unique<QuantileSketch>(
      QuantileSketch::Config{config_.sketch_gamma, 1e-6, 1e9});

  sim::RunConfig rc;
  rc.deadline_ms = spec.deadline_ms;
  rc.measure_wall = config_.measure_wall;
  rc.sensing_delay_frames = config_.sensing_delay_frames;
  rc.platform = config_.platform;
  rc.criticality = config_.criticality;
  rc.vision = config_.vision;
  rc.noise_seed =
      spec.seed != 0 ? spec.seed : stream_noise_seed(config_.seed, spec_index);
  s->engine = std::make_unique<sim::FrameEngine>(rc, &s->domain);
  s->state = std::make_unique<sim::StreamState>(
      s->engine->make_stream(s->scenario, *s->controller));
  return s;
}

void ServeEngine::retire_stream(std::size_t active_index,
                                std::int64_t shed_tick,
                                std::vector<StreamResult>& results) {
  ActiveStream& s = *active_[active_index];
  StreamResult& r = results[s.spec_index];
  r.admitted_tick = s.admitted_tick;
  r.shed_tick = shed_tick;
  r.run = s.engine->finish(*s.state);
  r.frames_executed =
      static_cast<std::int64_t>(r.run.telemetry.records().size());
  if (!s.sketch->empty()) {
    r.p50_frame_ms = s.sketch->quantile(0.5);
    r.p99_frame_ms = s.sketch->quantile(0.99);
  }
  // Erasing the unique_ptr destroys the view, policy, controller and loop
  // state — the stream's entire footprint beyond the SHARED ladder — and
  // keeps the remaining streams in admission order (the fold order).
  active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(active_index));
}

ServeReport ServeEngine::run(const std::vector<StreamSpec>& specs) {
  metrics::Counter& ticks_ctr = metrics::counter("serve.ticks");
  metrics::Counter& frames_ctr = metrics::counter("serve.frames");
  metrics::Counter& misses_ctr = metrics::counter("serve.deadline_misses");
  metrics::Counter& admitted_ctr = metrics::counter("serve.admitted");
  metrics::Counter& rejected_ctr = metrics::counter("serve.rejected");
  metrics::Counter& degraded_ctr = metrics::counter("serve.degraded");
  metrics::Counter& restored_ctr = metrics::counter("serve.restored");
  metrics::Counter& shed_ctr = metrics::counter("serve.shed");
  metrics::Histogram& frame_hist = metrics::histogram("serve.frame_ms");
  // The serve.* metrics are reset per run (labeled per-stream names
  // included) so the online SLOs evaluate a pure function of THIS run —
  // replaying the same schedule reproduces the same breaches at the
  // same ticks (invariant 16).
  metrics::reset_prefix("serve.");

  // Pre-register every stream's labeled metrics on the driving thread
  // BEFORE the first fan-out, so worker-thread lookups never mutate the
  // registry (the MetricDomain contract, util/metrics.h).
  for (std::size_t i = 0; i < specs.size(); ++i)
    preregister_stream_metrics(stream_metric_domain(i));

  active_.clear();
  AdmissionController admission(config_.admission);
  core::SloMonitor slo(config_.slos);
  std::vector<core::BurnRateTracker> burns;
  burns.reserve(config_.burn_rates.size());
  for (const core::BurnRateConfig& bc : config_.burn_rates)
    burns.emplace_back(bc);
  QuantileSketch sketch(QuantileSketch::Config{config_.sketch_gamma, 1e-6,
                                               1e9});

  ServeReport report;
  report.streams.resize(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    report.streams[i].spec_index = i;
    report.streams[i].name = stream_name(specs[i], i);
    report.streams[i].priority = specs[i].priority;
  }

  // Arrival order: by arrival tick, spec order within a tick.
  std::vector<std::size_t> arrivals(specs.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) arrivals[i] = i;
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [&](std::size_t a, std::size_t b) {
                     return specs[a].arrival_tick < specs[b].arrival_tick;
                   });

  struct TickSlot {
    double frame_ms = 0.0;
    int executed_level = 0;
    bool done = false;
  };
  std::vector<TickSlot> slots;

  std::int64_t tick = 0;
  std::size_t next_arrival = 0;
  std::size_t prev_incidents = 0;
  double congestion_sum = 0.0;
  std::int64_t congestion_ticks = 0;

  while (next_arrival < arrivals.size() || !active_.empty()) {
    // Idle fast-forward: with nothing active, jump to the next arrival.
    if (active_.empty() &&
        specs[arrivals[next_arrival]].arrival_tick > tick)
      tick = specs[arrivals[next_arrival]].arrival_tick;

    // 1. Admission, in arrival order on the driving thread.
    while (next_arrival < arrivals.size() &&
           specs[arrivals[next_arrival]].arrival_tick <= tick) {
      const std::size_t idx = arrivals[next_arrival];
      ++next_arrival;
      const std::string name = stream_name(specs[idx], idx);
      if (admission.admit(static_cast<int>(active_.size()))) {
        std::unique_ptr<ActiveStream> s = admit_stream(specs[idx], idx, tick);
        s->policy->set_floor(admission.level_floor());
        s->domain.counter("serve.stream.admitted").add(1);
        active_.push_back(std::move(s));
        admitted_ctr.add(1);
        ++report.admitted;
        report.events.push_back(
            {tick, name, ServeAction::Admit,
             "active=" + std::to_string(active_.size())});
      } else {
        report.streams[idx].admitted_tick = -1;
        stream_metric_domain(idx).counter("serve.stream.rejected").add(1);
        rejected_ctr.add(1);
        ++report.rejected;
        report.events.push_back(
            {tick, name, ServeAction::Reject,
             "capacity=" + std::to_string(config_.admission.max_streams)});
      }
      const AdmissionEvent& ev = report.events.back();
      report.timeline.push_back(
          {ev.tick, ev.stream, serve_action_name(ev.action), ev.detail});
    }

    report.peak_active =
        std::max(report.peak_active, static_cast<int>(active_.size()));

    // 2. Fan-out: one frame per active stream.  Every chunk writes only
    // its own stream's state and slot, so any RRP_THREADS partition
    // produces the same bytes; counters hit inside step() are
    // commutative atomics and spans/gauges are suppressed in chunk
    // bodies (ThreadPool::in_parallel_region).
    const std::size_t n = active_.size();
    slots.assign(n, TickSlot{});
    if (n > 0) {
      // Measured tick fan-out time for the wall profiler (no-op unless
      // --wall enabled it; strictly outside the deterministic channels).
      wprof::ScopedTimer tick_timer("serve.tick");
      parallel_for(0, static_cast<std::int64_t>(n), 1,
                   [&](std::int64_t begin, std::int64_t end) {
                     for (std::int64_t i = begin; i < end; ++i) {
                       ActiveStream& s = *active_[static_cast<std::size_t>(i)];
                       s.engine->step(*s.state);
                       const core::FrameRecord& rec =
                           s.state->result.telemetry.records().back();
                       slots[static_cast<std::size_t>(i)] = {
                           rec.latency_ms + rec.switch_us / 1000.0,
                           rec.executed_level, s.state->done()};
                     }
                   });
    }

    // 3. Fold on the driving thread, in stream-index (= admission) order.
    double demand_ms = 0.0;
    for (const TickSlot& slot : slots) demand_ms += slot.frame_ms;
    const double congestion =
        (config_.tick_budget_ms > 0.0 && demand_ms > config_.tick_budget_ms)
            ? demand_ms / config_.tick_budget_ms
            : 1.0;
    if (n > 0) {
      congestion_sum += congestion;
      ++congestion_ticks;
    }
    std::int64_t tick_frames = 0;
    std::int64_t tick_misses = 0;
    for (std::size_t i = 0; i < n; ++i) {
      ActiveStream& s = *active_[i];
      const double effective_ms = slots[i].frame_ms * congestion;
      ++tick_frames;
      frames_ctr.add(1);
      frame_hist.observe(effective_ms);
      // Labeled per-stream mirror of the fleet accounting: same value
      // into the stream's histogram/sketch, so the per-stream histograms
      // merge bucket-for-bucket into serve.frame_ms.
      s.frame_hist->observe(effective_ms);
      s.level_gauge->set(static_cast<double>(slots[i].executed_level));
      s.sketch->add(effective_ms);
      sketch.add(effective_ms);
      if (effective_ms > s.spec.deadline_ms) {
        ++tick_misses;
        misses_ctr.add(1);
        s.miss_ctr->add(1);
      }
    }
    report.frames += tick_frames;
    report.deadline_misses += tick_misses;

    // Retire completed streams in index order.
    for (std::size_t i = 0; i < active_.size();) {
      if (active_[i]->state->done())
        retire_stream(i, /*shed_tick=*/-1, report.streams);
      else
        ++i;
    }

    // 4. Online SLOs and burn-rate trackers, then the overload state
    // machine.  Everything here runs on the driving thread over counter
    // values that are byte-identical at any RRP_THREADS, so the timeline
    // (and the admission decisions it records) is too (invariant 17).
    slo.evaluate(tick);
    const bool slo_breach = slo.incidents().size() > prev_incidents;
    for (std::size_t i = prev_incidents; i < slo.incidents().size(); ++i)
      report.timeline.push_back({tick, "fleet", "slo_breach",
                                 slo.incidents()[i].slo_id});
    prev_incidents = slo.incidents().size();

    bool burn_alert = false;
    for (core::BurnRateTracker& b : burns) {
      const bool was_latched = b.state().latched;
      const core::BurnRateState& bs = b.update(
          tick, metrics::counter(b.config().numerator).value(),
          metrics::counter(b.config().denominator).value());
      burn_alert = burn_alert || bs.alerting;
      if (bs.latched && !was_latched) {
        const std::string detail = b.config().id +
                                   " fast=" + fmt("%.4f", bs.fast_burn) +
                                   " slow=" + fmt("%.4f", bs.slow_burn);
        report.timeline.push_back({tick, "fleet", "burn_alert", detail});
        slo.note_event(tick, b.config().id, bs.fast_burn,
                       "error-budget burn alert (" + detail + ")");
        prev_incidents = slo.incidents().size();
      }
    }

    const std::size_t events_before = report.events.size();
    switch (admission.update(tick_frames, tick_misses, slo_breach,
                             burn_alert)) {
      case OverloadDecision::None:
        break;
      case OverloadDecision::Degrade: {
        for (auto& s : active_) s->policy->set_floor(admission.level_floor());
        degraded_ctr.add(1);
        ++report.degrades;
        report.events.push_back(
            {tick, "fleet", ServeAction::Degrade,
             "floor=" + std::to_string(admission.level_floor()) +
                 " miss_ratio=" + fmt("%.4f", admission.window_miss_ratio())});
        break;
      }
      case OverloadDecision::Restore: {
        for (auto& s : active_) s->policy->set_floor(admission.level_floor());
        restored_ctr.add(1);
        ++report.restores;
        report.events.push_back(
            {tick, "fleet", ServeAction::Restore,
             "floor=" + std::to_string(admission.level_floor()) +
                 " miss_ratio=" + fmt("%.4f", admission.window_miss_ratio())});
        break;
      }
      case OverloadDecision::Shed: {
        if (active_.empty()) break;
        // Victim: lowest priority; among ties, the most recently admitted
        // (latest index — LIFO, so long-running streams survive).
        std::size_t victim = 0;
        for (std::size_t i = 1; i < active_.size(); ++i)
          if (active_[i]->spec.priority <= active_[victim]->spec.priority)
            victim = i;
        const std::string name = active_[victim]->name;
        const int priority = active_[victim]->spec.priority;
        active_[victim]->shed_ctr->add(1);
        retire_stream(victim, tick, report.streams);
        shed_ctr.add(1);
        ++report.sheds;
        report.events.push_back(
            {tick, name, ServeAction::Shed,
             "priority=" + std::to_string(priority) +
                 " miss_ratio=" + fmt("%.4f", admission.window_miss_ratio())});
        break;
      }
    }

    for (std::size_t i = events_before; i < report.events.size(); ++i) {
      const AdmissionEvent& ev = report.events[i];
      report.timeline.push_back(
          {ev.tick, ev.stream, serve_action_name(ev.action), ev.detail});
    }

    ticks_ctr.add(1);
    ++report.ticks;
    ++tick;

    // Periodic exposition snapshot, end of tick on the driving thread —
    // all parallel work has joined, so the serve.* slice is settled.
    if (config_.snapshot_every_ticks > 0 &&
        report.ticks % config_.snapshot_every_ticks == 0)
      report.snapshots.push_back(capture_fleet_snapshot(tick - 1));
  }

  report.final_floor = admission.level_floor();
  for (const core::BurnRateTracker& b : burns) {
    BurnAlert a;
    a.id = b.config().id;
    a.latched = b.state().latched;
    a.alert_tick = b.state().alert_tick;
    a.fast_burn = b.state().fast_burn;
    a.slow_burn = b.state().slow_burn;
    report.burn_alerts.push_back(std::move(a));
  }
  if (!sketch.empty()) {
    report.p50_frame_ms = sketch.quantile(0.5);
    report.p99_frame_ms = sketch.quantile(0.99);
    report.max_frame_ms = sketch.max();
  }
  report.mean_congestion =
      congestion_ticks > 0
          ? congestion_sum / static_cast<double>(congestion_ticks)
          : 1.0;
  report.incidents = slo.incidents();
  return report;
}

void write_serve_report(const ServeReport& report, std::ostream& out) {
  out << "rrp_serve report\n";
  out << "  streams: " << report.streams.size() << " specs, "
      << report.admitted << " admitted, " << report.rejected << " rejected, "
      << report.sheds << " shed\n";
  const double miss_rate =
      report.frames > 0 ? static_cast<double>(report.deadline_misses) /
                              static_cast<double>(report.frames)
                        : 0.0;
  out << "  ticks: " << report.ticks << "  frames: " << report.frames
      << "  deadline misses: " << report.deadline_misses << " ("
      << fmt("%.2f", 100.0 * miss_rate) << "%)\n";
  out << "  frame_ms: p50=" << fmt("%.3f", report.p50_frame_ms)
      << " p99=" << fmt("%.3f", report.p99_frame_ms)
      << " max=" << fmt("%.3f", report.max_frame_ms) << "\n";
  out << "  congestion: mean x" << fmt("%.3f", report.mean_congestion)
      << "  peak active: " << report.peak_active << "\n";
  out << "  fleet: degrades=" << report.degrades
      << " restores=" << report.restores
      << " final floor=" << report.final_floor << "\n";
  out << "  events:\n";
  for (const AdmissionEvent& e : report.events)
    out << "    [tick " << e.tick << "] " << serve_action_name(e.action) << " "
        << e.stream << " (" << e.detail << ")\n";
  if (!report.incidents.empty()) {
    out << "  slo incidents:\n";
    for (const core::Incident& inc : report.incidents)
      out << "    [tick " << inc.frame << "] " << inc.slo_id
          << " observed=" << fmt("%.4f", inc.observed)
          << " threshold=" << fmt("%.4f", inc.threshold) << "\n";
  }
  if (!report.burn_alerts.empty()) {
    out << "  burn rates:\n";
    for (const BurnAlert& b : report.burn_alerts) {
      out << "    " << b.id << ": fast=" << fmt("%.4f", b.fast_burn)
          << " slow=" << fmt("%.4f", b.slow_burn);
      if (b.latched)
        out << " ALERT@tick " << b.alert_tick;
      else
        out << " ok";
      out << "\n";
    }
  }
  out << "  per-stream:\n";
  for (const StreamResult& r : report.streams) {
    out << "    " << r.name;
    if (r.admitted_tick < 0) {
      out << ": rejected\n";
      continue;
    }
    out << ": admitted@" << r.admitted_tick;
    if (r.shed_tick >= 0) out << " shed@" << r.shed_tick;
    out << " state=" << stream_final_state(r) << " frames="
        << r.frames_executed << " p50=" << fmt("%.3f", r.p50_frame_ms)
        << " p99=" << fmt("%.3f", r.p99_frame_ms)
        << " acc=" << fmt("%.4f", r.run.summary.accuracy)
        << " miss=" << fmt("%.4f", r.run.summary.deadline_miss_rate)
        << " mean_level=" << fmt("%.3f", r.run.summary.mean_level) << "\n";
  }
}

void write_serve_report_json(const ServeReport& report, std::ostream& out) {
  const auto num = [](double v) { return fmt("%.6f", v); };
  out << "{\"schema_version\":" << kSnapshotSchemaVersion << ",\n";
  out << "\"fleet\":{"
      << "\"ticks\":" << report.ticks << ",\"frames\":" << report.frames
      << ",\"deadline_misses\":" << report.deadline_misses
      << ",\"admitted\":" << report.admitted
      << ",\"rejected\":" << report.rejected
      << ",\"degrades\":" << report.degrades
      << ",\"restores\":" << report.restores << ",\"sheds\":" << report.sheds
      << ",\"peak_active\":" << report.peak_active
      << ",\"final_floor\":" << report.final_floor
      << ",\"p50_frame_ms\":" << num(report.p50_frame_ms)
      << ",\"p99_frame_ms\":" << num(report.p99_frame_ms)
      << ",\"max_frame_ms\":" << num(report.max_frame_ms)
      << ",\"mean_congestion\":" << num(report.mean_congestion) << "},\n";
  out << "\"streams\":[";
  for (std::size_t i = 0; i < report.streams.size(); ++i) {
    const StreamResult& r = report.streams[i];
    if (i) out << ",";
    out << "\n{\"spec_index\":" << r.spec_index << ",\"name\":\""
        << json_string_escape(r.name) << "\",\"state\":\""
        << stream_final_state(r) << "\",\"admitted_tick\":" << r.admitted_tick
        << ",\"shed_tick\":" << r.shed_tick
        << ",\"frames\":" << r.frames_executed
        << ",\"priority\":" << r.priority
        << ",\"p50_frame_ms\":" << num(r.p50_frame_ms)
        << ",\"p99_frame_ms\":" << num(r.p99_frame_ms)
        << ",\"accuracy\":" << num(r.run.summary.accuracy)
        << ",\"deadline_miss_rate\":" << num(r.run.summary.deadline_miss_rate)
        << ",\"mean_level\":" << num(r.run.summary.mean_level) << "}";
  }
  out << "\n],\n";
  out << "\"burn_alerts\":[";
  for (std::size_t i = 0; i < report.burn_alerts.size(); ++i) {
    const BurnAlert& b = report.burn_alerts[i];
    if (i) out << ",";
    out << "\n{\"id\":\"" << json_string_escape(b.id)
        << "\",\"latched\":" << (b.latched ? "true" : "false")
        << ",\"alert_tick\":" << b.alert_tick
        << ",\"fast_burn\":" << num(b.fast_burn)
        << ",\"slow_burn\":" << num(b.slow_burn) << "}";
  }
  out << "\n],\n";
  out << "\"timeline\":[";
  for (std::size_t i = 0; i < report.timeline.size(); ++i) {
    const FleetEvent& e = report.timeline[i];
    if (i) out << ",";
    out << "\n{\"tick\":" << e.tick << ",\"stream\":\""
        << json_string_escape(e.stream) << "\",\"kind\":\""
        << json_string_escape(e.kind) << "\",\"detail\":\""
        << json_string_escape(e.detail) << "\"}";
  }
  out << "\n]}\n";
}

}  // namespace rrp::serve
