// obs.h — the fleet observability plane's export surface (DESIGN.md §8).
//
// The serve engine is instrumented two ways:
//   * labeled per-stream metrics (util/metrics.h MetricDomain,
//     stream="<spec_index>") folded into the process-wide registry, and
//   * a per-tick fleet event timeline (admit / reject / degrade /
//     restore / shed / slo_breach / burn_alert) recorded in decision
//     order on the driving thread.
//
// This header renders both: every K ticks the engine captures a
// FleetSnapshot — the serve.* slice of the registry as schema-versioned
// sorted JSON plus Prometheus text exposition — and the timeline
// serializes as CSV.  All three artifacts are pure functions of
// registry/decision state that is itself byte-identical at any
// RRP_THREADS, so they are too (DESIGN.md invariant 17).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rrp::serve {

/// Version of the snapshot JSON schema; bumped on any layout change and
/// pinned by the bench gate (snapshot.schema_version).
inline constexpr int kSnapshotSchemaVersion = 1;

/// One fleet-level event, in decision order (the timeline).
struct FleetEvent {
  std::int64_t tick = 0;
  std::string stream;  ///< stream name; "fleet" for fleet-wide events
  std::string kind;    ///< admit|reject|degrade|restore|shed|slo_breach|burn_alert
  std::string detail;

  bool operator==(const FleetEvent& o) const {
    return tick == o.tick && stream == o.stream && kind == o.kind &&
           detail == o.detail;
  }
};

/// One periodic snapshot: the serve.* registry slice at the end of
/// `tick`, rendered both ways.
struct FleetSnapshot {
  std::int64_t tick = 0;
  std::string json;  ///< {"schema_version":1,"tick":T,"metrics":[…]}
  std::string prom;  ///< Prometheus text exposition, serve_* families
};

/// Captures the serve.* slice of the process-wide registry.  Driving
/// thread only (gauge reads race otherwise); the engine calls it at the
/// end of a tick, after the fold has joined.
FleetSnapshot capture_fleet_snapshot(std::int64_t tick);

/// "tick,stream,kind,detail" CSV of the timeline.
std::string timeline_csv(const std::vector<FleetEvent>& events);

}  // namespace rrp::serve
