#include "serve/admission.h"

#include "util/checks.h"
#include "util/metrics.h"

namespace rrp::serve {

const char* serve_action_name(ServeAction a) {
  switch (a) {
    case ServeAction::Admit: return "admit";
    case ServeAction::Reject: return "reject";
    case ServeAction::Degrade: return "degrade";
    case ServeAction::Restore: return "restore";
    case ServeAction::Shed: return "shed";
  }
  return "?";
}

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {
  RRP_CHECK_MSG(config_.max_streams >= 1, "capacity must be >= 1");
  RRP_CHECK_MSG(config_.window_ticks >= 1, "window must be >= 1 tick");
  RRP_CHECK_MSG(config_.max_floor >= 0, "max_floor must be >= 0");
  RRP_CHECK_MSG(config_.degrade_miss_ratio <= config_.shed_miss_ratio,
                "degrade threshold must not exceed shed threshold");
  window_.assign(static_cast<std::size_t>(config_.window_ticks), {0, 0});
}

double AdmissionController::window_miss_ratio() const {
  std::int64_t frames = 0;
  std::int64_t misses = 0;
  for (const auto& [f, m] : window_) {
    frames += f;
    misses += m;
  }
  return frames > 0 ? static_cast<double>(misses) / static_cast<double>(frames)
                    : 0.0;
}

OverloadDecision AdmissionController::update(std::int64_t frames,
                                             std::int64_t misses,
                                             bool slo_breach,
                                             bool burn_alert) {
  window_[window_next_] = {frames, misses};
  window_next_ = (window_next_ + 1) % window_.size();
  const double ratio = window_miss_ratio();

  const bool healthy =
      ratio <= config_.restore_miss_ratio && !slo_breach && !burn_alert;
  healthy_ticks_ = healthy ? healthy_ticks_ + 1 : 0;

  OverloadDecision decision = OverloadDecision::None;
  if (cooldown_ > 0) {
    --cooldown_;
  } else if ((ratio >= config_.degrade_miss_ratio || slo_breach ||
              burn_alert) &&
             floor_ < config_.max_floor) {
    ++floor_;
    cooldown_ = config_.cooldown_ticks;
    healthy_ticks_ = 0;
    decision = OverloadDecision::Degrade;
  } else if (ratio >= config_.shed_miss_ratio && floor_ >= config_.max_floor) {
    cooldown_ = config_.cooldown_ticks;
    healthy_ticks_ = 0;
    decision = OverloadDecision::Shed;
  } else if (floor_ > 0 && healthy_ticks_ >= config_.restore_healthy_ticks) {
    --floor_;
    cooldown_ = config_.cooldown_ticks;
    healthy_ticks_ = 0;
    decision = OverloadDecision::Restore;
  }

  // Fleet gauges for the snapshot exporter (pre-registered in the
  // built-in schema; driving thread, so the writes land).  Published
  // after the decision so an end-of-tick snapshot sees the floor that
  // the NEXT tick's frames will run under.
  metrics::gauge("serve.admission.floor").set(static_cast<double>(floor_));
  metrics::gauge("serve.admission.window_miss_ratio").set(ratio);
  return decision;
}

void AdmissionController::reset() {
  window_.assign(static_cast<std::size_t>(config_.window_ticks), {0, 0});
  window_next_ = 0;
  floor_ = 0;
  healthy_ticks_ = 0;
  cooldown_ = 0;
}

}  // namespace rrp::serve
