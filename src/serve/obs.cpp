#include "serve/obs.h"

#include <sstream>

#include "core/metrics.h"
#include "core/metrics_export.h"
#include "util/csv.h"

namespace rrp::serve {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

bool serve_row(const std::string& name) {
  return name.rfind("serve.", 0) == 0;
}

// The exposition sanitizes "serve." to "serve_", so the serve slice is
// exactly the lines whose metric (or TYPE target) starts with "serve_".
bool serve_exposition_line(const std::string& line) {
  if (line.rfind("serve_", 0) == 0) return true;
  return line.rfind("# TYPE serve_", 0) == 0;
}

}  // namespace

FleetSnapshot capture_fleet_snapshot(std::int64_t tick) {
  FleetSnapshot snap;
  snap.tick = tick;

  const core::MetricsSnapshot all = core::capture_metrics();
  std::ostringstream json;
  json << "{\"schema_version\":" << kSnapshotSchemaVersion
       << ",\"tick\":" << tick << ",\"metrics\":[";
  bool first = true;
  for (const core::MetricRow& r : all.rows) {
    if (!serve_row(r.name)) continue;
    if (!first) json << ",";
    first = false;
    json << "\n{\"name\":\"" << json_escape(r.name) << "\",\"kind\":\""
         << r.kind << "\",\"value\":" << r.value << "}";
  }
  json << "\n]}\n";
  snap.json = json.str();

  std::istringstream prom_all(core::prometheus_exposition());
  std::ostringstream prom;
  std::string line;
  while (std::getline(prom_all, line))
    if (serve_exposition_line(line)) prom << line << '\n';
  snap.prom = prom.str();
  return snap;
}

std::string timeline_csv(const std::vector<FleetEvent>& events) {
  std::ostringstream os;
  os << "tick,stream,kind,detail\n";
  for (const FleetEvent& e : events)
    os << e.tick << ',' << csv_escape(e.stream) << ',' << csv_escape(e.kind)
       << ',' << csv_escape(e.detail) << '\n';
  return os.str();
}

}  // namespace rrp::serve
