// serve_engine.h — the fleet-scale multi-stream serving runtime.
//
// One long-lived engine owns ONE shared, immutable compacted ladder (the
// "past" weights, core::CompactedLadderProvider) and serves N concurrent
// perception streams over it.  Each stream is a full closed loop of its
// own — a core::CompactedLadderView with its own mask level, a policy, a
// SafetyMonitor, a MAPE-K RuntimeController and a sim::StreamState — but
// the weights are resident exactly once: admitting a stream allocates a
// view (an index), not a model.
//
// Execution is tick-based.  Per tick the engine:
//   1. admits/rejects the streams arriving at this tick (driving thread,
//      arrival order — serve/admission.h);
//   2. steps every active stream by one frame, fanned over the
//      deterministic thread pool into pre-sized per-stream slots;
//   3. folds the slots on the driving thread in stream-index order:
//      congestion-adjusted frame times into serve.* metrics and the
//      quantile sketch, completed streams retired in order;
//   4. evaluates the online SLOs (core/slo.h) and feeds the windowed
//      miss ratio into the overload state machine, which may raise the
//      fleet level floor (Degrade), lower it (Restore) or drop the
//      lowest-priority stream (Shed).
//
// Determinism (DESIGN.md invariant 16): the fan-out writes disjoint
// per-stream state, the fold order is the stream index order, per-stream
// RNG streams are split from the engine seed by index, and spans/gauge
// writes are suppressed inside pool chunk bodies — so per-stream outputs,
// the admission/shed event trace and every aggregate are byte-identical
// at any RRP_THREADS.
//
// Modeled overload: the host grants `tick_budget_ms` of modeled compute
// per tick.  When the fleet's demand exceeds it, every frame of that tick
// is stretched by the congestion factor (demand / budget) in the SERVE
// accounting — per-stream telemetry stays the pure uncontended closed
// loop (and byte-identical to a solo sim/runner run of the same spec).
#pragma once

#include <iosfwd>
#include <memory>

#include "core/slo.h"
#include "serve/admission.h"
#include "serve/obs.h"
#include "sim/frame_engine.h"
#include "util/qsketch.h"

namespace rrp::serve {

/// One stream's workload description.
struct StreamSpec {
  std::string name;                 ///< default: "stream<index>"
  std::string scenario = "cut_in";  ///< suite | builtin spec | "dsl:<line>"
  std::string policy = "greedy";    ///< "greedy" | "fixed<K>"
  int frames = 300;
  std::int64_t arrival_tick = 0;  ///< tick at which admission is requested
  int priority = 0;               ///< higher survives shedding longer
  double deadline_ms = 12.0;
  int hysteresis = 6;
  std::uint64_t seed = 0;  ///< sensor-noise seed; 0: split from engine seed
};

/// Everything the engine needs about the one provisioned model it serves
/// (mirrors sim::CampaignInputs; the network is snapshotted at
/// construction and never mutated by streams).
struct ServeInputs {
  nn::Network* net = nullptr;
  const prune::PruneLevelLibrary* levels = nullptr;
  std::vector<core::BnState> bn_states;
  core::SafetyConfig certified;
};

struct ServeConfig {
  std::uint64_t seed = 20240807;  ///< per-stream RNG splits derive from this
  /// Modeled compute the host grants per tick, in platform-model ms.
  /// Demand above it stretches that tick's frames by demand/budget in the
  /// serve accounting.  0 = uncontended (congestion factor pinned to 1).
  double tick_budget_ms = 0.0;
  AdmissionConfig admission;  ///< max_floor 0 = deepest ladder level
  int sensing_delay_frames = 1;
  double sketch_gamma = 0.01;  ///< frame-latency quantile sketch accuracy
  /// Online SLOs over the serve.* metrics, evaluated once per tick on the
  /// driving thread; a breach counts as overload pressure.  Empty = use
  /// standard_serve_slos().
  std::vector<core::SloSpec> slos;
  /// Multi-window burn-rate alerts over serve.* counter ratios; an
  /// alerting tracker counts as overload pressure BEFORE the SLO itself
  /// latches.  Empty = use standard_serve_burn_rates().
  std::vector<core::BurnRateConfig> burn_rates;
  /// Capture a FleetSnapshot every K ticks (serve/obs.h); 0 = never.
  int snapshot_every_ticks = 0;
  /// Measured wall-clock channel: per-frame infer wall times land in
  /// each stream's RunResult::wall, and the util/wprof profiler (when
  /// enabled) aggregates per-level/per-tick spans.  Never touches the
  /// deterministic telemetry/trace/metrics channels.
  bool measure_wall = false;
  sim::PlatformConfig platform;
  sim::CriticalityConfig criticality;
  sim::VisionTaskConfig vision;
};

/// Outcome of one spec (admitted or not), in spec order.
struct StreamResult {
  std::size_t spec_index = 0;
  std::string name;
  std::int64_t admitted_tick = -1;  ///< -1: rejected at arrival
  std::int64_t shed_tick = -1;      ///< -1: ran to completion
  std::int64_t frames_executed = 0;
  int priority = 0;
  /// Telemetry of the executed frames (partial when shed, empty when
  /// rejected).  Byte-identical to a solo sim/runner run of the same
  /// stream when the floor never engaged.
  sim::RunResult run;
  /// Congestion-adjusted per-stream frame-time tails (util/qsketch;
  /// 0 when the stream executed no frames).
  double p50_frame_ms = 0.0;
  double p99_frame_ms = 0.0;
};

/// Final state of one burn-rate tracker after a run.
struct BurnAlert {
  std::string id;
  bool latched = false;
  std::int64_t alert_tick = -1;  ///< first alerting tick (-1: never)
  double fast_burn = 0.0;        ///< burns at the END of the run
  double slow_burn = 0.0;
};

struct ServeReport {
  std::vector<StreamResult> streams;   ///< spec order, one per spec
  std::vector<AdmissionEvent> events;  ///< decision order
  std::int64_t ticks = 0;
  std::int64_t frames = 0;
  std::int64_t deadline_misses = 0;  ///< congestion-adjusted
  std::int64_t admitted = 0;
  std::int64_t rejected = 0;
  std::int64_t degrades = 0;
  std::int64_t restores = 0;
  std::int64_t sheds = 0;
  int peak_active = 0;
  int final_floor = 0;
  double p50_frame_ms = 0.0;  ///< congestion-adjusted, via util/qsketch
  double p99_frame_ms = 0.0;
  double max_frame_ms = 0.0;
  double mean_congestion = 1.0;  ///< mean per-tick congestion factor
  std::vector<core::Incident> incidents;  ///< from the online SLO monitor
  std::vector<BurnAlert> burn_alerts;     ///< one per burn-rate tracker
  /// Unified fleet event timeline: every admission event plus slo_breach
  /// and burn_alert markers, in decision order (serve/obs.h).
  std::vector<FleetEvent> timeline;
  /// Periodic snapshots (config.snapshot_every_ticks; empty when 0).
  std::vector<FleetSnapshot> snapshots;
};

/// Engine-owned policy wrapper: max(inner decision, fleet level floor).
/// The floor is set on the driving thread between ticks; decide() runs
/// inside the stream's own chunk body, so there is no concurrent access.
/// name() delegates to the inner policy — the floor is an engine
/// intervention (visible in the event trace), not a policy identity.
class FloorPolicy : public core::Policy {
 public:
  explicit FloorPolicy(std::unique_ptr<core::Policy> inner)
      : inner_(std::move(inner)) {}

  const std::string& name() const override { return inner_->name(); }
  // rrp-frame-path: per-frame floored level decision.
  int decide(const core::ControlInput& in, int current_level) override {
    const int want = inner_->decide(in, current_level);
    return want > floor_ ? want : floor_;
  }
  void reset() override { inner_->reset(); }

  void set_floor(int floor) { floor_ = floor; }
  int floor() const { return floor_; }

 private:
  std::unique_ptr<core::Policy> inner_;
  int floor_ = 0;
};

/// The standard serving objectives: congestion-adjusted deadline-miss
/// rate <= 10% (>= 64 frames) and frame-time p99 <= 30 ms.
std::vector<core::SloSpec> standard_serve_slos();

/// The standard leading signal: deadline-miss budget 10%, fast window 8
/// ticks over burn 2x AND slow window 32 ticks over burn 1x (>= 8
/// samples in the fast window) — fires well before slo.serve_miss_rate
/// can even evaluate (64 samples).
std::vector<core::BurnRateConfig> standard_serve_burn_rates();

/// The per-stream metric-label schema: every spec index gets the domain
/// {stream="<spec_index>"} over these bases.  ServeEngine::run
/// pre-registers all of them on the driving thread before the first
/// fan-out, so worker-thread lookups never mutate the registry.
metrics::MetricDomain stream_metric_domain(std::size_t spec_index);

/// The documented per-stream seed split (DESIGN.md invariant 16): stream
/// `spec_index` derives its scenario and sensor-noise streams from the
/// engine seed via a fixed golden-ratio stride plus per-purpose salts —
/// collision-free across streams and reproducible outside the engine, so
/// any stream can be re-run solo through sim/runner from its spec alone
/// (the parity pin in tests/test_serve.cpp).
std::uint64_t stream_scenario_seed(std::uint64_t engine_seed,
                                   std::size_t spec_index);
std::uint64_t stream_noise_seed(std::uint64_t engine_seed,
                                std::size_t spec_index);

class ServeEngine {
 public:
  /// Materializes the shared compacted ladder once.  `inputs.net` must
  /// outlive the engine; its weights are snapshotted, not retained.
  ServeEngine(const ServeInputs& inputs, ServeConfig config);
  ~ServeEngine();  // out of line: ActiveStream is complete only in the .cpp

  /// Serves every spec to completion (or shedding) and returns the full
  /// report.  Callable repeatedly: each run resets the serve.* metrics
  /// and the overload state, so the report is a pure function of
  /// (specs, config, seed) — replaying the same schedule reproduces the
  /// identical event trace and aggregates.
  ServeReport run(const std::vector<StreamSpec>& specs);

  /// Streams currently admitted and not yet retired (0 after run()).
  int active_stream_count() const { return static_cast<int>(active_.size()); }
  core::CompactedLadderProvider& shared_provider() { return *shared_; }
  const ServeConfig& config() const { return config_; }

 private:
  struct ActiveStream;

  std::unique_ptr<ActiveStream> admit_stream(const StreamSpec& spec,
                                             std::size_t spec_index,
                                             std::int64_t tick);
  void retire_stream(std::size_t active_index, std::int64_t shed_tick,
                     std::vector<StreamResult>& results);

  ServeConfig config_;
  core::SafetyConfig certified_;
  std::unique_ptr<core::CompactedLadderProvider> shared_;
  std::vector<std::unique_ptr<ActiveStream>> active_;
};

/// Human-readable report (the `rrp_cli serve` output).
void write_serve_report(const ServeReport& report, std::ostream& out);

/// Machine-readable report (`rrp_cli serve --report-json`): the same
/// content as the text report, schema-versioned, deterministically
/// formatted (sorted keys, fixed precision).
void write_serve_report_json(const ServeReport& report, std::ostream& out);

}  // namespace rrp::serve
