#include "prune/compact.h"

#include <algorithm>

#include "util/checks.h"

namespace rrp::prune {

using nn::Layer;
using nn::LayerKind;
using nn::Network;
using nn::Shape;
using nn::Tensor;

namespace {

// Walk state: indices (in ORIGINAL numbering) of the surviving channels of
// the current activation, plus the original network's activation shape.
struct Walk {
  std::vector<int> live;  // surviving original channel / feature indices
  Shape shape;            // activation shape of the ORIGINAL network
};

std::vector<int> kept_indices(const std::vector<std::uint8_t>& keep) {
  std::vector<int> idx;
  for (std::size_t i = 0; i < keep.size(); ++i)
    if (keep[i]) idx.push_back(static_cast<int>(i));
  return idx;
}

bool is_full(const std::vector<int>& live, int width) {
  if (static_cast<int>(live.size()) != width) return false;
  for (int i = 0; i < width; ++i) if (live[static_cast<std::size_t>(i)] != i) return false;
  return true;
}

Network compact_body(const Network& body,
                     const std::vector<ChannelMask>& cms, Walk& w);

std::unique_ptr<Layer> compact_conv(const nn::Conv2D& conv,
                                    const std::vector<ChannelMask>& cms,
                                    Walk& w) {
  RRP_CHECK_MSG(w.shape.size() == 4 && w.shape[1] == conv.in_channels(),
                "compaction shape drift at conv '" << conv.name() << "'");
  const ChannelMask* cm = find_channel_mask(cms, conv.name());
  std::vector<int> out_idx;
  if (cm != nullptr) {
    RRP_CHECK_MSG(conv.out_prunable(),
                  "channel mask on non-prunable conv '" << conv.name() << "'");
    RRP_CHECK_MSG(static_cast<int>(cm->keep.size()) == conv.out_channels(),
                  "channel mask width mismatch on '" << conv.name() << "'");
    out_idx = kept_indices(cm->keep);
    RRP_CHECK_MSG(!out_idx.empty(),
                  "cannot prune every channel of '" << conv.name() << "'");
  } else {
    out_idx.resize(static_cast<std::size_t>(conv.out_channels()));
    for (int i = 0; i < conv.out_channels(); ++i)
      out_idx[static_cast<std::size_t>(i)] = i;
  }

  const int new_in = static_cast<int>(w.live.size());
  const int new_out = static_cast<int>(out_idx.size());
  const int k = conv.kernel();
  auto out = std::make_unique<nn::Conv2D>(conv.name(), new_in, new_out, k,
                                          conv.stride(), conv.padding(),
                                          conv.with_bias());
  out->set_out_prunable(conv.out_prunable());

  // Gather weight[new_out, new_in, k, k] from weight[out, in, k, k].
  const Tensor& src = conv.weight();
  Tensor& dst = out->weight();
  const int kk = k * k;
  for (int o = 0; o < new_out; ++o) {
    const int so = out_idx[static_cast<std::size_t>(o)];
    for (int i = 0; i < new_in; ++i) {
      const int si = w.live[static_cast<std::size_t>(i)];
      const float* s =
          src.raw() +
          (static_cast<std::int64_t>(so) * conv.in_channels() + si) * kk;
      float* d =
          dst.raw() + (static_cast<std::int64_t>(o) * new_in + i) * kk;
      std::copy(s, s + kk, d);
    }
  }
  if (conv.with_bias())
    for (int o = 0; o < new_out; ++o)
      out->bias()[o] = conv.bias()[out_idx[static_cast<std::size_t>(o)]];

  w.live = std::move(out_idx);
  return out;
}

std::unique_ptr<Layer> compact_linear(const nn::Linear& lin,
                                      const std::vector<ChannelMask>& cms,
                                      Walk& w) {
  const ChannelMask* cm = find_channel_mask(cms, lin.name());
  std::vector<int> out_idx;
  if (cm != nullptr) {
    RRP_CHECK_MSG(lin.out_prunable(),
                  "channel mask on non-prunable linear '" << lin.name() << "'");
    RRP_CHECK_MSG(static_cast<int>(cm->keep.size()) == lin.out_features(),
                  "channel mask width mismatch on '" << lin.name() << "'");
    out_idx = kept_indices(cm->keep);
    RRP_CHECK_MSG(!out_idx.empty(),
                  "cannot prune every row of '" << lin.name() << "'");
  } else {
    out_idx.resize(static_cast<std::size_t>(lin.out_features()));
    for (int i = 0; i < lin.out_features(); ++i)
      out_idx[static_cast<std::size_t>(i)] = i;
  }

  const int new_in = static_cast<int>(w.live.size());
  const int new_out = static_cast<int>(out_idx.size());
  auto out =
      std::make_unique<nn::Linear>(lin.name(), new_in, new_out, lin.with_bias());
  out->set_out_prunable(lin.out_prunable());

  const Tensor& src = lin.weight();
  Tensor& dst = out->weight();
  for (int o = 0; o < new_out; ++o) {
    const int so = out_idx[static_cast<std::size_t>(o)];
    for (int i = 0; i < new_in; ++i)
      dst.at(o, i) = src.at(so, w.live[static_cast<std::size_t>(i)]);
  }
  if (lin.with_bias())
    for (int o = 0; o < new_out; ++o)
      out->bias()[o] = lin.bias()[out_idx[static_cast<std::size_t>(o)]];

  w.live = std::move(out_idx);
  return out;
}

std::unique_ptr<Layer> compact_depthwise(const nn::DepthwiseConv2D& dw,
                                         const std::vector<ChannelMask>& cms,
                                         Walk& w) {
  RRP_CHECK_MSG(w.shape.size() == 4 && w.shape[1] == dw.channels(),
                "compaction shape drift at depthwise '" << dw.name() << "'");
  const ChannelMask* cm = find_channel_mask(cms, dw.name());
  if (cm != nullptr) {
    RRP_CHECK_MSG(dw.out_prunable(), "channel mask on non-prunable depthwise '"
                                         << dw.name() << "'");
    RRP_CHECK_MSG(static_cast<int>(cm->keep.size()) == dw.channels(),
                  "channel mask width mismatch on '" << dw.name() << "'");
    // Intersect upstream-surviving channels with this layer's keep set.
    std::vector<int> survivors;
    for (int c : w.live)
      if (cm->keep[static_cast<std::size_t>(c)]) survivors.push_back(c);
    RRP_CHECK_MSG(!survivors.empty(),
                  "cannot prune every channel of '" << dw.name() << "'");
    w.live = std::move(survivors);
  }

  const int new_c = static_cast<int>(w.live.size());
  const int k = dw.kernel();
  auto out = std::make_unique<nn::DepthwiseConv2D>(
      dw.name(), new_c, k, dw.stride(), dw.padding(), dw.with_bias());
  out->set_out_prunable(dw.out_prunable());
  const int kk = k * k;
  for (int c = 0; c < new_c; ++c) {
    const int sc = w.live[static_cast<std::size_t>(c)];
    const float* s = dw.weight().raw() + static_cast<std::int64_t>(sc) * kk;
    float* d = out->weight().raw() + static_cast<std::int64_t>(c) * kk;
    std::copy(s, s + kk, d);
    if (dw.with_bias()) out->bias()[c] = dw.bias()[sc];
  }
  return out;
}

std::unique_ptr<Layer> compact_batchnorm(const nn::BatchNorm& bn, Walk& w) {
  RRP_CHECK_MSG(static_cast<int>(w.live.size()) <= bn.channels(),
                "compaction width drift at BN '" << bn.name() << "'");
  const int new_c = static_cast<int>(w.live.size());
  auto out = std::make_unique<nn::BatchNorm>(bn.name(), new_c, bn.momentum(),
                                             bn.eps());
  for (int c = 0; c < new_c; ++c) {
    const int sc = w.live[static_cast<std::size_t>(c)];
    out->gamma()[c] = bn.gamma()[sc];
    out->beta()[c] = bn.beta()[sc];
    out->running_mean()[c] = bn.running_mean()[sc];
    out->running_var()[c] = bn.running_var()[sc];
  }
  return out;
}

std::unique_ptr<Layer> compact_one(const Layer& layer,
                                   const std::vector<ChannelMask>& cms,
                                   Walk& w) {
  std::unique_ptr<Layer> out;
  switch (layer.kind()) {
    case LayerKind::Conv2D:
      out = compact_conv(static_cast<const nn::Conv2D&>(layer), cms, w);
      break;
    case LayerKind::Linear:
      out = compact_linear(static_cast<const nn::Linear&>(layer), cms, w);
      break;
    case LayerKind::DepthwiseConv2D:
      out = compact_depthwise(static_cast<const nn::DepthwiseConv2D&>(layer),
                              cms, w);
      break;
    case LayerKind::BatchNorm:
      out = compact_batchnorm(static_cast<const nn::BatchNorm&>(layer), w);
      break;
    case LayerKind::Flatten: {
      RRP_CHECK_MSG(w.shape.size() == 4,
                    "Flatten compaction needs a 4-D activation shape");
      const int hw = w.shape[2] * w.shape[3];
      std::vector<int> feat;
      feat.reserve(w.live.size() * static_cast<std::size_t>(hw));
      for (int c : w.live)
        for (int p = 0; p < hw; ++p) feat.push_back(c * hw + p);
      w.live = std::move(feat);
      out = layer.clone();
      break;
    }
    case LayerKind::Residual: {
      const auto& res = static_cast<const nn::Residual&>(layer);
      RRP_CHECK_MSG(
          is_full(w.live, w.shape[1]),
          "activation entering residual block '"
              << res.name()
              << "' is pruned; mark the producing layer out_prunable=false");
      Walk body_walk = w;
      Network body = compact_body(res.body(), cms, body_walk);
      RRP_CHECK_MSG(is_full(body_walk.live, w.shape[1]),
                    "residual body '" << res.name()
                                      << "' must not prune its final output");
      out = std::make_unique<nn::Residual>(res.name(), std::move(body));
      break;
    }
    case LayerKind::ReLU:
    case LayerKind::Softmax:
    case LayerKind::MaxPool:
    case LayerKind::AvgPool:
    case LayerKind::GlobalAvgPool:
      out = layer.clone();
      break;
  }
  w.shape = layer.output_shape(w.shape);
  return out;
}

Network compact_body(const Network& body,
                     const std::vector<ChannelMask>& cms, Walk& w) {
  Network out(body.name());
  for (const auto& l : body.layers()) out.add(compact_one(*l, cms, w));
  return out;
}

}  // namespace

Network compact_network(const Network& net,
                        const std::vector<ChannelMask>& channel_masks,
                        const Shape& input_shape) {
  RRP_CHECK_MSG(input_shape.size() >= 2 && input_shape[0] == 1,
                "input_shape must be a batch-1 sample shape");
  Walk w;
  w.shape = input_shape;
  w.live.resize(static_cast<std::size_t>(input_shape[1]));
  for (int i = 0; i < input_shape[1]; ++i)
    w.live[static_cast<std::size_t>(i)] = i;
  Network out = compact_body(net, channel_masks, w);
  out.set_name(net.name());
  return out;
}

}  // namespace rrp::prune
