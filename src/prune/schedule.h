// schedule.h — iterative magnitude pruning (IMP) with fine-tuning.
//
// The classical DESIGN-TIME pipeline the reversible runtime is compared
// against: alternate (prune a slice of the remaining weights) → (fine-tune
// with the zeros frozen) until the target sparsity is reached.  Produces a
// single static artifact; recovery from it at runtime is exactly the slow
// path measured in R-T1.  Provided both as a fair "best static baseline"
// and because one-shot vs iterative is a standard ablation (R-F7 text).
#pragma once

#include "nn/train.h"
#include "prune/planner.h"

namespace rrp::prune {

struct IterativeScheduleConfig {
  double target_ratio = 0.8;   ///< final fraction of weights pruned
  int steps = 4;               ///< prune/fine-tune rounds
  int finetune_epochs = 1;     ///< per round
  nn::SgdConfig sgd = {.lr = 0.01f,
                       .momentum = 0.9f,
                       .weight_decay = 1e-4f,
                       .batch_size = 32,
                       .epochs = 1,
                       .lr_decay = 1.0f,
                       .freeze_zeros = true};
  UnstructuredOptions plan;    ///< how each round's mask is chosen
};

struct IterativeStepStats {
  int step = 0;
  double ratio = 0.0;      ///< cumulative target ratio after this step
  double sparsity = 0.0;   ///< achieved network sparsity
  double accuracy = 0.0;   ///< eval accuracy after fine-tuning
};

/// Runs the schedule IN PLACE on `net` (this is a one-way, design-time
/// operation — the whole point of the contrast with ReversiblePruner).
/// Ratios follow the cubic sparsity schedule of Zhu & Gupta: gentle first
/// cuts, aggressive last ones.
std::vector<IterativeStepStats> iterative_magnitude_prune(
    nn::Network& net, const nn::Dataset& train_data,
    const nn::Dataset& eval_data, const IterativeScheduleConfig& config,
    Rng& rng);

}  // namespace rrp::prune
