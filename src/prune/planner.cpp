#include "prune/planner.h"

#include <algorithm>
#include <map>

#include "nn/network.h"
#include "util/checks.h"

namespace rrp::prune {

using nn::Layer;
using nn::LayerKind;
using nn::Network;

namespace {

/// Weight parameters eligible for unstructured pruning, with their layers.
struct WeightParam {
  std::string name;
  nn::Tensor* tensor;
};

std::vector<WeightParam> weight_params(Network& net) {
  std::vector<WeightParam> out;
  for (Layer* l : net.leaf_layers()) {
    if (auto* lin = dynamic_cast<nn::Linear*>(l))
      out.push_back({lin->name() + ".weight", &lin->weight()});
    else if (auto* conv = dynamic_cast<nn::Conv2D*>(l))
      out.push_back({conv->name() + ".weight", &conv->weight()});
    else if (auto* dw = dynamic_cast<nn::DepthwiseConv2D*>(l))
      out.push_back({dw->name() + ".weight", &dw->weight()});
  }
  return out;
}

std::vector<std::uint8_t> keep_lowest_pruned(
    const std::vector<float>& scores, std::size_t prune_count,
    std::size_t min_keep) {
  std::vector<std::uint8_t> keep(scores.size(), 1);
  if (scores.size() <= min_keep) return keep;
  prune_count = std::min(prune_count, scores.size() - min_keep);
  const auto order = ascending_order(scores);
  for (std::size_t i = 0; i < prune_count; ++i) keep[order[i]] = 0;
  return keep;
}

}  // namespace

NetworkMask plan_unstructured(Network& net, double ratio,
                              const UnstructuredOptions& options) {
  RRP_CHECK_MSG(ratio >= 0.0 && ratio < 1.0,
                "unstructured ratio " << ratio << " outside [0, 1)");
  NetworkMask mask;
  auto params = weight_params(net);
  if (ratio == 0.0 || params.empty()) return mask;

  if (options.global_threshold) {
    // Rank every weight element across the whole network together.
    std::vector<float> all;
    for (const auto& p : params) {
      auto s = element_scores(*p.tensor, options.metric);
      all.insert(all.end(), s.begin(), s.end());
    }
    const std::size_t prune_count =
        static_cast<std::size_t>(ratio * static_cast<double>(all.size()));
    if (prune_count == 0) return mask;
    std::vector<float> sorted = all;
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<std::ptrdiff_t>(prune_count - 1),
                     sorted.end());
    const float threshold = sorted[prune_count - 1];

    for (const auto& p : params) {
      const auto s = element_scores(*p.tensor, options.metric);
      std::vector<std::uint8_t> keep(s.size(), 1);
      std::size_t kept = s.size();
      for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] <= threshold && kept > 1) {
          keep[i] = 0;
          --kept;
        }
      }
      mask.set(p.name, std::move(keep));
    }
  } else {
    for (const auto& p : params) {
      const auto s = element_scores(*p.tensor, options.metric);
      const std::size_t prune_count =
          static_cast<std::size_t>(ratio * static_cast<double>(s.size()));
      mask.set(p.name, keep_lowest_pruned(s, prune_count, 1));
    }
  }
  return mask;
}

std::vector<Layer*> prunable_layers(Network& net) {
  std::vector<Layer*> out;
  for (Layer* l : net.leaf_layers()) {
    if (auto* lin = dynamic_cast<nn::Linear*>(l)) {
      if (lin->out_prunable()) out.push_back(l);
    } else if (auto* conv = dynamic_cast<nn::Conv2D*>(l)) {
      if (conv->out_prunable()) out.push_back(l);
    } else if (auto* dw = dynamic_cast<nn::DepthwiseConv2D*>(l)) {
      if (dw->out_prunable()) out.push_back(l);
    }
  }
  return out;
}

std::vector<ChannelMask> plan_structured(Network& net, double ratio,
                                         const StructuredOptions& options) {
  RRP_CHECK_MSG(ratio >= 0.0 && ratio < 1.0,
                "structured ratio " << ratio << " outside [0, 1)");
  RRP_CHECK(options.min_channels >= 1);
  std::vector<ChannelMask> out;
  if (ratio == 0.0) return out;
  for (Layer* l : prunable_layers(net)) {
    const auto scores = channel_scores(*l, options.metric);
    const std::size_t prune_count =
        static_cast<std::size_t>(ratio * static_cast<double>(scores.size()));
    if (prune_count == 0) continue;
    ChannelMask cm;
    cm.layer_name = l->name();
    cm.keep = keep_lowest_pruned(
        scores, prune_count, static_cast<std::size_t>(options.min_channels));
    if (cm.pruned_count() > 0) out.push_back(std::move(cm));
  }
  return out;
}

namespace {

/// Leaf layers paired with their (single-sample) input shapes, walking
/// through Residual bodies.
void collect_with_shapes(
    const std::vector<std::unique_ptr<Layer>>& layers, nn::Shape shape,
    std::vector<std::pair<Layer*, nn::Shape>>& out) {
  for (const auto& l : layers) {
    if (l->kind() == LayerKind::Residual) {
      auto* res = static_cast<nn::Residual*>(l.get());
      collect_with_shapes(res->body().layers(), shape, out);
    } else {
      out.push_back({l.get(), shape});
    }
    shape = l->output_shape(shape);
  }
}

}  // namespace

std::vector<ChannelMask> plan_structured_for_macs(
    Network& net, double target_macs_fraction, const nn::Shape& input_shape,
    const StructuredOptions& options) {
  RRP_CHECK_MSG(target_macs_fraction > 0.0 && target_macs_fraction <= 1.0,
                "target MAC fraction " << target_macs_fraction
                                       << " outside (0, 1]");
  RRP_CHECK(options.min_channels >= 1);

  std::vector<std::pair<Layer*, nn::Shape>> located;
  collect_with_shapes(net.layers(), input_shape, located);

  // Candidate channels across all prunable layers with importance and an
  // (approximate, producer-side) MAC cost per channel.
  struct Candidate {
    Layer* layer;
    std::size_t channel;
    double score;
    double mac_cost;
  };
  std::vector<Candidate> candidates;
  std::map<Layer*, std::size_t> kept;
  const auto prunable = prunable_layers(net);
  for (std::size_t li = 0; li < located.size(); ++li) {
    Layer* layer = located[li].first;
    const nn::Shape& shape = located[li].second;
    if (std::find(prunable.begin(), prunable.end(), layer) == prunable.end())
      continue;
    const auto scores = channel_scores(*layer, options.metric);
    // Producer-side cost per channel, plus the next parameterized
    // consumer's share: consumer MACs are exactly linear in the producer's
    // width (input channels / features), so each producer channel carries
    // consumer_macs / width of them.
    double per_channel_macs =
        static_cast<double>(layer->macs(shape)) / scores.size();
    for (std::size_t lj = li + 1; lj < located.size(); ++lj) {
      Layer* next = located[lj].first;
      const LayerKind k = next->kind();
      if (k == LayerKind::Conv2D || k == LayerKind::Linear ||
          k == LayerKind::DepthwiseConv2D) {
        per_channel_macs +=
            static_cast<double>(next->macs(located[lj].second)) /
            scores.size();
        break;
      }
    }
    for (std::size_t c = 0; c < scores.size(); ++c)
      candidates.push_back({layer, c, scores[c], per_channel_macs});
    kept[layer] = scores.size();
  }

  // Lowest importance-per-MAC first (a cheap unimportant channel is less
  // attractive than an expensive unimportant one at equal score).
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.score / std::max(a.mac_cost, 1e-12) <
                            b.score / std::max(b.mac_cost, 1e-12);
                   });

  const double total_macs = static_cast<double>(net.macs(input_shape));
  double remaining = total_macs;
  const double target = total_macs * target_macs_fraction;

  std::map<Layer*, std::vector<std::uint8_t>> keeps;
  for (const auto& [layer, width] : kept)
    keeps[layer].assign(width, 1);

  for (const Candidate& cand : candidates) {
    if (remaining <= target) break;
    auto& k = kept[cand.layer];
    if (k <= static_cast<std::size_t>(options.min_channels)) continue;
    keeps[cand.layer][cand.channel] = 0;
    --k;
    remaining -= cand.mac_cost;
  }

  std::vector<ChannelMask> out;
  for (const auto& [layer, shape] : located) {
    const auto it = keeps.find(layer);
    if (it == keeps.end()) continue;
    const auto& keep = it->second;
    if (std::all_of(keep.begin(), keep.end(),
                    [](std::uint8_t v) { return v != 0; }))
      continue;
    out.push_back({layer->name(), keep});
  }
  return out;
}

}  // namespace rrp::prune
