// sensitivity.h — per-layer pruning sensitivity analysis.
//
// For each prunable layer, prunes ONLY that layer at each ratio in a grid
// and measures validation accuracy.  The resulting profile is what a
// deployment engineer uses to pick non-uniform per-layer ratios, and it is
// the series behind experiment R-F6.
#pragma once

#include "nn/train.h"
#include "prune/levels.h"

namespace rrp::prune {

struct SensitivityPoint {
  std::string layer;
  double ratio = 0.0;
  double accuracy = 0.0;      ///< accuracy with only this layer pruned
  double sparsity = 0.0;      ///< achieved whole-network element sparsity
};

struct SensitivityOptions {
  std::vector<double> ratios = {0.0, 0.25, 0.5, 0.75, 0.9};
  bool structured = true;
  ImportanceMetric metric = ImportanceMetric::L1;
  int eval_batch = 64;
};

/// Runs the sweep on a clone of `net` per point; `net` itself is untouched.
/// `input_shape` is a batch-1 sample shape (needed for structured lowering).
std::vector<SensitivityPoint> layer_sensitivity(
    nn::Network& net, const nn::Dataset& eval_data,
    const nn::Shape& input_shape, const SensitivityOptions& options = {});

/// Turns a sensitivity sweep into per-layer ratio scales for
/// PruneLevelLibrary::build_structured_nonuniform: a layer's *tolerance*
/// is the largest tested ratio whose accuracy stays within
/// `max_accuracy_drop` of its ratio-0 accuracy; the scale is the tolerance
/// normalized by the largest tolerance among layers (so the most robust
/// layer is pruned at the full level ratio and fragile layers are
/// throttled proportionally).  Layers whose tolerance is 0 get `min_scale`
/// so the ladder still reaches deep overall sparsity.
std::map<std::string, double> sensitivity_scales(
    const std::vector<SensitivityPoint>& points, double max_accuracy_drop,
    double min_scale = 0.25);

}  // namespace rrp::prune
