#include "prune/sensitivity.h"

#include <algorithm>
#include <map>

#include "util/checks.h"

namespace rrp::prune {

std::vector<SensitivityPoint> layer_sensitivity(
    nn::Network& net, const nn::Dataset& eval_data,
    const nn::Shape& input_shape, const SensitivityOptions& options) {
  RRP_CHECK(eval_data.size() > 0);
  std::vector<SensitivityPoint> out;

  for (nn::Layer* target : prunable_layers(net)) {
    for (double ratio : options.ratios) {
      nn::Network probe = net.clone();
      NetworkMask mask;
      if (ratio > 0.0) {
        if (options.structured) {
          // Channel mask for the target layer only, lowered on the probe.
          const auto scores = channel_scores(*target, options.metric);
          const std::size_t width = scores.size();
          std::size_t prune_count = static_cast<std::size_t>(
              ratio * static_cast<double>(width));
          prune_count = std::min(prune_count, width > 1 ? width - 1 : 0);
          if (prune_count > 0) {
            ChannelMask cm;
            cm.layer_name = target->name();
            cm.keep.assign(width, 1);
            const auto order = ascending_order(scores);
            for (std::size_t i = 0; i < prune_count; ++i)
              cm.keep[order[i]] = 0;
            mask = lower_channel_masks(probe, {cm}, input_shape);
          }
        } else {
          // Element mask for the target layer's weight only.
          nn::Layer* probe_target = probe.find(target->name());
          RRP_CHECK(probe_target != nullptr);
          nn::Tensor* w = nullptr;
          std::string pname;
          if (auto* lin = dynamic_cast<nn::Linear*>(probe_target)) {
            w = &lin->weight();
            pname = lin->name() + ".weight";
          } else if (auto* conv = dynamic_cast<nn::Conv2D*>(probe_target)) {
            w = &conv->weight();
            pname = conv->name() + ".weight";
          }
          RRP_CHECK(w != nullptr);
          const auto scores = element_scores(*w, options.metric);
          std::size_t prune_count = static_cast<std::size_t>(
              ratio * static_cast<double>(scores.size()));
          prune_count =
              std::min(prune_count, scores.size() > 1 ? scores.size() - 1 : 0);
          if (prune_count > 0) {
            std::vector<std::uint8_t> keep(scores.size(), 1);
            const auto order = ascending_order(scores);
            for (std::size_t i = 0; i < prune_count; ++i) keep[order[i]] = 0;
            mask.set(pname, std::move(keep));
          }
        }
        mask.apply(probe);
      }
      SensitivityPoint p;
      p.layer = target->name();
      p.ratio = ratio;
      p.sparsity = mask.sparsity(probe);
      p.accuracy =
          nn::evaluate_accuracy(probe, eval_data, options.eval_batch);
      out.push_back(std::move(p));
    }
  }
  return out;
}

std::map<std::string, double> sensitivity_scales(
    const std::vector<SensitivityPoint>& points, double max_accuracy_drop,
    double min_scale) {
  RRP_CHECK(max_accuracy_drop >= 0.0);
  RRP_CHECK(min_scale > 0.0 && min_scale <= 1.0);

  // Baseline (ratio 0) accuracy per layer, then the largest tolerated ratio.
  std::map<std::string, double> base;
  for (const auto& p : points)
    if (p.ratio == 0.0) base[p.layer] = p.accuracy;

  std::map<std::string, double> tolerance;
  for (const auto& p : points) {
    const auto it = base.find(p.layer);
    RRP_CHECK_MSG(it != base.end(),
                  "sensitivity sweep lacks ratio-0 point for '" << p.layer
                                                                << "'");
    if (p.accuracy + 1e-12 >= it->second - max_accuracy_drop)
      tolerance[p.layer] = std::max(tolerance[p.layer], p.ratio);
    else
      tolerance.try_emplace(p.layer, 0.0);
  }

  double max_tol = 0.0;
  for (const auto& [layer, tol] : tolerance) max_tol = std::max(max_tol, tol);

  std::map<std::string, double> scales;
  for (const auto& [layer, tol] : tolerance)
    scales[layer] =
        max_tol > 0.0 ? std::max(min_scale, tol / max_tol) : min_scale;
  return scales;
}

}  // namespace rrp::prune
