#include "prune/importance.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/checks.h"
#include "util/thread_pool.h"

namespace rrp::prune {

const char* importance_metric_name(ImportanceMetric m) {
  switch (m) {
    case ImportanceMetric::L1: return "L1";
    case ImportanceMetric::L2: return "L2";
  }
  return "?";
}

std::vector<float> element_scores(const nn::Tensor& weight,
                                  ImportanceMetric metric) {
  std::vector<float> scores;
  scores.reserve(static_cast<std::size_t>(weight.numel()));
  for (float w : weight.data()) {
    switch (metric) {
      case ImportanceMetric::L1: scores.push_back(std::fabs(w)); break;
      case ImportanceMetric::L2: scores.push_back(w * w); break;
    }
  }
  return scores;
}

namespace {
std::vector<float> row_scores(const nn::Tensor& weight, int rows,
                              ImportanceMetric metric) {
  RRP_CHECK(rows > 0 && weight.numel() % rows == 0);
  const std::int64_t per_row = weight.numel() / rows;
  std::vector<float> scores(static_cast<std::size_t>(rows));
  for (int r = 0; r < rows; ++r) {
    const float* row = weight.raw() + static_cast<std::int64_t>(r) * per_row;
    double acc = 0.0;
    for (std::int64_t i = 0; i < per_row; ++i) {
      switch (metric) {
        case ImportanceMetric::L1: acc += std::fabs(row[i]); break;
        case ImportanceMetric::L2:
          acc += static_cast<double>(row[i]) * row[i];
          break;
      }
    }
    acc /= static_cast<double>(per_row);
    if (metric == ImportanceMetric::L2) acc = std::sqrt(acc);
    scores[static_cast<std::size_t>(r)] = static_cast<float>(acc);
  }
  return scores;
}
}  // namespace

std::vector<float> conv_channel_scores(const nn::Conv2D& conv,
                                       ImportanceMetric metric) {
  return row_scores(conv.weight(), conv.out_channels(), metric);
}

std::vector<float> linear_row_scores(const nn::Linear& linear,
                                     ImportanceMetric metric) {
  return row_scores(linear.weight(), linear.out_features(), metric);
}

std::vector<float> channel_scores(const nn::Layer& layer,
                                  ImportanceMetric metric) {
  if (const auto* conv = dynamic_cast<const nn::Conv2D*>(&layer))
    return conv_channel_scores(*conv, metric);
  if (const auto* lin = dynamic_cast<const nn::Linear*>(&layer))
    return linear_row_scores(*lin, metric);
  if (const auto* dw = dynamic_cast<const nn::DepthwiseConv2D*>(&layer))
    return row_scores(dw->weight(), dw->channels(), metric);
  throw Error("layer '" + layer.name() + "' has no prunable output channels");
}

TaylorScores taylor_scores(nn::Network& net, const nn::Dataset& data,
                           int batches, int batch_size, Rng& rng) {
  RRP_CHECK(batches >= 1 && batch_size >= 1);
  RRP_CHECK(data.size() >= static_cast<std::size_t>(batch_size));

  // Draw every batch's sample indices up front, in batch order — the exact
  // sequence the serial engine consumed — so the caller's rng ends in the
  // same state for any thread count.
  std::vector<std::vector<std::size_t>> picks(static_cast<std::size_t>(batches));
  for (auto& p : picks) {
    p.resize(static_cast<std::size_t>(batch_size));
    for (auto& i : p) i = rng.uniform_u64(data.size());
  }

  // Batches are independent given the shared weights (training-mode BN
  // normalizes with *batch* statistics, so gradients don't depend on the
  // running-stat updates of earlier batches).  Each pool chunk computes
  // per-batch |w * g| terms on a private clone — `net`'s weights and BN
  // statistics are never touched — and the cross-batch accumulation below
  // runs serially in batch order for bit-stable scores.
  std::vector<std::map<std::string, std::vector<float>>> per_batch(
      static_cast<std::size_t>(batches));
  parallel_for(0, batches, 1, [&](std::int64_t b_begin, std::int64_t b_end) {
    nn::Network local = net.clone();
    std::vector<int> labels;
    for (std::int64_t b = b_begin; b < b_end; ++b) {
      const nn::Tensor x =
          data.batch(picks[static_cast<std::size_t>(b)], 0,
                     static_cast<std::size_t>(batch_size), &labels);
      local.zero_grad();
      const nn::Tensor logits = local.forward(x, /*training=*/true);
      const nn::LossResult lr = nn::softmax_cross_entropy(logits, labels);
      local.backward(lr.grad);
      auto& terms = per_batch[static_cast<std::size_t>(b)];
      for (auto& p : local.params()) {
        auto& t = terms[p.name];
        t.resize(static_cast<std::size_t>(p.value->numel()));
        auto w = p.value->data();
        auto g = p.grad->data();
        for (std::size_t i = 0; i < t.size(); ++i)
          t[i] = std::fabs(w[i] * g[i]);
      }
    }
  });

  // Accumulate |w * g| per weight element across calibration batches.
  TaylorScores out;
  for (const auto& terms : per_batch) {
    for (const auto& [name, t] : terms) {
      auto& acc = out.element[name];
      if (acc.empty()) acc.assign(t.size(), 0.0f);
      for (std::size_t i = 0; i < t.size(); ++i) acc[i] += t[i];
    }
  }
  net.zero_grad();  // same observable post-state as the serial engine

  // Aggregate channel scores for prunable layers (mean over the channel's
  // weight elements).
  for (nn::Layer* l : net.leaf_layers()) {
    int rows = 0;
    std::string pname;
    if (auto* lin = dynamic_cast<nn::Linear*>(l)) {
      if (!lin->out_prunable()) continue;
      rows = lin->out_features();
      pname = lin->name() + ".weight";
    } else if (auto* conv = dynamic_cast<nn::Conv2D*>(l)) {
      if (!conv->out_prunable()) continue;
      rows = conv->out_channels();
      pname = conv->name() + ".weight";
    } else if (auto* dw = dynamic_cast<nn::DepthwiseConv2D*>(l)) {
      if (!dw->out_prunable()) continue;
      rows = dw->channels();
      pname = dw->name() + ".weight";
    } else {
      continue;
    }
    const auto it = out.element.find(pname);
    RRP_CHECK(it != out.element.end());
    const auto& elems = it->second;
    RRP_CHECK(elems.size() % static_cast<std::size_t>(rows) == 0);
    const std::size_t per_row = elems.size() / static_cast<std::size_t>(rows);
    std::vector<float> ch(static_cast<std::size_t>(rows), 0.0f);
    for (int r = 0; r < rows; ++r) {
      double acc = 0.0;
      for (std::size_t i = 0; i < per_row; ++i)
        acc += elems[static_cast<std::size_t>(r) * per_row + i];
      ch[static_cast<std::size_t>(r)] =
          static_cast<float>(acc / static_cast<double>(per_row));
    }
    out.channel.emplace(l->name(), std::move(ch));
  }
  return out;
}

std::vector<std::size_t> ascending_order(const std::vector<float>& scores) {
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&scores](std::size_t a, std::size_t b) {
                     return scores[a] < scores[b];
                   });
  return order;
}

}  // namespace rrp::prune
