// importance.h — weight-importance scoring for pruning decisions.
//
// Scores are computed once on the trained ("golden") weights and reused for
// every pruning level; deriving all levels from one fixed ranking is what
// guarantees the nesting invariant the reversible runtime relies on.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "nn/network.h"
#include "nn/train.h"
#include "util/rng.h"

namespace rrp::prune {

/// How to score an element / channel.
enum class ImportanceMetric {
  L1,  ///< |w|  (per element) or mean |w| (per channel)
  L2,  ///< w^2 (per element) or RMS (per channel)
};

const char* importance_metric_name(ImportanceMetric m);

/// Per-element importance of one weight tensor (same flat order).
std::vector<float> element_scores(const nn::Tensor& weight,
                                  ImportanceMetric metric);

/// Per-output-channel importance of a Conv2D (mean over filter) — higher
/// means more important.
std::vector<float> conv_channel_scores(const nn::Conv2D& conv,
                                       ImportanceMetric metric);

/// Per-output-row importance of a Linear layer.
std::vector<float> linear_row_scores(const nn::Linear& linear,
                                     ImportanceMetric metric);

/// Generic dispatch for a leaf layer; throws for layers without prunable
/// output channels.
std::vector<float> channel_scores(const nn::Layer& layer,
                                  ImportanceMetric metric);

/// Stable ranking of indices by ascending score (least important first).
std::vector<std::size_t> ascending_order(const std::vector<float>& scores);

/// Data-driven first-order (Taylor) importance: |w · ∂L/∂w| accumulated
/// over calibration batches — the magnitude of the loss change a first-
/// order expansion predicts for removing the weight.  Channel scores are
/// the mean element score over the channel's weights.
struct TaylorScores {
  /// Per parameter name: one score per element (flat order).
  std::map<std::string, std::vector<float>> element;
  /// Per prunable layer name: one score per output channel.
  std::map<std::string, std::vector<float>> channel;
};

/// Runs `batches` forward/backward passes (training mode, no optimizer
/// step) and accumulates |w·g|.  The network's weights are unchanged;
/// gradients are clobbered.  Deterministic in `rng`.
TaylorScores taylor_scores(nn::Network& net, const nn::Dataset& data,
                           int batches, int batch_size, Rng& rng);

}  // namespace rrp::prune
