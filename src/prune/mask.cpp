#include "prune/mask.h"

#include <algorithm>

#include "util/checks.h"

namespace rrp::prune {

using nn::Layer;
using nn::LayerKind;
using nn::Network;
using nn::Shape;
using nn::Tensor;

std::size_t ChannelMask::kept_count() const {
  std::size_t n = 0;
  for (auto k : keep) n += (k != 0);
  return n;
}

void NetworkMask::set(const std::string& param_name,
                      std::vector<std::uint8_t> keep) {
  RRP_CHECK_MSG(!keep.empty(), "empty mask for '" << param_name << "'");
  masks_[param_name] = std::move(keep);
}

const std::vector<std::uint8_t>* NetworkMask::find(
    const std::string& param_name) const {
  auto it = masks_.find(param_name);
  return it == masks_.end() ? nullptr : &it->second;
}

void NetworkMask::apply(Network& net) const {
  auto params = net.params();
  for (const auto& [name, keep] : masks_) {
    Tensor* value = nullptr;
    for (auto& p : params)
      if (p.name == name) {
        value = p.value;
        break;
      }
    RRP_CHECK_MSG(value != nullptr, "mask refers to unknown param '" << name
                                                                     << "'");
    RRP_CHECK_MSG(
        static_cast<std::int64_t>(keep.size()) == value->numel(),
        "mask size " << keep.size() << " != param numel " << value->numel()
                     << " for '" << name << "'");
    auto data = value->data();
    for (std::size_t i = 0; i < keep.size(); ++i)
      if (keep[i] == 0) data[i] = 0.0f;
  }
}

std::int64_t NetworkMask::pruned_count() const {
  std::int64_t n = 0;
  for (const auto& [name, keep] : masks_)
    for (auto k : keep) n += (k == 0);
  return n;
}

double NetworkMask::sparsity(Network& net) const {
  const std::int64_t total = net.param_count();
  if (total == 0) return 0.0;
  return static_cast<double>(pruned_count()) / static_cast<double>(total);
}

bool NetworkMask::nested_within(const NetworkMask& finer) const {
  for (const auto& [name, keep] : masks_) {
    const auto* other = finer.find(name);
    if (other == nullptr) {
      // `finer` keeps this param fully — every pruned element here violates.
      if (std::any_of(keep.begin(), keep.end(),
                      [](std::uint8_t k) { return k == 0; }))
        return false;
      continue;
    }
    if (other->size() != keep.size()) return false;
    for (std::size_t i = 0; i < keep.size(); ++i)
      if (keep[i] == 0 && (*other)[i] != 0) return false;
  }
  return true;
}

std::int64_t NetworkMask::diff_count(const NetworkMask& other) const {
  std::int64_t n = 0;
  // Elements pruned here but not there (or param absent there).
  auto one_sided = [&n](const NetworkMask& a, const NetworkMask& b) {
    for (const auto& [name, keep] : a.masks_) {
      const auto* bk = b.find(name);
      for (std::size_t i = 0; i < keep.size(); ++i) {
        const bool pruned_a = keep[i] == 0;
        const bool pruned_b =
            bk != nullptr && i < bk->size() && (*bk)[i] == 0;
        if (pruned_a && !pruned_b) ++n;
      }
    }
  };
  one_sided(*this, other);
  one_sided(other, *this);
  return n;
}

std::int64_t NetworkMask::storage_bytes() const {
  std::int64_t n = 0;
  for (const auto& [name, keep] : masks_)
    n += static_cast<std::int64_t>(name.size() + keep.size());
  return n;
}

const ChannelMask* find_channel_mask(const std::vector<ChannelMask>& masks,
                                     const std::string& layer_name) {
  for (const auto& m : masks)
    if (m.layer_name == layer_name) return &m;
  return nullptr;
}

namespace {

// Walk state: per-channel (or per-feature after Flatten/GAP) liveness and
// the activation shape of the *unpruned* network for a single sample.
struct Walk {
  std::vector<std::uint8_t> live;  // 1 = may carry nonzero data
  Shape shape;                     // batched single-sample shape, batch == 1
};

void walk_layers(const std::vector<std::unique_ptr<Layer>>& layers,
                 const std::vector<ChannelMask>& cms, NetworkMask& out,
                 Walk& w);

void mask_conv(nn::Conv2D& conv, const std::vector<ChannelMask>& cms,
               NetworkMask& out, Walk& w) {
  RRP_CHECK_MSG(static_cast<int>(w.live.size()) == conv.in_channels(),
                "liveness width " << w.live.size() << " != in_channels of '"
                                  << conv.name() << "'");
  const ChannelMask* cm = find_channel_mask(cms, conv.name());
  std::vector<std::uint8_t> out_keep(
      static_cast<std::size_t>(conv.out_channels()), 1);
  if (cm != nullptr) {
    RRP_CHECK_MSG(conv.out_prunable(), "channel mask on non-prunable conv '"
                                           << conv.name() << "'");
    RRP_CHECK_MSG(cm->keep.size() == out_keep.size(),
                  "channel mask width mismatch on '" << conv.name() << "'");
    RRP_CHECK_MSG(cm->kept_count() >= 1,
                  "cannot prune every channel of '" << conv.name() << "'");
    out_keep = cm->keep;
  }

  const bool any_dead_in = std::any_of(w.live.begin(), w.live.end(),
                                       [](std::uint8_t l) { return l == 0; });
  const bool any_dead_out = cm != nullptr && cm->pruned_count() > 0;
  if (any_dead_in || any_dead_out) {
    const int oc = conv.out_channels(), ic = conv.in_channels(),
              kk = conv.kernel() * conv.kernel();
    std::vector<std::uint8_t> wkeep(
        static_cast<std::size_t>(conv.weight().numel()), 1);
    for (int o = 0; o < oc; ++o)
      for (int i = 0; i < ic; ++i) {
        const std::uint8_t k = out_keep[static_cast<std::size_t>(o)] &&
                               w.live[static_cast<std::size_t>(i)];
        if (k) continue;
        const std::size_t base =
            (static_cast<std::size_t>(o) * ic + static_cast<std::size_t>(i)) *
            static_cast<std::size_t>(kk);
        std::fill_n(wkeep.begin() + static_cast<std::ptrdiff_t>(base),
                    static_cast<std::size_t>(kk), std::uint8_t{0});
      }
    out.set(conv.name() + ".weight", std::move(wkeep));
    if (conv.with_bias() && any_dead_out) {
      std::vector<std::uint8_t> bkeep(out_keep.begin(), out_keep.end());
      out.set(conv.name() + ".bias", std::move(bkeep));
    }
  }
  w.live = std::move(out_keep);
}

void mask_linear(nn::Linear& lin, const std::vector<ChannelMask>& cms,
                 NetworkMask& out, Walk& w) {
  RRP_CHECK_MSG(static_cast<int>(w.live.size()) == lin.in_features(),
                "liveness width " << w.live.size() << " != in_features of '"
                                  << lin.name() << "'");
  const ChannelMask* cm = find_channel_mask(cms, lin.name());
  std::vector<std::uint8_t> out_keep(
      static_cast<std::size_t>(lin.out_features()), 1);
  if (cm != nullptr) {
    RRP_CHECK_MSG(lin.out_prunable(), "channel mask on non-prunable linear '"
                                          << lin.name() << "'");
    RRP_CHECK_MSG(cm->keep.size() == out_keep.size(),
                  "channel mask width mismatch on '" << lin.name() << "'");
    RRP_CHECK_MSG(cm->kept_count() >= 1,
                  "cannot prune every row of '" << lin.name() << "'");
    out_keep = cm->keep;
  }

  const bool any_dead_in = std::any_of(w.live.begin(), w.live.end(),
                                       [](std::uint8_t l) { return l == 0; });
  const bool any_dead_out = cm != nullptr && cm->pruned_count() > 0;
  if (any_dead_in || any_dead_out) {
    const int of = lin.out_features(), inf = lin.in_features();
    std::vector<std::uint8_t> wkeep(
        static_cast<std::size_t>(lin.weight().numel()), 1);
    for (int o = 0; o < of; ++o)
      for (int i = 0; i < inf; ++i)
        wkeep[static_cast<std::size_t>(o) * inf + i] =
            out_keep[static_cast<std::size_t>(o)] &&
            w.live[static_cast<std::size_t>(i)];
    out.set(lin.name() + ".weight", std::move(wkeep));
    if (lin.with_bias() && any_dead_out) {
      std::vector<std::uint8_t> bkeep(out_keep.begin(), out_keep.end());
      out.set(lin.name() + ".bias", std::move(bkeep));
    }
  }
  w.live = std::move(out_keep);
}

void mask_depthwise(nn::DepthwiseConv2D& dw, const std::vector<ChannelMask>& cms,
                    NetworkMask& out, Walk& w) {
  RRP_CHECK_MSG(static_cast<int>(w.live.size()) == dw.channels(),
                "liveness width " << w.live.size() << " != channels of '"
                                  << dw.name() << "'");
  const ChannelMask* cm = find_channel_mask(cms, dw.name());
  std::vector<std::uint8_t> out_keep(w.live.begin(), w.live.end());
  if (cm != nullptr) {
    RRP_CHECK_MSG(dw.out_prunable(), "channel mask on non-prunable depthwise '"
                                         << dw.name() << "'");
    RRP_CHECK_MSG(static_cast<int>(cm->keep.size()) == dw.channels(),
                  "channel mask width mismatch on '" << dw.name() << "'");
    RRP_CHECK_MSG(cm->kept_count() >= 1,
                  "cannot prune every channel of '" << dw.name() << "'");
    // Depthwise couples input and output channel c: the surviving set is
    // the intersection of upstream liveness and this layer's keep set.
    for (std::size_t c = 0; c < out_keep.size(); ++c)
      out_keep[c] = out_keep[c] && cm->keep[c];
    RRP_CHECK_MSG(std::any_of(out_keep.begin(), out_keep.end(),
                              [](std::uint8_t k) { return k != 0; }),
                  "all channels of '" << dw.name()
                                      << "' dead after intersection");
  }
  const bool any_dead = std::any_of(out_keep.begin(), out_keep.end(),
                                    [](std::uint8_t k) { return k == 0; });
  if (any_dead) {
    const int kk = dw.kernel() * dw.kernel();
    std::vector<std::uint8_t> wkeep(
        static_cast<std::size_t>(dw.weight().numel()), 1);
    for (std::size_t c = 0; c < out_keep.size(); ++c) {
      if (out_keep[c]) continue;
      std::fill_n(wkeep.begin() + static_cast<std::ptrdiff_t>(c) * kk, kk,
                  std::uint8_t{0});
    }
    out.set(dw.name() + ".weight", std::move(wkeep));
    if (dw.with_bias()) {
      // A dead channel's bias must be zero too (conv of a zero input
      // would otherwise emit the bias).
      std::vector<std::uint8_t> bkeep(out_keep.begin(), out_keep.end());
      out.set(dw.name() + ".bias", std::move(bkeep));
    }
  }
  w.live = std::move(out_keep);
}

void mask_batchnorm(nn::BatchNorm& bn, NetworkMask& out, const Walk& w) {
  RRP_CHECK_MSG(static_cast<int>(w.live.size()) == bn.channels(),
                "liveness width " << w.live.size() << " != channels of '"
                                  << bn.name() << "'");
  if (std::all_of(w.live.begin(), w.live.end(),
                  [](std::uint8_t l) { return l != 0; }))
    return;
  // Gamma AND beta must be zeroed so a dead channel stays exactly zero.
  std::vector<std::uint8_t> keep(w.live.begin(), w.live.end());
  out.set(bn.name() + ".gamma", keep);
  out.set(bn.name() + ".beta", std::move(keep));
}

void walk_one(Layer& layer, const std::vector<ChannelMask>& cms,
              NetworkMask& out, Walk& w) {
  switch (layer.kind()) {
    case LayerKind::Conv2D:
      mask_conv(static_cast<nn::Conv2D&>(layer), cms, out, w);
      break;
    case LayerKind::Linear:
      mask_linear(static_cast<nn::Linear&>(layer), cms, out, w);
      break;
    case LayerKind::DepthwiseConv2D:
      mask_depthwise(static_cast<nn::DepthwiseConv2D&>(layer), cms, out, w);
      break;
    case LayerKind::BatchNorm:
      mask_batchnorm(static_cast<nn::BatchNorm&>(layer), out, w);
      break;
    case LayerKind::Flatten: {
      // Channel c fans out to features [c*H*W, (c+1)*H*W).
      RRP_CHECK_MSG(w.shape.size() == 4,
                    "Flatten lowering needs a 4-D activation shape");
      const int hw = w.shape[2] * w.shape[3];
      std::vector<std::uint8_t> feat;
      feat.reserve(w.live.size() * static_cast<std::size_t>(hw));
      for (std::uint8_t l : w.live)
        feat.insert(feat.end(), static_cast<std::size_t>(hw), l);
      w.live = std::move(feat);
      break;
    }
    case LayerKind::Residual: {
      // Identity shortcut may revive channels the body zeroes and vice
      // versa: out_live = in_live OR body_live.
      auto& res = static_cast<nn::Residual&>(layer);
      Walk body = w;
      walk_layers(res.body().layers(), cms, out, body);
      RRP_CHECK_MSG(body.live.size() == w.live.size(),
                    "Residual body changed channel width");
      for (std::size_t i = 0; i < w.live.size(); ++i)
        w.live[i] = w.live[i] || body.live[i];
      break;
    }
    case LayerKind::ReLU:
    case LayerKind::Softmax:
    case LayerKind::MaxPool:
    case LayerKind::AvgPool:
    case LayerKind::GlobalAvgPool:
      break;  // channel-preserving, zero-preserving
  }
  w.shape = layer.output_shape(w.shape);
}

void walk_layers(const std::vector<std::unique_ptr<Layer>>& layers,
                 const std::vector<ChannelMask>& cms, NetworkMask& out,
                 Walk& w) {
  for (const auto& l : layers) walk_one(*l, cms, out, w);
}

}  // namespace

NetworkMask lower_channel_masks(Network& net,
                                const std::vector<ChannelMask>& channel_masks,
                                const Shape& input_shape) {
  RRP_CHECK_MSG(input_shape.size() >= 2 && input_shape[0] == 1,
                "input_shape must be a batch-1 sample shape");
  // Every channel mask must name an existing Conv2D/Linear layer.
  for (const auto& cm : channel_masks) {
    Layer* l = net.find(cm.layer_name);
    RRP_CHECK_MSG(l != nullptr,
                  "channel mask names unknown layer '" << cm.layer_name << "'");
    RRP_CHECK_MSG(l->kind() == LayerKind::Conv2D ||
                      l->kind() == LayerKind::Linear ||
                      l->kind() == LayerKind::DepthwiseConv2D,
                  "channel mask on non-parameterized layer '" << cm.layer_name
                                                              << "'");
  }
  NetworkMask out;
  Walk w;
  w.shape = input_shape;
  w.live.assign(static_cast<std::size_t>(input_shape[1]), 1);
  walk_layers(net.layers(), channel_masks, out, w);
  return out;
}

}  // namespace rrp::prune
