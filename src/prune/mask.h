// mask.h — element- and channel-level pruning masks.
//
// A NetworkMask is the ground-truth description of "what is pruned": one
// keep/drop byte per parameter element, keyed by the hierarchical parameter
// name (e.g. "block1.conv2.weight").  Structured (channel) pruning is
// expressed as ChannelMasks on producer layers and then *lowered* to an
// element mask that also covers the downstream consumers of each pruned
// channel (next conv's input slice, the following BatchNorm's gamma/beta,
// the classifier columns behind a Flatten/GlobalAvgPool) so that masked
// execution is numerically identical to physically removing the channel.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "nn/network.h"

namespace rrp::prune {

/// Keep/drop flags for the output channels of one Conv2D or Linear layer.
struct ChannelMask {
  std::string layer_name;
  std::vector<std::uint8_t> keep;  ///< one byte per output channel/row

  std::size_t kept_count() const;
  std::size_t pruned_count() const { return keep.size() - kept_count(); }
};

/// Element-level mask over a network's parameters. 1 = keep, 0 = pruned.
/// Parameters without an entry are implicitly fully kept.
class NetworkMask {
 public:
  NetworkMask() = default;

  /// Registers (or replaces) the mask for one parameter.
  void set(const std::string& param_name, std::vector<std::uint8_t> keep);

  /// Returns the mask bytes for a parameter, or nullptr if fully kept.
  const std::vector<std::uint8_t>* find(const std::string& param_name) const;

  const std::map<std::string, std::vector<std::uint8_t>>& entries() const {
    return masks_;
  }

  /// Zeroes every masked-out element of the network's parameters.
  /// Throws if a masked parameter is missing or has a different size.
  void apply(nn::Network& net) const;

  /// Total number of elements marked pruned.
  std::int64_t pruned_count() const;

  /// Fraction of elements pruned among *masked* parameters of `net`
  /// (parameters without an entry count as fully kept).
  double sparsity(nn::Network& net) const;

  /// True if every element pruned by *this* is also pruned by `finer`
  /// (i.e. `finer` is an equal-or-more-aggressive level; nesting invariant).
  bool nested_within(const NetworkMask& finer) const;

  /// Number of elements whose keep flag differs between the two masks.
  std::int64_t diff_count(const NetworkMask& other) const;

  /// In-memory footprint of the mask itself (bytes), for overhead reports.
  std::int64_t storage_bytes() const;

 private:
  std::map<std::string, std::vector<std::uint8_t>> masks_;
};

/// Lowers channel masks to a full element mask, propagating each pruned
/// output channel to:
///   * the producer's weight rows / filters and bias entries,
///   * any BatchNorm directly normalizing that channel (gamma & beta),
///   * the next parameterized consumer's input slice (Conv2D input channel,
///     Linear columns behind Flatten or GlobalAvgPool).
/// Residual bodies are handled recursively; a ChannelMask on a layer whose
/// `out_prunable()` flag is false is rejected (topology-pinned widths).
/// `input_shape` is a single-sample batched shape (e.g. [1, C, H, W]) used
/// to resolve channel→feature fan-out at Flatten.
NetworkMask lower_channel_masks(nn::Network& net,
                                const std::vector<ChannelMask>& channel_masks,
                                const nn::Shape& input_shape);

/// Looks up the channel mask for a layer, or nullptr.
const ChannelMask* find_channel_mask(
    const std::vector<ChannelMask>& masks, const std::string& layer_name);

}  // namespace rrp::prune
