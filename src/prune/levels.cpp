#include "prune/levels.h"

#include <algorithm>

#include "util/checks.h"

namespace rrp::prune {

using nn::Network;

void PruneLevelLibrary::check_ratios(const std::vector<double>& ratios) {
  RRP_CHECK_MSG(!ratios.empty(), "need at least one level");
  RRP_CHECK_MSG(ratios.front() == 0.0, "level 0 must have ratio 0");
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    RRP_CHECK_MSG(ratios[i] >= 0.0 && ratios[i] < 1.0,
                  "ratio " << ratios[i] << " outside [0, 1)");
    if (i > 0)
      RRP_CHECK_MSG(ratios[i] > ratios[i - 1],
                    "ratios must be strictly increasing");
  }
}

PruneLevelLibrary PruneLevelLibrary::build_unstructured(
    Network& net, std::vector<double> ratios, ImportanceMetric metric) {
  check_ratios(ratios);
  PruneLevelLibrary lib;
  lib.ratios_ = std::move(ratios);
  lib.structured_ = false;

  // One global ranking over all weight elements of Linear/Conv2D layers.
  struct Entry {
    std::string param;
    std::size_t index;
  };
  std::vector<Entry> entries;
  std::vector<float> scores;
  std::map<std::string, std::size_t> sizes;
  for (nn::Layer* l : net.leaf_layers()) {
    nn::Tensor* w = nullptr;
    std::string pname;
    if (auto* lin = dynamic_cast<nn::Linear*>(l)) {
      w = &lin->weight();
      pname = lin->name() + ".weight";
    } else if (auto* conv = dynamic_cast<nn::Conv2D*>(l)) {
      w = &conv->weight();
      pname = conv->name() + ".weight";
    } else if (auto* dw = dynamic_cast<nn::DepthwiseConv2D*>(l)) {
      w = &dw->weight();
      pname = dw->name() + ".weight";
    } else {
      continue;
    }
    const auto s = element_scores(*w, metric);
    sizes[pname] = s.size();
    for (std::size_t i = 0; i < s.size(); ++i) {
      entries.push_back({pname, i});
      scores.push_back(s[i]);
    }
  }
  const auto order = ascending_order(scores);

  for (double ratio : lib.ratios_) {
    NetworkMask mask;
    const std::size_t prune_count =
        static_cast<std::size_t>(ratio * static_cast<double>(order.size()));
    if (prune_count > 0) {
      std::map<std::string, std::vector<std::uint8_t>> keeps;
      std::map<std::string, std::size_t> kept;
      for (const auto& [pname, size] : sizes) {
        keeps[pname].assign(size, 1);
        kept[pname] = size;
      }
      for (std::size_t i = 0; i < prune_count; ++i) {
        const Entry& e = entries[order[i]];
        auto& k = kept[e.param];
        if (k <= 1) continue;  // never zero a whole tensor
        keeps[e.param][e.index] = 0;
        --k;
      }
      for (auto& [pname, keep] : keeps) mask.set(pname, std::move(keep));
    }
    lib.masks_.push_back(std::move(mask));
  }
  return lib;
}

PruneLevelLibrary PruneLevelLibrary::build_structured_ranked(
    Network& net, std::vector<double> ratios, const nn::Shape& input_shape,
    const std::vector<LayerRankEntry>& ranks, int min_channels) {
  check_ratios(ratios);
  RRP_CHECK(min_channels >= 1);
  PruneLevelLibrary lib;
  lib.ratios_ = std::move(ratios);
  lib.structured_ = true;

  for (double ratio : lib.ratios_) {
    std::vector<ChannelMask> cms;
    for (const auto& r : ranks) {
      const std::size_t width = r.ascending.size();
      const double layer_ratio = ratio * r.scale;
      std::size_t prune_count =
          static_cast<std::size_t>(layer_ratio * static_cast<double>(width));
      const std::size_t max_prunable =
          width > static_cast<std::size_t>(min_channels)
              ? width - static_cast<std::size_t>(min_channels)
              : 0;
      prune_count = std::min(prune_count, max_prunable);
      if (prune_count == 0) continue;
      ChannelMask cm;
      cm.layer_name = r.layer->name();
      cm.keep.assign(width, 1);
      for (std::size_t i = 0; i < prune_count; ++i)
        cm.keep[r.ascending[i]] = 0;
      cms.push_back(std::move(cm));
    }
    lib.masks_.push_back(lower_channel_masks(net, cms, input_shape));
    lib.channel_masks_.push_back(std::move(cms));
  }
  return lib;
}

PruneLevelLibrary PruneLevelLibrary::build_structured(
    Network& net, std::vector<double> ratios, const nn::Shape& input_shape,
    ImportanceMetric metric, int min_channels) {
  std::vector<LayerRankEntry> ranks;
  for (nn::Layer* l : prunable_layers(net))
    ranks.push_back({l, ascending_order(channel_scores(*l, metric)), 1.0});
  return build_structured_ranked(net, std::move(ratios), input_shape, ranks,
                                 min_channels);
}

PruneLevelLibrary PruneLevelLibrary::build_structured_scored(
    Network& net, std::vector<double> ratios, const nn::Shape& input_shape,
    const std::map<std::string, std::vector<float>>& channel_scores,
    int min_channels) {
  std::vector<LayerRankEntry> ranks;
  for (nn::Layer* l : prunable_layers(net)) {
    const auto it = channel_scores.find(l->name());
    if (it == channel_scores.end()) continue;  // never pruned
    RRP_CHECK_MSG(it->second.size() ==
                      prune::channel_scores(*l, ImportanceMetric::L1).size(),
                  "score width mismatch for '" << l->name() << "'");
    ranks.push_back({l, ascending_order(it->second), 1.0});
  }
  return build_structured_ranked(net, std::move(ratios), input_shape, ranks,
                                 min_channels);
}

PruneLevelLibrary PruneLevelLibrary::build_structured_nonuniform(
    Network& net, std::vector<double> ratios, const nn::Shape& input_shape,
    const std::map<std::string, double>& layer_scale, ImportanceMetric metric,
    int min_channels) {
  std::vector<LayerRankEntry> ranks;
  for (nn::Layer* l : prunable_layers(net)) {
    double scale = 1.0;
    const auto it = layer_scale.find(l->name());
    if (it != layer_scale.end()) {
      RRP_CHECK_MSG(it->second >= 0.0 && it->second <= 1.0,
                    "layer scale for '" << l->name() << "' outside [0, 1]");
      scale = it->second;
    }
    ranks.push_back({l, ascending_order(channel_scores(*l, metric)), scale});
  }
  return build_structured_ranked(net, std::move(ratios), input_shape, ranks,
                                 min_channels);
}

double PruneLevelLibrary::ratio(int level) const {
  RRP_CHECK(level >= 0 && level < level_count());
  return ratios_[static_cast<std::size_t>(level)];
}

const NetworkMask& PruneLevelLibrary::mask(int level) const {
  RRP_CHECK(level >= 0 && level < level_count());
  return masks_[static_cast<std::size_t>(level)];
}

const std::vector<ChannelMask>& PruneLevelLibrary::channel_masks(
    int level) const {
  RRP_CHECK_MSG(structured_, "channel masks exist only in structured mode");
  RRP_CHECK(level >= 0 && level < level_count());
  return channel_masks_[static_cast<std::size_t>(level)];
}

std::vector<double> PruneLevelLibrary::achieved_sparsity(Network& net) const {
  std::vector<double> out;
  out.reserve(masks_.size());
  for (const auto& m : masks_) out.push_back(m.sparsity(net));
  return out;
}

bool PruneLevelLibrary::verify_nested() const {
  for (std::size_t k = 0; k + 1 < masks_.size(); ++k)
    if (!masks_[k].nested_within(masks_[k + 1])) return false;
  return true;
}

std::int64_t PruneLevelLibrary::storage_bytes() const {
  std::int64_t n = 0;
  for (const auto& m : masks_) n += m.storage_bytes();
  return n;
}

}  // namespace rrp::prune
