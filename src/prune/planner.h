// planner.h — turns a target sparsity ratio into concrete masks.
//
// Unstructured plans rank individual weight elements (globally across the
// network or per layer); structured plans rank whole output channels of
// prunable Conv2D/Linear layers.  Both always keep at least one element /
// channel per layer so no layer degenerates to a zero operator.
#pragma once

#include "prune/importance.h"
#include "prune/mask.h"

namespace rrp::prune {

struct UnstructuredOptions {
  ImportanceMetric metric = ImportanceMetric::L1;
  /// Global: one magnitude threshold across all weight tensors.
  /// Per-layer: prune `ratio` of each weight tensor independently.
  bool global_threshold = true;
};

/// Element mask pruning ~`ratio` of all Linear/Conv2D *weight* elements
/// (biases and BatchNorm parameters are never unstructured-pruned).
/// Precondition: 0 <= ratio < 1.
NetworkMask plan_unstructured(nn::Network& net, double ratio,
                              const UnstructuredOptions& options = {});

struct StructuredOptions {
  ImportanceMetric metric = ImportanceMetric::L1;
  int min_channels = 1;  ///< never shrink a layer below this width
};

/// Channel masks pruning ~`ratio` of each prunable layer's output channels.
/// Layers with `out_prunable() == false` are skipped entirely.
std::vector<ChannelMask> plan_structured(nn::Network& net, double ratio,
                                         const StructuredOptions& options = {});

/// The set of layers `plan_structured` would consider (leaf Conv2D/Linear/
/// DepthwiseConv2D with out_prunable() == true), in execution order.
std::vector<nn::Layer*> prunable_layers(nn::Network& net);

/// MAC-budgeted global structured planning: greedily removes the channel
/// with the lowest importance-per-MAC across ALL prunable layers until the
/// network's dense MACs drop to `target_macs_fraction` of the original
/// (producer-layer MACs only; downstream savings make the achieved count
/// strictly better than the estimate).  `input_shape` is a batch-1 sample
/// shape.  Precondition: 0 < target_macs_fraction <= 1.
std::vector<ChannelMask> plan_structured_for_macs(
    nn::Network& net, double target_macs_fraction,
    const nn::Shape& input_shape, const StructuredOptions& options = {});

}  // namespace rrp::prune
