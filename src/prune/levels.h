// levels.h — nested pruning-level construction.
//
// A PruneLevelLibrary holds the precomputed ladder of pruning levels the
// reversible runtime switches between.  All levels are derived from ONE
// importance ranking computed on the golden weights, which guarantees the
// nesting invariant  pruned(level k) ⊆ pruned(level k+1)  by construction
// — a k→k′ transition therefore touches exactly the symmetric difference
// of the two masks, and a restore to level 0 recovers the full network.
#pragma once

#include "prune/mask.h"
#include "prune/planner.h"

namespace rrp::prune {

/// Immutable ladder of nested pruning levels for one network.
class PruneLevelLibrary {
 public:
  /// Builds element-level (unstructured) levels. `ratios` must start at 0
  /// and be strictly increasing, all in [0, 1).
  static PruneLevelLibrary build_unstructured(
      nn::Network& net, std::vector<double> ratios,
      ImportanceMetric metric = ImportanceMetric::L1);

  /// Builds channel-level (structured) levels; `input_shape` is a batch-1
  /// sample shape used to lower channel masks to element masks.
  static PruneLevelLibrary build_structured(
      nn::Network& net, std::vector<double> ratios,
      const nn::Shape& input_shape,
      ImportanceMetric metric = ImportanceMetric::L1,
      int min_channels = 1);

  /// Structured levels ranked by externally supplied per-channel scores
  /// (e.g. Taylor importance from taylor_scores().channel).  Prunable
  /// layers missing from `channel_scores` are never pruned.
  static PruneLevelLibrary build_structured_scored(
      nn::Network& net, std::vector<double> ratios,
      const nn::Shape& input_shape,
      const std::map<std::string, std::vector<float>>& channel_scores,
      int min_channels = 1);

  /// Non-uniform structured levels: layer `l` is pruned at
  /// ratios[k] * layer_scale[l] (scale in [0, 1]; missing layers get
  /// scale 1).  Scales typically come from sensitivity_scales() so that
  /// fragile layers keep more channels at every level.  Nesting holds
  /// because each layer's effective ratio is still monotone in k.
  static PruneLevelLibrary build_structured_nonuniform(
      nn::Network& net, std::vector<double> ratios,
      const nn::Shape& input_shape,
      const std::map<std::string, double>& layer_scale,
      ImportanceMetric metric = ImportanceMetric::L1,
      int min_channels = 1);

  int level_count() const { return static_cast<int>(ratios_.size()); }
  double ratio(int level) const;
  bool structured() const { return structured_; }

  /// Element mask of a level (level 0 is the empty mask — nothing pruned).
  const NetworkMask& mask(int level) const;

  /// Channel masks of a level (structured libraries only; empty at level 0).
  const std::vector<ChannelMask>& channel_masks(int level) const;

  /// Achieved element sparsity of each level on `net`.
  std::vector<double> achieved_sparsity(nn::Network& net) const;

  /// Verifies the nesting invariant across all adjacent level pairs.
  bool verify_nested() const;

  /// Total mask storage bytes across all levels (overhead accounting).
  std::int64_t storage_bytes() const;

  /// Default-constructs an EMPTY library (level_count() == 0); only useful
  /// as a placeholder before assignment from a build_* factory.
  PruneLevelLibrary() = default;

  /// One layer's fixed channel ranking plus its per-level ratio scale —
  /// the input of the generic structured builder.
  struct LayerRankEntry {
    nn::Layer* layer;
    std::vector<std::size_t> ascending;  ///< least important first
    double scale = 1.0;
  };

  /// Generic structured builder all build_structured_* variants share.
  static PruneLevelLibrary build_structured_ranked(
      nn::Network& net, std::vector<double> ratios,
      const nn::Shape& input_shape, const std::vector<LayerRankEntry>& ranks,
      int min_channels);

 private:
  static void check_ratios(const std::vector<double>& ratios);

  std::vector<double> ratios_;
  std::vector<NetworkMask> masks_;
  std::vector<std::vector<ChannelMask>> channel_masks_;
  bool structured_ = false;
};

}  // namespace rrp::prune
