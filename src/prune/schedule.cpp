#include "prune/schedule.h"

#include <cmath>

#include "util/checks.h"
#include "util/log.h"

namespace rrp::prune {

std::vector<IterativeStepStats> iterative_magnitude_prune(
    nn::Network& net, const nn::Dataset& train_data,
    const nn::Dataset& eval_data, const IterativeScheduleConfig& config,
    Rng& rng) {
  RRP_CHECK(config.target_ratio > 0.0 && config.target_ratio < 1.0);
  RRP_CHECK(config.steps >= 1);
  RRP_CHECK(config.finetune_epochs >= 0);
  RRP_CHECK(train_data.size() > 0);

  std::vector<IterativeStepStats> history;
  nn::SgdConfig sgd = config.sgd;
  sgd.freeze_zeros = true;  // pruned weights must never regrow
  sgd.epochs = config.finetune_epochs;

  for (int step = 1; step <= config.steps; ++step) {
    // Cubic sparsity schedule: s_t = s_f * (1 - (1 - t/T)^3).
    const double t = static_cast<double>(step) / config.steps;
    const double ratio = config.target_ratio * (1.0 - std::pow(1.0 - t, 3.0));

    // Plan on the CURRENT weights: already-zero weights rank lowest, so
    // each round's mask extends the previous one (magnitude nesting).
    const NetworkMask mask = plan_unstructured(net, ratio, config.plan);
    mask.apply(net);

    if (config.finetune_epochs > 0) {
      Rng step_rng = rng.fork();
      nn::train_sgd(net, train_data, sgd, step_rng);
    }

    IterativeStepStats s;
    s.step = step;
    s.ratio = ratio;
    s.sparsity =
        1.0 - static_cast<double>(net.param_nonzero()) / net.param_count();
    s.accuracy = eval_data.size() > 0
                     ? nn::evaluate_accuracy(net, eval_data)
                     : 0.0;
    RRP_LOG_DEBUG << "IMP step " << step << ": sparsity " << s.sparsity
                  << " accuracy " << s.accuracy;
    history.push_back(s);
  }
  return history;
}

}  // namespace rrp::prune
