// compact.h — physical structured compaction.
//
// Masked execution zeroes weights but still pays the dense GEMM cost;
// compaction rebuilds the network with the pruned channels physically
// removed, so wall-clock latency actually drops.  The compacted network is
// numerically equivalent to the masked one (property-tested): a masked-out
// channel is exactly zero everywhere, so deleting it cannot change any
// kept activation.
//
// Topology constraints (checked): the activation entering a Residual block
// must be un-pruned (model builders mark convs feeding residual adds as
// out_prunable == false), because the identity shortcut pins those widths.
#pragma once

#include "prune/mask.h"

namespace rrp::prune {

/// Builds a physically smaller clone of `net` with the channels dropped by
/// `channel_masks` removed.  `input_shape` is a batch-1 sample shape.
/// The input width (input_shape[1]) is never pruned.
nn::Network compact_network(const nn::Network& net,
                            const std::vector<ChannelMask>& channel_masks,
                            const nn::Shape& input_shape);

}  // namespace rrp::prune
