#include "core/telemetry.h"

#include <algorithm>
#include <ostream>

#include "util/csv.h"
#include "util/stats.h"

namespace rrp::core {

// rrp-frame-path-stop: host-side experiment collector — the runner
// records frames outside the certified loop; reached by the analyzer
// only through receiver-blind matching of metrics Counter::add sites.
void Telemetry::add(const FrameRecord& record) { records_.push_back(record); }

RunSummary Telemetry::summarize() const {
  RunSummary s;
  s.frames = static_cast<std::int64_t>(records_.size());
  if (records_.empty()) return s;

  std::int64_t correct = 0, crit_frames = 0, crit_correct = 0;
  std::int64_t deadline_miss = 0, switches = 0;
  double level_sum = 0.0;
  std::vector<double> latencies;
  latencies.reserve(records_.size());
  RunningStats switch_stats;

  int prev_level = records_.front().executed_level;
  bool first = true;
  for (const FrameRecord& r : records_) {
    correct += r.correct;
    const bool critical = r.criticality >= CriticalityClass::High;
    if (critical) {
      ++crit_frames;
      crit_correct += r.correct;
    }
    // A level switch consumes frame time too: the transition cost counts
    // against the same deadline the inference must meet.
    const double frame_time_ms = r.latency_ms + r.switch_us * 1e-3;
    if (frame_time_ms > r.deadline_ms) ++deadline_miss;
    s.total_energy_mj += r.energy_mj;
    level_sum += r.executed_level;
    latencies.push_back(r.latency_ms);
    if (!first && r.executed_level != prev_level) ++switches;
    if (r.switch_us > 0.0) {
      switch_stats.add(r.switch_us);
      s.max_switch_us = std::max(s.max_switch_us, r.switch_us);
    }
    s.safety_violations += r.violation;
    s.true_safety_violations += r.true_violation;
    s.vetoes += r.veto;
    prev_level = r.executed_level;
    first = false;
  }

  const double n = static_cast<double>(records_.size());
  s.accuracy = static_cast<double>(correct) / n;
  s.critical_frames = crit_frames;
  s.critical_accuracy =
      crit_frames > 0 ? static_cast<double>(crit_correct) / crit_frames : 1.0;
  s.missed_critical_rate = 1.0 - s.critical_accuracy;
  s.deadline_miss_rate = static_cast<double>(deadline_miss) / n;
  s.mean_energy_mj = s.total_energy_mj / n;
  s.mean_latency_ms = mean(latencies);
  s.p99_latency_ms = quantile(latencies, 0.99);
  s.mean_level = level_sum / n;
  s.level_switches = switches;
  s.mean_switch_us = switch_stats.mean();
  return s;
}

void Telemetry::write_csv(std::ostream& out) const {
  CsvWriter w(out);
  w.header({"frame", "criticality", "requested_level", "executed_level",
            "latency_ms", "energy_mj", "switch_us", "deadline_ms", "correct",
            "veto", "violation", "true_violation"});
  for (const FrameRecord& r : records_) {
    w.row({std::to_string(r.frame), criticality_name(r.criticality),
           std::to_string(r.requested_level), std::to_string(r.executed_level),
           CsvWriter::num(r.latency_ms, 4), CsvWriter::num(r.energy_mj, 4),
           CsvWriter::num(r.switch_us, 2), CsvWriter::num(r.deadline_ms, 2),
           r.correct ? "1" : "0", r.veto ? "1" : "0",
           r.violation ? "1" : "0", r.true_violation ? "1" : "0"});
  }
}

}  // namespace rrp::core
