// metrics.h (core) — snapshot / export layer over the util metrics
// registry, plus the trace<->telemetry reconciliation check.
//
// The primitive registry lives in util/metrics.h so the nn kernels (one
// layer below core) can bump counters; this layer owns everything that
// needs the core vocabulary: deterministic CSV/JSON serialization and
// the invariant that per-frame span modeled time reconciles with the
// Telemetry frame records (DESIGN.md §8, invariant 11).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/telemetry.h"

namespace rrp::core {

/// One exported metric row.  Histograms expand to one row per bucket
/// ("name.le_<bound>", "name.overflow") plus "name.total"; `value` is
/// pre-formatted so CSV and JSON render identically.
struct MetricRow {
  std::string name;
  std::string kind;  // "counter" | "gauge" | "histogram"
  std::string value;
};

/// Rows sorted by name (the registry's map order), so snapshots of equal
/// state compare byte-equal.
struct MetricsSnapshot {
  std::vector<MetricRow> rows;

  void write_csv(std::ostream& out) const;
  void write_json(std::ostream& out) const;
  std::string csv_string() const;
  std::string json_string() const;
};

/// Captures the current state of the process-wide registry.
MetricsSnapshot capture_metrics();

/// Zeroes the metrics registry AND clears the span trace — one call to
/// arm the observability layer for a fresh run.
void reset_observability();

/// Result of checking per-frame "frame" spans against Telemetry records.
struct FrameReconciliation {
  std::int64_t frames_compared = 0;
  std::int64_t missing_frame_spans = 0;  ///< telemetry frames with no span
  double max_abs_delta_us = 0.0;

  bool ok(double tol_us = 1e-9) const {
    return missing_frame_spans == 0 && max_abs_delta_us <= tol_us;
  }
};

/// For every telemetry frame, compares latency_ms*1000 + switch_us with
/// the modeled_us of the span named "frame" tagged with that frame index.
FrameReconciliation reconcile_frame_spans(const Telemetry& telemetry);

}  // namespace rrp::core
