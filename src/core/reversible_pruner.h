// reversible_pruner.h — the paper's primary contribution.
//
// Two reversible execution providers over one nested level ladder:
//
//  * ReversiblePruner (masked mode) — one resident network; switching level
//    k→k′ touches exactly the elements whose keep flag differs between the
//    two nested masks: zero them (prune) or copy them back from the
//    WeightStore (restore).  Restore is "back to the future": O(Δ) memcpy,
//    no disk, no retraining, bit-exact.
//
//  * CompactedLevelCache (compact mode) — pre-built physically-shrunk
//    networks per level; switching is a pointer swap (O(1)) and inference
//    actually gets faster, at the memory cost of caching every level.
//
// Both implement InferenceProvider so the runtime controller, baselines and
// the scenario runner are interchangeable over them.
#pragma once

#include "core/bn_calibration.h"
#include "core/weight_store.h"
#include "prune/compact.h"
#include "prune/levels.h"

namespace rrp::core {

/// Cost accounting for one level transition.
struct TransitionStats {
  int from_level = 0;
  int to_level = 0;
  bool is_restore = false;          ///< true when moving to a lower level
  std::int64_t elements_changed = 0;
  std::int64_t bytes_written = 0;
  double wall_us = 0.0;
  /// Reload baseline only: failed artifact-read attempts absorbed by the
  /// bounded retry loop, and the modeled backoff delay they cost.
  int read_retries = 0;
  double backoff_us = 0.0;
};

/// Uniform interface over every way of executing the network at a level.
class InferenceProvider {
 public:
  virtual ~InferenceProvider() = default;

  virtual const std::string& name() const = 0;
  virtual nn::Tensor infer(const nn::Tensor& x) = 0;
  virtual TransitionStats set_level(int level) = 0;
  virtual int current_level() const = 0;
  virtual int level_count() const = 0;
  /// MACs one inference at the CURRENT level executes for a batch-1 input.
  virtual std::int64_t active_macs(const nn::Shape& input_shape) = 0;
  /// Resident weight memory in bytes (for the overhead experiment).
  virtual std::int64_t resident_weight_bytes() = 0;
};

/// Masked-mode reversible pruning over a single resident network.
class ReversiblePruner : public InferenceProvider {
 public:
  /// Snapshots `net`'s weights as golden and starts at level 0.
  /// The library must have been built for this network.
  ReversiblePruner(nn::Network& net, prune::PruneLevelLibrary levels);

  /// Leaves the network exactly as found: restores level 0 (golden
  /// weights and, when installed, the dense BatchNorm statistics), so a
  /// later provider built from the same network sees clean weights.
  ~ReversiblePruner() override;

  ReversiblePruner(ReversiblePruner&& other) noexcept;
  ReversiblePruner& operator=(ReversiblePruner&&) = delete;

  const std::string& name() const override { return name_; }
  nn::Tensor infer(const nn::Tensor& x) override;
  TransitionStats set_level(int level) override;
  int current_level() const override { return current_level_; }
  int level_count() const override { return levels_.level_count(); }
  std::int64_t active_macs(const nn::Shape& input_shape) override;
  std::int64_t resident_weight_bytes() override;

  /// Convenience: full restore ("back to the future").
  TransitionStats restore_full() { return set_level(0); }

  /// Installs per-level BatchNorm statistics (switchable BN). Must contain
  /// exactly level_count() states; entry k is applied whenever level k is
  /// entered (including retroactively for the current level).
  void set_bn_states(std::vector<BnState> states);
  bool has_bn_states() const { return !bn_states_.empty(); }

  nn::Network& network() { return *net_; }
  const WeightStore& store() const { return store_; }
  /// FAULT-INJECTION BACKDOOR: mutable store access so sim/faults.h can
  /// simulate SEUs in the golden copy's memory (WeightStore::flip_bit).
  /// Never used by runtime control paths.
  WeightStore& mutable_store() { return store_; }
  const prune::PruneLevelLibrary& levels() const { return levels_; }
  /// The last kHistoryCapacity transitions.  Below capacity this is
  /// append-ordered; once full it becomes a ring and the oldest slot
  /// (at index history_ring_next()) is overwritten first, so the frame
  /// path never reallocates (R6, DESIGN.md invariant 14).
  const std::vector<TransitionStats>& history() const { return history_; }
  std::size_t history_ring_next() const { return history_next_; }
  static constexpr std::size_t kHistoryCapacity = 256;

  /// Bytes spent on the precomputed delta index lists (overhead report).
  std::int64_t delta_index_bytes() const;

 private:
  /// Elements newly pruned at level k (vs k-1) of one parameter: the unit
  /// of O(Δ) switching. Nesting guarantees these deltas partition the
  /// ever-pruned set, so any k->k' walk applies each element once.
  struct ParamDelta {
    nn::Tensor* value = nullptr;
    const nn::Tensor* golden = nullptr;
    std::vector<std::uint32_t> indices;
  };

  void build_deltas();

  std::string name_ = "reversible-masked";
  nn::Network* net_;
  WeightStore store_;
  prune::PruneLevelLibrary levels_;
  std::vector<std::vector<ParamDelta>> deltas_;  // [level] -> param deltas
  std::vector<BnState> bn_states_;
  int current_level_ = 0;
  std::vector<TransitionStats> history_;  // bounded ring, see history()
  std::size_t history_next_ = 0;          // overwrite cursor once full
};

/// The sparsity-realizing fast path: a provisioned compacted-network
/// ladder for the frame path PLUS a masked golden arm for safety.
///
/// At construction the full ladder is materialized once (one
/// compact_network clone per level, that level's calibrated BN statistics
/// baked in) next to a ReversiblePruner over the golden weights.  After
/// that:
///
///  * infer() runs the ACTIVE COMPACTED network — physically smaller
///    tensors, so pruning buys real cycles, not just modeled ones;
///  * set_level() swaps an index — O(1), no rebuild, no weight copy, no
///    allocation on the frame path (prune.ladder_rebuilds stays flat and
///    parameter storage addresses are stable; see test_fast_path.cpp);
///  * the masked golden arm keeps the paper's prune→restore bit-exactness
///    and gives the integrity scrub its golden ⊙ mask reference.  It LAGS
///    the active level and is aligned by sync_masked() — an O(Δ) delta
///    walk that runs on the scrub cadence (or before restore), never per
///    frame.
///
/// Numerically the compacted ladder matches the masked network to the
/// tolerance of DESIGN.md invariant 13 (exact for Linear/Conv gathers; BN
/// folding of pruned channels reorders no surviving arithmetic).
class CompactedLadderProvider : public InferenceProvider {
 public:
  /// Snapshots `net` (level-0 golden) and materializes the ladder.
  /// `bn_states`, when present, must hold one state per level; each
  /// level's compacted clone bakes its own statistics in and the masked
  /// arm gets switchable BN as usual.
  CompactedLadderProvider(nn::Network& net, prune::PruneLevelLibrary levels,
                          const nn::Shape& input_shape,
                          std::vector<BnState> bn_states = {});

  const std::string& name() const override { return name_; }
  nn::Tensor infer(const nn::Tensor& x) override;
  /// O(1): swaps the active-network index.  TransitionStats reports zero
  /// elements/bytes — the modeled switch cost is the platform's fixed
  /// overhead only — and the masked arm is deliberately NOT walked here.
  TransitionStats set_level(int level) override;
  int current_level() const override { return current_level_; }
  int level_count() const override {
    return static_cast<int>(ladder_.size());
  }
  std::int64_t active_macs(const nn::Shape& input_shape) override;
  std::int64_t resident_weight_bytes() override;

  /// Aligns the masked golden arm to current_level() with the usual O(Δ)
  /// delta walk.  Runs on the scrub cadence inside the mission loop, so
  /// it carries the same real-time certification as set_level.
  // rrp-frame-path: scrub-cadence alignment of the masked golden arm.
  TransitionStats sync_masked() { return masked_.set_level(current_level_); }

  /// The masked golden arm (scrub target, fault-injection backdoor,
  /// "back to the future" restore).
  ReversiblePruner& masked() { return masked_; }
  const ReversiblePruner& masked() const { return masked_; }

  nn::Network& network_at(int level);

 private:
  std::string name_ = "reversible-fastpath";
  ReversiblePruner masked_;
  std::vector<nn::Network> ladder_;
  int current_level_ = 0;
};

/// A per-stream view over one shared CompactedLadderProvider.
///
/// The serving engine (src/serve) runs N concurrent perception streams
/// against ONE resident compacted ladder: the ladder networks are immutable
/// after construction and eval-mode forward is non-mutating, so any number
/// of views may infer concurrently — including two views at the same level
/// over the very same network.  Each view carries its OWN level index, so a
/// stream's set_level is invisible to every other stream (the aliasing
/// property pinned in test_fast_path.cpp): the swap touches only the view.
///
/// The shared provider's current_level() and masked golden arm are NOT
/// consulted or moved by views; integrity scrubbing of the shared weights
/// remains the owner's job.
class CompactedLadderView : public InferenceProvider {
 public:
  explicit CompactedLadderView(CompactedLadderProvider& shared, int level = 0);

  const std::string& name() const override { return name_; }
  nn::Tensor infer(const nn::Tensor& x) override;
  /// O(1): swaps this view's level index only.  Safe from pool chunk
  /// bodies — no shared state is written.
  TransitionStats set_level(int level) override;
  int current_level() const override { return level_; }
  /// Cached at construction (the shared ladder is immutable after build),
  /// so the frame path never chains through the shared provider.
  int level_count() const override { return level_count_; }
  std::int64_t active_macs(const nn::Shape& input_shape) override;
  /// Marginal resident cost of a view is ~0; reports the SHARED ladder's
  /// footprint (each stream does not pay for its own copy — that is the
  /// point).
  std::int64_t resident_weight_bytes() override;

  CompactedLadderProvider& shared() { return *shared_; }
  const nn::Network& active_network() const;

 private:
  std::string name_ = "reversible-fastpath-view";
  CompactedLadderProvider* shared_;
  int level_ = 0;
  int level_count_ = 0;
};

/// Compact-mode reversible pruning: every level pre-compacted and resident.
/// Only valid for structured level libraries.
class CompactedLevelCache : public InferenceProvider {
 public:
  /// `bn_states` is optional switchable-BN data (one state per level,
  /// captured on the MASKED network); each level's compacted network bakes
  /// in its own calibrated statistics.
  CompactedLevelCache(const nn::Network& net,
                      const prune::PruneLevelLibrary& levels,
                      const nn::Shape& input_shape,
                      const std::vector<BnState>& bn_states = {});

  const std::string& name() const override { return name_; }
  nn::Tensor infer(const nn::Tensor& x) override;
  TransitionStats set_level(int level) override;
  int current_level() const override { return current_level_; }
  int level_count() const override { return static_cast<int>(nets_.size()); }
  std::int64_t active_macs(const nn::Shape& input_shape) override;
  std::int64_t resident_weight_bytes() override;

  nn::Network& network_at(int level);

 private:
  std::string name_ = "reversible-compact";
  std::vector<nn::Network> nets_;
  int current_level_ = 0;
};

}  // namespace rrp::core
