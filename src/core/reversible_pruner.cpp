#include "core/reversible_pruner.h"

#include "util/checks.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace rrp::core {

ReversiblePruner::ReversiblePruner(nn::Network& net,
                                   prune::PruneLevelLibrary levels)
    : net_(&net), store_(WeightStore::snapshot(net)), levels_(std::move(levels)) {
  RRP_CHECK_MSG(levels_.level_count() >= 1, "empty level library");
  RRP_CHECK_MSG(levels_.ratio(0) == 0.0, "level 0 must be the full network");
  RRP_CHECK_MSG(levels_.verify_nested(),
                "level library violates the nesting invariant");
  build_deltas();
  // The transition history is a bounded ring: capacity is reserved once
  // here so the frame-path append in set_level never reallocates (R6,
  // DESIGN.md invariant 14).
  history_.reserve(kHistoryCapacity);
  // Level 0 == golden weights; nothing to apply.
}

ReversiblePruner::~ReversiblePruner() {
  if (net_ == nullptr) return;  // moved-from shell
  // Restore golden weights and dense BN statistics without going through
  // set_level (history/time accounting is irrelevant during teardown).
  if (current_level_ != 0) store_.apply_mask(*net_, levels_.mask(0));
  if (!bn_states_.empty()) apply_bn_state(*net_, bn_states_[0]);
}

ReversiblePruner::ReversiblePruner(ReversiblePruner&& other) noexcept
    : name_(std::move(other.name_)),
      net_(other.net_),
      store_(std::move(other.store_)),
      levels_(std::move(other.levels_)),
      bn_states_(std::move(other.bn_states_)),
      current_level_(other.current_level_),
      history_(std::move(other.history_)),
      history_next_(other.history_next_) {
  other.net_ = nullptr;  // disarm the moved-from destructor
  // Delta lists hold raw pointers into net_ (unchanged) and into our own
  // store_, whose map nodes are stable under move — but rebuild defensively
  // so golden pointers are guaranteed to target THIS store.
  build_deltas();
}

void ReversiblePruner::build_deltas() {
  deltas_.assign(static_cast<std::size_t>(levels_.level_count()), {});
  auto params = net_->params();
  for (int k = 1; k < levels_.level_count(); ++k) {
    const prune::NetworkMask& prev = levels_.mask(k - 1);
    const prune::NetworkMask& cur = levels_.mask(k);
    for (const auto& [pname, keep] : cur.entries()) {
      const auto* prev_keep = prev.find(pname);
      ParamDelta delta;
      for (auto& p : params)
        if (p.name == pname) {
          delta.value = p.value;
          break;
        }
      RRP_CHECK_MSG(delta.value != nullptr,
                    "mask names unknown param '" << pname << "'");
      delta.golden = &store_.get(pname);
      RRP_CHECK(static_cast<std::int64_t>(keep.size()) ==
                delta.golden->numel());
      for (std::uint32_t i = 0; i < keep.size(); ++i) {
        const bool was = prev_keep == nullptr || (*prev_keep)[i] != 0;
        const bool now = keep[i] != 0;
        if (was && !now) delta.indices.push_back(i);
      }
      if (!delta.indices.empty())
        deltas_[static_cast<std::size_t>(k)].push_back(std::move(delta));
    }
  }
}

std::int64_t ReversiblePruner::delta_index_bytes() const {
  std::int64_t n = 0;
  for (const auto& level : deltas_)
    for (const auto& d : level)
      n += static_cast<std::int64_t>(d.indices.size() * sizeof(std::uint32_t));
  return n;
}

nn::Tensor ReversiblePruner::infer(const nn::Tensor& x) {
  return net_->forward(x, /*training=*/false);
}

// rrp-frame-path: the masked O(Δ) prune/restore arm runs inside the
// perception frame loop (and on the fast path's scrub-cadence sync).
TransitionStats ReversiblePruner::set_level(int level) {
  RRP_CHECK_MSG(level >= 0 && level < level_count(),
                "level " << level << " outside [0, " << level_count() << ")");
  TransitionStats stats;
  stats.from_level = current_level_;
  stats.to_level = level;
  stats.is_restore = level < current_level_;
  if (level == current_level_) return stats;

  RRP_SPAN_VAR(span, stats.is_restore ? "prune.restore" : "prune.apply");
  Timer timer;
  // Nested masks make any transition a walk over adjacent-level deltas:
  // pruning applies deltas (current, level] as zeros; restoring copies
  // deltas (level, current] back from the golden store. Each touched
  // element is visited exactly once — O(Δ), not O(model).
  if (level > current_level_) {
    for (int k = current_level_ + 1; k <= level; ++k) {
      for (const ParamDelta& d : deltas_[static_cast<std::size_t>(k)]) {
        float* dst = d.value->raw();
        for (std::uint32_t i : d.indices) dst[i] = 0.0f;
        stats.elements_changed +=
            static_cast<std::int64_t>(d.indices.size());
      }
    }
  } else {
    for (int k = current_level_; k > level; --k) {
      for (const ParamDelta& d : deltas_[static_cast<std::size_t>(k)]) {
        float* dst = d.value->raw();
        const float* src = d.golden->raw();
        for (std::uint32_t i : d.indices) dst[i] = src[i];
        stats.elements_changed +=
            static_cast<std::int64_t>(d.indices.size());
      }
    }
  }
  stats.bytes_written =
      stats.elements_changed * static_cast<std::int64_t>(sizeof(float));

  // Switchable BN: swap in this level's calibrated statistics.
  if (!bn_states_.empty()) {
    const BnState& s = bn_states_[static_cast<std::size_t>(level)];
    apply_bn_state(*net_, s);
    stats.bytes_written += s.total_bytes();
  }

  stats.wall_us = timer.elapsed_us();
  current_level_ = level;
  // Bounded history ring (capacity reserved at construction): below
  // capacity this appends in place, at capacity it overwrites the oldest
  // slot, so a long mission never grows the frame path's footprint.
  if (history_.size() < kHistoryCapacity) {
    // rrp-lint-allow(frame-path-alloc): push_back below the capacity reserved in the constructor never reallocates; once full, the ring branch below takes over.
    history_.push_back(stats);
  } else {
    history_[history_next_] = stats;
    history_next_ = (history_next_ + 1) % kHistoryCapacity;
  }

  static metrics::Counter& transitions = metrics::counter("prune.transitions");
  static metrics::Counter& restores = metrics::counter("prune.restores");
  static metrics::Counter& elems = metrics::counter("prune.elements_touched");
  static metrics::Counter& bytes = metrics::counter("prune.bytes_touched");
  transitions.add(1);
  if (stats.is_restore) restores.add(1);
  elems.add(stats.elements_changed);
  bytes.add(stats.bytes_written);
  span.add_items(stats.elements_changed);
  return stats;
}

void ReversiblePruner::set_bn_states(std::vector<BnState> states) {
  RRP_CHECK_MSG(static_cast<int>(states.size()) == level_count(),
                "need exactly one BnState per level");
  bn_states_ = std::move(states);
  apply_bn_state(*net_, bn_states_[static_cast<std::size_t>(current_level_)]);
}

std::int64_t ReversiblePruner::active_macs(const nn::Shape& input_shape) {
  return net_->effective_macs(input_shape);
}

std::int64_t ReversiblePruner::resident_weight_bytes() {
  // Resident cost = live network + golden store + masks + delta indices.
  std::int64_t live = net_->param_count() * static_cast<std::int64_t>(sizeof(float));
  return live + store_.total_bytes() + levels_.storage_bytes() +
         delta_index_bytes();
}

CompactedLadderProvider::CompactedLadderProvider(
    nn::Network& net, prune::PruneLevelLibrary levels,
    const nn::Shape& input_shape, std::vector<BnState> bn_states)
    : masked_(net, std::move(levels)) {
  const prune::PruneLevelLibrary& lv = masked_.levels();
  RRP_CHECK_MSG(lv.structured(),
                "fast path requires a structured level library");
  RRP_CHECK_MSG(bn_states.empty() ||
                    static_cast<int>(bn_states.size()) == lv.level_count(),
                "need exactly one BnState per level");
  // The ladder is built exactly once, here.  prune.ladder_rebuilds staying
  // flat afterwards is the "no rebuild on the frame path" acceptance
  // signal (test_fast_path.cpp).
  static metrics::Counter& rebuilds = metrics::counter("prune.ladder_rebuilds");
  ladder_.reserve(static_cast<std::size_t>(lv.level_count()));
  for (int k = 0; k < lv.level_count(); ++k) {
    // masked_ sits at level 0, so `net` still carries the golden weights;
    // bake the level's calibrated BN statistics in BEFORE compaction so
    // the channel gather keeps the right per-channel entries.
    if (bn_states.empty()) {
      ladder_.push_back(
          prune::compact_network(net, lv.channel_masks(k), input_shape));
    } else {
      nn::Network staged = net.clone();
      apply_bn_state(staged, bn_states[static_cast<std::size_t>(k)]);
      ladder_.push_back(
          prune::compact_network(staged, lv.channel_masks(k), input_shape));
    }
    rebuilds.add(1);
  }
  if (!bn_states.empty()) masked_.set_bn_states(std::move(bn_states));
}

nn::Tensor CompactedLadderProvider::infer(const nn::Tensor& x) {
  return ladder_[static_cast<std::size_t>(current_level_)].forward(x, false);
}

// rrp-frame-path: the O(1) ladder swap is THE per-frame transition
// (invariant 13 — no rebuild, no weight traffic, no allocation).
TransitionStats CompactedLadderProvider::set_level(int level) {
  RRP_CHECK_MSG(level >= 0 && level < level_count(),
                "level " << level << " outside [0, " << level_count() << ")");
  Timer timer;
  TransitionStats stats;
  stats.from_level = current_level_;
  stats.to_level = level;
  stats.is_restore = level < current_level_;
  current_level_ = level;  // index swap — no rebuild, no weight traffic
  stats.wall_us = timer.elapsed_us();
  if (level != stats.from_level) {
    static metrics::Counter& swaps = metrics::counter("prune.ladder_swaps");
    swaps.add(1);
  }
  return stats;
}

std::int64_t CompactedLadderProvider::active_macs(
    const nn::Shape& input_shape) {
  return ladder_[static_cast<std::size_t>(current_level_)].macs(input_shape);
}

std::int64_t CompactedLadderProvider::resident_weight_bytes() {
  // Fast path pays for BOTH arms: the resident compacted ladder plus the
  // masked golden arm (live net + store + masks + delta indices).
  std::int64_t total = masked_.resident_weight_bytes();
  for (auto& n : ladder_)
    total += n.param_count() * static_cast<std::int64_t>(sizeof(float));
  return total;
}

nn::Network& CompactedLadderProvider::network_at(int level) {
  RRP_CHECK(level >= 0 && level < level_count());
  return ladder_[static_cast<std::size_t>(level)];
}

CompactedLadderView::CompactedLadderView(CompactedLadderProvider& shared,
                                         int level)
    : shared_(&shared), level_count_(shared.level_count()) {
  RRP_CHECK_MSG(level >= 0 && level < level_count_,
                "level " << level << " outside [0, " << level_count_ << ")");
  level_ = level;
}

nn::Tensor CompactedLadderView::infer(const nn::Tensor& x) {
  // Eval-mode forward mutates nothing, so concurrent views — even two at
  // the same level, over the same physical network — never race.
  return shared_->network_at(level_).forward(x, /*training=*/false);
}

// rrp-frame-path: the per-stream O(1) view swap is the serving engine's
// per-frame transition (no rebuild, no weight traffic, no allocation).
TransitionStats CompactedLadderView::set_level(int level) {
  RRP_CHECK_MSG(level >= 0 && level < level_count(),
                "level " << level << " outside [0, " << level_count() << ")");
  Timer timer;
  TransitionStats stats;
  stats.from_level = level_;
  stats.to_level = level;
  stats.is_restore = level < level_;
  level_ = level;  // view-local index swap — shared ladder untouched
  stats.wall_us = timer.elapsed_us();
  if (level != stats.from_level) {
    static metrics::Counter& swaps = metrics::counter("prune.ladder_swaps");
    swaps.add(1);
  }
  return stats;
}

std::int64_t CompactedLadderView::active_macs(const nn::Shape& input_shape) {
  return shared_->network_at(level_).macs(input_shape);
}

std::int64_t CompactedLadderView::resident_weight_bytes() {
  return shared_->resident_weight_bytes();
}

const nn::Network& CompactedLadderView::active_network() const {
  return shared_->network_at(level_);
}

CompactedLevelCache::CompactedLevelCache(const nn::Network& net,
                                         const prune::PruneLevelLibrary& levels,
                                         const nn::Shape& input_shape,
                                         const std::vector<BnState>& bn_states) {
  RRP_CHECK_MSG(levels.structured(),
                "compact mode requires a structured level library");
  RRP_CHECK_MSG(levels.verify_nested(),
                "level library violates the nesting invariant");
  RRP_CHECK_MSG(bn_states.empty() ||
                    static_cast<int>(bn_states.size()) == levels.level_count(),
                "need exactly one BnState per level");
  nets_.reserve(static_cast<std::size_t>(levels.level_count()));
  for (int k = 0; k < levels.level_count(); ++k) {
    if (bn_states.empty()) {
      nets_.push_back(
          prune::compact_network(net, levels.channel_masks(k), input_shape));
      continue;
    }
    // Bake the level's calibrated statistics in BEFORE compaction so the
    // channel gather keeps the right per-channel entries.
    nn::Network staged = net.clone();
    apply_bn_state(staged, bn_states[static_cast<std::size_t>(k)]);
    nets_.push_back(
        prune::compact_network(staged, levels.channel_masks(k), input_shape));
  }
}

nn::Tensor CompactedLevelCache::infer(const nn::Tensor& x) {
  return nets_[static_cast<std::size_t>(current_level_)].forward(x, false);
}

// rrp-frame-path: pointer-swap transition of the cached-compaction
// baseline; measured against the ladder on the same frame loop.
TransitionStats CompactedLevelCache::set_level(int level) {
  RRP_CHECK_MSG(level >= 0 && level < level_count(),
                "level " << level << " outside [0, " << level_count() << ")");
  Timer timer;
  TransitionStats stats;
  stats.from_level = current_level_;
  stats.to_level = level;
  stats.is_restore = level < current_level_;
  current_level_ = level;  // pointer swap — no weight traffic at all
  stats.wall_us = timer.elapsed_us();
  return stats;
}

std::int64_t CompactedLevelCache::active_macs(const nn::Shape& input_shape) {
  return nets_[static_cast<std::size_t>(current_level_)].macs(input_shape);
}

std::int64_t CompactedLevelCache::resident_weight_bytes() {
  std::int64_t total = 0;
  for (auto& n : nets_)
    total += n.param_count() * static_cast<std::int64_t>(sizeof(float));
  return total;
}

nn::Network& CompactedLevelCache::network_at(int level) {
  RRP_CHECK(level >= 0 && level < level_count());
  return nets_[static_cast<std::size_t>(level)];
}

}  // namespace rrp::core
