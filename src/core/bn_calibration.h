// bn_calibration.h — per-level BatchNorm statistics ("switchable BN").
//
// With shared weights, a pruned level changes the activation distribution
// entering every BatchNorm, so level-0 running statistics are wrong at
// masked levels.  The standard remedy (slimmable networks) is one tiny
// (mean, var) pair per BN layer *per level*, captured by running
// calibration batches at each level.  The ReversiblePruner swaps these in
// during a level switch — they are O(channels) per layer, so the O(Δ)
// switching cost story is unchanged.
#pragma once

#include <map>

#include "nn/train.h"
#include "prune/levels.h"

namespace rrp::core {

/// Snapshot of every BatchNorm layer's running statistics, keyed by layer
/// name: (running_mean, running_var).
struct BnState {
  std::map<std::string, std::pair<nn::Tensor, nn::Tensor>> stats;

  bool empty() const { return stats.empty(); }
  std::int64_t total_bytes() const;
};

/// Captures the current running statistics of all BatchNorm layers.
BnState capture_bn_state(nn::Network& net);

/// Writes a previously captured state back (layer names and channel counts
/// must match; extra layers in the state are an error).
void apply_bn_state(nn::Network& net, const BnState& state);

struct BnCalibrationConfig {
  int batches = 40;
  int batch_size = 32;
};

/// For each level: applies the mask, streams calibration batches in
/// training mode so the BN running stats adapt, and snapshots them.
/// Restores the network's weights and level-0 statistics afterwards.
/// The returned vector has one BnState per level (index == level).
std::vector<BnState> calibrate_bn_per_level(
    nn::Network& net, const prune::PruneLevelLibrary& levels,
    const nn::Dataset& calib_data, const BnCalibrationConfig& config,
    Rng& rng);

}  // namespace rrp::core
