// integrity.h — runtime weight-integrity checking and O(Δ) self-healing.
//
// Threat model: single-event upsets in weight SRAM/DRAM (the canonical
// memory hazard for safety-critical NN accelerators, cf. Li et al., SC'17).
// Because the reversible runtime keeps the full golden weights resident in
// the WeightStore, integrity becomes cheap to *assert* and cheap to
// *repair*:
//
//   invariant   live weights == golden ⊙ current mask   (element-wise)
//
// The IntegrityChecker captures FNV-1a digests of every golden parameter at
// snapshot time.  A periodic SCRUB verifies (a) the store against its own
// digests (golden corruption is detectable even though it is not locally
// repairable) and (b) the live network against golden ⊙ mask.  SELF-HEAL
// rewrites exactly the divergent elements from the store — an O(Δ) copy,
// where Δ is the number of corrupted elements, versus the full-artifact
// deserialization a reload-based stack must pay.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/weight_store.h"

namespace rrp::core {

/// FNV-1a 64-bit digest of a byte range (deterministic, portable).
std::uint64_t fnv1a64(const void* data, std::size_t bytes);

/// Digest of a tensor's float payload.
std::uint64_t tensor_digest(const nn::Tensor& t);

/// One divergent parameter found by a scrub.
struct IntegrityFinding {
  std::string param;
  std::int64_t diverged_elements = 0;  ///< live != golden ⊙ mask
  std::int64_t first_index = -1;       ///< first divergent flat index
  bool store_corrupt = false;  ///< the golden copy itself fails its digest
};

/// Result of one scrub pass.
struct ScrubReport {
  std::int64_t frame = -1;  ///< set by the caller (runner) when in-loop
  std::vector<IntegrityFinding> findings;
  std::int64_t elements_checked = 0;

  bool clean() const { return findings.empty(); }
  std::int64_t diverged_elements() const;
  bool store_corrupt() const;
};

/// Result of one self-heal pass.
struct RepairReport {
  std::int64_t elements_repaired = 0;  ///< the Δ of the O(Δ) copy
  std::int64_t bytes_written = 0;      ///< elements_repaired * sizeof(float)
  /// Parameters whose golden copy is corrupt: detected but NOT repairable
  /// from the store (a reload from a trusted artifact is required).
  std::vector<std::string> unrepairable;

  bool fully_repaired() const { return unrepairable.empty(); }
};

/// Verifies and repairs the live-weights invariant against a WeightStore.
class IntegrityChecker {
 public:
  /// Captures per-parameter digests of `store`'s golden tensors.  The
  /// store must outlive the checker.
  explicit IntegrityChecker(const WeightStore& store);

  /// Digest captured for one parameter (testing / evidence export).
  std::uint64_t digest(const std::string& param) const;

  /// Full verification pass: every parameter of `net` is compared
  /// element-wise against golden ⊙ mask (parameters absent from the mask
  /// compare against plain golden), and every golden tensor is re-digested
  /// against its snapshot-time digest.  Detects any single-element
  /// divergence by construction (exhaustive compare, not sampling).
  ScrubReport scrub(nn::Network& net, const prune::NetworkMask& mask) const;

  /// Repairs the divergences listed in `report` by copying exactly the
  /// divergent elements back from golden ⊙ mask — O(Δ).  Parameters whose
  /// golden copy is itself corrupt are skipped and reported unrepairable.
  RepairReport repair(nn::Network& net, const prune::NetworkMask& mask,
                      const ScrubReport& report) const;

  /// scrub + repair in one call (the runner's periodic path).
  RepairReport scrub_and_repair(nn::Network& net,
                                const prune::NetworkMask& mask,
                                ScrubReport* out_scrub = nullptr) const;

 private:
  const WeightStore* store_;
  std::map<std::string, std::uint64_t> digests_;
};

}  // namespace rrp::core
